// hipads-lint: the project's own static rules, the ones generic tools
// cannot know. Each rule guards an invariant the paper's determinism or
// the serving stack's concurrency story depends on:
//
//   HL001  no nondeterminism primitives (rand, random_device, clock
//          reads, time()) in the deterministic estimator paths
//          (src/ads, src/sketch, src/graph, src/stream). Every HIP
//          statistic must be bitwise reproducible; a clock read or RNG
//          draw anywhere in those trees breaks that silently.
//   HL002  no iteration over std::unordered_{map,set} in sweep
//          Reduce / EncodePartial / gather code (src/ads/sweep*,
//          src/serve). Hash-order iteration is the classic way a
//          "deterministic" reduction diverges across libstdc++
//          versions or ASLR runs. Point lookups (find/erase) are fine.
//   HL003  a SweepCollector subclass that overrides EncodePartial must
//          also override AbsorbPartial. The pair is the partial-state
//          seam the distributed gather rides on; overriding one side
//          only means remote partials decode through the wrong base
//          implementation.
//   HL004  every wire-protocol enum constant in serve/protocol.h must
//          be referenced in the serve encode/decode sources AND in the
//          fuzz corpus (tests/serve_fuzz_test.cc). An enumerator the
//          fuzzer never builds a frame for is untested wire surface.
//   HL005  no raw std::mutex / lock_guard / unique_lock /
//          condition_variable outside src/util/mutex.h. All locking
//          goes through the annotated hipads::Mutex wrapper so clang's
//          -Wthread-safety can prove lock discipline.
//   HL006  no wall-clock metric instruments (MetricHistogram,
//          ScopedLatencyTimer, registry Histogram lookups) in the
//          library trees outside src/serve (src/util/metrics.* itself
//          excepted; tools/ and tests/ are unrestricted). Counters and
//          gauges are fine anywhere — counts are thread-count
//          invariant — but a latency histogram smuggles a clock read
//          into paths HL001 keeps deterministic.
//
// Suppression: append `// hipads-lint: allow(HLxxx)` to the offending
// line. Allows are per-line and per-rule; there is no file-level or
// global opt-out, so every exception is visible at the point of use.

#ifndef HIPADS_TOOLS_HIPADS_LINT_H_
#define HIPADS_TOOLS_HIPADS_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hipads {
namespace lint {

struct Finding {
  std::string file;  // repo-relative, forward slashes
  size_t line = 0;   // 1-based
  std::string rule;  // "HL001" .. "HL006", or "IO" for unreadable files
  std::string message;
};

/// One file presented to the rule engine. `path` must be repo-relative
/// with forward slashes ("src/serve/server.cc") — rule scoping keys off
/// the prefix.
struct FileInput {
  std::string path;
  std::string content;
};

/// Runs every rule over the given files and returns the findings sorted
/// by (file, line, rule). Cross-file rules (HL004) see the whole set.
std::vector<Finding> RunLint(const std::vector<FileInput>& files);

/// Walks `root`/{src,tools,tests} for .h/.cc files (sorted, skipping
/// build directories) and runs RunLint. Unreadable files surface as
/// rule "IO" findings rather than aborting.
std::vector<Finding> LintTree(const std::string& root);

/// "file:line: rule-id: message" — the grep-able report line.
std::string FormatFinding(const Finding& f);

/// Replaces comment bodies and string/char-literal contents with spaces
/// (newlines preserved), so token rules never fire on prose or literals.
/// Exposed for tests.
std::string StripCommentsAndStrings(const std::string& text);

}  // namespace lint
}  // namespace hipads

#endif  // HIPADS_TOOLS_HIPADS_LINT_H_
