// hipads — command-line front end for the library.
//
// Subcommands:
//   generate   write a synthetic graph as a SNAP edge list
//   sketch     build the ADS set of an edge-list graph and store it
//   convert    re-encode a stored ADS set (v1 text <-> v2 binary)
//   shard      split a stored ADS set into a sharded directory
//   query      answer estimation queries from a stored ADS set
//   stats      whole-graph statistics from a stored ADS set
//   serve      expose a stored ADS set over the wire protocol (TCP)
//   route      scatter/gather front end over a fleet of range servers
//   stats-scrape  scrape an endpoint's metrics registry over the wire
//   trace-dump    drain an endpoint's trace buffer as Chrome trace JSON
//
// Distributed serving: `serve` answers point and fused-sweep requests over
// the node range its backend holds (`--node-begin B` maps local node 0 to
// global node B — point it at one shard file of a sharded set); `route`
// reads a fleet manifest (host -> node range), fans every sweep out to all
// range servers and merges the partials in node order, so routed results
// are bitwise identical to a single-process sweep. `query`/`stats`
// `--remote host:port` target either a server or a router — the protocol
// makes them indistinguishable. Any failure (dead server, malformed frame,
// node out of range) exits nonzero before printing any result.
//
// Robustness flags: every remote-speaking command (`query`/`stats`
// `--remote`, `route`) accepts `--timeout-ms N` (overall request deadline,
// propagated hop by hop on the wire; 0 = none), `--retries N` (transport-
// failure retry budget with jittered backoff; attempts = N + 1),
// `--hedge 1` (race a second fresh connection for point requests after
// 50 ms of silence) and `--coalesce-us N` (batch concurrent same-server
// point requests into wire-v3 batch frames, flushed every N microseconds;
// mutually exclusive with hedging). `serve` and `route` accept `--timeout-ms N` as the
// per-frame read stall bound on their listening sockets. Failures fail
// closed with an exit status and an error naming the failing server.
//
// `query` and `stats` accept a plain ADS file (v1 or v2, auto-detected) or
// a shard directory / manifest written by `shard`; every input is served
// through the unified AdsBackend storage layer. `--backend=copy` (default)
// loads into a heap arena; `--backend=mmap` maps v2 files zero-copy.
// Sharded sets honor `--resident N` (max shard arenas in memory) and
// prefetch upcoming shards during whole-graph sweeps (`--prefetch D` sets
// the lookahead depth, 0 disables). A manifest referencing a missing or
// truncated shard file fails at open with a nonzero exit, before any
// partial output.
//
// Whole-graph statistics run on the fused sweep engine (ads/sweep.h): all
// statistics a command needs are collected in ONE pass over the backend —
// `stats` derives the neighbourhood function, effective diameter and mean
// distance from a single distance-distribution collector, and `stats
// --top N` fuses the top-k centrality ranking into that same pass, so a
// sharded set reads every shard file exactly once however many statistics
// are requested.
//
// HIP-resident storage: `sketch --hip 1` and `convert --hip 1` precompute
// the HIP estimator weights and store them in the v2 binary's optional HIP
// section (+16 bytes/entry); `convert --strip-hip 1` removes the section.
// Serving a HIP-resident file turns every point estimator into a pointer
// wrap over the mapped weights — `stats` and `serve` report which mode is
// active as `hip=resident|scan` (`stats` on stderr, keeping its stdout
// bitwise interchangeable with `--remote` runs). Answers are bitwise
// identical either way.
//
// Observability: every process keeps a registry of named counters, gauges
// and latency histograms (util/metrics.h). `stats-scrape --remote ADDR`
// asks the endpoint for a wire snapshot (kStatsRequest) — against a
// router it returns the router's own metrics plus one snapshot per range
// server, labeled by address. `--watch N` re-scrapes every N seconds.
// `serve`/`route --metrics-interval-s N` dump the local registry to
// stderr every N seconds. `query ... --trace 1` stamps its remote
// requests with a fresh 16-byte trace id (wire v4); every hop appends
// timed spans to an in-process ring that `trace-dump --remote ADDR`
// drains and renders as Chrome trace-event JSON (load in
// chrome://tracing or https://ui.perfetto.dev). Metrics and traces never
// change response bytes — answers are bitwise identical with metrics on,
// off or mid-scrape.
//
// Examples:
//   hipads_cli generate --model ba --nodes 100000 --out graph.txt
//   hipads_cli sketch --graph graph.txt --k 32 --format binary --out s.ads2
//   hipads_cli sketch --graph g.txt --format binary --hip 1 --out sh.ads2
//   hipads_cli convert --in s.ads2 --format text --out s.ads
//   hipads_cli convert --in s.ads2 --hip 1 --out s-hip.ads2
//   hipads_cli convert --in s-hip.ads2 --strip-hip 1 --out s.ads2
//   hipads_cli shard --in s.ads2 --shards 8 --out-dir shards/
//   hipads_cli query --sketches s.ads2 --backend=mmap --node 17 --distance 3
//   hipads_cli query --sketches s.ads2 --node 17 --lookup 4,8,15
//   hipads_cli query --sketches s.ads2 --node 17 --jaccard 23 --distance 3
//   hipads_cli query --sketches shards/ --top 10 --centrality harmonic
//   hipads_cli stats --sketches shards/ --backend=mmap --resident 2
//   hipads_cli stats --sketches shards/ --top 10 --prefetch 2
//   hipads_cli stats --sketches s.ads2 --distance-quantile 0.5 --qg exp
//   hipads_cli serve --sketches shards/shard-00000.ads2 --port 7470
//   hipads_cli route --fleet fleet.txt --port 7480
//   hipads_cli stats --remote 127.0.0.1:7480 --top 10
//   hipads_cli query --remote 127.0.0.1:7480 --node 17 --jaccard 23
//   hipads_cli stats-scrape --remote 127.0.0.1:7480 --watch 5
//   hipads_cli query --remote 127.0.0.1:7480 --node 17 --distance 3 --trace 1
//   hipads_cli trace-dump --remote 127.0.0.1:7480 --out trace.json

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <filesystem>

#include "ads/backend.h"
#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/flat_ads.h"
#include "ads/hip.h"
#include "ads/serialize.h"
#include "ads/shard.h"
#include "ads/similarity.h"
#include "ads/sweep.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/trace.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/table.h"

#include <unistd.h>

namespace hipads {
namespace {

// Minimal argument parsing: `--flag value` pairs or `--flag=value`.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc;) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      const char* arg = argv[i];
      const char* eq = std::strchr(arg, '=');
      if (eq != nullptr) {
        values_[std::string(arg + 2, eq)] = eq + 1;
        i += 1;
      } else if (i + 1 < argc) {
        values_[argv[i] + 2] = argv[i + 1];
        i += 2;
      } else {
        std::fprintf(stderr, "missing value for flag '%s'\n", argv[i]);
        std::exit(2);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  uint64_t GetInt(const std::string& key, uint64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtoull(it->second.c_str(),
                                                     nullptr, 10);
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtod(it->second.c_str(),
                                                   nullptr);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Shared robustness knobs of every remote-speaking command:
//   --timeout-ms N    overall request deadline (and connect timeout); 0 = none
//   --retries N       transport-failure retry budget (attempts = N + 1)
//   --hedge 1         hedge point requests over a second fresh connection
//   --coalesce-us N   coalesce concurrent same-server point requests into
//                     batch frames, flushing every N microseconds (0 = off;
//                     the HIPADS_COALESCE_WINDOW_US env var also sets it)
struct RemoteOptions {
  uint64_t timeout_ms = 0;
  uint32_t retries = 1;
  bool hedge = false;
  uint64_t coalesce_us = 0;
};

RemoteOptions GetRemoteOptions(const Args& args) {
  RemoteOptions remote;
  remote.timeout_ms = args.GetInt("timeout-ms", 0);
  remote.retries = static_cast<uint32_t>(args.GetInt("retries", 1));
  remote.hedge = args.GetInt("hedge", 0) != 0;
  remote.coalesce_us = args.GetInt("coalesce-us", 0);
  return remote;
}

Deadline RemoteDeadline(const RemoteOptions& remote) {
  return remote.timeout_ms > 0 ? Deadline::AfterMs(remote.timeout_ms)
                               : Deadline();
}

TcpChannelOptions RemoteChannelOptions(const RemoteOptions& remote) {
  TcpChannelOptions options;
  if (remote.timeout_ms > 0) options.connect_timeout_ms = remote.timeout_ms;
  return options;
}

// With `--trace 1`, installs a fresh nonzero trace id on this thread (so
// every remote call below goes out as a wire-v4 traced frame) and prints
// the id on stderr for correlation with a later `trace-dump`. Id
// uniqueness only needs to hold across concurrent CLI runs: wall-clock
// entropy mixed with the pid is plenty (tools may read clocks — the
// HL001 determinism ban covers the library trees, not this binary).
void MaybeStartTrace(const Args& args,
                     std::optional<ScopedTraceContext>* scope) {
  if (args.GetInt("trace", 0) == 0) return;
  uint64_t t = static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  uint64_t hi = t * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
  uint64_t lo = (static_cast<uint64_t>(getpid()) << 32) ^ t;
  if ((hi | lo) == 0) lo = 1;
  scope->emplace(hi, lo);
  std::fprintf(stderr, "trace id %016llx%016llx\n",
               static_cast<unsigned long long>(hi),
               static_cast<unsigned long long>(lo));
}

// Opens `--remote ADDRESS` as a single-server fleet, which buys every
// remote command the router's whole robustness stack — deadlines on each
// hop, reconnect-with-backoff retries, optional hedging — and failure
// messages that name the failing server.
StatusOr<FleetRouter> ConnectSingleServerFleet(const std::string& address,
                                               const RemoteOptions& remote) {
  TcpChannelOptions channel_options = RemoteChannelOptions(remote);
  auto channel = TcpChannel::ConnectAddress(address, channel_options);
  if (!channel.ok()) {
    return Status::IOError("remote " + address + ": " +
                           channel.status().ToString());
  }
  AdsClient client(channel.value().get(), RemoteDeadline(remote));
  auto info = client.Info();
  if (!info.ok()) {
    return Status::IOError("remote " + address + ": " +
                           info.status().ToString());
  }
  FleetManifest manifest;
  manifest.num_nodes = info.value().node_end;
  FleetEntry entry;
  entry.address = address;
  entry.begin = static_cast<NodeId>(info.value().node_begin);
  entry.end = static_cast<NodeId>(info.value().node_end);
  manifest.servers.push_back(std::move(entry));
  RouterOptions router_options;
  router_options.timeout_ms = remote.timeout_ms;
  router_options.retries = remote.retries;
  router_options.hedge = remote.hedge;
  router_options.coalesce_window_us = remote.coalesce_us;
  return FleetRouter::Connect(std::move(manifest),
                              TcpChannelFactory(channel_options),
                              router_options);
}

bool ParseFormatFlag(const std::string& name, AdsFileFormat* out) {
  if (name == "text" || name == "v1") {
    *out = AdsFileFormat::kTextV1;
  } else if (name == "binary" || name == "v2") {
    *out = AdsFileFormat::kBinaryV2;
  } else {
    std::fprintf(stderr, "unknown --format %s (text|binary)\n", name.c_str());
    return false;
  }
  return true;
}

int CmdGenerate(const Args& args) {
  std::string model = args.Get("model", "ba");
  uint32_t n = static_cast<uint32_t>(args.GetInt("nodes", 10000));
  uint64_t seed = args.GetInt("seed", 1);
  std::string out = args.Get("out", "graph.txt");
  Graph g;
  if (model == "ba") {
    g = BarabasiAlbert(n, static_cast<uint32_t>(args.GetInt("attach", 3)),
                       seed);
  } else if (model == "er") {
    g = ErdosRenyi(n, args.GetInt("edges", 4ULL * n), /*undirected=*/true,
                   seed);
  } else if (model == "rmat") {
    uint32_t scale = 1;
    while ((1u << scale) < n) ++scale;
    g = Rmat(scale, args.GetInt("edges", 8ULL), seed);
  } else if (model == "grid") {
    uint32_t side = 1;
    while (side * side < n) ++side;
    g = Grid2D(side, side);
  } else {
    std::fprintf(stderr, "unknown --model %s (ba|er|rmat|grid)\n",
                 model.c_str());
    return 2;
  }
  Status s = WriteEdgeListFile(g, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %u nodes, %llu arcs (%s)\n", out.c_str(),
              g.num_nodes(), static_cast<unsigned long long>(g.num_arcs()),
              model.c_str());
  return 0;
}

int CmdSketch(const Args& args) {
  std::string graph_path = args.Get("graph", "");
  if (graph_path.empty()) {
    std::fprintf(stderr, "sketch requires --graph FILE\n");
    return 2;
  }
  bool directed = args.Has("directed");
  auto graph = ReadEdgeListFile(graph_path, /*undirected=*/!directed);
  if (!graph.ok()) return Fail(graph.status());
  const Graph& g = graph.value();

  uint32_t k = static_cast<uint32_t>(args.GetInt("k", 16));
  uint64_t seed = args.GetInt("seed", 42);
  std::string flavor_name = args.Get("flavor", "bottom-k");
  SketchFlavor flavor = SketchFlavor::kBottomK;
  if (flavor_name == "k-mins") flavor = SketchFlavor::kKMins;
  else if (flavor_name == "k-partition") flavor = SketchFlavor::kKPartition;
  else if (flavor_name != "bottom-k") {
    std::fprintf(stderr, "unknown --flavor %s\n", flavor_name.c_str());
    return 2;
  }
  double base = args.GetDouble("base", 0.0);
  RankAssignment ranks = base > 1.0 ? RankAssignment::BaseB(seed, base)
                                    : RankAssignment::Uniform(seed);

  // --threads N: parallel builders (0 = hardware count). Output is
  // bit-identical to the sequential builders for every thread count.
  uint32_t threads =
      static_cast<uint32_t>(args.GetInt("threads", HardwareThreads()));
  AdsBuildStats stats;
  AdsSet set =
      g.IsUnitWeight()
          ? BuildAdsDpParallel(g, k, flavor, ranks, threads, &stats)
          : BuildAdsPrunedDijkstraParallel(g, k, flavor, ranks, threads,
                                           &stats);
  std::string out = args.Get("out", "sketches.ads");
  uint32_t shards = static_cast<uint32_t>(args.GetInt("shards", 0));
  std::string format_name = args.Get("format", "text");
  AdsFileFormat format;
  if (!ParseFormatFlag(format_name, &format)) return 2;
  if (shards > 0 && args.Has("format") &&
      format != AdsFileFormat::kBinaryV2) {
    std::fprintf(stderr,
                 "--shards writes hipads-ads-v2 binary shards; "
                 "--format %s conflicts\n",
                 format_name.c_str());
    return 2;
  }
  // --hip 1: precompute the HIP estimator weights once, at build time, and
  // store them in the v2 binary's optional HIP section so every serving
  // engine materializes estimators as a pointer wrap instead of a scan.
  const bool add_hip = args.GetInt("hip", 0) != 0;
  if (add_hip && shards == 0 && format != AdsFileFormat::kBinaryV2) {
    std::fprintf(stderr,
                 "--hip requires the v2 binary format (the text format has "
                 "no HIP section)\n");
    return 2;
  }
  // Both layouts serialize to byte-identical bytes, so write straight from
  // the builder output; query/stats load files into the flat arena. The
  // HIP path goes through the flat arena, whose entry positions the stored
  // weight arrays align with.
  Status s;
  if (add_hip) {
    FlatAdsSet flat = FlatAdsSet::FromAdsSet(set);
    PrecomputeHipWeights(&flat, threads);
    s = shards > 0 ? WriteShardedAdsSet(flat, out, shards)
                   : WriteAdsSetFile(flat, out, format);
  } else {
    s = shards > 0 ? WriteShardedAdsSet(FlatAdsSet::FromAdsSet(set), out,
                                        shards)
                   : WriteAdsSetFile(set, out, format);
  }
  if (!s.ok()) return Fail(s);
  std::printf(
      "sketched %u nodes (k=%u, %s, %u threads): %llu entries (%.1f/node), "
      "%llu relaxations -> %s%s\n",
      g.num_nodes(), k, flavor_name.c_str(), threads,
      static_cast<unsigned long long>(set.TotalEntries()),
      static_cast<double>(set.TotalEntries()) / g.num_nodes(),
      static_cast<unsigned long long>(stats.relaxations), out.c_str(),
      shards > 0 ? " (sharded)" : "");
  return 0;
}

int CmdConvert(const Args& args) {
  std::string in = args.Get("in", "");
  std::string out = args.Get("out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "convert requires --in FILE --out FILE\n");
    return 2;
  }
  AdsFileFormat format;
  if (!ParseFormatFlag(args.Get("format", "binary"), &format)) return 2;
  const bool add_hip = args.GetInt("hip", 0) != 0;
  const bool strip_hip = args.GetInt("strip-hip", 0) != 0;
  if (add_hip && strip_hip) {
    std::fprintf(stderr, "--hip and --strip-hip conflict\n");
    return 2;
  }
  if (add_hip && format != AdsFileFormat::kBinaryV2) {
    std::fprintf(stderr,
                 "--hip requires the v2 binary format (the text format has "
                 "no HIP section)\n");
    return 2;
  }
  auto loaded = ReadFlatAdsSetFile(in);
  if (!loaded.ok()) return Fail(loaded.status());
  FlatAdsSet set = std::move(loaded).value();
  if (strip_hip) {
    set.hip_tau.clear();
    set.hip_weight.clear();
  } else if (add_hip && !set.has_hip()) {
    PrecomputeHipWeights(&set,
                         static_cast<uint32_t>(args.GetInt("threads", 0)));
  }
  Status s = WriteAdsSetFile(set, out, format);
  if (!s.ok()) return Fail(s);
  std::printf("converted %s -> %s (%s, %zu nodes, %llu entries, hip=%s)\n",
              in.c_str(), out.c_str(),
              format == AdsFileFormat::kBinaryV2 ? "hipads-ads-v2 binary"
                                                 : "hipads-ads-v1 text",
              set.num_nodes(),
              static_cast<unsigned long long>(set.TotalEntries()),
              set.has_hip() && format == AdsFileFormat::kBinaryV2
                  ? "resident"
                  : "scan");
  return 0;
}

int CmdShard(const Args& args) {
  std::string in = args.Get("in", "");
  std::string dir = args.Get("out-dir", "");
  if (in.empty() || dir.empty()) {
    std::fprintf(stderr,
                 "shard requires --in FILE --out-dir DIR [--shards N]\n");
    return 2;
  }
  uint32_t shards = static_cast<uint32_t>(args.GetInt("shards", 4));
  auto loaded = ReadFlatAdsSetFile(in);
  if (!loaded.ok()) return Fail(loaded.status());
  Status s = WriteShardedAdsSet(loaded.value(), dir, shards);
  if (!s.ok()) return Fail(s);
  std::printf("sharded %s -> %s: %u shards, %zu nodes, %llu entries\n",
              in.c_str(), dir.c_str(), shards, loaded.value().num_nodes(),
              static_cast<unsigned long long>(loaded.value().TotalEntries()));
  return 0;
}

void PrintTopTable(const TopKCollector& top, const std::string& kind) {
  Table t({"rank", "node", kind});
  std::vector<NodeId> nodes = top.TopNodes();
  for (size_t i = 0; i < nodes.size(); ++i) {
    t.NewRow()
        .Add(static_cast<uint64_t>(i + 1))
        .Add(static_cast<uint64_t>(nodes[i]))
        .Add(top.values()[nodes[i]], 6);
  }
  t.PrintText(std::cout);
}

void PrintNodeQuery(const Args& args, uint64_t node,
                    const HipEstimator& est) {
  if (args.Has("distance")) {
    double d = args.GetDouble("distance", 1.0);
    std::printf("|N_%g(%llu)| ~ %.1f\n", d,
                static_cast<unsigned long long>(node),
                est.NeighborhoodCardinality(d));
  } else {
    std::printf("node %llu: reachable ~ %.1f, harmonic ~ %.2f, "
                "distance sum ~ %.1f\n",
                static_cast<unsigned long long>(node), est.ReachableCount(),
                est.HarmonicCentrality(), est.DistanceSum());
  }
}

// One open path for every input kind (plain v1/v2 file or shard
// directory) and both storage modes. Sharded opens validate the manifest's
// file list up front, so a missing/truncated shard fails here — with a
// clear message and nonzero exit — never as a partial sweep.
StatusOr<std::unique_ptr<AdsBackend>> OpenServingBackend(const Args& args) {
  std::string backend = args.Get("backend", "copy");
  AdsBackendOptions options;
  if (backend == "mmap") {
    options.mode = BackendMode::kMmap;
  } else if (backend == "copy") {
    options.mode = BackendMode::kCopy;
  } else {
    return Status::InvalidArgument("unknown --backend " + backend +
                                   " (copy|mmap)");
  }
  options.max_resident = static_cast<uint32_t>(args.GetInt("resident", 1));
  // --prefetch D: lookahead depth of the sharded prefetch pipeline
  // (0 disables the background thread entirely).
  uint64_t prefetch = args.GetInt("prefetch", 1);
  options.prefetch = prefetch != 0;
  options.prefetch_depth =
      prefetch == 0 ? 1 : static_cast<uint32_t>(prefetch);
  return OpenAdsBackend(args.Get("sketches", "sketches.ads"), options);
}

// Parses a comma-separated node list ("4,8,15"); nullopt on anything that
// is not digits and commas, on a trailing comma, and on ids that would
// wrap the NodeId type.
std::optional<std::vector<NodeId>> ParseNodeList(const std::string& list) {
  std::vector<NodeId> nodes;
  const char* p = list.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    uint64_t value = std::strtoull(p, &end, 10);
    if (end == p || value > std::numeric_limits<NodeId>::max()) {
      return std::nullopt;
    }
    nodes.push_back(static_cast<NodeId>(value));
    if (*end == ',') {
      if (end[1] == '\0') return std::nullopt;
      ++end;
    } else if (*end != '\0') {
      return std::nullopt;
    }
    p = end;
  }
  return nodes;
}

// What a fused sweep produced, wherever it ran: typed collector pointers
// (spec order) plus the served set's shape for the header lines.
struct SweepOutcome {
  std::vector<SweepCollector*> collectors;
  size_t num_nodes = 0;
  uint32_t k = 0;
  uint64_t total_entries = 0;
};

// Shared engine of `query --top` and `stats`: builds the collectors the
// spec names, then runs ONE fused sweep — locally over the opened backend,
// or remotely by shipping the very same spec to a server/router
// (`--remote host:port`). Local and remote paths run identical collector
// objects, so their outputs are bitwise interchangeable. Returns a
// nonzero exit code on any failure, before anything is printed.
int ExecuteSpec(const Args& args, const std::vector<CollectorSpec>& spec,
                SweepPlan* plan, std::unique_ptr<AdsBackend>* backend,
                SweepOutcome* out) {
  auto built = BuildPlanFromSpec(spec, plan);
  if (!built.ok()) return Fail(built.status());
  out->collectors = built.value();
  uint32_t threads = static_cast<uint32_t>(args.GetInt("threads", 0));
  if (args.Has("remote")) {
    RemoteOptions remote = GetRemoteOptions(args);
    std::optional<ScopedTraceContext> trace_scope;
    MaybeStartTrace(args, &trace_scope);
    auto connected =
        ConnectSingleServerFleet(args.Get("remote", ""), remote);
    if (!connected.ok()) return Fail(connected.status());
    FleetRouter router = std::move(connected).value();
    if (router.node_begin() != 0) {
      return Fail(Status::InvalidArgument(
          "endpoint serves nodes [" + std::to_string(router.node_begin()) +
          ", " + std::to_string(router.num_nodes()) +
          "), not the full set — run sweeps through a fleet router"));
    }
    SweepRequestMsg request;
    request.collectors = spec;
    request.num_threads = threads;
    Status s = router.ExecuteSweep(request, out->collectors,
                                   RemoteDeadline(remote));
    if (!s.ok()) return Fail(s);
    out->num_nodes = router.num_nodes();
    out->k = router.k();
    out->total_entries = router.total_entries();
    return 0;
  }
  auto opened = OpenServingBackend(args);
  if (!opened.ok()) return Fail(opened.status());
  *backend = std::move(opened).value();
  Status swept = RunSweep(**backend, *plan, threads);
  if (!swept.ok()) return Fail(swept);
  out->num_nodes = (*backend)->num_nodes();
  out->k = (*backend)->k();
  out->total_entries = (*backend)->TotalEntries();
  return 0;
}

// `query --remote`: point requests answered by a range server or fleet
// router; the output format matches the local paths line for line. The
// call goes through the single-server fleet wrapper, so --timeout-ms,
// --retries and --hedge all apply.
int RemotePointQuery(const Args& args, uint64_t node) {
  RemoteOptions remote = GetRemoteOptions(args);
  std::optional<ScopedTraceContext> trace_scope;
  MaybeStartTrace(args, &trace_scope);
  auto connected = ConnectSingleServerFleet(args.Get("remote", ""), remote);
  if (!connected.ok()) return Fail(connected.status());
  FleetRouter router = std::move(connected).value();
  Deadline deadline = RemoteDeadline(remote);
  auto point = [&](const PointRequestMsg& request) {
    return router.Point(request, deadline);
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();

  if (args.Has("lookup")) {
    auto targets = ParseNodeList(args.Get("lookup", ""));
    if (!targets.has_value()) {
      std::fprintf(stderr, "bad --lookup list '%s' (want n1,n2,...)\n",
                   args.Get("lookup", "").c_str());
      return 2;
    }
    PointRequestMsg request;
    request.kind = PointKind::kLookup;
    request.node = node;
    request.targets.assign(targets->begin(), targets->end());
    auto response = point(request);
    if (!response.ok()) return Fail(response.status());
    if (response.value().values.size() != targets->size()) {
      return Fail(Status::Corruption("lookup response size mismatch"));
    }
    for (size_t i = 0; i < targets->size(); ++i) {
      double d = response.value().values[i];
      if (d < 0.0) {
        std::printf("node %llu: %u not sketched\n",
                    static_cast<unsigned long long>(node),
                    targets.value()[i]);
      } else {
        std::printf("node %llu: d(%u) = %g\n",
                    static_cast<unsigned long long>(node),
                    targets.value()[i], d);
      }
    }
    return 0;
  }

  if (args.Has("jaccard")) {
    PointRequestMsg request;
    request.kind = PointKind::kJaccard;
    request.node = node;
    request.other = args.GetInt("jaccard", 0);
    request.d = args.GetDouble("distance", kInf);
    auto response = point(request);
    if (!response.ok()) return Fail(response.status());
    if (response.value().values.size() != 2) {
      return Fail(Status::Corruption("jaccard response size mismatch"));
    }
    double jaccard = response.value().values[0];
    double uni = response.value().values[1];
    std::printf("J(%llu, %llu; d=%g) ~ %.4f, |intersection| ~ %.1f\n",
                static_cast<unsigned long long>(node),
                static_cast<unsigned long long>(request.other), request.d,
                jaccard, jaccard * uni);
    return 0;
  }

  PointRequestMsg request;
  request.kind = PointKind::kNodeStats;
  request.node = node;
  request.d = args.Has("distance") ? args.GetDouble("distance", 1.0) : kInf;
  auto response = point(request);
  if (!response.ok()) return Fail(response.status());
  const std::vector<double>& values = response.value().values;
  // The server dispatches on whether d is infinite (the triple vs the
  // single cardinality), so mirror that here — not the flag — to keep
  // `--distance inf` byte-identical to the local path, where N_inf is the
  // reachable count.
  if (std::isinf(request.d)) {
    if (values.size() != 3) {
      return Fail(Status::Corruption("node-stats response size mismatch"));
    }
    if (args.Has("distance")) {
      std::printf("|N_%g(%llu)| ~ %.1f\n", request.d,
                  static_cast<unsigned long long>(node), values[0]);
    } else {
      std::printf("node %llu: reachable ~ %.1f, harmonic ~ %.2f, "
                  "distance sum ~ %.1f\n",
                  static_cast<unsigned long long>(node), values[0], values[1],
                  values[2]);
    }
  } else {
    if (values.size() != 1) {
      return Fail(Status::Corruption("node-stats response size mismatch"));
    }
    std::printf("|N_%g(%llu)| ~ %.1f\n", request.d,
                static_cast<unsigned long long>(node), values[0]);
  }
  return 0;
}

int CmdQuery(const Args& args) {
  if (args.Has("top")) {
    std::string kind = args.Get("centrality", "harmonic");
    ScoreKind score;
    if (!ParseScoreKind(kind, &score)) {
      return Fail(Status::InvalidArgument("unknown --centrality " + kind));
    }
    std::vector<CollectorSpec> spec{
        {CollectorKind::kTopK, static_cast<uint32_t>(score),
         static_cast<uint32_t>(args.GetInt("top", 10)), 0.0}};
    SweepPlan plan;
    std::unique_ptr<AdsBackend> backend;
    SweepOutcome out;
    int rc = ExecuteSpec(args, spec, &plan, &backend, &out);
    if (rc != 0) return rc;
    PrintTopTable(*static_cast<TopKCollector*>(out.collectors[0]), kind);
    return 0;
  }

  uint64_t node = args.GetInt("node", 0);
  if (args.Has("remote")) return RemotePointQuery(args, node);

  auto opened = OpenServingBackend(args);
  if (!opened.ok()) return Fail(opened.status());
  const AdsBackend& set = *opened.value();
  if (node >= set.num_nodes()) {
    std::fprintf(stderr, "node %llu out of range (%zu nodes)\n",
                 static_cast<unsigned long long>(node), set.num_nodes());
    return 2;
  }
  auto view = set.ViewOf(static_cast<NodeId>(node));
  if (!view.ok()) return Fail(view.status());

  if (args.Has("lookup")) {
    auto targets = ParseNodeList(args.Get("lookup", ""));
    if (!targets.has_value()) {
      std::fprintf(stderr, "bad --lookup list '%s' (want n1,n2,...)\n",
                   args.Get("lookup", "").c_str());
      return 2;
    }
    // Point lookups against ADS(node) through the node-sorted index
    // (binary search instead of a linear sketch scan per target).
    AdsNodeIndex index(view.value());
    for (NodeId target : targets.value()) {
      double d = index.DistanceOf(target);
      if (d < 0.0) {
        std::printf("node %llu: %u not sketched\n",
                    static_cast<unsigned long long>(node), target);
      } else {
        std::printf("node %llu: d(%u) = %g\n",
                    static_cast<unsigned long long>(node), target, d);
      }
    }
    return 0;
  }

  if (args.Has("jaccard")) {
    uint64_t other = args.GetInt("jaccard", 0);
    if (other >= set.num_nodes()) {
      std::fprintf(stderr, "node %llu out of range (%zu nodes)\n",
                   static_cast<unsigned long long>(other), set.num_nodes());
      return 2;
    }
    // Fetching the other node's view may evict the shard backing the
    // first one (bounded residency), so pin a copy of the first sketch.
    std::vector<AdsEntry> pinned(view.value().entries().begin(),
                                 view.value().entries().end());
    AdsView u_view{std::span<const AdsEntry>(pinned)};
    auto other_view = set.ViewOf(static_cast<NodeId>(other));
    if (!other_view.ok()) return Fail(other_view.status());
    double d = args.GetDouble("distance",
                              std::numeric_limits<double>::infinity());
    double sup = set.ranks().sup();
    double jaccard =
        JaccardSimilarity(u_view, other_view.value(), d, set.k(), sup);
    double uni = UnionCardinality(u_view, other_view.value(), d, set.k(), sup);
    std::printf("J(%llu, %llu; d=%g) ~ %.4f, |intersection| ~ %.1f\n",
                static_cast<unsigned long long>(node),
                static_cast<unsigned long long>(other), d, jaccard,
                jaccard * uni);
    return 0;
  }

  HipEstimator est(view.value(), set.k(), set.flavor(), set.ranks());
  PrintNodeQuery(args, node, est);
  return 0;
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

// Everything `stats` prints comes from ONE fused sweep (ads/sweep.h): the
// distance-histogram collector yields the neighbourhood function, the
// effective diameter and the mean distance; --top N, --distance-quantile Q
// and --qg KIND each add one collector to the same plan. However many
// statistics are requested, a sharded set reads every shard file exactly
// once — and with --remote the identical spec runs on a server or fleet
// router, with bitwise-identical results.
int CmdStats(const Args& args) {
  double quantile = args.GetDouble("quantile", 0.9);
  std::string kind = args.Get("centrality", "harmonic");

  std::vector<CollectorSpec> spec{
      {CollectorKind::kDistanceHistogram, 0, 0, 0.0}};
  size_t top_at = 0;
  if (args.Has("top")) {
    ScoreKind score;
    if (!ParseScoreKind(kind, &score)) {
      return Fail(Status::InvalidArgument("unknown --centrality " + kind));
    }
    top_at = spec.size();
    spec.push_back({CollectorKind::kTopK, static_cast<uint32_t>(score),
                    static_cast<uint32_t>(args.GetInt("top", 10)), 0.0});
  }
  size_t quant_at = 0;
  double quant_q = args.GetDouble("distance-quantile", 0.5);
  if (args.Has("distance-quantile")) {
    quant_at = spec.size();
    spec.push_back({CollectorKind::kDistanceQuantile, 0, 0, quant_q});
  }
  size_t qg_at = 0;
  std::string qg_name = args.Get("qg", "");
  double qg_param = args.GetDouble("qg-param", 0.5);
  if (args.Has("qg")) {
    QgKind g;
    if (!ParseQgKind(qg_name, &g)) {
      return Fail(Status::InvalidArgument("unknown --qg " + qg_name +
                                          " (exp|invsq)"));
    }
    qg_at = spec.size();
    spec.push_back(
        {CollectorKind::kQg, static_cast<uint32_t>(g), 0, qg_param});
  }

  SweepPlan plan;
  std::unique_ptr<AdsBackend> backend;
  SweepOutcome out;
  int rc = ExecuteSpec(args, spec, &plan, &backend, &out);
  if (rc != 0) return rc;
  auto* hist = static_cast<DistanceHistogramCollector*>(out.collectors[0]);

  // Build the cumulative neighbourhood function once; the effective
  // diameter is a quantile scan of it and the table prints its head.
  std::map<double, double> nf = hist->NeighborhoodFunction();
  double total = nf.empty() ? 0.0 : nf.rbegin()->second;
  double eff_diameter = nf.empty() ? 0.0 : nf.rbegin()->first;
  for (const auto& [d, pairs] : nf) {
    if (pairs >= quantile * total) {
      eff_diameter = d;
      break;
    }
  }
  // hip=resident means every point estimator materializes from storage-
  // resident weights (a pointer wrap); scan recomputes them per node. The
  // answers are bitwise identical either way — this is about speed, so it
  // goes to stderr as engine diagnostics: stdout stays bitwise
  // interchangeable between local and --remote runs (a tested guarantee),
  // and a remote sweep has no local backend to probe anyway.
  if (backend != nullptr) {
    std::fprintf(stderr, "hip=%s\n",
                 backend->HipResident() ? "resident" : "scan");
  }
  std::printf("nodes: %zu, k=%u, entries=%llu\n", out.num_nodes, out.k,
              static_cast<unsigned long long>(out.total_entries));
  std::printf("effective diameter (%g): %.1f\n", quantile, eff_diameter);
  std::printf("mean distance: %.2f\n", hist->MeanDistance());
  if (top_at != 0) {
    PrintTopTable(*static_cast<TopKCollector*>(out.collectors[top_at]),
                  kind);
  }
  if (quant_at != 0) {
    auto* quant =
        static_cast<DistanceQuantileCollector*>(out.collectors[quant_at]);
    std::printf("per-node distance quantile (q=%g): mean %.2f\n", quant_q,
                MeanOf(quant->values()));
  }
  if (qg_at != 0) {
    auto* qg = static_cast<QgCollector*>(out.collectors[qg_at]);
    std::printf("Q_g (%s, param %g): mean %.4f\n", qg_name.c_str(), qg_param,
                MeanOf(qg->values()));
  }
  Table t({"d", "pairs within d"});
  for (const auto& [d, pairs] : nf) {
    t.NewRow().Add(d, 4).Add(pairs, 6);
    if (pairs >= 0.99 * total) break;
  }
  t.PrintText(std::cout);
  return 0;
}

// Scrapes the endpoint once and prints every snapshot it returned — one
// "== label ==" block per process (a server answers with one block named
// "server"; a router prepends its own "router" block and labels each
// range server's block with its address).
Status ScrapeOnce(Channel* channel, const Deadline& deadline) {
  AdsClient client(channel, deadline);
  auto response = client.Stats();
  if (!response.ok()) return response.status();
  for (const StatsSnapshotMsg& snap : response.value().snapshots) {
    std::printf("== %s ==\n%s", snap.label.c_str(),
                snap.metrics.ToText().c_str());
  }
  std::fflush(stdout);
  return Status::Ok();
}

// `stats-scrape --remote ADDR [--watch N] [--timeout-ms T]`: wire-scrape
// an endpoint's metrics registry; --watch re-scrapes every N seconds
// until interrupted.
int CmdStatsScrape(const Args& args) {
  RemoteOptions remote = GetRemoteOptions(args);
  std::string address = args.Get("remote", "");
  auto channel =
      TcpChannel::ConnectAddress(address, RemoteChannelOptions(remote));
  if (!channel.ok()) return Fail(channel.status());
  uint64_t watch_s = args.GetInt("watch", 0);
  for (;;) {
    Status s = ScrapeOnce(channel.value().get(), RemoteDeadline(remote));
    if (!s.ok()) return Fail(s);
    if (watch_s == 0) return 0;
    std::printf("\n");
    sleep(static_cast<unsigned>(watch_s));
  }
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

// `trace-dump --remote ADDR [--out FILE]`: drains the endpoint's span
// buffer (routers gather every range server's buffer too) and renders
// Chrome trace-event JSON — one "process" per source label, one "thread"
// per distinct trace id, so chrome://tracing lays concurrent traces out
// on separate rows. Span timestamps are per-process steady-clock micros:
// ordering is meaningful within one source row, not across machines.
int CmdTraceDump(const Args& args) {
  RemoteOptions remote = GetRemoteOptions(args);
  std::string address = args.Get("remote", "");
  auto channel =
      TcpChannel::ConnectAddress(address, RemoteChannelOptions(remote));
  if (!channel.ok()) return Fail(channel.status());
  AdsClient client(channel.value().get(), RemoteDeadline(remote));
  auto response = client.Stats(kStatsFlagTraceSpans);
  if (!response.ok()) return Fail(response.status());
  const std::vector<TraceSpanMsg>& spans = response.value().spans;

  std::map<std::string, int> pids;       // source label -> pid
  std::map<std::string, int> tids;       // trace id -> tid (per label)
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpanMsg& span : spans) {
    auto [pid_it, inserted] =
        pids.emplace(span.label, static_cast<int>(pids.size()) + 1);
    if (inserted) {
      if (!first) json.push_back(',');
      first = false;
      json += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
              std::to_string(pid_it->second) + ",\"args\":{\"name\":\"";
      AppendJsonEscaped(span.label, &json);
      json += "\"}}";
    }
    char trace_id[48];
    std::snprintf(trace_id, sizeof(trace_id), "%016llx%016llx",
                  static_cast<unsigned long long>(span.trace_hi),
                  static_cast<unsigned long long>(span.trace_lo));
    auto [tid_it, unused] = tids.emplace(span.label + "/" + trace_id,
                                         static_cast<int>(tids.size()) + 1);
    if (!first) json.push_back(',');
    first = false;
    json += "{\"name\":\"";
    AppendJsonEscaped(span.name, &json);
    json += "\",\"cat\":\"hipads\",\"ph\":\"X\",\"ts\":" +
            std::to_string(span.start_us) +
            ",\"dur\":" + std::to_string(span.dur_us) +
            ",\"pid\":" + std::to_string(pid_it->second) +
            ",\"tid\":" + std::to_string(tid_it->second) +
            ",\"args\":{\"trace\":\"" + trace_id + "\"}}";
  }
  json += "]}\n";

  std::string out_path = args.Get("out", "");
  if (out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IOError("cannot write " + out_path));
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  std::fprintf(stderr, "%zu spans from %zu sources\n", spans.size(),
               pids.size());
  if (spans.empty()) {
    std::fprintf(stderr,
                 "hint: traced requests fill the buffer — run e.g. "
                 "`hipads_cli query --remote %s ... --trace 1` first\n",
                 address.c_str());
  }
  return 0;
}

// Blocks under a serving loop forever; with an interval, dumps the local
// metrics registry to stderr every `metrics_interval_s` seconds in the
// scrape text format.
[[noreturn]] void ServeForever(uint64_t metrics_interval_s) {
  if (metrics_interval_s == 0) {
    for (;;) pause();
  }
  for (;;) {
    sleep(static_cast<unsigned>(metrics_interval_s));
    std::string text = MetricsRegistry::Get().Snapshot().ToText();
    std::fprintf(stderr, "-- metrics --\n%s", text.c_str());
    std::fflush(stderr);
  }
}

// `serve`: expose one backend — any engine, any node range — over TCP.
int CmdServe(const Args& args) {
  auto opened = OpenServingBackend(args);
  if (!opened.ok()) return Fail(opened.status());
  ServerOptions options;
  options.node_begin = static_cast<NodeId>(args.GetInt("node-begin", 0));
  options.num_threads = static_cast<uint32_t>(args.GetInt("threads", 0));
  AdsServerCore core(opened.value().get(), options);
  TcpServerOptions tcp;
  tcp.port = static_cast<uint16_t>(args.GetInt("port", 7470));
  tcp.num_workers = static_cast<uint32_t>(args.GetInt("workers", 4));
  // --timeout-ms bounds how long a connection may dribble one frame in
  // (slow-loris defense); idle connections between frames are unbounded.
  tcp.idle_timeout_ms = args.GetInt("timeout-ms", 0);
  TcpServer server(&core, tcp);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  ServerInfoMsg info = core.Info();
  std::printf(
      "serving nodes [%llu, %llu) (k=%u, %llu entries, hip=%s) on port %u\n",
      static_cast<unsigned long long>(info.node_begin),
      static_cast<unsigned long long>(info.node_end), info.k,
      static_cast<unsigned long long>(info.total_entries),
      opened.value()->HipResident() ? "resident" : "scan", server.port());
  std::fflush(stdout);
  ServeForever(args.GetInt("metrics-interval-s", 0));
}

// `route`: the scatter/gather front end over a fleet manifest. Connects
// (and validates) the whole fleet before binding its own port, so a dead
// or misconfigured range server fails startup with a nonzero exit.
int CmdRoute(const Args& args) {
  auto manifest = ReadFleetManifestFile(args.Get("fleet", "fleet.txt"));
  if (!manifest.ok()) return Fail(manifest.status());
  RemoteOptions remote = GetRemoteOptions(args);
  RouterOptions router_options;
  router_options.timeout_ms = remote.timeout_ms;
  router_options.retries = remote.retries;
  router_options.hedge = remote.hedge;
  router_options.coalesce_window_us = remote.coalesce_us;
  auto connected = FleetRouter::Connect(
      std::move(manifest).value(),
      TcpChannelFactory(RemoteChannelOptions(remote)), router_options);
  if (!connected.ok()) return Fail(connected.status());
  FleetRouter router = std::move(connected).value();
  RouterCore core(&router);
  TcpServerOptions tcp;
  tcp.port = static_cast<uint16_t>(args.GetInt("port", 7480));
  tcp.num_workers = static_cast<uint32_t>(args.GetInt("workers", 4));
  tcp.idle_timeout_ms = args.GetInt("timeout-ms", 0);
  TcpServer server(&core, tcp);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::printf("routing %zu range servers, %llu nodes (k=%u) on port %u\n",
              router.num_servers(),
              static_cast<unsigned long long>(router.num_nodes()), router.k(),
              server.port());
  std::fflush(stdout);
  ServeForever(args.GetInt("metrics-interval-s", 0));
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: hipads_cli {generate|sketch|convert|shard|query|"
                 "stats|serve|route|stats-scrape|trace-dump} "
                 "[--flag value]...\n");
    return 2;
  }
  std::string cmd = argv[1];
  Args args(argc - 2, argv + 2);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "sketch") return CmdSketch(args);
  if (cmd == "convert") return CmdConvert(args);
  if (cmd == "shard") return CmdShard(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "route") return CmdRoute(args);
  if (cmd == "stats-scrape") return CmdStatsScrape(args);
  if (cmd == "trace-dump") return CmdTraceDump(args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) { return hipads::Main(argc, argv); }
