// hipads-lint driver: `hipads_lint [repo-root]` (default "."). Prints
// every finding as `file:line: rule-id: message` and exits nonzero when
// any rule fired, so it slots into ctest and CI unchanged.

#include <cstdio>

#include "tools/hipads_lint.h"

int main(int argc, char** argv) {
  const char* root = argc > 1 ? argv[1] : ".";
  std::vector<hipads::lint::Finding> findings =
      hipads::lint::LintTree(root);
  for (const auto& f : findings) {
    std::fprintf(stderr, "%s\n", hipads::lint::FormatFinding(f).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "hipads-lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("hipads-lint: clean\n");
  return 0;
}
