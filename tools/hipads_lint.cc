#include "tools/hipads_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace hipads {
namespace lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True if `text` contains `token` as a whole word: the characters on
/// both sides are not identifier characters. Tokens may contain "::".
bool ContainsToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// The per-file view every rule works on: original lines (for allow
/// comments), stripped lines (for token matching), and the stripped
/// text as one string (for brace/angle balancing across lines).
struct FileView {
  const FileInput* input = nullptr;
  std::string stripped;
  std::vector<std::string> raw_lines;
  std::vector<std::string> stripped_lines;
};

/// 1-based line number of byte offset `pos` in `text`.
size_t LineOf(const std::string& text, size_t pos) {
  return 1 + static_cast<size_t>(
                 std::count(text.begin(), text.begin() + pos, '\n'));
}

/// True when the ORIGINAL line carries an inline allow for `rule`:
///   ... // hipads-lint: allow(HL005)
bool LineAllows(const FileView& f, size_t line, const std::string& rule) {
  if (line == 0 || line > f.raw_lines.size()) return false;
  const std::string& raw = f.raw_lines[line - 1];
  size_t pos = raw.find("hipads-lint:");
  while (pos != std::string::npos) {
    size_t allow = raw.find("allow(", pos);
    if (allow == std::string::npos) break;
    size_t close = raw.find(')', allow);
    if (close == std::string::npos) break;
    std::string id = raw.substr(allow + 6, close - (allow + 6));
    if (id == rule) return true;
    pos = raw.find("hipads-lint:", close);
  }
  return false;
}

void Report(std::vector<Finding>* out, const FileView& f, size_t line,
            const std::string& rule, const std::string& message) {
  if (LineAllows(f, line, rule)) return;
  out->push_back(Finding{f.input->path, line, rule, message});
}

// ---------------------------------------------------------------------
// HL001 — nondeterminism primitives in deterministic estimator paths.
// ---------------------------------------------------------------------

bool InDeterministicPath(const std::string& path) {
  return StartsWith(path, "src/ads/") || StartsWith(path, "src/sketch/") ||
         StartsWith(path, "src/graph/") || StartsWith(path, "src/stream/");
}

void RunHL001(const FileView& f, std::vector<Finding>* out) {
  if (!InDeterministicPath(f.input->path)) return;
  static const char* kIdentTokens[] = {
      "rand",          "srand",        "random_device", "mt19937",
      "mt19937_64",    "steady_clock", "system_clock",  "high_resolution_clock",
  };
  for (size_t i = 0; i < f.stripped_lines.size(); ++i) {
    const std::string& line = f.stripped_lines[i];
    for (const char* token : kIdentTokens) {
      if (ContainsToken(line, token)) {
        Report(out, f, i + 1, "HL001",
               std::string("nondeterminism primitive '") + token +
                   "' in a deterministic estimator path — HIP statistics "
                   "must be bitwise reproducible");
        break;
      }
    }
    // `time(` the libc call — word-bounded `time` directly followed by
    // `(` so RunTime(...), mtime(...) and the like stay silent.
    size_t pos = 0;
    while ((pos = line.find("time(", pos)) != std::string::npos) {
      if (pos == 0 || !IsIdentChar(line[pos - 1])) {
        Report(out, f, i + 1, "HL001",
               "call to time() in a deterministic estimator path");
        break;
      }
      pos += 1;
    }
  }
}

// ---------------------------------------------------------------------
// HL002 — hash-order iteration in sweep reduce / gather code.
// ---------------------------------------------------------------------

bool InOrderSensitivePath(const std::string& path) {
  if (StartsWith(path, "src/serve/")) return true;
  if (StartsWith(path, "src/ads/") &&
      path.find("sweep") != std::string::npos) {
    return true;
  }
  return false;
}

/// Names of variables declared with an unordered container type in the
/// stripped text. Parsing is shallow on purpose: find the type token,
/// balance the template angle brackets, and read the declared
/// identifier after them (skipping function declarations, whose name is
/// followed by '(').
std::set<std::string> UnorderedContainerNames(const std::string& stripped) {
  std::set<std::string> names;
  static const char* kTypes[] = {"std::unordered_map<",
                                 "std::unordered_set<",
                                 "std::unordered_multimap<",
                                 "std::unordered_multiset<"};
  for (const char* type : kTypes) {
    size_t pos = 0;
    while ((pos = stripped.find(type, pos)) != std::string::npos) {
      size_t open = pos + std::string(type).size() - 1;
      int depth = 0;
      size_t i = open;
      for (; i < stripped.size(); ++i) {
        if (stripped[i] == '<') ++depth;
        if (stripped[i] == '>') {
          if (--depth == 0) break;
        }
      }
      pos = i;
      if (i >= stripped.size()) break;
      ++i;  // past the closing '>'
      while (i < stripped.size() &&
             (stripped[i] == ' ' || stripped[i] == '&' ||
              stripped[i] == '\n')) {
        ++i;
      }
      size_t name_begin = i;
      while (i < stripped.size() && IsIdentChar(stripped[i])) ++i;
      if (i == name_begin) continue;
      size_t after = i;
      while (after < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[after]))) {
        ++after;
      }
      if (after < stripped.size() && stripped[after] == '(') continue;
      names.insert(stripped.substr(name_begin, i - name_begin));
    }
  }
  return names;
}

void RunHL002(const FileView& f, std::vector<Finding>* out) {
  if (!InOrderSensitivePath(f.input->path)) return;
  std::set<std::string> names = UnorderedContainerNames(f.stripped);
  if (names.empty()) return;
  for (size_t i = 0; i < f.stripped_lines.size(); ++i) {
    const std::string& line = f.stripped_lines[i];
    for (const std::string& name : names) {
      bool range_for = false;
      if (ContainsToken(line, "for")) {
        size_t colon = line.find(':');
        while (colon != std::string::npos && !range_for) {
          size_t j = colon + 1;
          while (j < line.size() && line[j] == ' ') ++j;
          if (line.compare(j, name.size(), name) == 0 &&
              (j + name.size() >= line.size() ||
               !IsIdentChar(line[j + name.size()]))) {
            range_for = true;
          }
          colon = line.find(':', colon + 1);
        }
      }
      bool iterated = range_for || ContainsToken(line, name + ".begin") ||
                      ContainsToken(line, name + ".cbegin");
      if (iterated) {
        Report(out, f, i + 1, "HL002",
               "iteration over unordered container '" + name +
                   "' in order-sensitive sweep/gather code — hash order "
                   "is not deterministic; iterate a sorted view instead");
      }
    }
  }
}

// ---------------------------------------------------------------------
// HL003 — EncodePartial override without AbsorbPartial override.
// ---------------------------------------------------------------------

/// True when the class body overrides `method`: an occurrence of the
/// method name whose declaration (text up to the next '{' or ';')
/// carries the `override` keyword.
bool OverridesMethod(const std::string& body, const std::string& method) {
  size_t pos = 0;
  while ((pos = body.find(method, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(body[pos - 1]);
    size_t decl_end = body.find_first_of("{;", pos);
    if (left_ok && decl_end != std::string::npos) {
      std::string decl = body.substr(pos, decl_end - pos);
      if (ContainsToken(decl, "override")) return true;
    }
    pos += method.size();
  }
  return false;
}

void RunHL003(const FileView& f, std::vector<Finding>* out) {
  const std::string& path = f.input->path;
  if (!StartsWith(path, "src/") || !EndsWith(path, ".h")) return;
  const std::string& text = f.stripped;
  for (const char* keyword : {"class ", "struct "}) {
    size_t pos = 0;
    while ((pos = text.find(keyword, pos)) != std::string::npos) {
      size_t decl = pos;
      pos += std::string(keyword).size();
      // Word boundary on the left ("subclass " must not match).
      if (decl > 0 && IsIdentChar(text[decl - 1])) continue;
      size_t name_begin = pos;
      while (name_begin < text.size() &&
             std::isspace(static_cast<unsigned char>(text[name_begin]))) {
        ++name_begin;
      }
      size_t name_end = name_begin;
      while (name_end < text.size() && IsIdentChar(text[name_end])) {
        ++name_end;
      }
      if (name_end == name_begin) continue;
      std::string name = text.substr(name_begin, name_end - name_begin);
      // Forward declarations and template parameters have no body.
      size_t body_or_semi = text.find_first_of("{;", name_end);
      if (body_or_semi == std::string::npos || text[body_or_semi] == ';') {
        continue;
      }
      size_t open = body_or_semi;
      int depth = 0;
      size_t i = open;
      for (; i < text.size(); ++i) {
        if (text[i] == '{') ++depth;
        if (text[i] == '}') {
          if (--depth == 0) break;
        }
      }
      if (i >= text.size()) break;
      std::string body = text.substr(open, i - open);
      if (OverridesMethod(body, "EncodePartial") &&
          !OverridesMethod(body, "AbsorbPartial")) {
        Report(out, f, LineOf(text, decl), "HL003",
               "collector '" + name +
                   "' overrides EncodePartial without overriding "
                   "AbsorbPartial — remote partials would decode through "
                   "the base implementation");
      }
      pos = open + 1;
    }
  }
}

// ---------------------------------------------------------------------
// HL004 — wire-protocol enum coverage in serve sources + fuzz corpus.
// ---------------------------------------------------------------------

struct Enumerator {
  std::string enum_name;
  std::string name;
  size_t line = 0;
};

std::vector<Enumerator> ParseProtocolEnums(const std::string& stripped) {
  std::vector<Enumerator> result;
  size_t pos = 0;
  while ((pos = stripped.find("enum class ", pos)) != std::string::npos) {
    size_t name_begin = pos + std::string("enum class ").size();
    size_t name_end = name_begin;
    while (name_end < stripped.size() && IsIdentChar(stripped[name_end])) {
      ++name_end;
    }
    std::string enum_name =
        stripped.substr(name_begin, name_end - name_begin);
    size_t open = stripped.find('{', name_end);
    size_t close = open == std::string::npos
                       ? std::string::npos
                       : stripped.find('}', open);
    pos = name_end;
    if (open == std::string::npos || close == std::string::npos) continue;
    size_t entry_begin = open + 1;
    while (entry_begin < close) {
      size_t entry_end = stripped.find(',', entry_begin);
      if (entry_end == std::string::npos || entry_end > close) {
        entry_end = close;
      }
      size_t i = entry_begin;
      while (i < entry_end &&
             std::isspace(static_cast<unsigned char>(stripped[i]))) {
        ++i;
      }
      size_t id_end = i;
      while (id_end < entry_end && IsIdentChar(stripped[id_end])) ++id_end;
      if (id_end > i) {
        result.push_back(Enumerator{enum_name, stripped.substr(i, id_end - i),
                                    LineOf(stripped, i)});
      }
      entry_begin = entry_end + 1;
    }
    pos = close;
  }
  return result;
}

void RunHL004(const std::vector<FileView>& files,
              std::vector<Finding>* out) {
  const FileView* protocol = nullptr;
  const FileView* fuzz = nullptr;
  std::vector<const FileView*> serve_sources;
  for (const FileView& f : files) {
    if (EndsWith(f.input->path, "serve/protocol.h")) protocol = &f;
    if (EndsWith(f.input->path, "serve_fuzz_test.cc")) fuzz = &f;
    if (f.input->path.find("serve/") != std::string::npos &&
        EndsWith(f.input->path, ".cc")) {
      serve_sources.push_back(&f);
    }
  }
  if (protocol == nullptr) return;  // nothing to cross-check against
  for (const Enumerator& e : ParseProtocolEnums(protocol->stripped)) {
    std::string qualified = e.enum_name + "::" + e.name;
    bool in_src = false;
    for (const FileView* f : serve_sources) {
      if (ContainsToken(f->stripped, qualified)) {
        in_src = true;
        break;
      }
    }
    if (!in_src) {
      Report(out, *protocol, e.line, "HL004",
             "wire enum constant " + qualified +
                 " is not referenced by any serve/*.cc encode/decode "
                 "path — dead or unhandled wire surface");
    }
    if (fuzz != nullptr && !ContainsToken(fuzz->stripped, qualified)) {
      Report(out, *protocol, e.line, "HL004",
             "wire enum constant " + qualified +
                 " is not exercised by the fuzz corpus "
                 "(tests/serve_fuzz_test.cc)");
    }
  }
}

// ---------------------------------------------------------------------
// HL005 — raw locking primitives outside the annotated wrapper.
// ---------------------------------------------------------------------

void RunHL005(const FileView& f, std::vector<Finding>* out) {
  if (!StartsWith(f.input->path, "src/")) return;
  static const char* kBanned[] = {
      "std::mutex",           "std::recursive_mutex",
      "std::timed_mutex",     "std::recursive_timed_mutex",
      "std::shared_mutex",    "std::shared_timed_mutex",
      "std::lock_guard",      "std::unique_lock",
      "std::scoped_lock",     "std::shared_lock",
      "std::condition_variable", "std::condition_variable_any",
  };
  static const char* kBannedIncludes[] = {"<mutex>", "<condition_variable>",
                                          "<shared_mutex>"};
  for (size_t i = 0; i < f.stripped_lines.size(); ++i) {
    const std::string& line = f.stripped_lines[i];
    for (const char* token : kBanned) {
      if (ContainsToken(line, token)) {
        Report(out, f, i + 1, "HL005",
               std::string("raw locking primitive '") + token +
                   "' — use hipads::Mutex / MutexLock / CondVar "
                   "(src/util/mutex.h) so -Wthread-safety can verify "
                   "the lock discipline");
        break;
      }
    }
    if (line.find("#include") != std::string::npos) {
      for (const char* inc : kBannedIncludes) {
        if (line.find(inc) != std::string::npos) {
          Report(out, f, i + 1, "HL005",
                 std::string("#include ") + inc +
                     " — include \"util/mutex.h\" instead");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// HL006 — wall-clock metric instruments outside the serving layer.
// ---------------------------------------------------------------------

void RunHL006(const FileView& f, std::vector<Finding>* out) {
  const std::string& path = f.input->path;
  if (!StartsWith(path, "src/")) return;
  if (StartsWith(path, "src/serve/")) return;
  if (StartsWith(path, "src/util/metrics.")) return;
  // "Histogram" word-bounded catches MetricsRegistry::Get().Histogram(...)
  // without firing on MetricHistogram (matched separately) or
  // HistogramValue (identifier continues).
  static const char* kBanned[] = {"MetricHistogram", "ScopedLatencyTimer",
                                  "Histogram"};
  for (size_t i = 0; i < f.stripped_lines.size(); ++i) {
    const std::string& line = f.stripped_lines[i];
    for (const char* token : kBanned) {
      if (ContainsToken(line, token)) {
        Report(out, f, i + 1, "HL006",
               std::string("wall-clock metric instrument '") + token +
                   "' outside src/serve — latency histograms read clocks; "
                   "the deterministic trees may record counters and "
                   "gauges only");
        break;
      }
    }
  }
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw strings would need delimiter tracking; the codebase
          // has none, and a raw string only over-blanks, never
          // under-blanks, with this handling.
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < text.size()) out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < text.size() && next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": " << f.rule << ": " << f.message;
  return os.str();
}

std::vector<Finding> RunLint(const std::vector<FileInput>& files) {
  std::vector<FileView> views;
  views.reserve(files.size());
  for (const FileInput& input : files) {
    FileView v;
    v.input = &input;
    v.stripped = StripCommentsAndStrings(input.content);
    v.raw_lines = SplitLines(input.content);
    v.stripped_lines = SplitLines(v.stripped);
    views.push_back(std::move(v));
  }
  std::vector<Finding> findings;
  for (const FileView& v : views) {
    RunHL001(v, &findings);
    RunHL002(v, &findings);
    RunHL003(v, &findings);
    RunHL005(v, &findings);
    RunHL006(v, &findings);
  }
  RunHL004(views, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<FileInput> files;
  std::vector<Finding> findings;
  for (const char* subdir : {"src", "tools", "tests"}) {
    fs::path base = fs::path(root) / subdir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      fs::path p = it->path();
      std::string ext = p.extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      std::string rel = fs::relative(p, root, ec).generic_string();
      if (ec) rel = p.generic_string();
      std::ifstream in(p, std::ios::binary);
      if (!in) {
        findings.push_back(Finding{rel, 0, "IO", "cannot read file"});
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back(FileInput{rel, buf.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileInput& a, const FileInput& b) {
              return a.path < b.path;
            });
  std::vector<Finding> lint_findings = RunLint(files);
  findings.insert(findings.end(), lint_findings.begin(),
                  lint_findings.end());
  return findings;
}

}  // namespace lint
}  // namespace hipads
