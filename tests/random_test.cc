#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace hipads {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextUnitInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextUnitMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double u = rng.NextUnit();
    sum += u;
    sum2 += u * u;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, NextBoundedRange) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedUniform) {
  Rng rng(17);
  const uint64_t bound = 7;
  std::vector<int> counts(bound, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[rng.NextBounded(bound)]++;
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], n / static_cast<int>(bound), 500);
  }
}

TEST(RngTest, NextExponentialMean) {
  Rng rng(19);
  for (double lambda : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.NextExponential(lambda);
    EXPECT_NEAR(sum / n, 1.0 / lambda, 0.03 / lambda);
  }
}

TEST(RngTest, NextBernoulliProbability) {
  Rng rng(23);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(29);
  auto perm = rng.NextPermutation(100);
  std::vector<uint32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationUniformFirstElement) {
  Rng rng(31);
  const uint32_t n = 10;
  std::vector<int> counts(n, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) counts[rng.NextPermutation(n)[0]]++;
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], trials / static_cast<int>(n), 400);
  }
}

TEST(RngTest, PermutationEmptyAndSingle) {
  Rng rng(37);
  EXPECT_TRUE(rng.NextPermutation(0).empty());
  auto p1 = rng.NextPermutation(1);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0], 0u);
}

}  // namespace
}  // namespace hipads
