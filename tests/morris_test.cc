#include "stream/morris.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace hipads {
namespace {

TEST(MorrisTest, StartsAtZero) {
  MorrisCounter c(2.0);
  EXPECT_EQ(c.Estimate(), 0.0);
  EXPECT_EQ(c.exponent(), 0u);
}

TEST(MorrisTest, Base2UnitIncrementsClassic) {
  // First unit increment of a base-2 counter is deterministic: x: 0 -> 1.
  Rng rng(1);
  MorrisCounter c(2.0);
  c.Increment(rng);
  EXPECT_EQ(c.exponent(), 1u);
  EXPECT_EQ(c.Estimate(), 1.0);
}

TEST(MorrisTest, UnitIncrementsUnbiased) {
  const uint64_t n = 1000;
  const uint32_t runs = 4000;
  Rng rng(7);
  RunningStat est;
  for (uint32_t run = 0; run < runs; ++run) {
    MorrisCounter c(2.0);
    for (uint64_t i = 0; i < n; ++i) c.Increment(rng);
    est.Add(c.Estimate());
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.03);
}

TEST(MorrisTest, WeightedAddUnbiased) {
  const uint32_t runs = 4000;
  Rng rng(11);
  RunningStat est;
  const double total = 137.5 + 12.25 + 950.0;
  for (uint32_t run = 0; run < runs; ++run) {
    MorrisCounter c(2.0);
    c.Add(137.5, rng);
    c.Add(12.25, rng);
    c.Add(950.0, rng);
    est.Add(c.Estimate());
  }
  EXPECT_NEAR(est.mean() / total, 1.0, 0.04);
}

TEST(MorrisTest, LargeSingleAddLandsNearValue) {
  Rng rng(13);
  MorrisCounter c(2.0);
  c.Add(1e6, rng);
  // After one add of Y the estimate is b^x-1 with x = floor(log2(Y+1)) or
  // one more: between (Y+1)/2 - 1 and 2(Y+1) - 1.
  EXPECT_GE(c.Estimate(), 1e6 / 2 - 1);
  EXPECT_LE(c.Estimate(), 2e6 + 1);
}

TEST(MorrisTest, SmallBaseLowVariance) {
  // CV should shrink roughly with (b-1): compare b=2 vs b=1.0625.
  const uint64_t n = 500;
  const uint32_t runs = 2500;
  Rng rng(17);
  ErrorStats coarse, fine;
  for (uint32_t run = 0; run < runs; ++run) {
    MorrisCounter c2(2.0), c1(1.0625);
    for (uint64_t i = 0; i < n; ++i) {
      c2.Increment(rng);
      c1.Increment(rng);
    }
    coarse.Add(c2.Estimate(), static_cast<double>(n));
    fine.Add(c1.Estimate(), static_cast<double>(n));
  }
  EXPECT_LT(fine.nrmse(), 0.4 * coarse.nrmse());
}

TEST(MorrisTest, MergeUnbiased) {
  const uint32_t runs = 4000;
  Rng rng(19);
  RunningStat est;
  for (uint32_t run = 0; run < runs; ++run) {
    MorrisCounter a(2.0), b(2.0);
    for (int i = 0; i < 300; ++i) a.Increment(rng);
    for (int i = 0; i < 700; ++i) b.Increment(rng);
    a.Merge(b, rng);
    est.Add(a.Estimate());
  }
  EXPECT_NEAR(est.mean() / 1000.0, 1.0, 0.04);
}

TEST(MorrisTest, ExponentGrowsLogarithmically) {
  Rng rng(23);
  MorrisCounter c(2.0);
  for (uint64_t i = 0; i < 100000; ++i) c.Increment(rng);
  // x should be ~ log2(100001) ~ 17.
  EXPECT_GE(c.exponent(), 12u);
  EXPECT_LE(c.exponent(), 23u);
}

TEST(MorrisTest, HipAccumulationErrorTracksBaseMinusOne) {
  // Section 7: accumulating HIP-style increasing weights with
  // b = 1 + 1/2^j gives relative error about 2^-j (~ b-1).
  const uint32_t runs = 1500;
  Rng rng(29);
  for (double b : {1.25, 1.0625}) {
    ErrorStats err;
    for (uint32_t run = 0; run < runs; ++run) {
      MorrisCounter c(b);
      // Simulate HIP-like geometric-ish increments totalling ~2000.
      double total = 0.0, w = 1.0;
      while (total < 2000.0) {
        c.Add(w, rng);
        total += w;
        w *= 1.05;
      }
      err.Add(c.Estimate(), total);
    }
    // Allow generous constant factor, but ensure the right order.
    EXPECT_LT(err.nrmse(), 3.0 * (b - 1.0)) << "base " << b;
  }
}

}  // namespace
}  // namespace hipads
