// The unified AdsBackend storage layer: the serving contract is that the
// in-memory arena (FlatAdsBackend), the zero-copy mmap open (MmapAdsSet)
// and the sharded set (ShardedAdsSet, with and without the background
// prefetch thread, copying and mmap shard opens) produce bitwise identical
// query and estimator results on the same sketch set — plus the failure
// contract: missing/truncated/corrupt backing files surface as errors, not
// partial results.

#include "ads/backend.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/hip.h"
#include "ads/queries.h"
#include "ads/shard.h"
#include "ads/similarity.h"
#include "graph/generators.h"

namespace hipads {
namespace {

FlatAdsSet BuildFlat(uint32_t n, uint64_t graph_seed, uint32_t k) {
  Graph g = ErdosRenyi(n, 3ULL * n, true, graph_seed);
  return FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, k, SketchFlavor::kBottomK, RankAssignment::Uniform(graph_seed + 1)));
}

// Unique scratch dir per test; removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string file(const std::string& name) const {
    return (std::filesystem::path(path) / name).string();
  }
  std::string path;
};

// Runs the full whole-graph query battery through the backend surface and
// checks every result bitwise against the plain FlatAdsSet overloads.
void ExpectBitwiseEqualQueries(const AdsBackend& backend,
                               const FlatAdsSet& reference) {
  auto harmonic = EstimateHarmonicCentralityAll(backend, 1);
  ASSERT_TRUE(harmonic.ok()) << harmonic.status().ToString();
  EXPECT_EQ(harmonic.value(), EstimateHarmonicCentralityAll(reference, 1));

  auto distsum = EstimateDistanceSumAll(backend, 1);
  ASSERT_TRUE(distsum.ok());
  EXPECT_EQ(distsum.value(), EstimateDistanceSumAll(reference, 1));

  auto reach = EstimateReachableCountAll(backend, 1);
  ASSERT_TRUE(reach.ok());
  EXPECT_EQ(reach.value(), EstimateReachableCountAll(reference, 1));

  auto nsize = EstimateNeighborhoodSizeAll(backend, 2.0, 1);
  ASSERT_TRUE(nsize.ok());
  EXPECT_EQ(nsize.value(), EstimateNeighborhoodSizeAll(reference, 2.0, 1));

  auto closeness = EstimateClosenessAll(
      backend, [](double d) { return 1.0 / (1.0 + d); },
      [](NodeId v) { return v % 2 == 0 ? 1.0 : 0.5; }, 1);
  ASSERT_TRUE(closeness.ok());
  EXPECT_EQ(closeness.value(),
            EstimateClosenessAll(
                reference, [](double d) { return 1.0 / (1.0 + d); },
                [](NodeId v) { return v % 2 == 0 ? 1.0 : 0.5; }, 1));

  auto dd = EstimateDistanceDistribution(backend, 1);
  ASSERT_TRUE(dd.ok());
  EXPECT_EQ(dd.value(), EstimateDistanceDistribution(reference, 1));

  auto nf = EstimateNeighborhoodFunction(backend, 1);
  ASSERT_TRUE(nf.ok());
  EXPECT_EQ(nf.value(), EstimateNeighborhoodFunction(reference, 1));

  auto eff = EstimateEffectiveDiameter(backend);
  ASSERT_TRUE(eff.ok());
  EXPECT_EQ(eff.value(), EstimateEffectiveDiameter(reference));

  auto mean = EstimateMeanDistance(backend);
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ(mean.value(), EstimateMeanDistance(reference));
}

TEST(BackendTest, FlatBackendMatchesReference) {
  FlatAdsSet set = BuildFlat(150, 3, 8);
  FlatAdsBackend owning(set);          // copy-owning
  FlatAdsBackend aliasing(&set);       // non-owning
  ExpectBitwiseEqualQueries(owning, set);
  ExpectBitwiseEqualQueries(aliasing, set);
  EXPECT_EQ(owning.num_nodes(), set.num_nodes());
  EXPECT_EQ(owning.TotalEntries(), set.TotalEntries());
  EXPECT_EQ(owning.NumRanges(), 1u);
}

TEST(BackendTest, MmapOpenIsZeroCopyAndBitwiseEqual) {
  FlatAdsSet set = BuildFlat(200, 7, 8);
  ScratchDir dir("hipads_backend_test_mmap");
  std::string path = dir.file("set.ads2");
  ASSERT_TRUE(WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2).ok());

  auto opened = MmapAdsSet::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const MmapAdsSet& mapped = opened.value();
  EXPECT_TRUE(mapped.zero_copy());
  EXPECT_EQ(mapped.num_nodes(), set.num_nodes());
  EXPECT_EQ(mapped.TotalEntries(), set.TotalEntries());
  EXPECT_EQ(mapped.k(), set.k);
  EXPECT_EQ(mapped.flavor(), set.flavor);
  EXPECT_EQ(mapped.ranks().seed(), set.ranks.seed());

  // Every per-node view is byte-identical to the in-memory arena.
  for (NodeId v = 0; v < set.num_nodes(); ++v) {
    auto view = mapped.ViewOf(v);
    ASSERT_TRUE(view.ok());
    auto expect = set.of(v).entries();
    auto got = view.value().entries();
    ASSERT_EQ(expect.size(), got.size()) << "node " << v;
    EXPECT_EQ(std::memcmp(expect.data(), got.data(),
                          expect.size() * sizeof(AdsEntry)),
              0)
        << "node " << v;
  }
  ExpectBitwiseEqualQueries(mapped, set);
}

TEST(BackendTest, MmapMoveKeepsServing) {
  FlatAdsSet set = BuildFlat(80, 11, 4);
  ScratchDir dir("hipads_backend_test_mmap_move");
  std::string path = dir.file("set.ads2");
  ASSERT_TRUE(WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2).ok());
  auto opened = MmapAdsSet::Open(path);
  ASSERT_TRUE(opened.ok());
  MmapAdsSet moved = std::move(opened).value();
  EXPECT_TRUE(moved.zero_copy());
  ExpectBitwiseEqualQueries(moved, set);
}

TEST(BackendTest, MmapFallsBackToCopyLoaderForTextFiles) {
  FlatAdsSet set = BuildFlat(100, 13, 4);
  ScratchDir dir("hipads_backend_test_mmap_text");
  std::string path = dir.file("set.ads");
  ASSERT_TRUE(WriteAdsSetFile(set, path, AdsFileFormat::kTextV1).ok());
  auto opened = MmapAdsSet::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_FALSE(opened.value().zero_copy());  // graceful copying fallback
  ExpectBitwiseEqualQueries(opened.value(), set);
}

TEST(BackendTest, MmapRejectsCorruptAndTruncatedV2) {
  FlatAdsSet set = BuildFlat(120, 17, 4);
  ScratchDir dir("hipads_backend_test_mmap_corrupt");
  std::string path = dir.file("set.ads2");
  ASSERT_TRUE(WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2).ok());

  // Flip one payload byte: checksum mismatch, not a silent fallback.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-5, std::ios::end);
    char c;
    f.seekg(f.tellp());
    f.get(c);
    f.seekp(-5, std::ios::end);
    f.put(static_cast<char>(c ^ 0x40));
  }
  auto corrupt = MmapAdsSet::Open(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), Status::Code::kCorruption);

  // Truncate a fresh copy: length mismatch against the header.
  ASSERT_TRUE(WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2).ok());
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(path, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(path, size - 16, ec);
  ASSERT_FALSE(ec);
  auto truncated = MmapAdsSet::Open(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), Status::Code::kCorruption);
}

// The acceptance matrix: every serving engine, same sketches, bitwise
// identical answers.
TEST(BackendTest, AllBackendsBitwiseEqualOnSameShardSet) {
  FlatAdsSet set = BuildFlat(250, 19, 8);
  ScratchDir dir("hipads_backend_test_matrix");
  std::string file_path = dir.file("set.ads2");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteAdsSetFile(set, file_path, AdsFileFormat::kBinaryV2).ok());
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 5).ok());

  FlatAdsBackend flat(&set);
  ExpectBitwiseEqualQueries(flat, set);

  auto mapped = MmapAdsSet::Open(file_path);
  ASSERT_TRUE(mapped.ok());
  ExpectBitwiseEqualQueries(mapped.value(), set);

  for (bool use_mmap : {false, true}) {
    for (bool prefetch : {false, true}) {
      ShardedOptions options;
      options.max_resident = 1;
      options.prefetch = prefetch;
      options.use_mmap = use_mmap;
      auto sharded = ShardedAdsSet::Open(shard_dir, options);
      ASSERT_TRUE(sharded.ok())
          << "mmap=" << use_mmap << " prefetch=" << prefetch << ": "
          << sharded.status().ToString();
      ExpectBitwiseEqualQueries(sharded.value(), set);
      EXPECT_LE(sharded.value().NumResident(), 1u);  // strict bound
    }
  }
}

// tsan target: the prefetch worker overlaps loads with consumer-side
// sweeps; repeated sweeps and point lookups must stay deterministic and
// race-free, bitwise equal to the non-prefetching engines.
TEST(BackendTest, PrefetchSweepsAreDeterministic) {
  FlatAdsSet set = BuildFlat(220, 23, 8);
  ScratchDir dir("hipads_backend_test_prefetch");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 6).ok());

  std::vector<double> reference = EstimateHarmonicCentralityAll(set, 1);
  for (bool use_mmap : {false, true}) {
    ShardedOptions options;
    options.max_resident = 2;
    options.prefetch = true;
    options.use_mmap = use_mmap;
    auto opened = ShardedAdsSet::Open(shard_dir, options);
    ASSERT_TRUE(opened.ok());
    const ShardedAdsSet& sharded = opened.value();
    for (int round = 0; round < 3; ++round) {
      auto scores = EstimateHarmonicCentralityAll(sharded, 2);
      ASSERT_TRUE(scores.ok());
      EXPECT_EQ(scores.value(), reference) << "round " << round;
      // Interleave point lookups that fault shards in out of sweep order.
      for (NodeId v : {0u, 219u, 110u}) {
        ASSERT_TRUE(sharded.ViewOf(v).ok());
      }
      EXPECT_LE(sharded.NumResident(), 2u);  // strict max_resident bound
    }
  }
}

TEST(BackendTest, ShardedValidateFilesCatchesMissingAndTruncated) {
  FlatAdsSet set = BuildFlat(160, 29, 4);
  ScratchDir dir("hipads_backend_test_validate");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 4).ok());
  std::string victim =
      (std::filesystem::path(shard_dir) / "shard-00002.ads2").string();

  {
    auto opened = ShardedAdsSet::Open(shard_dir);
    ASSERT_TRUE(opened.ok());
    EXPECT_TRUE(opened.value().ValidateFiles().ok());
  }

  // Truncated shard: ValidateFiles names the file; sweeps fail Corruption
  // under both copy and mmap opens.
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(victim, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(victim, size - 24, ec);
  ASSERT_FALSE(ec);
  for (bool use_mmap : {false, true}) {
    ShardedOptions options;
    options.use_mmap = use_mmap;
    auto opened = ShardedAdsSet::Open(shard_dir, options);
    ASSERT_TRUE(opened.ok());
    Status valid = opened.value().ValidateFiles();
    EXPECT_FALSE(valid.ok());
    EXPECT_EQ(valid.code(), Status::Code::kCorruption);
    EXPECT_NE(valid.message().find("shard-00002.ads2"), std::string::npos);
    auto swept = EstimateHarmonicCentralityAll(opened.value());
    EXPECT_FALSE(swept.ok()) << "mmap=" << use_mmap;
    EXPECT_EQ(swept.status().code(), Status::Code::kCorruption);
  }

  // Missing shard: IOError from ValidateFiles and from the sweep.
  std::filesystem::remove(victim);
  for (bool use_mmap : {false, true}) {
    ShardedOptions options;
    options.use_mmap = use_mmap;
    auto opened = ShardedAdsSet::Open(shard_dir, options);
    ASSERT_TRUE(opened.ok());
    Status valid = opened.value().ValidateFiles();
    EXPECT_FALSE(valid.ok());
    EXPECT_EQ(valid.code(), Status::Code::kIOError);
    auto swept = EstimateHarmonicCentralityAll(opened.value());
    EXPECT_FALSE(swept.ok());
    EXPECT_EQ(swept.status().code(), Status::Code::kIOError);
  }

  // The factory refuses the whole open when validation is requested.
  AdsBackendOptions factory_options;
  factory_options.validate_files = true;
  auto refused = OpenAdsBackend(shard_dir, factory_options);
  EXPECT_FALSE(refused.ok());
}

TEST(BackendTest, OpenAdsBackendDispatchesOnPathAndMode) {
  FlatAdsSet set = BuildFlat(140, 31, 4);
  ScratchDir dir("hipads_backend_test_factory");
  std::string file_path = dir.file("set.ads2");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteAdsSetFile(set, file_path, AdsFileFormat::kBinaryV2).ok());
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 3).ok());

  for (BackendMode mode : {BackendMode::kCopy, BackendMode::kMmap}) {
    for (const std::string& path : {file_path, shard_dir}) {
      AdsBackendOptions options;
      options.mode = mode;
      auto opened = OpenAdsBackend(path, options);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      ExpectBitwiseEqualQueries(*opened.value(), set);
    }
  }

  auto missing = OpenAdsBackend(dir.file("nope.ads2"));
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kIOError);
}

TEST(BackendTest, NodeIndexMatchesLinearLookups) {
  FlatAdsSet set = BuildFlat(130, 37, 8);
  for (NodeId v = 0; v < set.num_nodes(); ++v) {
    AdsView view = set.of(v);
    AdsNodeIndex index(view);
    EXPECT_EQ(index.size(), view.size());
    // Every sketched node resolves identically; a spread of absent ids too.
    for (const AdsEntry& e : view.entries()) {
      EXPECT_TRUE(index.Contains(e.node));
      EXPECT_EQ(index.DistanceOf(e.node), view.DistanceOf(e.node));
    }
    for (NodeId probe = 0; probe < 140; probe += 7) {
      EXPECT_EQ(index.Contains(probe), view.Contains(probe)) << probe;
      EXPECT_EQ(index.DistanceOf(probe), view.DistanceOf(probe)) << probe;
    }
  }
}

// --- storage-resident HIP weights through the backend surface --------------

// Every node's HipOf must hand back exactly the reference set's aligned
// arrays, and an estimator wrapped around them must answer every query
// bitwise identically to a fresh scan of the same view.
void ExpectHipMatchesReference(const AdsBackend& backend,
                               const FlatAdsSet& reference) {
  ASSERT_TRUE(reference.has_hip());
  for (NodeId v = 0; v < reference.num_nodes(); ++v) {
    auto hip = backend.HipOf(v);
    ASSERT_TRUE(hip.ok()) << hip.status().ToString();
    ASSERT_TRUE(hip.value().present()) << "node " << v;
    auto view = backend.ViewOf(v);
    ASSERT_TRUE(view.ok());
    const uint64_t off = reference.offsets[v];
    for (size_t i = 0; i < view.value().size(); ++i) {
      EXPECT_EQ(hip.value().tau[i], reference.hip_tau[off + i])
          << "node " << v;
      EXPECT_EQ(hip.value().weight[i], reference.hip_weight[off + i])
          << "node " << v;
    }
    HipEstimator pre(view.value(), hip.value().tau, hip.value().weight);
    HipEstimator scan(view.value(), backend.k(), backend.flavor(),
                      backend.ranks());
    EXPECT_EQ(pre.ReachableCount(), scan.ReachableCount()) << "node " << v;
    EXPECT_EQ(pre.HarmonicCentrality(), scan.HarmonicCentrality());
    EXPECT_EQ(pre.NeighborhoodCardinality(2.0),
              scan.NeighborhoodCardinality(2.0));
    EXPECT_EQ(pre.DistanceQuantile(0.5), scan.DistanceQuantile(0.5));
  }
}

TEST(BackendTest, HipAbsentWithoutStoredSection) {
  FlatAdsSet set = BuildFlat(90, 43, 4);
  ScratchDir dir("hipads_backend_test_hip_absent");
  std::string path = dir.file("set.ads2");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2).ok());
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 3).ok());

  FlatAdsBackend flat(&set);
  auto mapped = MmapAdsSet::Open(path);
  ASSERT_TRUE(mapped.ok());
  auto sharded = ShardedAdsSet::Open(shard_dir, ShardedOptions{});
  ASSERT_TRUE(sharded.ok());
  for (const AdsBackend* backend :
       {static_cast<const AdsBackend*>(&flat),
        static_cast<const AdsBackend*>(&mapped.value()),
        static_cast<const AdsBackend*>(&sharded.value())}) {
    EXPECT_FALSE(backend->HipResident());
    auto hip = backend->HipOf(0);
    ASSERT_TRUE(hip.ok());
    EXPECT_FALSE(hip.value().present());
    auto range = backend->Range(0);
    ASSERT_TRUE(range.ok());
    EXPECT_FALSE(range.value().has_hip());
    EXPECT_FALSE(range.value().hip_of_local(0).present());
  }
}

TEST(BackendTest, EveryEngineServesStoredHipWeights) {
  FlatAdsSet set = BuildFlat(180, 47, 8);
  PrecomputeHipWeights(&set, 1);
  ScratchDir dir("hipads_backend_test_hip_matrix");
  std::string path = dir.file("set.ads2");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2).ok());
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 4).ok());

  FlatAdsBackend flat(&set);
  EXPECT_TRUE(flat.HipResident());
  ExpectHipMatchesReference(flat, set);

  auto mapped = MmapAdsSet::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().zero_copy());  // hip section mmap-served
  EXPECT_TRUE(mapped.value().HipResident());
  ExpectHipMatchesReference(mapped.value(), set);

  for (bool use_mmap : {false, true}) {
    ShardedOptions options;
    options.use_mmap = use_mmap;
    auto sharded = ShardedAdsSet::Open(shard_dir, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    EXPECT_TRUE(sharded.value().ValidateFiles().ok());  // hip-sized shards
    EXPECT_TRUE(sharded.value().HipResident()) << "mmap=" << use_mmap;
    ExpectHipMatchesReference(sharded.value(), set);
    // Range views carry the hip arrays with range-local indexing.
    auto range = sharded.value().Range(1);
    ASSERT_TRUE(range.ok());
    ASSERT_TRUE(range.value().has_hip());
    const NodeId begin = range.value().begin;
    HipView local = range.value().hip_of_local(1);
    EXPECT_EQ(local.tau[0], set.hip_tau[set.offsets[begin + 1]]);
  }
}

TEST(BackendTest, MixedShardedSetServesResidentShardsAndScansTheRest) {
  FlatAdsSet set = BuildFlat(160, 53, 4);
  PrecomputeHipWeights(&set, 1);
  ScratchDir dir("hipads_backend_test_hip_mixed");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 4).ok());
  // Strip the HIP section off shard 1: read, clear, rewrite. The resulting
  // directory is valid — each shard file stands alone — just mixed.
  std::string victim =
      (std::filesystem::path(shard_dir) / "shard-00001.ads2").string();
  auto loaded = ReadFlatAdsSetFile(victim);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().has_hip());
  loaded.value().hip_tau.clear();
  loaded.value().hip_weight.clear();
  ASSERT_TRUE(
      WriteAdsSetFile(loaded.value(), victim, AdsFileFormat::kBinaryV2).ok());

  ShardedOptions options;
  options.max_resident = 2;
  auto opened = ShardedAdsSet::Open(shard_dir, options);
  ASSERT_TRUE(opened.ok());
  const ShardedAdsSet& sharded = opened.value();
  EXPECT_TRUE(sharded.ValidateFiles().ok());  // both sizes are legal
  EXPECT_FALSE(sharded.HipResident());        // not EVERY shard has it
  uint32_t present = 0, absent = 0;
  for (NodeId v = 0; v < set.num_nodes(); ++v) {
    auto hip = sharded.HipOf(v);
    ASSERT_TRUE(hip.ok());
    if (!hip.value().present()) {
      EXPECT_EQ(sharded.ShardOf(v), 1u) << "node " << v;
      ++absent;
      continue;
    }
    ++present;
    auto view = sharded.ViewOf(v);
    ASSERT_TRUE(view.ok());
    const uint64_t off = set.offsets[v];
    for (size_t i = 0; i < view.value().size(); ++i) {
      EXPECT_EQ(hip.value().tau[i], set.hip_tau[off + i]) << "node " << v;
    }
  }
  EXPECT_GT(present, 0u);
  EXPECT_GT(absent, 0u);
  // Whole-graph answers are unaffected by the mix.
  ExpectBitwiseEqualQueries(sharded, set);
}

TEST(BackendTest, SimilarityOverBackendViewsMatchesAdsOverloads) {
  FlatAdsSet flat = BuildFlat(150, 41, 8);
  AdsSet owning = flat.ToAdsSet();
  ScratchDir dir("hipads_backend_test_similarity");
  std::string path = dir.file("set.ads2");
  ASSERT_TRUE(WriteAdsSetFile(flat, path, AdsFileFormat::kBinaryV2).ok());
  auto mapped = MmapAdsSet::Open(path);
  ASSERT_TRUE(mapped.ok());
  for (NodeId u : {5u, 60u}) {
    for (NodeId v : {6u, 120u}) {
      auto uv = mapped.value().ViewOf(u);
      auto vv = mapped.value().ViewOf(v);
      ASSERT_TRUE(uv.ok());
      ASSERT_TRUE(vv.ok());
      for (double d : {1.0, 3.0}) {
        EXPECT_EQ(JaccardSimilarity(uv.value(), vv.value(), d, flat.k),
                  JaccardSimilarity(owning.of(u), owning.of(v), d, flat.k));
        EXPECT_EQ(
            IntersectionCardinality(uv.value(), vv.value(), d, flat.k),
            IntersectionCardinality(owning.of(u), owning.of(v), d, flat.k));
      }
    }
  }
}

}  // namespace
}  // namespace hipads
