// Statistical tests of the basic MinHash cardinality estimators
// (Section 4): unbiasedness and CV against the analytic values.

#include "sketch/cardinality.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/hash.h"
#include "util/stats.h"

namespace hipads {
namespace {

// Builds sketches of {0..n-1} over many runs and accumulates estimator
// error. Returns (mean estimate / n, NRMSE).
struct SimOutcome {
  double relative_mean;
  double nrmse;
};

template <typename MakeEstimate>
SimOutcome Simulate(uint64_t n, uint32_t runs, MakeEstimate make) {
  RunningStat est;
  ErrorStats err;
  for (uint32_t run = 0; run < runs; ++run) {
    double e = make(run, n);
    est.Add(e);
    err.Add(e, static_cast<double>(n));
  }
  return {est.mean() / static_cast<double>(n), err.nrmse()};
}

double KMinsRun(uint32_t k, uint64_t run, uint64_t n) {
  KMinsSketch s(k);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint32_t h = 0; h < k; ++h) {
      s.Update(h, UnitHash(run * 1315423911ULL + h + 1, i));
    }
  }
  return KMinsBasicEstimate(s);
}

double BottomKRun(uint32_t k, uint64_t run, uint64_t n) {
  BottomKSketch s(k);
  for (uint64_t i = 0; i < n; ++i) s.Update(UnitHash(run + 77, i));
  return BottomKBasicEstimate(s);
}

double KPartitionRun(uint32_t k, uint64_t run, uint64_t n) {
  KPartitionSketch s(k);
  for (uint64_t i = 0; i < n; ++i) {
    s.Update(BucketHash(run + 99, i, k), UnitHash(run + 99, i));
  }
  return KPartitionBasicEstimate(s);
}

TEST(KMinsEstimatorTest, UnbiasedAndMatchesAnalyticCv) {
  const uint32_t k = 16;
  auto out = Simulate(1000, 3000, [&](uint64_t run, uint64_t n) {
    return KMinsRun(k, run, n);
  });
  EXPECT_NEAR(out.relative_mean, 1.0, 0.02);
  // CV = 1/sqrt(k-2) = 0.267; allow Monte-Carlo slack.
  EXPECT_NEAR(out.nrmse, BasicCv(k), 0.03);
}

TEST(KMinsEstimatorTest, ExactForEmptySet) {
  KMinsSketch s(4);
  EXPECT_EQ(KMinsBasicEstimate(s), 0.0);
}

TEST(BottomKEstimatorTest, ExactBelowK) {
  const uint32_t k = 8;
  for (uint64_t n : {0ULL, 1ULL, 5ULL, 7ULL}) {
    BottomKSketch s(k);
    for (uint64_t i = 0; i < n; ++i) s.Update(UnitHash(1, i));
    EXPECT_EQ(BottomKBasicEstimate(s), static_cast<double>(n));
  }
}

TEST(BottomKEstimatorTest, UnbiasedLargeN) {
  const uint32_t k = 16;
  auto out = Simulate(2000, 3000, [&](uint64_t run, uint64_t n) {
    return BottomKRun(k, run, n);
  });
  EXPECT_NEAR(out.relative_mean, 1.0, 0.02);
  EXPECT_LT(out.nrmse, BasicCv(k) * 1.1);  // Lemma 4.3 upper bound
}

TEST(BottomKEstimatorTest, BetterThanKMinsNearK) {
  // For n close to k the bottom-k estimator is far more accurate.
  const uint32_t k = 16;
  auto botk = Simulate(24, 4000, [&](uint64_t run, uint64_t n) {
    return BottomKRun(k, run, n);
  });
  auto kmins = Simulate(24, 4000, [&](uint64_t run, uint64_t n) {
    return KMinsRun(k, run, n);
  });
  EXPECT_LT(botk.nrmse, kmins.nrmse);
}

TEST(KPartitionEstimatorTest, UnbiasedLargeN) {
  const uint32_t k = 16;
  auto out = Simulate(4000, 3000, [&](uint64_t run, uint64_t n) {
    return KPartitionRun(k, run, n);
  });
  EXPECT_NEAR(out.relative_mean, 1.0, 0.03);
  EXPECT_LT(out.nrmse, BasicCv(k) * 1.25);
}

TEST(KPartitionEstimatorTest, DegenerateSmallN) {
  KPartitionSketch s(8);
  EXPECT_EQ(KPartitionBasicEstimate(s), 0.0);  // k' = 0
  s.Update(3, 0.5);
  EXPECT_EQ(KPartitionBasicEstimate(s), 1.0);  // k' = 1
}

TEST(KPartitionEstimatorTest, WorseThanBottomKForSmallN) {
  // Section 4.3: for n <= 2k the k-partition estimator is noticeably less
  // accurate than bottom-k.
  const uint32_t k = 16;
  auto kp = Simulate(20, 4000, [&](uint64_t run, uint64_t n) {
    return KPartitionRun(k, run, n);
  });
  auto bk = Simulate(20, 4000, [&](uint64_t run, uint64_t n) {
    return BottomKRun(k, run, n);
  });
  EXPECT_GT(kp.nrmse, 2.0 * bk.nrmse);
}

TEST(AnalyticConstantsTest, Formulas) {
  EXPECT_DOUBLE_EQ(BasicCv(6), 0.5);
  EXPECT_DOUBLE_EQ(HipCv(3), 0.5);
  EXPECT_NEAR(BasicMre(4), std::sqrt(2.0 / (std::numbers::pi * 2.0)), 1e-12);
  EXPECT_NEAR(HipMre(2), std::sqrt(1.0 / std::numbers::pi), 1e-12);
  EXPECT_DOUBLE_EQ(BasicCvLowerBound(4), 0.5);
  EXPECT_DOUBLE_EQ(HipCvLowerBound(2), 0.5);
  EXPECT_NEAR(HipBaseBCv(2, 3.0), 1.0, 1e-12);
  EXPECT_NEAR(HllNrmse(16), 0.27, 0.001);
}

TEST(AnalyticConstantsTest, HipIsSqrtTwoBetterAsymptotically) {
  // 1/sqrt(2(k-1)) vs 1/sqrt(k-2): ratio -> sqrt(2) for large k.
  EXPECT_NEAR(BasicCv(1000) / HipCv(1000), std::sqrt(2.0), 0.01);
}

}  // namespace
}  // namespace hipads
