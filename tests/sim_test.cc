#include "sim/cardinality_sim.h"

#include <gtest/gtest.h>

#include "sketch/cardinality.h"

namespace hipads {
namespace {

TEST(CardinalitySimTest, ProducesAllSeries) {
  CardinalitySimConfig cfg;
  cfg.k = 5;
  cfg.max_n = 200;
  cfg.runs = 50;
  auto result = RunCardinalitySim(cfg);
  EXPECT_FALSE(result.checkpoints.empty());
  EXPECT_EQ(result.checkpoints.back(), 200u);
  for (const char* name :
       {"kmins_basic", "kpart_basic", "botk_basic", "botk_hip", "perm"}) {
    ASSERT_TRUE(result.errors.count(name)) << name;
    EXPECT_EQ(result.errors.at(name).size(), result.checkpoints.size());
    for (const auto& e : result.errors.at(name)) {
      EXPECT_EQ(e.count(), 50);
    }
  }
}

TEST(CardinalitySimTest, BottomKExactBelowK) {
  CardinalitySimConfig cfg;
  cfg.k = 10;
  cfg.max_n = 64;
  cfg.runs = 40;
  auto result = RunCardinalitySim(cfg);
  for (size_t i = 0; i < result.checkpoints.size(); ++i) {
    // Strictly below k every bottom-k derived estimator is exact; at
    // exactly n == k the basic estimator already switches to (k-1)/tau.
    if (result.checkpoints[i] < cfg.k) {
      EXPECT_EQ(result.errors.at("botk_basic")[i].nrmse(), 0.0);
    }
    if (result.checkpoints[i] <= cfg.k) {
      EXPECT_EQ(result.errors.at("botk_hip")[i].nrmse(), 0.0);
      EXPECT_EQ(result.errors.at("perm")[i].nrmse(), 0.0);
    }
  }
}

TEST(CardinalitySimTest, HipBeatsBasicAtLargeN) {
  CardinalitySimConfig cfg;
  cfg.k = 10;
  cfg.max_n = 4000;
  cfg.runs = 400;
  auto result = RunCardinalitySim(cfg);
  size_t last = result.checkpoints.size() - 1;
  double hip = result.errors.at("botk_hip")[last].nrmse();
  double basic = result.errors.at("botk_basic")[last].nrmse();
  EXPECT_LT(hip, basic);
  // Near the analytic curves.
  EXPECT_NEAR(hip, HipCv(cfg.k), 0.05);
  EXPECT_NEAR(basic, BasicCv(cfg.k), 0.06);
}

TEST(CardinalitySimTest, DeterministicForSeed) {
  CardinalitySimConfig cfg;
  cfg.k = 5;
  cfg.max_n = 100;
  cfg.runs = 20;
  cfg.seed = 42;
  auto a = RunCardinalitySim(cfg);
  auto b = RunCardinalitySim(cfg);
  for (size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.errors.at("botk_hip")[i].nrmse(),
              b.errors.at("botk_hip")[i].nrmse());
  }
}

TEST(DistinctCountSimTest, ProducesAllSeries) {
  DistinctCountSimConfig cfg;
  cfg.k = 16;
  cfg.max_n = 2000;
  cfg.runs = 50;
  auto result = RunDistinctCountSim(cfg);
  for (const char* name : {"hll_raw", "hll", "hip"}) {
    ASSERT_TRUE(result.errors.count(name)) << name;
    EXPECT_EQ(result.errors.at(name).size(), result.checkpoints.size());
  }
}

TEST(DistinctCountSimTest, HipBeatsHllAsymptotically) {
  DistinctCountSimConfig cfg;
  cfg.k = 16;
  cfg.max_n = 30000;
  cfg.runs = 150;
  cfg.points_per_decade = 2;
  auto result = RunDistinctCountSim(cfg);
  size_t last = result.checkpoints.size() - 1;
  EXPECT_LT(result.errors.at("hip")[last].nrmse(),
            result.errors.at("hll")[last].nrmse());
}

}  // namespace
}  // namespace hipads
