#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hipads {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g(3, {}, false);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_TRUE(g.OutArcs(0).empty());
}

TEST(GraphTest, DirectedArcs) {
  Graph g(3, {{0, 1, 1.0}, {1, 2, 2.5}}, false);
  EXPECT_EQ(g.num_arcs(), 2u);
  ASSERT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutArcs(0)[0].head, 1u);
  EXPECT_EQ(g.OutArcs(1)[0].head, 2u);
  EXPECT_EQ(g.OutArcs(1)[0].weight, 2.5);
  EXPECT_EQ(g.OutDegree(2), 0u);
}

TEST(GraphTest, UndirectedStoresBothDirections) {
  Graph g(2, {{0, 1, 3.0}}, true);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.OutArcs(0)[0].head, 1u);
  EXPECT_EQ(g.OutArcs(1)[0].head, 0u);
  EXPECT_EQ(g.OutArcs(1)[0].weight, 3.0);
  EXPECT_TRUE(g.undirected());
}

TEST(GraphTest, IsUnitWeight) {
  Graph unit(2, {{0, 1, 1.0}}, false);
  EXPECT_TRUE(unit.IsUnitWeight());
  Graph weighted(2, {{0, 1, 2.0}}, false);
  EXPECT_FALSE(weighted.IsUnitWeight());
}

TEST(GraphTest, TransposeReversesArcs) {
  Graph g(3, {{0, 1, 1.0}, {0, 2, 5.0}, {1, 2, 2.0}}, false);
  Graph t = g.Transpose();
  EXPECT_EQ(t.num_arcs(), 3u);
  EXPECT_EQ(t.OutDegree(0), 0u);
  EXPECT_EQ(t.OutDegree(1), 1u);
  EXPECT_EQ(t.OutArcs(1)[0].head, 0u);
  EXPECT_EQ(t.OutDegree(2), 2u);
  // Weights preserved.
  double w_sum = 0.0;
  for (const Arc& a : t.OutArcs(2)) w_sum += a.weight;
  EXPECT_EQ(w_sum, 7.0);
}

TEST(GraphTest, TransposeOfTransposeIsIdentity) {
  Graph g(4, {{0, 1, 1.0}, {1, 2, 2.0}, {3, 0, 4.0}, {2, 3, 1.5}}, false);
  Graph tt = g.Transpose().Transpose();
  auto e1 = g.ToEdgeList();
  auto e2 = tt.ToEdgeList();
  auto key = [](const Edge& e) {
    return std::tuple(e.tail, e.head, e.weight);
  };
  std::sort(e1.begin(), e1.end(),
            [&](const Edge& a, const Edge& b) { return key(a) < key(b); });
  std::sort(e2.begin(), e2.end(),
            [&](const Edge& a, const Edge& b) { return key(a) < key(b); });
  ASSERT_EQ(e1.size(), e2.size());
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(key(e1[i]), key(e2[i]));
  }
}

TEST(GraphTest, ToEdgeListRoundTrip) {
  std::vector<Edge> edges = {{0, 1, 1.0}, {2, 0, 3.0}};
  Graph g(3, edges, false);
  auto back = g.ToEdgeList();
  ASSERT_EQ(back.size(), 2u);
}

TEST(GraphTest, SelfLoopsKept) {
  Graph g(2, {{0, 0, 1.0}}, false);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_EQ(g.OutArcs(0)[0].head, 0u);
}

TEST(GraphTest, ParallelArcsKept) {
  Graph g(2, {{0, 1, 1.0}, {0, 1, 2.0}}, false);
  EXPECT_EQ(g.OutDegree(0), 2u);
}

}  // namespace
}  // namespace hipads
