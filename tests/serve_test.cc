// The distributed serving subsystem (src/serve/). The acceptance
// contract: every sweep statistic computed through the scatter/gather
// router — loopback transport, >= 2 range servers, every backend engine
// (in-memory copy, zero-copy mmap, sharded-with-prefetch, mixed fleets),
// multiple per-server thread counts — is bitwise identical to a
// single-process RunSweep over the same sketches; point requests route to
// the owning range server (cross-server similarity runs router-side on
// fetched sketches); a dead or missing range server fails the whole
// operation closed; and the CLI's remote paths exit nonzero with no
// partial output on any failure.

#include "serve/router.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ads/backend.h"
#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/hip.h"
#include "ads/shard.h"
#include "ads/similarity.h"
#include "graph/generators.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace hipads {
namespace {

FlatAdsSet BuildFlat(uint32_t n, uint64_t graph_seed, uint32_t k) {
  Graph g = ErdosRenyi(n, 3ULL * n, true, graph_seed);
  return FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, k, SketchFlavor::kBottomK, RankAssignment::Uniform(graph_seed + 1)));
}

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string file(const std::string& name) const {
    return (std::filesystem::path(path) / name).string();
  }
  std::string path;
};

// The sketches of global nodes [begin, end) as a standalone set (what a
// shard file holds: local node i = global node begin + i, entry target ids
// stay global).
FlatAdsSet SliceSet(const FlatAdsSet& set, NodeId begin, NodeId end) {
  FlatAdsSet slice;
  slice.flavor = set.flavor;
  slice.k = set.k;
  slice.ranks = set.ranks;
  for (NodeId v = begin; v < end; ++v) {
    auto entries = set.of(v).entries();
    slice.AppendNode(std::vector<AdsEntry>(entries.begin(), entries.end()));
  }
  return slice;
}

// Every wire-expressible collector kind, with parameters exercised.
std::vector<CollectorSpec> FullSpec() {
  return {
      {CollectorKind::kDistanceHistogram, 0, 0, 0.0},
      {CollectorKind::kDistanceSum, 0, 0, 0.0},
      {CollectorKind::kHarmonic, 0, 0, 0.0},
      {CollectorKind::kNeighborhoodSize, 0, 0, 2.0},
      {CollectorKind::kReachableCount, 0, 0, 0.0},
      {CollectorKind::kTopK, static_cast<uint32_t>(ScoreKind::kHarmonic), 5,
       0.0},
      {CollectorKind::kDistanceQuantile, 0, 0, 0.5},
      {CollectorKind::kQg, static_cast<uint32_t>(QgKind::kExpDecay), 0, 0.5},
  };
}

// Bitwise comparison of two collector sets built from the same spec.
void ExpectCollectorsIdentical(const std::vector<CollectorSpec>& spec,
                               const std::vector<SweepCollector*>& expected,
                               const std::vector<SweepCollector*>& actual,
                               const std::string& label) {
  ASSERT_EQ(expected.size(), spec.size());
  ASSERT_EQ(actual.size(), spec.size());
  for (size_t i = 0; i < spec.size(); ++i) {
    if (spec[i].kind == CollectorKind::kDistanceHistogram) {
      auto* e = static_cast<DistanceHistogramCollector*>(expected[i]);
      auto* a = static_cast<DistanceHistogramCollector*>(actual[i]);
      EXPECT_EQ(e->Distribution(), a->Distribution()) << label;
      EXPECT_EQ(e->NeighborhoodFunction(), a->NeighborhoodFunction())
          << label;
      EXPECT_EQ(e->EffectiveDiameter(), a->EffectiveDiameter()) << label;
      EXPECT_EQ(e->MeanDistance(), a->MeanDistance()) << label;
    } else {
      auto* e = static_cast<PerNodeCollector*>(expected[i]);
      auto* a = static_cast<PerNodeCollector*>(actual[i]);
      EXPECT_EQ(e->values(), a->values()) << label << " collector " << i;
      if (spec[i].kind == CollectorKind::kTopK) {
        EXPECT_EQ(static_cast<TopKCollector*>(expected[i])->TopNodes(),
                  static_cast<TopKCollector*>(actual[i])->TopNodes())
            << label;
      }
    }
  }
}

enum class Engine { kCopy, kMmap, kSharded };
const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kCopy:
      return "copy";
    case Engine::kMmap:
      return "mmap";
    case Engine::kSharded:
      return "sharded";
  }
  return "?";
}

// One range server's worth of state: a backend over a node-range slice
// (opened through the requested engine) plus its protocol core.
struct RangeServer {
  std::unique_ptr<AdsBackend> backend;
  std::unique_ptr<AdsServerCore> core;
};

RangeServer MakeRangeServer(const FlatAdsSet& full, NodeId begin, NodeId end,
                            Engine engine, const ScratchDir& dir,
                            const std::string& name, uint32_t threads,
                            bool hip = false) {
  RangeServer server;
  FlatAdsSet slice = SliceSet(full, begin, end);
  if (hip) PrecomputeHipWeights(&slice, 1);
  switch (engine) {
    case Engine::kCopy:
      server.backend = std::make_unique<FlatAdsBackend>(std::move(slice));
      break;
    case Engine::kMmap: {
      std::string path = dir.file(name + ".ads2");
      EXPECT_TRUE(
          WriteAdsSetFile(slice, path, AdsFileFormat::kBinaryV2).ok());
      auto mapped = MmapAdsSet::Open(path);
      EXPECT_TRUE(mapped.ok()) << mapped.status().ToString();
      server.backend =
          std::make_unique<MmapAdsSet>(std::move(mapped).value());
      break;
    }
    case Engine::kSharded: {
      std::string shard_dir = dir.file(name + "-shards");
      EXPECT_TRUE(WriteShardedAdsSet(slice, shard_dir, 2).ok());
      ShardedOptions options;
      options.prefetch = true;
      options.prefetch_depth = 2;
      auto sharded = ShardedAdsSet::Open(shard_dir, options);
      EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
      server.backend =
          std::make_unique<ShardedAdsSet>(std::move(sharded).value());
      break;
    }
  }
  ServerOptions options;
  options.node_begin = begin;
  options.num_threads = threads;
  server.core =
      std::make_unique<AdsServerCore>(server.backend.get(), options);
  return server;
}

// A loopback fleet over range servers: the full wire path (frames encoded,
// checksummed, decoded) minus the socket.
struct LoopbackFleet {
  std::vector<RangeServer> servers;
  FleetManifest manifest;

  ChannelFactory Factory() {
    return [this](const std::string& address)
               -> StatusOr<std::unique_ptr<Channel>> {
      for (size_t i = 0; i < manifest.servers.size(); ++i) {
        if (manifest.servers[i].address == address) {
          return std::unique_ptr<Channel>(
              std::make_unique<LoopbackChannel>(servers[i].core.get()));
        }
      }
      return Status::NotFound("no loopback server at " + address);
    };
  }
};

LoopbackFleet MakeFleet(const FlatAdsSet& full,
                        const std::vector<NodeId>& splits,
                        const std::vector<Engine>& engines,
                        const ScratchDir& dir, uint32_t threads,
                        bool hip = false) {
  LoopbackFleet fleet;
  fleet.manifest.num_nodes = full.num_nodes();
  for (size_t i = 0; i + 1 < splits.size(); ++i) {
    std::string name =
        "rs" + std::to_string(i) + "-" + EngineName(engines[i]);
    fleet.servers.push_back(MakeRangeServer(full, splits[i], splits[i + 1],
                                            engines[i], dir, name, threads,
                                            hip));
    fleet.manifest.servers.push_back(
        FleetEntry{"loop:" + std::to_string(i), splits[i], splits[i + 1]});
  }
  return fleet;
}

// Single-process reference: the same spec over the whole arena.
struct Reference {
  SweepPlan plan;
  std::vector<SweepCollector*> collectors;
};

void RunReference(const FlatAdsSet& full, const std::vector<CollectorSpec>& spec,
                  Reference* ref) {
  auto built = BuildPlanFromSpec(spec, &ref->plan);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ref->collectors = built.value();
  FlatAdsBackend backend(&full);
  ASSERT_TRUE(RunSweep(backend, ref->plan, 1).ok());
}

// The acceptance matrix: >= 2 range servers, every engine (uniform and
// mixed fleets), several per-server thread counts — all bitwise equal to
// the single-process sweep.
TEST(ServeTest, RouterMatchesSingleProcessBitwise) {
  FlatAdsSet full = BuildFlat(240, 3, 8);
  ScratchDir dir("hipads_serve_test_matrix");
  std::vector<CollectorSpec> spec = FullSpec();
  Reference ref;
  RunReference(full, spec, &ref);

  struct Case {
    std::vector<NodeId> splits;
    std::vector<Engine> engines;
  };
  const std::vector<Case> cases = {
      {{0, 120, 240}, {Engine::kCopy, Engine::kCopy}},
      {{0, 120, 240}, {Engine::kMmap, Engine::kMmap}},
      {{0, 120, 240}, {Engine::kSharded, Engine::kSharded}},
      {{0, 80, 150, 240}, {Engine::kCopy, Engine::kMmap, Engine::kSharded}},
  };
  int case_id = 0;
  for (const Case& c : cases) {
    for (uint32_t threads : {1u, 2u, 4u}) {
      std::string label = "case " + std::to_string(case_id) + " threads " +
                          std::to_string(threads);
      ScratchDir case_dir("hipads_serve_test_matrix_c" +
                          std::to_string(case_id) + "_t" +
                          std::to_string(threads));
      LoopbackFleet fleet =
          MakeFleet(full, c.splits, c.engines, case_dir, threads);
      auto router = FleetRouter::Connect(fleet.manifest, fleet.Factory());
      ASSERT_TRUE(router.ok()) << label << ": "
                               << router.status().ToString();
      EXPECT_EQ(router.value().num_nodes(), full.num_nodes());
      EXPECT_EQ(router.value().total_entries(), full.TotalEntries());

      SweepPlan plan;
      auto built = BuildPlanFromSpec(spec, &plan);
      ASSERT_TRUE(built.ok());
      SweepRequestMsg request;
      request.collectors = spec;
      request.num_threads = threads;
      ASSERT_TRUE(
          router.value().ExecuteSweep(request, built.value()).ok())
          << label;
      ExpectCollectorsIdentical(spec, ref.collectors, built.value(), label);
    }
    ++case_id;
  }
}

// A router is itself a protocol endpoint: a client sweeping through
// RouterCore gets the merged [0, N) partial, bitwise equal to the
// reference — and a second-level router stacked on the first still does
// (the histogram's replay stream survives the merge losslessly).
TEST(ServeTest, RouterCoreServesMergedSweepsAndStacks) {
  FlatAdsSet full = BuildFlat(200, 7, 8);
  ScratchDir dir("hipads_serve_test_core");
  std::vector<CollectorSpec> spec = FullSpec();
  Reference ref;
  RunReference(full, spec, &ref);

  LoopbackFleet fleet = MakeFleet(full, {0, 90, 200},
                                  {Engine::kCopy, Engine::kSharded}, dir, 2);
  auto router = FleetRouter::Connect(fleet.manifest, fleet.Factory());
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  RouterCore core(&router.value());
  LoopbackChannel channel(&core);

  // Client side: same spec, remote execution through the router core.
  {
    SweepPlan plan;
    auto built = BuildPlanFromSpec(spec, &plan);
    ASSERT_TRUE(built.ok());
    SweepRequestMsg request;
    request.collectors = spec;
    request.num_threads = 2;
    ASSERT_TRUE(ExecuteRemoteSweep(channel, request, full.num_nodes(),
                                   built.value())
                    .ok());
    ExpectCollectorsIdentical(spec, ref.collectors, built.value(),
                              "router core");
  }

  // Stacked: a second-level router whose single "range server" is the
  // first router.
  {
    FleetManifest outer;
    outer.num_nodes = full.num_nodes();
    outer.servers.push_back(
        FleetEntry{"inner", 0, static_cast<NodeId>(full.num_nodes())});
    auto factory = [&core](const std::string&)
        -> StatusOr<std::unique_ptr<Channel>> {
      return std::unique_ptr<Channel>(
          std::make_unique<LoopbackChannel>(&core));
    };
    auto outer_router = FleetRouter::Connect(outer, factory);
    ASSERT_TRUE(outer_router.ok()) << outer_router.status().ToString();
    SweepPlan plan;
    auto built = BuildPlanFromSpec(spec, &plan);
    ASSERT_TRUE(built.ok());
    SweepRequestMsg request;
    request.collectors = spec;
    ASSERT_TRUE(
        outer_router.value().ExecuteSweep(request, built.value()).ok());
    ExpectCollectorsIdentical(spec, ref.collectors, built.value(),
                              "stacked routers");
  }
}

// True multi-level fan-out: an outer router over two inner routers, each
// an OFFSET sub-fleet of two leaf range servers ([0,100) and [100,200)).
// The whole tree — leaf partials, inner node-order gathers, inner
// re-encoded [B, N) slices, outer gather — must still be bitwise equal to
// the single-process sweep, and point queries must route down the tree.
TEST(ServeTest, TwoLevelRouterTreeMatchesSingleProcessBitwise) {
  FlatAdsSet full = BuildFlat(200, 23, 8);
  ScratchDir dir("hipads_serve_test_tree");
  std::vector<CollectorSpec> spec = FullSpec();
  Reference ref;
  RunReference(full, spec, &ref);

  // Leaves: four range servers of 50 nodes each.
  LoopbackFleet leaves = MakeFleet(
      full, {0, 50, 100, 150, 200},
      {Engine::kCopy, Engine::kMmap, Engine::kSharded, Engine::kCopy}, dir,
      2);

  // Inner tier: sub-fleet A = leaves 0-1 over [0, 100); sub-fleet B =
  // leaves 2-3 over [100, 200) (an offset manifest).
  auto sub_manifest = [&leaves](size_t lo, size_t hi) {
    FleetManifest m;
    m.num_nodes = leaves.manifest.servers[hi - 1].end;
    m.servers.assign(leaves.manifest.servers.begin() + lo,
                     leaves.manifest.servers.begin() + hi);
    return m;
  };
  auto inner_a = FleetRouter::Connect(sub_manifest(0, 2), leaves.Factory());
  auto inner_b = FleetRouter::Connect(sub_manifest(2, 4), leaves.Factory());
  ASSERT_TRUE(inner_a.ok()) << inner_a.status().ToString();
  ASSERT_TRUE(inner_b.ok()) << inner_b.status().ToString();
  EXPECT_EQ(inner_b.value().node_begin(), 100u);
  RouterCore core_a(&inner_a.value());
  RouterCore core_b(&inner_b.value());

  // Outer tier: the two inner routers are its "range servers".
  FleetManifest outer;
  outer.num_nodes = 200;
  outer.servers = {{"inner-a", 0, 100}, {"inner-b", 100, 200}};
  auto factory = [&core_a, &core_b](const std::string& address)
      -> StatusOr<std::unique_ptr<Channel>> {
    return std::unique_ptr<Channel>(std::make_unique<LoopbackChannel>(
        address == "inner-a" ? &core_a : &core_b));
  };
  auto outer_router = FleetRouter::Connect(outer, factory);
  ASSERT_TRUE(outer_router.ok()) << outer_router.status().ToString();

  SweepPlan plan;
  auto built = BuildPlanFromSpec(spec, &plan);
  ASSERT_TRUE(built.ok());
  SweepRequestMsg request;
  request.collectors = spec;
  request.num_threads = 2;
  ASSERT_TRUE(outer_router.value().ExecuteSweep(request, built.value()).ok());
  ExpectCollectorsIdentical(spec, ref.collectors, built.value(),
                            "two-level tree");

  // Point queries route through both tiers, including a Jaccard pair
  // spanning the two sub-fleets (fetched through the inner routers).
  PointRequestMsg jaccard;
  jaccard.kind = PointKind::kJaccard;
  jaccard.node = 30;
  jaccard.other = 160;
  jaccard.d = 2.0;
  auto response = outer_router.value().Point(jaccard);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().values[0],
            JaccardSimilarity(full.of(30), full.of(160), 2.0, full.k,
                              full.ranks.sup()));
}

// Point requests route by range; answers match direct computation on the
// full arena, including Jaccard pairs that span two servers.
TEST(ServeTest, PointRequestsRouteToOwningServers) {
  FlatAdsSet full = BuildFlat(180, 11, 8);
  ScratchDir dir("hipads_serve_test_point");
  LoopbackFleet fleet = MakeFleet(full, {0, 90, 180},
                                  {Engine::kCopy, Engine::kMmap}, dir, 1);
  auto router = FleetRouter::Connect(fleet.manifest, fleet.Factory());
  ASSERT_TRUE(router.ok());

  for (NodeId v : {0u, 17u, 89u, 90u, 179u}) {
    // Node stats: reachable / harmonic / distance sum.
    PointRequestMsg request;
    request.kind = PointKind::kNodeStats;
    request.node = v;
    request.d = std::numeric_limits<double>::infinity();
    auto response = router.value().Point(request);
    ASSERT_TRUE(response.ok()) << "node " << v;
    HipEstimator est(full.of(v), full.k, full.flavor, full.ranks);
    ASSERT_EQ(response.value().values.size(), 3u);
    EXPECT_EQ(response.value().values[0], est.ReachableCount());
    EXPECT_EQ(response.value().values[1], est.HarmonicCentrality());
    EXPECT_EQ(response.value().values[2], est.DistanceSum());

    // Lookup through the owning server's node index.
    PointRequestMsg lookup;
    lookup.kind = PointKind::kLookup;
    lookup.node = v;
    lookup.targets = {0, 5, 91, 170};
    auto found = router.value().Point(lookup);
    ASSERT_TRUE(found.ok());
    AdsNodeIndex index(full.of(v));
    ASSERT_EQ(found.value().values.size(), lookup.targets.size());
    for (size_t i = 0; i < lookup.targets.size(); ++i) {
      EXPECT_EQ(found.value().values[i],
                index.DistanceOf(static_cast<NodeId>(lookup.targets[i])))
          << "node " << v << " target " << lookup.targets[i];
    }
  }

  // Jaccard: same-server pair and cross-server pair.
  for (auto [u, v] : {std::pair<NodeId, NodeId>{3, 70},
                      std::pair<NodeId, NodeId>{17, 140}}) {
    PointRequestMsg request;
    request.kind = PointKind::kJaccard;
    request.node = u;
    request.other = v;
    request.d = 3.0;
    auto response = router.value().Point(request);
    ASSERT_TRUE(response.ok()) << u << "," << v;
    double sup = full.ranks.sup();
    ASSERT_EQ(response.value().values.size(), 2u);
    EXPECT_EQ(response.value().values[0],
              JaccardSimilarity(full.of(u), full.of(v), 3.0, full.k, sup));
    EXPECT_EQ(response.value().values[1],
              UnionCardinality(full.of(u), full.of(v), 3.0, full.k, sup));
  }

  // Out-of-range node: clean error, no crash.
  PointRequestMsg bad;
  bad.kind = PointKind::kNodeStats;
  bad.node = 5000;
  EXPECT_FALSE(router.value().Point(bad).ok());
}

// Wire-v3 batches: N mixed-kind point requests in one frame answer
// byte-identically to N lone calls — through the fleet router (owner
// grouping, cross-server Jaccard fallback, per-entry errors) and through
// a single server core via AdsClient::PointBatch.
TEST(ServeTest, PointBatchMatchesSingleCallsBitwise) {
  FlatAdsSet full = BuildFlat(180, 19, 8);
  ScratchDir dir("hipads_serve_test_batch");
  LoopbackFleet fleet =
      MakeFleet(full, {0, 60, 120, 180},
                {Engine::kCopy, Engine::kMmap, Engine::kSharded}, dir, 1);
  auto router = FleetRouter::Connect(fleet.manifest, fleet.Factory());
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Stats across every server, a lookup, a raw fetch, same-server and
  // cross-server Jaccard pairs, and an out-of-range node (a per-entry
  // error — one bad entry never poisons the batch).
  std::vector<PointRequestMsg> requests;
  for (NodeId v : {0u, 17u, 59u, 60u, 119u, 120u, 179u}) {
    PointRequestMsg r;
    r.kind = PointKind::kNodeStats;
    r.node = v;
    r.d = std::numeric_limits<double>::infinity();
    requests.push_back(r);
  }
  {
    PointRequestMsg r;
    r.kind = PointKind::kLookup;
    r.node = 30;
    r.targets = {0, 5, 91, 170};
    requests.push_back(r);
    r = PointRequestMsg{};
    r.kind = PointKind::kFetchSketch;
    r.node = 130;
    requests.push_back(r);
    r = PointRequestMsg{};
    r.kind = PointKind::kJaccard;
    r.node = 3;
    r.other = 40;  // same server
    r.d = 3.0;
    requests.push_back(r);
    r.node = 17;
    r.other = 140;  // spans two servers: the router-side similarity path
    requests.push_back(r);
    r = PointRequestMsg{};
    r.kind = PointKind::kNodeStats;
    r.node = 5000;  // out of range
    requests.push_back(r);
  }

  std::vector<PointBatchResponseEntry> batched =
      router.value().PointBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto single = router.value().Point(requests[i]);
    if (single.ok()) {
      ASSERT_TRUE(batched[i].status.ok())
          << "entry " << i << ": " << batched[i].status.ToString();
      EXPECT_EQ(batched[i].payload, EncodePointResponse(single.value()))
          << "entry " << i;
    } else {
      EXPECT_FALSE(batched[i].status.ok()) << "entry " << i;
      EXPECT_EQ(batched[i].status.ToString(), single.status().ToString())
          << "entry " << i;
      EXPECT_TRUE(batched[i].payload.empty()) << "entry " << i;
    }
  }

  // The same contract straight against one server core: entries whose
  // nodes it serves answer with the bytes its lone responses carry.
  LoopbackChannel channel(fleet.servers[0].core.get());
  AdsClient client(&channel);
  std::vector<PointRequestMsg> local;
  for (const PointRequestMsg& r : requests) {
    bool served = r.node < 60 || r.node == 5000;  // 5000: per-entry error
    if (r.kind == PointKind::kJaccard && r.other >= 60) served = false;
    if (served) local.push_back(r);
  }
  ASSERT_GE(local.size(), 5u);
  auto client_batch = client.PointBatch(local);
  ASSERT_TRUE(client_batch.ok()) << client_batch.status().ToString();
  ASSERT_EQ(client_batch.value().size(), local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    const PointBatchResponseEntry& entry = client_batch.value()[i];
    auto single = client.Point(local[i]);
    if (single.ok()) {
      ASSERT_TRUE(entry.status.ok()) << entry.status.ToString();
      EXPECT_EQ(entry.payload, EncodePointResponse(single.value()))
          << "entry " << i;
    } else {
      EXPECT_EQ(entry.status.ToString(), single.status().ToString())
          << "entry " << i;
    }
  }

  // An empty batch round-trips cleanly (the cheapest v3-support probe).
  auto empty = client.PointBatch({});
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty.value().empty());
}

// HIP-resident storage is invisible on the wire: a fleet whose every
// server carries the precomputed section answers sweeps, lone points and
// batches with bytes identical to a fleet that scans every estimator.
TEST(ServeTest, ResidentHipFleetMatchesScanFleetByteForByte) {
  FlatAdsSet full = BuildFlat(180, 29, 8);
  const std::vector<NodeId> splits = {0, 60, 120, 180};
  const std::vector<Engine> engines = {Engine::kCopy, Engine::kMmap,
                                       Engine::kSharded};
  ScratchDir scan_dir("hipads_serve_test_hip_scan");
  ScratchDir hip_dir("hipads_serve_test_hip_resident");
  LoopbackFleet scan = MakeFleet(full, splits, engines, scan_dir, 2, false);
  LoopbackFleet hip = MakeFleet(full, splits, engines, hip_dir, 2, true);
  for (const RangeServer& server : hip.servers) {
    EXPECT_TRUE(server.backend->HipResident());
  }
  for (const RangeServer& server : scan.servers) {
    EXPECT_FALSE(server.backend->HipResident());
  }
  auto scan_router = FleetRouter::Connect(scan.manifest, scan.Factory());
  auto hip_router = FleetRouter::Connect(hip.manifest, hip.Factory());
  ASSERT_TRUE(scan_router.ok());
  ASSERT_TRUE(hip_router.ok());

  // Sweep: every wire-expressible collector, merged across the three
  // engines, bitwise equal to the single-process scan reference.
  std::vector<CollectorSpec> spec = FullSpec();
  Reference ref;
  RunReference(full, spec, &ref);
  SweepPlan plan;
  auto built = BuildPlanFromSpec(spec, &plan);
  ASSERT_TRUE(built.ok());
  SweepRequestMsg sweep;
  sweep.collectors = spec;
  sweep.num_threads = 2;
  ASSERT_TRUE(hip_router.value().ExecuteSweep(sweep, built.value()).ok());
  ExpectCollectorsIdentical(spec, ref.collectors, built.value(), "hip sweep");

  // Lone points and one mixed batch: identical payload bytes.
  std::vector<PointRequestMsg> requests;
  for (NodeId v : {0u, 59u, 60u, 119u, 120u, 179u}) {
    PointRequestMsg r;
    r.kind = PointKind::kNodeStats;
    r.node = v;
    r.d = std::numeric_limits<double>::infinity();
    requests.push_back(r);
  }
  {
    PointRequestMsg r;
    r.kind = PointKind::kLookup;
    r.node = 65;
    r.targets = {0, 5, 91, 170};
    requests.push_back(r);
    r = PointRequestMsg{};
    r.kind = PointKind::kJaccard;
    r.node = 17;
    r.other = 140;  // spans two servers
    r.d = 3.0;
    requests.push_back(r);
  }
  for (const PointRequestMsg& r : requests) {
    auto a = scan_router.value().Point(r);
    auto b = hip_router.value().Point(r);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(EncodePointResponse(a.value()), EncodePointResponse(b.value()))
        << "node " << r.node;
  }
  std::vector<PointBatchResponseEntry> scan_batch =
      scan_router.value().PointBatch(requests);
  std::vector<PointBatchResponseEntry> hip_batch =
      hip_router.value().PointBatch(requests);
  ASSERT_EQ(scan_batch.size(), hip_batch.size());
  for (size_t i = 0; i < scan_batch.size(); ++i) {
    ASSERT_TRUE(scan_batch[i].status.ok()) << "entry " << i;
    ASSERT_TRUE(hip_batch[i].status.ok()) << "entry " << i;
    EXPECT_EQ(scan_batch[i].payload, hip_batch[i].payload) << "entry " << i;
  }
}

// Batched and single requests share ONE response cache: a batch entry is
// keyed on the canonical single-request bytes, so a batch warms exactly
// the entries lone calls then hit — and vice versa.
TEST(ServeTest, PointBatchSharesTheSingleRequestCache) {
  FlatAdsSet full = BuildFlat(120, 23, 8);
  FlatAdsBackend backend(&full);
  AdsServerCore core(&backend, ServerOptions{});
  LoopbackChannel channel(&core);
  AdsClient client(&channel);

  PointRequestMsg a;
  a.kind = PointKind::kNodeStats;
  a.node = 7;
  a.d = std::numeric_limits<double>::infinity();
  PointRequestMsg b = a;
  b.node = 8;

  // Batch fills; the lone call for the same request bytes hits.
  ASSERT_TRUE(client.PointBatch({a}).ok());
  EXPECT_EQ(core.point_cache_hits(), 0u);
  ASSERT_TRUE(client.Point(a).ok());
  EXPECT_EQ(core.point_cache_hits(), 1u);

  // Lone call fills; the batch carrying the same request hits — both
  // entries of this batch are already cached.
  ASSERT_TRUE(client.Point(b).ok());
  EXPECT_EQ(core.point_cache_hits(), 1u);
  ASSERT_TRUE(client.PointBatch({b, a}).ok());
  EXPECT_EQ(core.point_cache_hits(), 3u);
}

// A channel wrapper counting batch request frames — how the coalescing
// tests observe that concurrent calls actually traveled batched.
class BatchCountingChannel : public Channel {
 public:
  BatchCountingChannel(std::unique_ptr<Channel> inner,
                       std::atomic<uint64_t>* batch_frames)
      : inner_(std::move(inner)), batch_frames_(batch_frames) {}
  using Channel::Call;
  Status Call(std::string_view request, Frame* response,
              const Deadline& deadline) override {
    auto frame = DecodeFrame(request);
    if (frame.ok() &&
        frame.value().type == MessageType::kPointBatchRequest) {
      batch_frames_->fetch_add(1, std::memory_order_relaxed);
    }
    return inner_->Call(request, response, deadline);
  }

 private:
  std::unique_ptr<Channel> inner_;
  std::atomic<uint64_t>* batch_frames_;
};

// Runs `n` concurrent Point calls through `router` and asserts every
// response is byte-identical to the uncoalesced `plain` router's answer.
void ExpectConcurrentPointsMatch(FleetRouter& router, FleetRouter& plain,
                                 int n) {
  std::vector<PointRequestMsg> requests(n);
  for (int t = 0; t < n; ++t) {
    requests[t].kind = PointKind::kNodeStats;
    requests[t].node = static_cast<NodeId>((t * 13) % 80);
    requests[t].d = std::numeric_limits<double>::infinity();
  }
  std::vector<StatusOr<PointResponseMsg>> got(
      n, StatusOr<PointResponseMsg>(Status::Unavailable("pending")));
  std::vector<std::thread> threads;
  threads.reserve(requests.size());
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&router, &requests, &got, t] {
      got[t] = router.Point(requests[t]);
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < n; ++t) {
    ASSERT_TRUE(got[t].ok()) << "call " << t << ": "
                             << got[t].status().ToString();
    auto expected = plain.Point(requests[t]);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(EncodePointResponse(got[t].value()),
              EncodePointResponse(expected.value()))
        << "call " << t;
  }
}

// Concurrent callers through a coalescing router get exactly the bytes
// their lone calls would have, and at least some of them travel in one
// batch frame (the 200 ms window dwarfs thread spawn time, so the first
// caller leads and the rest join its batch).
TEST(ServeTest, CoalescedPointsMatchSingleCallsBitwise) {
  FlatAdsSet full = BuildFlat(160, 29, 8);
  ScratchDir dir("hipads_serve_test_coalesce");
  LoopbackFleet fleet = MakeFleet(full, {0, 80, 160},
                                  {Engine::kCopy, Engine::kCopy}, dir, 1);
  std::atomic<uint64_t> batch_frames{0};
  ChannelFactory factory = fleet.Factory();
  ChannelFactory counting =
      [&factory, &batch_frames](const std::string& address)
      -> StatusOr<std::unique_ptr<Channel>> {
    auto inner = factory(address);
    if (!inner.ok()) return inner.status();
    return std::unique_ptr<Channel>(std::make_unique<BatchCountingChannel>(
        std::move(inner).value(), &batch_frames));
  };
  RouterOptions options;
  options.coalesce_window_us = 200000;
  auto router = FleetRouter::Connect(fleet.manifest, counting, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  auto plain = FleetRouter::Connect(fleet.manifest, fleet.Factory());
  ASSERT_TRUE(plain.ok());

  ExpectConcurrentPointsMatch(router.value(), plain.value(), 6);
  EXPECT_GE(batch_frames.load(), 1u) << "no call was coalesced";
}

// The HIPADS_COALESCE_WINDOW_US environment knob (how CI's tsan lane
// forces this path on) turns coalescing on when the option is unset.
TEST(ServeTest, CoalesceWindowEnvKnobForcesTheBatchPath) {
  FlatAdsSet full = BuildFlat(160, 37, 8);
  ScratchDir dir("hipads_serve_test_coalesce_env");
  LoopbackFleet fleet = MakeFleet(full, {0, 80, 160},
                                  {Engine::kCopy, Engine::kCopy}, dir, 1);
  std::atomic<uint64_t> batch_frames{0};
  ChannelFactory factory = fleet.Factory();
  ChannelFactory counting =
      [&factory, &batch_frames](const std::string& address)
      -> StatusOr<std::unique_ptr<Channel>> {
    auto inner = factory(address);
    if (!inner.ok()) return inner.status();
    return std::unique_ptr<Channel>(std::make_unique<BatchCountingChannel>(
        std::move(inner).value(), &batch_frames));
  };
  ASSERT_EQ(setenv("HIPADS_COALESCE_WINDOW_US", "200000", 1), 0);
  auto router = FleetRouter::Connect(fleet.manifest, counting);
  unsetenv("HIPADS_COALESCE_WINDOW_US");
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  auto plain = FleetRouter::Connect(fleet.manifest, fleet.Factory());
  ASSERT_TRUE(plain.ok());

  ExpectConcurrentPointsMatch(router.value(), plain.value(), 6);
  EXPECT_GE(batch_frames.load(), 1u) << "env knob did not enable coalescing";
}

// Pipelined TCP: concurrent callers keep multiple frames in flight on ONE
// socket; ticket/turn pairing hands every response back to its caller
// (each response is checked against an independently computed answer, so
// any cross-matched pair would fail loudly).
TEST(ServeTest, PipelinedTcpChannelCorrelatesConcurrentCalls) {
  FlatAdsSet full = BuildFlat(120, 31, 8);
  FlatAdsBackend backend(&full);
  AdsServerCore core(&backend, ServerOptions{});
  TcpServer server(&core, TcpServerOptions{0, 1});  // one worker, one pump
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options;
  options.pipeline = true;
  auto channel = TcpChannel::Connect("127.0.0.1", server.port(), options);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  AdsClient client(channel.value().get());

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::vector<Status> failures(kThreads, Status::Ok());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&full, &client, &failures, t] {
      for (int c = 0; c < kCallsPerThread; ++c) {
        NodeId node = static_cast<NodeId>((t * kCallsPerThread + c) % 120);
        PointRequestMsg request;
        request.kind = PointKind::kLookup;
        request.node = node;
        request.targets = {0, 5, static_cast<uint64_t>(t), 60};
        auto response = client.Point(request);
        if (!response.ok()) {
          failures[t] = response.status();
          return;
        }
        AdsNodeIndex index(full.of(node));
        for (size_t i = 0; i < request.targets.size(); ++i) {
          if (response.value().values[i] !=
              index.DistanceOf(static_cast<NodeId>(request.targets[i]))) {
            failures[t] = Status::Corruption(
                "response paired to the wrong request");
            return;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].ok())
        << "thread " << t << ": " << failures[t].ToString();
  }

  // Once the peer goes away the pairing is lost for good: the first call
  // fails however the read fails, every later one fails fast as broken.
  server.Stop();
  PointRequestMsg request;
  request.kind = PointKind::kNodeStats;
  request.node = 1;
  request.d = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(client.Point(request).ok());
  EXPECT_FALSE(client.Point(request).ok());
}

// A channel whose sweep calls fail (the wire analog of a server dying
// between handshake and query).
class DyingChannel : public Channel {
 public:
  explicit DyingChannel(FrameHandler* handler) : inner_(handler) {}
  using Channel::Call;
  Status Call(std::string_view request, Frame* response,
              const Deadline& deadline) override {
    auto frame = DecodeFrame(request);
    if (frame.ok() && frame.value().type == MessageType::kSweepRequest) {
      return Status::IOError("server died mid-sweep");
    }
    return inner_.Call(request, response, deadline);
  }

 private:
  LoopbackChannel inner_;
};

TEST(ServeTest, DeadOrMissingServerFailsClosed) {
  FlatAdsSet full = BuildFlat(160, 13, 4);
  ScratchDir dir("hipads_serve_test_dead");
  LoopbackFleet fleet = MakeFleet(full, {0, 80, 160},
                                  {Engine::kCopy, Engine::kCopy}, dir, 1);

  // A server missing at connect time fails the fleet handshake.
  {
    auto factory = fleet.Factory();
    auto broken = [&factory](const std::string& address)
        -> StatusOr<std::unique_ptr<Channel>> {
      if (address == "loop:1") {
        return Status::IOError("connection refused");
      }
      return factory(address);
    };
    auto router = FleetRouter::Connect(fleet.manifest, broken);
    EXPECT_FALSE(router.ok());
  }

  // A server dying between handshake and sweep fails the whole sweep.
  {
    auto factory = fleet.Factory();
    auto dying = [&fleet, &factory](const std::string& address)
        -> StatusOr<std::unique_ptr<Channel>> {
      if (address == "loop:1") {
        return std::unique_ptr<Channel>(
            std::make_unique<DyingChannel>(fleet.servers[1].core.get()));
      }
      return factory(address);
    };
    auto router = FleetRouter::Connect(fleet.manifest, dying);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    std::vector<CollectorSpec> spec = FullSpec();
    SweepPlan plan;
    auto built = BuildPlanFromSpec(spec, &plan);
    ASSERT_TRUE(built.ok());
    SweepRequestMsg request;
    request.collectors = spec;
    Status swept = router.value().ExecuteSweep(request, built.value());
    EXPECT_FALSE(swept.ok());
    EXPECT_EQ(swept.code(), Status::Code::kIOError);
  }

  // A manifest range nobody serves is rejected at connect.
  {
    FleetManifest wrong = fleet.manifest;
    wrong.servers[1].begin = 100;  // gap [80, 100)
    EXPECT_FALSE(ValidateFleetManifest(wrong).ok());
    EXPECT_FALSE(FleetRouter::Connect(wrong, fleet.Factory()).ok());
  }
  // A server reporting a different range than the manifest assigns fails
  // the handshake.
  {
    FleetManifest lying = fleet.manifest;
    lying.num_nodes = 170;
    lying.servers[1].end = 170;
    EXPECT_FALSE(FleetRouter::Connect(lying, fleet.Factory()).ok());
  }
}

TEST(ServeTest, FleetManifestRoundTripsAndRejectsMalformed) {
  FleetManifest manifest;
  manifest.num_nodes = 400;
  manifest.servers = {{"10.0.0.1:7470", 0, 198},
                      {"10.0.0.2:7470", 198, 400}};
  std::string text = SerializeFleetManifest(manifest);
  auto parsed = ParseFleetManifest(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_nodes, 400u);
  ASSERT_EQ(parsed.value().servers.size(), 2u);
  EXPECT_EQ(parsed.value().servers[1].address, "10.0.0.2:7470");
  EXPECT_EQ(parsed.value().servers[1].begin, 198u);
  EXPECT_EQ(SerializeFleetManifest(parsed.value()), text);

  const char* bad[] = {
      "not-a-manifest\nnodes 4\nserver 0 4 a:1\n",
      "hipads-fleet-v1\nserver 0 4 a:1\n",              // no nodes line
      "hipads-fleet-v1\nnodes 4\n",                     // no servers
      "hipads-fleet-v1\nnodes 4\nserver 0 3 a:1\n",     // does not reach N
      "hipads-fleet-v1\nnodes 4\nserver 0 2 a:1\nserver 3 4 b:1\n",  // gap
      "hipads-fleet-v1\nnodes 4\nserver 0 3 a:1\nserver 2 4 b:1\n",  // overlap
      "hipads-fleet-v1\nnodes 4\nserver 2 2 a:1\nserver 2 4 b:1\n",  // empty
      "hipads-fleet-v1\nnodes 4\nserver 0 4\n",         // missing address
      "hipads-fleet-v1\nnodes 4\nwhat 0 4 a:1\n",       // unknown line
  };
  for (const char* text_case : bad) {
    EXPECT_FALSE(ParseFleetManifest(text_case).ok()) << text_case;
  }

  // A first range starting past 0 is a sub-fleet (an inner tier of a
  // stacked router tree), not an error.
  auto sub = ParseFleetManifest("hipads-fleet-v1\nnodes 4\nserver 1 4 a:1\n");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub.value().servers.front().begin, 1u);
}

// The real-socket path: two TCP range servers, a TCP-connected router,
// results bitwise equal to the reference. Ephemeral ports, loopback
// interface — deterministic enough for ctest.
TEST(ServeTest, TcpFleetEndToEnd) {
  FlatAdsSet full = BuildFlat(160, 17, 8);
  ScratchDir dir("hipads_serve_test_tcp");
  std::vector<CollectorSpec> spec = FullSpec();
  Reference ref;
  RunReference(full, spec, &ref);

  LoopbackFleet fleet = MakeFleet(full, {0, 80, 160},
                                  {Engine::kCopy, Engine::kCopy}, dir, 1);
  TcpServer server0(fleet.servers[0].core.get(), {0, 2});
  TcpServer server1(fleet.servers[1].core.get(), {0, 2});
  ASSERT_TRUE(server0.Start().ok());
  ASSERT_TRUE(server1.Start().ok());

  FleetManifest manifest;
  manifest.num_nodes = full.num_nodes();
  manifest.servers = {
      {"127.0.0.1:" + std::to_string(server0.port()), 0, 80},
      {"127.0.0.1:" + std::to_string(server1.port()), 80, 160}};
  auto router = FleetRouter::Connect(manifest, TcpChannelFactory());
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  SweepPlan plan;
  auto built = BuildPlanFromSpec(spec, &plan);
  ASSERT_TRUE(built.ok());
  SweepRequestMsg request;
  request.collectors = spec;
  request.num_threads = 2;
  ASSERT_TRUE(router.value().ExecuteSweep(request, built.value()).ok());
  ExpectCollectorsIdentical(spec, ref.collectors, built.value(), "tcp fleet");

  // Cross-server point query over TCP.
  PointRequestMsg jaccard;
  jaccard.kind = PointKind::kJaccard;
  jaccard.node = 10;
  jaccard.other = 150;
  jaccard.d = 2.0;
  auto response = router.value().Point(jaccard);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().values[0],
            JaccardSimilarity(full.of(10), full.of(150), 2.0, full.k,
                              full.ranks.sup()));

  server0.Stop();
  server1.Stop();
}

#ifdef HIPADS_CLI_PATH

int RunCli(const std::string& args, const std::string& stdout_path) {
  std::string command = std::string(HIPADS_CLI_PATH) + " " + args + " > " +
                        stdout_path + " 2>/dev/null";
  int rc = std::system(command.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

uint64_t FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

// A TCP port that nothing listens on: bind an ephemeral port, read its
// number, close it.
uint16_t ClosedPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

// A server that answers every frame with bytes that are not a frame.
class GarbageHandler : public FrameHandler {
 public:
  std::string HandleFrame(std::string_view, bool* close_connection) override {
    *close_connection = false;
    return std::string(64, 'x');
  }
};

// The CLI acceptance: remote failures exit nonzero with NO partial output.
TEST(ServeTest, CliRemoteFailuresExitNonzeroWithNoOutput) {
  ScratchDir dir("hipads_serve_test_cli_fail");
  // Dead server: connection refused.
  {
    std::string out = dir.file("dead.out");
    int rc = RunCli("stats --remote 127.0.0.1:" +
                        std::to_string(ClosedPort()),
                    out);
    EXPECT_NE(rc, 0);
    EXPECT_EQ(FileSize(out), 0u) << "partial output on dead server";
  }
  // Malforming server: responses that are not frames.
  {
    GarbageHandler garbage;
    TcpServer server(&garbage, {0, 1});
    ASSERT_TRUE(server.Start().ok());
    std::string out = dir.file("garbage.out");
    int rc = RunCli("stats --remote 127.0.0.1:" +
                        std::to_string(server.port()),
                    out);
    EXPECT_NE(rc, 0);
    EXPECT_EQ(FileSize(out), 0u) << "partial output on malformed frames";
    std::string out2 = dir.file("garbage-query.out");
    rc = RunCli("query --remote 127.0.0.1:" +
                    std::to_string(server.port()) + " --node 1",
                out2);
    EXPECT_NE(rc, 0);
    EXPECT_EQ(FileSize(out2), 0u);
    server.Stop();
  }
}

// Positive CLI end-to-end: `stats`/`query --remote` against an in-process
// TCP server print byte-identical output to the local commands.
TEST(ServeTest, CliRemoteMatchesLocalByteForByte) {
  FlatAdsSet full = BuildFlat(150, 19, 8);
  ScratchDir dir("hipads_serve_test_cli_ok");
  std::string set_path = dir.file("set.ads2");
  ASSERT_TRUE(
      WriteAdsSetFile(full, set_path, AdsFileFormat::kBinaryV2).ok());

  FlatAdsBackend backend(&full);
  AdsServerCore core(&backend, ServerOptions{});
  TcpServer server(&core, {0, 2});
  ASSERT_TRUE(server.Start().ok());
  std::string remote = "127.0.0.1:" + std::to_string(server.port());

  struct Case {
    const char* name;
    std::string local;
    std::string remote_args;
  };
  const std::vector<Case> cases = {
      {"stats",
       "stats --sketches " + set_path +
           " --top 4 --distance-quantile 0.5 --qg exp --qg-param 0.5",
       "stats --remote " + remote +
           " --top 4 --distance-quantile 0.5 --qg exp --qg-param 0.5"},
      {"query-top", "query --sketches " + set_path + " --top 3",
       "query --remote " + remote + " --top 3"},
      {"query-node", "query --sketches " + set_path + " --node 7",
       "query --remote " + remote + " --node 7"},
      {"query-lookup",
       "query --sketches " + set_path + " --node 7 --lookup 1,2,140",
       "query --remote " + remote + " --node 7 --lookup 1,2,140"},
      {"query-jaccard",
       "query --sketches " + set_path + " --node 7 --jaccard 9 --distance 3",
       "query --remote " + remote + " --node 7 --jaccard 9 --distance 3"},
  };
  for (const Case& c : cases) {
    std::string local_out = dir.file(std::string(c.name) + ".local");
    std::string remote_out = dir.file(std::string(c.name) + ".remote");
    ASSERT_EQ(RunCli(c.local, local_out), 0) << c.name;
    ASSERT_EQ(RunCli(c.remote_args, remote_out), 0) << c.name;
    std::ifstream a(local_out), b(remote_out);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_GT(sa.str().size(), 0u) << c.name;
    EXPECT_EQ(sa.str(), sb.str()) << c.name;
  }
  server.Stop();
}

#endif  // HIPADS_CLI_PATH

}  // namespace
}  // namespace hipads
