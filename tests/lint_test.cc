// Every hipads-lint rule is itself under test: each fires on a minimal
// violating fixture and stays silent on the conforming twin, the
// comment/string stripper cannot be fooled by prose or literals, the
// inline allow() escape hatch works, and the whole source tree is clean
// end to end (the same check `ctest -L lint` runs via the binary).

#include "tools/hipads_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace hipads {
namespace lint {
namespace {

std::vector<Finding> FindingsFor(const std::string& rule,
                                 const std::vector<Finding>& findings) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

std::vector<Finding> LintOne(const std::string& path,
                             const std::string& content) {
  return RunLint({FileInput{path, content}});
}

// ---------------------------------------------------------------------
// HL001 — nondeterminism primitives in deterministic paths.
// ---------------------------------------------------------------------

TEST(LintTest, HL001FiresOnRandomPrimitivesInDeterministicPaths) {
  auto findings = LintOne("src/ads/hip.cc",
                          "#include <random>\n"
                          "int Draw() {\n"
                          "  std::random_device rd;\n"
                          "  return rand() % 7;\n"
                          "}\n"
                          "double Now() {\n"
                          "  return std::chrono::steady_clock::now()\n"
                          "      .time_since_epoch().count();\n"
                          "}\n"
                          "long Stamp() { return time(nullptr); }\n");
  auto hl001 = FindingsFor("HL001", findings);
  ASSERT_EQ(hl001.size(), 4u);
  EXPECT_EQ(hl001[0].line, 3u);  // random_device
  EXPECT_EQ(hl001[1].line, 4u);  // rand()
  EXPECT_EQ(hl001[2].line, 7u);  // steady_clock
  EXPECT_EQ(hl001[3].line, 10u);  // time(
}

TEST(LintTest, HL001SilentOnConformingCodeAndOutsideScope) {
  // Seeded explicit RNG plumbing and similarly-named identifiers are
  // fine; so is a clock read outside the deterministic trees.
  EXPECT_TRUE(LintOne("src/ads/hip.cc",
                      "double RunTime(int t) { return t * 2.0; }\n"
                      "int mtime(int t) { return t; }\n"
                      "struct randish { int v; };\n")
                  .empty());
  EXPECT_TRUE(FindingsFor("HL001",
                          LintOne("src/serve/server.cc",
                                  "auto t = std::chrono::steady_clock::now();\n"))
                  .empty());
}

TEST(LintTest, HL001IgnoresCommentsAndStrings) {
  EXPECT_TRUE(LintOne("src/sketch/rank.cc",
                      "// rand() would break determinism here\n"
                      "/* so would std::random_device */\n"
                      "const char* kMsg = \"do not call time() here\";\n")
                  .empty());
}

// ---------------------------------------------------------------------
// HL002 — unordered-container iteration in order-sensitive code.
// ---------------------------------------------------------------------

TEST(LintTest, HL002FiresOnUnorderedIteration) {
  auto findings = LintOne(
      "src/serve/gather.cc",
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> staged_;\n"
      "double Reduce() {\n"
      "  double total = 0;\n"
      "  for (const auto& [k, v] : staged_) total += v;\n"
      "  return total;\n"
      "}\n"
      "auto First() { return staged_.begin(); }\n");
  auto hl002 = FindingsFor("HL002", findings);
  ASSERT_EQ(hl002.size(), 2u);
  EXPECT_EQ(hl002[0].line, 5u);
  EXPECT_EQ(hl002[1].line, 8u);
}

TEST(LintTest, HL002SilentOnPointLookupsAndOrderedContainers) {
  // find/erase/count on an unordered map are order-free; iterating a
  // std::map is ordered; and unordered iteration outside the
  // order-sensitive paths is not this rule's business.
  EXPECT_TRUE(LintOne("src/serve/cache.cc",
                      "std::unordered_map<int, int> index_;\n"
                      "bool Has(int k) { return index_.find(k) !="
                      " index_.end(); }\n")
                  .empty());
  EXPECT_TRUE(LintOne("src/serve/gather.cc",
                      "std::map<int, double> staged_;\n"
                      "double Reduce() {\n"
                      "  double t = 0;\n"
                      "  for (const auto& [k, v] : staged_) t += v;\n"
                      "  return t;\n"
                      "}\n")
                  .empty());
  EXPECT_TRUE(LintOne("src/graph/io.cc",
                      "std::unordered_set<int> seen_;\n"
                      "void All() { for (int v : seen_) (void)v; }\n")
                  .empty());
}

// ---------------------------------------------------------------------
// HL003 — EncodePartial without AbsorbPartial.
// ---------------------------------------------------------------------

TEST(LintTest, HL003FiresOnHalfOverriddenPartialSeam) {
  auto findings = LintOne(
      "src/ads/extra.h",
      "class BrokenCollector : public SweepCollector {\n"
      " public:\n"
      "  std::string EncodePartial(NodeId b, NodeId e) const override;\n"
      "};\n");
  auto hl003 = FindingsFor("HL003", findings);
  ASSERT_EQ(hl003.size(), 1u);
  EXPECT_EQ(hl003[0].line, 1u);
  EXPECT_NE(hl003[0].message.find("BrokenCollector"), std::string::npos);
}

TEST(LintTest, HL003SilentWhenBothOverriddenOrNeither) {
  EXPECT_TRUE(LintOne("src/ads/extra.h",
                      "class GoodCollector : public SweepCollector {\n"
                      " public:\n"
                      "  std::string EncodePartial(NodeId b, NodeId e)"
                      " const override;\n"
                      "  Status AbsorbPartial(NodeId b, NodeId e,"
                      " std::string_view p) override;\n"
                      "};\n")
                  .empty());
  // The base class declares the pair virtual, without `override`.
  EXPECT_TRUE(LintOne("src/ads/base.h",
                      "class SweepCollector {\n"
                      " public:\n"
                      "  virtual std::string EncodePartial(NodeId, NodeId)"
                      " const;\n"
                      "  virtual Status AbsorbPartial(NodeId, NodeId,"
                      " std::string_view);\n"
                      "};\n")
                  .empty());
}

// ---------------------------------------------------------------------
// HL004 — wire enum coverage across serve sources and fuzz corpus.
// ---------------------------------------------------------------------

TEST(LintTest, HL004FiresOnUncoveredEnumerators) {
  std::vector<FileInput> files = {
      {"src/serve/protocol.h",
       "enum class PetKind : uint32_t {\n"
       "  kCat = 1,\n"
       "  kDog = 2,\n"
       "};\n"},
      {"src/serve/protocol.cc",
       "void Encode(PetKind k) {\n"
       "  if (k == PetKind::kCat) {}\n"  // kDog never encoded
       "}\n"},
      {"tests/serve_fuzz_test.cc",
       "auto a = PetKind::kCat;\n"
       "auto b = PetKind::kDog;\n"},
  };
  auto hl004 = FindingsFor("HL004", RunLint(files));
  ASSERT_EQ(hl004.size(), 1u);
  EXPECT_EQ(hl004[0].file, "src/serve/protocol.h");
  EXPECT_EQ(hl004[0].line, 3u);
  EXPECT_NE(hl004[0].message.find("PetKind::kDog"), std::string::npos);

  // Drop kDog from the fuzz corpus too: now it is missing twice.
  files[2].content = "auto a = PetKind::kCat;\n";
  EXPECT_EQ(FindingsFor("HL004", RunLint(files)).size(), 2u);
}

TEST(LintTest, HL004SilentWhenEveryEnumeratorIsCovered) {
  std::vector<FileInput> files = {
      {"src/serve/protocol.h",
       "enum class PetKind : uint32_t { kCat = 1, kDog = 2 };\n"},
      {"src/serve/server.cc",
       "void Handle() { (void)PetKind::kCat; (void)PetKind::kDog; }\n"},
      {"tests/serve_fuzz_test.cc",
       "auto a = PetKind::kCat; auto b = PetKind::kDog;\n"},
  };
  EXPECT_TRUE(FindingsFor("HL004", RunLint(files)).empty());
}

// ---------------------------------------------------------------------
// HL005 — raw locking primitives outside the wrapper.
// ---------------------------------------------------------------------

TEST(LintTest, HL005FiresOnRawMutexUse) {
  auto findings = LintOne("src/serve/pool.cc",
                          "#include <mutex>\n"
                          "std::mutex mu;\n"
                          "void F() { std::lock_guard<std::mutex> l(mu); }\n"
                          "std::condition_variable cv;\n");
  auto hl005 = FindingsFor("HL005", findings);
  ASSERT_EQ(hl005.size(), 4u);
  EXPECT_EQ(hl005[0].line, 1u);  // the include
  EXPECT_EQ(hl005[1].line, 2u);
  EXPECT_EQ(hl005[2].line, 3u);
  EXPECT_EQ(hl005[3].line, 4u);
}

TEST(LintTest, HL005SilentOnWrapperUseAndOutsideSrc) {
  EXPECT_TRUE(LintOne("src/serve/pool.cc",
                      "#include \"util/mutex.h\"\n"
                      "Mutex mu;\n"
                      "void F() { MutexLock l(mu); }\n")
                  .empty());
  // Tests and tools may use raw primitives (they are not under the
  // thread-safety analysis contract).
  EXPECT_TRUE(LintOne("tests/some_test.cc", "std::mutex mu;\n").empty());
}

// ---------------------------------------------------------------------
// HL006 — wall-clock metric instruments outside the serving layer.
// ---------------------------------------------------------------------

TEST(LintTest, HL006FiresOnHistogramUseInDeterministicTrees) {
  auto findings = LintOne(
      "src/ads/hot_path.cc",
      "#include \"util/metrics.h\"\n"
      "MetricHistogram* h = MetricsRegistry::Get().Histogram(\"x\");\n"
      "void F(MetricHistogram* hist) { ScopedLatencyTimer t(hist); }\n");
  auto hl006 = FindingsFor("HL006", findings);
  ASSERT_EQ(hl006.size(), 2u);
  EXPECT_EQ(hl006[0].line, 2u);
  EXPECT_EQ(hl006[1].line, 3u);
}

TEST(LintTest, HL006SilentOnCountersAndInsideServingLayer) {
  // Counters and gauges are count instruments — allowed anywhere.
  EXPECT_TRUE(
      FindingsFor(
          "HL006",
          LintOne("src/ads/shard.cc",
                  "#include \"util/metrics.h\"\n"
                  "RegisteredCounter loads{\"ads.shard.loads\"};\n"
                  "MetricCounter* c = MetricsRegistry::Get().Counter(\"x\");\n"
                  "MetricGauge* g = MetricsRegistry::Get().Gauge(\"y\");\n"))
          .empty());
  // Snapshot plumbing is not an instrument.
  EXPECT_TRUE(
      FindingsFor("HL006", LintOne("src/ads/snap.cc",
                                   "MetricsSnapshot::HistogramValue v;\n"))
          .empty());
  // The serving layer, the metrics implementation itself, and tools /
  // tests are unrestricted.
  EXPECT_TRUE(FindingsFor("HL006", LintOne("src/serve/server.cc",
                                           "ScopedLatencyTimer t(h);\n"))
                  .empty());
  EXPECT_TRUE(FindingsFor("HL006", LintOne("src/util/metrics.h",
                                           "class MetricHistogram {};\n"))
                  .empty());
  EXPECT_TRUE(
      FindingsFor("HL006", LintOne("tools/bench.cc", "MetricHistogram h;\n"))
          .empty());
  // The inline allow works for HL006 like every other rule.
  EXPECT_TRUE(
      FindingsFor(
          "HL006",
          LintOne("src/ads/x.cc",
                  "ScopedLatencyTimer t(h);  // hipads-lint: allow(HL006)\n"))
          .empty());
}

TEST(LintTest, InlineAllowSuppressesExactlyThatRuleOnThatLine) {
  const std::string body =
      "std::mutex mu_;  // hipads-lint: allow(HL005) — wrapped primitive\n"
      "std::mutex other_;\n";
  auto findings = LintOne("src/util/wrapper.h", body);
  auto hl005 = FindingsFor("HL005", findings);
  ASSERT_EQ(hl005.size(), 1u);
  EXPECT_EQ(hl005[0].line, 2u);
  // An allow for a different rule does not suppress HL005.
  EXPECT_EQ(FindingsFor(
                "HL005",
                LintOne("src/util/wrapper.h",
                        "std::mutex mu_;  // hipads-lint: allow(HL001)\n"))
                .size(),
            1u);
}

// ---------------------------------------------------------------------
// Engine pieces.
// ---------------------------------------------------------------------

TEST(LintTest, StripperBlanksCommentsAndStringsButKeepsLineNumbers) {
  const std::string text =
      "int a = 1; // trailing rand()\n"
      "/* block\n"
      "   spanning lines */ int b = 2;\n"
      "const char* s = \"std::mutex \\\" escaped\";\n"
      "char c = '\\'';\n";
  std::string stripped = StripCommentsAndStrings(text);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("spanning"), std::string::npos);
  EXPECT_EQ(stripped.find("std::mutex"), std::string::npos);
  EXPECT_NE(stripped.find("int b = 2;"), std::string::npos);
  EXPECT_NE(stripped.find("const char* s = "), std::string::npos);
}

TEST(LintTest, FindingsAreSortedAndFormatted) {
  Finding f{"src/x.cc", 12, "HL001", "message text"};
  EXPECT_EQ(FormatFinding(f), "src/x.cc:12: HL001: message text");
  auto findings = RunLint({
      FileInput{"src/ads/z.cc", "int a = rand();\nint b = rand();\n"},
      FileInput{"src/ads/a.cc", "int c = rand();\n"},
  });
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/ads/a.cc");
  EXPECT_EQ(findings[1].file, "src/ads/z.cc");
  EXPECT_EQ(findings[1].line, 1u);
  EXPECT_EQ(findings[2].line, 2u);
}

// ---------------------------------------------------------------------
// End to end: the tree this test was built from must be clean.
// ---------------------------------------------------------------------

TEST(LintTest, SourceTreeIsClean) {
  std::vector<Finding> findings = LintTree(HIPADS_SOURCE_ROOT);
  for (const Finding& f : findings) {
    ADD_FAILURE() << FormatFinding(f);
  }
}

}  // namespace
}  // namespace lint
}  // namespace hipads
