// Tests for the query-time estimators: HipEstimator facade, basic-from-ADS
// estimates, the Section 8 size estimator, the Section 5.4 permutation
// estimator, and the naive Q_g baseline.

#include "ads/estimators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ads/builders.h"
#include "graph/exact.h"
#include "graph/generators.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/stats.h"

namespace hipads {
namespace {

Ads StreamAds(uint64_t n, uint32_t k, const RankAssignment& ranks) {
  std::vector<AdsEntry> candidates;
  for (uint64_t i = 0; i < n; ++i) {
    candidates.push_back(AdsEntry{static_cast<NodeId>(i), 0, ranks.rank(i),
                                  static_cast<double>(i)});
  }
  return Ads::CanonicalBottomK(std::move(candidates), k, ranks.sup());
}

TEST(HipEstimatorTest, CardinalityPrefixSums) {
  const uint32_t k = 6;
  auto ranks = RankAssignment::Uniform(2);
  Ads ads = StreamAds(50, k, ranks);
  HipEstimator est(ads, k, SketchFlavor::kBottomK, ranks);
  // Below k the estimates are exact.
  EXPECT_EQ(est.NeighborhoodCardinality(0.0), 1.0);
  EXPECT_EQ(est.NeighborhoodCardinality(4.0), 5.0);
  EXPECT_EQ(est.NeighborhoodCardinality(-1.0), 0.0);
  // Monotone in d.
  double prev = 0.0;
  for (double d = 0.0; d <= 49.0; d += 1.0) {
    double c = est.NeighborhoodCardinality(d);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(est.ReachableCount(), est.NeighborhoodCardinality(49.0));
}

TEST(HipEstimatorTest, QgMatchesManualSum) {
  const uint32_t k = 4;
  auto ranks = RankAssignment::Uniform(3);
  Ads ads = StreamAds(80, k, ranks);
  HipEstimator est(ads, k, SketchFlavor::kBottomK, ranks);
  double manual = 0.0;
  for (const HipEntry& e : est.CopyEntries()) {
    manual += e.weight * std::exp(-e.dist);
  }
  EXPECT_DOUBLE_EQ(
      est.Qg([](NodeId, double d) { return std::exp(-d); }), manual);
}

TEST(HipEstimatorTest, ClosenessComposesAlphaBeta) {
  const uint32_t k = 4;
  auto ranks = RankAssignment::Uniform(5);
  Ads ads = StreamAds(60, k, ranks);
  HipEstimator est(ads, k, SketchFlavor::kBottomK, ranks);
  double via_closeness = est.Closeness(
      [](double d) { return 1.0 / (1.0 + d); },
      [](NodeId v) { return v % 2 == 0 ? 1.0 : 0.0; });
  double via_qg = est.Qg([](NodeId v, double d) {
    return (v % 2 == 0 ? 1.0 : 0.0) / (1.0 + d);
  });
  EXPECT_DOUBLE_EQ(via_closeness, via_qg);
}

TEST(HipEstimatorTest, DistanceSumAndHarmonicOnGraph) {
  // Estimates against exact values on a graph, averaged over rank seeds.
  Graph g = BarabasiAlbert(300, 3, 7);
  const uint32_t k = 16;
  const NodeId v = 5;
  double exact_ds = ExactDistanceSum(g, v);
  double exact_hc = ExactHarmonicCentrality(g, v);
  RunningStat ds, hc;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    auto ranks = RankAssignment::Uniform(seed);
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK, ranks);
    HipEstimator est(set.of(v), k, SketchFlavor::kBottomK, ranks);
    ds.Add(est.DistanceSum());
    hc.Add(est.HarmonicCentrality());
  }
  EXPECT_NEAR(ds.mean() / exact_ds, 1.0, 0.08);
  EXPECT_NEAR(hc.mean() / exact_hc, 1.0, 0.08);
}

TEST(HipEstimatorTest, DistanceQuantileOnStream) {
  const uint32_t k = 32;
  auto ranks = RankAssignment::Uniform(17);
  Ads ads = StreamAds(1000, k, ranks);
  HipEstimator est(ads, k, SketchFlavor::kBottomK, ranks);
  // Distances are 0..999 uniformly; the median should land near 500.
  double median = est.DistanceQuantile(0.5);
  EXPECT_GT(median, 300.0);
  EXPECT_LT(median, 700.0);
  // Quantiles are monotone and the 1.0 quantile is the farthest entry.
  EXPECT_LE(est.DistanceQuantile(0.25), est.DistanceQuantile(0.75));
  EXPECT_EQ(est.DistanceQuantile(1.0), est.CopyEntries().back().dist);
}

TEST(HipEstimatorTest, DistanceQuantileExactBelowK) {
  const uint32_t k = 16;
  auto ranks = RankAssignment::Uniform(19);
  Ads ads = StreamAds(10, k, ranks);  // everything sketched, weights 1
  HipEstimator est(ads, k, SketchFlavor::kBottomK, ranks);
  EXPECT_EQ(est.DistanceQuantile(0.5), 4.0);  // 5th of 10 entries (0-based)
  EXPECT_EQ(est.DistanceQuantile(0.1), 0.0);
  EXPECT_EQ(est.DistanceQuantile(1.0), 9.0);
}

TEST(AdsBasicCardinalityTest, MatchesDirectSketchEstimate) {
  Graph g = ErdosRenyi(100, 300, true, 11);
  const uint32_t k = 5;
  auto ranks = RankAssignment::Uniform(13);
  AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK, ranks);
  // The ADS-extracted sketch at d = infinity covers all reachable nodes.
  double est = AdsBasicCardinality(set.of(0), 1e18, k,
                                   SketchFlavor::kBottomK);
  EXPECT_GT(est, 0.0);
  // Exact when fewer than k reachable: tiny component.
  Graph g2(3, {{0, 1, 1.0}}, true);
  AdsSet set2 = BuildAdsPrunedDijkstra(g2, k, SketchFlavor::kBottomK, ranks);
  EXPECT_EQ(AdsBasicCardinality(set2.of(0), 10.0, k,
                                SketchFlavor::kBottomK),
            2.0);
}

TEST(SizeEstimatorTest, ClosedFormMatchesLemma81) {
  const uint32_t k = 4;
  EXPECT_EQ(SizeEstimatorValue(0, k), 0.0);
  EXPECT_EQ(SizeEstimatorValue(3, k), 3.0);
  EXPECT_EQ(SizeEstimatorValue(4, k), 4.0);
  // E_{k+1} = (k+1)^2/k - 1.
  EXPECT_NEAR(SizeEstimatorValue(k + 1, k),
              std::pow(k + 1.0, 2) / k - 1.0, 1e-12);
  // General closed form k(1+1/k)^{s-k+1} - 1.
  EXPECT_NEAR(SizeEstimatorValue(10, k),
              4.0 * std::pow(1.25, 7) - 1.0, 1e-12);
}

TEST(SizeEstimatorTest, K1IsPowersOfTwo) {
  // For k=1 the estimator is 2^s - 1... the paper notes "simply 2s"; our
  // closed form gives 1*(2)^{s} - 1.
  EXPECT_EQ(SizeEstimatorValue(1, 1), 1.0);
  EXPECT_EQ(SizeEstimatorValue(2, 1), 3.0);
  EXPECT_EQ(SizeEstimatorValue(3, 1), 7.0);
}

TEST(SizeEstimatorTest, UnbiasedOnStreams) {
  // E[E_s] should equal the true cardinality.
  const uint32_t k = 4;
  const uint64_t n = 200;
  const uint32_t runs = 4000;
  RunningStat est;
  for (uint32_t run = 0; run < runs; ++run) {
    auto ranks = RankAssignment::Uniform(HashCombine(808, run));
    Ads ads = StreamAds(n, k, ranks);
    est.Add(AdsSizeCardinality(ads, static_cast<double>(n), k));
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.06);
}

TEST(SizeEstimatorTest, HigherVarianceThanHip) {
  const uint32_t k = 6;
  const uint64_t n = 500;
  const uint32_t runs = 2000;
  ErrorStats size_err, hip_err;
  for (uint32_t run = 0; run < runs; ++run) {
    auto ranks = RankAssignment::Uniform(HashCombine(909, run));
    Ads ads = StreamAds(n, k, ranks);
    size_err.Add(AdsSizeCardinality(ads, static_cast<double>(n), k),
                 static_cast<double>(n));
    HipEstimator est(ads, k, SketchFlavor::kBottomK, ranks);
    hip_err.Add(est.NeighborhoodCardinality(static_cast<double>(n)),
                static_cast<double>(n));
  }
  EXPECT_GT(size_err.nrmse(), hip_err.nrmse());
}

Ads PermutationStreamAds(const std::vector<uint32_t>& perm, uint32_t k) {
  auto ranks = RankAssignment::Permutation(perm);
  std::vector<AdsEntry> candidates;
  for (uint64_t i = 0; i < perm.size(); ++i) {
    candidates.push_back(AdsEntry{static_cast<NodeId>(i), 0, ranks.rank(i),
                                  static_cast<double>(i)});
  }
  return Ads::CanonicalBottomK(std::move(candidates), k, ranks.sup());
}

TEST(PermutationEstimatorTest, ExactBelowK) {
  Rng rng(5);
  auto perm = rng.NextPermutation(100);
  PermutationCardinalityEstimator est(PermutationStreamAds(perm, 8), 8, 100);
  for (double d = 0.0; d < 8.0; d += 1.0) {
    EXPECT_EQ(est.NeighborhoodCardinality(d), d + 1.0);
  }
}

TEST(PermutationEstimatorTest, NearUnbiasedMidRange) {
  // The running estimate counts elements through the latest sketch update,
  // so between updates it lags the truth by a partial inter-update gap of
  // expected relative size ~1/(2k) (the paper's estimator has the same
  // behaviour — it only changes on updates).
  const uint32_t k = 8;
  const uint64_t n = 400;
  const uint32_t runs = 3000;
  RunningStat est_half;
  Rng rng(77);
  for (uint32_t run = 0; run < runs; ++run) {
    auto perm = rng.NextPermutation(n);
    PermutationCardinalityEstimator est(PermutationStreamAds(perm, k), k, n);
    est_half.Add(est.NeighborhoodCardinality(n / 2.0));
  }
  EXPECT_NEAR(est_half.mean() / (n / 2 + 1), 1.0, 1.0 / k);
}

TEST(PermutationEstimatorTest, BeatsHipAtLargeFractions) {
  // Section 5.5: for cardinality > 0.2 n, the permutation estimator has a
  // significant advantage over plain HIP.
  const uint32_t k = 8;
  const uint64_t n = 300;
  const uint32_t runs = 3000;
  ErrorStats perm_err, hip_err;
  Rng rng(88);
  for (uint32_t run = 0; run < runs; ++run) {
    auto perm = rng.NextPermutation(n);
    PermutationCardinalityEstimator pest(PermutationStreamAds(perm, k), k,
                                         n);
    perm_err.Add(pest.NeighborhoodCardinality(static_cast<double>(n)),
                 static_cast<double>(n));
    auto ranks = RankAssignment::Uniform(HashCombine(404, run));
    Ads ads = StreamAds(n, k, ranks);
    HipEstimator hest(ads, k, SketchFlavor::kBottomK, ranks);
    hip_err.Add(hest.NeighborhoodCardinality(static_cast<double>(n)),
                static_cast<double>(n));
  }
  EXPECT_LT(perm_err.nrmse(), 0.75 * hip_err.nrmse());
}

TEST(PermutationEstimatorTest, SaturationCorrectionExactWhenAllSeen) {
  // If the k lowest permutation ranks appear early, the corrected estimate
  // is still sensible (close to truth on average) at full distance.
  const uint32_t k = 4;
  const uint64_t n = 50;
  const uint32_t runs = 5000;
  RunningStat est;
  Rng rng(99);
  for (uint32_t run = 0; run < runs; ++run) {
    auto perm = rng.NextPermutation(n);
    PermutationCardinalityEstimator pest(PermutationStreamAds(perm, k), k,
                                         n);
    est.Add(pest.NeighborhoodCardinality(static_cast<double>(n)));
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.03);
}

TEST(NaiveQgTest, UnbiasedButHighVariance) {
  const uint32_t k = 8;
  const uint64_t n = 1000;
  const uint32_t runs = 3000;
  // Decay statistic concentrated on close nodes.
  auto g_fn = [](NodeId, double d) { return std::exp(-0.05 * d); };
  double truth = 0.0;
  for (uint64_t i = 0; i < n; ++i) truth += std::exp(-0.05 * i);
  RunningStat naive_mean;
  ErrorStats naive_err, hip_err;
  for (uint32_t run = 0; run < runs; ++run) {
    auto ranks = RankAssignment::Uniform(HashCombine(606, run));
    Ads ads = StreamAds(n, k, ranks);
    double naive = NaiveQgEstimate(ads, k, g_fn);
    naive_mean.Add(naive);
    naive_err.Add(naive, truth);
    HipEstimator est(ads, k, SketchFlavor::kBottomK, ranks);
    hip_err.Add(est.Qg(g_fn), truth);
  }
  EXPECT_NEAR(naive_mean.mean() / truth, 1.0, 0.1);
  // The decay statistic concentrates on close nodes the uniform sample
  // misses: HIP should be dramatically better (Cor. 5.3 discussion).
  EXPECT_LT(hip_err.nrmse(), 0.4 * naive_err.nrmse());
}

TEST(NaiveQgTest, SmallReachableSetIsExact) {
  auto ranks = RankAssignment::Uniform(1);
  Ads ads = StreamAds(3, 8, ranks);
  double est =
      NaiveQgEstimate(ads, 8, [](NodeId, double) { return 1.0; });
  EXPECT_EQ(est, 3.0);
}

}  // namespace
}  // namespace hipads
