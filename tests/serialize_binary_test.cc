// hipads-ads-v2 binary format: round-trip fidelity (bit-identical arenas,
// identical HIP estimates, v1/v2 interchangeability) and corruption
// handling (every structural damage returns Status::Corruption and never
// crashes — these suites run under the asan `serialize` ctest lane).

#include "ads/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <limits>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/hip.h"
#include "graph/generators.h"
#include "util/hash.h"
#include "util/random.h"

namespace hipads {
namespace {

FlatAdsSet BuildFlat(uint32_t n, uint64_t graph_seed, uint32_t k,
                     SketchFlavor flavor, const RankAssignment& ranks) {
  Graph g = ErdosRenyi(n, 3ULL * n, true, graph_seed);
  return FlatAdsSet::FromAdsSet(
      BuildAdsPrunedDijkstra(g, k, flavor, ranks));
}

void ExpectBitIdentical(const FlatAdsSet& a, const FlatAdsSet& b) {
  EXPECT_EQ(a.flavor, b.flavor);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.ranks.kind(), b.ranks.kind());
  EXPECT_EQ(a.ranks.seed(), b.ranks.seed());
  EXPECT_EQ(a.ranks.base(), b.ranks.base());
  ASSERT_EQ(a.offsets, b.offsets);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  // Bitwise, not value, comparison: the format must preserve every double
  // exactly.
  ASSERT_EQ(std::memcmp(a.entries.data(), b.entries.data(),
                        a.entries.size() * sizeof(AdsEntry)),
            0);
}

TEST(SerializeBinaryTest, RoundTripBitIdentical) {
  FlatAdsSet set = BuildFlat(120, 3, 8, SketchFlavor::kBottomK,
                             RankAssignment::Uniform(7));
  auto back = ParseFlatAdsSetBinary(SerializeAdsSetBinary(set));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectBitIdentical(set, back.value());
}

TEST(SerializeBinaryTest, RoundTripAllFlavors) {
  for (SketchFlavor flavor : {SketchFlavor::kBottomK, SketchFlavor::kKMins,
                              SketchFlavor::kKPartition}) {
    FlatAdsSet set =
        BuildFlat(60, 11, 4, flavor, RankAssignment::Uniform(13));
    auto back = ParseFlatAdsSetBinary(SerializeAdsSetBinary(set));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectBitIdentical(set, back.value());
  }
}

TEST(SerializeBinaryTest, RoundTripBaseBAndWeighted) {
  Graph g = RandomizeWeights(ErdosRenyi(80, 240, true, 17), 0.3, 2.7, 3);
  FlatAdsSet set = FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, 4, SketchFlavor::kBottomK, RankAssignment::BaseB(5, 2.0)));
  auto back = ParseFlatAdsSetBinary(SerializeAdsSetBinary(set));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().ranks.base(), 2.0);
  ExpectBitIdentical(set, back.value());
}

TEST(SerializeBinaryTest, BothLayoutsSerializeIdentically) {
  Graph g = BarabasiAlbert(70, 2, 23);
  AdsSet set = BuildAdsDp(g, 8, SketchFlavor::kBottomK,
                          RankAssignment::Uniform(29));
  EXPECT_EQ(SerializeAdsSetBinary(set),
            SerializeAdsSetBinary(FlatAdsSet::FromAdsSet(set)));
}

// The property suite of the issue: random sets -> v1 text and v2 binary ->
// parse back -> bit-identical entries and identical HIP estimates.
TEST(SerializeBinaryTest, PropertyBothFormatsRoundTripAndAgree) {
  for (uint64_t trial = 0; trial < 8; ++trial) {
    uint32_t n = 30 + 17 * static_cast<uint32_t>(trial);
    uint32_t k = trial % 2 ? 4 : 8;
    RankAssignment ranks = trial % 3 == 0
                               ? RankAssignment::BaseB(trial + 1, 2.0)
                               : RankAssignment::Uniform(trial + 1);
    FlatAdsSet set =
        BuildFlat(n, trial + 41, k, SketchFlavor::kBottomK, ranks);

    auto from_text = ParseFlatAdsSet(SerializeAdsSet(set));
    ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
    auto from_binary = ParseFlatAdsSetBinary(SerializeAdsSetBinary(set));
    ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
    ExpectBitIdentical(set, from_text.value());
    ExpectBitIdentical(from_text.value(), from_binary.value());

    for (NodeId v = 0; v < set.num_nodes(); v += 7) {
      HipEstimator a(set.of(v), set.k, set.flavor, set.ranks);
      HipEstimator b(from_binary.value().of(v), set.k, set.flavor,
                     from_binary.value().ranks);
      EXPECT_EQ(a.ReachableCount(), b.ReachableCount());
      EXPECT_EQ(a.HarmonicCentrality(), b.HarmonicCentrality());
    }
  }
}

TEST(SerializeBinaryTest, FileRoundTripAndAutoDetect) {
  FlatAdsSet set = BuildFlat(50, 31, 4, SketchFlavor::kBottomK,
                             RankAssignment::Uniform(37));
  std::string path = "/tmp/hipads_serialize_binary_test.ads2";
  ASSERT_TRUE(
      WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2).ok());
  auto flat = ReadFlatAdsSetFile(path);  // auto-detects v2
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  ExpectBitIdentical(set, flat.value());
  auto as_ads = ReadAdsSetFile(path);  // v2 -> per-node layout
  ASSERT_TRUE(as_ads.ok()) << as_ads.status().ToString();
  ExpectBitIdentical(set, FlatAdsSet::FromAdsSet(as_ads.value()));
  std::remove(path.c_str());
}

TEST(SerializeBinaryTest, ExponentialNeedsBeta) {
  Graph g = ErdosRenyi(30, 90, true, 31);
  auto beta = [](uint64_t v) { return v % 2 ? 2.0 : 1.0; };
  FlatAdsSet set = FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, 4, SketchFlavor::kBottomK, RankAssignment::Exponential(5, beta)));
  std::string bytes = SerializeAdsSetBinary(set);
  auto without = ParseFlatAdsSetBinary(bytes);
  EXPECT_FALSE(without.ok());
  EXPECT_EQ(without.status().code(), Status::Code::kInvalidArgument);
  auto with = ParseFlatAdsSetBinary(bytes, beta);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_EQ(with.value().ranks.kind(), RankKind::kExponential);
  EXPECT_EQ(with.value().TotalEntries(), set.TotalEntries());
}

// --- corruption handling ---------------------------------------------------

std::string ValidBytes() {
  static const std::string bytes = SerializeAdsSetBinary(
      BuildFlat(40, 7, 4, SketchFlavor::kBottomK,
                RankAssignment::Uniform(3)));
  return bytes;
}

void ExpectCorruption(const std::string& bytes, const char* what) {
  auto result = ParseFlatAdsSetBinary(bytes);
  EXPECT_FALSE(result.ok()) << what;
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption) << what;
}

TEST(SerializeBinaryTest, RejectsBadMagicAndVersion) {
  ExpectCorruption("", "empty");
  ExpectCorruption("hipads", "short");
  std::string bytes = ValidBytes();
  bytes[0] ^= 0x1;
  ExpectCorruption(bytes, "magic");
  bytes = ValidBytes();
  bytes[8] = 99;  // version field
  ExpectCorruption(bytes, "version");
}

TEST(SerializeBinaryTest, RejectsTruncationAnywhere) {
  std::string bytes = ValidBytes();
  for (size_t len : {size_t{1}, size_t{40}, size_t{87}, size_t{88},
                     size_t{100}, bytes.size() / 2, bytes.size() - 1}) {
    ExpectCorruption(bytes.substr(0, len),
                     "truncated arena/header must be rejected");
  }
}

TEST(SerializeBinaryTest, RejectsTrailingBytes) {
  ExpectCorruption(ValidBytes() + "x", "trailing byte");
}

TEST(SerializeBinaryTest, RejectsChecksumMismatch) {
  std::string bytes = ValidBytes();
  bytes[bytes.size() - 5] ^= 0x40;  // flip a payload bit
  ExpectCorruption(bytes, "checksum");
}

TEST(SerializeBinaryTest, RejectsHeaderFieldMutations) {
  // Flipping any single byte of the header must never crash; it either
  // breaks a validated field or the section-length/checksum consistency.
  std::string valid = ValidBytes();
  for (size_t pos = 0; pos < 88; ++pos) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string bytes = valid;
      bytes[pos] = static_cast<char>(bytes[pos] ^ bit);
      if (bytes == valid) continue;
      auto result = ParseFlatAdsSetBinary(bytes);
      EXPECT_FALSE(result.ok()) << "header byte " << pos;
    }
  }
}

TEST(SerializeBinaryTest, FuzzRandomMutationsNeverCrash) {
  std::string valid = ValidBytes();
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = valid;
    int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.NextBounded(bytes.size());
      bytes[pos] = static_cast<char>(rng.Next());
    }
    auto result = ParseFlatAdsSetBinary(bytes);  // must not crash
    if (result.ok()) {
      // A mutation may survive (e.g. flipping a rank bit and its checksum
      // compensating is astronomically unlikely, but flipping nothing
      // semantic is possible when the byte lands back on itself).
      EXPECT_EQ(result.value().num_nodes(), 40u);
    }
  }
}

// --- the optional HIP section ----------------------------------------------

TEST(SerializeBinaryTest, HipSectionRoundTripsBitIdentical) {
  for (SketchFlavor flavor : {SketchFlavor::kBottomK, SketchFlavor::kKMins,
                              SketchFlavor::kKPartition}) {
    FlatAdsSet set =
        BuildFlat(70, 13, 4, flavor, RankAssignment::Uniform(19));
    PrecomputeHipWeights(&set, 1);
    std::string bytes = SerializeAdsSetBinary(set);
    EXPECT_EQ(bytes.size(),
              AdsBinaryFileSize(set.num_nodes(), set.TotalEntries()) +
                  AdsHipSectionBytes(set.TotalEntries()));
    auto back = ParseFlatAdsSetBinary(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectBitIdentical(set, back.value());
    ASSERT_TRUE(back.value().has_hip());
    EXPECT_EQ(set.hip_tau, back.value().hip_tau);
    EXPECT_EQ(set.hip_weight, back.value().hip_weight);
  }
}

TEST(SerializeBinaryTest, HipSectionLeavesBaseImageBitIdentical) {
  // The main checksum excludes the section, so a file is the SAME bytes
  // with the section appended — stripping is a truncation, and files
  // without the section load exactly as before the section existed.
  FlatAdsSet set = BuildFlat(50, 17, 8, SketchFlavor::kBottomK,
                             RankAssignment::Uniform(23));
  std::string base = SerializeAdsSetBinary(set);
  PrecomputeHipWeights(&set, 1);
  std::string with_hip = SerializeAdsSetBinary(set);
  ASSERT_GT(with_hip.size(), base.size());
  EXPECT_EQ(with_hip.substr(0, base.size()), base);
  // +16 bytes per entry plus the 32-byte section header.
  EXPECT_EQ(with_hip.size() - base.size(),
            kAdsHipSectionHeaderBytes + 16 * set.TotalEntries());
  // Truncating the section off yields a valid hip-less file again.
  auto stripped = ParseFlatAdsSetBinary(with_hip.substr(0, base.size()));
  ASSERT_TRUE(stripped.ok()) << stripped.status().ToString();
  EXPECT_FALSE(stripped.value().has_hip());
}

std::string HipBytes() {
  static const std::string bytes = [] {
    FlatAdsSet set = BuildFlat(40, 7, 4, SketchFlavor::kBottomK,
                               RankAssignment::Uniform(3));
    PrecomputeHipWeights(&set, 1);
    return SerializeAdsSetBinary(set);
  }();
  return bytes;
}

TEST(SerializeBinaryTest, HipSectionRejectsTruncationAtEveryBoundary) {
  std::string bytes = HipBytes();
  const size_t base = ValidBytes().size();
  // Every structural boundary of the section, plus off-by-one around each:
  // inside the header, at the header end, inside tau[], at the tau/weight
  // seam, inside weight[], one short of complete.
  const size_t header_end = base + kAdsHipSectionHeaderBytes;
  const size_t seam = header_end + (bytes.size() - header_end) / 2;
  for (size_t len :
       {base + 1, base + kAdsHipSectionHeaderBytes / 2, header_end - 1,
        header_end, header_end + 1, seam - 1, seam, seam + 1,
        bytes.size() - 8, bytes.size() - 1}) {
    ExpectCorruption(bytes.substr(0, len), "truncated HIP section");
  }
  ExpectCorruption(bytes + "x", "trailing byte after HIP section");
}

TEST(SerializeBinaryTest, HipSectionRejectsHeaderAndPayloadCorruption) {
  const size_t base = ValidBytes().size();
  {
    std::string bytes = HipBytes();
    bytes[base] ^= 0x1;  // section magic
    ExpectCorruption(bytes, "HIP section magic");
  }
  {
    std::string bytes = HipBytes();
    bytes[base + 8] = 9;  // section version
    ExpectCorruption(bytes, "HIP section version");
  }
  {
    std::string bytes = HipBytes();
    bytes[base + 12] = 1;  // reserved field
    ExpectCorruption(bytes, "HIP section reserved");
  }
  {
    std::string bytes = HipBytes();
    bytes[base + 16] ^= 0x1;  // section entry count
    ExpectCorruption(bytes, "HIP section entry count");
  }
  {
    std::string bytes = HipBytes();
    bytes[base + 24] ^= 0x1;  // section checksum itself
    ExpectCorruption(bytes, "HIP section checksum field");
  }
  {
    std::string bytes = HipBytes();
    bytes[bytes.size() - 3] ^= 0x40;  // a weight[] payload bit
    ExpectCorruption(bytes, "HIP payload bit flip");
  }
}

TEST(SerializeBinaryTest, HipSectionRejectsInconsistentWeights) {
  // A section that passes its checksum but stores tau/weight pairs
  // violating weight == 1/tau (or tau outside (0, 1]) must be rejected:
  // serving trusts these values blindly on the hot path. Corrupt the
  // doubles, then re-stamp the section checksum so only the per-entry
  // validation can catch it. The checksum field lives at section + 24.
  auto corrupt_first_tau = [](double tau, double weight) {
    std::string bytes = HipBytes();
    const size_t base = ValidBytes().size();
    const size_t tau_at = base + kAdsHipSectionHeaderBytes;
    const uint64_t n = (bytes.size() - tau_at) / (2 * sizeof(double));
    std::memcpy(bytes.data() + tau_at, &tau, sizeof(double));
    std::memcpy(bytes.data() + tau_at + n * sizeof(double), &weight,
                sizeof(double));
    // Recompute the section checksum the same way the writer does: header
    // with the field zeroed, then both arrays.
    std::string header(bytes, base, kAdsHipSectionHeaderBytes);
    std::memset(header.data() + 24, 0, 8);
    uint64_t sum = Fnv1a(header.data(), header.size(), kFnv1aOffsetBasis);
    sum = Fnv1a(bytes.data() + tau_at, bytes.size() - tau_at, sum);
    std::memcpy(bytes.data() + base + 24, &sum, sizeof(uint64_t));
    return bytes;
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ExpectCorruption(corrupt_first_tau(0.5, 3.0), "weight != 1/tau");
  ExpectCorruption(corrupt_first_tau(1.5, 1.0 / 1.5), "tau > 1");
  ExpectCorruption(corrupt_first_tau(-0.5, -2.0), "tau < 0");
  ExpectCorruption(corrupt_first_tau(0.0, 1.0), "zero tau, nonzero weight");
  ExpectCorruption(corrupt_first_tau(nan, nan), "NaN pair");
  // Sanity: the re-stamping helper itself round-trips a legal pair.
  auto untouched = ParseFlatAdsSetBinary(corrupt_first_tau(1.0, 1.0));
  EXPECT_TRUE(untouched.ok()) << untouched.status().ToString();
}

TEST(SerializeBinaryTest, HipSectionFuzzRandomMutationsNeverCrash) {
  std::string valid = HipBytes();
  const size_t base = ValidBytes().size();
  Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = valid;
    int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      // Bias half the flips into the section so its validators get hit.
      size_t pos = f % 2 == 0
                       ? base + rng.NextBounded(bytes.size() - base)
                       : rng.NextBounded(bytes.size());
      bytes[pos] = static_cast<char>(rng.Next());
    }
    auto result = ParseFlatAdsSetBinary(bytes);  // must not crash
    if (result.ok()) {
      EXPECT_EQ(result.value().num_nodes(), 40u);
    }
  }
}

TEST(SerializeBinaryTest, ReadMissingFileFails) {
  auto result = ReadFlatAdsSetFile("/nonexistent/sketches.ads2");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace hipads
