#include "ads/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "graph/generators.h"

namespace hipads {
namespace {

void ExpectSameSet(const AdsSet& a, const AdsSet& b) {
  EXPECT_EQ(a.flavor, b.flavor);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.ranks.kind(), b.ranks.kind());
  EXPECT_EQ(a.ranks.seed(), b.ranks.seed());
  ASSERT_EQ(a.ads.size(), b.ads.size());
  for (NodeId v = 0; v < a.ads.size(); ++v) {
    const auto& ea = a.of(v).entries();
    const auto& eb = b.of(v).entries();
    ASSERT_EQ(ea.size(), eb.size()) << "node " << v;
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].node, eb[i].node);
      EXPECT_EQ(ea[i].part, eb[i].part);
      EXPECT_EQ(ea[i].rank, eb[i].rank);  // %.17g round-trips doubles
      EXPECT_EQ(ea[i].dist, eb[i].dist);
    }
  }
}

TEST(SerializeTest, RoundTripBottomK) {
  Graph g = ErdosRenyi(80, 240, true, 5);
  AdsSet set = BuildAdsPrunedDijkstra(g, 8, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(9));
  auto back = ParseAdsSet(SerializeAdsSet(set));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameSet(set, back.value());
}

TEST(SerializeTest, RoundTripAllFlavors) {
  Graph g = BarabasiAlbert(60, 2, 7);
  for (SketchFlavor flavor : {SketchFlavor::kBottomK, SketchFlavor::kKMins,
                              SketchFlavor::kKPartition}) {
    AdsSet set =
        BuildAdsDp(g, 4, flavor, RankAssignment::Uniform(11));
    auto back = ParseAdsSet(SerializeAdsSet(set));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectSameSet(set, back.value());
  }
}

TEST(SerializeTest, RoundTripBaseB) {
  Graph g = ErdosRenyi(50, 150, true, 13);
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK,
                                      RankAssignment::BaseB(3, 2.0));
  auto back = ParseAdsSet(SerializeAdsSet(set));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().ranks.base(), 2.0);
  ExpectSameSet(set, back.value());
}

TEST(SerializeTest, RoundTripWeightedGraphDistances) {
  Graph g = RandomizeWeights(ErdosRenyi(50, 150, true, 17), 0.3, 2.7, 3);
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(21));
  auto back = ParseAdsSet(SerializeAdsSet(set));
  ASSERT_TRUE(back.ok());
  ExpectSameSet(set, back.value());
}

TEST(SerializeTest, LoadedSetAnswersSameQueries) {
  Graph g = BarabasiAlbert(150, 3, 23);
  AdsSet set = BuildAdsDp(g, 16, SketchFlavor::kBottomK,
                          RankAssignment::Uniform(31));
  auto back = ParseAdsSet(SerializeAdsSet(set));
  ASSERT_TRUE(back.ok());
  for (NodeId v : {0u, 50u, 149u}) {
    HipEstimator a(set.of(v), set.k, set.flavor, set.ranks);
    HipEstimator b(back.value().of(v), back.value().k, back.value().flavor,
                   back.value().ranks);
    EXPECT_DOUBLE_EQ(a.ReachableCount(), b.ReachableCount());
    EXPECT_DOUBLE_EQ(a.HarmonicCentrality(), b.HarmonicCentrality());
  }
}

TEST(SerializeTest, FileRoundTrip) {
  Graph g = ErdosRenyi(40, 120, true, 29);
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(37));
  std::string path = "/tmp/hipads_serialize_test.ads";
  ASSERT_TRUE(WriteAdsSetFile(set, path).ok());
  auto back = ReadAdsSetFile(path);
  ASSERT_TRUE(back.ok());
  ExpectSameSet(set, back.value());
  std::remove(path.c_str());
}

TEST(SerializeTest, ExponentialNeedsBeta) {
  Graph g = ErdosRenyi(30, 90, true, 31);
  auto beta = [](uint64_t v) { return v % 2 ? 2.0 : 1.0; };
  AdsSet set = BuildAdsPrunedDijkstra(
      g, 4, SketchFlavor::kBottomK, RankAssignment::Exponential(5, beta));
  std::string text = SerializeAdsSet(set);
  auto without = ParseAdsSet(text);
  EXPECT_FALSE(without.ok());
  EXPECT_EQ(without.status().code(), Status::Code::kInvalidArgument);
  auto with = ParseAdsSet(text, beta);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with.value().ranks.kind(), RankKind::kExponential);
  EXPECT_EQ(with.value().TotalEntries(), set.TotalEntries());
}

TEST(SerializeTest, PriorityRoundTripWithBeta) {
  Graph g = ErdosRenyi(30, 90, true, 43);
  auto beta = [](uint64_t v) { return v % 3 == 0 ? 3.0 : 1.0; };
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK,
                                      RankAssignment::Priority(7, beta));
  std::string text = SerializeAdsSet(set);
  EXPECT_FALSE(ParseAdsSet(text).ok());  // beta required
  auto with = ParseAdsSet(text, beta);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with.value().ranks.kind(), RankKind::kPriority);
  ExpectSameSet(set, with.value());
}

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_FALSE(ParseAdsSet("").ok());
  EXPECT_FALSE(ParseAdsSet("not-a-sketch\n").ok());
  EXPECT_FALSE(
      ParseAdsSet("hipads-ads-v1\nflavor nonsense\n").ok());
  EXPECT_FALSE(
      ParseAdsSet("hipads-ads-v1\nflavor bottom-k\nk 0\n").ok());
}

TEST(SerializeTest, RejectsTruncatedEntries) {
  Graph g = ErdosRenyi(20, 60, true, 41);
  AdsSet set = BuildAdsPrunedDijkstra(g, 2, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(1));
  std::string text = SerializeAdsSet(set);
  text.resize(text.size() / 2);
  auto result = ParseAdsSet(text);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

TEST(SerializeTest, RejectsOutOfRangePart) {
  std::string text =
      "hipads-ads-v1\nflavor bottom-k\nk 2\nranks uniform 1\nnodes 1\n"
      "0 1\n0 5 0.5 0\n";  // part 5 >= k 2
  EXPECT_FALSE(ParseAdsSet(text).ok());
}

TEST(SerializeTest, BothParsersRejectDuplicateNodeBlocks) {
  // Two blocks for node 0 (and none for node 1): historically the AdsSet
  // parser silently let the last block win while the flat parser rejected
  // it; both must reject so the two loaders accept identical file sets.
  std::string text =
      "hipads-ads-v1\nflavor bottom-k\nk 2\nranks uniform 1\nnodes 2\n"
      "0 1\n0 0 0.5 0\n"
      "0 1\n1 0 0.25 1\n";
  auto as_set = ParseAdsSet(text);
  EXPECT_FALSE(as_set.ok());
  EXPECT_EQ(as_set.status().code(), Status::Code::kCorruption);
  auto as_flat = ParseFlatAdsSet(text);
  EXPECT_FALSE(as_flat.ok());
  EXPECT_EQ(as_flat.status().code(), Status::Code::kCorruption);
}

TEST(SerializeTest, BothParsersRejectOutOfOrderNodeBlocks) {
  std::string text =
      "hipads-ads-v1\nflavor bottom-k\nk 2\nranks uniform 1\nnodes 2\n"
      "1 1\n1 0 0.25 0\n"
      "0 1\n0 0 0.5 0\n";
  EXPECT_FALSE(ParseAdsSet(text).ok());
  EXPECT_FALSE(ParseFlatAdsSet(text).ok());
}

TEST(SerializeTest, BothParsersRejectTrailingGarbage) {
  Graph g = ErdosRenyi(20, 60, true, 47);
  AdsSet set = BuildAdsPrunedDijkstra(g, 2, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(1));
  std::string text = SerializeAdsSet(set);
  ASSERT_TRUE(ParseAdsSet(text).ok());
  ASSERT_TRUE(ParseFlatAdsSet(text).ok());
  for (const char* junk : {"0", "garbage", "0 1\n0 0 0.5 0\n"}) {
    auto as_set = ParseAdsSet(text + junk);
    EXPECT_FALSE(as_set.ok()) << junk;
    EXPECT_EQ(as_set.status().code(), Status::Code::kCorruption);
    auto as_flat = ParseFlatAdsSet(text + junk);
    EXPECT_FALSE(as_flat.ok()) << junk;
    EXPECT_EQ(as_flat.status().code(), Status::Code::kCorruption);
  }
  // Trailing whitespace is not garbage.
  EXPECT_TRUE(ParseAdsSet(text + "\n \n").ok());
  EXPECT_TRUE(ParseFlatAdsSet(text + "\n \n").ok());
}

TEST(SerializeTest, ParsersAgreeOnAcceptance) {
  // The two v1 parsers must accept/reject the same inputs.
  Graph g = ErdosRenyi(25, 75, true, 53);
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(2));
  std::string valid = SerializeAdsSet(set);
  for (size_t len : {valid.size(), valid.size() / 2, valid.size() - 1}) {
    std::string text = valid.substr(0, len);
    EXPECT_EQ(ParseAdsSet(text).ok(), ParseFlatAdsSet(text).ok())
        << "prefix length " << len;
  }
}

TEST(SerializeTest, ReadMissingFileFails) {
  auto result = ReadAdsSetFile("/nonexistent/sketches.ads");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace hipads
