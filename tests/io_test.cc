#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/generators.h"

namespace hipads {
namespace {

TEST(IoTest, ParseSimpleEdgeList) {
  auto result = ParseEdgeList("0 1\n1 2\n", /*undirected=*/false);
  ASSERT_TRUE(result.ok());
  const Graph& g = result.value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(IoTest, ParseSkipsComments) {
  auto result = ParseEdgeList("# SNAP header\n% other comment\n0 1\n", false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_arcs(), 1u);
}

TEST(IoTest, ParseWeights) {
  auto result = ParseEdgeList("0 1 2.5\n1 2\n", false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().OutArcs(0)[0].weight, 2.5);
  EXPECT_EQ(result.value().OutArcs(1)[0].weight, 1.0);
}

TEST(IoTest, ParseRemapsSparseIds) {
  auto result = ParseEdgeList("1000000 42\n42 7\n", false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_nodes(), 3u);
}

TEST(IoTest, ParseRejectsMalformed) {
  auto result = ParseEdgeList("0 x\n", false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

TEST(IoTest, ParseRejectsNegativeWeight) {
  auto result = ParseEdgeList("0 1 -2\n", false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(IoTest, ParseRejectsEmpty) {
  auto result = ParseEdgeList("# only comments\n", false);
  EXPECT_FALSE(result.ok());
}

TEST(IoTest, ReadMissingFileFails) {
  auto result = ReadEdgeListFile("/nonexistent/path/graph.txt", false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

TEST(IoTest, WriteReadRoundTrip) {
  Graph g = ErdosRenyi(50, 120, /*undirected=*/true, 9);
  std::string path =
      (std::filesystem::temp_directory_path() / "hipads_io_test.txt")
          .string();
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  auto back = ReadEdgeListFile(path, /*undirected=*/true);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(back.value().num_arcs(), g.num_arcs());
  std::remove(path.c_str());
}

TEST(IoTest, WriteReadWeightedRoundTrip) {
  Graph g = RandomizeWeights(Grid2D(4, 4), 0.5, 2.0, 3);
  std::string path =
      (std::filesystem::temp_directory_path() / "hipads_io_wtest.txt")
          .string();
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  auto back = ReadEdgeListFile(path, true);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_arcs(), g.num_arcs());
  EXPECT_FALSE(back.value().IsUnitWeight());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hipads
