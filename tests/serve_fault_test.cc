// The fault-injection acceptance (serve/fault.h): every degradation the
// harness can script against the serving stack — dropped connections,
// stalls under a deadline, responses truncated / corrupted / shed, a
// killed TCP server — must end in a clean error or a correct
// retried/hedged result, never a hang and never silent corruption; and
// whenever a faulted request does succeed, its result is bitwise
// identical to the healthy path. The suite also pins the lock-free
// concurrency contract: an immutable backend serves interleaved sweeps
// and point lookups from many threads with results bitwise equal to the
// serial ones (run under -DHIPADS_SANITIZE=thread via the `tsan` label).

#include "serve/fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ads/backend.h"
#include "ads/builders.h"
#include "graph/generators.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"

namespace hipads {
namespace {

FlatAdsSet BuildFlat(uint32_t n, uint64_t graph_seed, uint32_t k) {
  Graph g = ErdosRenyi(n, 3ULL * n, true, graph_seed);
  return FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, k, SketchFlavor::kBottomK, RankAssignment::Uniform(graph_seed + 1)));
}

// The sketches of global nodes [begin, end) as a standalone set.
FlatAdsSet SliceSet(const FlatAdsSet& set, NodeId begin, NodeId end) {
  FlatAdsSet slice;
  slice.flavor = set.flavor;
  slice.k = set.k;
  slice.ranks = set.ranks;
  for (NodeId v = begin; v < end; ++v) {
    auto entries = set.of(v).entries();
    slice.AppendNode(std::vector<AdsEntry>(entries.begin(), entries.end()));
  }
  return slice;
}

std::vector<CollectorSpec> SmallSpec() {
  return {
      {CollectorKind::kDistanceHistogram, 0, 0, 0.0},
      {CollectorKind::kHarmonic, 0, 0, 0.0},
      {CollectorKind::kTopK, static_cast<uint32_t>(ScoreKind::kHarmonic), 3,
       0.0},
  };
}

// A Channel view over a shared channel, so a ChannelFactory can hand the
// router "fresh" connections that share one fault script and call
// counter across reconnects — the shape retry tests need.
class BorrowedChannel : public Channel {
 public:
  explicit BorrowedChannel(Channel* inner) : inner_(inner) {}
  using Channel::Call;
  Status Call(std::string_view request_frame, Frame* response,
              const Deadline& deadline) override {
    return inner_->Call(request_frame, response, deadline);
  }

 private:
  Channel* inner_;
};

// A two-range-server loopback fleet whose second server's transport is
// fault-scripted (one shared script across reconnects).
struct FaultyFleet {
  FlatAdsSet full;
  std::vector<FlatAdsSet> slices;
  std::vector<std::unique_ptr<FlatAdsBackend>> backends;
  std::vector<std::unique_ptr<AdsServerCore>> cores;
  std::vector<std::unique_ptr<LoopbackChannel>> loops;
  std::unique_ptr<FaultInjectionChannel> faulty;
  FleetManifest manifest;

  explicit FaultyFleet(std::vector<FaultRule> rules)
      : full(BuildFlat(120, 29, 4)) {
    const NodeId mid = 60;
    slices.push_back(SliceSet(full, 0, mid));
    slices.push_back(SliceSet(full, mid, 120));
    for (size_t i = 0; i < 2; ++i) {
      backends.push_back(std::make_unique<FlatAdsBackend>(&slices[i]));
      ServerOptions options;
      options.node_begin = i == 0 ? 0 : mid;
      cores.push_back(
          std::make_unique<AdsServerCore>(backends[i].get(), options));
      loops.push_back(std::make_unique<LoopbackChannel>(cores[i].get()));
    }
    faulty = std::make_unique<FaultInjectionChannel>(loops[1].get(),
                                                    std::move(rules));
    manifest.num_nodes = 120;
    manifest.servers = {{"loop:0", 0, mid}, {"loop:1", mid, 120}};
  }

  ChannelFactory Factory() {
    return [this](const std::string& address)
               -> StatusOr<std::unique_ptr<Channel>> {
      Channel* target =
          address == "loop:1" ? static_cast<Channel*>(faulty.get())
                              : static_cast<Channel*>(loops[0].get());
      return std::unique_ptr<Channel>(
          std::make_unique<BorrowedChannel>(target));
    };
  }
};

// The healthy-path sweep response payloads of a fleet, used as the
// bitwise reference for faulted-but-successful runs.
std::vector<std::string> SweepPartialPayloads(
    FleetRouter& router, const std::vector<CollectorSpec>& spec) {
  SweepPlan plan;
  auto built = BuildPlanFromSpec(spec, &plan);
  EXPECT_TRUE(built.ok());
  SweepRequestMsg request;
  request.collectors = spec;
  Status swept = router.ExecuteSweep(request, built.value());
  EXPECT_TRUE(swept.ok()) << swept.ToString();
  std::vector<std::string> out;
  for (SweepCollector* c : built.value()) {
    std::string partial;
    EXPECT_TRUE(
        c->EncodePartial(0, router.num_nodes(), &partial).ok());
    out.push_back(std::move(partial));
  }
  return out;
}

TEST(ServeFaultTest, MatchFaultSelectsRulesByCallIndex) {
  std::vector<FaultRule> rules = {
      {FaultKind::kDrop, 2, 2, 0},
      {FaultKind::kShed, 3, UINT64_MAX, 0},
  };
  EXPECT_EQ(MatchFault(rules, 0), nullptr);
  EXPECT_EQ(MatchFault(rules, 1), nullptr);
  ASSERT_NE(MatchFault(rules, 2), nullptr);
  EXPECT_EQ(MatchFault(rules, 2)->kind, FaultKind::kDrop);
  // First matching rule wins where ranges overlap.
  EXPECT_EQ(MatchFault(rules, 3)->kind, FaultKind::kDrop);
  // The forever rule catches everything past the drop window.
  EXPECT_EQ(MatchFault(rules, 4)->kind, FaultKind::kShed);
  EXPECT_EQ(MatchFault(rules, 1 << 20)->kind, FaultKind::kShed);
}

// Transient faults inside the retry budget: the sweep succeeds anyway and
// its result is bitwise identical to the healthy run. Call 0 on the
// faulty channel is the connect handshake; calls 1 and 2 are the first
// two sweep attempts.
TEST(ServeFaultTest, TransientDropsAndShedsAreRetriedToIdenticalResults) {
  std::vector<CollectorSpec> spec = SmallSpec();
  FaultyFleet healthy({});
  auto healthy_router =
      FleetRouter::Connect(healthy.manifest, healthy.Factory());
  ASSERT_TRUE(healthy_router.ok());
  std::vector<std::string> reference =
      SweepPartialPayloads(healthy_router.value(), spec);

  for (FaultKind kind : {FaultKind::kDrop, FaultKind::kShed}) {
    FaultyFleet fleet({{kind, 1, 2, 0}});
    RouterOptions options;
    options.retries = 2;
    options.backoff_base_ms = 1;
    options.backoff_max_ms = 2;
    auto router =
        FleetRouter::Connect(fleet.manifest, fleet.Factory(), options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    std::vector<std::string> faulted =
        SweepPartialPayloads(router.value(), spec);
    EXPECT_EQ(faulted, reference)
        << "fault kind " << static_cast<int>(kind);
    // Both scripted faults actually fired before the retry succeeded.
    EXPECT_GE(fleet.faulty->calls(), 4u);
  }
}

// A fault outlasting the retry budget fails closed, with an error that
// names the failing server and preserves the transport error code.
TEST(ServeFaultTest, ExhaustedRetryBudgetFailsClosedNamingTheServer) {
  FaultyFleet fleet({{FaultKind::kDrop, 1, UINT64_MAX, 0}});
  RouterOptions options;
  options.retries = 2;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 2;
  auto router =
      FleetRouter::Connect(fleet.manifest, fleet.Factory(), options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  SweepPlan plan;
  std::vector<CollectorSpec> spec = SmallSpec();
  auto built = BuildPlanFromSpec(spec, &plan);
  ASSERT_TRUE(built.ok());
  SweepRequestMsg request;
  request.collectors = spec;
  Status swept = router.value().ExecuteSweep(request, built.value());
  ASSERT_FALSE(swept.ok());
  EXPECT_EQ(swept.code(), Status::Code::kIOError);
  EXPECT_NE(swept.message().find("loop:1"), std::string::npos)
      << swept.ToString();

  // Point lookups owned by the dead server fail the same way; the healthy
  // server keeps answering.
  PointRequestMsg dead_side;
  dead_side.kind = PointKind::kNodeStats;
  dead_side.node = 90;
  auto dead = router.value().Point(dead_side);
  ASSERT_FALSE(dead.ok());
  EXPECT_NE(dead.status().message().find("loop:1"), std::string::npos);
  PointRequestMsg live_side;
  live_side.kind = PointKind::kNodeStats;
  live_side.node = 10;
  EXPECT_TRUE(router.value().Point(live_side).ok());
}

// A peer that stalls under a working connection: the request fails with
// DeadlineExceeded when its deadline expires — bounded by the deadline,
// not by the stall.
TEST(ServeFaultTest, StalledFrameUnderDeadlineFailsWithDeadlineExceeded) {
  // Client-side stall (wedged connection).
  {
    FaultyFleet fleet({{FaultKind::kStall, 1, UINT64_MAX, 0}});
    auto router =
        FleetRouter::Connect(fleet.manifest, fleet.Factory());
    ASSERT_TRUE(router.ok());
    PointRequestMsg request;
    request.kind = PointKind::kNodeStats;
    request.node = 90;
    auto start = std::chrono::steady_clock::now();
    auto response =
        router.value().Point(request, Deadline::AfterMs(150));
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), Status::Code::kDeadlineExceeded);
    EXPECT_LT(elapsed, 5000) << "stall was not bounded by the deadline";
  }
  // Server-side stall (handler wedged): the flaky handler honors the
  // frame's wire deadline, then drops the connection — the client sees a
  // clean error within the budget, never a hang.
  {
    FlatAdsSet set = BuildFlat(40, 31, 4);
    FlatAdsBackend backend(&set);
    AdsServerCore core(&backend, ServerOptions{});
    FlakyFrameHandler flaky(&core, {{FaultKind::kStall, 0, UINT64_MAX, 200}});
    LoopbackChannel channel(&flaky);
    AdsClient client(&channel, Deadline::AfterMs(100));
    auto start = std::chrono::steady_clock::now();
    auto info = client.Info();
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    EXPECT_FALSE(info.ok());
    EXPECT_LT(elapsed, 5000);
  }
}

// Responses corrupted in flight — by the channel or by the server — must
// surface as clean decode errors (the frame checksum's job), never as
// silently wrong values.
TEST(ServeFaultTest, CorruptedResponsesAreCaughtByTheChecksum) {
  FlatAdsSet set = BuildFlat(40, 37, 4);
  FlatAdsBackend backend(&set);
  AdsServerCore core(&backend, ServerOptions{});

  // Client-side corruption.
  {
    LoopbackChannel inner(&core);
    FaultInjectionChannel channel(&inner,
                                  {{FaultKind::kCorrupt, 0, UINT64_MAX, 0}});
    AdsClient client(&channel);
    auto info = client.Info();
    EXPECT_FALSE(info.ok());
  }
  // Server-side corruption and truncation.
  for (FaultKind kind : {FaultKind::kCorrupt, FaultKind::kCloseMidResponse}) {
    FlakyFrameHandler flaky(&core, {{kind, 0, UINT64_MAX, 0}});
    LoopbackChannel channel(&flaky);
    AdsClient client(&channel);
    auto info = client.Info();
    EXPECT_FALSE(info.ok()) << "fault kind " << static_cast<int>(kind);
  }
}

// Every client-side fault kind, scripted for exactly one call against a
// healthy core: the wrapped client either fails cleanly or returns bytes
// identical to the healthy response. No third outcome.
TEST(ServeFaultTest, EveryDegradationYieldsCleanErrorOrIdenticalResult) {
  FlatAdsSet set = BuildFlat(40, 41, 4);
  FlatAdsBackend backend(&set);
  AdsServerCore core(&backend, ServerOptions{});
  LoopbackChannel healthy(&core);
  Frame reference;
  std::string request =
      EncodeFrame(MessageType::kPointRequest,
                  EncodePointRequest(PointRequestMsg{}));
  ASSERT_TRUE(healthy.Call(request, &reference).ok());

  for (FaultKind kind :
       {FaultKind::kDrop, FaultKind::kDelay, FaultKind::kStall,
        FaultKind::kCloseMidResponse, FaultKind::kCorrupt, FaultKind::kShed}) {
    LoopbackChannel inner(&core);
    FaultInjectionChannel channel(&inner, {{kind, 0, 1, 20}});
    Frame response;
    Status s = channel.Call(request, &response, Deadline::AfterMs(100));
    if (s.ok()) {
      EXPECT_EQ(response.payload, reference.payload)
          << "fault kind " << static_cast<int>(kind)
          << ": success with different bytes";
    }
    // And the call after the scripted window is healthy and identical.
    Frame after;
    ASSERT_TRUE(channel.Call(request, &after, Deadline::AfterMs(5000)).ok())
        << "fault kind " << static_cast<int>(kind);
    EXPECT_EQ(after.payload, reference.payload);
  }
}

// Batch frames under every scripted degradation: the faulted call either
// fails cleanly or returns bytes identical to the healthy batch response
// — one entry is deliberately out of range, so a per-entry error rides
// through every fault too — and the call after the window is healthy.
TEST(ServeFaultTest, PointBatchDegradationsYieldCleanErrorOrIdenticalResult) {
  FlatAdsSet set = BuildFlat(40, 59, 4);
  FlatAdsBackend backend(&set);
  AdsServerCore core(&backend, ServerOptions{});
  LoopbackChannel healthy(&core);

  PointBatchRequestMsg batch;
  for (uint64_t node : {1ull, 17ull, 39ull, 1000ull}) {  // 1000: entry error
    PointRequestMsg r;
    r.kind = PointKind::kNodeStats;
    r.node = node;
    batch.entries.push_back(r);
  }
  const std::string request = EncodeFrame(MessageType::kPointBatchRequest,
                                          EncodePointBatchRequest(batch));
  Frame reference;
  ASSERT_TRUE(healthy.Call(request, &reference).ok());
  ASSERT_EQ(reference.type, MessageType::kPointBatchResponse);

  for (FaultKind kind :
       {FaultKind::kDrop, FaultKind::kDelay, FaultKind::kStall,
        FaultKind::kCloseMidResponse, FaultKind::kCorrupt, FaultKind::kShed}) {
    LoopbackChannel inner(&core);
    FaultInjectionChannel channel(&inner, {{kind, 0, 1, 20}});
    Frame response;
    Status s = channel.Call(request, &response, Deadline::AfterMs(100));
    if (s.ok()) {
      EXPECT_EQ(response.payload, reference.payload)
          << "fault kind " << static_cast<int>(kind)
          << ": success with different bytes";
    }
    Frame after;
    ASSERT_TRUE(channel.Call(request, &after, Deadline::AfterMs(5000)).ok())
        << "fault kind " << static_cast<int>(kind);
    EXPECT_EQ(after.payload, reference.payload);
  }
}

// Whole-batch transport faults inside the retry budget: the router
// retries the batch frame itself and every entry comes back identical to
// the healthy run.
TEST(ServeFaultTest, DroppedBatchFramesAreRetriedToIdenticalEntries) {
  FaultyFleet fleet({{FaultKind::kDrop, 1, 2, 0}});
  RouterOptions options;
  options.retries = 2;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 2;
  auto router =
      FleetRouter::Connect(fleet.manifest, fleet.Factory(), options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  FaultyFleet healthy({});
  auto healthy_router =
      FleetRouter::Connect(healthy.manifest, healthy.Factory());
  ASSERT_TRUE(healthy_router.ok());

  std::vector<PointRequestMsg> requests(6);
  for (int i = 0; i < 6; ++i) {
    requests[i].kind = PointKind::kNodeStats;
    requests[i].node = static_cast<NodeId>(60 + i * 9);  // the faulty range
  }
  std::vector<PointBatchResponseEntry> faulted =
      router.value().PointBatch(requests);
  std::vector<PointBatchResponseEntry> reference =
      healthy_router.value().PointBatch(requests);
  ASSERT_EQ(faulted.size(), reference.size());
  for (size_t i = 0; i < faulted.size(); ++i) {
    ASSERT_TRUE(faulted[i].status.ok()) << faulted[i].status.ToString();
    EXPECT_EQ(faulted[i].payload, reference[i].payload) << "entry " << i;
  }
  EXPECT_GE(fleet.faulty->calls(), 3u);  // the drops actually fired
}

// A handler shedding every entry of the first batch frames — the
// serialized-backend-busy answer, mid-batch.
class BatchSheddingHandler : public FrameHandler {
 public:
  BatchSheddingHandler(FrameHandler* inner, int shed_batches)
      : inner_(inner), remaining_(shed_batches) {}

  std::string HandleFrame(std::string_view request,
                          bool* close_connection) override {
    auto frame = DecodeFrame(request);
    if (frame.ok() &&
        frame.value().type == MessageType::kPointBatchRequest &&
        remaining_.fetch_sub(1) > 0) {
      auto msg = DecodePointBatchRequest(frame.value().payload);
      PointBatchResponseMsg response;
      response.entries.resize(msg.value().entries.size());
      for (PointBatchResponseEntry& entry : response.entries) {
        entry.status = Status::Unavailable(
            "backend busy with a sweep; point lookup shed, retry");
      }
      sheds_.fetch_add(1);
      *close_connection = false;
      return EncodeFrame(MessageType::kPointBatchResponse,
                         EncodePointBatchResponse(response),
                         /*deadline_ms=*/0, frame.value().version);
    }
    return inner_->HandleFrame(request, close_connection);
  }

  int sheds() const { return sheds_.load(); }

 private:
  FrameHandler* inner_;
  std::atomic<int> remaining_;
  std::atomic<int> sheds_{0};
};

// Per-entry sheds inside an otherwise successful batch response: every
// affected caller falls back to its own single-request call — through
// the PointBatch API and through the coalescing path — and ends with
// bytes identical to the healthy answer.
TEST(ServeFaultTest, ShedBatchEntriesFallBackToIdenticalSingleCalls) {
  FlatAdsSet set = BuildFlat(80, 61, 4);
  FlatAdsBackend backend(&set);
  AdsServerCore core(&backend, ServerOptions{});
  BatchSheddingHandler shedding(&core, 2);

  FleetManifest manifest;
  manifest.num_nodes = 80;
  manifest.servers = {{"loop:0", 0, 80}};
  auto factory = [&shedding](const std::string&)
      -> StatusOr<std::unique_ptr<Channel>> {
    return std::unique_ptr<Channel>(
        std::make_unique<LoopbackChannel>(&shedding));
  };
  LoopbackChannel direct(&core);
  AdsClient reference(&direct);

  std::vector<PointRequestMsg> requests(4);
  for (int i = 0; i < 4; ++i) {
    requests[i].kind = PointKind::kNodeStats;
    requests[i].node = static_cast<NodeId>((i * 19) % 80);
  }

  // PointBatch: its first batch frame is shed per entry.
  {
    RouterOptions options;
    options.backoff_base_ms = 1;
    options.backoff_max_ms = 2;
    auto router = FleetRouter::Connect(manifest, factory, options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    std::vector<PointBatchResponseEntry> entries =
        router.value().PointBatch(requests);
    ASSERT_EQ(entries.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(entries[i].status.ok()) << entries[i].status.ToString();
      auto expected = reference.Point(requests[i]);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(entries[i].payload, EncodePointResponse(expected.value()))
          << "entry " << i;
    }
    EXPECT_GE(shedding.sheds(), 1);
  }

  // Coalesced concurrent callers: their shared batch is shed per entry;
  // each caller retries alone and still gets the healthy bytes.
  {
    RouterOptions options;
    options.coalesce_window_us = 200000;
    options.backoff_base_ms = 1;
    options.backoff_max_ms = 2;
    auto router = FleetRouter::Connect(manifest, factory, options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    std::vector<StatusOr<PointResponseMsg>> got(
        requests.size(),
        StatusOr<PointResponseMsg>(Status::Unavailable("pending")));
    std::vector<std::thread> threads;
    threads.reserve(requests.size());
    for (size_t t = 0; t < requests.size(); ++t) {
      threads.emplace_back(
          [&, t] { got[t] = router.value().Point(requests[t]); });
    }
    for (std::thread& th : threads) th.join();
    for (size_t t = 0; t < requests.size(); ++t) {
      ASSERT_TRUE(got[t].ok()) << got[t].status().ToString();
      auto expected = reference.Point(requests[t]);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(EncodePointResponse(got[t].value()),
                EncodePointResponse(expected.value()))
          << "caller " << t;
    }
  }
}

// Hedging defeats a stalled primary connection: the delayed second
// attempt runs over a fresh channel and its answer — identical bytes by
// construction — is returned well before the primary's deadline stall
// resolves into an error.
TEST(ServeFaultTest, HedgingPicksTheSurvivorOfAStalledConnection) {
  FlatAdsSet set = BuildFlat(80, 43, 4);
  FlatAdsBackend backend(&set);
  AdsServerCore core(&backend, ServerOptions{});
  LoopbackChannel loop(&core);
  // Connection 0 (handshake + primary) stalls from its second call on;
  // every later connection is healthy.
  std::atomic<int> connections{0};
  auto stalling = std::make_unique<FaultInjectionChannel>(
      &loop, std::vector<FaultRule>{{FaultKind::kStall, 1, UINT64_MAX, 0}});
  FaultInjectionChannel* stalling_raw = stalling.get();
  auto factory = [&](const std::string&)
      -> StatusOr<std::unique_ptr<Channel>> {
    int id = connections.fetch_add(1);
    if (id == 0) {
      return std::unique_ptr<Channel>(
          std::make_unique<BorrowedChannel>(stalling_raw));
    }
    return std::unique_ptr<Channel>(std::make_unique<BorrowedChannel>(&loop));
  };

  FleetManifest manifest;
  manifest.num_nodes = 80;
  manifest.servers = {{"loop:0", 0, 80}};
  RouterOptions options;
  options.hedge = true;
  options.hedge_delay_ms = 10;
  options.retries = 0;
  auto router = FleetRouter::Connect(manifest, factory, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // The healthy answer, for comparison.
  AdsClient direct(&loop);
  PointRequestMsg request;
  request.kind = PointKind::kNodeStats;
  request.node = 7;
  auto expected = direct.Point(request);
  ASSERT_TRUE(expected.ok());

  auto hedged = router.value().Point(request, Deadline::AfterMs(1500));
  ASSERT_TRUE(hedged.ok()) << hedged.status().ToString();
  EXPECT_EQ(hedged.value().values, expected.value().values);
  EXPECT_GE(connections.load(), 2) << "hedge never opened its connection";
}

// A killed TCP server: the router's sweep fails closed within its
// deadline, with an error naming the dead server's address; after the
// server returns, the same router recovers by reconnecting.
TEST(ServeFaultTest, KilledTcpServerFailsClosedThenRecovers) {
  FlatAdsSet full = BuildFlat(120, 47, 4);
  FlatAdsSet lo = SliceSet(full, 0, 60);
  FlatAdsSet hi = SliceSet(full, 60, 120);
  FlatAdsBackend backend_lo(&lo);
  FlatAdsBackend backend_hi(&hi);
  ServerOptions hi_options;
  hi_options.node_begin = 60;
  AdsServerCore core_lo(&backend_lo, ServerOptions{});
  AdsServerCore core_hi(&backend_hi, hi_options);

  TcpServer server_lo(&core_lo, {0, 2});
  auto server_hi = std::make_unique<TcpServer>(&core_hi, TcpServerOptions{0, 2});
  ASSERT_TRUE(server_lo.Start().ok());
  ASSERT_TRUE(server_hi->Start().ok());
  uint16_t hi_port = server_hi->port();

  FleetManifest manifest;
  manifest.num_nodes = 120;
  manifest.servers = {
      {"127.0.0.1:" + std::to_string(server_lo.port()), 0, 60},
      {"127.0.0.1:" + std::to_string(hi_port), 60, 120}};
  RouterOptions options;
  options.timeout_ms = 5000;
  options.retries = 1;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 5;
  auto router =
      FleetRouter::Connect(manifest, TcpChannelFactory(), options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Kill the upper range server, then sweep: fail closed, name the server.
  server_hi->Stop();
  server_hi.reset();
  std::vector<CollectorSpec> spec = SmallSpec();
  {
    SweepPlan plan;
    auto built = BuildPlanFromSpec(spec, &plan);
    ASSERT_TRUE(built.ok());
    SweepRequestMsg request;
    request.collectors = spec;
    auto start = std::chrono::steady_clock::now();
    Status swept = router.value().ExecuteSweep(request, built.value());
    auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    ASSERT_FALSE(swept.ok());
    EXPECT_NE(swept.message().find(std::to_string(hi_port)),
              std::string::npos)
        << swept.ToString();
    EXPECT_LT(elapsed, 30) << "dead-server failure was not prompt";
  }

  // Restart on the same port: the next request reconnects and succeeds.
  TcpServerOptions revive;
  revive.port = hi_port;
  revive.num_workers = 2;
  TcpServer server_hi2(&core_hi, revive);
  ASSERT_TRUE(server_hi2.Start().ok());
  {
    SweepPlan plan;
    auto built = BuildPlanFromSpec(spec, &plan);
    ASSERT_TRUE(built.ok());
    SweepRequestMsg request;
    request.collectors = spec;
    Status swept = router.value().ExecuteSweep(request, built.value());
    EXPECT_TRUE(swept.ok()) << swept.ToString();
  }
  server_hi2.Stop();
  server_lo.Stop();
}

// The lock-free serving contract (tsan): an immutable backend serves
// sweeps and point lookups from many threads concurrently — no mutex, no
// cache (disabled here so every request computes) — and every response is
// bitwise identical to its serial counterpart.
TEST(ServeFaultTest, ConcurrentSweepsAndPointsAreBitwiseDeterministic) {
  FlatAdsSet set = BuildFlat(150, 53, 8);
  FlatAdsBackend backend(&set);
  ASSERT_TRUE(backend.ImmutableReads());
  ServerOptions options;
  options.point_cache_entries = 0;
  options.sweep_cache_entries = 0;
  options.num_threads = 2;
  AdsServerCore core(&backend, options);

  // Serial references: one sweep frame, a few point frames.
  SweepRequestMsg sweep;
  sweep.collectors = SmallSpec();
  sweep.num_threads = 2;
  std::string sweep_frame =
      EncodeFrame(MessageType::kSweepRequest, EncodeSweepRequest(sweep));
  std::vector<std::string> point_frames;
  for (uint64_t node : {3ull, 77ull, 149ull}) {
    PointRequestMsg p;
    p.kind = PointKind::kNodeStats;
    p.node = node;
    point_frames.push_back(
        EncodeFrame(MessageType::kPointRequest, EncodePointRequest(p)));
  }
  bool close_connection = false;
  const std::string sweep_ref =
      core.HandleFrame(sweep_frame, &close_connection);
  std::vector<std::string> point_refs;
  for (const std::string& f : point_frames) {
    point_refs.push_back(core.HandleFrame(f, &close_connection));
  }

  // Concurrent mixed load: sweeps and points overlap freely.
  constexpr int kSweepThreads = 3;
  constexpr int kPointThreads = 4;
  constexpr int kIters = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kSweepThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        bool close = false;
        if (core.HandleFrame(sweep_frame, &close) != sweep_ref) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kPointThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters * 4; ++i) {
        size_t which = (t + i) % point_frames.size();
        bool close = false;
        if (core.HandleFrame(point_frames[which], &close) !=
            point_refs[which]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace hipads
