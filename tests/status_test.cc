#include "util/status.h"

#include <gtest/gtest.h>

namespace hipads {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllConstructors) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace hipads
