#include "ads/similarity.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ads/builders.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/stats.h"

namespace hipads {
namespace {

double ExactJaccard(const Graph& g, NodeId u, NodeId v, double d) {
  auto nu = NeighborhoodAtDistance(g, u, d);
  auto nv = NeighborhoodAtDistance(g, v, d);
  std::vector<NodeId> inter, uni;
  std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                        std::back_inserter(inter));
  std::set_union(nu.begin(), nu.end(), nv.begin(), nv.end(),
                 std::back_inserter(uni));
  return uni.empty() ? 0.0
                     : static_cast<double>(inter.size()) / uni.size();
}

TEST(SimilarityTest, IdenticalNodesHaveJaccardOne) {
  Graph g = ErdosRenyi(60, 180, true, 3);
  AdsSet set = BuildAdsPrunedDijkstra(g, 8, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(1));
  EXPECT_DOUBLE_EQ(JaccardSimilarity(set.of(5), set.of(5), 2.0, 8), 1.0);
}

TEST(SimilarityTest, DisjointComponentsHaveJaccardZero) {
  // Two disjoint triangles.
  Graph g(6,
          {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0},
           {3, 4, 1.0}, {4, 5, 1.0}, {5, 3, 1.0}},
          true);
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(2));
  EXPECT_EQ(ReachabilityJaccard(set.of(0), set.of(3), 4), 0.0);
}

TEST(SimilarityTest, ExactWhenNeighborhoodsFitInK) {
  Graph g = Path(12);
  const uint32_t k = 32;  // everything fits
  AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(5));
  for (double d : {1.0, 2.0, 3.0}) {
    for (NodeId u : {2u, 5u}) {
      for (NodeId v : {5u, 7u}) {
        EXPECT_NEAR(JaccardSimilarity(set.of(u), set.of(v), d, k),
                    ExactJaccard(g, u, v, d), 1e-12)
            << "u=" << u << " v=" << v << " d=" << d;
      }
    }
  }
}

TEST(SimilarityTest, EstimateTracksExactOnRandomGraph) {
  Graph g = ErdosRenyi(300, 900, true, 7);
  const uint32_t k = 16;
  const NodeId u = 10, v = 20;
  const double d = 2.0;
  double exact = ExactJaccard(g, u, v, d);
  RunningStat est;
  for (uint64_t seed = 0; seed < 80; ++seed) {
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK,
                                        RankAssignment::Uniform(seed));
    est.Add(JaccardSimilarity(set.of(u), set.of(v), d, k));
  }
  EXPECT_NEAR(est.mean(), exact, 0.12);
}

TEST(SimilarityTest, UnionCardinalityTracksExact) {
  Graph g = ErdosRenyi(300, 900, true, 9);
  const uint32_t k = 16;
  const NodeId u = 1, v = 2;
  const double d = 2.0;
  auto nu = NeighborhoodAtDistance(g, u, d);
  auto nv = NeighborhoodAtDistance(g, v, d);
  std::vector<NodeId> uni;
  std::set_union(nu.begin(), nu.end(), nv.begin(), nv.end(),
                 std::back_inserter(uni));
  RunningStat est;
  for (uint64_t seed = 0; seed < 80; ++seed) {
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK,
                                        RankAssignment::Uniform(seed));
    est.Add(UnionCardinality(set.of(u), set.of(v), d, k));
  }
  EXPECT_NEAR(est.mean() / static_cast<double>(uni.size()), 1.0, 0.1);
}

TEST(SimilarityTest, IntersectionIsJaccardTimesUnion) {
  Graph g = ErdosRenyi(100, 300, true, 11);
  AdsSet set = BuildAdsPrunedDijkstra(g, 8, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(3));
  double j = JaccardSimilarity(set.of(4), set.of(5), 2.0, 8);
  double un = UnionCardinality(set.of(4), set.of(5), 2.0, 8);
  EXPECT_DOUBLE_EQ(IntersectionCardinality(set.of(4), set.of(5), 2.0, 8),
                   j * un);
}

TEST(SimilarityTest, RankCollisionsAcrossNodesAreDistinctElements) {
  // Regression: two sketches whose entries collide on rank *values* while
  // naming different nodes. The merge must key on (rank, node), not rank:
  // rank-only matching counted A/C as shared and collapsed the union.
  Ads u(std::vector<AdsEntry>{{/*A=*/0, 0, 0.25, 0.0},
                              {/*B=*/1, 0, 0.25, 1.0}});
  Ads v(std::vector<AdsEntry>{{/*C=*/2, 0, 0.25, 0.0},
                              {/*D=*/3, 0, 0.5, 1.0}});
  const uint32_t k = 8;
  EXPECT_EQ(JaccardSimilarity(u, v, 2.0, k), 0.0);
  EXPECT_DOUBLE_EQ(UnionCardinality(u, v, 2.0, k), 4.0);
  EXPECT_EQ(IntersectionCardinality(u, v, 2.0, k), 0.0);
  // Sanity: a genuinely shared node (same id, same rank) still counts.
  Ads w(std::vector<AdsEntry>{{/*A=*/0, 0, 0.25, 0.0},
                              {/*D=*/3, 0, 0.5, 1.0}});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(u, w, 2.0, k), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(UnionCardinality(u, w, 2.0, k), 3.0);
}

TEST(SimilarityTest, BaseBRanksExactWhenNeighborhoodsFitInK) {
  // Base-b discretization makes rank collisions across distinct nodes
  // routine; with node-id dedup the estimators stay exact whenever both
  // neighborhoods fit in k. (Rank-value dedup failed this on most seeds.)
  Graph g = Path(12);
  const uint32_t k = 32;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK,
                                        RankAssignment::BaseB(seed, 2.0));
    for (double d : {1.0, 2.0, 3.0}) {
      for (NodeId u : {2u, 5u}) {
        for (NodeId v : {5u, 7u}) {
          EXPECT_NEAR(JaccardSimilarity(set.of(u), set.of(v), d, k),
                      ExactJaccard(g, u, v, d), 1e-12)
              << "seed=" << seed << " u=" << u << " v=" << v << " d=" << d;
        }
      }
    }
    // Union of the 2-neighborhoods of 2 and 7 is all nodes within
    // distance 2 of either: exact because everything fits in k.
    auto n2 = NeighborhoodAtDistance(g, 2, 2.0);
    auto n7 = NeighborhoodAtDistance(g, 7, 2.0);
    std::vector<NodeId> uni;
    std::set_union(n2.begin(), n2.end(), n7.begin(), n7.end(),
                   std::back_inserter(uni));
    EXPECT_DOUBLE_EQ(UnionCardinality(set.of(2), set.of(7), 2.0, k),
                     static_cast<double>(uni.size()))
        << "seed=" << seed;
  }
}

TEST(SimilarityTest, CloseNodesMoreSimilarThanFarNodes) {
  Graph g = Grid2D(15, 15);
  AdsSet set = BuildAdsPrunedDijkstra(g, 16, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(13));
  // Adjacent grid nodes share most of their 3-neighborhood; opposite
  // corners share none of it.
  double near = JaccardSimilarity(set.of(0), set.of(1), 3.0, 16);
  double far = JaccardSimilarity(set.of(0), set.of(224), 3.0, 16);
  EXPECT_GT(near, 0.3);
  EXPECT_EQ(far, 0.0);
}

}  // namespace
}  // namespace hipads
