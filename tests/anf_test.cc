#include "ads/anf.h"

#include <gtest/gtest.h>

#include "graph/exact.h"
#include "graph/generators.h"
#include "util/stats.h"

namespace hipads {
namespace {

// Exact neighbourhood function: sum over v of |N_d(v)| for d = 0..D.
std::vector<double> ExactNf(const Graph& g) {
  std::vector<double> nf;
  auto hist = ExactDistanceDistribution(g);
  nf.push_back(static_cast<double>(g.num_nodes()));
  double running = static_cast<double>(g.num_nodes());
  double expect_d = 1.0;
  for (const auto& [d, count] : hist) {
    while (expect_d < d) {  // distances with no pairs
      nf.push_back(running);
      expect_d += 1.0;
    }
    running += static_cast<double>(count);
    nf.push_back(running);
    expect_d = d + 1.0;
  }
  return nf;
}

TEST(AnfTest, RoundsBoundedByDiameter) {
  Graph g = Path(20);
  AnfResult r = HyperAnf(g, 16, 1, AnfEstimator::kHip);
  // Propagation can stop a little early when the farthest nodes' hashes
  // collide with already-set registers, but never exceeds the diameter.
  EXPECT_LE(r.rounds, 19u);
  EXPECT_GE(r.rounds, 15u);
  EXPECT_EQ(r.neighbourhood_function.size(), r.rounds + 1u);
}

TEST(AnfTest, NeighbourhoodFunctionMonotone) {
  Graph g = BarabasiAlbert(400, 3, 5);
  for (AnfEstimator est : {AnfEstimator::kBasic, AnfEstimator::kHip}) {
    AnfResult r = HyperAnf(g, 32, 7, est);
    for (size_t d = 1; d < r.neighbourhood_function.size(); ++d) {
      EXPECT_GE(r.neighbourhood_function[d],
                r.neighbourhood_function[d - 1] - 1e-9);
    }
  }
}

TEST(AnfTest, HipTracksExactNeighbourhoodFunction) {
  Graph g = ErdosRenyi(300, 900, true, 11);
  auto exact = ExactNf(g);
  RunningStat rel_at_2;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    AnfResult r = HyperAnf(g, 64, seed * 3 + 1, AnfEstimator::kHip);
    ASSERT_GE(r.neighbourhood_function.size(), 3u);
    rel_at_2.Add(r.neighbourhood_function[2] / exact[2]);
  }
  EXPECT_NEAR(rel_at_2.mean(), 1.0, 0.05);
}

TEST(AnfTest, HipBeatsBasicUnderGradualGrowth) {
  // Appendix B.1's accuracy gain holds when the register-event stream is
  // close to per-element, i.e. when neighborhoods grow by small batches
  // per round (high-diameter graphs). On explosive-growth graphs multiple
  // elements collapse into one register event and the HIP readout loses
  // part of its edge (see bench_anf for both regimes).
  Graph g = Grid2D(18, 18);
  double truth = 0.0;
  for (double v : ExactNf(g)) truth = v;  // final value: all pairs
  ErrorStats hip_err, basic_err;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    AnfResult hip = HyperAnf(g, 32, seed * 5 + 2, AnfEstimator::kHip);
    AnfResult basic = HyperAnf(g, 32, seed * 5 + 2, AnfEstimator::kBasic);
    hip_err.Add(hip.neighbourhood_function.back(), truth);
    basic_err.Add(basic.neighbourhood_function.back(), truth);
  }
  EXPECT_LT(hip_err.nrmse(), basic_err.nrmse());
}

TEST(AnfTest, FinalCardinalitiesApproachReachability) {
  Graph g = Path(30, /*directed=*/true);
  AnfResult r = HyperAnf(g, 64, 3, AnfEstimator::kHip);
  // Node 29 reaches only itself; node 0 reaches all 30.
  EXPECT_NEAR(r.final_cardinalities[29], 1.0, 1e-9);
  EXPECT_NEAR(r.final_cardinalities[0], 30.0, 12.0);
}

TEST(AnfTest, MaxRoundsTruncates) {
  Graph g = Path(50);
  AnfResult r = HyperAnf(g, 8, 1, AnfEstimator::kBasic, /*max_rounds=*/5);
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_EQ(r.neighbourhood_function.size(), 6u);
}

TEST(AnfTest, DeterministicForSeed) {
  Graph g = ErdosRenyi(200, 600, true, 13);
  AnfResult a = HyperAnf(g, 16, 42, AnfEstimator::kHip);
  AnfResult b = HyperAnf(g, 16, 42, AnfEstimator::kHip);
  EXPECT_EQ(a.neighbourhood_function, b.neighbourhood_function);
}

}  // namespace
}  // namespace hipads
