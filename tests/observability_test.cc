// The observability subsystem: the process-wide metrics registry
// (util/metrics.h), the wire-scraped stats frames (kStatsRequest /
// kStatsResponse) and per-request tracing (serve/trace.h). The
// acceptance contract: counters account EXACTLY for the requests
// issued; scraping a router aggregates every range server's snapshot
// over live TCP; and metrics/tracing never change response bytes —
// responses are bitwise identical with metrics on, off, or while a
// scrape loop hammers the server mid-load (the tsan lane gives the
// concurrent cases their teeth).

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ads/backend.h"
#include "ads/builders.h"
#include "ads/sweep.h"
#include "graph/generators.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/trace.h"

namespace hipads {
namespace {

FlatAdsSet BuildFlat(uint32_t n, uint64_t graph_seed, uint32_t k) {
  Graph g = ErdosRenyi(n, 3ULL * n, true, graph_seed);
  return FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, k, SketchFlavor::kBottomK, RankAssignment::Uniform(graph_seed + 1)));
}

uint64_t CounterOf(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

int64_t GaugeOf(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const MetricsSnapshot::HistogramValue* HistogramOf(
    const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Registry unit tests.
// ---------------------------------------------------------------------

TEST(MetricsTest, CountersGaugesHistogramsRecordThroughTheRegistry) {
  MetricsRegistry::Get().ResetForTest();
  MetricCounter* c = MetricsRegistry::Get().Counter("test.counter");
  MetricGauge* g = MetricsRegistry::Get().Gauge("test.gauge");
  MetricHistogram* h = MetricsRegistry::Get().Histogram("test.hist");
  c->Add();
  c->Add(4);
  g->Add(3);
  g->Add(-5);
  h->Record(0);
  h->Record(1);
  h->Record(100);
  // The same name resolves to the same instrument.
  EXPECT_EQ(MetricsRegistry::Get().Counter("test.counter"), c);
  MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(CounterOf(snap, "test.counter"), 5u);
  EXPECT_EQ(GaugeOf(snap, "test.gauge"), -2);
  const auto* hist = HistogramOf(snap, "test.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->sum, 101u);
  // Log2 buckets: 0 -> bucket 0, 1 -> bucket 1, 100 (7 bits) -> bucket 7.
  EXPECT_EQ(hist->buckets[0], 1u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_EQ(hist->buckets[7], 1u);
  EXPECT_EQ(MetricHistogram::BucketOf(std::numeric_limits<uint64_t>::max()),
            MetricHistogram::kBuckets - 1);
}

TEST(MetricsTest, AttachedInstrumentsSumUnderOneName) {
  MetricsRegistry::Get().ResetForTest();
  MetricsRegistry::Get().Counter("test.shared")->Add(10);
  {
    RegisteredCounter a("test.shared");
    RegisteredCounter b("test.shared");
    a.Add(5);
    b.Add(7);
    EXPECT_EQ(CounterOf(MetricsRegistry::Get().Snapshot(), "test.shared"),
              22u);
    // A move re-attaches the new address and keeps the value.
    RegisteredCounter moved = std::move(a);
    moved.Add(1);
    EXPECT_EQ(CounterOf(MetricsRegistry::Get().Snapshot(), "test.shared"),
              23u);
  }
  // Owners gone: only the registry-owned part remains.
  EXPECT_EQ(CounterOf(MetricsRegistry::Get().Snapshot(), "test.shared"),
            10u);
}

TEST(MetricsTest, KillSwitchGatesCountersAndHistogramsButNeverGauges) {
  MetricsRegistry::Get().ResetForTest();
  MetricCounter* c = MetricsRegistry::Get().Counter("test.gated");
  MetricHistogram* h = MetricsRegistry::Get().Histogram("test.gated_h");
  MetricGauge* g = MetricsRegistry::Get().Gauge("test.ungated");
  SetMetricsEnabled(false);
  c->Add(9);
  h->Record(9);
  g->Add(9);  // gauges are state, not samples — always live
  SetMetricsEnabled(true);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(g->value(), 9);
  g->Add(-9);
}

TEST(MetricsTest, SnapshotIsNameSortedAndSerializesDeterministically) {
  MetricsRegistry::Get().ResetForTest();
  MetricsRegistry::Get().Counter("test.z")->Add(1);
  MetricsRegistry::Get().Counter("test.a")->Add(2);
  MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  size_t ia = 0, iz = 0;
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (snap.counters[i].name == "test.a") ia = i;
    if (snap.counters[i].name == "test.z") iz = i;
  }
  EXPECT_LT(ia, iz);
  EXPECT_NE(snap.ToText().find("counter test.a 2\n"), std::string::npos);
  EXPECT_NE(snap.ToJson().find("\"test.a\":2"), std::string::npos);
  // Two snapshots of identical state serialize identically.
  EXPECT_EQ(snap.ToText(), MetricsRegistry::Get().Snapshot().ToText());
  EXPECT_EQ(snap.ToJson(), MetricsRegistry::Get().Snapshot().ToJson());
}

// ---------------------------------------------------------------------
// Server instrumentation + wire scrape.
// ---------------------------------------------------------------------

TEST(ObservabilityTest, ServerScrapeAccountsExactlyForIssuedRequests) {
  MetricsRegistry::Get().ResetForTest();
  FlatAdsSet set = BuildFlat(60, 3, 4);
  FlatAdsBackend backend(&set);
  AdsServerCore core(&backend, ServerOptions{});
  LoopbackChannel channel(&core);
  AdsClient client(&channel);

  ASSERT_TRUE(client.Info().ok());
  PointRequestMsg point;
  point.kind = PointKind::kNodeStats;
  point.d = std::numeric_limits<double>::infinity();
  for (uint64_t node : {3u, 5u, 5u}) {  // node 5 twice: one cache hit
    point.node = node;
    ASSERT_TRUE(client.Point(point).ok());
  }
  std::vector<PointRequestMsg> batch(2, point);
  batch[0].node = 7;
  batch[1].node = 9;
  ASSERT_TRUE(client.PointBatch(batch).ok());
  SweepRequestMsg sweep;
  sweep.collectors = {{CollectorKind::kHarmonic, 0, 0, 0.0}};
  sweep.num_threads = 1;
  ASSERT_TRUE(client.Sweep(sweep).ok());

  auto scraped = client.Stats();
  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();
  ASSERT_EQ(scraped.value().snapshots.size(), 1u);
  EXPECT_EQ(scraped.value().snapshots[0].label, "server");
  const MetricsSnapshot& snap = scraped.value().snapshots[0].metrics;
  EXPECT_EQ(CounterOf(snap, "serve.requests.info"), 1u);
  EXPECT_EQ(CounterOf(snap, "serve.requests.point"), 3u);
  EXPECT_EQ(CounterOf(snap, "serve.requests.point_batch"), 1u);
  EXPECT_EQ(CounterOf(snap, "serve.requests.sweep"), 1u);
  // The scrape itself is counted before it snapshots the registry.
  EXPECT_EQ(CounterOf(snap, "serve.requests.stats"), 1u);
  // Point-cache probes: 3 single lookups (miss, miss, hit — node 5 twice)
  // plus 2 batch entries (both misses) share the one cache.
  EXPECT_EQ(CounterOf(snap, "serve.cache.point.hits"), 1u);
  EXPECT_EQ(CounterOf(snap, "serve.cache.point.misses"), 4u);
  EXPECT_GT(CounterOf(snap, "serve.bytes_in"), 0u);
  EXPECT_GT(CounterOf(snap, "serve.bytes_out"), 0u);
  EXPECT_EQ(GaugeOf(snap, "serve.active_sweeps"), 0);
  const auto* latency = HistogramOf(snap, "serve.latency_us.point");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 3u);
  const auto* entries = HistogramOf(snap, "serve.batch.entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->count, 1u);
  EXPECT_EQ(entries->sum, 2u);
  // The sweep swept every node of the backend (ads-layer count metrics).
  EXPECT_EQ(CounterOf(snap, "ads.sweep.nodes"), 60u);
  EXPECT_GT(CounterOf(snap, "ads.sweep.entries"), 0u);
}

// The determinism guarantee, under concurrency: responses are bitwise
// identical with metrics on, metrics off, and while a scrape loop
// hammers kStatsRequest mid-load; counters still sum exactly.
TEST(ObservabilityTest, ResponsesBitwiseIdenticalUnderConcurrentScrapes) {
  MetricsRegistry::Get().ResetForTest();
  FlatAdsSet set = BuildFlat(60, 5, 4);
  FlatAdsBackend backend(&set);
  AdsServerCore core(&backend, ServerOptions{});

  std::vector<std::string> frames;
  frames.push_back(EncodeFrame(MessageType::kInfoRequest, ""));
  PointRequestMsg point;
  point.kind = PointKind::kNodeStats;
  point.d = std::numeric_limits<double>::infinity();
  for (uint64_t node : {2u, 11u, 29u}) {
    point.node = node;
    frames.push_back(EncodeFrame(MessageType::kPointRequest,
                                 EncodePointRequest(point)));
  }
  PointBatchRequestMsg batch;
  point.node = 17;
  batch.entries.push_back(point);
  point.node = 23;
  batch.entries.push_back(point);
  frames.push_back(EncodeFrame(MessageType::kPointBatchRequest,
                               EncodePointBatchRequest(batch)));

  // Reference bytes, recorded with metrics disabled.
  SetMetricsEnabled(false);
  std::vector<std::string> expected;
  for (const std::string& frame : frames) {
    bool close = false;
    expected.push_back(core.HandleFrame(frame, &close));
  }
  SetMetricsEnabled(true);

  // Metrics back on, scrapes in flight: bytes must not move.
  constexpr int kLoaders = 2;
  constexpr int kIters = 25;
  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::thread scraper([&] {
    std::string scrape =
        EncodeFrame(MessageType::kStatsRequest, EncodeStatsRequest({}));
    while (!done.load()) {
      bool close = false;
      std::string response = core.HandleFrame(scrape, &close);
      auto decoded = DecodeFrame(response);
      if (!decoded.ok() ||
          decoded.value().type != MessageType::kStatsResponse ||
          !DecodeStatsResponse(decoded.value().payload).ok()) {
        mismatches.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> loaders;
  for (int t = 0; t < kLoaders; ++t) {
    loaders.emplace_back([&] {
      for (int iter = 0; iter < kIters; ++iter) {
        for (size_t i = 0; i < frames.size(); ++i) {
          bool close = false;
          if (core.HandleFrame(frames[i], &close) != expected[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : loaders) t.join();
  done.store(true);
  scraper.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Exact accounting: the disabled warm-up recorded nothing, the
  // concurrent phase recorded everything.
  MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  EXPECT_EQ(CounterOf(snap, "serve.requests.info"),
            uint64_t{kLoaders} * kIters);
  EXPECT_EQ(CounterOf(snap, "serve.requests.point"),
            uint64_t{kLoaders} * kIters * 3);
  EXPECT_EQ(CounterOf(snap, "serve.requests.point_batch"),
            uint64_t{kLoaders} * kIters);
}

// ---------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------

TEST(ObservabilityTest, TracedRequestsRecordSpansUntracedDoNot) {
  MetricsRegistry::Get().ResetForTest();
  TraceBuffer::Get().Clear();
  FlatAdsSet set = BuildFlat(60, 7, 4);
  FlatAdsBackend backend(&set);
  AdsServerCore core(&backend, ServerOptions{});
  LoopbackChannel channel(&core);
  AdsClient client(&channel);

  PointRequestMsg point;
  point.kind = PointKind::kNodeStats;
  point.node = 4;
  point.d = std::numeric_limits<double>::infinity();
  // Untraced: no spans recorded, no trace id on the wire.
  ASSERT_TRUE(client.Point(point).ok());
  EXPECT_TRUE(TraceBuffer::Get().Snapshot().empty());

  // Traced: the client lifts its frames to wire v4 with the thread's
  // trace id; the server's instrumented sections each record one span.
  {
    ScopedTraceContext trace(0x1234, 0x5678);
    point.node = 6;
    ASSERT_TRUE(client.Point(point).ok());
  }
  std::vector<TraceSpan> spans = TraceBuffer::Get().Snapshot();
  ASSERT_FALSE(spans.empty());
  bool saw_dispatch = false, saw_encode = false;
  for (const TraceSpan& span : spans) {
    EXPECT_EQ(span.trace_hi, 0x1234u);
    EXPECT_EQ(span.trace_lo, 0x5678u);
    if (span.name == "server.dispatch") saw_dispatch = true;
    if (span.name == "server.encode") saw_encode = true;
  }
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_encode);

  // The spans travel the wire when the scrape asks for them...
  auto with_spans = client.Stats(kStatsFlagTraceSpans);
  ASSERT_TRUE(with_spans.ok());
  ASSERT_EQ(with_spans.value().spans.size(), spans.size());
  EXPECT_EQ(with_spans.value().spans[0].label, "server");
  EXPECT_EQ(with_spans.value().spans[0].name, spans[0].name);
  // ...and stay home otherwise.
  auto without = client.Stats();
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(without.value().spans.empty());
}

// ---------------------------------------------------------------------
// The acceptance case: a live 2-server TCP fleet behind a router.
// ---------------------------------------------------------------------

TEST(ObservabilityTest, TcpFleetScrapeAggregatesEveryServer) {
  MetricsRegistry::Get().ResetForTest();
  FlatAdsSet full = BuildFlat(60, 9, 4);
  // Split into two range servers, each behind a real TCP socket.
  auto slice = [&full](NodeId begin, NodeId end) {
    FlatAdsSet s;
    s.flavor = full.flavor;
    s.k = full.k;
    s.ranks = full.ranks;
    for (NodeId v = begin; v < end; ++v) {
      auto entries = full.of(v).entries();
      s.AppendNode(std::vector<AdsEntry>(entries.begin(), entries.end()));
    }
    return s;
  };
  FlatAdsSet set_a = slice(0, 30), set_b = slice(30, 60);
  FlatAdsBackend backend_a(&set_a), backend_b(&set_b);
  ServerOptions options_a, options_b;
  options_b.node_begin = 30;
  AdsServerCore core_a(&backend_a, options_a), core_b(&backend_b, options_b);
  TcpServer server_a(&core_a, TcpServerOptions{0, 1});
  TcpServer server_b(&core_b, TcpServerOptions{0, 1});
  ASSERT_TRUE(server_a.Start().ok());
  ASSERT_TRUE(server_b.Start().ok());
  std::string addr_a = "127.0.0.1:" + std::to_string(server_a.port());
  std::string addr_b = "127.0.0.1:" + std::to_string(server_b.port());

  FleetManifest manifest;
  manifest.num_nodes = 60;
  manifest.servers.push_back(FleetEntry{addr_a, 0, 30});
  manifest.servers.push_back(FleetEntry{addr_b, 30, 60});
  auto connected =
      FleetRouter::Connect(manifest, TcpChannelFactory(TcpChannelOptions{}));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  FleetRouter router = std::move(connected).value();

  // Issue requests that land on both servers.
  PointRequestMsg point;
  point.kind = PointKind::kNodeStats;
  point.d = std::numeric_limits<double>::infinity();
  for (uint64_t node : {5u, 15u, 35u, 45u}) {
    point.node = node;
    ASSERT_TRUE(router.Point(point, Deadline()).ok());
  }
  std::vector<CollectorSpec> spec = {{CollectorKind::kHarmonic, 0, 0, 0.0}};
  SweepPlan plan;
  auto built = BuildPlanFromSpec(spec, &plan);
  ASSERT_TRUE(built.ok());
  SweepRequestMsg sweep;
  sweep.collectors = spec;
  sweep.num_threads = 1;
  ASSERT_TRUE(router.ExecuteSweep(sweep, built.value(), Deadline()).ok());

  // Scrape through the router's own protocol front door.
  RouterCore router_core(&router);
  LoopbackChannel channel(&router_core);
  AdsClient client(&channel);
  auto scraped = client.Stats();
  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();
  const std::vector<StatsSnapshotMsg>& snaps = scraped.value().snapshots;
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].label, "router");
  EXPECT_EQ(snaps[1].label, addr_a);
  EXPECT_EQ(snaps[2].label, addr_b);
  // The router fanned the sweep out to both servers.
  EXPECT_EQ(CounterOf(snaps[0].metrics, "router.scatter.fanout"), 2u);
  // Exact accounting. Both "servers" share this process's registry, so
  // each server snapshot reports the fleet-wide totals: 4 points routed,
  // 2 sweep partials executed, plus TCP accepts from the router's
  // validation connects and these scrapes.
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(CounterOf(snaps[i].metrics, "serve.requests.point"), 4u)
        << snaps[i].label;
    EXPECT_EQ(CounterOf(snaps[i].metrics, "serve.requests.sweep"), 2u)
        << snaps[i].label;
    EXPECT_GT(CounterOf(snaps[i].metrics, "serve.tcp.accepted"), 0u)
        << snaps[i].label;
  }
}

}  // namespace
}  // namespace hipads
