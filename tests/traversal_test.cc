#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace hipads {
namespace {

TEST(TraversalTest, BfsOnPath) {
  Graph g = Path(6);
  auto dist = ShortestPathDistances(g, 2);
  EXPECT_EQ(dist[0], 2.0);
  EXPECT_EQ(dist[2], 0.0);
  EXPECT_EQ(dist[5], 3.0);
}

TEST(TraversalTest, UnreachableIsInfinity) {
  Graph g(4, {{0, 1, 1.0}}, false);
  auto dist = ShortestPathDistances(g, 0);
  EXPECT_EQ(dist[1], 1.0);
  EXPECT_EQ(dist[2], kInfDist);
  EXPECT_EQ(dist[3], kInfDist);
}

TEST(TraversalTest, DijkstraWeighted) {
  // 0 -> 1 (1.0), 1 -> 2 (1.0), 0 -> 2 (5.0): shortest 0->2 is 2.0.
  Graph g(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}}, false);
  auto dist = ShortestPathDistances(g, 0);
  EXPECT_EQ(dist[2], 2.0);
}

TEST(TraversalTest, DijkstraMatchesBfsOnUnitWeights) {
  Graph g = ErdosRenyi(200, 600, true, 21);
  auto bfs = ShortestPathDistances(g, 0);
  // Force the Dijkstra path by a weighted copy with all-1.0 weights seen as
  // non-unit (scale by 1.0 does not change IsUnitWeight, so rebuild with 2x
  // weights and halve).
  std::vector<Edge> edges;
  for (const Edge& e : g.ToEdgeList()) {
    if (e.tail <= e.head) edges.push_back(Edge{e.tail, e.head, 2.0});
  }
  Graph g2(g.num_nodes(), edges, true);
  auto dij = ShortestPathDistances(g2, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (bfs[v] == kInfDist) {
      EXPECT_EQ(dij[v], kInfDist);
    } else {
      EXPECT_DOUBLE_EQ(dij[v], 2.0 * bfs[v]);
    }
  }
}

TEST(TraversalTest, DijkstraVisitOrderIsNondecreasing) {
  Graph g = RandomizeWeights(Grid2D(6, 6), 0.1, 2.0, 5);
  double last = -1.0;
  int visits = 0;
  DijkstraVisit(g, 0, [&](NodeId, double d) {
    EXPECT_GE(d, last);
    last = d;
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 36);
}

TEST(TraversalTest, DijkstraVisitPruningStopsExpansion) {
  Graph g = Path(10, /*directed=*/true);
  int visits = 0;
  DijkstraVisit(g, 0, [&](NodeId, double) {
    ++visits;
    return visits < 3;  // prune after visiting 3 nodes
  });
  EXPECT_EQ(visits, 3);
}

TEST(TraversalTest, NeighborhoodAtDistance) {
  Graph g = Path(7);
  auto n2 = NeighborhoodAtDistance(g, 3, 2.0);
  EXPECT_EQ(n2.size(), 5u);  // nodes 1..5
}

TEST(TraversalTest, CountReachableDirected) {
  Graph g = Path(5, /*directed=*/true);
  EXPECT_EQ(CountReachable(g, 0), 5u);
  EXPECT_EQ(CountReachable(g, 3), 2u);
}

TEST(TraversalTest, VisitIncludesSourceAtZero) {
  Graph g = Star(4);
  bool saw_source = false;
  DijkstraVisit(g, 0, [&](NodeId v, double d) {
    if (v == 0) {
      saw_source = true;
      EXPECT_EQ(d, 0.0);
    }
    return true;
  });
  EXPECT_TRUE(saw_source);
}

}  // namespace
}  // namespace hipads
