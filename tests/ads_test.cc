#include "ads/ads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/stats.h"

namespace hipads {
namespace {

std::vector<AdsEntry> MakeEntries() {
  // node, part, rank, dist
  return {
      {0, 0, 0.50, 0.0}, {1, 0, 0.20, 1.0}, {2, 0, 0.90, 2.0},
      {3, 0, 0.10, 3.0}, {4, 0, 0.40, 4.0},
  };
}

TEST(AdsTest, ConstructionSortsByDistance) {
  std::vector<AdsEntry> shuffled = MakeEntries();
  std::swap(shuffled[0], shuffled[4]);
  Ads ads(shuffled);
  for (size_t i = 1; i < ads.size(); ++i) {
    EXPECT_LE(ads.entries()[i - 1].dist, ads.entries()[i].dist);
  }
}

TEST(AdsTest, TieBreakByNodeId) {
  Ads ads({{5, 0, 0.3, 2.0}, {2, 0, 0.7, 2.0}, {0, 0, 0.5, 0.0}});
  EXPECT_EQ(ads.entries()[1].node, 2u);  // lower id first at equal dist
  EXPECT_EQ(ads.entries()[2].node, 5u);
}

TEST(AdsTest, ContainsAndDistance) {
  Ads ads(MakeEntries());
  EXPECT_TRUE(ads.Contains(3));
  EXPECT_FALSE(ads.Contains(9));
  EXPECT_EQ(ads.DistanceOf(4), 4.0);
  EXPECT_EQ(ads.DistanceOf(9), -1.0);
}

TEST(AdsTest, CountWithin) {
  Ads ads(MakeEntries());
  EXPECT_EQ(ads.CountWithin(-1.0), 0u);
  EXPECT_EQ(ads.CountWithin(0.0), 1u);
  EXPECT_EQ(ads.CountWithin(2.5), 3u);
  EXPECT_EQ(ads.CountWithin(100.0), 5u);
}

TEST(AdsTest, BottomKAtExtractsNeighborhoodSketch) {
  Ads ads(MakeEntries());
  BottomKSketch s = ads.BottomKAt(2.0, 2);
  // Nodes within distance 2: ranks 0.5, 0.2, 0.9 -> bottom-2 = {0.2, 0.5}.
  EXPECT_EQ(s.ranks(), (std::vector<double>{0.2, 0.5}));
}

TEST(AdsTest, KMinsAtUsesParts) {
  Ads ads({{0, 0, 0.5, 0.0}, {0, 1, 0.8, 0.0}, {1, 1, 0.3, 1.0}});
  KMinsSketch s = ads.KMinsAt(1.0, 2);
  EXPECT_EQ(s.Min(0), 0.5);
  EXPECT_EQ(s.Min(1), 0.3);
  KMinsSketch s0 = ads.KMinsAt(0.0, 2);
  EXPECT_EQ(s0.Min(1), 0.8);
}

TEST(AdsTest, KPartitionAtUsesBuckets) {
  Ads ads({{0, 1, 0.5, 0.0}, {1, 0, 0.4, 1.0}, {2, 1, 0.2, 2.0}});
  KPartitionSketch s = ads.KPartitionAt(2.0, 2);
  EXPECT_EQ(s.Min(0), 0.4);
  EXPECT_EQ(s.Min(1), 0.2);
  EXPECT_EQ(s.NumNonEmpty(), 2u);
}

TEST(CanonicalBottomKTest, KeepsPrefixMinimaForK1) {
  // k=1: an entry survives iff its rank beats every closer rank.
  std::vector<AdsEntry> cands = {
      {0, 0, 0.5, 0.0}, {1, 0, 0.7, 1.0}, {2, 0, 0.3, 2.0},
      {3, 0, 0.4, 3.0}, {4, 0, 0.1, 4.0},
  };
  Ads ads = Ads::CanonicalBottomK(cands, 1);
  ASSERT_EQ(ads.size(), 3u);
  EXPECT_EQ(ads.entries()[0].node, 0u);
  EXPECT_EQ(ads.entries()[1].node, 2u);
  EXPECT_EQ(ads.entries()[2].node, 4u);
}

TEST(CanonicalBottomKTest, MembershipRule) {
  // Every kept entry must beat the kth smallest rank among closer kept
  // entries; every dropped candidate must not.
  const uint32_t k = 3;
  std::vector<AdsEntry> cands;
  for (uint32_t i = 0; i < 200; ++i) {
    cands.push_back(
        AdsEntry{i, 0, UnitHash(4, i), static_cast<double>(i)});
  }
  Ads ads = Ads::CanonicalBottomK(cands, k);
  // Recheck against a brute-force evaluation of Eq. (4).
  for (const AdsEntry& c : cands) {
    BottomKSketch closer(k);
    for (const AdsEntry& o : cands) {
      if (o.dist < c.dist) closer.Update(o.rank);
    }
    bool should_be_in = c.rank < closer.Threshold();
    EXPECT_EQ(ads.Contains(c.node), should_be_in) << "node " << c.node;
  }
}

TEST(CanonicalBottomKTest, FirstKAlwaysIncluded) {
  const uint32_t k = 4;
  std::vector<AdsEntry> cands;
  for (uint32_t i = 0; i < 50; ++i) {
    cands.push_back(AdsEntry{i, 0, UnitHash(8, i), static_cast<double>(i)});
  }
  Ads ads = Ads::CanonicalBottomK(cands, k);
  for (uint32_t i = 0; i < k; ++i) EXPECT_TRUE(ads.Contains(i));
}

TEST(CanonicalBottomKTest, IdempotentOnItsOutput) {
  std::vector<AdsEntry> cands;
  for (uint32_t i = 0; i < 100; ++i) {
    cands.push_back(AdsEntry{i, 0, UnitHash(6, i), static_cast<double>(i)});
  }
  Ads once = Ads::CanonicalBottomK(cands, 2);
  Ads twice = Ads::CanonicalBottomK(once.entries(), 2);
  ASSERT_EQ(once.size(), twice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once.entries()[i].node, twice.entries()[i].node);
  }
}

TEST(ModifiedBottomKTest, ExactlyKSmallestPerDistance) {
  // 10 candidates all at the same distance: exactly the k smallest ranks
  // survive (each sees only k-1 others below it).
  const uint32_t k = 3;
  std::vector<AdsEntry> cands;
  for (uint32_t i = 0; i < 10; ++i) {
    cands.push_back(AdsEntry{i, 0, UnitHash(12, i), 5.0});
  }
  Ads ads = Ads::ModifiedBottomK(cands, k);
  EXPECT_EQ(ads.size(), static_cast<size_t>(k));
  // They are the k smallest ranks of the group.
  std::vector<double> all_ranks;
  for (const AdsEntry& e : cands) all_ranks.push_back(e.rank);
  std::sort(all_ranks.begin(), all_ranks.end());
  for (const AdsEntry& e : ads.entries()) {
    EXPECT_LE(e.rank, all_ranks[k - 1]);
  }
}

TEST(ModifiedBottomKTest, SubsetOfTieBrokenAds) {
  // Appendix A: the modified ADS is a subset of the tie-broken ADS.
  const uint32_t k = 2;
  std::vector<AdsEntry> cands;
  for (uint32_t i = 0; i < 60; ++i) {
    // Repeating distances: groups of 5 share a distance.
    cands.push_back(
        AdsEntry{i, 0, UnitHash(13, i), static_cast<double>(i / 5)});
  }
  Ads modified = Ads::ModifiedBottomK(cands, k);
  Ads full = Ads::CanonicalBottomK(cands, k);
  for (const AdsEntry& e : modified.entries()) {
    EXPECT_TRUE(full.Contains(e.node));
  }
  EXPECT_LE(modified.size(), full.size());
}

TEST(ModifiedBottomKTest, UniqueDistancesMatchCanonicalRule) {
  // With unique distances the modified rule keeps u iff rank < kth among
  // nodes with dist <= d(u), which includes u itself — so it can only drop
  // entries whose rank IS the kth. Verify it stays within one entry per
  // possible drop of the canonical result.
  const uint32_t k = 3;
  std::vector<AdsEntry> cands;
  for (uint32_t i = 0; i < 100; ++i) {
    cands.push_back(AdsEntry{i, 0, UnitHash(14, i), static_cast<double>(i)});
  }
  Ads modified = Ads::ModifiedBottomK(cands, k);
  Ads full = Ads::CanonicalBottomK(cands, k);
  for (const AdsEntry& e : modified.entries()) {
    EXPECT_TRUE(full.Contains(e.node));
  }
}

TEST(ExpectedSizeTest, Lemma22SmallCases) {
  EXPECT_EQ(ExpectedBottomKAdsSize(4, 3), 3.0);
  EXPECT_EQ(ExpectedBottomKAdsSize(4, 4), 4.0);
  // k=1, n=4: 1 + H_4 - H_1 = 1 + (25/12 - 1).
  EXPECT_NEAR(ExpectedBottomKAdsSize(1, 4), 25.0 / 12.0, 1e-12);
}

TEST(ExpectedSizeTest, GrowthIsLogarithmic) {
  double s1 = ExpectedBottomKAdsSize(16, 1000);
  double s2 = ExpectedBottomKAdsSize(16, 1000000);
  // Tripling the exponent of n adds ~ k ln(1000) per factor.
  EXPECT_NEAR(s2 - s1, 16 * std::log(1000.0), 0.5);
}

TEST(ExpectedSizeTest, KPartitionSmallerThanBottomK) {
  EXPECT_LT(ExpectedKPartitionAdsSize(16, 100000),
            ExpectedBottomKAdsSize(16, 100000));
}

TEST(AdsSetTest, TotalEntries) {
  AdsSet set;
  set.ads.emplace_back(MakeEntries());
  set.ads.emplace_back(std::vector<AdsEntry>{{0, 0, 0.5, 0.0}});
  EXPECT_EQ(set.TotalEntries(), 6u);
}

}  // namespace
}  // namespace hipads
