// ExactSum is the error-free accumulator behind the distributed distance
// histogram: any insertion order, any merge tree, one rounding at the end.
// These tests pin the exactness and rounding contracts the serving layer's
// bitwise-determinism guarantees rest on.

#include "util/exact_sum.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hipads {
namespace {

std::string Encoded(const ExactSum& s) {
  std::string out;
  s.EncodeTo(&out);
  return out;
}

TEST(ExactSumTest, EmptyAndZeroSumsRoundToZero) {
  ExactSum s;
  EXPECT_TRUE(s.IsZero());
  EXPECT_EQ(s.Round(), 0.0);
  s.Add(0.0);
  EXPECT_TRUE(s.IsZero());
  EXPECT_EQ(s.Round(), 0.0);
  EXPECT_EQ(Encoded(s).size(), ExactSum::kWireHeaderBytes);
}

// Sums whose exact value is representable must come back exactly —
// including when a naive double fold would already have rounded.
TEST(ExactSumTest, ExactlyRepresentableSumsAreExact) {
  ExactSum s;
  double expected = 0.0;
  // Multiples of 2^-10 below 2^20: any partial sum of 10k of them needs
  // at most 44 significand bits, so the reference fold is itself exact.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = std::ldexp(static_cast<double>(rng() % (1u << 30)), -10);
    s.Add(v);
    expected += v;
  }
  EXPECT_EQ(s.Round(), expected);
}

// 2^-53 is half an ulp of 1.0: a tie, which must round to even (1.0);
// any extra sticky bit below must break the tie upward.
TEST(ExactSumTest, RoundsToNearestTiesToEven) {
  const double half_ulp = std::ldexp(1.0, -53);
  {
    ExactSum s;
    s.Add(1.0);
    s.Add(half_ulp);
    EXPECT_EQ(s.Round(), 1.0);
  }
  {
    ExactSum s;
    s.Add(1.0);
    s.Add(half_ulp);
    s.Add(std::numeric_limits<double>::denorm_min());  // sticky, 1021 bits down
    EXPECT_EQ(s.Round(), 1.0 + std::ldexp(1.0, -52));
  }
  {
    ExactSum s;  // two half-ulps are a whole ulp: exact
    s.Add(1.0);
    s.Add(half_ulp);
    s.Add(half_ulp);
    EXPECT_EQ(s.Round(), 1.0 + std::ldexp(1.0, -52));
  }
  {
    // 1.5 ulp above an odd significand: tie rounds up to even.
    ExactSum s;
    s.Add(1.0 + std::ldexp(1.0, -52));
    s.Add(half_ulp);
    EXPECT_EQ(s.Round(), 1.0 + std::ldexp(2.0, -52));
  }
}

TEST(ExactSumTest, ExtremeMagnitudesCoexist) {
  ExactSum s;
  s.Add(1e308);
  s.Add(5e-324);  // the smallest subnormal, ~632 orders of magnitude down
  EXPECT_EQ(s.Round(), 1e308);  // sticky bit alone cannot move the result
  ExactSum tiny;
  tiny.Add(5e-324);
  tiny.Add(5e-324);
  EXPECT_EQ(tiny.Round(), 2 * 5e-324);
  ExactSum max;
  for (int i = 0; i < 4; ++i) max.Add(std::numeric_limits<double>::max());
  EXPECT_TRUE(std::isinf(max.Round()));  // exact sum beyond the double range
}

// The core property the distributed gather relies on: the value — and the
// canonical encoding — depend only on the multiset of added values, not
// on insertion order or on how the values were partitioned across
// accumulators before merging.
TEST(ExactSumTest, OrderAndPartitionIndependent) {
  std::mt19937_64 rng(42);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Adversarial spread: exponents across ~180 orders of magnitude.
    int exp = static_cast<int>(rng() % 600) - 300;
    double mant = static_cast<double>(rng()) / static_cast<double>(~0ull);
    values.push_back(std::ldexp(1.0 + mant, exp));
  }
  ExactSum reference;
  for (double v : values) reference.Add(v);
  const double expected = reference.Round();
  const std::string expected_bytes = Encoded(reference);

  std::vector<double> shuffled = values;
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    // Partition into a random number of chunks, one accumulator each,
    // merged in a right fold.
    size_t chunks = 1 + rng() % 7;
    std::vector<ExactSum> parts(chunks);
    for (size_t i = 0; i < shuffled.size(); ++i) {
      parts[rng() % chunks].Add(shuffled[i]);
    }
    ExactSum merged;
    for (const ExactSum& p : parts) merged.Merge(p);
    EXPECT_EQ(merged.Round(), expected) << "trial " << trial;
    EXPECT_EQ(Encoded(merged), expected_bytes) << "trial " << trial;
  }
}

TEST(ExactSumTest, WireRoundTripsAndRejectsMalformed) {
  ExactSum s;
  s.Add(3.25);
  s.Add(1e-9);
  s.Add(7e12);
  std::string wire = Encoded(s);

  ExactSum decoded;
  size_t consumed = 0;
  ASSERT_TRUE(decoded.DecodeAndMerge(wire, &consumed));
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded.Round(), s.Round());
  EXPECT_EQ(Encoded(decoded), wire);

  // Decoding merges: a second absorb doubles the value.
  ASSERT_TRUE(decoded.DecodeAndMerge(wire, &consumed));
  ExactSum doubled;
  doubled.Merge(s);
  doubled.Merge(s);
  EXPECT_EQ(Encoded(decoded), Encoded(doubled));

  ExactSum sink;
  // Truncated header, truncated digits, and out-of-range windows fail.
  EXPECT_FALSE(sink.DecodeAndMerge(wire.substr(0, 3), &consumed));
  EXPECT_FALSE(sink.DecodeAndMerge(wire.substr(0, wire.size() - 1),
                                   &consumed));
  std::string bad_lo = wire;
  uint32_t huge = 1000;
  std::memcpy(bad_lo.data(), &huge, 4);
  EXPECT_FALSE(sink.DecodeAndMerge(bad_lo, &consumed));
  std::string bad_count = wire;
  std::memcpy(bad_count.data() + 4, &huge, 4);
  EXPECT_FALSE(sink.DecodeAndMerge(bad_count, &consumed));
  EXPECT_TRUE(sink.IsZero());
}

// Delayed carries must normalize transparently: enough same-limb adds to
// overflow 32-bit digits many times over still round exactly.
TEST(ExactSumTest, CarryPropagationSurvivesManyAdds) {
  ExactSum s;
  const int n = 200000;
  for (int i = 0; i < n; ++i) s.Add(1.0);
  EXPECT_EQ(s.Round(), static_cast<double>(n));
}

}  // namespace
}  // namespace hipads
