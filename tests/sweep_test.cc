// The fused sweep-execution engine (ads/sweep.h). The serving contract:
// a SweepPlan with K collectors produces results bitwise identical to
// running the K statistics as standalone queries — on every storage
// engine (in-memory arena, zero-copy mmap, sharded with and without
// prefetch at every lookahead depth) and for every thread count — while
// costing exactly ONE backend pass (observable through the sharded
// backend's shard-load counter). Plus the failure contract (a truncated
// shard fails the whole plan) and the SoA layout's bitwise equivalence.

#include "ads/sweep.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "ads/builders.h"
#include "ads/hip.h"
#include "ads/queries.h"
#include "ads/shard.h"
#include "graph/generators.h"

namespace hipads {
namespace {

FlatAdsSet BuildFlat(uint32_t n, uint64_t graph_seed, uint32_t k) {
  Graph g = ErdosRenyi(n, 3ULL * n, true, graph_seed);
  return FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, k, SketchFlavor::kBottomK, RankAssignment::Uniform(graph_seed + 1)));
}

// Unique scratch dir per test; removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string file(const std::string& name) const {
    return (std::filesystem::path(path) / name).string();
  }
  std::string path;
};

double AlphaFn(double d) { return 1.0 / (1.0 + d); }
double BetaFn(NodeId v) { return v % 2 == 0 ? 1.0 : 0.5; }

// The acceptance plan: six distinct statistics (and within the histogram
// collector, four derived ones) fused into one pass.
struct SixStatPlan {
  SweepPlan plan;
  DistanceHistogramCollector* hist;
  ClosenessCollector* closeness;
  DistanceSumCollector* distsum;
  HarmonicCentralityCollector* harmonic;
  NeighborhoodSizeCollector* nsize;
  ReachableCountCollector* reach;
  TopKCollector* top;

  SixStatPlan() {
    hist = plan.Emplace<DistanceHistogramCollector>();
    closeness = plan.Emplace<ClosenessCollector>(AlphaFn, BetaFn);
    distsum = plan.Emplace<DistanceSumCollector>();
    harmonic = plan.Emplace<HarmonicCentralityCollector>();
    nsize = plan.Emplace<NeighborhoodSizeCollector>(2.0);
    reach = plan.Emplace<ReachableCountCollector>();
    top = plan.Emplace<TopKCollector>(5, [](const HipEstimator& est) {
      return est.HarmonicCentrality();
    });
  }

  // Bitwise comparison of every collected statistic against the
  // standalone whole-graph queries on the reference arena.
  void ExpectMatchesStandalone(const FlatAdsSet& ref) const {
    EXPECT_EQ(hist->Distribution(), EstimateDistanceDistribution(ref, 1));
    EXPECT_EQ(hist->NeighborhoodFunction(),
              EstimateNeighborhoodFunction(ref, 1));
    EXPECT_EQ(hist->EffectiveDiameter(), EstimateEffectiveDiameter(ref));
    EXPECT_EQ(hist->MeanDistance(), EstimateMeanDistance(ref));
    EXPECT_EQ(closeness->values(),
              EstimateClosenessAll(ref, AlphaFn, BetaFn, 1));
    EXPECT_EQ(distsum->values(), EstimateDistanceSumAll(ref, 1));
    EXPECT_EQ(harmonic->values(), EstimateHarmonicCentralityAll(ref, 1));
    EXPECT_EQ(nsize->values(), EstimateNeighborhoodSizeAll(ref, 2.0, 1));
    EXPECT_EQ(reach->values(), EstimateReachableCountAll(ref, 1));
    EXPECT_EQ(top->TopNodes(),
              TopKNodes(EstimateHarmonicCentralityAll(ref, 1), 5));
  }
};

TEST(SweepTest, FusedPlanMatchesStandaloneOnSingleArenas) {
  FlatAdsSet flat = BuildFlat(180, 3, 8);
  AdsSet owning = flat.ToAdsSet();
  for (uint32_t threads : {1u, 2u, 4u}) {
    {
      SixStatPlan fused;
      RunSweep(flat, fused.plan, threads);
      fused.ExpectMatchesStandalone(flat);
    }
    {
      SixStatPlan fused;
      RunSweep(owning, fused.plan, threads);
      fused.ExpectMatchesStandalone(flat);
    }
  }
}

// The acceptance matrix: the fused plan over every backend engine at
// several thread counts, bitwise identical to the standalone queries.
TEST(SweepTest, FusedPlanBitwiseIdenticalAcrossBackends) {
  FlatAdsSet set = BuildFlat(230, 7, 8);
  ScratchDir dir("hipads_sweep_test_matrix");
  std::string file_path = dir.file("set.ads2");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteAdsSetFile(set, file_path, AdsFileFormat::kBinaryV2).ok());
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 5).ok());

  for (uint32_t threads : {1u, 2u, 4u}) {
    {
      FlatAdsBackend flat(&set);
      SixStatPlan fused;
      ASSERT_TRUE(RunSweep(flat, fused.plan, threads).ok());
      fused.ExpectMatchesStandalone(set);
    }
    {
      auto mapped = MmapAdsSet::Open(file_path);
      ASSERT_TRUE(mapped.ok());
      SixStatPlan fused;
      ASSERT_TRUE(RunSweep(mapped.value(), fused.plan, threads).ok());
      fused.ExpectMatchesStandalone(set);
    }
    for (bool use_mmap : {false, true}) {
      for (uint32_t depth : {0u, 1u, 2u, 3u}) {  // 0 = prefetch off
        ShardedOptions options;
        options.max_resident = 1;
        options.prefetch = depth > 0;
        options.prefetch_depth = depth == 0 ? 1 : depth;
        options.use_mmap = use_mmap;
        auto sharded = ShardedAdsSet::Open(shard_dir, options);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        SixStatPlan fused;
        ASSERT_TRUE(RunSweep(sharded.value(), fused.plan, threads).ok())
            << "mmap=" << use_mmap << " depth=" << depth;
        fused.ExpectMatchesStandalone(set);
        EXPECT_LE(sharded.value().NumResident(), 1u);
      }
    }
  }
}

// Storage-resident HIP weights feed the same fused plan: every engine
// serving the precomputed section, at every thread count, stays bitwise
// identical to the standalone scan-path queries on the hip-less reference.
TEST(SweepTest, FusedPlanBitwiseIdenticalWithResidentHipWeights) {
  FlatAdsSet reference = BuildFlat(230, 7, 8);  // same set as the matrix test
  FlatAdsSet with_hip = BuildFlat(230, 7, 8);
  PrecomputeHipWeights(&with_hip, 2);
  ScratchDir dir("hipads_sweep_test_hip");
  std::string file_path = dir.file("set.ads2");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(
      WriteAdsSetFile(with_hip, file_path, AdsFileFormat::kBinaryV2).ok());
  ASSERT_TRUE(WriteShardedAdsSet(with_hip, shard_dir, 5).ok());

  for (uint32_t threads : {1u, 2u, 4u}) {
    {
      FlatAdsBackend flat(&with_hip);
      ASSERT_TRUE(flat.HipResident());
      SixStatPlan fused;
      ASSERT_TRUE(RunSweep(flat, fused.plan, threads).ok());
      fused.ExpectMatchesStandalone(reference);
    }
    {
      auto mapped = MmapAdsSet::Open(file_path);
      ASSERT_TRUE(mapped.ok());
      ASSERT_TRUE(mapped.value().HipResident());
      SixStatPlan fused;
      ASSERT_TRUE(RunSweep(mapped.value(), fused.plan, threads).ok());
      fused.ExpectMatchesStandalone(reference);
    }
    for (bool use_mmap : {false, true}) {
      ShardedOptions options;
      options.max_resident = 1;
      options.use_mmap = use_mmap;
      auto sharded = ShardedAdsSet::Open(shard_dir, options);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ASSERT_TRUE(sharded.value().HipResident());
      SixStatPlan fused;
      ASSERT_TRUE(RunSweep(sharded.value(), fused.plan, threads).ok())
          << "mmap=" << use_mmap;
      fused.ExpectMatchesStandalone(reference);
    }
  }
}

// The fusion guarantee the engine exists for: K statistics over a sharded
// backend cost exactly ONE shard sweep — each shard file is loaded once —
// where the standalone queries cost K sweeps.
TEST(SweepTest, SixStatisticPlanSweepsShardsExactlyOnce) {
  FlatAdsSet set = BuildFlat(200, 11, 8);
  ScratchDir dir("hipads_sweep_test_loads");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 5).ok());

  for (bool prefetch : {false, true}) {
    ShardedOptions options;
    options.max_resident = 1;
    options.prefetch = prefetch;
    options.prefetch_depth = 2;
    auto opened = ShardedAdsSet::Open(shard_dir, options);
    ASSERT_TRUE(opened.ok());
    const ShardedAdsSet& sharded = opened.value();
    ASSERT_EQ(sharded.num_shards(), 5u);
    EXPECT_EQ(sharded.NumShardLoads(), 0u);  // open loads nothing

    SixStatPlan fused;
    ASSERT_TRUE(RunSweep(sharded, fused.plan, 1).ok());
    EXPECT_EQ(sharded.NumShardLoads(), 5u) << "prefetch=" << prefetch;
    fused.ExpectMatchesStandalone(set);
  }

  // The same six statistics as standalone queries: six full sweeps, six
  // loads of every shard (max_resident=1 keeps nothing across sweeps).
  {
    auto opened = ShardedAdsSet::Open(shard_dir, ShardedOptions{});
    ASSERT_TRUE(opened.ok());
    const ShardedAdsSet& sharded = opened.value();
    ASSERT_TRUE(EstimateDistanceDistribution(sharded, 1).ok());
    ASSERT_TRUE(EstimateClosenessAll(sharded, AlphaFn, BetaFn, 1).ok());
    ASSERT_TRUE(EstimateDistanceSumAll(sharded, 1).ok());
    ASSERT_TRUE(EstimateHarmonicCentralityAll(sharded, 1).ok());
    ASSERT_TRUE(EstimateNeighborhoodSizeAll(sharded, 2.0, 1).ok());
    ASSERT_TRUE(EstimateReachableCountAll(sharded, 1).ok());
    EXPECT_EQ(sharded.NumShardLoads(), 30u);  // 6 statistics x 5 shards
  }
}

TEST(SweepTest, EmptyPlanTouchesNoShards) {
  FlatAdsSet set = BuildFlat(120, 13, 4);
  ScratchDir dir("hipads_sweep_test_empty");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 3).ok());
  auto opened = ShardedAdsSet::Open(shard_dir, ShardedOptions{});
  ASSERT_TRUE(opened.ok());
  SweepPlan plan;
  ASSERT_TRUE(RunSweep(opened.value(), plan, 1).ok());
  EXPECT_EQ(opened.value().NumShardLoads(), 0u);
}

// Error propagation: a shard truncated mid-plan fails the whole sweep
// with Corruption — no partial results are reported as success.
TEST(SweepTest, TruncatedShardFailsThePlan) {
  FlatAdsSet set = BuildFlat(160, 17, 4);
  ScratchDir dir("hipads_sweep_test_truncated");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 4).ok());
  std::string victim =
      (std::filesystem::path(shard_dir) / "shard-00002.ads2").string();
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(victim, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(victim, size - 24, ec);
  ASSERT_FALSE(ec);

  for (bool use_mmap : {false, true}) {
    for (bool prefetch : {false, true}) {
      ShardedOptions options;
      options.use_mmap = use_mmap;
      options.prefetch = prefetch;
      options.prefetch_depth = 2;
      auto opened = ShardedAdsSet::Open(shard_dir, options);
      ASSERT_TRUE(opened.ok());
      SixStatPlan fused;
      Status swept = RunSweep(opened.value(), fused.plan, 1);
      ASSERT_FALSE(swept.ok())
          << "mmap=" << use_mmap << " prefetch=" << prefetch;
      EXPECT_EQ(swept.code(), Status::Code::kCorruption);
      // Shards 0 and 1 were swept before the failure; the error must
      // still surface from the plan as a whole.
    }
  }
}

// tsan target: deep prefetch pipelines (lookahead 2 and 3) overlap
// multiple background loads with consumer sweeps; repeated runs must stay
// deterministic, race-free, and bitwise equal to non-prefetching serving.
TEST(SweepTest, DeepPrefetchSweepsAreDeterministic) {
  FlatAdsSet set = BuildFlat(210, 19, 8);
  ScratchDir dir("hipads_sweep_test_depth");
  std::string shard_dir = dir.file("shards");
  ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 6).ok());

  std::vector<double> reference = EstimateHarmonicCentralityAll(set, 1);
  for (bool use_mmap : {false, true}) {
    for (uint32_t depth : {2u, 3u}) {
      ShardedOptions options;
      options.max_resident = 2;
      options.prefetch = true;
      options.prefetch_depth = depth;
      options.use_mmap = use_mmap;
      auto opened = ShardedAdsSet::Open(shard_dir, options);
      ASSERT_TRUE(opened.ok());
      const ShardedAdsSet& sharded = opened.value();
      for (int round = 0; round < 3; ++round) {
        auto scores = EstimateHarmonicCentralityAll(sharded, 2);
        ASSERT_TRUE(scores.ok());
        EXPECT_EQ(scores.value(), reference)
            << "depth=" << depth << " round=" << round;
        // Point lookups fault shards in out of sweep order between runs.
        for (NodeId v : {0u, 209u, 100u}) {
          ASSERT_TRUE(sharded.ViewOf(v).ok());
        }
        EXPECT_LE(sharded.NumResident(), 2u);
      }
    }
  }
}

// The SoA split: per-field streams produce bitwise-identical HIP weights
// and estimates for every flavor (the kernels are one template).
TEST(SweepTest, SoaLayoutMatchesAosBitwise) {
  Graph g = ErdosRenyi(140, 3ULL * 140, true, 23);
  struct Case {
    SketchFlavor flavor;
    RankAssignment ranks;
  };
  const Case cases[] = {
      {SketchFlavor::kBottomK, RankAssignment::Uniform(24)},
      {SketchFlavor::kBottomK, RankAssignment::BaseB(24, 2.0)},
      {SketchFlavor::kKMins, RankAssignment::Uniform(25)},
      {SketchFlavor::kKPartition, RankAssignment::Uniform(26)},
  };
  for (const Case& c : cases) {
    FlatAdsSet flat = FlatAdsSet::FromAdsSet(
        BuildAdsPrunedDijkstra(g, 8, c.flavor, c.ranks));
    SoaAdsArena soa = SoaAdsArena::FromFlat(flat);
    ASSERT_EQ(soa.num_nodes(), flat.num_nodes());
    ASSERT_EQ(soa.TotalEntries(), flat.TotalEntries());
    for (NodeId v = 0; v < flat.num_nodes(); ++v) {
      auto aos_hip = ComputeHipWeights(flat.of(v), 8, c.flavor, c.ranks);
      auto soa_hip = ComputeHipWeights(soa.of(v), 8, c.flavor, c.ranks);
      ASSERT_EQ(aos_hip.size(), soa_hip.size()) << "node " << v;
      for (size_t i = 0; i < aos_hip.size(); ++i) {
        EXPECT_EQ(aos_hip[i].node, soa_hip[i].node);
        EXPECT_EQ(aos_hip[i].dist, soa_hip[i].dist);
        EXPECT_EQ(aos_hip[i].tau, soa_hip[i].tau);
        EXPECT_EQ(aos_hip[i].weight, soa_hip[i].weight);
      }
      HipEstimator aos_est(flat.of(v), 8, c.flavor, c.ranks);
      HipEstimator soa_est(soa.of(v), 8, c.flavor, c.ranks);
      EXPECT_EQ(aos_est.HarmonicCentrality(), soa_est.HarmonicCentrality());
      EXPECT_EQ(aos_est.ReachableCount(), soa_est.ReachableCount());
      EXPECT_EQ(aos_est.NeighborhoodCardinality(2.0),
                soa_est.NeighborhoodCardinality(2.0));
    }
  }
}

// The collector-library additions: per-node distance quantiles and custom
// Q_g ride the fused pass and match per-node HipEstimator evaluation.
TEST(SweepTest, QuantileAndQgCollectorsMatchPerNodeEstimators) {
  FlatAdsSet set = BuildFlat(150, 31, 8);
  SweepPlan plan;
  auto* median = plan.Emplace<DistanceQuantileCollector>(0.5);
  auto* q90 = plan.Emplace<DistanceQuantileCollector>(0.9);
  auto g = [](NodeId, double d) { return std::pow(0.5, d); };
  auto* qg = plan.Emplace<QgCollector>(g);
  RunSweep(set, plan, 2);
  for (NodeId v = 0; v < set.num_nodes(); ++v) {
    HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
    EXPECT_EQ(median->values()[v], est.DistanceQuantile(0.5)) << v;
    EXPECT_EQ(q90->values()[v], est.DistanceQuantile(0.9)) << v;
    EXPECT_EQ(qg->values()[v], est.Qg(g)) << v;
  }
}

// The distributed partial-state seam at the collector level: sweeping a
// node-range split separately, encoding each range's partial and absorbing
// them in node order reproduces the single-process sweep bitwise —
// including the histogram fold, whose partial is the O(distinct distances)
// exact per-distance superaccumulator state merged without rounding.
TEST(SweepTest, EncodedPartialsReplayToTheSingleProcessResultBitwise) {
  FlatAdsSet set = BuildFlat(170, 37, 8);
  size_t n = set.num_nodes();

  SweepPlan full_plan;
  auto* full_hist = full_plan.Emplace<DistanceHistogramCollector>();
  auto* full_harmonic = full_plan.Emplace<HarmonicCentralityCollector>();
  RunSweep(set, full_plan, 1);

  for (std::vector<NodeId> splits :
       {std::vector<NodeId>{0, 85, 170}, {0, 40, 90, 170}}) {
    DistanceHistogramCollector merged_hist;
    HarmonicCentralityCollector merged_harmonic;
    merged_hist.Begin(n);
    merged_harmonic.Begin(n);
    for (size_t r = 0; r + 1 < splits.size(); ++r) {
      // One "range server": a standalone sweep over the slice.
      FlatAdsSet slice;
      slice.flavor = set.flavor;
      slice.k = set.k;
      slice.ranks = set.ranks;
      for (NodeId v = splits[r]; v < splits[r + 1]; ++v) {
        auto entries = set.of(v).entries();
        slice.AppendNode(
            std::vector<AdsEntry>(entries.begin(), entries.end()));
      }
      SweepPlan range_plan;
      auto* hist = range_plan.Emplace<DistanceHistogramCollector>();
      auto* harmonic = range_plan.Emplace<HarmonicCentralityCollector>();
      RunSweep(slice, range_plan, 2);

      NodeId slice_nodes = splits[r + 1] - splits[r];
      std::string hist_partial, harmonic_partial;
      ASSERT_TRUE(hist->EncodePartial(0, slice_nodes, &hist_partial).ok());
      ASSERT_TRUE(
          harmonic->EncodePartial(0, slice_nodes, &harmonic_partial).ok());
      ASSERT_TRUE(
          merged_hist.AbsorbPartial(splits[r], splits[r + 1], hist_partial)
              .ok());
      ASSERT_TRUE(merged_harmonic
                      .AbsorbPartial(splits[r], splits[r + 1],
                                     harmonic_partial)
                      .ok());
    }
    EXPECT_EQ(merged_hist.Distribution(), full_hist->Distribution());
    EXPECT_EQ(merged_harmonic.values(), full_harmonic->values());
  }

  // The superaccumulator partial is compact: its size is bounded by the
  // number of distinct distances, not by the number of HIP entries folded.
  std::string full_partial;
  ASSERT_TRUE(
      full_hist->EncodePartial(0, static_cast<NodeId>(n), &full_partial).ok());
  size_t distinct = full_hist->Distribution().size();
  EXPECT_LE(full_partial.size(),
            sizeof(uint64_t) + distinct * (sizeof(double) + 8 + 70 * 4));

  // A per-node slice outside the collected range must be rejected.
  std::string ignored;
  EXPECT_FALSE(full_harmonic
                   ->EncodePartial(0, static_cast<NodeId>(n + 1), &ignored)
                   .ok());

  // Malformed histogram partials fail cleanly and leave the collector's
  // state untouched (the bytes arrive from the network).
  DistanceHistogramCollector absorber;
  absorber.Begin(n);
  ASSERT_TRUE(
      absorber.AbsorbPartial(0, static_cast<NodeId>(n), full_partial).ok());
  auto before = absorber.Distribution();
  std::string truncated = full_partial.substr(0, full_partial.size() - 3);
  EXPECT_FALSE(
      absorber.AbsorbPartial(0, static_cast<NodeId>(n), truncated).ok());
  std::string trailing = full_partial + "xx";
  EXPECT_FALSE(
      absorber.AbsorbPartial(0, static_cast<NodeId>(n), trailing).ok());
  EXPECT_EQ(absorber.Distribution(), before);
}

// Borrowed collectors (Add) and owned collectors (Emplace) behave
// identically; a collector reused across sweeps resets in Begin.
TEST(SweepTest, CollectorsResetBetweenSweeps) {
  FlatAdsSet set = BuildFlat(100, 29, 4);
  DistanceHistogramCollector hist;
  HarmonicCentralityCollector harmonic;
  SweepPlan plan;
  plan.Add(&hist).Add(&harmonic);
  RunSweep(set, plan, 1);
  auto first_hist = hist.Distribution();
  auto first_harmonic = harmonic.values();
  RunSweep(set, plan, 2);  // rerun: Begin must clear, not accumulate
  EXPECT_EQ(hist.Distribution(), first_hist);
  EXPECT_EQ(harmonic.values(), first_harmonic);
}

}  // namespace
}  // namespace hipads
