#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/traversal.h"

namespace hipads {
namespace {

TEST(GeneratorsTest, ErdosRenyiEdgeCount) {
  Graph g = ErdosRenyi(100, 300, /*undirected=*/true, 1);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_arcs(), 600u);  // both directions
}

TEST(GeneratorsTest, ErdosRenyiDirected) {
  Graph g = ErdosRenyi(50, 200, /*undirected=*/false, 2);
  EXPECT_EQ(g.num_arcs(), 200u);
  EXPECT_FALSE(g.undirected());
}

TEST(GeneratorsTest, ErdosRenyiNoSelfLoops) {
  Graph g = ErdosRenyi(30, 100, false, 3);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Arc& a : g.OutArcs(v)) EXPECT_NE(a.head, v);
  }
}

TEST(GeneratorsTest, ErdosRenyiDeterministicSeed) {
  Graph a = ErdosRenyi(40, 80, true, 42);
  Graph b = ErdosRenyi(40, 80, true, 42);
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
  for (NodeId v = 0; v < 40; ++v) {
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v));
  }
}

TEST(GeneratorsTest, BarabasiAlbertConnectedAndSized) {
  Graph g = BarabasiAlbert(500, 3, 7);
  EXPECT_EQ(g.num_nodes(), 500u);
  // Preferential attachment produces a connected graph.
  EXPECT_EQ(CountReachable(g, 0), 500u);
  // (attach+1 choose 2) seed edges + attach per later node, both directions.
  uint64_t expected_edges = 6 + (500 - 4) * 3;
  EXPECT_EQ(g.num_arcs(), expected_edges * 2);
}

TEST(GeneratorsTest, BarabasiAlbertHeavyTail) {
  Graph g = BarabasiAlbert(2000, 2, 11);
  uint32_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  // Hubs should exist: far above the mean degree of ~4.
  EXPECT_GT(max_deg, 40u);
}

TEST(GeneratorsTest, RmatSize) {
  Graph g = Rmat(10, 8, 5);
  EXPECT_EQ(g.num_nodes(), 1024u);
  EXPECT_LE(g.num_arcs(), 8192u);  // self loops dropped
  EXPECT_GT(g.num_arcs(), 7000u);
}

TEST(GeneratorsTest, RmatSkew) {
  Graph g = Rmat(11, 8, 9);
  uint32_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  EXPECT_GT(max_deg, 50u);  // power-law out-degrees
}

TEST(GeneratorsTest, Grid2DStructure) {
  Graph g = Grid2D(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // 3*3 horizontal + 2*4 vertical edges, doubled.
  EXPECT_EQ(g.num_arcs(), 2u * (3 * 3 + 2 * 4));
  // Corner has degree 2, middle has degree 4.
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(5), 4u);
}

TEST(GeneratorsTest, PathDistances) {
  Graph g = Path(5);
  auto dist = ShortestPathDistances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(GeneratorsTest, DirectedPathUnreachableBackwards) {
  Graph g = Path(4, /*directed=*/true);
  auto dist = ShortestPathDistances(g, 2);
  EXPECT_EQ(dist[3], 1.0);
  EXPECT_EQ(dist[0], kInfDist);
}

TEST(GeneratorsTest, CycleDiameter) {
  Graph g = Cycle(10);
  auto dist = ShortestPathDistances(g, 0);
  EXPECT_EQ(dist[5], 5.0);
  EXPECT_EQ(dist[9], 1.0);
}

TEST(GeneratorsTest, StarStructure) {
  Graph g = Star(6);
  EXPECT_EQ(g.OutDegree(0), 5u);
  auto dist = ShortestPathDistances(g, 1);
  EXPECT_EQ(dist[0], 1.0);
  EXPECT_EQ(dist[2], 2.0);
}

TEST(GeneratorsTest, CompleteGraph) {
  Graph g = Complete(5);
  EXPECT_EQ(g.num_arcs(), 20u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.OutDegree(v), 4u);
}

TEST(GeneratorsTest, BinaryTreeDepth) {
  Graph g = BinaryTree(15);  // complete tree of depth 3
  auto dist = ShortestPathDistances(g, 0);
  EXPECT_EQ(dist[14], 3.0);
  EXPECT_EQ(dist[1], 1.0);
  EXPECT_EQ(CountReachable(g, 7), 15u);
}

TEST(GeneratorsTest, WattsStrogatzConnectedAtBetaZero) {
  Graph g = WattsStrogatz(100, 2, 0.0, 3);
  EXPECT_EQ(CountReachable(g, 0), 100u);
  // Ring lattice: every node has degree 4 with beta=0.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.OutDegree(v), 4u);
  }
}

TEST(GeneratorsTest, WattsStrogatzRewiringShrinksDiameter) {
  Graph lattice = WattsStrogatz(400, 2, 0.0, 5);
  Graph small_world = WattsStrogatz(400, 2, 0.3, 5);
  auto ecc = [](const Graph& g) {
    auto dist = ShortestPathDistances(g, 0);
    double m = 0.0;
    for (double d : dist) {
      if (d != kInfDist) m = std::max(m, d);
    }
    return m;
  };
  EXPECT_LT(ecc(small_world), ecc(lattice));
}

TEST(GeneratorsTest, RandomizeWeightsRangeAndSymmetry) {
  Graph g = Grid2D(5, 5);
  Graph w = RandomizeWeights(g, 1.0, 3.0, 17);
  EXPECT_EQ(w.num_arcs(), g.num_arcs());
  for (NodeId v = 0; v < w.num_nodes(); ++v) {
    for (const Arc& a : w.OutArcs(v)) {
      EXPECT_GE(a.weight, 1.0);
      EXPECT_LT(a.weight, 3.0);
      // Symmetric: find reverse arc and compare weight.
      bool found = false;
      for (const Arc& b : w.OutArcs(a.head)) {
        if (b.head == v && b.weight == a.weight) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

}  // namespace
}  // namespace hipads
