// Robustness / failure-injection tests: the parsers must reject arbitrary
// corrupted input with a Status (never crash, never return a malformed
// structure), and randomized mutations of valid files must either parse to
// something structurally sound or fail cleanly.

#include <gtest/gtest.h>

#include <string>

#include "ads/builders.h"
#include "ads/hip.h"
#include "ads/serialize.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/random.h"

namespace hipads {
namespace {

std::string RandomGarbage(Rng& rng, size_t len) {
  static const char kAlphabet[] =
      "0123456789 .-\t\nabcdefghijklmnop#%\xff\x01";
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

TEST(FuzzTest, EdgeListParserNeverCrashesOnGarbage) {
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    std::string junk = RandomGarbage(rng, 1 + rng.NextBounded(200));
    auto result = ParseEdgeList(junk, trial % 2 == 0);
    if (result.ok()) {
      // Whatever parsed must be structurally valid.
      const Graph& g = result.value();
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        for (const Arc& a : g.OutArcs(v)) {
          EXPECT_LT(a.head, g.num_nodes());
          EXPECT_GE(a.weight, 0.0);
        }
      }
    }
  }
}

TEST(FuzzTest, AdsParserNeverCrashesOnGarbage) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string junk = RandomGarbage(rng, 1 + rng.NextBounded(200));
    auto result = ParseAdsSet(junk);
    EXPECT_FALSE(result.ok());  // garbage never carries the magic header
  }
}

TEST(FuzzTest, AdsParserSurvivesMutationsOfValidInput) {
  Graph g = ErdosRenyi(30, 90, true, 3);
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(5));
  std::string valid = SerializeAdsSet(set);
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    // Flip a few random bytes (beyond the header so some parse attempts
    // get past the magic line).
    int flips = 1 + static_cast<int>(rng.NextBounded(5));
    for (int f = 0; f < flips; ++f) {
      size_t pos = 14 + rng.NextBounded(mutated.size() - 14);
      mutated[pos] = static_cast<char>('0' + rng.NextBounded(75));
    }
    auto result = ParseAdsSet(mutated);
    if (result.ok()) {
      // Structural sanity of whatever survived.
      const AdsSet& s = result.value();
      EXPECT_GE(s.k, 1u);
      for (const Ads& ads : s.ads) {
        for (const AdsEntry& e : ads.entries()) {
          EXPECT_LT(e.part, s.k);
          EXPECT_GE(e.dist, 0.0);
        }
      }
    }
  }
}

TEST(FuzzTest, TruncationsAlwaysFailCleanly) {
  Graph g = ErdosRenyi(25, 75, true, 7);
  AdsSet set = BuildAdsPrunedDijkstra(g, 3, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(9));
  std::string valid = SerializeAdsSet(set);
  for (size_t len = 0; len < valid.size(); len += 37) {
    auto result = ParseAdsSet(valid.substr(0, len));
    EXPECT_FALSE(result.ok()) << "truncation at " << len << " parsed";
  }
}

TEST(FuzzTest, BinaryHipTruncationsFailCleanlyOrDropTheSection) {
  // v2 image carrying the optional HIP section: any truncation either
  // fails with a Status or — at exactly the base-image length, where the
  // file is a complete hip-less v2 image — parses with the section absent.
  // Never a crash, never a partially adopted section.
  Graph g = ErdosRenyi(25, 75, true, 7);
  FlatAdsSet set = FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, 3, SketchFlavor::kBottomK, RankAssignment::Uniform(9)));
  PrecomputeHipWeights(&set, 1);
  std::string with_hip = SerializeAdsSetBinary(set);
  const size_t base = with_hip.size() - AdsHipSectionBytes(set.TotalEntries());
  for (size_t len = 0; len <= with_hip.size(); ++len) {
    auto result = ParseFlatAdsSetBinary(with_hip.substr(0, len));
    if (len == with_hip.size()) {
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(result.value().has_hip());
    } else if (len == base) {
      ASSERT_TRUE(result.ok());
      EXPECT_FALSE(result.value().has_hip());
    } else {
      EXPECT_FALSE(result.ok()) << "truncation at " << len << " parsed";
    }
  }
}

TEST(FuzzTest, BinaryHipMutationsNeverCrashOrCorruptStructure) {
  Graph g = ErdosRenyi(30, 90, true, 11);
  FlatAdsSet set = FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, 4, SketchFlavor::kBottomK, RankAssignment::Uniform(13)));
  PrecomputeHipWeights(&set, 1);
  std::string valid = SerializeAdsSetBinary(set);
  const size_t base = valid.size() - AdsHipSectionBytes(set.TotalEntries());
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      // Half the flips land inside the HIP section, half anywhere.
      size_t pos = trial % 2 == 0
                       ? base + rng.NextBounded(mutated.size() - base)
                       : rng.NextBounded(mutated.size());
      mutated[pos] = static_cast<char>(mutated[pos] ^
                                       (1u << rng.NextBounded(8)));
    }
    auto result = ParseFlatAdsSetBinary(mutated);
    if (result.ok()) {
      const FlatAdsSet& s = result.value();
      if (s.has_hip()) {
        ASSERT_EQ(s.hip_tau.size(), s.TotalEntries());
        ASSERT_EQ(s.hip_weight.size(), s.TotalEntries());
      }
    }
  }
}

}  // namespace
}  // namespace hipads
