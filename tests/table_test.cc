#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hipads {
namespace {

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.NewRow().Add("x").Add(int64_t{2});
  t.NewRow().Add(1.5, 3).Add(uint64_t{7});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2\n1.5,7\n");
}

TEST(TableTest, TextAlignsColumns) {
  Table t({"col", "x"});
  t.NewRow().Add("longvalue").Add("1");
  std::ostringstream os;
  t.PrintText(os);
  std::string out = os.str();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("longvalue"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, DoublePrecision) {
  Table t({"v"});
  t.NewRow().Add(0.123456789, 3);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "v\n0.123\n");
}

TEST(TableTest, NumRows) {
  Table t({"v"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.NewRow().Add("1");
  t.NewRow().Add("2");
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace hipads
