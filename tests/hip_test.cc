// Tests of the HIP adjusted weights (Section 5): exactness below k,
// unbiasedness for all flavors and rank kinds, monotonicity, and the
// factor-2 variance improvement over basic estimators.

#include "ads/hip.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "ads/ads.h"
#include "ads/flat_ads.h"
#include "sketch/cardinality.h"
#include "util/hash.h"
#include "util/stats.h"

namespace hipads {
namespace {

// ADS of a "stream" of n nodes at distances 0,1,2,...  (Section 5.5: this is
// exactly the graph setting with nodes listed by Dijkstra rank).
Ads StreamAds(uint64_t n, uint32_t k, const RankAssignment& ranks,
              SketchFlavor flavor) {
  std::vector<AdsEntry> candidates;
  for (uint64_t i = 0; i < n; ++i) {
    switch (flavor) {
      case SketchFlavor::kBottomK:
        candidates.push_back(AdsEntry{static_cast<NodeId>(i), 0,
                                      ranks.rank(i), static_cast<double>(i)});
        break;
      case SketchFlavor::kKMins:
        for (uint32_t p = 0; p < k; ++p) {
          candidates.push_back(AdsEntry{static_cast<NodeId>(i), p,
                                        ranks.rank(i, p),
                                        static_cast<double>(i)});
        }
        break;
      case SketchFlavor::kKPartition:
        candidates.push_back(AdsEntry{
            static_cast<NodeId>(i), BucketHash(ranks.seed(), i, k),
            ranks.rank(i), static_cast<double>(i)});
        break;
    }
  }
  if (flavor == SketchFlavor::kBottomK) {
    return Ads::CanonicalBottomK(std::move(candidates), k, ranks.sup());
  }
  // Per-part bottom-1 filters.
  std::vector<AdsEntry> kept;
  for (uint32_t part = 0; part < k; ++part) {
    std::vector<AdsEntry> per;
    for (const AdsEntry& e : candidates) {
      if (e.part == part) per.push_back(e);
    }
    Ads f = Ads::CanonicalBottomK(std::move(per), 1, ranks.sup());
    kept.insert(kept.end(), f.entries().begin(), f.entries().end());
  }
  return Ads(std::move(kept));
}

double HipCardinalityAt(const std::vector<HipEntry>& entries, double d) {
  double sum = 0.0;
  for (const HipEntry& e : entries) {
    if (e.dist <= d) sum += e.weight;
  }
  return sum;
}

TEST(HipTest, FirstKEntriesHaveWeightOne) {
  const uint32_t k = 5;
  auto ranks = RankAssignment::Uniform(3);
  Ads ads = StreamAds(100, k, ranks, SketchFlavor::kBottomK);
  auto hip = ComputeHipWeights(ads, k, SketchFlavor::kBottomK, ranks);
  for (uint32_t i = 0; i < k; ++i) {
    EXPECT_EQ(hip[i].tau, 1.0);
    EXPECT_EQ(hip[i].weight, 1.0);
  }
  // Entries beyond the first k have weight > 1.
  EXPECT_GT(hip[k].weight, 1.0);
}

TEST(HipTest, ExactBelowK) {
  const uint32_t k = 10;
  auto ranks = RankAssignment::Uniform(5);
  Ads ads = StreamAds(7, k, ranks, SketchFlavor::kBottomK);
  auto hip = ComputeHipWeights(ads, k, SketchFlavor::kBottomK, ranks);
  EXPECT_EQ(HipCardinalityAt(hip, 6.0), 7.0);
  EXPECT_EQ(HipCardinalityAt(hip, 2.0), 3.0);
}

TEST(HipTest, WeightsIncreaseWithDistanceBottomK) {
  // Lemma 5.1 remark: adjusted weights are nondecreasing in distance.
  const uint32_t k = 4;
  auto ranks = RankAssignment::Uniform(7);
  Ads ads = StreamAds(500, k, ranks, SketchFlavor::kBottomK);
  auto hip = ComputeHipWeights(ads, k, SketchFlavor::kBottomK, ranks);
  for (size_t i = 1; i < hip.size(); ++i) {
    EXPECT_GE(hip[i].weight, hip[i - 1].weight - 1e-12);
  }
}

TEST(HipTest, TauComputableAndPositive) {
  const uint32_t k = 3;
  auto ranks = RankAssignment::Uniform(9);
  for (SketchFlavor flavor : {SketchFlavor::kBottomK, SketchFlavor::kKMins,
                              SketchFlavor::kKPartition}) {
    Ads ads = StreamAds(200, k, ranks, flavor);
    auto hip = ComputeHipWeights(ads, k, flavor, ranks);
    for (const HipEntry& e : hip) {
      EXPECT_GT(e.tau, 0.0);
      EXPECT_LE(e.tau, 1.0 + 1e-12);
      EXPECT_DOUBLE_EQ(e.weight, 1.0 / e.tau);
    }
  }
}

struct FlavorCase {
  SketchFlavor flavor;
  const char* name;
};

class HipUnbiasednessTest : public ::testing::TestWithParam<FlavorCase> {};

TEST_P(HipUnbiasednessTest, CardinalityEstimateIsUnbiased) {
  const uint32_t k = 8;
  const uint64_t n = 300;
  const uint32_t runs = 2500;
  RunningStat at_n, at_mid;
  for (uint32_t run = 0; run < runs; ++run) {
    auto ranks = RankAssignment::Uniform(HashCombine(999, run));
    Ads ads = StreamAds(n, k, ranks, GetParam().flavor);
    auto hip = ComputeHipWeights(ads, k, GetParam().flavor, ranks);
    at_n.Add(HipCardinalityAt(hip, static_cast<double>(n)));
    at_mid.Add(HipCardinalityAt(hip, static_cast<double>(n / 2)));
  }
  EXPECT_NEAR(at_n.mean() / n, 1.0, 0.02) << GetParam().name;
  EXPECT_NEAR(at_mid.mean() / (n / 2 + 1), 1.0, 0.02) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavors, HipUnbiasednessTest,
    ::testing::Values(FlavorCase{SketchFlavor::kBottomK, "bottom-k"},
                      FlavorCase{SketchFlavor::kKMins, "k-mins"},
                      FlavorCase{SketchFlavor::kKPartition, "k-partition"}),
    [](const ::testing::TestParamInfo<FlavorCase>& test_param) {
      return std::string(test_param.param.name) == "bottom-k" ? "BottomK"
             : std::string(test_param.param.name) == "k-mins" ? "KMins"
                                                              : "KPartition";
    });

TEST(HipTest, CvWithinTheoreticalBound) {
  // Theorem 5.1: CV <= 1/sqrt(2(k-1)).
  const uint32_t k = 8;
  const uint64_t n = 2000;
  const uint32_t runs = 2500;
  ErrorStats err;
  for (uint32_t run = 0; run < runs; ++run) {
    auto ranks = RankAssignment::Uniform(HashCombine(1234, run));
    Ads ads = StreamAds(n, k, ranks, SketchFlavor::kBottomK);
    auto hip = ComputeHipWeights(ads, k, SketchFlavor::kBottomK, ranks);
    err.Add(HipCardinalityAt(hip, static_cast<double>(n)),
            static_cast<double>(n));
  }
  EXPECT_LT(err.nrmse(), HipCv(k) * 1.08);  // bound + Monte-Carlo slack
  EXPECT_GT(err.nrmse(), HipCvLowerBound(k) * 0.9);  // Theorem 5.2
}

TEST(HipTest, FactorTwoVarianceImprovementOverBasic) {
  // Section 5.5: HIP error is ~ sqrt(2) smaller than the basic bottom-k
  // estimator on the same sketches.
  const uint32_t k = 10;
  const uint64_t n = 3000;
  const uint32_t runs = 2500;
  ErrorStats hip_err, basic_err;
  for (uint32_t run = 0; run < runs; ++run) {
    auto ranks = RankAssignment::Uniform(HashCombine(777, run));
    Ads ads = StreamAds(n, k, ranks, SketchFlavor::kBottomK);
    auto hip = ComputeHipWeights(ads, k, SketchFlavor::kBottomK, ranks);
    hip_err.Add(HipCardinalityAt(hip, static_cast<double>(n)),
                static_cast<double>(n));
    basic_err.Add(BottomKBasicEstimate(ads.BottomKAt(
                      static_cast<double>(n), k)),
                  static_cast<double>(n));
  }
  double ratio = basic_err.nrmse() / hip_err.nrmse();
  EXPECT_GT(ratio, 1.25);  // sqrt(2) ~ 1.41 with slack
  EXPECT_LT(ratio, 1.65);
}

TEST(HipTest, BaseBRanksStayUnbiasedWithHigherVariance) {
  // Section 5.6: base-b HIP remains unbiased; CV grows like
  // sqrt((1+b)/2) relative to full ranks.
  const uint32_t k = 8;
  const uint64_t n = 2000;
  const uint32_t runs = 2500;
  const double base = 2.0;
  RunningStat mean;
  ErrorStats err_full, err_b;
  for (uint32_t run = 0; run < runs; ++run) {
    uint64_t seed = HashCombine(555, run);
    auto full = RankAssignment::Uniform(seed);
    auto bb = RankAssignment::BaseB(seed, base);
    Ads ads_f = StreamAds(n, k, full, SketchFlavor::kBottomK);
    Ads ads_b = StreamAds(n, k, bb, SketchFlavor::kBottomK);
    auto hip_f = ComputeHipWeights(ads_f, k, SketchFlavor::kBottomK, full);
    auto hip_b = ComputeHipWeights(ads_b, k, SketchFlavor::kBottomK, bb);
    double est_b = HipCardinalityAt(hip_b, static_cast<double>(n));
    mean.Add(est_b);
    err_full.Add(HipCardinalityAt(hip_f, static_cast<double>(n)),
                 static_cast<double>(n));
    err_b.Add(est_b, static_cast<double>(n));
  }
  EXPECT_NEAR(mean.mean() / n, 1.0, 0.02);
  double expected_ratio = std::sqrt((1.0 + base) / 2.0);
  EXPECT_NEAR(err_b.nrmse() / err_full.nrmse(), expected_ratio, 0.22);
}

TEST(HipTest, ExponentialRanksEstimateNeighborhoodWeight) {
  // Section 9: with beta-weighted exponential ranks, sum of
  // beta(j) * a_j estimates the neighborhood weight sum beta(j).
  const uint32_t k = 8;
  const uint64_t n = 500;
  const uint32_t runs = 2000;
  auto beta = [](uint64_t v) { return v % 3 == 0 ? 3.0 : 1.0; };
  double true_weight = 0.0;
  for (uint64_t i = 0; i < n; ++i) true_weight += beta(i);
  RunningStat est;
  for (uint32_t run = 0; run < runs; ++run) {
    auto ranks =
        RankAssignment::Exponential(HashCombine(4242, run), beta);
    Ads ads = StreamAds(n, k, ranks, SketchFlavor::kBottomK);
    auto hip = ComputeHipWeights(ads, k, SketchFlavor::kBottomK, ranks);
    double sum = 0.0;
    for (const HipEntry& e : hip) sum += e.weight * beta(e.node);
    est.Add(sum);
  }
  EXPECT_NEAR(est.mean() / true_weight, 1.0, 0.02);
}

TEST(HipTest, PriorityRanksEstimateNeighborhoodWeight) {
  // Section 9 alternative: Sequential Poisson (priority) ranks
  // r = U/beta. HIP stays unbiased with P(r < tau) = min(1, beta*tau).
  const uint32_t k = 8;
  const uint64_t n = 500;
  const uint32_t runs = 2000;
  auto beta = [](uint64_t v) { return v % 4 == 0 ? 4.0 : 1.0; };
  double true_weight = 0.0;
  for (uint64_t i = 0; i < n; ++i) true_weight += beta(i);
  RunningStat card, weight;
  for (uint32_t run = 0; run < runs; ++run) {
    auto ranks = RankAssignment::Priority(HashCombine(5151, run), beta);
    Ads ads = StreamAds(n, k, ranks, SketchFlavor::kBottomK);
    auto hip = ComputeHipWeights(ads, k, SketchFlavor::kBottomK, ranks);
    double c = 0.0, w = 0.0;
    for (const HipEntry& e : hip) {
      c += e.weight;
      w += e.weight * beta(e.node);
    }
    card.Add(c);
    weight.Add(w);
  }
  EXPECT_NEAR(card.mean() / n, 1.0, 0.02);
  EXPECT_NEAR(weight.mean() / true_weight, 1.0, 0.02);
}

TEST(HipTest, PriorityRanksKPartitionUnbiased) {
  const uint32_t k = 8;
  const uint64_t n = 300;
  const uint32_t runs = 2000;
  auto beta = [](uint64_t v) { return v % 3 == 0 ? 2.0 : 1.0; };
  RunningStat card;
  for (uint32_t run = 0; run < runs; ++run) {
    auto ranks = RankAssignment::Priority(HashCombine(6161, run), beta);
    Ads ads = StreamAds(n, k, ranks, SketchFlavor::kKPartition);
    auto hip = ComputeHipWeights(ads, k, SketchFlavor::kKPartition, ranks);
    card.Add(HipCardinalityAt(hip, static_cast<double>(n)));
  }
  EXPECT_NEAR(card.mean() / n, 1.0, 0.025);
}

TEST(HipTest, ExponentialRanksFavorHeavyNodes) {
  // Heavier beta => higher inclusion probability.
  const uint32_t k = 4;
  const uint64_t n = 400;
  auto beta = [](uint64_t v) { return v % 2 == 0 ? 10.0 : 0.1; };
  uint32_t heavy = 0, light = 0;
  for (uint32_t run = 0; run < 200; ++run) {
    auto ranks = RankAssignment::Exponential(HashCombine(31337, run), beta);
    Ads ads = StreamAds(n, k, ranks, SketchFlavor::kBottomK);
    for (const AdsEntry& e : ads.entries()) {
      (e.node % 2 == 0 ? heavy : light)++;
    }
  }
  EXPECT_GT(heavy, 3 * light);
}

TEST(HipTest, EmptyAdsYieldsNoEntries) {
  Ads empty;
  auto ranks = RankAssignment::Uniform(1);
  EXPECT_TRUE(
      ComputeHipWeights(empty, 4, SketchFlavor::kBottomK, ranks).empty());
}

// --- Scratch and precomputed (aligned) variants: all bitwise identical ---

// Field-by-field bitwise equality (memcmp over whole HipEntry records would
// also compare the struct's padding bytes, which are indeterminate).
bool SameHipEntries(std::span<const HipEntry> a, std::span<const HipEntry> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].node != b[i].node ||
        std::bit_cast<uint64_t>(a[i].dist) !=
            std::bit_cast<uint64_t>(b[i].dist) ||
        std::bit_cast<uint64_t>(a[i].tau) !=
            std::bit_cast<uint64_t>(b[i].tau) ||
        std::bit_cast<uint64_t>(a[i].weight) !=
            std::bit_cast<uint64_t>(b[i].weight)) {
      return false;
    }
  }
  return true;
}

TEST(HipVariantsTest, ScratchScanBitwiseEqualsAllocatingScan) {
  const uint32_t k = 6;
  HipScratch scratch;  // deliberately shared across flavors and nodes
  for (SketchFlavor flavor : {SketchFlavor::kBottomK, SketchFlavor::kKMins,
                              SketchFlavor::kKPartition}) {
    for (uint64_t n : {0ull, 3ull, 50ull, 400ull}) {
      auto ranks = RankAssignment::Uniform(HashCombine(71, n));
      Ads ads = StreamAds(n, k, ranks, flavor);
      auto owned = ComputeHipWeights(ads, k, flavor, ranks);
      auto borrowed =
          ComputeHipWeightsInto(ads.view(), k, flavor, ranks, &scratch);
      EXPECT_TRUE(SameHipEntries(owned, borrowed))
          << "flavor " << static_cast<int>(flavor) << " n " << n;
    }
  }
}

TEST(HipVariantsTest, AlignedLayoutReproducesGroupedScan) {
  // Skipping tau == 0 slots of the aligned arrays must reproduce the
  // grouped HipEntry sequence bitwise — including for k-mins, where a node
  // sketched under several permutations spans a same-(dist, node) run that
  // carries its weight at the first member and zeros at the rest.
  const uint32_t k = 5;
  HipScratch scratch;
  for (SketchFlavor flavor : {SketchFlavor::kBottomK, SketchFlavor::kKMins,
                              SketchFlavor::kKPartition}) {
    auto ranks = RankAssignment::Uniform(17);
    Ads ads = StreamAds(300, k, ranks, flavor);
    auto grouped = ComputeHipWeights(ads, k, flavor, ranks);
    std::vector<double> tau(ads.size()), weight(ads.size());
    ComputeHipWeightsAligned(ads.view(), k, flavor, ranks, &scratch,
                             tau.data(), weight.data());
    std::vector<HipEntry> rebuilt;
    for (size_t i = 0; i < ads.size(); ++i) {
      if (tau[i] == 0.0) {
        EXPECT_EQ(weight[i], 0.0);
        continue;
      }
      rebuilt.push_back(HipEntry{ads.entries()[i].node, ads.entries()[i].dist,
                                 tau[i], weight[i]});
    }
    EXPECT_TRUE(SameHipEntries(grouped, rebuilt))
        << "flavor " << static_cast<int>(flavor);
    if (flavor == SketchFlavor::kKMins) {
      // The zero-slot convention must actually trigger: a 300-node k-mins
      // stream has nodes sketched under more than one permutation.
      EXPECT_LT(rebuilt.size(), ads.size());
    }
  }
}

TEST(HipVariantsTest, PrecomputeMatchesFreshScansForAnyThreadCount) {
  const uint32_t k = 4;
  auto ranks = RankAssignment::Uniform(23);
  for (SketchFlavor flavor : {SketchFlavor::kBottomK, SketchFlavor::kKMins,
                              SketchFlavor::kKPartition}) {
    FlatAdsSet set;
    set.flavor = flavor;
    set.k = k;
    set.ranks = ranks;
    for (uint64_t n : {40ull, 0ull, 120ull, 7ull}) {
      Ads ads = StreamAds(n, k, ranks, flavor);
      set.AppendNode(std::vector<AdsEntry>(ads.entries().begin(),
                                           ads.entries().end()));
    }

    FlatAdsSet single = set, multi = set;
    PrecomputeHipWeights(&single, 1);
    PrecomputeHipWeights(&multi, 4);
    ASSERT_EQ(single.hip_tau.size(), set.entries.size());
    ASSERT_EQ(single.hip_weight.size(), set.entries.size());
    EXPECT_EQ(single.hip_tau, multi.hip_tau);
    EXPECT_EQ(single.hip_weight, multi.hip_weight);

    HipScratch scratch;
    for (NodeId v = 0; v < set.num_nodes(); ++v) {
      const size_t sz = set.of(v).size();
      std::vector<double> tau(sz), weight(sz);
      ComputeHipWeightsAligned(set.of(v), k, flavor, ranks, &scratch,
                               tau.data(), weight.data());
      const uint64_t off = set.offsets[v];
      for (size_t i = 0; i < sz; ++i) {
        EXPECT_EQ(single.hip_tau[off + i], tau[i]) << "node " << v;
        EXPECT_EQ(single.hip_weight[off + i], weight[i]) << "node " << v;
      }
    }
  }
}

// --- Appendix A: HIP weights for the modified (no tie breaking) ADS ---

TEST(ModifiedHipTest, KthSmallestMemberCarriesZeroWeight) {
  // One distance group of 6 with k=3: all of the 3 smallest are kept, and
  // the one holding the ball's kth smallest rank is unsampled (weight 0).
  const uint32_t k = 3;
  std::vector<AdsEntry> cands;
  for (uint32_t i = 0; i < 6; ++i) {
    cands.push_back(AdsEntry{i, 0, UnitHash(21, i), 1.0});
  }
  Ads ads = Ads::ModifiedBottomK(cands, k);
  ASSERT_EQ(ads.size(), 3u);
  auto hip = ComputeModifiedHipWeights(ads, k);
  int zero_weights = 0;
  double max_rank = 0.0;
  for (const AdsEntry& e : ads.entries()) max_rank = std::max(max_rank, e.rank);
  for (size_t i = 0; i < hip.size(); ++i) {
    if (hip[i].weight == 0.0) {
      ++zero_weights;
      EXPECT_EQ(ads.entries()[i].rank, max_rank);
    } else {
      EXPECT_DOUBLE_EQ(hip[i].weight, 1.0 / hip[i].tau);
    }
  }
  EXPECT_EQ(zero_weights, 1);
}

TEST(ModifiedHipTest, UnbiasedWithRepeatedDistances) {
  // Stream of n nodes where distances repeat in groups of 7 — the setting
  // the modified ADS is designed for.
  const uint32_t k = 8;
  const uint64_t n = 700;
  const uint32_t runs = 3000;
  RunningStat est;
  for (uint32_t run = 0; run < runs; ++run) {
    std::vector<AdsEntry> cands;
    for (uint64_t i = 0; i < n; ++i) {
      cands.push_back(AdsEntry{static_cast<NodeId>(i), 0,
                               UnitHash(HashCombine(33, run), i),
                               static_cast<double>(i / 7)});
    }
    Ads ads = Ads::ModifiedBottomK(std::move(cands), k);
    double sum = 0.0;
    for (const HipEntry& e : ComputeModifiedHipWeights(ads, k)) {
      sum += e.weight;
    }
    est.Add(sum);
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.02);
}

TEST(ModifiedHipTest, CvWithinBasicBound) {
  // Appendix A: the modified-ADS HIP estimator has CV at most 1/sqrt(k-2).
  const uint32_t k = 8;
  const uint64_t n = 1000;
  const uint32_t runs = 2500;
  ErrorStats err;
  for (uint32_t run = 0; run < runs; ++run) {
    std::vector<AdsEntry> cands;
    for (uint64_t i = 0; i < n; ++i) {
      cands.push_back(AdsEntry{static_cast<NodeId>(i), 0,
                               UnitHash(HashCombine(44, run), i),
                               static_cast<double>(i / 5)});
    }
    Ads ads = Ads::ModifiedBottomK(std::move(cands), k);
    double sum = 0.0;
    for (const HipEntry& e : ComputeModifiedHipWeights(ads, k)) {
      sum += e.weight;
    }
    err.Add(sum, static_cast<double>(n));
  }
  EXPECT_LT(err.nrmse(), BasicCv(k) * 1.08);
}

TEST(ModifiedHipTest, SmallerSketchThanTieBroken) {
  // The point of the modified ADS: fewer entries when distances repeat.
  const uint32_t k = 4;
  std::vector<AdsEntry> cands;
  for (uint64_t i = 0; i < 500; ++i) {
    cands.push_back(AdsEntry{static_cast<NodeId>(i), 0, UnitHash(55, i),
                             static_cast<double>(i / 25)});
  }
  Ads modified = Ads::ModifiedBottomK(cands, k);
  Ads full = Ads::CanonicalBottomK(cands, k);
  EXPECT_LT(modified.size(), full.size());
}

}  // namespace
}  // namespace hipads
