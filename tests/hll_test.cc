#include "stream/hll.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace hipads {
namespace {

TEST(HllTest, EmptyEstimatesZeroish) {
  HyperLogLog hll(16, 1);
  // All registers zero: linear counting reports 0.
  EXPECT_EQ(hll.NumZeroRegisters(), 16u);
  EXPECT_EQ(hll.Estimate(), 0.0);
}

TEST(HllTest, DuplicatesDoNotChangeSketch) {
  HyperLogLog hll(16, 2);
  for (int rep = 0; rep < 3; ++rep) {
    for (uint64_t e = 0; e < 100; ++e) hll.Add(e);
  }
  HyperLogLog once(16, 2);
  for (uint64_t e = 0; e < 100; ++e) once.Add(e);
  EXPECT_EQ(hll.registers(), once.registers());
}

TEST(HllTest, SmallRangeLinearCountingAccurate) {
  const uint32_t k = 64;
  RunningStat est;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    HyperLogLog hll(k, seed);
    for (uint64_t e = 0; e < 30; ++e) hll.Add(e);
    est.Add(hll.Estimate());
  }
  EXPECT_NEAR(est.mean() / 30.0, 1.0, 0.05);
}

TEST(HllTest, LargeRangeAccuracyMatchesTheory) {
  const uint32_t k = 64;
  const uint64_t n = 100000;
  ErrorStats err;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    HyperLogLog hll(k, seed);
    for (uint64_t e = 0; e < n; ++e) hll.Add(e);
    err.Add(hll.Estimate(), static_cast<double>(n));
  }
  // Published std error ~1.04/sqrt(64) = 0.13.
  EXPECT_NEAR(err.nrmse(), 1.04 / std::sqrt(64.0), 0.05);
  EXPECT_NEAR(err.mean_bias(), 0.0, 0.05);
}

TEST(HllTest, RawEstimateBiasedForSmallN) {
  const uint32_t k = 16;
  RunningStat raw;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    HyperLogLog hll(k, seed);
    for (uint64_t e = 0; e < 10; ++e) hll.Add(e);
    raw.Add(hll.RawEstimate());
  }
  // Raw estimate is known to overshoot badly at n << k.
  EXPECT_GT(raw.mean() / 10.0, 1.3);
}

TEST(HllTest, MergeEqualsUnionSketch) {
  HyperLogLog a(32, 7), b(32, 7), u(32, 7);
  for (uint64_t e = 0; e < 500; ++e) {
    (e % 2 ? a : b).Add(e);
    u.Add(e);
  }
  a.Merge(b);
  EXPECT_EQ(a.registers(), u.registers());
}

TEST(HllTest, RegistersSaturateAtCap) {
  HyperLogLog hll(4, 3, /*register_cap=*/5);
  for (uint64_t e = 0; e < 100000; ++e) hll.Add(e);
  for (uint8_t r : hll.registers()) EXPECT_LE(r, 5);
}

TEST(HllTest, AlphaConstants) {
  EXPECT_DOUBLE_EQ(HyperLogLog::Alpha(16), 0.673);
  EXPECT_DOUBLE_EQ(HyperLogLog::Alpha(32), 0.697);
  EXPECT_DOUBLE_EQ(HyperLogLog::Alpha(64), 0.709);
  EXPECT_NEAR(HyperLogLog::Alpha(1024), 0.7213 / (1.0 + 1.079 / 1024), 1e-9);
}

TEST(HllTest, LargeRawEstimatesStayFiniteAndUncorrected) {
  // Regression: the classic 2^32 large-range correction assumes a 32-bit
  // hash; ranks here come from the 64-bit UnitHash, so applying it inflated
  // estimates past 2^32/30 and returned negative/NaN values past 2^32.
  // Pin: for any register state whose raw estimate is large, Estimate()
  // returns exactly the raw estimate — finite and positive.
  for (uint8_t fill : {uint8_t{25}, uint8_t{30}, uint8_t{45}, uint8_t{60}}) {
    const uint32_t k = 16;
    auto hll = HyperLogLog::FromRegisters(
        k, 1, std::vector<uint8_t>(k, fill), /*register_cap=*/63);
    double raw = hll.RawEstimate();
    ASSERT_GT(raw, 2.5 * k);
    EXPECT_TRUE(std::isfinite(hll.Estimate())) << "fill=" << int(fill);
    EXPECT_GT(hll.Estimate(), 0.0) << "fill=" << int(fill);
    EXPECT_DOUBLE_EQ(hll.Estimate(), raw) << "fill=" << int(fill);
  }
  // fill=45 puts raw well past 2^32: the old correction returned NaN here.
  auto past_2_32 = HyperLogLog::FromRegisters(
      16, 1, std::vector<uint8_t>(16, 45), /*register_cap=*/63);
  EXPECT_GT(past_2_32.RawEstimate(), 4294967296.0);
}

TEST(HllTest, FromRegistersMatchesAddedSketch) {
  HyperLogLog added(16, 9);
  for (uint64_t e = 0; e < 1000; ++e) added.Add(e);
  auto rebuilt = HyperLogLog::FromRegisters(16, 9, added.registers());
  EXPECT_EQ(rebuilt.registers(), added.registers());
  EXPECT_DOUBLE_EQ(rebuilt.Estimate(), added.Estimate());
}

TEST(HllTest, AddReturnsWhetherRegisterGrew) {
  HyperLogLog hll(8, 11);
  bool grew = hll.Add(42);
  EXPECT_TRUE(grew);           // first element always sets a register
  EXPECT_FALSE(hll.Add(42));   // duplicate
}

}  // namespace
}  // namespace hipads
