// Property-based tests: structural invariants of ADSs and estimators that
// must hold for every graph family, seed, flavor and k. Parameterized
// sweeps play the role of a property-testing harness with reproducible
// cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "ads/backend.h"
#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/hip.h"
#include "ads/shard.h"
#include "graph/generators.h"
#include "graph/traversal.h"

namespace hipads {
namespace {

struct PropertyCase {
  int graph_kind;  // 0 ER, 1 BA, 2 grid, 3 directed RMAT, 4 weighted ER
  uint32_t k;
  uint64_t seed;
};

// Unique scratch dir per test; removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string file(const std::string& name) const {
    return (std::filesystem::path(path) / name).string();
  }
  std::string path;
};

Graph MakeGraph(const PropertyCase& c) {
  switch (c.graph_kind) {
    case 0:
      return ErdosRenyi(70, 180, true, c.seed + 100);
    case 1:
      return BarabasiAlbert(70, 2, c.seed + 200);
    case 2:
      return Grid2D(8, 9);
    case 3:
      return Rmat(6, 3, c.seed + 300, false);
    default:
      return RandomizeWeights(ErdosRenyi(60, 160, true, c.seed + 400), 0.3,
                              2.5, c.seed + 1);
  }
}

class AdsPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AdsPropertyTest, MembershipRuleHolds) {
  // Eq. (4): u in ADS(v) iff r(u) < kth smallest rank among nodes strictly
  // closer to v (with the (dist, rank) tie break).
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet set = BuildAdsPrunedDijkstra(g, c.k, SketchFlavor::kBottomK, ranks);
  for (NodeId v = 0; v < g.num_nodes(); v += 7) {
    auto dist = ShortestPathDistances(g, v);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] == kInfDist) {
        EXPECT_FALSE(set.of(v).Contains(u));
        continue;
      }
      BottomKSketch closer(c.k);
      for (NodeId w = 0; w < g.num_nodes(); ++w) {
        if (dist[w] == kInfDist) continue;
        bool w_closer =
            dist[w] < dist[u] || (dist[w] == dist[u] && w < u);
        if (w_closer && w != u) closer.Update(ranks.rank(w));
      }
      EXPECT_EQ(set.of(v).Contains(u), ranks.rank(u) < closer.Threshold())
          << "v=" << v << " u=" << u;
    }
  }
}

TEST_P(AdsPropertyTest, EntriesSortedAndDistancesCorrect) {
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet set = BuildAdsPrunedDijkstra(g, c.k, SketchFlavor::kBottomK, ranks);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto dist = ShortestPathDistances(g, v);
    double prev = -1.0;
    for (const AdsEntry& e : set.of(v).entries()) {
      EXPECT_GE(e.dist, prev);
      prev = e.dist;
      EXPECT_DOUBLE_EQ(e.dist, dist[e.node]);
      EXPECT_DOUBLE_EQ(e.rank, ranks.rank(e.node));
    }
  }
}

TEST_P(AdsPropertyTest, KClosestAlwaysIncluded) {
  // The k nodes closest to v (under the tie-broken order) are always in
  // ADS(v).
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet set = BuildAdsPrunedDijkstra(g, c.k, SketchFlavor::kBottomK, ranks);
  for (NodeId v = 0; v < g.num_nodes(); v += 11) {
    auto dist = ShortestPathDistances(g, v);
    std::vector<NodeId> reachable;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] != kInfDist) reachable.push_back(u);
    }
    std::sort(reachable.begin(), reachable.end(), [&](NodeId a, NodeId b) {
      if (dist[a] != dist[b]) return dist[a] < dist[b];
      return a < b;
    });
    size_t take = std::min<size_t>(c.k, reachable.size());
    for (size_t i = 0; i < take; ++i) {
      EXPECT_TRUE(set.of(v).Contains(reachable[i]))
          << "v=" << v << " missing " << i << "-th closest";
    }
  }
}

TEST_P(AdsPropertyTest, HipWeightsSumBelowKIsExact) {
  // For d covering fewer than k nodes, the HIP estimate equals the exact
  // count — on any graph.
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet set = BuildAdsPrunedDijkstra(g, c.k, SketchFlavor::kBottomK, ranks);
  for (NodeId v = 0; v < g.num_nodes(); v += 13) {
    auto dist = ShortestPathDistances(g, v);
    std::vector<double> finite;
    for (double d : dist) {
      if (d != kInfDist) finite.push_back(d);
    }
    std::sort(finite.begin(), finite.end());
    if (finite.size() < 2) continue;
    size_t take = std::min<size_t>(c.k, finite.size()) - 1;
    double d_small = finite[take > 0 ? take - 1 : 0];
    uint64_t exact = 0;
    for (double d : finite) {
      if (d <= d_small) ++exact;
    }
    if (exact > c.k) continue;  // ties can push past k; skip
    HipEstimator hip(set.of(v), c.k, SketchFlavor::kBottomK, ranks);
    EXPECT_DOUBLE_EQ(hip.NeighborhoodCardinality(d_small),
                     static_cast<double>(exact))
        << "v=" << v;
  }
}

TEST_P(AdsPropertyTest, MinHashExtractionMatchesDirectSketch) {
  // The bottom-k sketch extracted from the ADS at distance d equals the
  // sketch built directly from N_d(v).
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet set = BuildAdsPrunedDijkstra(g, c.k, SketchFlavor::kBottomK, ranks);
  for (NodeId v = 0; v < g.num_nodes(); v += 17) {
    auto dist = ShortestPathDistances(g, v);
    for (double d : {1.0, 2.0, 4.0, 1e9}) {
      BottomKSketch direct(c.k);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (dist[u] <= d) direct.Update(ranks.rank(u));
      }
      BottomKSketch extracted = set.of(v).BottomKAt(d, c.k);
      EXPECT_EQ(extracted.ranks(), direct.ranks())
          << "v=" << v << " d=" << d;
    }
  }
}

TEST_P(AdsPropertyTest, SizeEstimatorMonotoneInDistance) {
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet set = BuildAdsPrunedDijkstra(g, c.k, SketchFlavor::kBottomK, ranks);
  for (NodeId v = 0; v < g.num_nodes(); v += 19) {
    double prev = -1.0;
    for (double d = 0.0; d < 12.0; d += 0.5) {
      double e = AdsSizeCardinality(set.of(v), d, c.k);
      EXPECT_GE(e, prev);
      prev = e;
    }
  }
}

TEST_P(AdsPropertyTest, KMinsMembershipRuleHolds) {
  // k-mins ADS: node u is in ADS(v) under permutation p iff r_p(u) beats
  // the minimum r_p over nodes lex-closer to v.
  const PropertyCase& c = GetParam();
  if (c.k > 8) GTEST_SKIP() << "k-mins sweep capped for test time";
  Graph g = MakeGraph(c);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet set = BuildAdsPrunedDijkstra(g, c.k, SketchFlavor::kKMins, ranks);
  for (NodeId v = 0; v < g.num_nodes(); v += 23) {
    auto dist = ShortestPathDistances(g, v);
    // Collect per-part membership.
    std::vector<std::vector<bool>> member(
        c.k, std::vector<bool>(g.num_nodes(), false));
    for (const AdsEntry& e : set.of(v).entries()) {
      member[e.part][e.node] = true;
    }
    for (uint32_t p = 0; p < c.k; ++p) {
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (dist[u] == kInfDist) {
          EXPECT_FALSE(member[p][u]);
          continue;
        }
        double closest = 2.0;  // above sup
        for (NodeId w = 0; w < g.num_nodes(); ++w) {
          if (w == u || dist[w] == kInfDist) continue;
          bool w_closer =
              dist[w] < dist[u] || (dist[w] == dist[u] && w < u);
          if (w_closer) closest = std::min(closest, ranks.rank(w, p));
        }
        EXPECT_EQ(member[p][u], ranks.rank(u, p) < closest)
            << "v=" << v << " u=" << u << " p=" << p;
      }
    }
  }
}

TEST_P(AdsPropertyTest, KPartitionMembershipRuleHolds) {
  // k-partition ADS: u in ADS(v) iff r(u) beats the minimum rank over
  // lex-closer nodes of u's own bucket.
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet set =
      BuildAdsPrunedDijkstra(g, c.k, SketchFlavor::kKPartition, ranks);
  for (NodeId v = 0; v < g.num_nodes(); v += 29) {
    auto dist = ShortestPathDistances(g, v);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] == kInfDist) {
        EXPECT_FALSE(set.of(v).Contains(u));
        continue;
      }
      uint32_t bucket = BucketHash(ranks.seed(), u, c.k);
      double closest = 2.0;
      for (NodeId w = 0; w < g.num_nodes(); ++w) {
        if (w == u || dist[w] == kInfDist) continue;
        if (BucketHash(ranks.seed(), w, c.k) != bucket) continue;
        bool w_closer = dist[w] < dist[u] || (dist[w] == dist[u] && w < u);
        if (w_closer) closest = std::min(closest, ranks.rank(w));
      }
      EXPECT_EQ(set.of(v).Contains(u), ranks.rank(u) < closest)
          << "v=" << v << " u=" << u;
    }
  }
}

TEST_P(AdsPropertyTest, SelfLoopsAndParallelArcsAreHarmless) {
  // Adding self loops and duplicated arcs must not change any ADS.
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  std::vector<Edge> edges = g.ToEdgeList();
  size_t orig = edges.size();
  for (NodeId v = 0; v < g.num_nodes(); v += 5) {
    edges.push_back(Edge{v, v, 1.0});  // self loop
  }
  for (size_t i = 0; i < orig; i += 7) {
    edges.push_back(edges[i]);  // parallel arc
  }
  Graph noisy(g.num_nodes(), edges, /*undirected=*/false);
  // Rebuild the original as directed arcs too so both are comparable.
  Graph plain(g.num_nodes(), g.ToEdgeList(), /*undirected=*/false);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet a = BuildAdsPrunedDijkstra(plain, c.k, SketchFlavor::kBottomK,
                                    ranks);
  AdsSet b = BuildAdsPrunedDijkstra(noisy, c.k, SketchFlavor::kBottomK,
                                    ranks);
  ASSERT_EQ(a.TotalEntries(), b.TotalEntries());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(a.of(v).size(), b.of(v).size()) << "node " << v;
  }
}

TEST_P(AdsPropertyTest, IsolatedNodesSketchOnlyThemselves) {
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  // Append 3 isolated nodes.
  Graph with_isolated(g.num_nodes() + 3, g.ToEdgeList(),
                      /*undirected=*/false);
  auto ranks = RankAssignment::Uniform(c.seed);
  AdsSet set = BuildAdsPrunedDijkstra(with_isolated, c.k,
                                      SketchFlavor::kBottomK, ranks);
  for (NodeId v = g.num_nodes(); v < with_isolated.num_nodes(); ++v) {
    ASSERT_EQ(set.of(v).size(), 1u);
    EXPECT_EQ(set.of(v).entries()[0].node, v);
  }
}

TEST_P(AdsPropertyTest, ResidentHipSurvivesStorageBitwiseForEveryRankKind) {
  // The storage contract of the precomputed HIP section, across random
  // sketches and every servable rank kind (including the weighted
  // exponential/priority ranks, whose beta must round-trip consistently):
  // weights written once, mmapped back and served — from a plain file and
  // from a sharded directory with a hip-less shard mixed in — are bitwise
  // equal to a fresh per-node scan of the same sketch.
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  auto beta = [](uint64_t v) { return 0.5 + static_cast<double>(v % 5) * 0.4; };
  struct RankCase {
    const char* name;
    RankAssignment ranks;
  };
  const RankCase rank_cases[] = {
      {"uniform", RankAssignment::Uniform(c.seed)},
      {"exponential", RankAssignment::Exponential(c.seed, beta)},
      {"priority", RankAssignment::Priority(c.seed, beta)},
  };
  for (const RankCase& rc : rank_cases) {
    FlatAdsSet set = FlatAdsSet::FromAdsSet(
        BuildAdsPrunedDijkstra(g, c.k, SketchFlavor::kBottomK, rc.ranks));
    PrecomputeHipWeights(&set, 2);

    ScratchDir dir(std::string("hipads_property_test_hip_") + rc.name + "_" +
                   std::to_string(c.seed) + "_" + std::to_string(c.graph_kind));
    std::string path = dir.file("set.ads2");
    std::string shard_dir = dir.file("shards");
    ASSERT_TRUE(WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2).ok());
    ASSERT_TRUE(WriteShardedAdsSet(set, shard_dir, 3).ok());
    // Strip one shard's section: the mixed set must still serve the rest.
    std::string victim =
        (std::filesystem::path(shard_dir) / "shard-00002.ads2").string();
    auto loaded = ReadFlatAdsSetFile(victim, beta);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    loaded.value().hip_tau.clear();
    loaded.value().hip_weight.clear();
    ASSERT_TRUE(
        WriteAdsSetFile(loaded.value(), victim, AdsFileFormat::kBinaryV2)
            .ok());

    auto mapped = MmapAdsSet::Open(path, beta);
    ASSERT_TRUE(mapped.ok()) << rc.name << ": " << mapped.status().ToString();
    ASSERT_TRUE(mapped.value().HipResident()) << rc.name;
    ShardedOptions options;
    options.beta = beta;
    options.max_resident = 2;
    options.use_mmap = true;
    auto sharded = ShardedAdsSet::Open(shard_dir, options);
    ASSERT_TRUE(sharded.ok()) << rc.name << ": "
                              << sharded.status().ToString();
    EXPECT_FALSE(sharded.value().HipResident()) << rc.name;  // mixed

    HipScratch scratch;
    std::vector<double> tau, weight;
    for (NodeId v = 0; v < set.num_nodes(); ++v) {
      AdsView ads = set.of(v);
      tau.assign(ads.size(), -1.0);
      weight.assign(ads.size(), -1.0);
      ComputeHipWeightsAligned(ads, c.k, SketchFlavor::kBottomK, rc.ranks,
                               &scratch, tau.data(), weight.data());
      auto from_map = mapped.value().HipOf(v);
      ASSERT_TRUE(from_map.ok());
      ASSERT_TRUE(from_map.value().present()) << rc.name << " v=" << v;
      auto from_shards = sharded.value().HipOf(v);
      ASSERT_TRUE(from_shards.ok());
      const bool stripped = sharded.value().ShardOf(v) == 2;
      EXPECT_EQ(from_shards.value().present(), !stripped)
          << rc.name << " v=" << v;
      for (size_t i = 0; i < ads.size(); ++i) {
        EXPECT_EQ(from_map.value().tau[i], tau[i])
            << rc.name << " v=" << v << " i=" << i;
        EXPECT_EQ(from_map.value().weight[i], weight[i])
            << rc.name << " v=" << v << " i=" << i;
        if (!stripped) {
          EXPECT_EQ(from_shards.value().tau[i], tau[i])
              << rc.name << " v=" << v << " i=" << i;
          EXPECT_EQ(from_shards.value().weight[i], weight[i])
              << rc.name << " v=" << v << " i=" << i;
        }
      }
    }
  }
}

std::string PropertyCaseName(
    const ::testing::TestParamInfo<PropertyCase>& info) {
  static const char* const kKinds[] = {"ER", "BA", "Grid", "Rmat",
                                       "WeightedER"};
  return std::string(kKinds[info.param.graph_kind]) + "_k" +
         std::to_string(info.param.k) + "_s" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdsPropertyTest,
    ::testing::Values(PropertyCase{0, 1, 1}, PropertyCase{0, 4, 2},
                      PropertyCase{1, 2, 3}, PropertyCase{1, 8, 4},
                      PropertyCase{2, 3, 5}, PropertyCase{3, 4, 6},
                      PropertyCase{4, 2, 7}, PropertyCase{4, 6, 8},
                      PropertyCase{0, 16, 9}, PropertyCase{1, 5, 10}),
    PropertyCaseName);

}  // namespace
}  // namespace hipads
