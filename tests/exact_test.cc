#include "graph/exact.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/traversal.h"

namespace hipads {
namespace {

TEST(ExactTest, NeighborhoodSizeOnPath) {
  Graph g = Path(10);
  EXPECT_EQ(ExactNeighborhoodSize(g, 0, 0.0), 1u);
  EXPECT_EQ(ExactNeighborhoodSize(g, 0, 3.0), 4u);
  EXPECT_EQ(ExactNeighborhoodSize(g, 5, 2.0), 5u);
  EXPECT_EQ(ExactNeighborhoodSize(g, 0, 100.0), 10u);
}

TEST(ExactTest, DistanceSumOnStar) {
  Graph g = Star(5);
  // Center: 4 leaves at distance 1.
  EXPECT_EQ(ExactDistanceSum(g, 0), 4.0);
  // Leaf: center at 1, three leaves at 2.
  EXPECT_EQ(ExactDistanceSum(g, 1), 7.0);
}

TEST(ExactTest, HarmonicCentralityOnPath) {
  Graph g = Path(4);
  // From node 0: distances 1,2,3 -> 1 + 1/2 + 1/3.
  EXPECT_NEAR(ExactHarmonicCentrality(g, 0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
}

TEST(ExactTest, QgWithCustomFunction) {
  Graph g = Path(4);
  // g(j, d) = 2^-d including self (d=0).
  double q = ExactQg(g, 0, [](NodeId, double d) { return std::pow(2.0, -d); });
  EXPECT_NEAR(q, 1.0 + 0.5 + 0.25 + 0.125, 1e-12);
}

TEST(ExactTest, ClosenessWithBetaFilter) {
  Graph g = Star(5);
  // beta selects odd nodes only; alpha = 1/(1+d).
  double c = ExactClosenessCentrality(
      g, 0, [](double d) { return 1.0 / (1.0 + d); },
      [](NodeId v) { return v % 2 == 1 ? 1.0 : 0.0; });
  // Nodes 1,3 at distance 1 -> 2 * 1/2 = 1.0.
  EXPECT_NEAR(c, 1.0, 1e-12);
}

TEST(ExactTest, DistanceDistributionOnCycle) {
  Graph g = Cycle(6);
  auto hist = ExactDistanceDistribution(g);
  // Every node sees 2 nodes at distance 1, 2 at 2, 1 at 3.
  EXPECT_EQ(hist[1.0], 12u);
  EXPECT_EQ(hist[2.0], 12u);
  EXPECT_EQ(hist[3.0], 6u);
}

TEST(ExactTest, DistanceDistributionExcludesSelf) {
  Graph g = Complete(4);
  auto hist = ExactDistanceDistribution(g);
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[1.0], 12u);  // ordered pairs
}

TEST(ExactTest, AllPairsMatchesSingleSource) {
  Graph g = ErdosRenyi(60, 150, true, 31);
  auto all = AllPairsDistances(g);
  for (NodeId v : {0u, 17u, 59u}) {
    auto single = ShortestPathDistances(g, v);
    EXPECT_EQ(all[v], single);
  }
}

TEST(ExactTest, DirectedAsymmetry) {
  Graph g = Path(3, /*directed=*/true);
  EXPECT_EQ(ExactNeighborhoodSize(g, 0, 2.0), 3u);
  EXPECT_EQ(ExactNeighborhoodSize(g, 2, 2.0), 1u);
}

}  // namespace
}  // namespace hipads
