#include "sketch/rank.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hipads {
namespace {

TEST(RankTest, DiscretizeRankPowersOfBase) {
  // 0.3 with base 2: h = ceil(-log2 0.3) = ceil(1.737) = 2 -> 0.25.
  EXPECT_DOUBLE_EQ(DiscretizeRank(0.3, 2.0), 0.25);
  // 0.5 exactly: h = 1 -> 0.5.
  EXPECT_DOUBLE_EQ(DiscretizeRank(0.5, 2.0), 0.5);
  // 0.9: h = ceil(0.152) = 1 -> 0.5.
  EXPECT_DOUBLE_EQ(DiscretizeRank(0.9, 2.0), 0.5);
}

TEST(RankTest, DiscretizeRankNeverIncreases) {
  for (double base : {1.5, 2.0, 4.0}) {
    for (int i = 1; i < 1000; ++i) {
      double r = i / 1000.0;
      double d = DiscretizeRank(r, base);
      EXPECT_LE(d, r);
      EXPECT_GT(d, r / base - 1e-15);  // within one base factor
    }
  }
}

TEST(RankTest, RankExponentBounds) {
  EXPECT_EQ(RankExponent(0.9, 2.0), 1u);
  EXPECT_EQ(RankExponent(0.0, 2.0), 64u);
  EXPECT_EQ(RankExponent(1e-30, 2.0), 64u);
}

TEST(RankTest, UniformDeterministicAndInRange) {
  auto ranks = RankAssignment::Uniform(5);
  EXPECT_EQ(ranks.kind(), RankKind::kUniform);
  EXPECT_EQ(ranks.sup(), 1.0);
  for (uint64_t v = 0; v < 1000; ++v) {
    double r = ranks.rank(v);
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
    EXPECT_EQ(r, ranks.rank(v));
  }
}

TEST(RankTest, UniformPermutationsIndependent) {
  auto ranks = RankAssignment::Uniform(5);
  EXPECT_NE(ranks.rank(10, 0), ranks.rank(10, 1));
}

TEST(RankTest, BaseBRanksArePowers) {
  auto ranks = RankAssignment::BaseB(7, 2.0);
  for (uint64_t v = 0; v < 200; ++v) {
    double r = ranks.rank(v);
    double log2r = -std::log2(r);
    EXPECT_NEAR(log2r, std::round(log2r), 1e-9);
  }
}

TEST(RankTest, BaseBCoordinatedWithUniform) {
  // Base-b ranks are the discretization of the same uniform ranks.
  auto uni = RankAssignment::Uniform(7);
  auto bb = RankAssignment::BaseB(7, 2.0);
  for (uint64_t v = 0; v < 200; ++v) {
    EXPECT_DOUBLE_EQ(bb.rank(v), DiscretizeRank(uni.rank(v), 2.0));
  }
}

TEST(RankTest, ExponentialMeanScalesWithBeta) {
  auto light = RankAssignment::Exponential(3, [](uint64_t) { return 1.0; });
  auto heavy = RankAssignment::Exponential(3, [](uint64_t) { return 10.0; });
  EXPECT_TRUE(std::isinf(light.sup()));
  double sum_l = 0.0, sum_h = 0.0;
  const int n = 50000;
  for (uint64_t v = 0; v < n; ++v) {
    sum_l += light.rank(v);
    sum_h += heavy.rank(v);
  }
  EXPECT_NEAR(sum_l / n, 1.0, 0.02);
  EXPECT_NEAR(sum_h / n, 0.1, 0.002);
}

TEST(RankTest, ExponentialBetaAccessor) {
  auto ranks = RankAssignment::Exponential(
      3, [](uint64_t v) { return v == 0 ? 2.0 : 1.0; });
  EXPECT_EQ(ranks.beta(0), 2.0);
  EXPECT_EQ(ranks.beta(1), 1.0);
  // Non-exponential kinds report beta = 1.
  EXPECT_EQ(RankAssignment::Uniform(1).beta(0), 1.0);
}

TEST(RankTest, PriorityRanksScaleInverselyWithBeta) {
  auto ranks = RankAssignment::Priority(
      9, [](uint64_t v) { return v % 2 == 0 ? 10.0 : 1.0; });
  EXPECT_EQ(ranks.kind(), RankKind::kPriority);
  EXPECT_TRUE(std::isinf(ranks.sup()));
  double sum_heavy = 0.0, sum_light = 0.0;
  const int n = 50000;
  for (uint64_t v = 0; v < n; ++v) {
    (v % 2 == 0 ? sum_heavy : sum_light) += ranks.rank(v);
  }
  // E[U/beta] = 0.5/beta.
  EXPECT_NEAR(sum_heavy / (n / 2), 0.05, 0.002);
  EXPECT_NEAR(sum_light / (n / 2), 0.5, 0.02);
}

TEST(RankTest, PermutationRanks) {
  auto ranks = RankAssignment::Permutation({2, 0, 1});
  EXPECT_EQ(ranks.kind(), RankKind::kPermutation);
  EXPECT_EQ(ranks.rank(0), 3.0);
  EXPECT_EQ(ranks.rank(1), 1.0);
  EXPECT_EQ(ranks.rank(2), 2.0);
  EXPECT_EQ(ranks.sup(), 4.0);
}

}  // namespace
}  // namespace hipads
