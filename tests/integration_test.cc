// End-to-end integration tests: generate graphs, build ADS sets with each
// algorithm, estimate statistics with HIP, and compare against the exact
// brute-force oracles — the full pipeline a library user runs.

#include <gtest/gtest.h>

#include <cmath>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/queries.h"
#include "graph/exact.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/traversal.h"
#include "util/stats.h"

namespace hipads {
namespace {

TEST(IntegrationTest, NeighborhoodCardinalityPipelineOnBaGraph) {
  Graph g = BarabasiAlbert(400, 3, 5);
  const uint32_t k = 16;
  const NodeId probe = 17;
  const double d = 2.0;
  double exact = static_cast<double>(ExactNeighborhoodSize(g, probe, d));
  RunningStat est;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    AdsSet set = BuildAdsDp(g, k, SketchFlavor::kBottomK,
                            RankAssignment::Uniform(seed));
    HipEstimator hip(set.of(probe), k, SketchFlavor::kBottomK, set.ranks);
    est.Add(hip.NeighborhoodCardinality(d));
  }
  EXPECT_NEAR(est.mean() / exact, 1.0, 0.1);
}

TEST(IntegrationTest, WeightedGraphClosenessPipeline) {
  Graph g = RandomizeWeights(ErdosRenyi(150, 600, true, 3), 0.5, 2.0, 9);
  const uint32_t k = 16;
  const NodeId probe = 42;
  auto alpha = [](double d) { return std::exp(-d); };
  auto beta = [](NodeId v) { return v % 5 == 0 ? 2.0 : 1.0; };
  double exact = ExactClosenessCentrality(g, probe, alpha, beta);
  ASSERT_GT(exact, 0.0);
  RunningStat est;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK,
                                        RankAssignment::Uniform(seed));
    HipEstimator hip(set.of(probe), k, SketchFlavor::kBottomK, set.ranks);
    est.Add(hip.Closeness(alpha, beta));
  }
  EXPECT_NEAR(est.mean() / exact, 1.0, 0.12);
}

TEST(IntegrationTest, BetaSpecifiedAfterSketchConstruction) {
  // The HIP flexibility claim: one ADS set, many beta filters.
  Graph g = BarabasiAlbert(300, 2, 13);
  const uint32_t k = 24;
  AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(77));
  const NodeId probe = 9;
  HipEstimator hip(set.of(probe), k, SketchFlavor::kBottomK, set.ranks);
  auto alpha = [](double d) { return 1.0 / (1.0 + d); };
  for (uint32_t mod : {2u, 3u, 7u}) {
    auto beta = [mod](NodeId v) { return v % mod == 0 ? 1.0 : 0.0; };
    double exact = ExactClosenessCentrality(g, probe, alpha, beta);
    double est = hip.Closeness(alpha, beta);
    // Single sketch: just sanity-check the scale (within factor 2).
    EXPECT_GT(est, exact * 0.5) << "mod " << mod;
    EXPECT_LT(est, exact * 2.0) << "mod " << mod;
  }
}

TEST(IntegrationTest, DirectedReachabilityEstimation) {
  // alpha == 1 estimates the number of reachable nodes (transitive
  // closure size), the original ADS application.
  Graph g = Rmat(8, 3, 21, /*undirected=*/false);
  const uint32_t k = 16;
  const NodeId probe = 5;
  double exact = static_cast<double>(CountReachable(g, probe));
  RunningStat est;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    AdsSet set = BuildAdsDp(g, k, SketchFlavor::kBottomK,
                            RankAssignment::Uniform(seed));
    HipEstimator hip(set.of(probe), k, SketchFlavor::kBottomK, set.ranks);
    est.Add(hip.ReachableCount());
  }
  EXPECT_NEAR(est.mean() / exact, 1.0, 0.1);
}

TEST(IntegrationTest, AllThreeBuildersSameEstimates) {
  Graph g = ErdosRenyi(100, 350, true, 31);
  const uint32_t k = 8;
  auto ranks = RankAssignment::Uniform(11);
  AdsSet a = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK, ranks);
  AdsSet b = BuildAdsDp(g, k, SketchFlavor::kBottomK, ranks);
  AdsSet c = BuildAdsLocalUpdates(g, k, SketchFlavor::kBottomK, ranks);
  for (NodeId v = 0; v < g.num_nodes(); v += 13) {
    HipEstimator ea(a.of(v), k, SketchFlavor::kBottomK, ranks);
    HipEstimator eb(b.of(v), k, SketchFlavor::kBottomK, ranks);
    HipEstimator ec(c.of(v), k, SketchFlavor::kBottomK, ranks);
    EXPECT_DOUBLE_EQ(ea.ReachableCount(), eb.ReachableCount());
    EXPECT_DOUBLE_EQ(ea.ReachableCount(), ec.ReachableCount());
    EXPECT_DOUBLE_EQ(ea.HarmonicCentrality(), eb.HarmonicCentrality());
  }
}

TEST(IntegrationTest, NeighborhoodFunctionTracksExactOnGrid) {
  Graph g = Grid2D(12, 12);
  auto exact_hist = ExactDistanceDistribution(g);
  std::map<double, RunningStat> est_at;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    AdsSet set = BuildAdsDp(g, 12, SketchFlavor::kBottomK,
                            RankAssignment::Uniform(seed));
    auto nf = EstimateNeighborhoodFunction(set);
    double running = 0.0;
    auto it = nf.begin();
    for (const auto& [d, cnt] : exact_hist) {
      while (it != nf.end() && it->first <= d) {
        running = it->second;
        ++it;
      }
      est_at[d].Add(running);
    }
  }
  double exact_running = 0.0;
  for (const auto& [d, cnt] : exact_hist) {
    exact_running += static_cast<double>(cnt);
    EXPECT_NEAR(est_at[d].mean() / exact_running, 1.0, 0.1)
        << "distance " << d;
  }
}

TEST(IntegrationTest, GraphIoToEstimationRoundTrip) {
  // Directed-path arcs are written in increasing tail order, so the
  // reader's first-appearance id remapping is the identity and the rebuilt
  // sketches must match bit-for-bit.
  Graph g = Path(120, /*directed=*/true);
  std::string path = "/tmp/hipads_integration_graph.txt";
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  auto loaded = ReadEdgeListFile(path, /*undirected=*/false);
  ASSERT_TRUE(loaded.ok());
  const uint32_t k = 8;
  auto ranks = RankAssignment::Uniform(23);
  AdsSet s1 = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK, ranks);
  AdsSet s2 = BuildAdsPrunedDijkstra(loaded.value(), k,
                                     SketchFlavor::kBottomK, ranks);
  // Node ids are preserved by the writer (dense ids, first-appearance
  // order matches), so the sketches must be identical.
  ASSERT_EQ(s1.TotalEntries(), s2.TotalEntries());
  std::remove(path.c_str());
}

TEST(IntegrationTest, KMinsAndKPartitionPipelines) {
  Graph g = ErdosRenyi(120, 420, true, 41);
  const NodeId probe = 3;
  double exact = static_cast<double>(CountReachable(g, probe));
  for (SketchFlavor flavor :
       {SketchFlavor::kKMins, SketchFlavor::kKPartition}) {
    const uint32_t k = 16;
    RunningStat est;
    for (uint64_t seed = 0; seed < 60; ++seed) {
      AdsSet set =
          BuildAdsDp(g, k, flavor, RankAssignment::Uniform(seed));
      HipEstimator hip(set.of(probe), k, flavor, set.ranks);
      est.Add(hip.ReachableCount());
    }
    EXPECT_NEAR(est.mean() / exact, 1.0, 0.1)
        << (flavor == SketchFlavor::kKMins ? "k-mins" : "k-partition");
  }
}

}  // namespace
}  // namespace hipads
