// Protocol robustness: the serving core must reject every malformed frame
// cleanly — error response or error status, never a crash, never a partial
// answer — because frames arrive from the network and are attacker-shaped.
// The suite drives AdsServerCore::HandleFrame and the payload decoders
// with systematic damage (truncation at every boundary, bad magic /
// version / type, oversized length prefixes, corrupted checksums and
// payload bytes) plus seeded random mutations; run under
// -DHIPADS_SANITIZE=address via the `serialize` ctest label.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "ads/backend.h"
#include "ads/builders.h"
#include "graph/generators.h"
#include "serve/server.h"

namespace hipads {
namespace {

// A small serving core the whole suite hammers.
struct Fixture {
  FlatAdsSet set;
  FlatAdsBackend backend;
  AdsServerCore core;

  Fixture()
      : set(FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
            ErdosRenyi(60, 180, true, 5), 4, SketchFlavor::kBottomK,
            RankAssignment::Uniform(6)))),
        backend(&set),
        core(&backend, ServerOptions{}) {}
};

// Every response HandleFrame produces must itself be a valid frame; a
// rejected request must come back as kError.
void ExpectCleanRejection(AdsServerCore& core, const std::string& frame,
                          const std::string& label) {
  bool close_connection = false;
  std::string response = core.HandleFrame(frame, &close_connection);
  auto decoded = DecodeFrame(response);
  ASSERT_TRUE(decoded.ok()) << label << ": response is not a frame";
  EXPECT_EQ(decoded.value().type, MessageType::kError) << label;
  EXPECT_FALSE(DecodeError(decoded.value().payload).ok()) << label;
}

// The corpus deliberately spans the whole wire surface — every
// MessageType request, every PointKind, every CollectorKind, every
// ScoreKind and QgKind — so the damage loops below mutate frames of
// every shape the protocol can carry (hipads-lint rule HL004 enforces
// the coverage).
std::vector<std::string> ValidRequestFrames() {
  std::vector<std::string> frames;
  frames.push_back(EncodeFrame(MessageType::kInfoRequest, ""));
  auto point_frame = [&frames](const PointRequestMsg& msg) {
    frames.push_back(
        EncodeFrame(MessageType::kPointRequest, EncodePointRequest(msg)));
  };
  PointRequestMsg lookup;
  lookup.kind = PointKind::kLookup;
  lookup.node = 3;
  lookup.targets = {1, 2, 3};
  point_frame(lookup);
  PointRequestMsg stats;
  stats.kind = PointKind::kNodeStats;
  stats.node = 5;
  stats.d = std::numeric_limits<double>::infinity();
  point_frame(stats);
  PointRequestMsg jaccard;
  jaccard.kind = PointKind::kJaccard;
  jaccard.node = 7;
  jaccard.other = 9;
  jaccard.d = std::numeric_limits<double>::infinity();
  point_frame(jaccard);
  PointRequestMsg fetch;
  fetch.kind = PointKind::kFetchSketch;
  fetch.node = 11;
  point_frame(fetch);
  // Wire-v3 batch frames: empty (the cheapest v3 probe), one entry, and
  // one at the kMaxPointBatchEntries bound — the truncation loop below
  // then cuts the full batch at every byte, which includes every entry
  // boundary.
  {
    PointBatchRequestMsg batch;
    frames.push_back(EncodeFrame(MessageType::kPointBatchRequest,
                                 EncodePointBatchRequest(batch)));
    PointRequestMsg one;
    one.kind = PointKind::kNodeStats;
    one.node = 5;
    one.d = std::numeric_limits<double>::infinity();
    batch.entries.push_back(one);
    frames.push_back(EncodeFrame(MessageType::kPointBatchRequest,
                                 EncodePointBatchRequest(batch)));
    PointBatchRequestMsg maxed;
    for (size_t i = 0; i < kMaxPointBatchEntries; ++i) {
      PointRequestMsg entry;
      entry.kind = PointKind::kLookup;
      entry.node = i % 60;
      entry.targets = {i};
      maxed.entries.push_back(entry);
    }
    frames.push_back(EncodeFrame(MessageType::kPointBatchRequest,
                                 EncodePointBatchRequest(maxed)));
  }
  SweepRequestMsg sweep;
  sweep.collectors = {
      {CollectorKind::kDistanceHistogram, 0, 0, 0.0},
      {CollectorKind::kDistanceSum, 0, 0, 0.0},
      {CollectorKind::kHarmonic, 0, 0, 0.0},
      {CollectorKind::kNeighborhoodSize, 0, 0, 2.0},
      {CollectorKind::kReachableCount, 0, 0, 0.0},
      {CollectorKind::kTopK, static_cast<uint32_t>(ScoreKind::kHarmonic), 3,
       0.0},
      {CollectorKind::kDistanceQuantile, 0, 0, 0.5},
      {CollectorKind::kQg, static_cast<uint32_t>(QgKind::kExpDecay), 0,
       0.5}};
  frames.push_back(
      EncodeFrame(MessageType::kSweepRequest, EncodeSweepRequest(sweep)));
  SweepRequestMsg ranked;
  ranked.collectors = {
      {CollectorKind::kTopK, static_cast<uint32_t>(ScoreKind::kDistanceSum),
       2, 0.0},
      {CollectorKind::kTopK, static_cast<uint32_t>(ScoreKind::kReachable), 2,
       0.0},
      {CollectorKind::kQg, static_cast<uint32_t>(QgKind::kInverseSquare), 0,
       0.0}};
  frames.push_back(
      EncodeFrame(MessageType::kSweepRequest, EncodeSweepRequest(ranked)));
  // Metrics scrapes, with and without the trace-span flag.
  frames.push_back(
      EncodeFrame(MessageType::kStatsRequest, EncodeStatsRequest({})));
  StatsRequestMsg spans;
  spans.flags = kStatsFlagTraceSpans;
  frames.push_back(
      EncodeFrame(MessageType::kStatsRequest, EncodeStatsRequest(spans)));
  return frames;
}

TEST(ServeFuzzTest, ValidFramesAreAccepted) {
  Fixture fx;
  for (const std::string& frame : ValidRequestFrames()) {
    bool close_connection = false;
    std::string response = fx.core.HandleFrame(frame, &close_connection);
    auto decoded = DecodeFrame(response);
    ASSERT_TRUE(decoded.ok());
    auto request = DecodeFrame(frame);
    ASSERT_TRUE(request.ok());
    // Each request type must come back as its own response type.
    switch (request.value().type) {
      case MessageType::kInfoRequest:
        EXPECT_EQ(decoded.value().type, MessageType::kInfoResponse);
        break;
      case MessageType::kPointRequest:
        EXPECT_EQ(decoded.value().type, MessageType::kPointResponse);
        EXPECT_TRUE(
            DecodePointResponse(decoded.value().payload).ok());
        break;
      case MessageType::kPointBatchRequest: {
        EXPECT_EQ(decoded.value().type, MessageType::kPointBatchResponse);
        auto entries = DecodePointBatchResponse(decoded.value().payload);
        ASSERT_TRUE(entries.ok()) << entries.status().ToString();
        auto sent = DecodePointBatchRequest(request.value().payload);
        ASSERT_TRUE(sent.ok());
        EXPECT_EQ(entries.value().entries.size(),
                  sent.value().entries.size());
        break;
      }
      case MessageType::kSweepRequest:
        EXPECT_EQ(decoded.value().type, MessageType::kSweepResponse);
        break;
      case MessageType::kStatsRequest: {
        EXPECT_EQ(decoded.value().type, MessageType::kStatsResponse);
        auto stats = DecodeStatsResponse(decoded.value().payload);
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        ASSERT_EQ(stats.value().snapshots.size(), 1u);
        EXPECT_EQ(stats.value().snapshots[0].label, "server");
        break;
      }
      default:
        FAIL() << "corpus contains a non-request frame";
    }
    EXPECT_FALSE(close_connection);
  }
}

TEST(ServeFuzzTest, TruncatedFramesAreRejectedAtEveryLength) {
  Fixture fx;
  for (const std::string& frame : ValidRequestFrames()) {
    for (size_t len = 0; len < frame.size(); ++len) {
      std::string truncated = frame.substr(0, len);
      EXPECT_FALSE(DecodeFrame(truncated).ok()) << "length " << len;
      ExpectCleanRejection(fx.core, truncated,
                           "truncated to " + std::to_string(len));
    }
  }
}

TEST(ServeFuzzTest, BadMagicVersionAndTypeAreRejected) {
  Fixture fx;
  std::string frame = ValidRequestFrames()[0];
  // Magic: flip each of the 8 leading bytes.
  for (size_t i = 0; i < 8; ++i) {
    std::string bad = frame;
    bad[i] ^= 0x5a;
    EXPECT_FALSE(DecodeFrame(bad).ok()) << "magic byte " << i;
    ExpectCleanRejection(fx.core, bad, "magic byte " + std::to_string(i));
  }
  // Version: every value but the supported ones (1, 2, 3 and 4).
  for (uint32_t version : {0u, 5u, 7u, 0xffffffffu}) {
    std::string bad = frame;
    std::memcpy(bad.data() + 8, &version, sizeof(version));
    EXPECT_FALSE(DecodeFrame(bad).ok()) << "version " << version;
    ExpectCleanRejection(fx.core, bad, "version " + std::to_string(version));
  }
  // Type: outside the known range (11 = first value past the stats pair).
  for (uint32_t type : {11u, 100u, 0xffffffffu}) {
    std::string bad = frame;
    std::memcpy(bad.data() + 12, &type, sizeof(type));
    EXPECT_FALSE(DecodeFrame(bad).ok()) << "type " << type;
    ExpectCleanRejection(fx.core, bad, "type " + std::to_string(type));
  }
  // Batch message types are only legal in v3 frames: a v2 frame claiming
  // one is rejected from the header, before the checksum is even tried.
  {
    std::string bad = EncodeFrame(MessageType::kPointBatchRequest,
                                  EncodePointBatchRequest({}));
    uint32_t v2 = 2;
    std::memcpy(bad.data() + 8, &v2, sizeof(v2));
    auto decoded = DecodeFrame(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("requires wire version 3"),
              std::string::npos)
        << decoded.status().ToString();
    ExpectCleanRejection(fx.core, bad, "batch type in a v2 frame");
  }
  // The stats pair is v3+ surface too: a v2 frame claiming a stats type
  // is rejected the same way.
  {
    std::string bad =
        EncodeFrame(MessageType::kStatsRequest, EncodeStatsRequest({}));
    uint32_t v2 = 2;
    std::memcpy(bad.data() + 8, &v2, sizeof(v2));
    auto decoded = DecodeFrame(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("requires wire version 3"),
              std::string::npos)
        << decoded.status().ToString();
    ExpectCleanRejection(fx.core, bad, "stats type in a v2 frame");
  }
}

TEST(ServeFuzzTest, Version4TraceIdsRoundTripAndAreEchoed) {
  // Wire v4 appends a 16-byte trace id after the deadline extension.
  Fixture fx;
  std::string v4 =
      EncodeFrame(MessageType::kInfoRequest, "", /*deadline_ms=*/250,
                  /*version=*/kWireVersionTrace, /*trace_hi=*/0x1122334455667788ull,
                  /*trace_lo=*/0x99aabbccddeeff00ull);
  EXPECT_EQ(v4.size(), size_t{kFrameHeaderBytes + kFrameExtBytes +
                              kFrameTraceExtBytes});
  auto request = DecodeFrame(v4);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().version, kWireVersionTrace);
  EXPECT_EQ(request.value().deadline_ms, 250u);
  EXPECT_EQ(request.value().trace_hi, 0x1122334455667788ull);
  EXPECT_EQ(request.value().trace_lo, 0x99aabbccddeeff00ull);
  // The server answers in the requester's version, echoing the trace id.
  bool close_connection = false;
  std::string response = fx.core.HandleFrame(v4, &close_connection);
  auto decoded = DecodeFrame(response);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, MessageType::kInfoResponse);
  EXPECT_EQ(decoded.value().version, kWireVersionTrace);
  EXPECT_EQ(decoded.value().trace_hi, 0x1122334455667788ull);
  EXPECT_EQ(decoded.value().trace_lo, 0x99aabbccddeeff00ull);
  // A v3 frame carries no trace extension and decodes with a zero id.
  std::string v3 = EncodeFrame(MessageType::kInfoRequest, "");
  EXPECT_EQ(v3.size(), size_t{kFrameHeaderBytes + kFrameExtBytes});
  auto untraced = DecodeFrame(v3);
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced.value().trace_hi, 0u);
  EXPECT_EQ(untraced.value().trace_lo, 0u);
  // Truncating the trace extension off a v4 frame must not decode.
  for (size_t cut = 1; cut <= kFrameTraceExtBytes; ++cut) {
    EXPECT_FALSE(DecodeFrame(v4.substr(0, v4.size() - cut)).ok()) << cut;
  }
}

TEST(ServeFuzzTest, Version1FramesStillServedAndAnsweredInVersion1) {
  // Wire v2 added the deadline extension; a v1 client (32-byte header, no
  // deadline) must keep working against a v2 server, and the server must
  // answer in the client's version so the old decoder can read it.
  Fixture fx;
  std::string v1 =
      EncodeFrame(MessageType::kInfoRequest, "", /*deadline_ms=*/0,
                  /*version=*/1);
  EXPECT_EQ(v1.size(), size_t{kFrameHeaderBytes});  // no ext on the wire
  auto request = DecodeFrame(v1);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().version, 1u);
  EXPECT_EQ(request.value().deadline_ms, 0u);
  bool close_connection = false;
  std::string response = fx.core.HandleFrame(v1, &close_connection);
  auto decoded = DecodeFrame(response);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().version, 1u);
  EXPECT_EQ(decoded.value().type, MessageType::kInfoResponse);
  // The deadline rides only in the v2 extension: v1 frames carry none
  // (EncodeFrame zeroes it), v2 frames round-trip it.
  std::string v1_deadline =
      EncodeFrame(MessageType::kInfoRequest, "", /*deadline_ms=*/250,
                  /*version=*/1);
  auto no_deadline = DecodeFrame(v1_deadline);
  ASSERT_TRUE(no_deadline.ok());
  EXPECT_EQ(no_deadline.value().deadline_ms, 0u);
  std::string v2 =
      EncodeFrame(MessageType::kInfoRequest, "", /*deadline_ms=*/250);
  EXPECT_EQ(v2.size(), size_t{kFrameHeaderBytes + kFrameExtBytes});
  auto with_deadline = DecodeFrame(v2);
  ASSERT_TRUE(with_deadline.ok());
  EXPECT_EQ(with_deadline.value().deadline_ms, 250u);
}

TEST(ServeFuzzTest, OversizedLengthPrefixesAreRejectedBeforeAllocation) {
  Fixture fx;
  std::string frame = ValidRequestFrames()[2];
  // Payload lengths beyond the protocol bound must be rejected from the
  // header alone — a hostile 8-byte length must never drive an allocation.
  for (uint64_t huge :
       {kMaxFramePayload + 1, uint64_t{1} << 40, uint64_t{0} - 1}) {
    std::string bad = frame;
    std::memcpy(bad.data() + 16, &huge, sizeof(huge));
    FrameHeader header;
    EXPECT_FALSE(
        DecodeFrameHeader(bad.data(), kFrameHeaderBytes, &header).ok())
        << huge;
    ExpectCleanRejection(fx.core, bad, "huge length");
  }
  // In-bounds but wrong lengths fail the frame/size cross-check.
  for (uint64_t wrong : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 20}) {
    std::string bad = frame;
    std::memcpy(bad.data() + 16, &wrong, sizeof(wrong));
    EXPECT_FALSE(DecodeFrame(bad).ok()) << wrong;
    ExpectCleanRejection(fx.core, bad, "wrong length");
  }
}

TEST(ServeFuzzTest, CorruptChecksumsAreRejected) {
  Fixture fx;
  for (const std::string& frame : ValidRequestFrames()) {
    // Flip one bit anywhere in the frame: the whole-frame checksum (or a
    // structural check) must catch it.
    for (size_t i = 0; i < frame.size(); ++i) {
      std::string bad = frame;
      bad[i] ^= 0x01;
      EXPECT_FALSE(DecodeFrame(bad).ok()) << "bit flip at byte " << i;
      ExpectCleanRejection(fx.core, bad, "flip at " + std::to_string(i));
    }
  }
}

TEST(ServeFuzzTest, MalformedPayloadsInsideValidFramesAreRejected) {
  Fixture fx;
  // Structurally valid frames wrapping broken payloads: the payload
  // decoders must reject them; the checksum cannot help here.
  const std::vector<std::pair<MessageType, std::string>> cases = [] {
    std::vector<std::pair<MessageType, std::string>> list;
    // Truncated point request.
    PointRequestMsg point;
    point.targets = {1, 2, 3};
    std::string p = EncodePointRequest(point);
    for (size_t len : {size_t{0}, size_t{3}, p.size() - 9, p.size() - 1}) {
      list.emplace_back(MessageType::kPointRequest, p.substr(0, len));
    }
    // Point request whose target count promises more than the payload.
    {
      WireWriter w;
      w.U32(static_cast<uint32_t>(PointKind::kLookup));
      w.U64(0);
      w.U64(0);
      w.F64(0.0);
      w.U64(uint64_t{1} << 60);  // 2^60 targets
      list.emplace_back(MessageType::kPointRequest, w.Take());
    }
    // Sweep request with an unknown collector kind.
    {
      WireWriter w;
      w.U32(1);      // threads
      w.U64(1);      // one collector
      w.U32(999);    // unknown kind
      w.U32(0);
      w.U32(0);
      w.F64(0.0);
      list.emplace_back(MessageType::kSweepRequest, w.Take());
    }
    // Sweep request promising 2^59 collectors.
    {
      WireWriter w;
      w.U32(1);
      w.U64(uint64_t{1} << 59);
      list.emplace_back(MessageType::kSweepRequest, w.Take());
    }
    // Batch request promising more entries than the protocol bound.
    {
      WireWriter w;
      w.U64(kMaxPointBatchEntries + 1);
      list.emplace_back(MessageType::kPointBatchRequest, w.Take());
    }
    // Batch request whose count promises more than the payload can hold.
    {
      WireWriter w;
      w.U64(uint64_t{1} << 60);
      list.emplace_back(MessageType::kPointBatchRequest, w.Take());
    }
    // Batch with one entry, truncated inside the entry bytes.
    {
      PointBatchRequestMsg batch;
      PointRequestMsg entry;
      entry.kind = PointKind::kLookup;
      entry.targets = {1, 2};
      batch.entries.push_back(entry);
      std::string encoded = EncodePointBatchRequest(batch);
      list.emplace_back(MessageType::kPointBatchRequest,
                        encoded.substr(0, encoded.size() - 5));
    }
    // Batch whose entry is itself a malformed point request.
    {
      WireWriter w;
      w.U64(1);
      WireWriter inner;
      inner.U32(999);  // unknown point kind
      inner.U64(0);
      inner.U64(0);
      inner.F64(0.0);
      inner.U64(0);
      w.Bytes(inner.Take());
      list.emplace_back(MessageType::kPointBatchRequest, w.Take());
    }
    // Stats request: truncated (flags missing), unknown flag bits, and
    // trailing garbage.
    list.emplace_back(MessageType::kStatsRequest, std::string());
    list.emplace_back(MessageType::kStatsRequest, std::string(2, '\0'));
    {
      WireWriter w;
      w.U32(0xfffffffeu);  // every bit but the trace flag is unknown
      list.emplace_back(MessageType::kStatsRequest, w.Take());
    }
    list.emplace_back(MessageType::kStatsRequest,
                      EncodeStatsRequest({}) + std::string(1, '\0'));
    // Trailing garbage after a valid message.
    list.emplace_back(MessageType::kInfoRequest, std::string("tail"));
    SweepRequestMsg sweep;
    sweep.collectors = {{CollectorKind::kHarmonic, 0, 0, 0.0}};
    list.emplace_back(MessageType::kSweepRequest,
                      EncodeSweepRequest(sweep) + std::string(1, '\0'));
    return list;
  }();
  for (size_t i = 0; i < cases.size(); ++i) {
    std::string frame = EncodeFrame(cases[i].first, cases[i].second);
    ExpectCleanRejection(fx.core, frame, "payload case " + std::to_string(i));
  }
}

// The stats response codec is a network consumer on the router's gather
// path: a hostile range server must not be able to crash the scrape.
TEST(ServeFuzzTest, StatsResponseCodecRejectsMalformedPayloads) {
  // A nontrivial response round-trips exactly.
  StatsResponseMsg msg;
  StatsSnapshotMsg snap;
  snap.label = "server";
  snap.metrics.counters = {{"serve.requests.point", 41},
                           {"serve.tcp.accepted", 3}};
  snap.metrics.gauges = {{"serve.active_sweeps", -1}};
  MetricsSnapshot::HistogramValue hist;
  hist.name = "serve.latency_us.point";
  hist.count = 2;
  hist.sum = 300;
  hist.buckets = {0, 1, 1};
  snap.metrics.histograms = {hist};
  msg.snapshots.push_back(snap);
  TraceSpanMsg span;
  span.label = "server";
  span.name = "server.dispatch";
  span.trace_hi = 7;
  span.trace_lo = 9;
  span.start_us = 100;
  span.dur_us = 40;
  msg.spans.push_back(span);
  std::string encoded = EncodeStatsResponse(msg);
  auto decoded = DecodeStatsResponse(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().snapshots.size(), 1u);
  EXPECT_EQ(decoded.value().snapshots[0].label, "server");
  ASSERT_EQ(decoded.value().snapshots[0].metrics.counters.size(), 2u);
  EXPECT_EQ(decoded.value().snapshots[0].metrics.counters[0].value, 41u);
  ASSERT_EQ(decoded.value().snapshots[0].metrics.gauges.size(), 1u);
  EXPECT_EQ(decoded.value().snapshots[0].metrics.gauges[0].value, -1);
  ASSERT_EQ(decoded.value().snapshots[0].metrics.histograms.size(), 1u);
  EXPECT_EQ(decoded.value().snapshots[0].metrics.histograms[0].buckets,
            (std::vector<uint64_t>{0, 1, 1}));
  ASSERT_EQ(decoded.value().spans.size(), 1u);
  EXPECT_EQ(decoded.value().spans[0].name, "server.dispatch");
  EXPECT_EQ(decoded.value().spans[0].dur_us, 40u);
  EXPECT_EQ(EncodeStatsResponse(decoded.value()), encoded);

  // Truncation at every byte boundary must be rejected, never crash.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeStatsResponse(encoded.substr(0, len)).ok())
        << "length " << len;
  }
  // Trailing garbage after the last span.
  EXPECT_FALSE(DecodeStatsResponse(encoded + std::string(1, '\0')).ok());

  // Hostile counts must be rejected from the header, before allocation.
  auto one_count = [](uint64_t count) {
    WireWriter w;
    w.U64(count);
    return w.Take();
  };
  // 2^60 snapshots promised in an 8-byte payload.
  EXPECT_FALSE(DecodeStatsResponse(one_count(uint64_t{1} << 60)).ok());
  {
    // One snapshot promising 2^60 counters.
    WireWriter w;
    w.U64(1);            // one snapshot
    w.Bytes("server");   // label
    w.U64(uint64_t{1} << 60);
    EXPECT_FALSE(DecodeStatsResponse(w.Take()).ok());
  }
  {
    // One histogram promising 2^60 buckets.
    WireWriter w;
    w.U64(1);           // one snapshot
    w.Bytes("server");  // label
    w.U64(0);           // counters
    w.U64(0);           // gauges
    w.U64(1);           // one histogram
    w.Bytes("h");
    w.U64(0);  // count
    w.U64(0);  // sum
    w.U64(uint64_t{1} << 60);
    EXPECT_FALSE(DecodeStatsResponse(w.Take()).ok());
  }
  {
    // 2^60 spans promised after an empty snapshot list.
    WireWriter w;
    w.U64(0);  // snapshots
    w.U64(uint64_t{1} << 60);
    EXPECT_FALSE(DecodeStatsResponse(w.Take()).ok());
  }
}

// The batch response codec carries a per-entry status channel; its
// invariants — ok entries carry a payload and no message, failed entries
// the reverse, codes must be known — are enforced on network bytes.
TEST(ServeFuzzTest, PointBatchResponsePerEntryStatusesAreValidated) {
  // A mixed success/failure response round-trips exactly: one bad node
  // never poisons the batch, and the failure text survives the wire.
  PointResponseMsg ok_response;
  ok_response.values = {1.5, 2.5};
  PointBatchResponseMsg mixed;
  PointBatchResponseEntry ok_entry;
  ok_entry.payload = EncodePointResponse(ok_response);
  mixed.entries.push_back(ok_entry);
  PointBatchResponseEntry failed;
  failed.status = Status::NotFound("node 99 is outside the served range");
  mixed.entries.push_back(failed);
  auto decoded = DecodePointBatchResponse(EncodePointBatchResponse(mixed));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().entries.size(), 2u);
  EXPECT_TRUE(decoded.value().entries[0].status.ok());
  EXPECT_EQ(decoded.value().entries[0].payload, ok_entry.payload);
  EXPECT_EQ(decoded.value().entries[1].status.ToString(),
            failed.status.ToString());
  EXPECT_TRUE(decoded.value().entries[1].payload.empty());

  // Hand-built malformed responses: each violated invariant is rejected.
  auto entry_bytes = [](uint32_t code, const std::string& message,
                        const std::string& payload) {
    WireWriter w;
    w.U64(1);
    w.U32(code);
    w.Bytes(message);
    w.Bytes(payload);
    return w.Take();
  };
  // An ok entry carrying an error message.
  EXPECT_FALSE(
      DecodePointBatchResponse(entry_bytes(0, "spurious", ok_entry.payload))
          .ok());
  // A failed entry carrying a response payload.
  EXPECT_FALSE(
      DecodePointBatchResponse(entry_bytes(2, "gone", ok_entry.payload))
          .ok());
  // An unknown status code.
  EXPECT_FALSE(DecodePointBatchResponse(entry_bytes(99, "what", "")).ok());
  // An ok entry whose payload is not a decodable point response.
  EXPECT_FALSE(DecodePointBatchResponse(entry_bytes(0, "", "junk")).ok());
  // A count promising more entries than the payload carries.
  {
    WireWriter w;
    w.U64(3);
    w.U32(0);
    w.Bytes("");
    w.Bytes(ok_entry.payload);
    EXPECT_FALSE(DecodePointBatchResponse(w.Take()).ok());
  }
}

TEST(ServeFuzzTest, HostileThreadCountsAreClampedNotObeyed) {
  // num_threads is wire-controlled; a request asking for 2^32-1 threads
  // must be served (clamped to the hardware), not drive the pool into
  // spawning until std::terminate.
  Fixture fx;
  SweepRequestMsg sweep;
  sweep.collectors = {{CollectorKind::kHarmonic, 0, 0, 0.0}};
  sweep.num_threads = 0xffffffffu;
  bool close_connection = false;
  std::string response = fx.core.HandleFrame(
      EncodeFrame(MessageType::kSweepRequest, EncodeSweepRequest(sweep)),
      &close_connection);
  auto decoded = DecodeFrame(response);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, MessageType::kSweepResponse);
}

TEST(ServeFuzzTest, MalformedSweepPartialsAreRejectedByTheGather) {
  // The gather side is a network consumer too: collector partials with
  // wrong sizes / domains must fail AbsorbPartial cleanly.
  std::vector<CollectorSpec> spec = {
      {CollectorKind::kDistanceHistogram, 0, 0, 0.0},
      {CollectorKind::kHarmonic, 0, 0, 0.0}};
  SweepPlan plan;
  auto built = BuildPlanFromSpec(spec, &plan);
  ASSERT_TRUE(built.ok());
  for (SweepCollector* c : built.value()) c->Begin(10);

  // The histogram partial is ExactSum-encoded: u64 distance count, then
  // per distance a f64 dist plus the superaccumulator's digit window
  // (u32 lo, u32 count, count u32 digits). Each structural invariant must
  // be enforced on network bytes.
  const std::string harmonic_ok(80, '\0');  // 10 nodes * f64, all zero
  auto u32 = [](std::string* out, uint32_t v) {
    out->append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto u64 = [](std::string* out, uint64_t v) {
    out->append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto f64 = [](std::string* out, double v) {
    out->append(reinterpret_cast<const char*>(&v), sizeof(v));
  };

  SweepResponseMsg response;
  response.begin = 0;
  response.end = 10;
  response.partials = {"", ""};  // histogram shorter than its u64 header
  EXPECT_FALSE(AbsorbSweepResponse(response, built.value()).ok());

  // Count promising more entries than the payload can hold: rejected from
  // the header, before any allocation.
  {
    std::string h;
    u64(&h, uint64_t{1} << 60);
    response.partials = {h, harmonic_ok};
    EXPECT_FALSE(AbsorbSweepResponse(response, built.value()).ok());
  }
  // Distance out of domain (0, negative, NaN) and non-increasing order.
  for (double bad_dist : {0.0, -1.0, std::nan("")}) {
    std::string h;
    u64(&h, 1);
    f64(&h, bad_dist);
    u32(&h, 0);  // lo
    u32(&h, 0);  // empty digit window
    response.partials = {h, harmonic_ok};
    EXPECT_FALSE(AbsorbSweepResponse(response, built.value()).ok());
  }
  {
    std::string h;
    u64(&h, 2);
    f64(&h, 2.0);
    u32(&h, 0);
    u32(&h, 0);
    f64(&h, 1.0);  // distances must be strictly increasing
    u32(&h, 0);
    u32(&h, 0);
    response.partials = {h, harmonic_ok};
    EXPECT_FALSE(AbsorbSweepResponse(response, built.value()).ok());
  }
  // Accumulator window outside the digit range, and one promising more
  // digits than the payload carries.
  {
    std::string h;
    u64(&h, 1);
    f64(&h, 1.0);
    u32(&h, 0xffffffffu);  // lo far past kDigits
    u32(&h, 1);
    u32(&h, 7);
    response.partials = {h, harmonic_ok};
    EXPECT_FALSE(AbsorbSweepResponse(response, built.value()).ok());
  }
  {
    std::string h;
    u64(&h, 1);
    f64(&h, 1.0);
    u32(&h, 0);
    u32(&h, 10);  // 10 digits promised, none present
    response.partials = {h, harmonic_ok};
    EXPECT_FALSE(AbsorbSweepResponse(response, built.value()).ok());
  }
  // Trailing bytes after the last entry.
  {
    std::string h;
    u64(&h, 0);
    h.append(4, '\x7f');
    response.partials = {h, harmonic_ok};
    EXPECT_FALSE(AbsorbSweepResponse(response, built.value()).ok());
  }

  // Range outside the collected node space.
  response.begin = 5;
  response.end = 25;
  response.partials = {"", std::string(20 * 8, '\0')};
  EXPECT_FALSE(AbsorbSweepResponse(response, built.value()).ok());

  // Partial count != plan size.
  response.begin = 0;
  response.end = 10;
  response.partials = {""};
  EXPECT_FALSE(AbsorbSweepResponse(response, built.value()).ok());
}

// Seeded random mutations: whatever the damage, HandleFrame must return a
// well-formed frame and never crash (the asan lane gives this test its
// teeth).
TEST(ServeFuzzTest, RandomMutationsNeverCrashTheCore) {
  Fixture fx;
  std::vector<std::string> frames = ValidRequestFrames();
  std::mt19937_64 rng(0xad55eedULL);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string frame = frames[rng() % frames.size()];
    switch (rng() % 4) {
      case 0:  // flip 1..8 random bytes
        for (uint64_t flips = 1 + rng() % 8; flips > 0; --flips) {
          frame[rng() % frame.size()] ^= static_cast<char>(1 + rng() % 255);
        }
        break;
      case 1:  // truncate
        frame.resize(rng() % (frame.size() + 1));
        break;
      case 2:  // extend with junk
        frame.append(1 + rng() % 64, static_cast<char>(rng()));
        break;
      case 3:  // pure junk of random length
        frame.assign(rng() % 128, static_cast<char>(rng()));
        for (char& c : frame) c = static_cast<char>(rng());
        break;
    }
    bool close_connection = false;
    std::string response = fx.core.HandleFrame(frame, &close_connection);
    auto decoded = DecodeFrame(response);
    ASSERT_TRUE(decoded.ok()) << "iteration " << iter;
  }
}

}  // namespace
}  // namespace hipads
