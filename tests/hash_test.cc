#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hipads {
namespace {

TEST(HashTest, SplitMix64IsDeterministic) {
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
  EXPECT_NE(SplitMix64(42), SplitMix64(43));
}

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(123456789), Mix64(123456789));
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(HashTest, ToUnitIntervalRange) {
  EXPECT_EQ(ToUnitInterval(0), 0.0);
  double max = ToUnitInterval(~0ULL);
  EXPECT_LT(max, 1.0);
  EXPECT_GT(max, 0.999999);
}

TEST(HashTest, UnitHashInRange) {
  for (uint64_t i = 0; i < 1000; ++i) {
    double u = UnitHash(7, i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashTest, UnitHashSeedSeparation) {
  EXPECT_NE(UnitHash(1, 100), UnitHash(2, 100));
}

TEST(HashTest, UnitHashRoughlyUniform) {
  // Mean of many unit hashes should approach 1/2.
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += UnitHash(99, i);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(HashTest, BucketHashInRange) {
  for (uint32_t k : {1u, 2u, 7u, 64u, 1000u}) {
    for (uint64_t i = 0; i < 500; ++i) {
      EXPECT_LT(BucketHash(3, i, k), k);
    }
  }
}

TEST(HashTest, BucketHashRoughlyBalanced) {
  const uint32_t k = 16;
  const int n = 160000;
  std::vector<int> counts(k, 0);
  for (int i = 0; i < n; ++i) counts[BucketHash(11, i, k)]++;
  for (uint32_t b = 0; b < k; ++b) {
    EXPECT_NEAR(counts[b], n / k, n / k * 0.1);
  }
}

TEST(HashTest, HashCombineDistinguishesSeedAndKey) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashTest, FewCollisionsInUnitHashes) {
  std::set<double> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(UnitHash(5, i));
  EXPECT_EQ(seen.size(), 10000u);  // 53-bit hashes: collisions ~impossible
}

}  // namespace
}  // namespace hipads
