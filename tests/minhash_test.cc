#include "sketch/minhash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace hipads {
namespace {

TEST(BottomKTest, KeepsKSmallest) {
  BottomKSketch s(3);
  for (double r : {0.9, 0.5, 0.7, 0.1, 0.8, 0.3}) s.Update(r);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ranks(), (std::vector<double>{0.1, 0.3, 0.5}));
}

TEST(BottomKTest, ThresholdIsSupWhileNotFull) {
  BottomKSketch s(3);
  EXPECT_EQ(s.Threshold(), 1.0);
  s.Update(0.4);
  s.Update(0.2);
  EXPECT_EQ(s.Threshold(), 1.0);
  s.Update(0.6);
  EXPECT_EQ(s.Threshold(), 0.6);
}

TEST(BottomKTest, UpdateReturnsWhetherChanged) {
  BottomKSketch s(2);
  EXPECT_TRUE(s.Update(0.5));
  EXPECT_TRUE(s.Update(0.3));
  EXPECT_FALSE(s.Update(0.7));  // above threshold
  EXPECT_TRUE(s.Update(0.1));
  EXPECT_EQ(s.Threshold(), 0.3);
}

TEST(BottomKTest, CustomSup) {
  BottomKSketch s(2, 100.0);
  EXPECT_EQ(s.Threshold(), 100.0);
  EXPECT_TRUE(s.Update(50.0));
}

TEST(BottomKTest, MergeEqualsUnion) {
  Rng rng(3);
  std::vector<double> all;
  BottomKSketch a(5), b(5), u(5);
  for (int i = 0; i < 100; ++i) {
    double r = rng.NextUnit();
    all.push_back(r);
    (i % 2 ? a : b).Update(r);
    u.Update(r);
  }
  a.Merge(b);
  EXPECT_EQ(a.ranks(), u.ranks());
}

TEST(BottomKTest, MinAccessor) {
  BottomKSketch s(3);
  s.Update(0.5);
  s.Update(0.2);
  EXPECT_EQ(s.Min(), 0.2);
}

TEST(KMinsTest, TracksMinimumPerPermutation) {
  KMinsSketch s(2);
  EXPECT_TRUE(s.Update(0, 0.5));
  EXPECT_TRUE(s.Update(0, 0.3));
  EXPECT_FALSE(s.Update(0, 0.4));
  EXPECT_TRUE(s.Update(1, 0.9));
  EXPECT_EQ(s.Min(0), 0.3);
  EXPECT_EQ(s.Min(1), 0.9);
}

TEST(KMinsTest, MergeCoordinateWise) {
  KMinsSketch a(3), b(3);
  a.Update(0, 0.5);
  a.Update(1, 0.2);
  b.Update(0, 0.3);
  b.Update(2, 0.7);
  a.Merge(b);
  EXPECT_EQ(a.Min(0), 0.3);
  EXPECT_EQ(a.Min(1), 0.2);
  EXPECT_EQ(a.Min(2), 0.7);
}

TEST(KMinsTest, EmptyMinsAreSup) {
  KMinsSketch s(4, 1.0);
  for (uint32_t h = 0; h < 4; ++h) EXPECT_EQ(s.Min(h), 1.0);
}

TEST(KPartitionTest, TracksBucketMinima) {
  KPartitionSketch s(3);
  EXPECT_TRUE(s.Update(1, 0.4));
  EXPECT_FALSE(s.Update(1, 0.6));
  EXPECT_TRUE(s.Update(1, 0.2));
  EXPECT_EQ(s.Min(1), 0.2);
  EXPECT_EQ(s.NumNonEmpty(), 1u);
  s.Update(0, 0.9);
  EXPECT_EQ(s.NumNonEmpty(), 2u);
}

TEST(KPartitionTest, MergeCoordinateWise) {
  KPartitionSketch a(2), b(2);
  a.Update(0, 0.5);
  b.Update(0, 0.1);
  b.Update(1, 0.8);
  a.Merge(b);
  EXPECT_EQ(a.Min(0), 0.1);
  EXPECT_EQ(a.Min(1), 0.8);
  EXPECT_EQ(a.NumNonEmpty(), 2u);
}

TEST(MinHashCoordinationTest, BottomKOfUnionContainsSubsetMins) {
  // Coordination property: sketches of overlapping sets built from the same
  // ranks merge into the union's sketch.
  Rng rng(9);
  std::vector<double> ranks_a, ranks_b;
  BottomKSketch sa(4), sb(4), su(4);
  for (int i = 0; i < 50; ++i) {
    double r = rng.NextUnit();
    sa.Update(r);
    su.Update(r);
  }
  for (int i = 0; i < 50; ++i) {
    double r = rng.NextUnit();
    sb.Update(r);
    su.Update(r);
  }
  BottomKSketch merged = sa;
  merged.Merge(sb);
  EXPECT_EQ(merged.ranks(), su.ranks());
}

}  // namespace
}  // namespace hipads
