#include "stream/stream_ads.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ads/estimators.h"
#include "util/random.h"
#include "util/stats.h"

namespace hipads {
namespace {

TEST(FirstOccurrenceTest, RecordsEveryThresholdBeat) {
  auto ranks = RankAssignment::Uniform(3);
  FirstOccurrenceAds sketch(2, ranks);
  // Replay elements with known ranks and verify entries are exactly the
  // bottom-2 updates.
  BottomKSketch expect(2);
  uint64_t inserted = 0;
  for (uint64_t e = 0; e < 100; ++e) {
    bool changed = sketch.Process(e, static_cast<double>(e));
    bool should = expect.Update(ranks.rank(e));
    EXPECT_EQ(changed, should) << "element " << e;
    if (should) ++inserted;
  }
  EXPECT_EQ(sketch.ads().size(), inserted);
}

TEST(FirstOccurrenceTest, DuplicatesNeverUpdate) {
  auto ranks = RankAssignment::Uniform(5);
  FirstOccurrenceAds sketch(4, ranks);
  for (uint64_t e = 0; e < 20; ++e) sketch.Process(e, static_cast<double>(e));
  size_t before = sketch.ads().size();
  for (uint64_t e = 0; e < 20; ++e) {
    EXPECT_FALSE(sketch.Process(e, 20.0 + static_cast<double>(e)));
  }
  EXPECT_EQ(sketch.ads().size(), before);
}

TEST(FirstOccurrenceTest, EntriesSortedByTime) {
  auto ranks = RankAssignment::Uniform(7);
  FirstOccurrenceAds sketch(3, ranks);
  for (uint64_t e = 0; e < 200; ++e) {
    sketch.Process(e * 7 % 199, static_cast<double>(e));
  }
  const auto& entries = sketch.ads().entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1].dist, entries[i].dist);
  }
}

TEST(FirstOccurrenceTest, HipEstimatesDistinctCount) {
  // HIP over the streaming ADS estimates the number of distinct elements
  // seen up to any time prefix.
  const uint32_t k = 8;
  const uint64_t n = 500;
  RunningStat est;
  for (uint64_t seed = 0; seed < 1500; ++seed) {
    auto ranks = RankAssignment::Uniform(seed * 31 + 7);
    FirstOccurrenceAds sketch(k, ranks);
    for (uint64_t e = 0; e < n; ++e) {
      sketch.Process(e, static_cast<double>(e));
    }
    HipEstimator hip(sketch.ads(), k, SketchFlavor::kBottomK, ranks);
    est.Add(hip.NeighborhoodCardinality(static_cast<double>(n)));
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.03);
}

TEST(FirstOccurrenceTest, KMinsFlavorHipUnbiased) {
  const uint32_t k = 8;
  const uint64_t n = 400;
  RunningStat est;
  for (uint64_t seed = 0; seed < 1200; ++seed) {
    auto ranks = RankAssignment::Uniform(seed * 17 + 3);
    FirstOccurrenceAds sketch(k, ranks, SketchFlavor::kKMins);
    for (uint64_t e = 0; e < n; ++e) {
      sketch.Process(e, static_cast<double>(e));
    }
    HipEstimator hip(sketch.ads(), k, SketchFlavor::kKMins, ranks);
    est.Add(hip.NeighborhoodCardinality(static_cast<double>(n)));
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.03);
}

TEST(FirstOccurrenceTest, KPartitionFlavorHipUnbiased) {
  const uint32_t k = 8;
  const uint64_t n = 400;
  RunningStat est;
  for (uint64_t seed = 0; seed < 1200; ++seed) {
    auto ranks = RankAssignment::Uniform(seed * 23 + 5);
    FirstOccurrenceAds sketch(k, ranks, SketchFlavor::kKPartition);
    for (uint64_t e = 0; e < n; ++e) {
      sketch.Process(e, static_cast<double>(e));
    }
    HipEstimator hip(sketch.ads(), k, SketchFlavor::kKPartition, ranks);
    est.Add(hip.NeighborhoodCardinality(static_cast<double>(n)));
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.03);
}

TEST(FirstOccurrenceTest, KMinsDuplicatesNeverUpdate) {
  auto ranks = RankAssignment::Uniform(7);
  FirstOccurrenceAds sketch(4, ranks, SketchFlavor::kKMins);
  for (uint64_t e = 0; e < 30; ++e) sketch.Process(e, static_cast<double>(e));
  size_t before = sketch.ads().size();
  for (uint64_t e = 0; e < 30; ++e) {
    EXPECT_FALSE(sketch.Process(e, 30.0 + static_cast<double>(e)));
  }
  EXPECT_EQ(sketch.ads().size(), before);
}

TEST(RecentOccurrenceTest, TimeDecayedStatisticsViaHip) {
  // Section 3.1 + Section 5: HIP over the recent-occurrence ADS estimates
  // time-decaying statistics sum over distinct elements of alpha(age).
  const uint32_t k = 8;
  const double horizon = 1000.0;
  auto alpha = [](double age) { return std::exp(-age / 100.0); };
  // Stream: elements 0..199, each occurring once at time = element id.
  RunningStat est;
  double exact = 0.0;
  for (uint64_t e = 0; e < 200; ++e) {
    exact += alpha(horizon - static_cast<double>(e));
  }
  for (uint64_t seed = 0; seed < 2000; ++seed) {
    auto ranks = RankAssignment::Uniform(seed * 31 + 11);
    RecentOccurrenceAds sketch(k, ranks, horizon);
    for (uint64_t e = 0; e < 200; ++e) {
      sketch.Process(e, static_cast<double>(e));
    }
    HipEstimator hip(sketch.SnapshotAds(), k, SketchFlavor::kBottomK, ranks);
    est.Add(hip.Qg([&alpha](NodeId, double age) { return alpha(age); }));
  }
  EXPECT_NEAR(est.mean() / exact, 1.0, 0.03);
}

TEST(RecentOccurrenceTest, NewestAlwaysIncluded) {
  auto ranks = RankAssignment::Uniform(11);
  RecentOccurrenceAds sketch(2, ranks, 1000.0);
  for (uint64_t e = 0; e < 50; ++e) {
    sketch.Process(e, static_cast<double>(e));
    Ads snapshot = sketch.SnapshotAds();
    ASSERT_FALSE(snapshot.empty());
    // Newest element is the closest entry (smallest age).
    EXPECT_EQ(snapshot.entries()[0].node, static_cast<NodeId>(e));
  }
}

TEST(RecentOccurrenceTest, ReoccurrenceMovesElementCloser) {
  auto ranks = RankAssignment::Uniform(13);
  RecentOccurrenceAds sketch(4, ranks, 1000.0);
  sketch.Process(1, 1.0);
  sketch.Process(2, 2.0);
  sketch.Process(3, 3.0);
  sketch.Process(1, 4.0);  // element 1 again
  Ads snap = sketch.SnapshotAds();
  // Element 1 must appear exactly once, at age 996.
  int count = 0;
  for (const AdsEntry& e : snap.entries()) {
    if (e.node == 1) {
      ++count;
      EXPECT_EQ(e.dist, 996.0);
    }
  }
  EXPECT_EQ(count, 1);
}

TEST(RecentOccurrenceTest, CanonicalInvariant) {
  // At any point the retained entries must satisfy the bottom-k ADS rule
  // over ages.
  auto ranks = RankAssignment::Uniform(17);
  const uint32_t k = 3;
  RecentOccurrenceAds sketch(k, ranks, 10000.0);
  Rng rng(5);
  for (uint64_t t = 0; t < 300; ++t) {
    sketch.Process(rng.NextBounded(80), static_cast<double>(t));
  }
  Ads snap = sketch.SnapshotAds();
  Ads canon = Ads::CanonicalBottomK(snap.entries(), k, ranks.sup());
  ASSERT_EQ(snap.size(), canon.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap.entries()[i].node, canon.entries()[i].node);
  }
}

TEST(RecentOccurrenceTest, SizeStaysLogarithmic) {
  auto ranks = RankAssignment::Uniform(19);
  const uint32_t k = 4;
  RecentOccurrenceAds sketch(k, ranks, 100000.0);
  for (uint64_t t = 0; t < 5000; ++t) {
    sketch.Process(t, static_cast<double>(t));  // all distinct
  }
  // Expected size ~ k(1 + ln(n) - ln(k)) ~ 4 * (1 + 8.5 - 1.4) ~ 33.
  EXPECT_LT(sketch.CurrentSize(), 80u);
  EXPECT_GT(sketch.CurrentSize(), 10u);
}

}  // namespace
}  // namespace hipads
