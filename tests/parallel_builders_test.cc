// Determinism suite for the parallel ADS machinery: the rank-window
// pruned-Dijkstra builder and the round-sharded DP builder must produce
// entry-for-entry (bit-identical) copies of their sequential counterparts
// for every thread count, flavor, seed, and weighted/unweighted graph; the
// flat CSR storage and the parallel estimator loops must be exact
// re-packagings of the per-node-vector results.

#include "ads/builders.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "ads/flat_ads.h"
#include "ads/queries.h"
#include "ads/serialize.h"
#include "graph/generators.h"
#include "util/parallel.h"

namespace hipads {
namespace {

// Exact (bitwise) comparison: the parallel builders replay the sequential
// inclusion decisions, so even the floating-point dist/rank values must
// match to the last bit, not just to a tolerance.
void ExpectIdenticalAdsSet(const AdsSet& a, const AdsSet& b,
                           const std::string& label) {
  ASSERT_EQ(a.ads.size(), b.ads.size()) << label;
  for (NodeId v = 0; v < a.ads.size(); ++v) {
    const auto& ea = a.of(v).entries();
    const auto& eb = b.of(v).entries();
    ASSERT_EQ(ea.size(), eb.size()) << label << " node " << v;
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].node, eb[i].node) << label << " node " << v << " #" << i;
      EXPECT_EQ(ea[i].part, eb[i].part) << label << " node " << v << " #" << i;
      EXPECT_EQ(ea[i].rank, eb[i].rank) << label << " node " << v << " #" << i;
      EXPECT_EQ(ea[i].dist, eb[i].dist) << label << " node " << v << " #" << i;
    }
  }
}

std::vector<SketchFlavor> AllFlavors() {
  return {SketchFlavor::kBottomK, SketchFlavor::kKMins,
          SketchFlavor::kKPartition};
}

const char* FlavorName(SketchFlavor flavor) {
  switch (flavor) {
    case SketchFlavor::kBottomK:
      return "bottom-k";
    case SketchFlavor::kKMins:
      return "k-mins";
    case SketchFlavor::kKPartition:
      return "k-partition";
  }
  return "?";
}

struct TestGraph {
  std::string name;
  Graph g;
};

std::vector<TestGraph> TestGraphs() {
  std::vector<TestGraph> graphs;
  graphs.push_back({"er-unweighted",
                    ErdosRenyi(120, 480, /*undirected=*/true, 7)});
  graphs.push_back(
      {"er-weighted", RandomizeWeights(
                          ErdosRenyi(120, 480, /*undirected=*/true, 7),
                          0.5, 2.0, 3)});
  graphs.push_back({"ba", BarabasiAlbert(150, 3, 11)});
  graphs.push_back({"grid", Grid2D(9, 9)});
  graphs.push_back({"er-directed-weighted",
                    RandomizeWeights(
                        ErdosRenyi(100, 500, /*undirected=*/false, 13),
                        0.1, 5.0, 17)});
  return graphs;
}

TEST(ParallelPrunedDijkstraTest, BitIdenticalAcrossThreadCounts) {
  for (const TestGraph& tg : TestGraphs()) {
    for (SketchFlavor flavor : AllFlavors()) {
      for (uint64_t seed : {1ULL, 42ULL}) {
        auto ranks = RankAssignment::Uniform(seed);
        AdsSet reference =
            BuildAdsPrunedDijkstra(tg.g, 4, flavor, ranks);
        for (uint32_t threads : {1u, 2u, 8u}) {
          AdsSet parallel = BuildAdsPrunedDijkstraParallel(
              tg.g, 4, flavor, ranks, threads);
          ExpectIdenticalAdsSet(
              reference, parallel,
              tg.name + " " + FlavorName(flavor) + " seed " +
                  std::to_string(seed) + " threads " +
                  std::to_string(threads));
        }
      }
    }
  }
}

TEST(ParallelPrunedDijkstraTest, BitIdenticalWithBaseBRanks) {
  Graph g = RandomizeWeights(ErdosRenyi(100, 400, true, 5), 0.5, 2.0, 9);
  auto ranks = RankAssignment::BaseB(3, 2.0);
  AdsSet reference =
      BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK, ranks);
  for (uint32_t threads : {2u, 8u}) {
    AdsSet parallel = BuildAdsPrunedDijkstraParallel(
        g, 4, SketchFlavor::kBottomK, ranks, threads);
    ExpectIdenticalAdsSet(reference, parallel,
                          "base-b threads " + std::to_string(threads));
  }
}

TEST(ParallelPrunedDijkstraTest, InsertionCountMatchesSequential) {
  // The frozen-state searches explore more (relaxations grow) but accept
  // exactly the sequential entries.
  Graph g = RandomizeWeights(ErdosRenyi(150, 600, true, 21), 0.5, 2.0, 2);
  auto ranks = RankAssignment::Uniform(4);
  AdsBuildStats seq_stats, par_stats;
  AdsSet reference = BuildAdsPrunedDijkstra(g, 8, SketchFlavor::kBottomK,
                                            ranks, &seq_stats);
  AdsSet parallel = BuildAdsPrunedDijkstraParallel(
      g, 8, SketchFlavor::kBottomK, ranks, 4, &par_stats);
  ExpectIdenticalAdsSet(reference, parallel, "stats run");
  EXPECT_EQ(seq_stats.insertions, par_stats.insertions);
  EXPECT_EQ(seq_stats.insertions, reference.TotalEntries());
  EXPECT_GE(par_stats.relaxations, seq_stats.relaxations);
  EXPECT_GT(par_stats.rounds, 0u);
}

TEST(ParallelLocalUpdatesTest, BitIdenticalAcrossThreadCounts) {
  for (const TestGraph& tg : TestGraphs()) {
    for (SketchFlavor flavor : AllFlavors()) {
      auto ranks = RankAssignment::Uniform(42);
      AdsSet reference = BuildAdsLocalUpdates(tg.g, 4, flavor, ranks);
      for (uint32_t threads : {1u, 2u, 8u}) {
        AdsSet parallel = BuildAdsLocalUpdatesParallel(
            tg.g, 4, flavor, ranks, /*epsilon=*/0.0, threads);
        ExpectIdenticalAdsSet(reference, parallel,
                              tg.name + " " + FlavorName(flavor) +
                                  " threads " + std::to_string(threads));
      }
    }
  }
}

TEST(ParallelLocalUpdatesTest, BitIdenticalInApproximateMode) {
  // The (1+epsilon) slack changes which updates are accepted, not the
  // determinism: the parallel rounds must replay the sequential decisions
  // for any epsilon.
  Graph g = RandomizeWeights(ErdosRenyi(100, 400, true, 31), 0.5, 2.0, 7);
  auto ranks = RankAssignment::Uniform(8);
  for (double epsilon : {0.0, 0.25, 1.0}) {
    AdsSet reference =
        BuildAdsLocalUpdates(g, 4, SketchFlavor::kBottomK, ranks, epsilon);
    for (uint32_t threads : {2u, 8u}) {
      AdsSet parallel = BuildAdsLocalUpdatesParallel(
          g, 4, SketchFlavor::kBottomK, ranks, epsilon, threads);
      ExpectIdenticalAdsSet(reference, parallel,
                            "epsilon " + std::to_string(epsilon) +
                                " threads " + std::to_string(threads));
    }
  }
}

TEST(ParallelLocalUpdatesTest, WorkCountersMatchSequentialExactly) {
  // Chunked rounds replay the sequential per-target decisions exactly, so
  // even the churn counters (not just the output) must agree.
  Graph g = RandomizeWeights(ErdosRenyi(120, 480, true, 3), 0.5, 2.0, 11);
  auto ranks = RankAssignment::Uniform(9);
  AdsBuildStats seq_stats, par_stats;
  AdsSet reference = BuildAdsLocalUpdates(g, 8, SketchFlavor::kBottomK,
                                          ranks, 0.0, &seq_stats);
  AdsSet parallel = BuildAdsLocalUpdatesParallel(
      g, 8, SketchFlavor::kBottomK, ranks, 0.0, 4, &par_stats);
  ExpectIdenticalAdsSet(reference, parallel, "local-updates stats run");
  EXPECT_EQ(seq_stats.insertions, par_stats.insertions);
  EXPECT_EQ(seq_stats.deletions, par_stats.deletions);
  EXPECT_EQ(seq_stats.relaxations, par_stats.relaxations);
  EXPECT_EQ(seq_stats.rounds, par_stats.rounds);
}

TEST(ParallelDpTest, BitIdenticalAcrossThreadCounts) {
  for (const TestGraph& tg : TestGraphs()) {
    if (!tg.g.IsUnitWeight()) continue;
    for (SketchFlavor flavor : AllFlavors()) {
      for (uint64_t seed : {1ULL, 42ULL}) {
        auto ranks = RankAssignment::Uniform(seed);
        AdsSet reference = BuildAdsDp(tg.g, 4, flavor, ranks);
        for (uint32_t threads : {1u, 2u, 8u}) {
          AdsSet parallel =
              BuildAdsDpParallel(tg.g, 4, flavor, ranks, threads);
          ExpectIdenticalAdsSet(
              reference, parallel,
              tg.name + " " + FlavorName(flavor) + " seed " +
                  std::to_string(seed) + " threads " +
                  std::to_string(threads));
        }
      }
    }
  }
}

TEST(FlatAdsSetTest, RoundTripsThroughFlatStorage) {
  Graph g = ErdosRenyi(80, 320, true, 3);
  auto ranks = RankAssignment::Uniform(1);
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK, ranks);
  FlatAdsSet flat = FlatAdsSet::FromAdsSet(set);

  ASSERT_EQ(flat.num_nodes(), set.num_nodes());
  EXPECT_EQ(flat.TotalEntries(), set.TotalEntries());
  for (NodeId v = 0; v < set.num_nodes(); ++v) {
    auto view = flat.of(v);
    const auto& entries = set.of(v).entries();
    ASSERT_EQ(view.size(), entries.size()) << "node " << v;
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(view.entries()[i].node, entries[i].node);
      EXPECT_EQ(view.entries()[i].dist, entries[i].dist);
      EXPECT_EQ(view.entries()[i].rank, entries[i].rank);
    }
  }
  ExpectIdenticalAdsSet(set, flat.ToAdsSet(), "flat round trip");
}

TEST(FlatAdsSetTest, SerializationMatchesAndParsesFlat) {
  Graph g = ErdosRenyi(60, 240, true, 9);
  auto ranks = RankAssignment::Uniform(5);
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kKPartition, ranks);
  FlatAdsSet flat = FlatAdsSet::FromAdsSet(set);

  std::string text = SerializeAdsSet(set);
  EXPECT_EQ(text, SerializeAdsSet(flat))
      << "both layouts must emit byte-identical files";

  auto parsed = ParseFlatAdsSet(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const FlatAdsSet& loaded = parsed.value();
  ASSERT_EQ(loaded.num_nodes(), flat.num_nodes());
  EXPECT_EQ(loaded.TotalEntries(), flat.TotalEntries());
  EXPECT_EQ(loaded.k, flat.k);
  EXPECT_EQ(SerializeAdsSet(loaded), text);
}

TEST(FlatAdsSetTest, QueriesMatchPerNodeStorage) {
  Graph g = BarabasiAlbert(100, 3, 29);
  auto ranks = RankAssignment::Uniform(2);
  AdsSet set = BuildAdsPrunedDijkstra(g, 6, SketchFlavor::kBottomK, ranks);
  FlatAdsSet flat = FlatAdsSet::FromAdsSet(set);

  for (uint32_t threads : {1u, 4u}) {
    EXPECT_EQ(EstimateNeighborhoodFunction(set, threads),
              EstimateNeighborhoodFunction(flat, threads))
        << threads << " threads";
    EXPECT_EQ(EstimateHarmonicCentralityAll(set, threads),
              EstimateHarmonicCentralityAll(flat, threads));
    EXPECT_EQ(EstimateDistanceSumAll(set, threads),
              EstimateDistanceSumAll(flat, threads));
    EXPECT_EQ(EstimateNeighborhoodSizeAll(set, 3.0, threads),
              EstimateNeighborhoodSizeAll(flat, 3.0, threads));
    EXPECT_EQ(EstimateReachableCountAll(set, threads),
              EstimateReachableCountAll(flat, threads));
  }
  // Thread count must not change any result, bitwise.
  EXPECT_EQ(EstimateNeighborhoodFunction(flat, 1),
            EstimateNeighborhoodFunction(flat, 8));
  EXPECT_EQ(EstimateEffectiveDiameter(set), EstimateEffectiveDiameter(flat));
  EXPECT_EQ(EstimateMeanDistance(set), EstimateMeanDistance(flat));
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.RunTasks(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeWithoutOverlap) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end, uint32_t) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelRangesRespectsBounds) {
  ThreadPool pool(2);
  std::vector<size_t> bounds = {0, 10, 10, 25};
  std::vector<int> visited(25, 0);
  std::vector<uint32_t> range_of(25, ~0u);
  pool.ParallelRanges(bounds, [&](size_t begin, size_t end, uint32_t t) {
    for (size_t i = begin; i < end; ++i) {
      ++visited[i];
      range_of[i] = t;
    }
  });
  for (size_t i = 0; i < visited.size(); ++i) {
    EXPECT_EQ(visited[i], 1);
    EXPECT_EQ(range_of[i], i < 10 ? 0u : 2u);
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int counter = 0;
  pool.RunTasks(17, [&](size_t) { ++counter; });
  EXPECT_EQ(counter, 17);
}

}  // namespace
}  // namespace hipads
