#include "ads/queries.h"

#include <gtest/gtest.h>

#include "ads/builders.h"
#include "graph/exact.h"
#include "graph/generators.h"
#include "util/stats.h"

namespace hipads {
namespace {

TEST(QueriesTest, DistanceDistributionUnbiasedOnCycle) {
  Graph g = Cycle(40);
  auto exact = ExactDistanceDistribution(g);
  const uint32_t k = 8;
  std::map<double, RunningStat> sums;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK,
                                        RankAssignment::Uniform(seed));
    auto est = EstimateDistanceDistribution(set);
    for (const auto& [d, count] : exact) {
      auto it = est.find(d);
      sums[d].Add(it == est.end() ? 0.0 : it->second);
    }
  }
  for (const auto& [d, stat] : sums) {
    EXPECT_NEAR(stat.mean() / static_cast<double>(exact[d]), 1.0, 0.15)
        << "distance " << d;
  }
}

TEST(QueriesTest, NeighborhoodFunctionIsRunningSum) {
  Graph g = ErdosRenyi(60, 200, true, 3);
  AdsSet set = BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(1));
  auto dist = EstimateDistanceDistribution(set);
  auto nf = EstimateNeighborhoodFunction(set);
  double running = 0.0;
  for (const auto& [d, v] : dist) {
    running += v;
    EXPECT_DOUBLE_EQ(nf[d], running);
  }
}

TEST(QueriesTest, ClosenessAllSizesAndAccuracy) {
  Graph g = BarabasiAlbert(200, 2, 9);
  const uint32_t k = 12;
  // Average estimates over seeds, then compare to exact for a few nodes.
  std::vector<RunningStat> acc(g.num_nodes());
  for (uint64_t seed = 0; seed < 30; ++seed) {
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK,
                                        RankAssignment::Uniform(seed));
    auto est = EstimateClosenessAll(
        set, [](double d) { return 1.0 / (1.0 + d); },
        [](NodeId) { return 1.0; });
    ASSERT_EQ(est.size(), g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) acc[v].Add(est[v]);
  }
  for (NodeId v : {0u, 50u, 150u}) {
    double exact = ExactClosenessCentrality(
        g, v, [](double d) { return 1.0 / (1.0 + d); },
        [](NodeId) { return 1.0; });
    EXPECT_NEAR(acc[v].mean() / exact, 1.0, 0.1) << "node " << v;
  }
}

TEST(QueriesTest, HarmonicAndDistanceSumAll) {
  Graph g = ErdosRenyi(80, 240, true, 13);
  AdsSet set = BuildAdsPrunedDijkstra(g, 16, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(5));
  auto harm = EstimateHarmonicCentralityAll(set);
  auto ds = EstimateDistanceSumAll(set);
  ASSERT_EQ(harm.size(), g.num_nodes());
  ASSERT_EQ(ds.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(harm[v], 0.0);
    EXPECT_GE(ds[v], 0.0);
  }
}

TEST(QueriesTest, NeighborhoodSizeAllExactBelowK) {
  Graph g = Path(20);
  AdsSet set = BuildAdsPrunedDijkstra(g, 8, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(7));
  auto sizes = EstimateNeighborhoodSizeAll(set, 2.0);
  for (NodeId v = 2; v < 18; ++v) {
    EXPECT_EQ(sizes[v], 5.0);  // exact: 5 nodes within distance 2 (< k)
  }
}

TEST(QueriesTest, TopKNodesOrdering) {
  std::vector<double> scores = {1.0, 5.0, 3.0, 5.0, 2.0};
  auto top = TopKNodes(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties broken by id
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(QueriesTest, TopKNodesClampsCount) {
  std::vector<double> scores = {1.0, 2.0};
  EXPECT_EQ(TopKNodes(scores, 10).size(), 2u);
}

TEST(QueriesTest, EffectiveDiameterOnPath) {
  // On a path of 40 nodes the 0.9-effective diameter is large; on a star
  // it is 2. Sanity-check both from sketches.
  AdsSet path_set = BuildAdsPrunedDijkstra(Path(40), 16,
                                           SketchFlavor::kBottomK,
                                           RankAssignment::Uniform(3));
  AdsSet star_set = BuildAdsPrunedDijkstra(Star(40), 16,
                                           SketchFlavor::kBottomK,
                                           RankAssignment::Uniform(3));
  EXPECT_GT(EstimateEffectiveDiameter(path_set, 0.9), 15.0);
  EXPECT_EQ(EstimateEffectiveDiameter(star_set, 0.9), 2.0);
}

TEST(QueriesTest, EffectiveDiameterMonotoneInQuantile) {
  Graph g = BarabasiAlbert(300, 2, 5);
  AdsSet set = BuildAdsDp(g, 16, SketchFlavor::kBottomK,
                          RankAssignment::Uniform(7));
  EXPECT_LE(EstimateEffectiveDiameter(set, 0.5),
            EstimateEffectiveDiameter(set, 0.9));
  EXPECT_LE(EstimateEffectiveDiameter(set, 0.9),
            EstimateEffectiveDiameter(set, 1.0));
}

TEST(QueriesTest, MeanDistanceOnCompleteGraph) {
  // All pairs at distance 1.
  AdsSet set = BuildAdsPrunedDijkstra(Complete(30), 8,
                                      SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(9));
  EXPECT_DOUBLE_EQ(EstimateMeanDistance(set), 1.0);
}

TEST(QueriesTest, MeanDistanceTracksExactOnCycle) {
  Graph g = Cycle(30);
  // Exact mean distance on an even cycle of 30: distances 1..15, with 15
  // appearing once per node and the rest twice: (2*sum(1..14)+15)/29.
  double exact = (2.0 * (14.0 * 15.0 / 2.0) + 15.0) / 29.0;
  RunningStat est;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    AdsSet set = BuildAdsPrunedDijkstra(g, 8, SketchFlavor::kBottomK,
                                        RankAssignment::Uniform(seed));
    est.Add(EstimateMeanDistance(set));
  }
  EXPECT_NEAR(est.mean() / exact, 1.0, 0.05);
}

TEST(QueriesTest, TopClosenessFindsStarCenter) {
  Graph g = Star(100);
  AdsSet set = BuildAdsPrunedDijkstra(g, 16, SketchFlavor::kBottomK,
                                      RankAssignment::Uniform(21));
  auto harm = EstimateHarmonicCentralityAll(set);
  EXPECT_EQ(TopKNodes(harm, 1)[0], 0u);  // the hub
}

}  // namespace
}  // namespace hipads
