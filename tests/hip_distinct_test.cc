#include "stream/hip_distinct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stream/hll.h"
#include "util/random.h"
#include "util/stats.h"

namespace hipads {
namespace {

TEST(HllHipTest, ExactForFirstElementsSmallK) {
  // With all registers empty, the first update has tau = 1.
  HllHipCounter c(16, 3);
  c.Add(0);
  EXPECT_NEAR(c.Estimate(), 1.0, 1e-9);
}

TEST(HllHipTest, DuplicatesDoNotChangeEstimate) {
  HllHipCounter c(16, 5);
  for (uint64_t e = 0; e < 200; ++e) c.Add(e);
  double before = c.Estimate();
  for (uint64_t e = 0; e < 200; ++e) c.Add(e);
  EXPECT_EQ(c.Estimate(), before);
}

TEST(HllHipTest, UnbiasedAcrossCardinalities) {
  const uint32_t k = 32;
  for (uint64_t n : {50ULL, 500ULL, 20000ULL}) {
    RunningStat est;
    for (uint64_t seed = 0; seed < 400; ++seed) {
      HllHipCounter c(k, seed * 13 + 1);
      for (uint64_t e = 0; e < n; ++e) c.Add(e);
      est.Add(c.Estimate());
    }
    EXPECT_NEAR(est.mean() / static_cast<double>(n), 1.0, 0.03)
        << "n = " << n;
  }
}

TEST(HllHipTest, NrmseMatchesPaperFormula) {
  // Section 6: NRMSE of HIP on base-2 k-partition ~ sqrt(3/(4k)) ~
  // 0.866/sqrt(k).
  const uint32_t k = 64;
  const uint64_t n = 30000;
  ErrorStats err;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    HllHipCounter c(k, seed * 31 + 5);
    for (uint64_t e = 0; e < n; ++e) c.Add(e);
    err.Add(c.Estimate(), static_cast<double>(n));
  }
  EXPECT_NEAR(err.nrmse(), std::sqrt(3.0 / (4.0 * k)), 0.025);
}

TEST(HllHipTest, BeatsHllOnSameSketch) {
  const uint32_t k = 32;
  const uint64_t n = 20000;
  ErrorStats hip_err, hll_err;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    HllHipCounter hip(k, seed + 17);
    HyperLogLog hll(k, seed + 17);
    for (uint64_t e = 0; e < n; ++e) {
      hip.Add(e);
      hll.Add(e);
    }
    hip_err.Add(hip.Estimate(), static_cast<double>(n));
    hll_err.Add(hll.Estimate(), static_cast<double>(n));
  }
  EXPECT_LT(hip_err.nrmse(), hll_err.nrmse());
}

TEST(HllHipTest, SaturationFreezesEstimate) {
  // Tiny cap: all registers saturate quickly, after which the estimate
  // stops growing.
  HllHipCounter c(4, 9, /*register_cap=*/2);
  for (uint64_t e = 0; e < 1000; ++e) c.Add(e);
  EXPECT_TRUE(c.Saturated());
  double frozen = c.Estimate();
  for (uint64_t e = 1000; e < 2000; ++e) c.Add(e);
  EXPECT_EQ(c.Estimate(), frozen);
}

TEST(BottomKHipCounterTest, ExactUpToK) {
  BottomKHipCounter c(8, 3);
  for (uint64_t e = 0; e < 8; ++e) {
    c.Add(e);
    EXPECT_DOUBLE_EQ(c.Estimate(), static_cast<double>(e + 1));
  }
}

TEST(BottomKHipCounterTest, DuplicatesIgnored) {
  BottomKHipCounter c(8, 5);
  for (uint64_t e = 0; e < 100; ++e) c.Add(e);
  double before = c.Estimate();
  for (uint64_t e = 0; e < 100; ++e) c.Add(e);
  EXPECT_EQ(c.Estimate(), before);
}

TEST(BottomKHipCounterTest, UnbiasedFullRanks) {
  const uint32_t k = 16;
  const uint64_t n = 5000;
  RunningStat est;
  ErrorStats err;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    BottomKHipCounter c(k, seed * 7 + 3);
    for (uint64_t e = 0; e < n; ++e) c.Add(e);
    est.Add(c.Estimate());
    err.Add(c.Estimate(), static_cast<double>(n));
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.02);
  // Theorem 5.1 bound 1/sqrt(2(k-1)) = 0.183.
  EXPECT_LT(err.nrmse(), 0.2);
}

TEST(BottomKHipCounterTest, BaseBUnbiasedWithHigherError) {
  const uint32_t k = 16;
  const uint64_t n = 5000;
  RunningStat est;
  ErrorStats err_full, err_b;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    BottomKHipCounter full(k, seed * 11 + 1);
    BottomKHipCounter b2(k, seed * 11 + 1, /*base=*/2.0);
    for (uint64_t e = 0; e < n; ++e) {
      full.Add(e);
      b2.Add(e);
    }
    est.Add(b2.Estimate());
    err_full.Add(full.Estimate(), static_cast<double>(n));
    err_b.Add(b2.Estimate(), static_cast<double>(n));
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.025);
  EXPECT_GT(err_b.nrmse(), err_full.nrmse());
}

TEST(KMinsHipCounterTest, UnbiasedAndBounded) {
  const uint32_t k = 16;
  const uint64_t n = 3000;
  RunningStat est;
  ErrorStats err;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    KMinsHipCounter c(k, seed * 3 + 11);
    for (uint64_t e = 0; e < n; ++e) c.Add(e);
    est.Add(c.Estimate());
    err.Add(c.Estimate(), static_cast<double>(n));
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.02);
  EXPECT_LT(err.nrmse(), 0.25);
}

TEST(KMinsHipCounterTest, DuplicatesIgnored) {
  KMinsHipCounter c(8, 5);
  for (uint64_t e = 0; e < 50; ++e) c.Add(e);
  double before = c.Estimate();
  for (uint64_t e = 0; e < 50; ++e) c.Add(e);
  EXPECT_EQ(c.Estimate(), before);
}

TEST(PermutationCounterTest, ExactWhenStreamCoversAll) {
  // When every element 0..n-1 appears, the corrected estimate applies and
  // remains unbiased; also exact below k.
  const uint32_t k = 8;
  const uint64_t n = 64;
  Rng rng(3);
  RunningStat est;
  for (int run = 0; run < 3000; ++run) {
    PermutationDistinctCounter c(k, rng.NextPermutation(n));
    for (uint64_t e = 0; e < n; ++e) c.Add(e);
    est.Add(c.Estimate());
  }
  EXPECT_NEAR(est.mean() / n, 1.0, 0.03);
}

TEST(PermutationCounterTest, ExactBelowK) {
  Rng rng(9);
  PermutationDistinctCounter c(8, rng.NextPermutation(100));
  for (uint64_t e = 0; e < 5; ++e) {
    c.Add(e);
    EXPECT_DOUBLE_EQ(c.Estimate(), static_cast<double>(e + 1));
  }
}

TEST(PermutationCounterTest, DuplicatesIgnored) {
  Rng rng(13);
  PermutationDistinctCounter c(4, rng.NextPermutation(50));
  for (uint64_t e = 0; e < 30; ++e) c.Add(e);
  double before = c.Estimate();
  for (uint64_t e = 0; e < 30; ++e) c.Add(e);
  EXPECT_EQ(c.Estimate(), before);
}

}  // namespace
}  // namespace hipads
