// Equivalence and correctness tests for the three ADS builders: all must
// produce the brute-force reference ADS set (PrunedDijkstra and LocalUpdates
// on weighted graphs too, DP on unweighted), across flavors and graph
// shapes. Parameterized sweeps cover the (flavor, k, graph) matrix.

#include "ads/builders.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/stats.h"

namespace hipads {
namespace {

// Compares two ADS sets entry-by-entry (node, part, dist).
void ExpectSameAdsSet(const AdsSet& a, const AdsSet& b,
                      const std::string& label) {
  ASSERT_EQ(a.ads.size(), b.ads.size()) << label;
  for (NodeId v = 0; v < a.ads.size(); ++v) {
    const auto& ea = a.of(v).entries();
    const auto& eb = b.of(v).entries();
    ASSERT_EQ(ea.size(), eb.size()) << label << " node " << v;
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].node, eb[i].node) << label << " node " << v << " #" << i;
      EXPECT_EQ(ea[i].part, eb[i].part) << label << " node " << v << " #" << i;
      EXPECT_DOUBLE_EQ(ea[i].dist, eb[i].dist)
          << label << " node " << v << " #" << i;
    }
  }
}

struct BuilderCase {
  SketchFlavor flavor;
  uint32_t k;
};

class BuilderEquivalenceTest
    : public ::testing::TestWithParam<BuilderCase> {};

TEST_P(BuilderEquivalenceTest, DijkstraMatchesReferenceOnErdosRenyi) {
  auto [flavor, k] = GetParam();
  Graph g = ErdosRenyi(80, 200, /*undirected=*/true, 17);
  auto ranks = RankAssignment::Uniform(5);
  ExpectSameAdsSet(BuildAdsPrunedDijkstra(g, k, flavor, ranks),
                   BuildAdsReference(g, k, flavor, ranks), "dijkstra-er");
}

TEST_P(BuilderEquivalenceTest, DpMatchesReferenceOnErdosRenyi) {
  auto [flavor, k] = GetParam();
  Graph g = ErdosRenyi(80, 200, true, 17);
  auto ranks = RankAssignment::Uniform(5);
  ExpectSameAdsSet(BuildAdsDp(g, k, flavor, ranks),
                   BuildAdsReference(g, k, flavor, ranks), "dp-er");
}

TEST_P(BuilderEquivalenceTest, LocalUpdatesMatchesReferenceOnErdosRenyi) {
  auto [flavor, k] = GetParam();
  Graph g = ErdosRenyi(60, 150, true, 19);
  auto ranks = RankAssignment::Uniform(5);
  ExpectSameAdsSet(BuildAdsLocalUpdates(g, k, flavor, ranks),
                   BuildAdsReference(g, k, flavor, ranks), "lu-er");
}

TEST_P(BuilderEquivalenceTest, DijkstraMatchesReferenceWeighted) {
  auto [flavor, k] = GetParam();
  Graph g = RandomizeWeights(ErdosRenyi(60, 150, true, 23), 0.2, 3.0, 7);
  auto ranks = RankAssignment::Uniform(5);
  ExpectSameAdsSet(BuildAdsPrunedDijkstra(g, k, flavor, ranks),
                   BuildAdsReference(g, k, flavor, ranks), "dijkstra-w");
}

TEST_P(BuilderEquivalenceTest, LocalUpdatesMatchesReferenceWeighted) {
  auto [flavor, k] = GetParam();
  Graph g = RandomizeWeights(ErdosRenyi(50, 120, true, 29), 0.2, 3.0, 7);
  auto ranks = RankAssignment::Uniform(5);
  ExpectSameAdsSet(BuildAdsLocalUpdates(g, k, flavor, ranks),
                   BuildAdsReference(g, k, flavor, ranks), "lu-w");
}

TEST_P(BuilderEquivalenceTest, DirectedGraph) {
  auto [flavor, k] = GetParam();
  Graph g = ErdosRenyi(70, 250, /*undirected=*/false, 31);
  auto ranks = RankAssignment::Uniform(9);
  AdsSet ref = BuildAdsReference(g, k, flavor, ranks);
  ExpectSameAdsSet(BuildAdsPrunedDijkstra(g, k, flavor, ranks), ref,
                   "dijkstra-dir");
  ExpectSameAdsSet(BuildAdsDp(g, k, flavor, ranks), ref, "dp-dir");
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavors, BuilderEquivalenceTest,
    ::testing::Values(BuilderCase{SketchFlavor::kBottomK, 1},
                      BuilderCase{SketchFlavor::kBottomK, 3},
                      BuilderCase{SketchFlavor::kBottomK, 8},
                      BuilderCase{SketchFlavor::kKMins, 2},
                      BuilderCase{SketchFlavor::kKMins, 4},
                      BuilderCase{SketchFlavor::kKPartition, 2},
                      BuilderCase{SketchFlavor::kKPartition, 4}),
    [](const ::testing::TestParamInfo<BuilderCase>& test_param) {
      std::string flavor =
          test_param.param.flavor == SketchFlavor::kBottomK ? "BottomK"
          : test_param.param.flavor == SketchFlavor::kKMins ? "KMins"
                                                            : "KPartition";
      return flavor + "_k" + std::to_string(test_param.param.k);
    });

TEST(BuilderTest, PathGraphBottom1AdsIsPrefixMinima) {
  Graph g = Path(30, /*directed=*/true);
  auto ranks = RankAssignment::Uniform(3);
  AdsSet set = BuildAdsPrunedDijkstra(g, 1, SketchFlavor::kBottomK, ranks);
  // ADS(0) should contain node 0 plus every prefix-minimum rank node.
  double running_min = ranks.rank(0);
  std::vector<NodeId> expect = {0};
  for (NodeId v = 1; v < 30; ++v) {
    if (ranks.rank(v) < running_min) {
      running_min = ranks.rank(v);
      expect.push_back(v);
    }
  }
  ASSERT_EQ(set.of(0).size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(set.of(0).entries()[i].node, expect[i]);
  }
}

TEST(BuilderTest, SelfEntryAlwaysPresentAtZero) {
  Graph g = ErdosRenyi(40, 100, true, 37);
  auto ranks = RankAssignment::Uniform(4);
  for (SketchFlavor flavor :
       {SketchFlavor::kBottomK, SketchFlavor::kKMins}) {
    AdsSet set = BuildAdsPrunedDijkstra(g, 3, flavor, ranks);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_FALSE(set.of(v).empty());
      EXPECT_EQ(set.of(v).entries()[0].node, v);
      EXPECT_EQ(set.of(v).entries()[0].dist, 0.0);
    }
  }
}

TEST(BuilderTest, DisconnectedComponentsStayDisjoint) {
  // Two disjoint triangles.
  Graph g(6,
          {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0},
           {3, 4, 1.0}, {4, 5, 1.0}, {5, 3, 1.0}},
          true);
  auto ranks = RankAssignment::Uniform(6);
  AdsSet set = BuildAdsPrunedDijkstra(g, 8, SketchFlavor::kBottomK, ranks);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(set.of(v).size(), 3u);
    for (const AdsEntry& e : set.of(v).entries()) EXPECT_LT(e.node, 3u);
  }
  for (NodeId v = 3; v < 6; ++v) {
    EXPECT_EQ(set.of(v).size(), 3u);
    for (const AdsEntry& e : set.of(v).entries()) EXPECT_GE(e.node, 3u);
  }
}

TEST(BuilderTest, KLargerThanNKeepsEverything) {
  Graph g = Complete(10);
  auto ranks = RankAssignment::Uniform(8);
  AdsSet set = BuildAdsPrunedDijkstra(g, 50, SketchFlavor::kBottomK, ranks);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(set.of(v).size(), 10u);
}

TEST(BuilderTest, ExpectedSizeMatchesLemma22) {
  // Average bottom-k ADS size over nodes of a connected unweighted graph
  // should track k + k(H_n - H_k) (Lemma 2.2).
  const uint32_t k = 4;
  Graph g = BarabasiAlbert(600, 3, 41);
  RunningStat sizes;
  // Average over several rank seeds to shrink Monte-Carlo noise.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK,
                                        RankAssignment::Uniform(seed));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      sizes.Add(static_cast<double>(set.of(v).size()));
    }
  }
  double expected = ExpectedBottomKAdsSize(k, 600);
  EXPECT_NEAR(sizes.mean(), expected, expected * 0.05);
}

TEST(BuilderTest, KPartitionSizeMatchesLemma22) {
  const uint32_t k = 4;
  Graph g = ErdosRenyi(500, 1500, true, 43);
  uint64_t reachable = CountReachable(g, 0);
  ASSERT_GT(reachable, 450u);  // essentially connected
  RunningStat sizes;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kKPartition,
                                        RankAssignment::Uniform(seed));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      sizes.Add(static_cast<double>(set.of(v).size()));
    }
  }
  double expected = ExpectedKPartitionAdsSize(k, reachable);
  EXPECT_NEAR(sizes.mean(), expected, expected * 0.12);
}

TEST(BuilderTest, StatsArePopulated) {
  Graph g = ErdosRenyi(100, 300, true, 47);
  auto ranks = RankAssignment::Uniform(2);
  AdsBuildStats dj, dp, lu;
  BuildAdsPrunedDijkstra(g, 4, SketchFlavor::kBottomK, ranks, &dj);
  BuildAdsDp(g, 4, SketchFlavor::kBottomK, ranks, &dp);
  BuildAdsLocalUpdates(g, 4, SketchFlavor::kBottomK, ranks, 0.0, &lu);
  EXPECT_GT(dj.insertions, 100u);
  EXPECT_GT(dj.relaxations, dj.insertions);
  EXPECT_EQ(dj.insertions, dp.insertions);  // identical output
  EXPECT_GT(dp.rounds, 0u);
  EXPECT_GE(lu.insertions, dj.insertions);  // LocalUpdates churns more
}

TEST(BuilderTest, DpRoundsBoundedByDiameter) {
  Graph g = Path(40);
  auto ranks = RankAssignment::Uniform(11);
  AdsBuildStats stats;
  AdsSet set = BuildAdsDp(g, 2, SketchFlavor::kBottomK, ranks, &stats);
  // Rounds never exceed hop diameter + 1, and propagation runs exactly one
  // round past the farthest inserted entry (where no candidate survives).
  EXPECT_LE(stats.rounds, 40u);
  double max_dist = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdsEntry& e : set.of(v).entries()) {
      max_dist = std::max(max_dist, e.dist);
    }
  }
  EXPECT_EQ(stats.rounds, static_cast<uint64_t>(max_dist) + 1);
}

TEST(BuilderTest, ApproximateLocalUpdatesInvariant) {
  // (1+eps)-approximate ADS: for every node u not in ADS(v), r(u) must
  // exceed the kth smallest rank among entries with dist < (1+eps) d_vu.
  const uint32_t k = 3;
  const double eps = 0.25;
  Graph g = RandomizeWeights(ErdosRenyi(50, 130, true, 53), 0.2, 2.0, 13);
  auto ranks = RankAssignment::Uniform(15);
  AdsSet set = BuildAdsLocalUpdates(g, k, SketchFlavor::kBottomK, ranks, eps);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto dist = ShortestPathDistances(g, v);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] == kInfDist || set.of(v).Contains(u)) continue;
      BottomKSketch closer(k);
      for (const AdsEntry& e : set.of(v).entries()) {
        if (e.dist < (1.0 + eps) * dist[u]) closer.Update(e.rank);
      }
      EXPECT_GE(ranks.rank(u), closer.Threshold())
          << "approx invariant violated for v=" << v << " u=" << u;
    }
  }
}

TEST(BuilderTest, ApproximateModeReducesChurn) {
  Graph g = RandomizeWeights(ErdosRenyi(150, 500, true, 59), 0.1, 5.0, 17);
  auto ranks = RankAssignment::Uniform(21);
  AdsBuildStats exact, approx;
  BuildAdsLocalUpdates(g, 4, SketchFlavor::kBottomK, ranks, 0.0, &exact);
  BuildAdsLocalUpdates(g, 4, SketchFlavor::kBottomK, ranks, 0.5, &approx);
  EXPECT_LE(approx.insertions, exact.insertions);
}

TEST(BuilderTest, BackwardAdsViaTranspose) {
  Graph g = Path(10, /*directed=*/true);
  auto ranks = RankAssignment::Uniform(25);
  AdsSet fwd = BuildAdsPrunedDijkstra(g, 2, SketchFlavor::kBottomK, ranks);
  AdsSet bwd = BuildAdsPrunedDijkstra(g.Transpose(), 2,
                                      SketchFlavor::kBottomK, ranks);
  // Node 9 reaches nothing forward, everything backward.
  EXPECT_EQ(fwd.of(9).size(), 1u);
  EXPECT_GE(bwd.of(9).size(), 2u);
  // Forward ADS of 0 on the path equals backward ADS of 0 on the transpose.
  AdsSet fwd_t = BuildAdsPrunedDijkstra(g.Transpose().Transpose(), 2,
                                        SketchFlavor::kBottomK, ranks);
  ASSERT_EQ(fwd.of(0).size(), fwd_t.of(0).size());
}

TEST(BuilderTest, ParallelDpIdenticalToSequential) {
  Graph g = BarabasiAlbert(400, 3, 67);
  auto ranks = RankAssignment::Uniform(13);
  for (SketchFlavor flavor :
       {SketchFlavor::kBottomK, SketchFlavor::kKMins,
        SketchFlavor::kKPartition}) {
    uint32_t k = flavor == SketchFlavor::kBottomK ? 8 : 4;
    AdsSet seq = BuildAdsDp(g, k, flavor, ranks);
    for (uint32_t threads : {1u, 2u, 4u}) {
      AdsSet par = BuildAdsDpParallel(g, k, flavor, ranks, threads);
      ExpectSameAdsSet(seq, par,
                       "parallel t=" + std::to_string(threads));
    }
  }
}

TEST(BuilderTest, ParallelDpStatsMatchSequential) {
  Graph g = ErdosRenyi(300, 900, true, 71);
  auto ranks = RankAssignment::Uniform(17);
  AdsBuildStats seq, par;
  BuildAdsDp(g, 8, SketchFlavor::kBottomK, ranks, &seq);
  BuildAdsDpParallel(g, 8, SketchFlavor::kBottomK, ranks, 4, &par);
  EXPECT_EQ(seq.insertions, par.insertions);
  EXPECT_EQ(seq.relaxations, par.relaxations);
  EXPECT_EQ(seq.rounds, par.rounds);
}

TEST(BuilderTest, ParallelDpDirectedGraph) {
  Graph g = Rmat(7, 4, 73, /*undirected=*/false);
  auto ranks = RankAssignment::Uniform(19);
  ExpectSameAdsSet(BuildAdsDp(g, 4, SketchFlavor::kBottomK, ranks),
                   BuildAdsDpParallel(g, 4, SketchFlavor::kBottomK, ranks,
                                      3),
                   "parallel-rmat");
}

TEST(BuilderTest, ExponentialRanksBuild) {
  Graph g = ErdosRenyi(50, 140, true, 61);
  auto ranks = RankAssignment::Exponential(
      5, [](uint64_t v) { return v % 2 == 0 ? 2.0 : 1.0; });
  AdsSet dij = BuildAdsPrunedDijkstra(g, 3, SketchFlavor::kBottomK, ranks);
  AdsSet ref = BuildAdsReference(g, 3, SketchFlavor::kBottomK, ranks);
  ExpectSameAdsSet(dij, ref, "exp-ranks");
}

}  // namespace
}  // namespace hipads
