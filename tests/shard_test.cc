// ShardedAdsSet: sharded write/open round-trips, lazy loading with bounded
// residency, and — the serving contract — whole-graph estimator sweeps that
// match the unsharded FlatAdsSet results bitwise.

#include "ads/shard.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/queries.h"
#include "graph/generators.h"

namespace hipads {
namespace {

FlatAdsSet BuildFlat(uint32_t n, uint64_t graph_seed, uint32_t k) {
  Graph g = ErdosRenyi(n, 3ULL * n, true, graph_seed);
  return FlatAdsSet::FromAdsSet(BuildAdsPrunedDijkstra(
      g, k, SketchFlavor::kBottomK, RankAssignment::Uniform(graph_seed + 1)));
}

// Unique scratch dir per test; removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string path;
};

TEST(ShardTest, BalancedSplitsTileTheNodeRange) {
  FlatAdsSet set = BuildFlat(200, 5, 8);
  for (uint32_t shards : {1u, 3u, 7u, 200u, 500u}) {
    auto begins = BalancedShardSplits(set, shards);
    ASSERT_FALSE(begins.empty());
    EXPECT_EQ(begins.front(), 0u);
    EXPECT_LE(begins.size(), std::min<size_t>(shards, set.num_nodes()));
    for (size_t i = 1; i < begins.size(); ++i) {
      EXPECT_GT(begins[i], begins[i - 1]);
      EXPECT_LT(begins[i], set.num_nodes());
    }
  }
}

TEST(ShardTest, RoundTripPointLookupsBitIdentical) {
  FlatAdsSet set = BuildFlat(150, 9, 8);
  ScratchDir dir("hipads_shard_test_roundtrip");
  ASSERT_TRUE(WriteShardedAdsSet(set, dir.path, 4).ok());

  auto opened = ShardedAdsSet::Open(dir.path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedAdsSet& sharded = opened.value();
  EXPECT_EQ(sharded.num_nodes(), set.num_nodes());
  EXPECT_EQ(sharded.num_shards(), 4u);
  EXPECT_EQ(sharded.TotalEntries(), set.TotalEntries());
  EXPECT_EQ(sharded.k(), set.k);
  EXPECT_EQ(sharded.flavor(), set.flavor);
  EXPECT_EQ(sharded.ranks().seed(), set.ranks.seed());

  for (NodeId v = 0; v < set.num_nodes(); ++v) {
    auto view = sharded.ViewOf(v);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    auto expect = set.of(v).entries();
    auto got = view.value().entries();
    ASSERT_EQ(expect.size(), got.size()) << "node " << v;
    EXPECT_EQ(std::memcmp(expect.data(), got.data(),
                          expect.size() * sizeof(AdsEntry)),
              0)
        << "node " << v;
  }
}

TEST(ShardTest, LazyLoadingBoundsResidentShards) {
  FlatAdsSet set = BuildFlat(120, 13, 4);
  ScratchDir dir("hipads_shard_test_lazy");
  ASSERT_TRUE(WriteShardedAdsSet(set, dir.path, 6).ok());
  auto opened = ShardedAdsSet::Open(dir.path, nullptr, /*max_resident=*/2);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedAdsSet& sharded = opened.value();
  EXPECT_EQ(sharded.NumResident(), 0u);  // nothing loaded at open
  for (NodeId v = 0; v < set.num_nodes(); ++v) {
    ASSERT_TRUE(sharded.ViewOf(v).ok());
    EXPECT_LE(sharded.NumResident(), 2u);
  }
  EXPECT_EQ(sharded.NumResident(), 2u);
}

TEST(ShardTest, SweepsMatchUnshardedBitwise) {
  FlatAdsSet set = BuildFlat(180, 21, 8);
  ScratchDir dir("hipads_shard_test_sweeps");
  ASSERT_TRUE(WriteShardedAdsSet(set, dir.path, 5).ok());
  // max_resident = 1: every sweep must still match with only one shard
  // arena in memory at a time.
  auto opened = ShardedAdsSet::Open(dir.path, nullptr, /*max_resident=*/1);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ShardedAdsSet& sharded = opened.value();

  auto harmonic = EstimateHarmonicCentralityAll(sharded, 1);
  ASSERT_TRUE(harmonic.ok());
  EXPECT_EQ(harmonic.value(), EstimateHarmonicCentralityAll(set, 1));

  auto distsum = EstimateDistanceSumAll(sharded, 1);
  ASSERT_TRUE(distsum.ok());
  EXPECT_EQ(distsum.value(), EstimateDistanceSumAll(set, 1));

  auto reach = EstimateReachableCountAll(sharded, 1);
  ASSERT_TRUE(reach.ok());
  EXPECT_EQ(reach.value(), EstimateReachableCountAll(set, 1));

  auto nsize = EstimateNeighborhoodSizeAll(sharded, 2.0, 1);
  ASSERT_TRUE(nsize.ok());
  EXPECT_EQ(nsize.value(), EstimateNeighborhoodSizeAll(set, 2.0, 1));

  auto dd = EstimateDistanceDistribution(sharded, 1);
  ASSERT_TRUE(dd.ok());
  EXPECT_EQ(dd.value(), EstimateDistanceDistribution(set, 1));

  auto nf = EstimateNeighborhoodFunction(sharded, 1);
  ASSERT_TRUE(nf.ok());
  EXPECT_EQ(nf.value(), EstimateNeighborhoodFunction(set, 1));

  auto eff = EstimateEffectiveDiameter(sharded);
  ASSERT_TRUE(eff.ok());
  EXPECT_EQ(eff.value(), EstimateEffectiveDiameter(set));

  auto mean = EstimateMeanDistance(sharded);
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ(mean.value(), EstimateMeanDistance(set));
}

TEST(ShardTest, SweepsThreadCountIndependent) {
  FlatAdsSet set = BuildFlat(100, 33, 4);
  ScratchDir dir("hipads_shard_test_threads");
  ASSERT_TRUE(WriteShardedAdsSet(set, dir.path, 3).ok());
  auto opened = ShardedAdsSet::Open(dir.path);
  ASSERT_TRUE(opened.ok());
  auto one = EstimateDistanceDistribution(opened.value(), 1);
  auto four = EstimateDistanceDistribution(opened.value(), 4);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  EXPECT_EQ(one.value(), four.value());
}

TEST(ShardTest, SingleShardEqualsWholeSet) {
  FlatAdsSet set = BuildFlat(60, 41, 4);
  ScratchDir dir("hipads_shard_test_single");
  ASSERT_TRUE(WriteShardedAdsSet(set, dir.path, 1).ok());
  auto opened = ShardedAdsSet::Open(dir.path);
  ASSERT_TRUE(opened.ok());
  auto range = opened.value().Range(0);
  ASSERT_TRUE(range.ok());
  const AdsArenaView& arena = range.value();
  EXPECT_EQ(arena.begin, 0u);
  EXPECT_EQ(arena.end, set.num_nodes());
  ASSERT_EQ(arena.num_entries(), set.entries.size());
  EXPECT_EQ(std::memcmp(arena.offsets, set.offsets.data(),
                        set.offsets.size() * sizeof(uint64_t)),
            0);
  EXPECT_EQ(std::memcmp(arena.entries, set.entries.data(),
                        set.entries.size() * sizeof(AdsEntry)),
            0);
}

TEST(ShardTest, MissingShardFileFailsCleanly) {
  FlatAdsSet set = BuildFlat(80, 43, 4);
  ScratchDir dir("hipads_shard_test_missing");
  ASSERT_TRUE(WriteShardedAdsSet(set, dir.path, 4).ok());
  std::filesystem::remove(std::filesystem::path(dir.path) /
                          "shard-00002.ads2");
  auto opened = ShardedAdsSet::Open(dir.path);
  ASSERT_TRUE(opened.ok());  // manifest opens; the hole surfaces lazily
  auto result = EstimateHarmonicCentralityAll(opened.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

TEST(ShardTest, CorruptShardFileFailsCleanly) {
  FlatAdsSet set = BuildFlat(80, 47, 4);
  ScratchDir dir("hipads_shard_test_corrupt");
  ASSERT_TRUE(WriteShardedAdsSet(set, dir.path, 2).ok());
  std::string shard_path =
      (std::filesystem::path(dir.path) / "shard-00001.ads2").string();
  // Flip one payload byte in place.
  std::fstream f(shard_path,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(-3, std::ios::end);
  char c;
  f.seekg(f.tellp());
  f.get(c);
  f.seekp(-3, std::ios::end);
  f.put(static_cast<char>(c ^ 0x10));
  f.close();

  auto opened = ShardedAdsSet::Open(dir.path);
  ASSERT_TRUE(opened.ok());
  auto result = EstimateHarmonicCentralityAll(opened.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

TEST(ShardTest, ShardInconsistentWithManifestRejected) {
  FlatAdsSet set = BuildFlat(80, 53, 4);
  ScratchDir dir("hipads_shard_test_mismatch");
  ASSERT_TRUE(WriteShardedAdsSet(set, dir.path, 2).ok());
  // Replace shard 1 with a structurally valid file of different params.
  FlatAdsSet other = BuildFlat(10, 59, 2);
  ASSERT_TRUE(WriteAdsSetFile(
                  other,
                  (std::filesystem::path(dir.path) / "shard-00001.ads2")
                      .string(),
                  AdsFileFormat::kBinaryV2)
                  .ok());
  auto opened = ShardedAdsSet::Open(dir.path);
  ASSERT_TRUE(opened.ok());
  auto result = opened.value().Range(1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

TEST(ShardTest, ManifestGarbageRejected) {
  ScratchDir dir("hipads_shard_test_manifest");
  std::filesystem::create_directories(dir.path);
  auto write_manifest = [&](const std::string& text) {
    std::ofstream f(std::filesystem::path(dir.path) / kShardManifestName);
    f << text;
  };
  write_manifest("not-a-manifest\n");
  EXPECT_FALSE(ShardedAdsSet::Open(dir.path).ok());
  write_manifest("hipads-shards-v1\nflavor bottom-k\nk 4\n");
  EXPECT_FALSE(ShardedAdsSet::Open(dir.path).ok());
  // Ranges that do not tile [0, nodes).
  write_manifest(
      "hipads-shards-v1\nflavor bottom-k\nk 4\nranks uniform 1\nnodes 10\n"
      "shards 2\nshard 0 4 0 a.ads2\nshard 5 10 0 b.ads2\n");
  EXPECT_FALSE(ShardedAdsSet::Open(dir.path).ok());
  // Trailing garbage after the shard table.
  write_manifest(
      "hipads-shards-v1\nflavor bottom-k\nk 4\nranks uniform 1\nnodes 10\n"
      "shards 1\nshard 0 10 0 a.ads2\nextra\n");
  EXPECT_FALSE(ShardedAdsSet::Open(dir.path).ok());
  // Open of a missing directory is an IOError.
  auto missing = ShardedAdsSet::Open(dir.path + "_nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace hipads
