#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hipads {
namespace {

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownMeanVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    all.Add(x);
    (i < 37 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(3.0);
  double mean = a.mean();
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.mean(), mean);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(ErrorStatsTest, PerfectEstimatorZeroError) {
  ErrorStats e;
  e.Add(10.0, 10.0);
  e.Add(55.0, 55.0);
  EXPECT_EQ(e.nrmse(), 0.0);
  EXPECT_EQ(e.mre(), 0.0);
  EXPECT_EQ(e.mean_bias(), 0.0);
}

TEST(ErrorStatsTest, KnownErrors) {
  ErrorStats e;
  e.Add(12.0, 10.0);  // +20% error
  e.Add(8.0, 10.0);   // -20% error
  EXPECT_NEAR(e.nrmse(), 0.2, 1e-12);
  EXPECT_NEAR(e.mre(), 0.2, 1e-12);
  EXPECT_NEAR(e.mean_bias(), 0.0, 1e-12);
}

TEST(ErrorStatsTest, BiasSign) {
  ErrorStats e;
  e.Add(11.0, 10.0);
  e.Add(11.0, 10.0);
  EXPECT_NEAR(e.mean_bias(), 0.1, 1e-12);
}

TEST(ErrorStatsTest, MergeMatchesSequential) {
  ErrorStats all, a, b;
  for (int i = 1; i <= 50; ++i) {
    double truth = i;
    double est = i + std::cos(i);
    all.Add(est, truth);
    (i % 2 ? a : b).Add(est, truth);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.nrmse(), all.nrmse(), 1e-12);
  EXPECT_NEAR(a.mre(), all.mre(), 1e-12);
}

TEST(HarmonicTest, SmallValues) {
  EXPECT_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-14);
}

TEST(HarmonicTest, AsymptoticMatchesExactAtCutover) {
  // Values just below/above the exact-summation cutoff must agree.
  uint64_t cutoff = 1 << 16;
  double below = HarmonicNumber(cutoff);
  // Compute the exact value for cutoff+1 by extending the below value.
  double expected_above = below + 1.0 / static_cast<double>(cutoff + 1);
  EXPECT_NEAR(HarmonicNumber(cutoff + 1), expected_above, 1e-10);
}

TEST(HarmonicTest, Monotone) {
  double prev = 0.0;
  for (uint64_t n : {1ULL, 10ULL, 100ULL, 100000ULL, 10000000ULL}) {
    double h = HarmonicNumber(n);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(HarmonicTest, LargeValueAgainstLogGamma) {
  // H_n ~ ln n + gamma.
  double h = HarmonicNumber(100000000ULL);
  EXPECT_NEAR(h, std::log(1e8) + 0.5772156649, 1e-6);
}

TEST(LogSpacedCheckpointsTest, SmallNIsDense) {
  auto pts = LogSpacedCheckpoints(10, 8);
  ASSERT_EQ(pts.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(pts[i], i + 1);
}

TEST(LogSpacedCheckpointsTest, IncludesEndpointsAndIsSorted) {
  auto pts = LogSpacedCheckpoints(100000, 8);
  EXPECT_EQ(pts.front(), 1u);
  EXPECT_EQ(pts.back(), 100000u);
  for (size_t i = 1; i < pts.size(); ++i) EXPECT_GT(pts[i], pts[i - 1]);
}

TEST(LogSpacedCheckpointsTest, DensityRoughlyPerDecade) {
  auto pts = LogSpacedCheckpoints(1000000, 4);
  // Beyond the dense prefix (16) there are 6 - ~1.2 decades at ~4 points.
  EXPECT_LT(pts.size(), 60u);
  EXPECT_GT(pts.size(), 25u);
}

}  // namespace
}  // namespace hipads
