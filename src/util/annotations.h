// Clang thread-safety analysis annotations.
//
// The repo's core contract — every HIP statistic is bitwise identical
// across backends, thread counts, shards and fleet topologies — rests on
// locking discipline that used to be enforced only dynamically (the tsan
// CI lane). These macros move it to compile time: every mutex-guarded
// field and lock-requiring method in the tree is annotated, and the clang
// CI lane builds with -Wthread-safety -Werror=thread-safety, so an
// unguarded access or a lock held across the wrong boundary is a build
// break, not a flaky race.
//
// The macros expand to clang's capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) under clang and
// to nothing everywhere else, so gcc builds are unaffected. Use them
// through the annotated wrapper types in util/mutex.h (hipads::Mutex,
// MutexLock, CondVar) — hipads-lint rule HL005 bans raw std::mutex
// outside that wrapper precisely so the analysis sees every lock.

#ifndef HIPADS_UTIL_ANNOTATIONS_H_
#define HIPADS_UTIL_ANNOTATIONS_H_

#if defined(__clang__)
#define HIPADS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HIPADS_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a class to be a capability (a lock): hipads::Mutex.
#define HIPADS_CAPABILITY(x) HIPADS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor: hipads::MutexLock.
#define HIPADS_SCOPED_CAPABILITY HIPADS_THREAD_ANNOTATION(scoped_lockable)

/// Marks a data member as readable/writable only while `x` is held.
#define HIPADS_GUARDED_BY(x) HIPADS_THREAD_ANNOTATION(guarded_by(x))

/// Marks a pointer member whose pointee is guarded by `x` (the pointer
/// itself may be read freely).
#define HIPADS_PT_GUARDED_BY(x) HIPADS_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function acquires the capability and does not release it.
#define HIPADS_ACQUIRE(...) \
  HIPADS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a held capability.
#define HIPADS_RELEASE(...) \
  HIPADS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability if and only if it returns `ret`.
#define HIPADS_TRY_ACQUIRE(ret, ...) \
  HIPADS_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Callers must hold the capability before calling, and still hold it
/// after the call returns.
#define HIPADS_REQUIRES(...) \
  HIPADS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Callers must NOT hold the capability (the function acquires it itself;
/// guards against self-deadlock on non-reentrant locks).
#define HIPADS_EXCLUDES(...) HIPADS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define HIPADS_RETURN_CAPABILITY(x) HIPADS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function intentionally bypasses the analysis
/// (single-threaded setup/teardown the analysis cannot see). Every use
/// must carry a comment justifying it.
#define HIPADS_NO_THREAD_SAFETY_ANALYSIS \
  HIPADS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // HIPADS_UTIL_ANNOTATIONS_H_
