// Streaming statistics accumulators used by the estimation-quality
// experiments (NRMSE / MRE / bias curves of Figures 2 and 3).

#ifndef HIPADS_UTIL_STATS_H_
#define HIPADS_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace hipads {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStat& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Accumulates the error of an estimator against known truth and reports the
/// paper's quality measures:
///   NRMSE = sqrt(E[(n - n^)^2]) / n   (equals the CV for unbiased n^)
///   MRE   = E[|n - n^|] / n
///   bias  = E[n^ - n] / n
class ErrorStats {
 public:
  /// Records one (estimate, truth) observation. truth must be > 0.
  void Add(double estimate, double truth);

  int64_t count() const { return count_; }
  double nrmse() const;
  double mre() const;
  double mean_bias() const;

  void Merge(const ErrorStats& other);

 private:
  int64_t count_ = 0;
  double sum_sq_rel_err_ = 0.0;
  double sum_abs_rel_err_ = 0.0;
  double sum_rel_err_ = 0.0;
};

/// Exact harmonic number H_n = sum_{i=1..n} 1/i. Exact summation below a
/// fixed cutoff, Euler-Maclaurin expansion above it (absolute error < 1e-12).
double HarmonicNumber(uint64_t n);

/// Geometrically spaced integer checkpoints in [1, n]: all of 1..min(n,small)
/// plus ~points_per_decade values per decade, always including n. Used to
/// sample error curves without evaluating every cardinality.
std::vector<uint64_t> LogSpacedCheckpoints(uint64_t n, int points_per_decade);

}  // namespace hipads

#endif  // HIPADS_UTIL_STATS_H_
