#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace hipads {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

void ErrorStats::Add(double estimate, double truth) {
  double rel = (estimate - truth) / truth;
  ++count_;
  sum_sq_rel_err_ += rel * rel;
  sum_abs_rel_err_ += std::abs(rel);
  sum_rel_err_ += rel;
}

double ErrorStats::nrmse() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(sum_sq_rel_err_ / static_cast<double>(count_));
}

double ErrorStats::mre() const {
  if (count_ == 0) return 0.0;
  return sum_abs_rel_err_ / static_cast<double>(count_);
}

double ErrorStats::mean_bias() const {
  if (count_ == 0) return 0.0;
  return sum_rel_err_ / static_cast<double>(count_);
}

void ErrorStats::Merge(const ErrorStats& other) {
  count_ += other.count_;
  sum_sq_rel_err_ += other.sum_sq_rel_err_;
  sum_abs_rel_err_ += other.sum_abs_rel_err_;
  sum_rel_err_ += other.sum_rel_err_;
}

double HarmonicNumber(uint64_t n) {
  if (n == 0) return 0.0;
  constexpr uint64_t kExactCutoff = 1 << 16;
  if (n <= kExactCutoff) {
    double h = 0.0;
    // Sum smallest terms first for accuracy.
    for (uint64_t i = n; i >= 1; --i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  // Euler-Maclaurin: H_n ~ ln n + gamma + 1/(2n) - 1/(12n^2) + 1/(120n^4).
  constexpr double kGamma = 0.57721566490153286060651209;
  double x = static_cast<double>(n);
  return std::log(x) + kGamma + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x) +
         1.0 / (120.0 * x * x * x * x);
}

std::vector<uint64_t> LogSpacedCheckpoints(uint64_t n, int points_per_decade) {
  std::vector<uint64_t> points;
  uint64_t dense_limit = std::min<uint64_t>(n, 16);
  for (uint64_t i = 1; i <= dense_limit; ++i) points.push_back(i);
  if (n > dense_limit) {
    double step = std::pow(10.0, 1.0 / points_per_decade);
    double x = static_cast<double>(dense_limit);
    while (true) {
      x *= step;
      uint64_t v = static_cast<uint64_t>(std::llround(x));
      if (v >= n) break;
      if (v > points.back()) points.push_back(v);
    }
    points.push_back(n);
  }
  return points;
}

}  // namespace hipads
