#include "util/random.h"

#include <cmath>

#include "util/hash.h"

namespace hipads {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64-expand the seed into the four state words, as recommended by
  // the xoshiro authors. Guarantees a nonzero state for every seed.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = Mix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextUnit() { return ToUnitInterval(Next()); }

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection-free in the common case; falls back to rejection to remove
  // modulo bias (Lemire 2019).
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextExponential(double lambda) {
  // -ln(1-u)/lambda with u in [0,1); 1-u is in (0,1] so the log is finite.
  return -std::log1p(-NextUnit()) / lambda;
}

bool Rng::NextBernoulli(double p) { return NextUnit() < p; }

std::vector<uint32_t> Rng::NextPermutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = static_cast<uint32_t>(NextBounded(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace hipads
