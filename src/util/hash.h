// Deterministic 64-bit hashing used to derive coordinated random ranks.
//
// All randomness in hipads sketches flows through these functions: a sketch
// "permutation" is (seed, node-id) -> U[0,1), so sketches of different sets
// built with the same seed are automatically coordinated (Section 2 of the
// paper), and any sketch can be reproduced from its seed alone.

#ifndef HIPADS_UTIL_HASH_H_
#define HIPADS_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace hipads {

/// SplitMix64 finalizer (Steele, Lea, Flood 2014). Bijective mixer with
/// excellent avalanche behaviour; the de-facto standard for seeding and for
/// hashing small integer keys in sketch data structures.
inline constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Murmur3-style finalizer; used where we need a second independent mix.
inline constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines a seed and a key into a single well-mixed 64-bit value.
inline constexpr uint64_t HashCombine(uint64_t seed, uint64_t key) {
  return Mix64(SplitMix64(seed) ^ SplitMix64(key + 0x9e3779b97f4a7c15ULL));
}

/// Maps a 64-bit hash to a double in [0, 1). Uses the top 53 bits so the
/// result is an exactly representable dyadic rational; never returns 1.0.
inline constexpr double ToUnitInterval(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Hash of (seed, key) mapped to U[0,1). This is the canonical full-precision
/// rank function r(v) of the paper.
inline constexpr double UnitHash(uint64_t seed, uint64_t key) {
  return ToUnitInterval(HashCombine(seed, key));
}

/// Hash of (seed, key) reduced to a bucket in [0, k). Used by k-partition
/// sketches. Uses Lemire's multiply-shift reduction to avoid modulo bias.
inline constexpr uint32_t BucketHash(uint64_t seed, uint64_t key, uint32_t k) {
  uint64_t h = HashCombine(seed ^ 0xa5a5a5a5a5a5a5a5ULL, key);
  return static_cast<uint32_t>((static_cast<__uint128_t>(h) * k) >> 64);
}

/// FNV-1a offset basis: the starting value for Fnv1a chains.
inline constexpr uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;

/// Incremental 64-bit FNV-1a over a byte range, chaining from `h` (start
/// chains with kFnv1aOffsetBasis). The integrity checksum of the v2 on-disk
/// format and the wire protocol: not collision-resistant against an
/// adversary, but byte-exact against corruption, trivially incremental and
/// dependency-free.
inline constexpr uint64_t Fnv1a(const char* data, size_t size, uint64_t h) {
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace hipads

#endif  // HIPADS_UTIL_HASH_H_
