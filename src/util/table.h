// Minimal aligned-column table printer used by the benchmark harnesses to
// emit the rows/series of the paper's figures and tables in both
// human-readable and CSV form.

#ifndef HIPADS_UTIL_TABLE_H_
#define HIPADS_UTIL_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hipads {

/// Collects rows of stringified cells and renders them either as an aligned
/// text table (for terminal inspection) or as CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent Add* calls append cells to it.
  Table& NewRow();
  Table& Add(const std::string& cell);
  Table& Add(const char* cell) { return Add(std::string(cell)); }
  Table& Add(double value, int precision = 5);
  Table& Add(uint64_t value);
  Table& Add(int64_t value);
  Table& Add(int value) { return Add(static_cast<int64_t>(value)); }

  void PrintText(std::ostream& os) const;
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hipads

#endif  // HIPADS_UTIL_TABLE_H_
