// Process-wide metrics: named counters, gauges and log2-bucket
// histograms behind one registry, so every layer of the serving stack
// reports through a single mechanism instead of bespoke accessors.
//
// Design constraints, in order:
//
//   * The RECORD path is lock-free: one relaxed atomic op per event.
//     Registration (name -> instrument) takes a mutex, so call sites
//     resolve their instrument pointer once (instrument addresses are
//     stable for the life of the process) and record through it.
//   * Metrics never influence responses. Counters and histograms are
//     samples — a build with HIPADS_DISABLE_METRICS, or a process with
//     SetMetricsEnabled(false), must produce bitwise-identical response
//     bytes. Gauges are exempt from both switches: code is allowed to
//     base control flow on a gauge (sweep admission reads the
//     active-sweeps gauge), so a gauge always tracks its real state.
//   * Determinism: the deterministic estimator trees (src/ads, ...)
//     may record COUNTS only — totals there are thread-count invariant.
//     Wall-clock instruments (MetricHistogram fed by
//     ScopedLatencyTimer) are reserved for src/serve and tools;
//     hipads-lint HL006 enforces the split.
//
// Two ownership modes share one namespace:
//
//   * Registry-owned: MetricsRegistry::Get().Counter("name") creates on
//     first use and returns a stable pointer — for process-global call
//     sites (resolve once into a static, record forever).
//   * Instance-owned: RegisteredCounter / RegisteredGauge members
//     attach themselves under a shared name and detach on destruction —
//     for per-object counts that tests read through the owning object
//     (cache hit counts, shard load counts). Snapshot() sums every
//     instrument registered under a name, so N caches named
//     "serve.cache.point" scrape as one total.

#ifndef HIPADS_UTIL_METRICS_H_
#define HIPADS_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace hipads {

namespace metrics_internal {
extern std::atomic<bool> g_enabled;
}  // namespace metrics_internal

/// Runtime kill switch for counter/histogram recording (gauges keep
/// tracking — see the file comment). Defaults to enabled.
inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

/// Monotonic event count. Recording is one relaxed fetch_add.
class MetricCounter {
 public:
  void Add(uint64_t n = 1) {
#if !defined(HIPADS_DISABLE_METRICS)
    if (MetricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Unconditional store — registry/move plumbing, not a record path.
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Signed level (in-flight requests, active sweeps). NOT gated on
/// MetricsEnabled(): a gauge is state, and code may branch on it.
class MetricGauge {
 public:
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log2-bucket histogram of non-negative samples (latencies in
/// microseconds, batch sizes). Bucket b counts samples whose bit width
/// is b (0 -> bucket 0, 1 -> 1, [2,4) -> 2, ...), clamped to the last
/// bucket; recording is three relaxed atomic adds, no locks.
class MetricHistogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Record(uint64_t sample) {
#if !defined(HIPADS_DISABLE_METRICS)
    if (!MetricsEnabled()) return;
    buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
#else
    (void)sample;
#endif
  }

  static size_t BucketOf(uint64_t sample) {
    size_t b = 0;
    while (sample > 0 && b + 1 < kBuckets) {
      sample >>= 1;
      ++b;
    }
    return b;
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Unconditional zeroing — test-isolation plumbing, not a record path.
  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time view of the whole registry, with every same-named
/// instrument summed. Names are sorted, so two snapshots of identical
/// state serialize identically.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<uint64_t> buckets;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// "counter serve.requests.point 42" per line — the scrape format.
  std::string ToText() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":...}.
  std::string ToJson() const;
};

/// The process-wide name -> instrument table. Creation and
/// attach/detach lock; recording through the returned pointers does
/// not. Instrument addresses handed out are stable until process exit.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// Returns the registry-owned instrument of this name, creating it on
  /// first use. Resolve once and cache the pointer on hot paths.
  MetricCounter* Counter(const std::string& name);
  MetricGauge* Gauge(const std::string& name);
  MetricHistogram* Histogram(const std::string& name);

  /// Registers an instance-owned instrument under `name`; Snapshot()
  /// sums it with everything else of that name. The caller must Detach
  /// before the instrument is destroyed (RegisteredCounter/-Gauge do).
  void AttachCounter(const std::string& name, const MetricCounter* counter);
  void DetachCounter(const std::string& name, const MetricCounter* counter);
  void AttachGauge(const std::string& name, const MetricGauge* gauge);
  void DetachGauge(const std::string& name, const MetricGauge* gauge);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registry-owned instrument and DETACHED nothing —
  /// attached instance counters keep their owners' values. Test isolation
  /// only; never called by serving code.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_;
  // std::map: snapshot order is name order, deterministically.
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_
      HIPADS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_
      HIPADS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_
      HIPADS_GUARDED_BY(mu_);
  std::map<std::string, std::vector<const MetricCounter*>> attached_counters_
      HIPADS_GUARDED_BY(mu_);
  std::map<std::string, std::vector<const MetricGauge*>> attached_gauges_
      HIPADS_GUARDED_BY(mu_);
};

/// A counter owned by an object but visible to the registry under a
/// shared name. Movable because some owners are (ShardedAdsSet); a
/// move re-attaches the new address and empties the source.
class RegisteredCounter {
 public:
  explicit RegisteredCounter(std::string name) : name_(std::move(name)) {
    MetricsRegistry::Get().AttachCounter(name_, &counter_);
  }
  ~RegisteredCounter() {
    if (!name_.empty()) MetricsRegistry::Get().DetachCounter(name_, &counter_);
  }
  RegisteredCounter(RegisteredCounter&& other) noexcept
      : name_(std::move(other.name_)) {
    counter_.Set(other.counter_.value());
    if (!name_.empty()) {
      MetricsRegistry::Get().DetachCounter(name_, &other.counter_);
      MetricsRegistry::Get().AttachCounter(name_, &counter_);
    }
    other.name_.clear();
    other.counter_.Set(0);
  }
  RegisteredCounter& operator=(RegisteredCounter&& other) noexcept {
    if (this != &other) {
      if (!name_.empty()) {
        MetricsRegistry::Get().DetachCounter(name_, &counter_);
      }
      name_ = std::move(other.name_);
      counter_.Set(other.counter_.value());
      if (!name_.empty()) {
        MetricsRegistry::Get().DetachCounter(name_, &other.counter_);
        MetricsRegistry::Get().AttachCounter(name_, &counter_);
      }
      other.name_.clear();
      other.counter_.Set(0);
    }
    return *this;
  }
  RegisteredCounter(const RegisteredCounter&) = delete;
  RegisteredCounter& operator=(const RegisteredCounter&) = delete;

  void Add(uint64_t n = 1) { counter_.Add(n); }
  uint64_t value() const { return counter_.value(); }

 private:
  std::string name_;  // empty after being moved from
  MetricCounter counter_;
};

/// RegisteredCounter's gauge twin (instance-owned level, shared name).
class RegisteredGauge {
 public:
  explicit RegisteredGauge(std::string name) : name_(std::move(name)) {
    MetricsRegistry::Get().AttachGauge(name_, &gauge_);
  }
  ~RegisteredGauge() {
    if (!name_.empty()) MetricsRegistry::Get().DetachGauge(name_, &gauge_);
  }
  RegisteredGauge(RegisteredGauge&& other) noexcept
      : name_(std::move(other.name_)) {
    gauge_.Set(other.gauge_.value());
    if (!name_.empty()) {
      MetricsRegistry::Get().DetachGauge(name_, &other.gauge_);
      MetricsRegistry::Get().AttachGauge(name_, &gauge_);
    }
    other.name_.clear();
    other.gauge_.Set(0);
  }
  RegisteredGauge& operator=(RegisteredGauge&& other) noexcept {
    if (this != &other) {
      if (!name_.empty()) MetricsRegistry::Get().DetachGauge(name_, &gauge_);
      name_ = std::move(other.name_);
      gauge_.Set(other.gauge_.value());
      if (!name_.empty()) {
        MetricsRegistry::Get().DetachGauge(name_, &other.gauge_);
        MetricsRegistry::Get().AttachGauge(name_, &gauge_);
      }
      other.name_.clear();
      other.gauge_.Set(0);
    }
    return *this;
  }
  RegisteredGauge(const RegisteredGauge&) = delete;
  RegisteredGauge& operator=(const RegisteredGauge&) = delete;

  void Add(int64_t d) { gauge_.Add(d); }
  int64_t value() const { return gauge_.value(); }

 private:
  std::string name_;  // empty after being moved from
  MetricGauge gauge_;
};

/// Records the scope's wall-clock duration (microseconds) into a
/// histogram on destruction. Wall-clock: serve/tools layers only
/// (hipads-lint HL006). Null histogram or disabled metrics = no clock
/// read at all.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(MetricHistogram* hist) : hist_(hist) {
    if (hist_ != nullptr && MetricsEnabled()) {
      start_ = std::chrono::steady_clock::now();
    } else {
      hist_ = nullptr;
    }
  }
  ~ScopedLatencyTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
    }
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  MetricHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hipads

#endif  // HIPADS_UTIL_METRICS_H_
