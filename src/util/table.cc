#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace hipads {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::NewRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(const std::string& cell) {
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::Add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return Add(std::string(buf));
}

Table& Table::Add(uint64_t value) { return Add(std::to_string(value)); }
Table& Table::Add(int64_t value) { return Add(std::to_string(value)); }

void Table::PrintText(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace hipads
