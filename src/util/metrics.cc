#include "util/metrics.h"

#include <cstddef>
#include <cstdio>
#include <utility>

namespace hipads {

namespace metrics_internal {
std::atomic<bool> g_enabled{true};
}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const CounterValue& c : counters) {
    out += "counter " + c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeValue& g : gauges) {
    out += "gauge " + g.name + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramValue& h : histograms) {
    out += "histogram " + h.name + " count " + std::to_string(h.count) +
           " sum " + std::to_string(h.sum) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterValue& c : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(c.name, &out);
    out.push_back(':');
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeValue& g : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(g.name, &out);
    out.push_back(':');
    out += std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramValue& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(h.name, &out);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) + ",\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked singleton: instrument pointers handed to call-site statics
  // must stay valid through every static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricCounter* MetricsRegistry::Counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return slot.get();
}

MetricGauge* MetricsRegistry::Gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<MetricGauge>();
  return slot.get();
}

MetricHistogram* MetricsRegistry::Histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<MetricHistogram>();
  return slot.get();
}

void MetricsRegistry::AttachCounter(const std::string& name,
                                    const MetricCounter* counter) {
  MutexLock lock(mu_);
  attached_counters_[name].push_back(counter);
}

void MetricsRegistry::DetachCounter(const std::string& name,
                                    const MetricCounter* counter) {
  MutexLock lock(mu_);
  auto it = attached_counters_.find(name);
  if (it == attached_counters_.end()) return;
  auto& list = it->second;
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i] == counter) {
      list.erase(list.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (list.empty()) attached_counters_.erase(it);
}

void MetricsRegistry::AttachGauge(const std::string& name,
                                  const MetricGauge* gauge) {
  MutexLock lock(mu_);
  attached_gauges_[name].push_back(gauge);
}

void MetricsRegistry::DetachGauge(const std::string& name,
                                  const MetricGauge* gauge) {
  MutexLock lock(mu_);
  auto it = attached_gauges_.find(name);
  if (it == attached_gauges_.end()) return;
  auto& list = it->second;
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i] == gauge) {
      list.erase(list.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (list.empty()) attached_gauges_.erase(it);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  // Merge owned and attached instruments name by name; both maps are
  // ordered, so the result is sorted without a second pass.
  std::map<std::string, uint64_t> counter_totals;
  for (const auto& [name, counter] : counters_) {
    counter_totals[name] += counter->value();
  }
  for (const auto& [name, list] : attached_counters_) {
    uint64_t& total = counter_totals[name];
    for (const MetricCounter* c : list) total += c->value();
  }
  for (const auto& [name, value] : counter_totals) {
    snap.counters.push_back({name, value});
  }
  std::map<std::string, int64_t> gauge_totals;
  for (const auto& [name, gauge] : gauges_) {
    gauge_totals[name] += gauge->value();
  }
  for (const auto& [name, list] : attached_gauges_) {
    int64_t& total = gauge_totals[name];
    for (const MetricGauge* g : list) total += g->value();
  }
  for (const auto& [name, value] : gauge_totals) {
    snap.gauges.push_back({name, value});
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.count = hist->count();
    h.sum = hist->sum();
    h.buckets.resize(MetricHistogram::kBuckets);
    for (size_t i = 0; i < MetricHistogram::kBuckets; ++i) {
      h.buckets[i] = hist->bucket(i);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Set(0);
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace hipads
