#include "util/parallel.h"

#include <algorithm>

namespace hipads {

uint32_t HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t t = 0; t + 1 < num_threads_; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Drain(Batch& batch) {
  size_t executed = 0;
  for (;;) {
    size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) break;
    (*batch.task)(i);
    ++executed;
  }
  if (executed == 0) return;
  size_t done =
      batch.done.fetch_add(executed, std::memory_order_acq_rel) + executed;
  if (done == batch.count) {
    // Taking the lock before notifying guarantees the waiter is either not
    // yet checking its predicate or already inside wait().
    MutexLock lock(mu_);
    done_cv_.NotifyAll();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) work_cv_.Wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
      batch = batch_;
    }
    if (batch != nullptr) Drain(*batch);
  }
}

void ThreadPool::RunTasks(size_t count,
                          const std::function<void(size_t)>& task) {
  if (count == 0) return;
  if (num_threads_ == 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) task(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->count = count;
  {
    MutexLock lock(mu_);
    batch_ = batch;
    ++generation_;
  }
  work_cv_.NotifyAll();
  Drain(*batch);  // the caller participates
  {
    MutexLock lock(mu_);
    while (batch->done.load(std::memory_order_acquire) != batch->count) {
      done_cv_.Wait(mu_);
    }
    batch_.reset();
  }
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t, uint32_t)>& fn) {
  if (n == 0) return;
  size_t chunk = (n + num_threads_ - 1) / num_threads_;
  size_t num_chunks = (n + chunk - 1) / chunk;
  RunTasks(num_chunks, [&](size_t t) {
    size_t begin = t * chunk;
    size_t end = std::min(n, begin + chunk);
    fn(begin, end, static_cast<uint32_t>(t));
  });
}

void ThreadPool::ParallelRanges(
    const std::vector<size_t>& bounds,
    const std::function<void(size_t, size_t, uint32_t)>& fn) {
  if (bounds.size() < 2) return;
  RunTasks(bounds.size() - 1, [&](size_t t) {
    if (bounds[t] < bounds[t + 1]) {
      fn(bounds[t], bounds[t + 1], static_cast<uint32_t>(t));
    }
  });
}

void ThreadPool::ParallelForDynamic(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  size_t num_blocks = (n + grain - 1) / grain;
  RunTasks(num_blocks, [&](size_t b) {
    size_t begin = b * grain;
    size_t end = std::min(n, begin + grain);
    fn(begin, end, b);
  });
}

}  // namespace hipads
