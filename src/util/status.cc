#include "util/status.h"

namespace hipads {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kIOError:
      return "IO_ERROR";
    case Status::Code::kCorruption:
      return "CORRUPTION";
    case Status::Code::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case Status::Code::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace hipads
