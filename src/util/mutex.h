// The annotated locking primitives every lock in hipads goes through.
//
// hipads::Mutex is std::mutex wearing clang's capability attributes
// (util/annotations.h): fields can be HIPADS_GUARDED_BY(mu_), methods can
// HIPADS_REQUIRES(mu_), and the clang CI lane proves the discipline at
// compile time with -Werror=thread-safety. MutexLock is the scoped
// acquire; CondVar pairs with Mutex the way std::condition_variable pairs
// with std::mutex (it borrows the Mutex's underlying std::mutex via the
// adopt/release trick, so there is no condition_variable_any overhead).
//
// Raw std::mutex / std::lock_guard / std::condition_variable are banned
// everywhere else in src/ by hipads-lint rule HL005 — a lock the analysis
// cannot see is a lock it cannot check. This file is the single sanctioned
// home of the raw primitives, each use allowlisted inline.

#ifndef HIPADS_UTIL_MUTEX_H_
#define HIPADS_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>  // hipads-lint: allow(HL005)
#include <mutex>               // hipads-lint: allow(HL005)

#include "util/annotations.h"

namespace hipads {

/// An annotated exclusive lock. Same cost as the std::mutex it wraps.
class HIPADS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HIPADS_ACQUIRE() { mu_.lock(); }
  void Unlock() HIPADS_RELEASE() { mu_.unlock(); }
  bool TryLock() HIPADS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // hipads-lint: allow(HL005) — the primitive being wrapped
};

/// Scoped acquisition: locks in the constructor, unlocks in the
/// destructor. The annotated replacement for std::lock_guard.
class HIPADS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HIPADS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() HIPADS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with hipads::Mutex. Waits require the mutex
/// held (and the analysis checks it); use explicit predicate loops at the
/// call site — `while (!pred) cv.Wait(mu);` — which the analysis can see
/// through, rather than predicate-lambda overloads, which it cannot.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires it before returning.
  void Wait(Mutex& mu) HIPADS_REQUIRES(mu) {
    // Borrow the already-held raw mutex for the wait, then detach again so
    // ownership stays with the caller's scope (adopt/release never
    // double-locks or double-unlocks).
    std::unique_lock<std::mutex> lock(mu.mu_,  // hipads-lint: allow(HL005)
                                      std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// As Wait, but gives up at `deadline`; returns std::cv_status::timeout
  /// when the deadline passed (the mutex is reacquired either way).
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::steady_clock::time_point deadline)
      HIPADS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_,  // hipads-lint: allow(HL005)
                                      std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // hipads-lint: allow(HL005)
};

}  // namespace hipads

#endif  // HIPADS_UTIL_MUTEX_H_
