// ExactSum: an error-free accumulator for nonnegative doubles.
//
// The distributed sweep gather (src/serve/) needs to merge per-range
// floating-point accumulations into exactly the value a single-process
// fold produces, bit for bit, for every way of partitioning the ranges. A
// left fold of doubles cannot be split that way — (s + w1) + w2 differs
// from s + (w1 + w2) — so instead of replaying the fold, ExactSum removes
// rounding from the accumulation entirely: it is a fixed-point
// superaccumulator (a Kulisch accumulator with base-2^32 digits) wide
// enough to hold any sum of doubles exactly. Adds and merges are exact
// integer arithmetic, so the represented value is independent of insertion
// order and of how the inputs were partitioned; the single IEEE rounding
// happens in Round(), round-to-nearest-even of the exact value. Two
// processes that added the same multiset of values — in any order, merged
// through any tree — round to the same double.
//
// Layout: value = sum over i of digit[i] * 2^(32*i - 1074). 66 digits
// cover every finite-double bit position [2^-1074, 2^1023]; the spare top
// digits absorb carry growth, supporting sums of at least 2^60 values of
// any magnitude. Digits are held in uint64 limbs with delayed carries;
// Add touches at most three limbs, so accumulation is O(1) per value.
//
// Only nonnegative finite values are supported (the serving sweeps
// accumulate HIP estimate weights, which are >= 0); Add asserts this in
// debug builds and ignores out-of-domain values in release builds.

#ifndef HIPADS_UTIL_EXACT_SUM_H_
#define HIPADS_UTIL_EXACT_SUM_H_

#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace hipads {

class ExactSum {
 public:
  /// Number of base-2^32 digits: 66 span the finite-double bit positions,
  /// plus 4 of carry headroom for the running sum's growth.
  static constexpr uint32_t kDigits = 70;

  /// Adds a finite value >= 0 exactly. O(1): at most three limbs change.
  void Add(double v) {
    assert(std::isfinite(v) && v >= 0.0);
    if (!(v > 0.0) || !std::isfinite(v)) return;
    int e;
    double f = std::frexp(v, &e);  // v = f * 2^e, f in [0.5, 1)
    auto m = static_cast<uint64_t>(std::ldexp(f, 53));  // 53-bit integer
    // v = m * 2^(e - 53); m's unit bit sits at position e - 53 relative to
    // 2^0, i.e. offset e - 53 + 1074 from the accumulator's lowest bit.
    int off = e + 1021;
    if (off < 0) {
      // Subnormal v: the low -off bits of m are zero, so the shift is exact.
      m >>= -off;
      off = 0;
    }
    uint32_t limb = static_cast<uint32_t>(off) / 32;
    uint32_t shift = static_cast<uint32_t>(off) % 32;
    auto wide = static_cast<unsigned __int128>(m) << shift;  // <= 84 bits
    limbs_[limb] += static_cast<uint64_t>(wide) & 0xffffffffu;
    limbs_[limb + 1] += static_cast<uint64_t>(wide >> 32) & 0xffffffffu;
    limbs_[limb + 2] += static_cast<uint64_t>(wide >> 64);
    // Each Add grows a limb by < 2^32; normalized limbs are < 2^32, so
    // 2^31 - 1 delayed adds keep every limb below 2^63 + 2^32 < 2^64.
    if (++pending_ >= kMaxPending) Normalize();
  }

  /// Adds another accumulator's exact value into this one.
  void Merge(const ExactSum& other) {
    Normalize();
    std::array<uint64_t, kDigits> digits = other.NormalizedDigits();
    for (uint32_t i = 0; i < kDigits; ++i) limbs_[i] += digits[i];
    pending_ = 1;
  }

  /// The exact value rounded once, to nearest, ties to even. Sums beyond
  /// the double range return +infinity.
  double Round() const {
    std::array<uint64_t, kDigits> d = NormalizedDigits();
    int h = static_cast<int>(kDigits) - 1;
    while (h >= 0 && d[h] == 0) --h;
    if (h < 0) return 0.0;
    int top = 31 - std::countl_zero(static_cast<uint32_t>(d[h]));
    int b_max = 32 * h + top;       // highest set bit of the exact value
    int cut = b_max > 52 ? b_max - 52 : 0;  // keep 53 bits (fewer: exact)
    int cd = cut / 32;
    // 128-bit window over digits [cd-1, cd+2]; b_max - cut <= 52 puts the
    // top digit within it. Base bit of the window: 32 * (cd - 1).
    unsigned __int128 w = 0;
    for (int i = 3; i >= 0; --i) {
      int gi = cd - 1 + i;
      uint64_t digit = (gi >= 0 && gi < static_cast<int>(kDigits)) ? d[gi] : 0;
      w = (w << 32) | digit;
    }
    int ws = cut - 32 * (cd - 1);  // in [32, 63]
    auto mant = static_cast<uint64_t>(w >> ws);
    if (cut > 0) {
      bool round_bit = (static_cast<uint64_t>(w >> (ws - 1)) & 1) != 0;
      bool sticky = (w & ((static_cast<unsigned __int128>(1) << (ws - 1)) -
                          1)) != 0;
      for (int i = 0; i < cd - 1 && !sticky; ++i) sticky = d[i] != 0;
      if (round_bit && (sticky || (mant & 1))) ++mant;
      if (mant >> 53) {  // carried into bit 53: renormalize
        mant >>= 1;
        ++cut;
      }
    }
    return std::ldexp(static_cast<double>(mant), cut - 1074);
  }

  bool IsZero() const {
    for (uint64_t limb : limbs_) {
      if (limb != 0) return false;
    }
    return true;
  }

  /// Appends the wire form: u32 lo, u32 count, count little-endian u32
  /// digits — the nonzero digit window of the normalized value, canonical
  /// for the represented value (independent of add/merge history).
  void EncodeTo(std::string* out) const {
    std::array<uint64_t, kDigits> d = NormalizedDigits();
    uint32_t lo = 0, hi = kDigits;
    while (lo < hi && d[lo] == 0) ++lo;
    while (hi > lo && d[hi - 1] == 0) --hi;
    uint32_t count = hi - lo;
    if (count == 0) lo = hi = 0;  // canonical zero: empty window at 0
    AppendU32(out, lo);
    AppendU32(out, count);
    for (uint32_t i = lo; i < hi; ++i) {
      AppendU32(out, static_cast<uint32_t>(d[i]));
    }
  }

  /// Fixed prefix of the wire form ahead of the digits.
  static constexpr size_t kWireHeaderBytes = 8;

  /// Parses one encoded accumulator from the front of `data` and merges
  /// its value into this sum. On success sets *consumed to the bytes read
  /// and returns true; malformed input returns false with *this unchanged.
  bool DecodeAndMerge(std::string_view data, size_t* consumed) {
    if (data.size() < kWireHeaderBytes) return false;
    uint32_t lo = ReadU32(data.data());
    uint32_t count = ReadU32(data.data() + 4);
    if (lo > kDigits || count > kDigits - lo) return false;
    size_t need = kWireHeaderBytes + static_cast<size_t>(count) * 4;
    if (data.size() < need) return false;
    Normalize();
    for (uint32_t i = 0; i < count; ++i) {
      limbs_[lo + i] += ReadU32(data.data() + kWireHeaderBytes + i * 4);
    }
    pending_ = 1;
    *consumed = need;
    return true;
  }

 private:
  // Delayed-carry budget; see Add.
  static constexpr uint32_t kMaxPending = 1u << 31;

  void Normalize() {
    uint64_t carry = 0;
    for (uint32_t i = 0; i < kDigits; ++i) {
      uint64_t limb = limbs_[i] + carry;
      limbs_[i] = limb & 0xffffffffu;
      carry = limb >> 32;
    }
    assert(carry == 0 && "ExactSum overflow: sum exceeds 2^1056");
    pending_ = 0;
  }

  std::array<uint64_t, kDigits> NormalizedDigits() const {
    ExactSum copy = *this;
    copy.Normalize();
    return copy.limbs_;
  }

  static void AppendU32(std::string* out, uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out->append(buf, 4);
  }
  static uint32_t ReadU32(const char* p) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
  }

  std::array<uint64_t, kDigits> limbs_{};
  uint32_t pending_ = 0;
};

}  // namespace hipads

#endif  // HIPADS_UTIL_EXACT_SUM_H_
