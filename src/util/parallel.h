// A small fixed-size thread pool with deterministic work decomposition.
//
// All parallelism in hipads flows through this pool: the parallel ADS
// builders (rank-window pruned Dijkstra, round-sharded DP) and the
// embarrassingly-parallel whole-graph estimator loops. Work is always
// decomposed into an explicit, input-dependent-only list of tasks (static
// chunks or target-aligned ranges), so which thread executes a task never
// affects any output — the property the bit-identical builder guarantees
// rest on. Threads are spawned once and reused across rounds/windows,
// avoiding the per-round std::thread churn of a naive implementation.

#ifndef HIPADS_UTIL_PARALLEL_H_
#define HIPADS_UTIL_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace hipads {

/// Number of hardware threads, at least 1.
uint32_t HardwareThreads();

/// Fixed-size pool. The calling thread participates in every batch, so a
/// pool of T threads holds T-1 workers; a pool of 1 runs everything inline.
class ThreadPool {
 public:
  /// `num_threads` = 0 uses HardwareThreads().
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Runs task(0) .. task(count-1) across the pool and blocks until all
  /// complete. Tasks are claimed dynamically (atomic counter), so outputs
  /// must be indexed by task id, never by thread. Not reentrant: a task
  /// must not submit work to the same pool.
  void RunTasks(size_t count, const std::function<void(size_t)>& task);

  /// Splits [0, n) into num_threads() contiguous chunks (the same static
  /// decomposition for a given (n, num_threads)) and runs
  /// fn(begin, end, chunk_index) for each non-empty chunk. Blocks until done.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t, uint32_t)>& fn);

  /// Runs fn(bounds[i], bounds[i+1], i) for every consecutive pair of
  /// `bounds` (a non-decreasing partition of an index range) with a
  /// non-empty range. Used where chunk boundaries must align with data
  /// boundaries (e.g. one ADS target never spans two chunks).
  void ParallelRanges(const std::vector<size_t>& bounds,
                      const std::function<void(size_t, size_t, uint32_t)>& fn);

  /// Dynamic-schedule variant of ParallelFor for irregular work: [0, n) is
  /// cut into ceil(n/grain) blocks claimed greedily. fn(begin, end,
  /// block_index); outputs must be indexed by block, not thread.
  void ParallelForDynamic(
      size_t n, size_t grain,
      const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  // One RunTasks invocation. Heap-allocated and shared with workers so a
  // worker that wakes late only ever sees a fully-published, immutable
  // batch (its atomics are the only mutable state); draining an already
  // finished batch is a no-op.
  struct Batch {
    const std::function<void(size_t)>* task = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void WorkerLoop();
  void Drain(Batch& batch);

  const uint32_t num_threads_;  // immutable after construction
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;  // workers wait for a new batch
  CondVar done_cv_;  // RunTasks waits for completion
  uint64_t generation_ HIPADS_GUARDED_BY(mu_) = 0;  // batch sequence number
  bool stop_ HIPADS_GUARDED_BY(mu_) = false;
  std::shared_ptr<Batch> batch_ HIPADS_GUARDED_BY(mu_);
};

}  // namespace hipads

#endif  // HIPADS_UTIL_PARALLEL_H_
