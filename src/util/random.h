// Seeded pseudo-random generation for simulations and graph generators.
//
// The library's sketches derive randomness from hash.h (so they are
// deterministic given a seed); this RNG is for everything else: synthetic
// graphs, simulation trials, random permutations.

#ifndef HIPADS_UTIL_RANDOM_H_
#define HIPADS_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace hipads {

/// xoshiro256** PRNG (Blackman & Vigna), seeded via SplitMix64.
/// Small, fast, and high quality; sufficient for Monte-Carlo estimation
/// experiments (the paper's simulations use standard generators, Section 6).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextUnit();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's nearly-divisionless method).
  uint64_t NextBounded(uint64_t bound);

  /// Exponentially distributed value with rate `lambda` (> 0).
  double NextExponential(double lambda);

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p);

  /// A uniformly random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<uint32_t> NextPermutation(uint32_t n);

 private:
  uint64_t s_[4];
};

}  // namespace hipads

#endif  // HIPADS_UTIL_RANDOM_H_
