// Lightweight Status / StatusOr error handling for fallible operations
// (file I/O, graph parsing). Library code does not throw exceptions.
// Follows the RocksDB/Abseil idiom: cheap, explicit, composable.

#ifndef HIPADS_UTIL_STATUS_H_
#define HIPADS_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace hipads {

/// Result of a fallible operation: Ok, or an error code with a message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kDeadlineExceeded,
    kUnavailable,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and error reporting.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// non-ok StatusOr is a programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {                 // NOLINT
    assert(!status_.ok() && "StatusOr constructed from Ok status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace hipads

#endif  // HIPADS_UTIL_STATUS_H_
