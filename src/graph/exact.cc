#include "graph/exact.h"

#include "graph/traversal.h"

namespace hipads {

uint64_t ExactNeighborhoodSize(const Graph& g, NodeId v, double d) {
  uint64_t count = 0;
  for (double dist : ShortestPathDistances(g, v)) {
    if (dist <= d) ++count;
  }
  return count;
}

double ExactQg(const Graph& g, NodeId v,
               const std::function<double(NodeId, double)>& fn) {
  double sum = 0.0;
  std::vector<double> dist = ShortestPathDistances(g, v);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (dist[u] != kInfDist) sum += fn(u, dist[u]);
  }
  return sum;
}

double ExactClosenessCentrality(const Graph& g, NodeId v,
                                const std::function<double(double)>& alpha,
                                const std::function<double(NodeId)>& beta) {
  return ExactQg(g, v, [&alpha, &beta](NodeId u, double d) {
    return alpha(d) * beta(u);
  });
}

double ExactDistanceSum(const Graph& g, NodeId v) {
  return ExactQg(g, v, [](NodeId, double d) { return d; });
}

double ExactHarmonicCentrality(const Graph& g, NodeId v) {
  return ExactQg(g, v,
                 [](NodeId, double d) { return d > 0.0 ? 1.0 / d : 0.0; });
}

std::map<double, uint64_t> ExactDistanceDistribution(const Graph& g) {
  std::map<double, uint64_t> hist;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (double d : ShortestPathDistances(g, v)) {
      if (d != kInfDist && d > 0.0) hist[d]++;
    }
  }
  return hist;
}

std::vector<std::vector<double>> AllPairsDistances(const Graph& g) {
  std::vector<std::vector<double>> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    all[v] = ShortestPathDistances(g, v);
  }
  return all;
}

}  // namespace hipads
