#include "graph/io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace hipads {

StatusOr<Graph> ParseEdgeList(const std::string& text, bool undirected) {
  std::vector<Edge> edges;
  std::unordered_map<uint64_t, NodeId> remap;
  auto intern = [&remap](uint64_t raw) {
    auto [it, inserted] = remap.try_emplace(
        raw, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  std::istringstream in(text);
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (line[pos] == '#' || line[pos] == '%') continue;
    std::istringstream ls(line);
    uint64_t raw_tail, raw_head;
    if (!(ls >> raw_tail >> raw_head)) {
      return Status::Corruption("malformed edge at line " +
                                std::to_string(lineno));
    }
    double w = 1.0;
    if (!(ls >> w)) w = 1.0;
    if (w < 0.0) {
      return Status::InvalidArgument("negative edge weight at line " +
                                     std::to_string(lineno));
    }
    edges.push_back(Edge{intern(raw_tail), intern(raw_head), w});
  }
  NodeId n = static_cast<NodeId>(remap.size());
  if (n == 0) return Status::InvalidArgument("empty edge list");
  return Graph(n, edges, undirected);
}

StatusOr<Graph> ReadEdgeListFile(const std::string& path, bool undirected) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseEdgeList(buf.str(), undirected);
}

Status WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << "# hipads edge list: " << g.num_nodes() << " nodes, "
    << (g.undirected() ? g.num_arcs() / 2 : g.num_arcs()) << " edges\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Arc& a : g.OutArcs(v)) {
      if (g.undirected() && a.head < v) continue;  // emit each edge once
      f << v << '\t' << a.head;
      if (a.weight != 1.0) f << '\t' << a.weight;
      f << '\n';
    }
  }
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

}  // namespace hipads
