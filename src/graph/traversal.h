// Single-source shortest paths: BFS for unit-weight graphs, Dijkstra for
// weighted graphs. These are both the exact baseline oracles and the
// building blocks of the PrunedDijkstra ADS builder.

#ifndef HIPADS_GRAPH_TRAVERSAL_H_
#define HIPADS_GRAPH_TRAVERSAL_H_

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace hipads {

/// Distance value for unreachable nodes.
inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Distances from `source` along forward arcs. BFS when the graph has unit
/// weights, binary-heap Dijkstra otherwise. Unreachable => kInfDist.
std::vector<double> ShortestPathDistances(const Graph& g, NodeId source);

/// Visits nodes reachable from `source` in nondecreasing distance order,
/// invoking visit(node, dist) for each settled node (including the source at
/// distance 0). If visit returns false the node's out-arcs are not relaxed
/// (search is pruned below it, matching Algorithm 1's per-node pruning).
void DijkstraVisit(const Graph& g, NodeId source,
                   const std::function<bool(NodeId, double)>& visit);

/// Nodes within distance <= d of source, i.e. the d-neighborhood N_d(source).
std::vector<NodeId> NeighborhoodAtDistance(const Graph& g, NodeId source,
                                           double d);

/// Number of nodes reachable from `source` (including itself).
uint64_t CountReachable(const Graph& g, NodeId source);

}  // namespace hipads

#endif  // HIPADS_GRAPH_TRAVERSAL_H_
