// Synthetic graph generators.
//
// These stand in for the public SNAP graphs the ADS literature evaluates on:
// R-MAT and Barabasi-Albert produce the heavy-tailed degree distributions of
// social/web graphs; Erdos-Renyi gives expander-like low-diameter graphs;
// grids, paths and trees give controlled high-diameter topologies. See
// DESIGN.md ("Substitutions") for why this preserves the paper's behavior.

#ifndef HIPADS_GRAPH_GENERATORS_H_
#define HIPADS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace hipads {

/// Erdos-Renyi G(n, m): m edges drawn uniformly (no self loops; duplicates
/// rejected). Undirected if `undirected`.
Graph ErdosRenyi(NodeId n, uint64_t m, bool undirected, uint64_t seed);

/// Barabasi-Albert preferential attachment: each new node attaches to
/// `attach` existing nodes chosen proportionally to degree. Undirected.
Graph BarabasiAlbert(NodeId n, uint32_t attach, uint64_t seed);

/// R-MAT (Chakrabarti et al.) power-law generator with partition
/// probabilities (a, b, c, d = 1-a-b-c); defaults match the common
/// social-graph parametrization. Directed; duplicates allowed.
Graph Rmat(uint32_t scale, uint64_t edges_per_node, uint64_t seed,
           bool undirected = false, double a = 0.57, double b = 0.19,
           double c = 0.19);

/// 2-D grid of rows x cols nodes with 4-neighbor connectivity. Undirected.
Graph Grid2D(uint32_t rows, uint32_t cols);

/// Simple path 0-1-...-n-1. Undirected unless `directed` (then arcs point
/// from i to i+1).
Graph Path(NodeId n, bool directed = false);

/// Cycle on n nodes.
Graph Cycle(NodeId n, bool directed = false);

/// Star: center node 0 connected to n-1 leaves. Undirected.
Graph Star(NodeId n);

/// Complete graph K_n. Undirected.
Graph Complete(NodeId n);

/// Complete binary tree with n nodes (node i has children 2i+1, 2i+2).
Graph BinaryTree(NodeId n);

/// Watts-Strogatz small world: ring lattice with 2*neighbors per node,
/// each arc rewired with probability beta. Undirected.
Graph WattsStrogatz(NodeId n, uint32_t neighbors, double beta, uint64_t seed);

/// Assigns U[min_w, max_w) weights to all arcs of `g` (symmetric for
/// undirected graphs: both directions of an edge get the same weight).
Graph RandomizeWeights(const Graph& g, double min_w, double max_w,
                       uint64_t seed);

}  // namespace hipads

#endif  // HIPADS_GRAPH_GENERATORS_H_
