#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "util/hash.h"
#include "util/random.h"

namespace hipads {

Graph ErdosRenyi(NodeId n, uint64_t m, bool undirected, uint64_t seed) {
  assert(n >= 2);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  uint64_t attempts = 0;
  const uint64_t max_attempts = 100 * m + 1000;
  while (edges.size() < m && attempts < max_attempts) {
    ++attempts;
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    uint64_t key = undirected
                       ? (static_cast<uint64_t>(std::min(u, v)) << 32) |
                             std::max(u, v)
                       : (static_cast<uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    edges.push_back(Edge{u, v, 1.0});
  }
  return Graph(n, edges, undirected);
}

Graph BarabasiAlbert(NodeId n, uint32_t attach, uint64_t seed) {
  assert(attach >= 1 && n > attach);
  Rng rng(seed);
  std::vector<Edge> edges;
  // Repeated-endpoint list: picking a uniform element of `targets` samples a
  // node with probability proportional to its degree.
  std::vector<NodeId> targets;
  // Seed clique on the first attach+1 nodes.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = u + 1; v <= attach; ++v) {
      edges.push_back(Edge{u, v, 1.0});
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  std::vector<NodeId> picked;
  for (NodeId v = attach + 1; v < n; ++v) {
    picked.clear();
    // Sample `attach` distinct neighbors by degree.
    while (picked.size() < attach) {
      NodeId t = targets[rng.NextBounded(targets.size())];
      if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
        picked.push_back(t);
      }
    }
    for (NodeId t : picked) {
      edges.push_back(Edge{v, t, 1.0});
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return Graph(n, edges, /*undirected=*/true);
}

Graph Rmat(uint32_t scale, uint64_t edges_per_node, uint64_t seed,
           bool undirected, double a, double b, double c) {
  NodeId n = NodeId{1} << scale;
  uint64_t m = edges_per_node * n;
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    NodeId u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double p = rng.NextUnit();
      u <<= 1;
      v <<= 1;
      if (p < a) {
        // top-left quadrant: no bits set
      } else if (p < a + b) {
        v |= 1;
      } else if (p < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;  // drop self loops
    edges.push_back(Edge{u, v, 1.0});
  }
  return Graph(n, edges, undirected);
}

Graph Grid2D(uint32_t rows, uint32_t cols) {
  assert(rows >= 1 && cols >= 1);
  NodeId n = rows * cols;
  std::vector<Edge> edges;
  auto id = [cols](uint32_t r, uint32_t c) { return r * cols + c; };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(Edge{id(r, c), id(r, c + 1), 1.0});
      if (r + 1 < rows) edges.push_back(Edge{id(r, c), id(r + 1, c), 1.0});
    }
  }
  return Graph(n, edges, /*undirected=*/true);
}

Graph Path(NodeId n, bool directed) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, v + 1, 1.0});
  return Graph(n, edges, /*undirected=*/!directed);
}

Graph Cycle(NodeId n, bool directed) {
  assert(n >= 3);
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) edges.push_back(Edge{v, (v + 1) % n, 1.0});
  return Graph(n, edges, /*undirected=*/!directed);
}

Graph Star(NodeId n) {
  assert(n >= 2);
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back(Edge{0, v, 1.0});
  return Graph(n, edges, /*undirected=*/true);
}

Graph Complete(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back(Edge{u, v, 1.0});
  }
  return Graph(n, edges, /*undirected=*/true);
}

Graph BinaryTree(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) {
    NodeId l = 2 * v + 1, r = 2 * v + 2;
    if (l < n) edges.push_back(Edge{v, l, 1.0});
    if (r < n) edges.push_back(Edge{v, r, 1.0});
  }
  return Graph(n, edges, /*undirected=*/true);
}

Graph WattsStrogatz(NodeId n, uint32_t neighbors, double beta, uint64_t seed) {
  assert(n > 2 * neighbors);
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  auto key = [](NodeId u, NodeId v) {
    return (static_cast<uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
  };
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= neighbors; ++j) {
      NodeId v = (u + j) % n;
      if (rng.NextBernoulli(beta)) {
        // Rewire to a uniform non-neighbor.
        for (int tries = 0; tries < 32; ++tries) {
          NodeId w = static_cast<NodeId>(rng.NextBounded(n));
          if (w != u && !seen.count(key(u, w))) {
            v = w;
            break;
          }
        }
      }
      if (u != v && seen.insert(key(u, v)).second) {
        edges.push_back(Edge{u, v, 1.0});
      }
    }
  }
  return Graph(n, edges, /*undirected=*/true);
}

Graph RandomizeWeights(const Graph& g, double min_w, double max_w,
                       uint64_t seed) {
  assert(max_w >= min_w && min_w >= 0.0);
  std::vector<Edge> edges = g.ToEdgeList();
  if (g.undirected()) {
    // An undirected CSR stores each edge twice; keep one representative so
    // both directions get the same weight when rebuilt.
    std::vector<Edge> uniq;
    uniq.reserve(edges.size() / 2);
    for (const Edge& e : edges) {
      if (e.tail <= e.head) uniq.push_back(e);
    }
    edges = std::move(uniq);
  }
  for (Edge& e : edges) {
    uint64_t h = HashCombine(
        seed, (static_cast<uint64_t>(e.tail) << 32) | e.head);
    e.weight = min_w + (max_w - min_w) * ToUnitInterval(h);
  }
  return Graph(g.num_nodes(), edges, g.undirected());
}

}  // namespace hipads
