#include "graph/graph.h"

#include <cassert>

namespace hipads {

Graph::Graph(NodeId num_nodes, const std::vector<Edge>& edges,
             bool undirected)
    : undirected_(undirected) {
  uint64_t arcs_per_edge = undirected ? 2 : 1;
  offsets_.assign(num_nodes + 1, 0);
  for (const Edge& e : edges) {
    assert(e.tail < num_nodes && e.head < num_nodes);
    assert(e.weight >= 0.0);
    offsets_[e.tail + 1]++;
    if (undirected) offsets_[e.head + 1]++;
  }
  for (NodeId v = 0; v < num_nodes; ++v) offsets_[v + 1] += offsets_[v];
  arcs_.resize(edges.size() * arcs_per_edge);
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    arcs_[cursor[e.tail]++] = Arc{e.head, e.weight};
    if (undirected) arcs_[cursor[e.head]++] = Arc{e.tail, e.weight};
  }
}

bool Graph::IsUnitWeight() const {
  for (const Arc& a : arcs_) {
    if (a.weight != 1.0) return false;
  }
  return true;
}

Graph Graph::Transpose() const {
  Graph t;
  t.undirected_ = undirected_;
  NodeId n = num_nodes();
  t.offsets_.assign(n + 1, 0);
  for (const Arc& a : arcs_) t.offsets_[a.head + 1]++;
  for (NodeId v = 0; v < n; ++v) t.offsets_[v + 1] += t.offsets_[v];
  t.arcs_.resize(arcs_.size());
  std::vector<uint64_t> cursor(t.offsets_.begin(), t.offsets_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    for (const Arc& a : OutArcs(v)) {
      t.arcs_[cursor[a.head]++] = Arc{v, a.weight};
    }
  }
  return t;
}

std::vector<Edge> Graph::ToEdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(arcs_.size());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const Arc& a : OutArcs(v)) {
      edges.push_back(Edge{v, a.head, a.weight});
    }
  }
  return edges;
}

}  // namespace hipads
