// Compressed-sparse-row graph substrate.
//
// All ADS builders operate on this representation. Graphs may be directed or
// undirected (undirected graphs store both arc directions) and weighted or
// unweighted (unweighted arcs have length 1).

#ifndef HIPADS_GRAPH_GRAPH_H_
#define HIPADS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace hipads {

using NodeId = uint32_t;

/// Outgoing arc: head node and arc length.
struct Arc {
  NodeId head;
  double weight;
};

/// Edge-list entry used during construction.
struct Edge {
  NodeId tail;
  NodeId head;
  double weight = 1.0;
};

/// Immutable CSR adjacency structure.
///
/// Build with GraphBuilder (or the generator / IO helpers). Node ids are
/// dense in [0, num_nodes).
class Graph {
 public:
  Graph() = default;

  /// Builds a CSR graph from an edge list. If `undirected`, every edge is
  /// inserted in both directions. Self loops are kept; parallel arcs are
  /// kept (they are harmless for shortest-path computations).
  Graph(NodeId num_nodes, const std::vector<Edge>& edges, bool undirected);

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size() - 1); }
  uint64_t num_arcs() const { return arcs_.size(); }
  bool undirected() const { return undirected_; }

  /// Outgoing arcs of `v`.
  std::span<const Arc> OutArcs(NodeId v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// True if every arc has weight exactly 1.
  bool IsUnitWeight() const;

  /// The transpose graph (all arcs reversed). For undirected graphs this is
  /// an identical copy.
  Graph Transpose() const;

  /// Recovers the arc list (tail, head, weight) — mostly for tests and IO.
  std::vector<Edge> ToEdgeList() const;

 private:
  std::vector<uint64_t> offsets_{0};  // size num_nodes + 1
  std::vector<Arc> arcs_;
  bool undirected_ = false;
};

}  // namespace hipads

#endif  // HIPADS_GRAPH_GRAPH_H_
