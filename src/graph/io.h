// Plain-text edge-list graph IO (the SNAP dataset format): one
// "tail head [weight]" triple per line, '#' comment lines ignored.

#ifndef HIPADS_GRAPH_IO_H_
#define HIPADS_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace hipads {

/// Parses an edge-list from a string. Node ids may be sparse; they are
/// remapped to a dense [0, n) range in first-appearance order.
StatusOr<Graph> ParseEdgeList(const std::string& text, bool undirected);

/// Reads an edge-list file (SNAP format).
StatusOr<Graph> ReadEdgeListFile(const std::string& path, bool undirected);

/// Writes `g` as an edge-list file. Undirected graphs emit each edge once.
Status WriteEdgeListFile(const Graph& g, const std::string& path);

}  // namespace hipads

#endif  // HIPADS_GRAPH_IO_H_
