// Exact (brute force) distance-based statistics. These are the ground-truth
// oracles the estimator experiments compare against; they run one full
// shortest-path computation per node and are only meant for graphs small
// enough to validate on (the whole point of the paper is avoiding this cost
// at scale).

#ifndef HIPADS_GRAPH_EXACT_H_
#define HIPADS_GRAPH_EXACT_H_

#include <functional>
#include <map>
#include <vector>

#include "graph/graph.h"

namespace hipads {

/// Exact neighborhood cardinality n_d(v) = |{u : d(v,u) <= d}|.
uint64_t ExactNeighborhoodSize(const Graph& g, NodeId v, double d);

/// Exact distance-based statistic Q_g(v) = sum over reachable u of
/// g(u, d(v,u))   (Eq. 1 of the paper).
double ExactQg(const Graph& g, NodeId v,
               const std::function<double(NodeId, double)>& fn);

/// Exact closeness centrality C_{alpha,beta}(v) = sum alpha(d(v,u)) beta(u)
/// (Eq. 2). alpha must treat unreachable as 0 (it is never called with
/// infinite distance).
double ExactClosenessCentrality(const Graph& g, NodeId v,
                                const std::function<double(double)>& alpha,
                                const std::function<double(NodeId)>& beta);

/// Sum of distances to all reachable nodes (inverse classic closeness).
double ExactDistanceSum(const Graph& g, NodeId v);

/// Harmonic centrality: sum over u != v reachable of 1 / d(v,u).
double ExactHarmonicCentrality(const Graph& g, NodeId v);

/// The graph's exact distance distribution: for each distinct finite
/// distance d > 0, the number of ordered pairs (u,v) with d(u,v) = d.
/// (The "neighbourhood function" of ANF/HyperANF is its running sum.)
std::map<double, uint64_t> ExactDistanceDistribution(const Graph& g);

/// All exact distances from every node (n x n); for small test graphs only.
std::vector<std::vector<double>> AllPairsDistances(const Graph& g);

}  // namespace hipads

#endif  // HIPADS_GRAPH_EXACT_H_
