#include "graph/traversal.h"

#include <deque>
#include <queue>

namespace hipads {

namespace {

struct HeapItem {
  double dist;
  NodeId node;
  bool operator>(const HeapItem& o) const {
    if (dist != o.dist) return dist > o.dist;
    return node > o.node;
  }
};

}  // namespace

void DijkstraVisit(const Graph& g, NodeId source,
                   const std::function<bool(NodeId, double)>& visit) {
  std::vector<double> dist(g.num_nodes(), kInfDist);
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;  // stale entry
    if (!visit(v, d)) continue;  // pruned: settled but not expanded
    for (const Arc& a : g.OutArcs(v)) {
      double nd = d + a.weight;
      if (nd < dist[a.head]) {
        dist[a.head] = nd;
        heap.push({nd, a.head});
      }
    }
  }
}

std::vector<double> ShortestPathDistances(const Graph& g, NodeId source) {
  std::vector<double> dist(g.num_nodes(), kInfDist);
  if (g.IsUnitWeight()) {
    std::deque<NodeId> queue;
    dist[source] = 0.0;
    queue.push_back(source);
    while (!queue.empty()) {
      NodeId v = queue.front();
      queue.pop_front();
      for (const Arc& a : g.OutArcs(v)) {
        if (dist[a.head] == kInfDist) {
          dist[a.head] = dist[v] + 1.0;
          queue.push_back(a.head);
        }
      }
    }
    return dist;
  }
  DijkstraVisit(g, source, [&dist](NodeId v, double d) {
    dist[v] = d;
    return true;
  });
  return dist;
}

std::vector<NodeId> NeighborhoodAtDistance(const Graph& g, NodeId source,
                                           double d) {
  std::vector<NodeId> result;
  std::vector<double> dist = ShortestPathDistances(g, source);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] <= d) result.push_back(v);
  }
  return result;
}

uint64_t CountReachable(const Graph& g, NodeId source) {
  uint64_t count = 0;
  for (double d : ShortestPathDistances(g, source)) {
    if (d != kInfDist) ++count;
  }
  return count;
}

}  // namespace hipads
