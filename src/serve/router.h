// The scatter/gather front end of the distributed serving subsystem.
//
// A fleet manifest maps each serving process to the contiguous global node
// range it holds:
//
//   hipads-fleet-v1
//   nodes <N>
//   server <begin> <end> <address>
//   server <begin> <end> <address>
//   ...
//
// Ranges must be sorted, contiguous and end exactly at N — the same
// contiguous-range discipline the shard manifest enforces on disk, lifted
// to hosts. A root fleet starts at 0; a fleet whose first range starts at
// B > 0 describes a *sub-fleet* serving global nodes [B, N) — the form an
// inner router of a multi-level tree is configured with.
//
// FleetRouter connects to every server (any Channel transport: TCP for a
// real fleet, loopback for deterministic tests/benches), validates that
// the fleet's reported ranges and sketch parameters are coherent, and then
// serves the two request families:
//
//   * Sweeps — scatter: the serialized SweepPlan goes to every range
//     server concurrently; each runs ONE fused pass over its backend
//     (ads/sweep.h) and returns its collectors' partial states. Gather:
//     partials are absorbed in node order (never completion order), which
//     replays the sequential node-order Reduce — so every statistic is
//     bitwise identical to a single-process RunSweep over the same
//     sketches, whatever the fleet layout, transport, or per-server thread
//     counts.
//   * Point queries — routed to the owning server by range; Jaccard pairs
//     that span two servers are evaluated by fetching both raw sketches
//     and running the same similarity estimator router-side.
//
// RouterCore wraps a FleetRouter in the wire protocol's FrameHandler
// surface, so a router process is itself just another protocol endpoint
// serving its fleet's [node_begin, N): clients cannot tell a router from a
// single big server, and routers stack on routers for multi-level fan-out
// — an outer manifest lists inner routers at their sub-fleet ranges
// (tested down to two levels in serve_test).

#ifndef HIPADS_SERVE_ROUTER_H_
#define HIPADS_SERVE_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"

namespace hipads {

/// One fleet member: the global node range [begin, end) served at
/// `address`.
struct FleetEntry {
  std::string address;
  NodeId begin = 0;
  NodeId end = 0;
};

struct FleetManifest {
  uint64_t num_nodes = 0;
  std::vector<FleetEntry> servers;
};

/// Magic first line of a fleet manifest file.
inline constexpr char kFleetManifestMagic[] = "hipads-fleet-v1";

std::string SerializeFleetManifest(const FleetManifest& manifest);
StatusOr<FleetManifest> ParseFleetManifest(const std::string& text);
StatusOr<FleetManifest> ReadFleetManifestFile(const std::string& path);

/// Structural check: at least one server, ranges sorted, non-empty,
/// contiguous, ending exactly at num_nodes (starting at 0 for a root
/// fleet, or at any B >= 0 for a sub-fleet).
Status ValidateFleetManifest(const FleetManifest& manifest);

/// Opens the transport to one fleet address. The default TCP factory
/// parses "host:port"; tests install loopback factories.
using ChannelFactory =
    std::function<StatusOr<std::unique_ptr<Channel>>(const std::string&)>;
ChannelFactory TcpChannelFactory();
/// A TCP factory whose channels carry the given socket options (connect /
/// per-call I/O timeouts).
ChannelFactory TcpChannelFactory(const TcpChannelOptions& options);

/// Robustness policy of a FleetRouter. Defaults are production-shaped:
/// one retry, no hedging, no implicit deadline.
struct RouterOptions {
  /// Default per-request deadline applied when the caller passes none
  /// (and an upper bound when it does). 0 = none.
  uint64_t timeout_ms = 0;
  /// Transport-failure retry budget per request: total attempts are
  /// retries + 1. Only transport-shaped failures (IOError, Unavailable —
  /// dead connections, shed lookups) are retried; semantic errors and
  /// expired deadlines never are. Each retry reconnects the server's
  /// channel.
  uint32_t retries = 1;
  /// Hedge point requests: if the owner has not answered within
  /// hedge_delay_ms, race a second attempt over a FRESH connection to the
  /// same server and take whichever succeeds first. Ranges tile the node
  /// space uniquely, so the hedge targets the same owner — it defeats a
  /// stalled connection or a wedged worker thread, not a dead process.
  /// Both attempts compute the same bytes, so the winner is
  /// indistinguishable from an unhedged call.
  bool hedge = false;
  uint64_t hedge_delay_ms = 50;
  /// Jittered exponential backoff between retries: attempt a sleeps a
  /// deterministic value in [b/2, b] where b = min(backoff_base_ms << a,
  /// backoff_max_ms), seeded per (server, attempt) so a fleet-wide
  /// failure does not resynchronize every client into a retry stampede.
  uint64_t backoff_base_ms = 10;
  uint64_t backoff_max_ms = 1000;
  uint64_t backoff_seed = 0;
  /// Same-server point-request coalescing across concurrent callers: with
  /// a window > 0 (and hedging off — the two policies are mutually
  /// exclusive), the first caller bound for a server becomes the batch
  /// leader, collects followers for up to this many microseconds (or until
  /// the batch is full), and sends ONE kPointBatchRequest; per-entry
  /// results are handed back to each caller in arrival order. Answers are
  /// bitwise identical to uncoalesced calls; a caller whose entry comes
  /// back shed/failed falls back to its own single-request call, so the
  /// retry contract is unchanged. 0 disables coalescing. When 0, the
  /// HIPADS_COALESCE_WINDOW_US environment variable (read at Connect)
  /// supplies the window — CI forces the flush path on with it.
  uint64_t coalesce_window_us = 0;
  /// Entries per coalesced batch frame (clamped to
  /// kMaxPointBatchEntries); a full batch flushes before the window ends.
  uint32_t coalesce_max_batch = 64;
};

/// A connected fleet. Movable, not copyable.
class FleetRouter {
 public:
  /// An empty router (no fleet); the state StatusOr needs. Use Connect.
  FleetRouter() = default;

  /// Connects to every manifest entry and validates the fleet: each
  /// server's reported range must equal its manifest range, and every
  /// server must agree on k, flavor and rank sup. A dead or mismatched
  /// server fails the whole fleet here, before any query runs. The
  /// factory is retained for reconnects: a channel that fails a request
  /// is dropped and re-opened (with backoff) on the next attempt.
  static StatusOr<FleetRouter> Connect(FleetManifest manifest,
                                       const ChannelFactory& factory,
                                       const RouterOptions& options = {});

  /// Exclusive end of the served global range (== the global node count
  /// for a root fleet).
  uint64_t num_nodes() const { return manifest_.num_nodes; }
  /// First global node this fleet serves (0 for a root fleet).
  uint64_t node_begin() const {
    return manifest_.servers.empty() ? 0 : manifest_.servers.front().begin;
  }
  uint64_t total_entries() const { return total_entries_; }
  uint32_t k() const { return k_; }
  uint32_t flavor() const { return flavor_; }
  double rank_sup() const { return rank_sup_; }
  size_t num_servers() const { return manifest_.servers.size(); }

  /// Scatters `request` to every range server, gathers the partial states
  /// and absorbs them into `collectors` (built by the caller from the same
  /// spec; Begin is called here). Bitwise identical to a single-process
  /// RunSweep over the same sketches. `deadline` bounds the whole
  /// scatter/gather (each hop receives the remaining budget); per-server
  /// failures are retried within the retry budget, and the final error
  /// names the failing server. On failure the collectors are left
  /// partially filled and must be discarded, never read.
  Status ExecuteSweep(const SweepRequestMsg& request,
                      const std::vector<SweepCollector*>& collectors,
                      const Deadline& deadline = Deadline());

  /// Routes a point request to the owning range server (retried, and —
  /// when options.hedge is set — hedged; see RouterOptions). Cross-server
  /// Jaccard pairs are computed router-side from fetched sketches.
  StatusOr<PointResponseMsg> Point(const PointRequestMsg& request,
                                   const Deadline& deadline = Deadline());

  /// N point requests in as few downstream frames as possible: grouped by
  /// owning server, each group sent as kPointBatchRequest frames (split at
  /// kMaxPointBatchEntries). Returns one entry per request in request
  /// order. Entries a batch frame cannot express — cross-server Jaccard
  /// pairs — and entries whose batched answer came back retryable take the
  /// single-request Point path instead, so every entry's bytes match what
  /// a lone Point call would have produced. The call itself never fails;
  /// per-request errors live in the entry statuses.
  std::vector<PointBatchResponseEntry> PointBatch(
      const std::vector<PointRequestMsg>& requests,
      const Deadline& deadline = Deadline());

  /// Scrapes the whole fleet: this process's registry snapshot (labeled
  /// "router") followed by every server's, gathered over the wire and
  /// relabeled with the server's manifest address (nested routers keep
  /// their own labels as an "address/label" suffix, so a stacked tree
  /// scrape stays unambiguous). Pass kStatsFlagTraceSpans to also drain
  /// every process's trace buffer. An unreachable server fails the
  /// scrape — a fleet operator must never mistake a partial snapshot for
  /// the whole fleet.
  StatusOr<StatsResponseMsg> Stats(uint32_t flags,
                                   const Deadline& deadline = Deadline());

 private:
  /// A fleet member's mutable connection state. The channel is held as a
  /// shared_ptr snapshot: requests copy the pointer under the slot mutex
  /// and call outside it, so one slow request never blocks another from
  /// reconnecting — it just ends up talking on a channel that has already
  /// been replaced (harmless: the call fails or succeeds on its own).
  struct ServerSlot {
    Mutex mu;
    std::shared_ptr<Channel> channel HIPADS_GUARDED_BY(mu);
  };

  /// One caller's parked request inside a coalescing batch. Lives on the
  /// caller's stack; the leader writes result/done under the batcher mutex
  /// and the caller reads them back under it, so no field outlives its
  /// caller's wait.
  struct PendingPoint {
    const std::string* payload = nullptr;  // encoded single point request
    Deadline deadline;
    StatusOr<Frame> result{Status::Unavailable("coalesced call pending")};
    bool done = false;
    /// Set when the batched answer was transport-shaped (whole-batch
    /// failure or a retryable per-entry status): the caller re-runs its
    /// own single-request CallServer, preserving the uncoalesced retry
    /// contract exactly.
    bool retry_single = false;
  };

  /// Per-server coalescing state (leader/follower): the first caller to
  /// find no active leader becomes one, collects the queue for the flush
  /// window, and carries everyone's requests in one batch frame.
  struct PointBatcher {
    Mutex mu;
    CondVar cv;
    std::vector<PendingPoint*> queue HIPADS_GUARDED_BY(mu);
    bool leader_active HIPADS_GUARDED_BY(mu) = false;
  };

  /// Index of the fleet entry owning global node v, or an error.
  StatusOr<size_t> OwnerOf(uint64_t v) const;
  StatusOr<std::vector<AdsEntry>> FetchSketch(uint64_t node,
                                              const Deadline& deadline);

  /// The caller's deadline tightened by the router's default timeout.
  Deadline EffectiveDeadline(const Deadline& deadline) const;
  /// Current (or freshly reconnected) channel of server `idx`.
  StatusOr<std::shared_ptr<Channel>> ChannelFor(size_t idx);
  /// Drops a failed channel so the next attempt reconnects — only if the
  /// slot still holds this exact channel (a racing request may already
  /// have replaced it).
  void InvalidateChannel(size_t idx, const std::shared_ptr<Channel>& bad);
  /// One request to server `idx` with the full retry/backoff/reconnect
  /// policy. Transport errors come back naming the server's address.
  StatusOr<Frame> CallServer(size_t idx, MessageType type,
                             const std::string& payload,
                             MessageType expected_response,
                             const Deadline& deadline);
  /// A point call with the hedging race layered on top of CallServer.
  StatusOr<Frame> CallPoint(size_t idx, const std::string& payload,
                            const Deadline& deadline);
  /// The single-shot fresh-connection attempt a hedge runs.
  StatusOr<Frame> HedgeAttempt(size_t idx, const std::string& payload,
                               const Deadline& deadline);
  /// The coalescing point path (coalesce_window_us > 0, hedge off): joins
  /// or leads the server's batch, then waits for its entry's answer.
  StatusOr<Frame> CallPointCoalesced(size_t idx, const std::string& payload,
                                     const Deadline& deadline);
  /// Leader side: sends one batch frame carrying every queued request
  /// (deadline = the members' minimum) and distributes per-entry results.
  /// A one-entry batch degenerates to the plain single-request call.
  void ExecuteCoalescedBatch(size_t idx,
                             const std::vector<PendingPoint*>& batch);

  FleetManifest manifest_;
  std::vector<std::unique_ptr<ServerSlot>> slots_;  // parallel to servers
  std::vector<std::unique_ptr<PointBatcher>> batchers_;  // parallel to servers
  ChannelFactory factory_;
  RouterOptions options_;
  uint64_t total_entries_ = 0;
  uint32_t k_ = 0;
  uint32_t flavor_ = 0;
  double rank_sup_ = 1.0;
};

/// The wire surface of a router process: info reports the whole fleet's
/// [0, N); sweeps scatter/gather and respond with the merged state as a
/// single [0, N) partial (collector partial states are partition-
/// independent, so the re-encoded merge is exactly what a single server
/// covering the whole range would have sent). Request deadlines are
/// re-anchored and propagated to the fleet; expired requests are shed.
class RouterCore : public FrameHandler {
 public:
  explicit RouterCore(FleetRouter* router) : router_(router) {}

  std::string HandleFrame(std::string_view request,
                          bool* close_connection) override;

 private:
  StatusOr<Frame> Dispatch(const Frame& request, const Deadline& deadline);

  FleetRouter* router_;
};

}  // namespace hipads

#endif  // HIPADS_SERVE_ROUTER_H_
