// The scatter/gather front end of the distributed serving subsystem.
//
// A fleet manifest maps each serving process to the contiguous global node
// range it holds:
//
//   hipads-fleet-v1
//   nodes <N>
//   server <begin> <end> <address>
//   server <begin> <end> <address>
//   ...
//
// Ranges must be sorted, contiguous and end exactly at N — the same
// contiguous-range discipline the shard manifest enforces on disk, lifted
// to hosts. A root fleet starts at 0; a fleet whose first range starts at
// B > 0 describes a *sub-fleet* serving global nodes [B, N) — the form an
// inner router of a multi-level tree is configured with.
//
// FleetRouter connects to every server (any Channel transport: TCP for a
// real fleet, loopback for deterministic tests/benches), validates that
// the fleet's reported ranges and sketch parameters are coherent, and then
// serves the two request families:
//
//   * Sweeps — scatter: the serialized SweepPlan goes to every range
//     server concurrently; each runs ONE fused pass over its backend
//     (ads/sweep.h) and returns its collectors' partial states. Gather:
//     partials are absorbed in node order (never completion order), which
//     replays the sequential node-order Reduce — so every statistic is
//     bitwise identical to a single-process RunSweep over the same
//     sketches, whatever the fleet layout, transport, or per-server thread
//     counts.
//   * Point queries — routed to the owning server by range; Jaccard pairs
//     that span two servers are evaluated by fetching both raw sketches
//     and running the same similarity estimator router-side.
//
// RouterCore wraps a FleetRouter in the wire protocol's FrameHandler
// surface, so a router process is itself just another protocol endpoint
// serving its fleet's [node_begin, N): clients cannot tell a router from a
// single big server, and routers stack on routers for multi-level fan-out
// — an outer manifest lists inner routers at their sub-fleet ranges
// (tested down to two levels in serve_test).

#ifndef HIPADS_SERVE_ROUTER_H_
#define HIPADS_SERVE_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/status.h"

namespace hipads {

/// One fleet member: the global node range [begin, end) served at
/// `address`.
struct FleetEntry {
  std::string address;
  NodeId begin = 0;
  NodeId end = 0;
};

struct FleetManifest {
  uint64_t num_nodes = 0;
  std::vector<FleetEntry> servers;
};

/// Magic first line of a fleet manifest file.
inline constexpr char kFleetManifestMagic[] = "hipads-fleet-v1";

std::string SerializeFleetManifest(const FleetManifest& manifest);
StatusOr<FleetManifest> ParseFleetManifest(const std::string& text);
StatusOr<FleetManifest> ReadFleetManifestFile(const std::string& path);

/// Structural check: at least one server, ranges sorted, non-empty,
/// contiguous, ending exactly at num_nodes (starting at 0 for a root
/// fleet, or at any B >= 0 for a sub-fleet).
Status ValidateFleetManifest(const FleetManifest& manifest);

/// Opens the transport to one fleet address. The default TCP factory
/// parses "host:port"; tests install loopback factories.
using ChannelFactory =
    std::function<StatusOr<std::unique_ptr<Channel>>(const std::string&)>;
ChannelFactory TcpChannelFactory();

/// A connected fleet. Movable, not copyable.
class FleetRouter {
 public:
  /// An empty router (no fleet); the state StatusOr needs. Use Connect.
  FleetRouter() = default;

  /// Connects to every manifest entry and validates the fleet: each
  /// server's reported range must equal its manifest range, and every
  /// server must agree on k, flavor and rank sup. A dead or mismatched
  /// server fails the whole fleet here, before any query runs.
  static StatusOr<FleetRouter> Connect(FleetManifest manifest,
                                       const ChannelFactory& factory);

  /// Exclusive end of the served global range (== the global node count
  /// for a root fleet).
  uint64_t num_nodes() const { return manifest_.num_nodes; }
  /// First global node this fleet serves (0 for a root fleet).
  uint64_t node_begin() const {
    return manifest_.servers.empty() ? 0 : manifest_.servers.front().begin;
  }
  uint64_t total_entries() const { return total_entries_; }
  uint32_t k() const { return k_; }
  uint32_t flavor() const { return flavor_; }
  double rank_sup() const { return rank_sup_; }
  size_t num_servers() const { return manifest_.servers.size(); }

  /// Scatters `request` to every range server, gathers the partial states
  /// and absorbs them into `collectors` (built by the caller from the same
  /// spec; Begin is called here). Bitwise identical to a single-process
  /// RunSweep over the same sketches. On failure — a dead server, a
  /// malformed partial, a range mismatch — the collectors are left
  /// partially filled and must be discarded, never read.
  Status ExecuteSweep(const SweepRequestMsg& request,
                      const std::vector<SweepCollector*>& collectors);

  /// Routes a point request to the owning range server. Cross-server
  /// Jaccard pairs are computed router-side from fetched sketches.
  StatusOr<PointResponseMsg> Point(const PointRequestMsg& request);

 private:
  /// Index of the fleet entry owning global node v, or an error.
  StatusOr<size_t> OwnerOf(uint64_t v) const;
  StatusOr<std::vector<AdsEntry>> FetchSketch(uint64_t node);

  FleetManifest manifest_;
  std::vector<std::unique_ptr<Channel>> channels_;  // parallel to servers
  uint64_t total_entries_ = 0;
  uint32_t k_ = 0;
  uint32_t flavor_ = 0;
  double rank_sup_ = 1.0;
};

/// The wire surface of a router process: info reports the whole fleet's
/// [0, N); sweeps scatter/gather and respond with the merged state as a
/// single [0, N) partial (histogram collectors keep their replay streams
/// alive through the merge, so the re-encoded partial stays losslessly
/// replayable by the next hop).
class RouterCore : public FrameHandler {
 public:
  explicit RouterCore(FleetRouter* router) : router_(router) {}

  std::string HandleFrame(std::string_view request,
                          bool* close_connection) override;

 private:
  StatusOr<Frame> Dispatch(const Frame& request);

  FleetRouter* router_;
};

}  // namespace hipads

#endif  // HIPADS_SERVE_ROUTER_H_
