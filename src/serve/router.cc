#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "ads/similarity.h"
#include "serve/trace.h"
#include "util/hash.h"
#include "util/metrics.h"
#include "util/mutex.h"

namespace hipads {

namespace {

// Instrument pointers resolved once (the registry lookup takes a mutex);
// per-server error counters are looked up on the failure path, where the
// lookup cost is noise.
struct RouterMetrics {
  MetricCounter* scatter_fanout;
  MetricCounter* retries;
  MetricCounter* hedge_fired;
  MetricCounter* hedge_won;
  MetricHistogram* coalesce_batch_fill;
  MetricHistogram* coalesce_flush_wait_us;
};

RouterMetrics& Metrics() {
  static RouterMetrics* m = [] {
    auto* mm = new RouterMetrics();
    MetricsRegistry& reg = MetricsRegistry::Get();
    mm->scatter_fanout = reg.Counter("router.scatter.fanout");
    mm->retries = reg.Counter("router.retries");
    mm->hedge_fired = reg.Counter("router.hedge.fired");
    mm->hedge_won = reg.Counter("router.hedge.won");
    mm->coalesce_batch_fill = reg.Histogram("router.coalesce.batch_fill");
    mm->coalesce_flush_wait_us =
        reg.Histogram("router.coalesce.flush_wait_us");
    return mm;
  }();
  return *m;
}

void CountServerError(const std::string& address) {
  MetricsRegistry::Get().Counter("router.server_errors." + address)->Add();
}

// Encodes a downstream request frame, lifting it to wire v4 when the
// handling thread carries a trace id — the hop that propagates a traced
// request's id across the fleet.
std::string EncodeDownstreamFrame(MessageType type, const std::string& payload,
                                  const Deadline& deadline) {
  const TraceId trace = CurrentTraceId();
  const uint32_t version =
      trace.active() ? kWireVersionTrace : kWireVersion;
  return EncodeFrame(type, payload, deadline.ToWireMs(), version, trace.hi,
                     trace.lo);
}

// Backoff jitter uses the deterministic Mix64 mixer (util/hash.h): same
// seed, server and attempt always back off the same amount, so fault
// tests are reproducible, while distinct servers/attempts decorrelate.

// Transport-shaped failures worth retrying: dead/broken connections and
// explicit shed responses. Semantic errors (bad request, missing node)
// and expired deadlines are final.
bool Retryable(const Status& s) {
  return s.code() == Status::Code::kIOError ||
         s.code() == Status::Code::kUnavailable;
}

// Rebuilds `s` with a new message, preserving the code for the codes the
// retry policy keys on (Status constructors are factory-only).
Status WithMessage(const Status& s, std::string msg) {
  switch (s.code()) {
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case Status::Code::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    default:
      return Status::IOError(std::move(msg));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Fleet manifest
// ---------------------------------------------------------------------------

std::string SerializeFleetManifest(const FleetManifest& manifest) {
  std::ostringstream os;
  os << kFleetManifestMagic << '\n';
  os << "nodes " << manifest.num_nodes << '\n';
  for (const FleetEntry& e : manifest.servers) {
    os << "server " << e.begin << ' ' << e.end << ' ' << e.address << '\n';
  }
  return os.str();
}

StatusOr<FleetManifest> ParseFleetManifest(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kFleetManifestMagic) {
    return Status::Corruption("missing hipads-fleet-v1 manifest header");
  }
  FleetManifest manifest;
  bool saw_nodes = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "nodes") {
      if (saw_nodes) {
        return Status::Corruption("duplicate nodes line in fleet manifest");
      }
      if (!(fields >> manifest.num_nodes)) {
        return Status::Corruption("bad nodes line in fleet manifest");
      }
      saw_nodes = true;
    } else if (keyword == "server") {
      FleetEntry e;
      if (!(fields >> e.begin >> e.end >> e.address)) {
        return Status::Corruption("bad server line in fleet manifest: " +
                                  line);
      }
      std::string extra;
      if (fields >> extra) {
        return Status::Corruption("trailing fields on server line: " + line);
      }
      manifest.servers.push_back(std::move(e));
    } else {
      return Status::Corruption("unknown fleet manifest line: " + line);
    }
  }
  if (!saw_nodes) {
    return Status::Corruption("fleet manifest missing nodes line");
  }
  Status s = ValidateFleetManifest(manifest);
  if (!s.ok()) return s;
  return manifest;
}

StatusOr<FleetManifest> ReadFleetManifestFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open fleet manifest " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseFleetManifest(buffer.str());
}

Status ValidateFleetManifest(const FleetManifest& manifest) {
  if (manifest.servers.empty()) {
    return Status::InvalidArgument("fleet manifest lists no servers");
  }
  // A root fleet starts at 0; a sub-fleet (an inner tier of a stacked
  // router tree) may start at any B — either way the ranges must be
  // sorted, non-empty, contiguous, and end exactly at `nodes`.
  NodeId expected = manifest.servers.front().begin;
  for (const FleetEntry& e : manifest.servers) {
    if (e.begin != expected || e.end <= e.begin) {
      return Status::InvalidArgument(
          "fleet ranges must be sorted, non-empty and contiguous: "
          "server " + e.address + " covers [" + std::to_string(e.begin) +
          ", " + std::to_string(e.end) + ") but [" +
          std::to_string(expected) + ", ...) was expected");
    }
    expected = e.end;
  }
  if (expected != manifest.num_nodes) {
    return Status::InvalidArgument(
        "fleet ranges end at " + std::to_string(expected) +
        " but the manifest declares " + std::to_string(manifest.num_nodes) +
        " nodes");
  }
  return Status::Ok();
}

ChannelFactory TcpChannelFactory() {
  return TcpChannelFactory(TcpChannelOptions{});
}

ChannelFactory TcpChannelFactory(const TcpChannelOptions& options) {
  return [options](const std::string& address)
             -> StatusOr<std::unique_ptr<Channel>> {
    auto channel = TcpChannel::ConnectAddress(address, options);
    if (!channel.ok()) return channel.status();
    return std::unique_ptr<Channel>(std::move(channel).value());
  };
}

// ---------------------------------------------------------------------------
// FleetRouter
// ---------------------------------------------------------------------------

StatusOr<FleetRouter> FleetRouter::Connect(FleetManifest manifest,
                                           const ChannelFactory& factory,
                                           const RouterOptions& options) {
  Status s = ValidateFleetManifest(manifest);
  if (!s.ok()) return s;
  FleetRouter router;
  router.manifest_ = std::move(manifest);
  router.factory_ = factory;
  router.options_ = options;
  if (router.options_.coalesce_window_us == 0) {
    // CI's tsan lane (and operators chasing tail latency) force the
    // coalescing path on without recompiling anything.
    const char* env = std::getenv("HIPADS_COALESCE_WINDOW_US");
    if (env != nullptr && *env != '\0') {
      router.options_.coalesce_window_us = std::strtoull(env, nullptr, 10);
    }
  }
  if (router.options_.coalesce_max_batch == 0) {
    router.options_.coalesce_max_batch = 1;
  }
  if (router.options_.coalesce_max_batch > kMaxPointBatchEntries) {
    router.options_.coalesce_max_batch =
        static_cast<uint32_t>(kMaxPointBatchEntries);
  }
  router.slots_.reserve(router.manifest_.servers.size());
  router.batchers_.reserve(router.manifest_.servers.size());
  Deadline handshake_deadline = router.EffectiveDeadline(Deadline());
  for (size_t i = 0; i < router.manifest_.servers.size(); ++i) {
    const FleetEntry& entry = router.manifest_.servers[i];
    auto channel = factory(entry.address);
    if (!channel.ok()) {
      return Status::IOError("fleet server " + entry.address +
                             " is unreachable: " +
                             channel.status().ToString());
    }
    auto slot = std::make_unique<ServerSlot>();
    // slot->channel is guarded by slot->mu. Connect used to write it bare
    // — benign only while nothing serves during construction, a latent
    // race once fleets reconnect concurrently (and a -Wthread-safety
    // error either way). Hold the lock for the install + handshake.
    std::shared_ptr<Channel> handshake_channel;
    {
      MutexLock lock(slot->mu);
      slot->channel = std::shared_ptr<Channel>(std::move(channel).value());
      handshake_channel = slot->channel;
    }
    AdsClient client(handshake_channel.get(), handshake_deadline);
    auto info = client.Info();
    if (!info.ok()) {
      return Status::IOError("fleet server " + entry.address +
                             " failed the info handshake: " +
                             info.status().ToString());
    }
    const ServerInfoMsg& reported = info.value();
    if (reported.node_begin != entry.begin ||
        reported.node_end != entry.end) {
      return Status::InvalidArgument(
          "fleet server " + entry.address + " serves [" +
          std::to_string(reported.node_begin) + ", " +
          std::to_string(reported.node_end) +
          ") but the manifest assigns [" + std::to_string(entry.begin) +
          ", " + std::to_string(entry.end) + ")");
    }
    if (i == 0) {
      router.k_ = reported.k;
      router.flavor_ = reported.flavor;
      router.rank_sup_ = reported.rank_sup;
    } else if (reported.k != router.k_ ||
               reported.flavor != router.flavor_ ||
               reported.rank_sup != router.rank_sup_) {
      return Status::InvalidArgument(
          "fleet server " + entry.address +
          " disagrees on sketch parameters (k/flavor/rank sup)");
    }
    router.total_entries_ += reported.total_entries;
    router.slots_.push_back(std::move(slot));
    router.batchers_.push_back(std::make_unique<PointBatcher>());
  }
  return router;
}

Deadline FleetRouter::EffectiveDeadline(const Deadline& deadline) const {
  if (options_.timeout_ms == 0) return deadline;
  return Deadline::Min(deadline, Deadline::AfterMs(options_.timeout_ms));
}

StatusOr<std::shared_ptr<Channel>> FleetRouter::ChannelFor(size_t idx) {
  ServerSlot& slot = *slots_[idx];
  MutexLock lock(slot.mu);
  if (!slot.channel) {
    auto created = factory_(manifest_.servers[idx].address);
    if (!created.ok()) {
      return WithMessage(created.status(),
                         "cannot reconnect to fleet server " +
                             manifest_.servers[idx].address + ": " +
                             created.status().message());
    }
    slot.channel = std::shared_ptr<Channel>(std::move(created).value());
  }
  return slot.channel;
}

void FleetRouter::InvalidateChannel(size_t idx,
                                    const std::shared_ptr<Channel>& bad) {
  ServerSlot& slot = *slots_[idx];
  MutexLock lock(slot.mu);
  if (slot.channel == bad) slot.channel.reset();
}

StatusOr<Frame> FleetRouter::CallServer(size_t idx, MessageType type,
                                        const std::string& payload,
                                        MessageType expected_response,
                                        const Deadline& deadline) {
  const std::string& address = manifest_.servers[idx].address;
  Status last = Status::Unavailable("no attempt made");
  const uint32_t attempts = options_.retries + 1;
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      Metrics().retries->Add();
      // Jittered exponential backoff, never sleeping past the deadline.
      uint64_t shift = attempt - 1;
      uint64_t backoff = shift >= 63
                             ? options_.backoff_max_ms
                             : options_.backoff_base_ms << shift;
      if (backoff > options_.backoff_max_ms) backoff = options_.backoff_max_ms;
      uint64_t h = Mix64(options_.backoff_seed ^
                         (idx * 0x100000001b3ull) ^ attempt);
      uint64_t sleep_ms = backoff / 2 + (backoff ? h % (backoff / 2 + 1) : 0);
      if (deadline.has_deadline() && deadline.RemainingMs() <= sleep_ms) {
        return Status::DeadlineExceeded(
            "fleet server " + address + ": deadline expired after " +
            std::to_string(attempt) + " attempt(s): " + last.message());
      }
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
    }
    if (deadline.Expired()) {
      return Status::DeadlineExceeded(
          "fleet server " + address + ": deadline expired after " +
          std::to_string(attempt) + " attempt(s): " + last.message());
    }
    auto channel = ChannelFor(idx);
    if (!channel.ok()) {
      CountServerError(address);
      last = channel.status();
      if (Retryable(last)) continue;
      return last;
    }
    Frame frame;
    Status s = channel.value()->Call(
        EncodeDownstreamFrame(type, payload, deadline), &frame, deadline);
    if (!s.ok()) {
      // The connection is suspect (half-written frame, dead socket):
      // drop it so the next attempt starts on a fresh one.
      InvalidateChannel(idx, channel.value());
      CountServerError(address);
      last = s;
      if (Retryable(s)) continue;
      return WithMessage(s, "fleet server " + address + ": " + s.message());
    }
    if (frame.type == MessageType::kError) {
      Status err = DecodeError(frame.payload);
      if (Retryable(err)) {  // e.g. a shed point lookup: retry after backoff
        CountServerError(address);
        last = err;
        continue;
      }
      return err;  // semantic errors pass through as the server sent them
    }
    if (frame.type != expected_response) {
      InvalidateChannel(idx, channel.value());
      CountServerError(address);
      return Status::Corruption("fleet server " + address +
                                ": unexpected response frame type");
    }
    return frame;
  }
  return WithMessage(last, "fleet server " + address + " failed after " +
                               std::to_string(attempts) +
                               " attempt(s): " + last.message());
}

StatusOr<Frame> FleetRouter::HedgeAttempt(size_t idx,
                                          const std::string& payload,
                                          const Deadline& deadline) {
  // Deliberately NOT the slot channel: the point of the hedge is to route
  // around whatever is wrong with the established connection.
  auto channel = factory_(manifest_.servers[idx].address);
  if (!channel.ok()) return channel.status();
  Frame frame;
  Status s = channel.value()->Call(
      EncodeDownstreamFrame(MessageType::kPointRequest, payload, deadline),
      &frame, deadline);
  if (!s.ok()) return s;
  if (frame.type == MessageType::kError) return DecodeError(frame.payload);
  if (frame.type != MessageType::kPointResponse) {
    return Status::Corruption("unexpected response frame type");
  }
  return frame;
}

void FleetRouter::ExecuteCoalescedBatch(
    size_t idx, const std::vector<PendingPoint*>& batch) {
  PointBatcher& batcher = *batchers_[idx];
  Metrics().coalesce_batch_fill->Record(batch.size());
  if (batch.size() == 1) {
    // No follower showed up inside the window: exactly the plain single
    // call, no batch frame on the wire.
    auto result =
        CallServer(idx, MessageType::kPointRequest, *batch[0]->payload,
                   MessageType::kPointResponse, batch[0]->deadline);
    MutexLock lock(batcher.mu);
    batch[0]->result = std::move(result);
    batch[0]->done = true;
    batcher.cv.NotifyAll();
    return;
  }
  // The batch is bounded by the tightest member deadline; a member whose
  // own budget is looser falls back to a single call if that tight bound
  // fails the whole frame.
  Deadline batch_deadline;
  std::vector<std::string> encoded;
  encoded.reserve(batch.size());
  for (const PendingPoint* p : batch) {
    batch_deadline = Deadline::Min(batch_deadline, p->deadline);
    encoded.push_back(*p->payload);
  }
  auto frame =
      CallServer(idx, MessageType::kPointBatchRequest,
                 EncodePointBatchRequestRaw(encoded),
                 MessageType::kPointBatchResponse, batch_deadline);
  StatusOr<PointBatchResponseMsg> decoded =
      frame.ok() ? DecodePointBatchResponse(frame.value().payload)
                 : frame.status();
  MutexLock lock(batcher.mu);
  if (!decoded.ok() || decoded.value().entries.size() != batch.size()) {
    // Whole-batch failure (transport, protocol, count mismatch): every
    // member re-runs its own single call — the batch was an optimization,
    // never a change to any caller's contract.
    Status failure =
        decoded.ok()
            ? Status::Corruption(
                  "batch response entry count does not match the request")
            : decoded.status();
    for (PendingPoint* p : batch) {
      p->result = failure;
      p->retry_single = true;
      p->done = true;
    }
  } else {
    for (size_t i = 0; i < batch.size(); ++i) {
      PointBatchResponseEntry& entry = decoded.value().entries[i];
      if (entry.status.ok()) {
        batch[i]->result =
            Frame{MessageType::kPointResponse, std::move(entry.payload)};
      } else {
        // A shed/retryable entry goes back through the caller's own
        // single-request retry policy; semantic errors are final and
        // byte-identical to the unbatched answer.
        batch[i]->result = entry.status;
        batch[i]->retry_single = Retryable(entry.status);
      }
      batch[i]->done = true;
    }
  }
  batcher.cv.NotifyAll();
}

StatusOr<Frame> FleetRouter::CallPointCoalesced(size_t idx,
                                                const std::string& payload,
                                                const Deadline& deadline) {
  PointBatcher& batcher = *batchers_[idx];
  const size_t batch_limit = options_.coalesce_max_batch;
  PendingPoint me;
  me.payload = &payload;
  me.deadline = deadline;
  bool leader = false;
  std::vector<PendingPoint*> batch;
  {
    MutexLock lock(batcher.mu);
    if (!batcher.leader_active) {
      batcher.leader_active = true;
      leader = true;
    }
    batcher.queue.push_back(&me);
    if (leader) {
      // Collect followers for the flush window — or until the batch is
      // full, whichever comes first.
      auto flush_at =
          Deadline::Clock::now() +
          std::chrono::microseconds(options_.coalesce_window_us);
      {
        ScopedLatencyTimer wait_timer(Metrics().coalesce_flush_wait_us);
        while (batcher.queue.size() < batch_limit) {
          if (batcher.cv.WaitUntil(batcher.mu, flush_at) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      batch = std::move(batcher.queue);
      batcher.queue.clear();
      // Release leadership at swap time: the next arrival starts a new
      // batch while this one is on the wire.
      batcher.leader_active = false;
    } else {
      if (batcher.queue.size() >= batch_limit) batcher.cv.NotifyAll();
      // Safe to wait unboundedly: the leader always distributes — its
      // batch call is bounded by the members' minimum deadline, which
      // includes ours.
      while (!me.done) batcher.cv.Wait(batcher.mu);
    }
  }
  if (leader) {
    ExecuteCoalescedBatch(idx, batch);
    MutexLock lock(batcher.mu);  // me.result was written under it
    if (!me.retry_single) return std::move(me.result);
  } else if (!me.retry_single) {
    return std::move(me.result);
  }
  // Fallback: the caller's own single-request call, full retry policy —
  // semantics identical to never having coalesced.
  return CallServer(idx, MessageType::kPointRequest, payload,
                    MessageType::kPointResponse, deadline);
}

StatusOr<Frame> FleetRouter::CallPoint(size_t idx, const std::string& payload,
                                       const Deadline& deadline) {
  if (!options_.hedge) {
    if (options_.coalesce_window_us > 0) {
      return CallPointCoalesced(idx, payload, deadline);
    }
    return CallServer(idx, MessageType::kPointRequest, payload,
                      MessageType::kPointResponse, deadline);
  }
  // Hedged: the primary call (full retry policy) races a delayed fresh-
  // connection attempt. Both compute identical bytes, so whichever
  // succeeds is THE answer; the loser is joined (its cost is bounded by
  // the deadline) and discarded.
  Mutex mu;
  CondVar cv;
  bool primary_done = false;
  StatusOr<Frame> primary_result = Status::Unavailable("pending");
  std::thread primary([&] {
    auto result = CallServer(idx, MessageType::kPointRequest, payload,
                             MessageType::kPointResponse, deadline);
    MutexLock lock(mu);
    primary_result = std::move(result);
    primary_done = true;
    cv.NotifyAll();
  });
  bool fire_hedge = false;
  {
    auto hedge_at = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.hedge_delay_ms);
    MutexLock lock(mu);
    while (!primary_done) {
      if (cv.WaitUntil(mu, hedge_at) == std::cv_status::timeout) break;
    }
    fire_hedge = !primary_done;
  }
  StatusOr<Frame> hedge_result = Status::Unavailable("hedge not fired");
  if (fire_hedge) {
    Metrics().hedge_fired->Add();
    hedge_result = HedgeAttempt(idx, payload, deadline);
  }
  primary.join();
  if (hedge_result.ok()) {
    Metrics().hedge_won->Add();
    return hedge_result;
  }
  if (primary_result.ok()) return primary_result;
  return primary_result;  // primary error: it carries the server's address
}

StatusOr<size_t> FleetRouter::OwnerOf(uint64_t v) const {
  if (v < node_begin() || v >= manifest_.num_nodes) {
    return Status::NotFound("node " + std::to_string(v) +
                            " outside the served range [" +
                            std::to_string(node_begin()) + ", " +
                            std::to_string(manifest_.num_nodes) + ")");
  }
  // Ranges are sorted and tile [0, N): binary search by begin.
  size_t lo = 0, hi = manifest_.servers.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (manifest_.servers[mid].begin <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<std::vector<AdsEntry>> FleetRouter::FetchSketch(
    uint64_t node, const Deadline& deadline) {
  auto owner = OwnerOf(node);
  if (!owner.ok()) return owner.status();
  PointRequestMsg fetch;
  fetch.kind = PointKind::kFetchSketch;
  fetch.node = node;
  auto frame = CallPoint(owner.value(), EncodePointRequest(fetch), deadline);
  if (!frame.ok()) return frame.status();
  auto response = DecodePointResponse(frame.value().payload);
  if (!response.ok()) return response.status();
  return std::move(response).value().entries;
}

StatusOr<PointResponseMsg> FleetRouter::Point(const PointRequestMsg& request,
                                              const Deadline& deadline_in) {
  Deadline deadline = EffectiveDeadline(deadline_in);
  auto owner = OwnerOf(request.node);
  if (!owner.ok()) return owner.status();
  if (request.kind == PointKind::kJaccard) {
    auto other_owner = OwnerOf(request.other);
    if (!other_owner.ok()) return other_owner.status();
    if (other_owner.value() != owner.value()) {
      // The pair spans two servers: fetch both raw sketches and run the
      // same similarity estimator the servers run, router-side. Same
      // inputs, same function — same result to the last bit.
      auto u = FetchSketch(request.node, deadline);
      if (!u.ok()) return u.status();
      auto v = FetchSketch(request.other, deadline);
      if (!v.ok()) return v.status();
      AdsView u_view{std::span<const AdsEntry>(u.value())};
      AdsView v_view{std::span<const AdsEntry>(v.value())};
      PointResponseMsg response;
      response.values = {
          JaccardSimilarity(u_view, v_view, request.d, k_, rank_sup_),
          UnionCardinality(u_view, v_view, request.d, k_, rank_sup_)};
      return response;
    }
  }
  auto frame =
      CallPoint(owner.value(), EncodePointRequest(request), deadline);
  if (!frame.ok()) return frame.status();
  return DecodePointResponse(frame.value().payload);
}

std::vector<PointBatchResponseEntry> FleetRouter::PointBatch(
    const std::vector<PointRequestMsg>& requests,
    const Deadline& deadline_in) {
  Deadline deadline = EffectiveDeadline(deadline_in);
  std::vector<PointBatchResponseEntry> entries(requests.size());
  // Any entry the batched wire path cannot answer identically goes
  // through the single-request Point path — which is also the fallback
  // whenever a batched answer comes back retryable, so every entry's
  // bytes equal a lone Point call's.
  auto fill_single = [&](size_t i) {
    auto response = Point(requests[i], deadline_in);
    if (response.ok()) {
      entries[i].payload = EncodePointResponse(response.value());
    } else {
      entries[i].status = response.status();
    }
  };
  std::vector<std::vector<size_t>> groups(slots_.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const PointRequestMsg& request = requests[i];
    auto owner = OwnerOf(request.node);
    if (!owner.ok()) {
      entries[i].status = owner.status();
      continue;
    }
    if (request.kind == PointKind::kJaccard) {
      auto other_owner = OwnerOf(request.other);
      if (!other_owner.ok()) {
        entries[i].status = other_owner.status();
        continue;
      }
      if (other_owner.value() != owner.value()) {
        fill_single(i);  // cross-server pair: router-side similarity
        continue;
      }
    }
    groups[owner.value()].push_back(i);
  }
  for (size_t s = 0; s < groups.size(); ++s) {
    const std::vector<size_t>& group = groups[s];
    for (size_t begin = 0; begin < group.size();
         begin += kMaxPointBatchEntries) {
      size_t count = std::min(kMaxPointBatchEntries, group.size() - begin);
      std::vector<std::string> encoded;
      encoded.reserve(count);
      for (size_t j = 0; j < count; ++j) {
        encoded.push_back(EncodePointRequest(requests[group[begin + j]]));
      }
      auto frame = CallServer(s, MessageType::kPointBatchRequest,
                              EncodePointBatchRequestRaw(encoded),
                              MessageType::kPointBatchResponse, deadline);
      StatusOr<PointBatchResponseMsg> decoded =
          frame.ok() ? DecodePointBatchResponse(frame.value().payload)
                     : frame.status();
      if (!decoded.ok() || decoded.value().entries.size() != count) {
        for (size_t j = 0; j < count; ++j) fill_single(group[begin + j]);
        continue;
      }
      for (size_t j = 0; j < count; ++j) {
        PointBatchResponseEntry& entry = decoded.value().entries[j];
        size_t i = group[begin + j];
        if (entry.status.ok()) {
          entries[i].payload = std::move(entry.payload);
        } else if (Retryable(entry.status)) {
          fill_single(i);
        } else {
          entries[i].status = entry.status;
        }
      }
    }
  }
  return entries;
}

Status FleetRouter::ExecuteSweep(
    const SweepRequestMsg& request,
    const std::vector<SweepCollector*>& collectors,
    const Deadline& deadline_in) {
  Deadline deadline = EffectiveDeadline(deadline_in);
  size_t n = slots_.size();
  Metrics().scatter_fanout->Add(n);
  std::vector<Status> statuses(n, Status::Ok());
  std::vector<SweepResponseMsg> responses(n);
  const std::string payload = EncodeSweepRequest(request);
  // Scatter: every range server sweeps concurrently, each call carrying
  // the remaining deadline budget and the full retry policy. Results land
  // in per-server slots; nothing depends on completion order.
  std::vector<std::thread> calls;
  calls.reserve(n);
  // Scatter threads inherit the caller's trace id explicitly — the trace
  // context is thread-local, so a traced sweep's fan-out hops would
  // otherwise go out untraced.
  const TraceId trace = CurrentTraceId();
  for (size_t i = 0; i < n; ++i) {
    calls.emplace_back([this, i, &payload, &deadline, &statuses, &responses,
                        trace] {
      ScopedTraceContext trace_context(trace.hi, trace.lo);
      auto frame = CallServer(i, MessageType::kSweepRequest, payload,
                              MessageType::kSweepResponse, deadline);
      if (!frame.ok()) {
        statuses[i] = frame.status();
        return;
      }
      auto decoded = DecodeSweepResponse(frame.value().payload);
      if (!decoded.ok()) {
        statuses[i] = decoded.status();
      } else {
        responses[i] = std::move(decoded).value();
      }
    });
  }
  for (std::thread& t : calls) t.join();

  // Gather: absorb in node order — the fleet-level replay of the sweep
  // executor's sequential node-order Reduce.
  for (SweepCollector* c : collectors) c->Begin(manifest_.num_nodes);
  for (size_t i = 0; i < n; ++i) {
    const FleetEntry& entry = manifest_.servers[i];
    if (!statuses[i].ok()) {
      return WithMessage(statuses[i],
                         "sweep failed on fleet server " + entry.address +
                             ": " + statuses[i].ToString());
    }
    if (responses[i].begin != entry.begin || responses[i].end != entry.end) {
      return Status::Corruption("fleet server " + entry.address +
                                " answered for the wrong node range");
    }
    Status s = AbsorbSweepResponse(responses[i], collectors);
    if (!s.ok()) {
      return Status::Corruption("bad partial from fleet server " +
                                entry.address + ": " + s.ToString());
    }
  }
  return Status::Ok();
}

StatusOr<StatsResponseMsg> FleetRouter::Stats(uint32_t flags,
                                              const Deadline& deadline_in) {
  Deadline deadline = EffectiveDeadline(deadline_in);
  StatsResponseMsg result;
  StatsSnapshotMsg own;
  own.label = "router";
  own.metrics = MetricsRegistry::Get().Snapshot();
  result.snapshots.push_back(std::move(own));
  if ((flags & kStatsFlagTraceSpans) != 0) {
    for (TraceSpan& span : TraceBuffer::Get().Snapshot()) {
      TraceSpanMsg out;
      out.label = "router";
      out.name = std::move(span.name);
      out.trace_hi = span.trace_hi;
      out.trace_lo = span.trace_lo;
      out.start_us = span.start_us;
      out.dur_us = span.dur_us;
      result.spans.push_back(std::move(out));
    }
  }
  const std::string payload = EncodeStatsRequest(StatsRequestMsg{flags});
  for (size_t i = 0; i < slots_.size(); ++i) {
    const std::string& address = manifest_.servers[i].address;
    auto frame = CallServer(i, MessageType::kStatsRequest, payload,
                            MessageType::kStatsResponse, deadline);
    if (!frame.ok()) return frame.status();
    auto decoded = DecodeStatsResponse(frame.value().payload);
    if (!decoded.ok()) {
      return Status::Corruption("bad stats response from fleet server " +
                                address + ": " +
                                decoded.status().ToString());
    }
    // A plain server answers one "server" snapshot: relabel it with the
    // address it came from. A nested router answers several; keep its
    // labels as a suffix so a stacked tree's scrape stays unambiguous.
    for (StatsSnapshotMsg& snap : decoded.value().snapshots) {
      snap.label = snap.label == "server" ? address
                                          : address + "/" + snap.label;
      result.snapshots.push_back(std::move(snap));
    }
    for (TraceSpanMsg& span : decoded.value().spans) {
      span.label = span.label == "server" ? address
                                          : address + "/" + span.label;
      result.spans.push_back(std::move(span));
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// RouterCore
// ---------------------------------------------------------------------------

std::string RouterCore::HandleFrame(std::string_view request,
                                    bool* close_connection) {
  *close_connection = false;
  auto frame = DecodeFrame(request);
  if (!frame.ok()) {
    *close_connection = true;
    return EncodeFrame(MessageType::kError, EncodeError(frame.status()));
  }
  // Respond in the request's wire version; re-anchor its deadline budget.
  // A v4 frame's trace id is installed for the handling thread (every
  // downstream hop then propagates it) and echoed on the response.
  const uint32_t version = frame.value().version;
  const uint64_t trace_hi = frame.value().trace_hi;
  const uint64_t trace_lo = frame.value().trace_lo;
  ScopedTraceContext trace_context(trace_hi, trace_lo);
  Deadline deadline = Deadline::FromWireMs(frame.value().deadline_ms);
  StatusOr<Frame> response = [&] {
    ScopedTraceSpan span("router.dispatch");
    return Dispatch(frame.value(), deadline);
  }();
  if (!response.ok()) {
    return EncodeFrame(MessageType::kError, EncodeError(response.status()),
                       /*deadline_ms=*/0, version, trace_hi, trace_lo);
  }
  return EncodeFrame(response.value().type, response.value().payload,
                     /*deadline_ms=*/0, version, trace_hi, trace_lo);
}

StatusOr<Frame> RouterCore::Dispatch(const Frame& request,
                                     const Deadline& deadline) {
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("request deadline expired; shed");
  }
  switch (request.type) {
    case MessageType::kInfoRequest: {
      if (!request.payload.empty()) {
        return Status::Corruption("info request carries a payload");
      }
      ServerInfoMsg info;
      info.node_begin = router_->node_begin();
      info.node_end = router_->num_nodes();
      info.total_entries = router_->total_entries();
      info.k = router_->k();
      info.flavor = router_->flavor();
      info.rank_sup = router_->rank_sup();
      return Frame{MessageType::kInfoResponse, EncodeServerInfo(info)};
    }
    case MessageType::kPointRequest: {
      auto msg = DecodePointRequest(request.payload);
      if (!msg.ok()) return msg.status();
      auto response = router_->Point(msg.value(), deadline);
      if (!response.ok()) return response.status();
      return Frame{MessageType::kPointResponse,
                   EncodePointResponse(response.value())};
    }
    case MessageType::kPointBatchRequest: {
      auto msg = DecodePointBatchRequest(request.payload);
      if (!msg.ok()) return msg.status();
      PointBatchResponseMsg response;
      response.entries = router_->PointBatch(msg.value().entries, deadline);
      return Frame{MessageType::kPointBatchResponse,
                   EncodePointBatchResponse(response)};
    }
    case MessageType::kSweepRequest: {
      auto msg = DecodeSweepRequest(request.payload);
      if (!msg.ok()) return msg.status();
      SweepPlan plan;
      auto collectors = BuildPlanFromSpec(msg.value().collectors, &plan);
      if (!collectors.ok()) return collectors.status();
      Status swept =
          router_->ExecuteSweep(msg.value(), collectors.value(), deadline);
      if (!swept.ok()) return swept;
      SweepResponseMsg response;
      response.begin = router_->node_begin();
      response.end = router_->num_nodes();
      response.partials.resize(collectors.value().size());
      for (size_t i = 0; i < collectors.value().size(); ++i) {
        // Router collectors are globally indexed but only cover this
        // fleet's range: slice exactly [node_begin, N) so the next tier's
        // gather absorbs it at the same global offsets.
        Status s = collectors.value()[i]->EncodePartial(
            static_cast<NodeId>(router_->node_begin()),
            static_cast<NodeId>(router_->num_nodes()),
            &response.partials[i]);
        if (!s.ok()) return s;
      }
      return Frame{MessageType::kSweepResponse,
                   EncodeSweepResponse(response)};
    }
    case MessageType::kStatsRequest: {
      auto msg = DecodeStatsRequest(request.payload);
      if (!msg.ok()) return msg.status();
      auto stats = router_->Stats(msg.value().flags, deadline);
      if (!stats.ok()) return stats.status();
      return Frame{MessageType::kStatsResponse,
                   EncodeStatsResponse(stats.value())};
    }
    default:
      return Status::InvalidArgument("frame type is not a request");
  }
}

}  // namespace hipads
