#include "serve/router.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "ads/similarity.h"

namespace hipads {

// ---------------------------------------------------------------------------
// Fleet manifest
// ---------------------------------------------------------------------------

std::string SerializeFleetManifest(const FleetManifest& manifest) {
  std::ostringstream os;
  os << kFleetManifestMagic << '\n';
  os << "nodes " << manifest.num_nodes << '\n';
  for (const FleetEntry& e : manifest.servers) {
    os << "server " << e.begin << ' ' << e.end << ' ' << e.address << '\n';
  }
  return os.str();
}

StatusOr<FleetManifest> ParseFleetManifest(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kFleetManifestMagic) {
    return Status::Corruption("missing hipads-fleet-v1 manifest header");
  }
  FleetManifest manifest;
  bool saw_nodes = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "nodes") {
      if (saw_nodes) {
        return Status::Corruption("duplicate nodes line in fleet manifest");
      }
      if (!(fields >> manifest.num_nodes)) {
        return Status::Corruption("bad nodes line in fleet manifest");
      }
      saw_nodes = true;
    } else if (keyword == "server") {
      FleetEntry e;
      if (!(fields >> e.begin >> e.end >> e.address)) {
        return Status::Corruption("bad server line in fleet manifest: " +
                                  line);
      }
      std::string extra;
      if (fields >> extra) {
        return Status::Corruption("trailing fields on server line: " + line);
      }
      manifest.servers.push_back(std::move(e));
    } else {
      return Status::Corruption("unknown fleet manifest line: " + line);
    }
  }
  if (!saw_nodes) {
    return Status::Corruption("fleet manifest missing nodes line");
  }
  Status s = ValidateFleetManifest(manifest);
  if (!s.ok()) return s;
  return manifest;
}

StatusOr<FleetManifest> ReadFleetManifestFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open fleet manifest " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseFleetManifest(buffer.str());
}

Status ValidateFleetManifest(const FleetManifest& manifest) {
  if (manifest.servers.empty()) {
    return Status::InvalidArgument("fleet manifest lists no servers");
  }
  // A root fleet starts at 0; a sub-fleet (an inner tier of a stacked
  // router tree) may start at any B — either way the ranges must be
  // sorted, non-empty, contiguous, and end exactly at `nodes`.
  NodeId expected = manifest.servers.front().begin;
  for (const FleetEntry& e : manifest.servers) {
    if (e.begin != expected || e.end <= e.begin) {
      return Status::InvalidArgument(
          "fleet ranges must be sorted, non-empty and contiguous: "
          "server " + e.address + " covers [" + std::to_string(e.begin) +
          ", " + std::to_string(e.end) + ") but [" +
          std::to_string(expected) + ", ...) was expected");
    }
    expected = e.end;
  }
  if (expected != manifest.num_nodes) {
    return Status::InvalidArgument(
        "fleet ranges end at " + std::to_string(expected) +
        " but the manifest declares " + std::to_string(manifest.num_nodes) +
        " nodes");
  }
  return Status::Ok();
}

ChannelFactory TcpChannelFactory() {
  return [](const std::string& address)
             -> StatusOr<std::unique_ptr<Channel>> {
    auto channel = TcpChannel::ConnectAddress(address);
    if (!channel.ok()) return channel.status();
    return std::unique_ptr<Channel>(std::move(channel).value());
  };
}

// ---------------------------------------------------------------------------
// FleetRouter
// ---------------------------------------------------------------------------

StatusOr<FleetRouter> FleetRouter::Connect(FleetManifest manifest,
                                           const ChannelFactory& factory) {
  Status s = ValidateFleetManifest(manifest);
  if (!s.ok()) return s;
  FleetRouter router;
  router.manifest_ = std::move(manifest);
  router.channels_.reserve(router.manifest_.servers.size());
  for (size_t i = 0; i < router.manifest_.servers.size(); ++i) {
    const FleetEntry& entry = router.manifest_.servers[i];
    auto channel = factory(entry.address);
    if (!channel.ok()) {
      return Status::IOError("fleet server " + entry.address +
                             " is unreachable: " +
                             channel.status().ToString());
    }
    AdsClient client(channel.value().get());
    auto info = client.Info();
    if (!info.ok()) {
      return Status::IOError("fleet server " + entry.address +
                             " failed the info handshake: " +
                             info.status().ToString());
    }
    const ServerInfoMsg& reported = info.value();
    if (reported.node_begin != entry.begin ||
        reported.node_end != entry.end) {
      return Status::InvalidArgument(
          "fleet server " + entry.address + " serves [" +
          std::to_string(reported.node_begin) + ", " +
          std::to_string(reported.node_end) +
          ") but the manifest assigns [" + std::to_string(entry.begin) +
          ", " + std::to_string(entry.end) + ")");
    }
    if (i == 0) {
      router.k_ = reported.k;
      router.flavor_ = reported.flavor;
      router.rank_sup_ = reported.rank_sup;
    } else if (reported.k != router.k_ ||
               reported.flavor != router.flavor_ ||
               reported.rank_sup != router.rank_sup_) {
      return Status::InvalidArgument(
          "fleet server " + entry.address +
          " disagrees on sketch parameters (k/flavor/rank sup)");
    }
    router.total_entries_ += reported.total_entries;
    router.channels_.push_back(std::move(channel).value());
  }
  return router;
}

StatusOr<size_t> FleetRouter::OwnerOf(uint64_t v) const {
  if (v < node_begin() || v >= manifest_.num_nodes) {
    return Status::NotFound("node " + std::to_string(v) +
                            " outside the served range [" +
                            std::to_string(node_begin()) + ", " +
                            std::to_string(manifest_.num_nodes) + ")");
  }
  // Ranges are sorted and tile [0, N): binary search by begin.
  size_t lo = 0, hi = manifest_.servers.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (manifest_.servers[mid].begin <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<std::vector<AdsEntry>> FleetRouter::FetchSketch(uint64_t node) {
  auto owner = OwnerOf(node);
  if (!owner.ok()) return owner.status();
  AdsClient client(channels_[owner.value()].get());
  PointRequestMsg fetch;
  fetch.kind = PointKind::kFetchSketch;
  fetch.node = node;
  auto response = client.Point(fetch);
  if (!response.ok()) return response.status();
  return std::move(response).value().entries;
}

StatusOr<PointResponseMsg> FleetRouter::Point(const PointRequestMsg& request) {
  auto owner = OwnerOf(request.node);
  if (!owner.ok()) return owner.status();
  if (request.kind == PointKind::kJaccard) {
    auto other_owner = OwnerOf(request.other);
    if (!other_owner.ok()) return other_owner.status();
    if (other_owner.value() != owner.value()) {
      // The pair spans two servers: fetch both raw sketches and run the
      // same similarity estimator the servers run, router-side. Same
      // inputs, same function — same result to the last bit.
      auto u = FetchSketch(request.node);
      if (!u.ok()) return u.status();
      auto v = FetchSketch(request.other);
      if (!v.ok()) return v.status();
      AdsView u_view{std::span<const AdsEntry>(u.value())};
      AdsView v_view{std::span<const AdsEntry>(v.value())};
      PointResponseMsg response;
      response.values = {
          JaccardSimilarity(u_view, v_view, request.d, k_, rank_sup_),
          UnionCardinality(u_view, v_view, request.d, k_, rank_sup_)};
      return response;
    }
  }
  AdsClient client(channels_[owner.value()].get());
  return client.Point(request);
}

Status FleetRouter::ExecuteSweep(
    const SweepRequestMsg& request,
    const std::vector<SweepCollector*>& collectors) {
  size_t n = channels_.size();
  std::vector<Status> statuses(n, Status::Ok());
  std::vector<SweepResponseMsg> responses(n);
  // Scatter: every range server sweeps concurrently. Results land in
  // per-server slots; nothing depends on completion order.
  std::vector<std::thread> calls;
  calls.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    calls.emplace_back([this, i, &request, &statuses, &responses] {
      AdsClient client(channels_[i].get());
      auto response = client.Sweep(request);
      if (!response.ok()) {
        statuses[i] = response.status();
      } else {
        responses[i] = std::move(response).value();
      }
    });
  }
  for (std::thread& t : calls) t.join();

  // Gather: absorb in node order — the fleet-level replay of the sweep
  // executor's sequential node-order Reduce.
  for (SweepCollector* c : collectors) c->Begin(manifest_.num_nodes);
  for (size_t i = 0; i < n; ++i) {
    const FleetEntry& entry = manifest_.servers[i];
    if (!statuses[i].ok()) {
      return Status::IOError("sweep failed on fleet server " +
                             entry.address + ": " + statuses[i].ToString());
    }
    if (responses[i].begin != entry.begin || responses[i].end != entry.end) {
      return Status::Corruption("fleet server " + entry.address +
                                " answered for the wrong node range");
    }
    Status s = AbsorbSweepResponse(responses[i], collectors);
    if (!s.ok()) {
      return Status::Corruption("bad partial from fleet server " +
                                entry.address + ": " + s.ToString());
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// RouterCore
// ---------------------------------------------------------------------------

std::string RouterCore::HandleFrame(std::string_view request,
                                    bool* close_connection) {
  *close_connection = false;
  auto frame = DecodeFrame(request);
  if (!frame.ok()) {
    *close_connection = true;
    return EncodeFrame(MessageType::kError, EncodeError(frame.status()));
  }
  auto response = Dispatch(frame.value());
  if (!response.ok()) {
    return EncodeFrame(MessageType::kError, EncodeError(response.status()));
  }
  return EncodeFrame(response.value().type, response.value().payload);
}

StatusOr<Frame> RouterCore::Dispatch(const Frame& request) {
  switch (request.type) {
    case MessageType::kInfoRequest: {
      if (!request.payload.empty()) {
        return Status::Corruption("info request carries a payload");
      }
      ServerInfoMsg info;
      info.node_begin = router_->node_begin();
      info.node_end = router_->num_nodes();
      info.total_entries = router_->total_entries();
      info.k = router_->k();
      info.flavor = router_->flavor();
      info.rank_sup = router_->rank_sup();
      return Frame{MessageType::kInfoResponse, EncodeServerInfo(info)};
    }
    case MessageType::kPointRequest: {
      auto msg = DecodePointRequest(request.payload);
      if (!msg.ok()) return msg.status();
      auto response = router_->Point(msg.value());
      if (!response.ok()) return response.status();
      return Frame{MessageType::kPointResponse,
                   EncodePointResponse(response.value())};
    }
    case MessageType::kSweepRequest: {
      auto msg = DecodeSweepRequest(request.payload);
      if (!msg.ok()) return msg.status();
      // Capture stays on through the gather, so the merged state can be
      // re-encoded losslessly for this router's own client.
      SweepPlan plan;
      auto collectors = BuildPlanFromSpec(msg.value().collectors, &plan,
                                          /*capture_partials=*/true);
      if (!collectors.ok()) return collectors.status();
      Status swept = router_->ExecuteSweep(msg.value(), collectors.value());
      if (!swept.ok()) return swept;
      SweepResponseMsg response;
      response.begin = router_->node_begin();
      response.end = router_->num_nodes();
      response.partials.resize(collectors.value().size());
      for (size_t i = 0; i < collectors.value().size(); ++i) {
        // Router collectors are globally indexed but only cover this
        // fleet's range: slice exactly [node_begin, N) so the next tier's
        // gather absorbs it at the same global offsets.
        Status s = collectors.value()[i]->EncodePartial(
            static_cast<NodeId>(router_->node_begin()),
            static_cast<NodeId>(router_->num_nodes()),
            &response.partials[i]);
        if (!s.ok()) return s;
      }
      return Frame{MessageType::kSweepResponse,
                   EncodeSweepResponse(response)};
    }
    default:
      return Status::InvalidArgument("frame type is not a request");
  }
}

}  // namespace hipads
