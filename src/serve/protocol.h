// The hipads wire protocol: versioned, length-prefixed binary frames for
// serving ADS/HIP statistics across machines.
//
// The storage layer stops at the machine boundary — a ShardedAdsSet can
// hold a billion-node sketch set, but every query so far ran in-process.
// This protocol is the seam the distributed serving subsystem (server.h,
// router.h) speaks across it. It mirrors the hipads-ads-v2 on-disk
// conventions: a fixed little-endian header carrying an 8-byte magic,
// version, message type and payload length, guarded by a whole-frame
// FNV-1a checksum, so a receiver can validate structure before trusting a
// byte of the payload and reject truncated, oversized or corrupted frames
// deterministically.
//
// Two request families cross the wire:
//
//   * Point requests — node-local lookups (per-node stats, sketch-member
//     distances, Jaccard similarity, raw sketch fetch). One node in, a few
//     doubles (or one sketch) out.
//   * Sweep requests — a serialized SweepPlan: the ordered list of
//     collector specs to fuse into ONE pass over the serving backend
//     (ads/sweep.h). The response carries each collector's partial state
//     for the server's contiguous node range; a gather step absorbs the
//     partials in node order to reproduce the single-process result
//     bitwise (the SweepCollector::EncodePartial/AbsorbPartial contract).
//
// Collector specs are closed enums, not code: the wire names a collector
// kind plus scalar parameters, and BuildPlanFromSpec materializes the same
// collector objects on both sides. Statistics parameterized by arbitrary
// std::functions (ClosenessCollector's alpha/beta, custom-g QgCollector)
// are in-process-only; the wire offers named g functions instead.

#ifndef HIPADS_SERVE_PROTOCOL_H_
#define HIPADS_SERVE_PROTOCOL_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ads/ads.h"
#include "ads/sweep.h"
#include "util/metrics.h"
#include "util/status.h"

namespace hipads {

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

/// An absolute point in time a request must complete by, or "none".
/// Deadlines are carried on the wire as *remaining milliseconds* (absolute
/// clocks do not agree across machines): the sender re-anchors the
/// remaining budget at encode time, the receiver re-anchors it at frame
/// arrival. Each hop therefore inherits (budget - elapsed-so-far), which
/// is exactly the propagation a scatter/gather tree needs.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: never expires, encodes as 0 on the wire.
  Deadline() = default;

  static Deadline At(Clock::time_point at) { return Deadline(at, true); }
  static Deadline AfterMs(uint64_t ms, Clock::time_point now = Clock::now()) {
    return At(now + std::chrono::milliseconds(ms));
  }
  /// Decodes a wire value (0 = none) relative to the receiver's clock.
  static Deadline FromWireMs(uint64_t ms,
                             Clock::time_point now = Clock::now()) {
    return ms == 0 ? Deadline() : AfterMs(ms, now);
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point at() const { return at_; }

  bool Expired(Clock::time_point now = Clock::now()) const {
    return has_deadline_ && now >= at_;
  }

  /// Remaining budget in ms, clamped to >= 1 while unexpired so an
  /// in-flight request never accidentally encodes the "no deadline" 0;
  /// 0 once expired. Meaningless without a deadline (callers check).
  uint64_t RemainingMs(Clock::time_point now = Clock::now()) const {
    if (!has_deadline_) return 0;
    if (now >= at_) return 0;
    auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(at_ - now)
            .count();
    return ms < 1 ? 1 : static_cast<uint64_t>(ms);
  }

  /// The wire form: remaining ms (>= 1) with a deadline, 0 without.
  uint64_t ToWireMs(Clock::time_point now = Clock::now()) const {
    if (!has_deadline_) return 0;
    uint64_t ms = RemainingMs(now);
    return ms == 0 ? 1 : ms;  // expired still encodes a deadline
  }

  /// The earlier of two deadlines ("none" is latest possible).
  static Deadline Min(const Deadline& a, const Deadline& b) {
    if (!a.has_deadline_) return b;
    if (!b.has_deadline_) return a;
    return a.at_ <= b.at_ ? a : b;
  }

 private:
  Deadline(Clock::time_point at, bool has) : at_(at), has_deadline_(has) {}

  Clock::time_point at_{};
  bool has_deadline_ = false;
};

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Leading magic of every hipads wire frame ("hipadsr1": rpc format 1).
inline constexpr char kWireMagic[8] = {'h', 'i', 'p', 'a', 'd', 's', 'r', '1'};

/// Current wire version. Version 3 adds the point-batch frame pair
/// (kPointBatchRequest / kPointBatchResponse); its header layout is
/// identical to version 2 (32-byte prefix + 8-byte deadline extension).
/// Version 2 appended the deadline extension (remaining milliseconds,
/// 0 = none) to the version-1 header, covered by the frame checksum.
/// Version 4 appends a 16-byte trace-id extension (hi/lo words of a
/// random per-request id, 0 = untraced) after the deadline extension;
/// encoders only emit v4 when a request actually carries a trace id, so
/// untraced traffic stays byte-identical to v3. All versions are still
/// decoded — the fleet can be upgraded one process at a time — and
/// responses are encoded back in the requester's version, so older
/// clients keep getting byte-identical answers. The batch and stats
/// message types are only legal inside v3+ frames: a v1/v2 frame naming
/// them is rejected as corruption at header validation.
inline constexpr uint32_t kWireVersionTrace = 4;
inline constexpr uint32_t kWireVersion = 3;
inline constexpr uint32_t kWireVersionDeadline = 2;
inline constexpr uint32_t kWireVersionLegacy = 1;

/// Fixed byte size of the common frame header prefix on the wire.
inline constexpr size_t kFrameHeaderBytes = 32;
/// Size of the v2 deadline extension that follows the prefix.
inline constexpr size_t kFrameExtBytes = 8;
/// Size of the v4 trace-id extension that follows the deadline extension.
inline constexpr size_t kFrameTraceExtBytes = 16;
/// Largest whole header across versions (prefix + both extensions).
inline constexpr size_t kMaxFrameHeaderBytes =
    kFrameHeaderBytes + kFrameExtBytes + kFrameTraceExtBytes;

/// Whole header size (prefix + extensions) of a supported wire version.
size_t FrameHeaderBytesForVersion(uint32_t version);

/// Hard cap on a frame's payload. A length-prefixed protocol must bound the
/// prefix before allocating, or a corrupt/hostile 8-byte length field turns
/// into an allocation bomb; anything larger than this is rejected at header
/// validation, before any payload byte is read.
inline constexpr uint64_t kMaxFramePayload = 1ull << 30;

/// Message types. Requests and responses share the frame format; kError is
/// the response to any request that failed (payload: ErrorMsg).
enum class MessageType : uint32_t {
  kError = 0,
  kInfoRequest = 1,
  kInfoResponse = 2,
  kPointRequest = 3,
  kPointResponse = 4,
  kSweepRequest = 5,
  kSweepResponse = 6,
  // v3: N point requests in one checksummed frame, per-entry status back.
  kPointBatchRequest = 7,
  kPointBatchResponse = 8,
  // v3: scrape of the serving process's metrics registry (a router
  // answers with its own snapshot plus every range server's).
  kStatsRequest = 9,
  kStatsResponse = 10,
};

/// One decoded frame: the message type plus its raw payload bytes, the
/// wire version it arrived in (responses are encoded back in kind), the
/// deadline budget it carried (v2+; 0 = none) and its trace id (v4;
/// zero = untraced).
struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
  uint32_t version = kWireVersion;
  uint64_t deadline_ms = 0;
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
};

/// Encodes a complete frame: header (magic, version, type, payload length,
/// FNV-1a checksum over header-with-zeroed-checksum + payload), the
/// version's extensions (deadline; trace id on v4), then the payload.
/// `version` must be a supported wire version (1..4); a legacy frame
/// cannot carry a deadline and a pre-v4 frame cannot carry a trace id
/// (both silently dropped — the receiver could not honor them anyway).
std::string EncodeFrame(MessageType type, std::string_view payload,
                        uint64_t deadline_ms = 0,
                        uint32_t version = kWireVersion,
                        uint64_t trace_hi = 0, uint64_t trace_lo = 0);

/// Encodes just the frame header (prefix + extensions) for a payload
/// that will be written separately. The checksum still covers the
/// payload, so the caller must write exactly `payload` after these bytes —
/// this is the writev seam: a pipelined channel scatter-writes header and
/// payload without concatenating them into a fresh buffer first.
std::string EncodeFrameHeader(MessageType type, std::string_view payload,
                              uint64_t deadline_ms = 0,
                              uint32_t version = kWireVersion,
                              uint64_t trace_hi = 0, uint64_t trace_lo = 0);

/// Validated frame header, plus the raw header bytes the checksum needs.
struct FrameHeader {
  MessageType type = MessageType::kError;
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;
  uint32_t version = kWireVersion;
  uint64_t deadline_ms = 0;       // v2 extension; 0 on v1 frames
  uint64_t trace_hi = 0;          // v4 extension; 0 on pre-v4 frames
  uint64_t trace_lo = 0;
  size_t header_bytes = kFrameHeaderBytes;  // whole header for this version
  char raw[kMaxFrameHeaderBytes] = {};      // first header_bytes are valid
};

/// Validates the fixed 32-byte header prefix of a frame: magic, supported
/// version, known message type, payload length within kMaxFramePayload.
/// This is what a streaming receiver runs before allocating or reading
/// anything further; on success out->header_bytes says how many total
/// header bytes this frame's version carries (32 for v1, 40 for v2), and
/// the receiver feeds the bytes past the prefix to DecodeFrameHeaderExt.
Status DecodeFrameHeaderPrefix(const char* data, size_t size,
                               FrameHeader* out);

/// Consumes the extension bytes of a prefix-validated header (a no-op for
/// v1). `data`/`size` must hold exactly header_bytes - kFrameHeaderBytes
/// bytes.
Status DecodeFrameHeaderExt(const char* data, size_t size, FrameHeader* out);

/// Prefix + extension in one step, for buffers that already hold the whole
/// header.
Status DecodeFrameHeader(const char* data, size_t size, FrameHeader* out);

/// Verifies the whole-frame checksum of `payload` against a validated
/// header.
Status VerifyFramePayload(const FrameHeader& header, std::string_view payload);

/// Decodes a complete frame from an in-memory buffer, which must contain
/// exactly one frame (header + payload, nothing trailing). Truncation, bad
/// magic/version/type, oversized lengths and checksum mismatches all fail
/// with Corruption.
StatusOr<Frame> DecodeFrame(std::string_view data);

// Blocking frame I/O over a connected socket / pipe fd. ReadFrame rejects
// malformed headers before reading the payload; both fail with IOError on
// EOF / socket errors. The Deadline overloads poll the fd and fail with
// DeadlineExceeded when the budget runs out mid-transfer; enforcing a
// finite deadline requires the fd to be in non-blocking mode (TcpChannel
// sets it).
Status WriteFrame(int fd, MessageType type, std::string_view payload);
StatusOr<Frame> ReadFrame(int fd);
StatusOr<Frame> ReadFrame(int fd, const Deadline& deadline);

/// ReadFrame into a caller-owned Frame, reusing out->payload's capacity
/// across calls — the receive-buffer reuse a pipelined channel needs to
/// avoid one allocation per in-flight response.
Status ReadFrameInto(int fd, const Deadline& deadline, Frame* out);

/// Vectored (writev) write of a frame split as header + payload, retrying
/// partial writes and EINTR under the deadline. `header` must have been
/// produced by EncodeFrameHeader over this exact payload.
Status WriteFrameVectored(int fd, std::string_view header,
                          std::string_view payload, const Deadline& deadline);

/// Writes all of `data` to `fd`, retrying partial writes and EINTR — the
/// one short-write loop every frame producer shares.
Status WriteAllBytes(int fd, const char* data, size_t size);
Status WriteAllBytes(int fd, const char* data, size_t size,
                     const Deadline& deadline);

// ---------------------------------------------------------------------------
// Bounds-checked payload readers/writers
// ---------------------------------------------------------------------------

/// Appends little-endian scalars / length-prefixed blobs to a payload.
class WireWriter {
 public:
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  /// Length-prefixed (u64) byte string.
  void Bytes(std::string_view data);

  std::string Take() { return std::move(out_); }
  const std::string& data() const { return out_; }

 private:
  std::string out_;
};

/// Reads WireWriter-encoded payloads; every read is bounds-checked and
/// fails with Corruption instead of walking past the buffer — payloads
/// arrive from the network and are treated as attacker-shaped.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status F64(double* v);
  /// Length-prefixed byte string; the length must fit the remaining bytes.
  Status Bytes(std::string* out);

  bool Done() const { return pos_ == data_.size(); }
  /// Fails unless the payload was consumed exactly (trailing garbage is
  /// corruption, mirroring the v1/v2 file parsers).
  Status ExpectDone() const;

 private:
  Status Raw(void* out, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// kInfoResponse: what a serving process holds. `node_begin`/`node_end` are
/// the GLOBAL node ids of the served range — a range server is launched
/// with its global offset; a router reports the whole fleet's [0, N).
struct ServerInfoMsg {
  uint64_t node_begin = 0;
  uint64_t node_end = 0;
  uint64_t total_entries = 0;
  uint32_t k = 0;
  uint32_t flavor = 0;  // SketchFlavor
  double rank_sup = 1.0;
};

std::string EncodeServerInfo(const ServerInfoMsg& msg);
StatusOr<ServerInfoMsg> DecodeServerInfo(std::string_view payload);

/// Point request kinds.
enum class PointKind : uint32_t {
  /// est(node): d finite -> {|N_d|}; d infinite -> {reachable, harmonic,
  /// distance sum}.
  kNodeStats = 1,
  /// Distances of `targets` inside ADS(node): one value per target, -1 when
  /// the target is not sketched.
  kLookup = 2,
  /// Jaccard similarity of N_d(node) and N_d(other): {jaccard, union
  /// cardinality}.
  kJaccard = 3,
  /// Raw sketch entries of ADS(node) (a router uses this to evaluate
  /// cross-server similarity locally).
  kFetchSketch = 4,
};

struct PointRequestMsg {
  PointKind kind = PointKind::kNodeStats;
  uint64_t node = 0;
  uint64_t other = 0;  // kJaccard only
  double d = 0.0;      // distance parameter; infinity = unbounded
  std::vector<uint64_t> targets;  // kLookup only
};

std::string EncodePointRequest(const PointRequestMsg& msg);
StatusOr<PointRequestMsg> DecodePointRequest(std::string_view payload);

struct PointResponseMsg {
  std::vector<double> values;
  std::vector<AdsEntry> entries;  // kFetchSketch only
};

std::string EncodePointResponse(const PointResponseMsg& msg);
StatusOr<PointResponseMsg> DecodePointResponse(std::string_view payload);

/// Hard cap on entries per point-batch frame. Bounded so a hostile count
/// cannot amplify into unbounded per-entry work, and small enough that the
/// byte-level fuzz loops (truncation at every offset) stay tractable.
/// Clients split larger batches across multiple frames.
inline constexpr size_t kMaxPointBatchEntries = 256;

/// kPointBatchRequest (wire v3): N point requests — mixed kinds allowed —
/// in one checksummed frame. Each entry is carried as the canonical
/// EncodePointRequest bytes, so a server can key its point-response cache
/// per entry on exactly the payload a lone kPointRequest for the same
/// lookup would have: batches warm the cache single calls read, and vice
/// versa.
struct PointBatchRequestMsg {
  std::vector<PointRequestMsg> entries;
};

std::string EncodePointBatchRequest(const PointBatchRequestMsg& msg);
/// Same frame payload built from already-encoded single-request payloads
/// (the router coalesces pre-encoded requests without a decode/re-encode
/// round trip).
std::string EncodePointBatchRequestRaw(
    const std::vector<std::string>& encoded_entries);
StatusOr<PointBatchRequestMsg> DecodePointBatchRequest(
    std::string_view payload);

/// One entry of a kPointBatchResponse, in request order. Entries carry
/// their own status so one bad node doesn't poison the batch: an Ok entry
/// holds the encoded PointResponseMsg payload (exactly the bytes a lone
/// kPointResponse would carry — a batching router hands them back to each
/// caller unmodified, which is what makes batch answers bitwise-identical
/// to single calls), a failed entry holds the status and no payload.
struct PointBatchResponseEntry {
  Status status;
  std::string payload;  // encoded PointResponseMsg; empty unless ok
};

struct PointBatchResponseMsg {
  std::vector<PointBatchResponseEntry> entries;
};

std::string EncodePointBatchResponse(const PointBatchResponseMsg& msg);
StatusOr<PointBatchResponseMsg> DecodePointBatchResponse(
    std::string_view payload);

/// kStatsRequest flag: also ship the server's buffered trace spans in
/// the response (serve/trace.h) so `hipads trace-dump` can render them.
inline constexpr uint32_t kStatsFlagTraceSpans = 1;

/// kStatsRequest (wire v3): scrape the serving process's metrics.
struct StatsRequestMsg {
  uint32_t flags = 0;  // kStatsFlag* bits
};

std::string EncodeStatsRequest(const StatsRequestMsg& msg);
StatusOr<StatsRequestMsg> DecodeStatsRequest(std::string_view payload);

/// One labeled registry snapshot inside a kStatsResponse. A range
/// server answers with a single snapshot labeled "server"; a router
/// prepends its own ("router") and relabels each gathered server
/// snapshot with that server's fleet address, so a scrape of the front
/// door sees the whole fleet's counters at once.
struct StatsSnapshotMsg {
  std::string label;
  MetricsSnapshot metrics;
};

/// One trace span inside a kStatsResponse (kStatsFlagTraceSpans), with
/// the label of the process that recorded it.
struct TraceSpanMsg {
  std::string label;
  std::string name;
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
};

struct StatsResponseMsg {
  std::vector<StatsSnapshotMsg> snapshots;
  std::vector<TraceSpanMsg> spans;
};

std::string EncodeStatsResponse(const StatsResponseMsg& msg);
StatusOr<StatsResponseMsg> DecodeStatsResponse(std::string_view payload);

/// Wire-expressible collector kinds (the serializable subset of the
/// ads/sweep.h collector library).
enum class CollectorKind : uint32_t {
  kDistanceHistogram = 1,
  kDistanceSum = 2,
  kHarmonic = 3,
  kNeighborhoodSize = 4,  // param = d
  kReachableCount = 5,
  kTopK = 6,              // count = k, aux = ScoreKind
  kDistanceQuantile = 7,  // param = q
  kQg = 8,                // aux = QgKind, param = its parameter
};

/// Per-node score functions a kTopK spec can rank by.
enum class ScoreKind : uint32_t {
  kHarmonic = 1,
  kDistanceSum = 2,
  kReachable = 3,
};

/// Named g functions for wire-side Q_g statistics (arbitrary std::function
/// g's cannot cross the wire).
enum class QgKind : uint32_t {
  kExpDecay = 1,       // g(j, d) = param^d   (0 < param < 1: decay sweep)
  kInverseSquare = 2,  // g(j, d) = 1 / (1 + d)^2
};

/// One serialized collector: kind + scalar parameters (unused fields 0).
struct CollectorSpec {
  CollectorKind kind = CollectorKind::kDistanceHistogram;
  uint32_t aux = 0;    // ScoreKind for kTopK, QgKind for kQg
  uint32_t count = 0;  // kTopK
  double param = 0.0;  // d / q / g parameter
};

struct SweepRequestMsg {
  std::vector<CollectorSpec> collectors;
  /// Threads the serving sweep should use (0 = server hardware count).
  /// Results are bitwise thread-count independent (the executor contract),
  /// so this is a resource hint, never a correctness knob.
  uint32_t num_threads = 1;
};

std::string EncodeSweepRequest(const SweepRequestMsg& msg);
StatusOr<SweepRequestMsg> DecodeSweepRequest(std::string_view payload);

/// kSweepResponse: the global node range the sweep covered plus one
/// EncodePartial blob per collector, in plan order.
struct SweepResponseMsg {
  uint64_t begin = 0;
  uint64_t end = 0;
  std::vector<std::string> partials;
};

std::string EncodeSweepResponse(const SweepResponseMsg& msg);
StatusOr<SweepResponseMsg> DecodeSweepResponse(std::string_view payload);

/// kError payload.
struct ErrorMsg {
  uint32_t code = 0;  // Status::Code
  std::string message;
};

std::string EncodeError(const Status& status);
/// Reconstructs the Status an error frame carries (Corruption if the error
/// payload itself is malformed).
Status DecodeError(std::string_view payload);

// ---------------------------------------------------------------------------
// Spec materialization
// ---------------------------------------------------------------------------

/// Builds the collector objects a spec list names into `plan` (owned by the
/// plan) and returns them in spec order. Both endpoints of a sweep RPC run
/// this on the same spec, so the serving sweep and the gathering merge use
/// identical collector configurations.
StatusOr<std::vector<SweepCollector*>> BuildPlanFromSpec(
    const std::vector<CollectorSpec>& spec, SweepPlan* plan);

/// Canonical cache key of a plan spec: the spec list's encoding with the
/// resource-hint fields (num_threads) excluded, so two requests for the
/// same statistics hit the same cached result whatever thread counts the
/// clients asked for. Immutable-backend servers key their sweep-response
/// cache on this.
std::string SweepSpecCacheKey(const std::vector<CollectorSpec>& spec);

/// Absorbs a sweep response into collectors built from the same spec
/// (helper shared by the router's gather and the remote-query client).
Status AbsorbSweepResponse(const SweepResponseMsg& response,
                           const std::vector<SweepCollector*>& collectors);

/// Name <-> enum helpers for the CLI's --centrality / --qg flags.
bool ParseScoreKind(const std::string& name, ScoreKind* out);
const char* ScoreKindName(ScoreKind kind);
bool ParseQgKind(const std::string& name, QgKind* out);

}  // namespace hipads

#endif  // HIPADS_SERVE_PROTOCOL_H_
