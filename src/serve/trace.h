// Per-request tracing for the serving stack. A request frame may carry
// a 16-byte trace id (wire version 4, serve/protocol.h); while a
// traced request is being handled, the handler installs the id in a
// thread-local context and the instrumented sections on its path
// (dispatch, backend fetch, estimator, encode) each append one span —
// (trace id, section name, start, duration) — to a bounded in-process
// ring buffer. Untraced requests (the id is zero, the default) skip
// every clock read, and spans never influence response bytes; the
// buffer is drained over the wire by a kStatsRequest with the
// trace-span flag and rendered as Chrome trace-event JSON by
// `hipads trace-dump`.
//
// Clock use makes this serve-layer-only machinery (hipads-lint HL001
// keeps it out of the deterministic trees). Span timestamps are
// steady-clock microseconds since process start — meaningful for
// ordering and duration within one process, not across machines.

#ifndef HIPADS_SERVE_TRACE_H_
#define HIPADS_SERVE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace hipads {

/// One timed section of one traced request.
struct TraceSpan {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  std::string name;       // instrumented section, e.g. "server.estimator"
  uint64_t start_us = 0;  // steady-clock micros since process start
  uint64_t dur_us = 0;
};

/// Steady-clock microseconds since the first call in this process.
uint64_t TraceNowMicros();

/// Bounded in-memory span ring. Recording takes a mutex — acceptable
/// because only TRACED requests record, and tracing is opt-in per
/// request; the untraced hot path never gets here.
class TraceBuffer {
 public:
  static constexpr size_t kCapacity = 4096;

  static TraceBuffer& Get();

  void Record(TraceSpan span);
  /// The buffered spans, oldest first.
  std::vector<TraceSpan> Snapshot() const;
  void Clear();
  /// Spans overwritten because the ring was full (lifetime count).
  uint64_t dropped() const;

 private:
  TraceBuffer() = default;

  mutable Mutex mu_;
  std::vector<TraceSpan> ring_ HIPADS_GUARDED_BY(mu_);
  size_t next_ HIPADS_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ HIPADS_GUARDED_BY(mu_) = 0;
};

/// The trace id of the request the current thread is handling (zero =
/// untraced).
struct TraceId {
  uint64_t hi = 0;
  uint64_t lo = 0;
  bool active() const { return (hi | lo) != 0; }
};
TraceId CurrentTraceId();

/// Installs a request's trace id for the current thread, restoring the
/// previous id on destruction (nested handlers — a router forwarding
/// to a loopback server on the same thread — stack correctly).
class ScopedTraceContext {
 public:
  ScopedTraceContext(uint64_t hi, uint64_t lo);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceId prev_;
};

/// Times a section and records it against the current thread's trace
/// id. When no trace is active, construction is one thread-local read
/// and no clock is touched.
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(const char* name);
  ~ScopedTraceSpan();
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  const char* name_;
  TraceId id_;         // captured at entry; inactive = record nothing
  uint64_t start_us_ = 0;
};

}  // namespace hipads

#endif  // HIPADS_SERVE_TRACE_H_
