#include "serve/trace.h"

#include <chrono>
#include <utility>

namespace hipads {

namespace {
thread_local TraceId t_current_trace;
}  // namespace

uint64_t TraceNowMicros() {
  static const std::chrono::steady_clock::time_point process_start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - process_start)
          .count());
}

TraceBuffer& TraceBuffer::Get() {
  static TraceBuffer* buffer = new TraceBuffer();  // leaked: outlive statics
  return *buffer;
}

void TraceBuffer::Record(TraceSpan span) {
  MutexLock lock(mu_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_ % kCapacity] = std::move(span);
    ++dropped_;
  }
  next_ = (next_ + 1) % kCapacity;
}

std::vector<TraceSpan> TraceBuffer::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  // Oldest first: once the ring has wrapped, next_ points at the oldest
  // surviving span.
  if (ring_.size() < kCapacity) {
    out.assign(ring_.begin(), ring_.end());
  } else {
    for (size_t i = 0; i < kCapacity; ++i) {
      out.push_back(ring_[(next_ + i) % kCapacity]);
    }
  }
  return out;
}

void TraceBuffer::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

uint64_t TraceBuffer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

TraceId CurrentTraceId() { return t_current_trace; }

ScopedTraceContext::ScopedTraceContext(uint64_t hi, uint64_t lo)
    : prev_(t_current_trace) {
  t_current_trace = TraceId{hi, lo};
}

ScopedTraceContext::~ScopedTraceContext() { t_current_trace = prev_; }

ScopedTraceSpan::ScopedTraceSpan(const char* name)
    : name_(name), id_(t_current_trace) {
  if (id_.active()) start_us_ = TraceNowMicros();
}

ScopedTraceSpan::~ScopedTraceSpan() {
  if (!id_.active()) return;
  TraceSpan span;
  span.trace_hi = id_.hi;
  span.trace_lo = id_.lo;
  span.name = name_;
  span.start_us = start_us_;
  span.dur_us = TraceNowMicros() - start_us_;
  TraceBuffer::Get().Record(std::move(span));
}

}  // namespace hipads
