// Client side of the hipads wire protocol.
//
//   Channel          one request frame -> one response frame. Two
//                    transports: TcpChannel (a real socket) and
//                    LoopbackChannel (direct in-process dispatch into a
//                    FrameHandler — the deterministic transport the router
//                    tests and benchmarks run the full scatter/gather path
//                    on, no sockets involved).
//   AdsClient        typed calls over a Channel (info / point / sweep),
//                    decoding kError frames back into Status.
//   ExecuteRemoteSweep  runs a sweep spec on a remote endpoint covering the
//                    whole node space and absorbs the result into local
//                    collectors built from the same spec — the CLI's
//                    `query`/`stats --remote` engine.

#ifndef HIPADS_SERVE_CLIENT_H_
#define HIPADS_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/status.h"

namespace hipads {

/// A connection to one serving process: sends a request frame, returns the
/// decoded (and checksum-verified) response frame — decoding happens once,
/// in the transport, so big sweep partials are never re-copied or
/// re-hashed on the client side. Call is safe from multiple threads
/// (requests are serialized per channel, keeping request/response pairing
/// intact).
class Channel {
 public:
  virtual ~Channel();
  virtual Status Call(std::string_view request_frame, Frame* response) = 0;
};

/// In-process transport: dispatches straight into a FrameHandler (an
/// AdsServerCore or RouterCore). Bit-for-bit the same protocol path as
/// TCP — frames are fully encoded, checksummed and re-decoded — minus the
/// socket, so ctest/tsan runs of the whole distributed pipeline are
/// deterministic.
class LoopbackChannel : public Channel {
 public:
  explicit LoopbackChannel(FrameHandler* handler) : handler_(handler) {}

  Status Call(std::string_view request_frame, Frame* response) override;

 private:
  FrameHandler* handler_;
};

/// TCP transport. Connect resolves "host:port" style addresses (numeric or
/// named hosts).
class TcpChannel : public Channel {
 public:
  ~TcpChannel() override;
  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  static StatusOr<std::unique_ptr<TcpChannel>> Connect(
      const std::string& host, uint16_t port);
  /// Connects to an "host:port" address string.
  static StatusOr<std::unique_ptr<TcpChannel>> ConnectAddress(
      const std::string& address);

  Status Call(std::string_view request_frame, Frame* response) override;

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}

  int fd_;
  std::mutex mu_;  // serializes write+read pairs on the shared socket
};

/// Splits "host:port"; fails on missing / non-numeric / out-of-range port.
Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port);

/// Typed request helpers over a borrowed Channel. An error frame from the
/// peer comes back as its decoded Status.
class AdsClient {
 public:
  explicit AdsClient(Channel* channel) : channel_(channel) {}

  StatusOr<ServerInfoMsg> Info();
  StatusOr<PointResponseMsg> Point(const PointRequestMsg& request);
  StatusOr<SweepResponseMsg> Sweep(const SweepRequestMsg& request);

 private:
  StatusOr<Frame> Call(MessageType type, std::string payload,
                       MessageType expected_response);

  Channel* channel_;
};

/// Executes `request` on the endpoint behind `channel` — which must serve
/// the full node range [0, total_nodes): a whole-set server or a fleet
/// router — and absorbs the returned partials into `collectors`, which the
/// caller built from the same spec (BuildPlanFromSpec) and whose Begin
/// this function calls. On any failure the collectors are left partially
/// filled and must be discarded, never read.
Status ExecuteRemoteSweep(Channel& channel, const SweepRequestMsg& request,
                          uint64_t total_nodes,
                          const std::vector<SweepCollector*>& collectors);

}  // namespace hipads

#endif  // HIPADS_SERVE_CLIENT_H_
