// Client side of the hipads wire protocol.
//
//   Channel          one request frame -> one response frame. Two
//                    transports: TcpChannel (a real socket) and
//                    LoopbackChannel (direct in-process dispatch into a
//                    FrameHandler — the deterministic transport the router
//                    tests and benchmarks run the full scatter/gather path
//                    on, no sockets involved).
//   AdsClient        typed calls over a Channel (info / point / sweep),
//                    decoding kError frames back into Status.
//   ExecuteRemoteSweep  runs a sweep spec on a remote endpoint covering the
//                    whole node space and absorbs the result into local
//                    collectors built from the same spec — the CLI's
//                    `query`/`stats --remote` engine.

#ifndef HIPADS_SERVE_CLIENT_H_
#define HIPADS_SERVE_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"

namespace hipads {

/// A connection to one serving process: sends a request frame, returns the
/// decoded (and checksum-verified) response frame — decoding happens once,
/// in the transport, so big sweep partials are never re-copied or
/// re-hashed on the client side. Call is safe from multiple threads
/// (requests are serialized per channel, keeping request/response pairing
/// intact). `deadline` bounds the whole exchange; transports that can
/// block (TCP) poll against it and fail with DeadlineExceeded instead of
/// hanging on a stalled peer.
class Channel {
 public:
  virtual ~Channel();
  virtual Status Call(std::string_view request_frame, Frame* response,
                      const Deadline& deadline) = 0;

  /// Deadline-free convenience (blocks as long as the transport does).
  Status Call(std::string_view request_frame, Frame* response) {
    return Call(request_frame, response, Deadline());
  }
};

/// In-process transport: dispatches straight into a FrameHandler (an
/// AdsServerCore or RouterCore). Bit-for-bit the same protocol path as
/// TCP — frames are fully encoded, checksummed and re-decoded — minus the
/// socket, so ctest/tsan runs of the whole distributed pipeline are
/// deterministic.
class LoopbackChannel : public Channel {
 public:
  explicit LoopbackChannel(FrameHandler* handler) : handler_(handler) {}

  using Channel::Call;
  Status Call(std::string_view request_frame, Frame* response,
              const Deadline& deadline) override;

 private:
  FrameHandler* handler_;
};

/// Socket-level robustness knobs of a TcpChannel.
struct TcpChannelOptions {
  /// Bound on connection establishment (DNS excluded). 0 = block forever.
  uint64_t connect_timeout_ms = 5000;
  /// Per-call I/O bound applied even when the request carries no
  /// deadline; the effective deadline of a call is the earlier of the two.
  /// 0 = none.
  uint64_t io_timeout_ms = 0;
  /// TCP_NODELAY on the connecting socket. Requests are single complete
  /// frames, so Nagle buys nothing and costs a delayed-ACK stall on the
  /// frame's last short segment; defaults on, toggleable so latency tests
  /// can pin either behavior.
  bool nodelay = true;
  /// Pipelined mode: Call still blocks its caller, but concurrent callers
  /// keep multiple frames in flight on the one socket instead of queueing
  /// for an exclusive write+read pair. Writes take a ticket and go out in
  /// ticket order (one vectored writev each); responses are read in the
  /// same order (the server answers a connection's frames in arrival
  /// order) into a connection-owned reused buffer. Any mid-call failure —
  /// I/O error, or a deadline expiring after the request was already on
  /// the wire — breaks the pairing permanently, so the channel is marked
  /// broken and every later call fails with IOError (a router treats that
  /// as reconnect-and-retry).
  bool pipeline = false;
};

/// TCP transport. Connect resolves "host:port" style addresses (numeric or
/// named hosts). The socket is kept in non-blocking mode and every
/// transfer polls, so call deadlines cut off mid-connect, mid-write and
/// mid-read — a stalled or half-dead peer costs bounded time.
class TcpChannel : public Channel {
 public:
  ~TcpChannel() override;
  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  static StatusOr<std::unique_ptr<TcpChannel>> Connect(
      const std::string& host, uint16_t port,
      const TcpChannelOptions& options = {});
  /// Connects to an "host:port" address string.
  static StatusOr<std::unique_ptr<TcpChannel>> ConnectAddress(
      const std::string& address, const TcpChannelOptions& options = {});

  using Channel::Call;
  Status Call(std::string_view request_frame, Frame* response,
              const Deadline& deadline) override;

 private:
  TcpChannel(int fd, const TcpChannelOptions& options)
      : fd_(fd), options_(options) {}

  /// The pipelined Call path (options_.pipeline == true).
  Status CallPipelined(std::string_view request_frame, Frame* response,
                       const Deadline& deadline);

  const int fd_;  // owned; immutable until the destructor closes it
  TcpChannelOptions options_;
  Mutex mu_;  // blocking mode: serializes write+read pairs on the socket

  // Pipelined mode. Writers serialize on write_mu_ just long enough to
  // claim a ticket and put their frame on the wire (write order == ticket
  // order); readers take read_mu_ and wait on read_cv_ until read_turn_
  // reaches their ticket, so responses are matched back to requests by
  // position. broken_ is sticky: once the write/read pairing is lost the
  // socket is unusable and every call fails fast.
  Mutex write_mu_;
  Mutex read_mu_;
  CondVar read_cv_;
  uint64_t next_ticket_ HIPADS_GUARDED_BY(write_mu_) = 0;
  uint64_t read_turn_ HIPADS_GUARDED_BY(read_mu_) = 0;
  Frame read_frame_ HIPADS_GUARDED_BY(read_mu_);  // reused receive buffer
  std::atomic<bool> broken_{false};
};

/// Splits "host:port"; fails on missing / non-numeric / out-of-range port.
Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port);

/// Typed request helpers over a borrowed Channel. An error frame from the
/// peer comes back as its decoded Status. When constructed with a
/// deadline, every call carries the remaining budget on the wire (so the
/// server can shed it once expired) and bounds the transport exchange;
/// an already-expired deadline fails fast without touching the network.
class AdsClient {
 public:
  explicit AdsClient(Channel* channel, Deadline deadline = Deadline())
      : channel_(channel), deadline_(deadline) {}

  StatusOr<ServerInfoMsg> Info();
  StatusOr<PointResponseMsg> Point(const PointRequestMsg& request);
  /// N point requests in as few frames as possible (wire v3 batches,
  /// split at kMaxPointBatchEntries). Returns one entry per request in
  /// request order; per-entry failures come back in the entry's status
  /// while the call itself only fails on transport/protocol errors. Ok
  /// entries hold the encoded PointResponseMsg payload — byte-identical
  /// to what a lone Point call for that request would have received.
  StatusOr<std::vector<PointBatchResponseEntry>> PointBatch(
      const std::vector<PointRequestMsg>& requests);
  StatusOr<SweepResponseMsg> Sweep(const SweepRequestMsg& request);
  /// Scrapes the endpoint's metrics registry (kStatsRequest). Pass
  /// kStatsFlagTraceSpans in `flags` to also drain its trace buffer.
  StatusOr<StatsResponseMsg> Stats(uint32_t flags = 0);

 private:
  StatusOr<Frame> Call(MessageType type, std::string payload,
                       MessageType expected_response);

  Channel* channel_;
  Deadline deadline_;
};

/// Executes `request` on the endpoint behind `channel` — which must serve
/// the full node range [0, total_nodes): a whole-set server or a fleet
/// router — and absorbs the returned partials into `collectors`, which the
/// caller built from the same spec (BuildPlanFromSpec) and whose Begin
/// this function calls. `deadline` bounds the whole exchange. On any
/// failure the collectors are left partially filled and must be
/// discarded, never read.
Status ExecuteRemoteSweep(Channel& channel, const SweepRequestMsg& request,
                          uint64_t total_nodes,
                          const std::vector<SweepCollector*>& collectors,
                          const Deadline& deadline = Deadline());

}  // namespace hipads

#endif  // HIPADS_SERVE_CLIENT_H_
