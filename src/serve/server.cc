#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ads/estimators.h"
#include "ads/similarity.h"
#include "util/parallel.h"

namespace hipads {

FrameHandler::~FrameHandler() = default;

// ---------------------------------------------------------------------------
// AdsServerCore
// ---------------------------------------------------------------------------

AdsServerCore::AdsServerCore(const AdsBackend* backend,
                             const ServerOptions& options)
    : backend_(backend), options_(options) {}

ServerInfoMsg AdsServerCore::Info() const {
  ServerInfoMsg info;
  info.node_begin = options_.node_begin;
  info.node_end = options_.node_begin + backend_->num_nodes();
  info.total_entries = backend_->TotalEntries();
  info.k = backend_->k();
  info.flavor = static_cast<uint32_t>(backend_->flavor());
  info.rank_sup = backend_->ranks().sup();
  return info;
}

std::string AdsServerCore::HandleFrame(std::string_view request,
                                       bool* close_connection) {
  *close_connection = false;
  auto frame = DecodeFrame(request);
  if (!frame.ok()) {
    // Undecodable bytes: answer with the reason, then drop the stream —
    // after a framing failure there is no trustworthy record boundary.
    *close_connection = true;
    return EncodeFrame(MessageType::kError, EncodeError(frame.status()));
  }
  auto response = Dispatch(frame.value());
  if (!response.ok()) {
    return EncodeFrame(MessageType::kError, EncodeError(response.status()));
  }
  return EncodeFrame(response.value().type, response.value().payload);
}

StatusOr<Frame> AdsServerCore::Dispatch(const Frame& request) {
  switch (request.type) {
    case MessageType::kInfoRequest:
      if (!request.payload.empty()) {
        return Status::Corruption("info request carries a payload");
      }
      return Frame{MessageType::kInfoResponse, EncodeServerInfo(Info())};
    case MessageType::kPointRequest: {
      auto msg = DecodePointRequest(request.payload);
      if (!msg.ok()) return msg.status();
      return HandlePoint(msg.value());
    }
    case MessageType::kSweepRequest: {
      auto msg = DecodeSweepRequest(request.payload);
      if (!msg.ok()) return msg.status();
      return HandleSweep(msg.value());
    }
    default:
      return Status::InvalidArgument("frame type is not a request");
  }
}

StatusOr<Frame> AdsServerCore::HandlePoint(const PointRequestMsg& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t begin = options_.node_begin;
  uint64_t end = begin + backend_->num_nodes();
  if (msg.node < begin || msg.node >= end) {
    return Status::NotFound("node " + std::to_string(msg.node) +
                            " is outside the served range");
  }
  NodeId local = static_cast<NodeId>(msg.node - begin);
  auto view = backend_->ViewOf(local);
  if (!view.ok()) return view.status();

  PointResponseMsg response;
  switch (msg.kind) {
    case PointKind::kNodeStats: {
      HipEstimator est(view.value(), backend_->k(), backend_->flavor(),
                       backend_->ranks());
      if (std::isinf(msg.d)) {
        response.values = {est.ReachableCount(), est.HarmonicCentrality(),
                           est.DistanceSum()};
      } else {
        response.values = {est.NeighborhoodCardinality(msg.d)};
      }
      break;
    }
    case PointKind::kLookup: {
      // Entry target ids are global, so lookups need no translation.
      AdsNodeIndex index(view.value());
      response.values.reserve(msg.targets.size());
      for (uint64_t target : msg.targets) {
        if (target > std::numeric_limits<NodeId>::max()) {
          response.values.push_back(-1.0);
        } else {
          response.values.push_back(
              index.DistanceOf(static_cast<NodeId>(target)));
        }
      }
      break;
    }
    case PointKind::kJaccard: {
      if (msg.other < begin || msg.other >= end) {
        return Status::NotFound(
            "similarity target " + std::to_string(msg.other) +
            " is outside the served range (route through a fleet router "
            "for cross-server pairs)");
      }
      // Fetching the second view may evict the shard backing the first
      // (bounded residency), so pin a copy of the first sketch.
      std::vector<AdsEntry> pinned(view.value().entries().begin(),
                                   view.value().entries().end());
      AdsView u_view{std::span<const AdsEntry>(pinned)};
      auto other_view =
          backend_->ViewOf(static_cast<NodeId>(msg.other - begin));
      if (!other_view.ok()) return other_view.status();
      double sup = backend_->ranks().sup();
      double jaccard = JaccardSimilarity(u_view, other_view.value(), msg.d,
                                         backend_->k(), sup);
      double uni = UnionCardinality(u_view, other_view.value(), msg.d,
                                    backend_->k(), sup);
      response.values = {jaccard, uni};
      break;
    }
    case PointKind::kFetchSketch: {
      response.entries.assign(view.value().entries().begin(),
                              view.value().entries().end());
      break;
    }
  }
  return Frame{MessageType::kPointResponse, EncodePointResponse(response)};
}

StatusOr<Frame> AdsServerCore::HandleSweep(const SweepRequestMsg& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  SweepPlan plan;
  auto collectors =
      BuildPlanFromSpec(msg.collectors, &plan, /*capture_partials=*/true);
  if (!collectors.ok()) return collectors.status();
  // The thread count is wire-controlled: clamp it to this host's hardware
  // so a hostile request cannot drive ThreadPool into spawning billions of
  // workers (results are bitwise thread-count independent, so clamping is
  // invisible to the client).
  uint32_t threads =
      msg.num_threads != 0 ? msg.num_threads : options_.num_threads;
  threads = std::min(threads, HardwareThreads());
  Status swept = RunSweep(*backend_, plan, threads);
  if (!swept.ok()) return swept;

  SweepResponseMsg response;
  response.begin = options_.node_begin;
  response.end = options_.node_begin + backend_->num_nodes();
  response.partials.resize(collectors.value().size());
  for (size_t i = 0; i < collectors.value().size(); ++i) {
    // Collectors here are locally indexed: slice their whole [0, n).
    Status s = collectors.value()[i]->EncodePartial(
        0, static_cast<NodeId>(backend_->num_nodes()),
        &response.partials[i]);
    if (!s.ok()) return s;
  }
  return Frame{MessageType::kSweepResponse, EncodeSweepResponse(response)};
}

// ---------------------------------------------------------------------------
// TcpServer
// ---------------------------------------------------------------------------

TcpServer::TcpServer(FrameHandler* handler, const TcpServerOptions& options)
    : handler_(handler), options_(options) {
  stop_pipe_[0] = stop_pipe_[1] = -1;
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (listen_fd_ >= 0) return Status::InvalidArgument("server already started");
  if (::pipe(stop_pipe_) != 0) {
    return Status::IOError("pipe failed: " + std::string(std::strerror(errno)));
  }
  auto fail = [this](const std::string& what, int fd) {
    Status s = Status::IOError(what + " failed: " +
                               std::string(std::strerror(errno)));
    if (fd >= 0) ::close(fd);
    ::close(stop_pipe_[0]);
    ::close(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    return s;
  };
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket", -1);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind", fd);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname", fd);
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, 128) != 0) {
    return fail("listen", fd);
  }
  // Non-blocking listener: workers are woken by poll, so a connection
  // grabbed by a sibling worker yields EAGAIN instead of blocking forever.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  listen_fd_ = fd;
  uint32_t workers = options_.num_workers == 0 ? 1 : options_.num_workers;
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void TcpServer::Stop() {
  if (listen_fd_ < 0) return;
  // Wake every worker out of poll; they observe the stop pipe and exit.
  char byte = 's';
  [[maybe_unused]] ssize_t ignored = ::write(stop_pipe_[1], &byte, 1);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
}

void TcpServer::WorkerLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        continue;  // a sibling worker won the race
      }
      return;
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

bool TcpServer::WaitReadable(int fd) {
  // Blocks until `fd` has data (or EOF) — or until Stop signals, so a
  // worker parked on an idle connection never wedges shutdown.
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (fds[1].revents != 0) return false;  // stop requested
    if (fds[0].revents != 0) return true;   // readable (or hup -> read 0)
  }
}

void TcpServer::ServeConnection(int fd) {
  // Frame-by-frame pump. A handler-reported framing loss or any socket
  // error ends the connection; the next client simply reconnects.
  for (;;) {
    char raw[kFrameHeaderBytes];
    size_t done = 0;
    while (done < sizeof(raw)) {
      if (!WaitReadable(fd)) return;
      ssize_t got = ::read(fd, raw + done, sizeof(raw) - done);
      if (got == 0) return;  // clean EOF between frames
      if (got < 0) {
        if (errno == EINTR) continue;
        return;
      }
      done += static_cast<size_t>(got);
    }
    FrameHeader header;
    std::string request;
    Status s = DecodeFrameHeader(raw, sizeof(raw), &header);
    if (s.ok()) {
      // Header is sane: the payload length can be trusted enough to read.
      std::string payload(header.payload_bytes, '\0');
      size_t got_total = 0;
      bool io_ok = true;
      while (got_total < payload.size()) {
        if (!WaitReadable(fd)) return;
        ssize_t got = ::read(fd, payload.data() + got_total,
                             payload.size() - got_total);
        if (got <= 0) {
          if (got < 0 && errno == EINTR) continue;
          io_ok = false;
          break;
        }
        got_total += static_cast<size_t>(got);
      }
      if (!io_ok) return;
      request.assign(raw, sizeof(raw));
      request.append(payload);
    } else {
      // Bad header: hand the raw bytes to the handler so the client gets
      // the precise rejection, then close (framing is lost).
      request.assign(raw, sizeof(raw));
    }
    bool close_connection = false;
    std::string response = handler_->HandleFrame(request, &close_connection);
    if (!WriteAllBytes(fd, response.data(), response.size()).ok()) return;
    if (close_connection) return;
  }
}

}  // namespace hipads
