#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ads/estimators.h"
#include "ads/similarity.h"
#include "serve/trace.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace hipads {

FrameHandler::~FrameHandler() = default;

namespace {

// Request kinds with dedicated request/latency instruments.
enum ServeReqKind {
  kReqInfo,
  kReqPoint,
  kReqBatch,
  kReqSweep,
  kReqStats,
  kReqOther,
  kNumReqKinds,
};

ServeReqKind ReqKindOf(MessageType type) {
  switch (type) {
    case MessageType::kInfoRequest:
      return kReqInfo;
    case MessageType::kPointRequest:
      return kReqPoint;
    case MessageType::kPointBatchRequest:
      return kReqBatch;
    case MessageType::kSweepRequest:
      return kReqSweep;
    case MessageType::kStatsRequest:
      return kReqStats;
    default:
      return kReqOther;
  }
}

// Instrument pointers resolved once: the registry lookup takes a mutex,
// so hot paths record through cached raw pointers (the registry owns the
// instruments and never frees them).
struct ServeMetrics {
  MetricCounter* requests[kNumReqKinds];
  MetricHistogram* latency_us[kNumReqKinds];
  MetricCounter* bytes_in;
  MetricCounter* bytes_out;
  MetricCounter* undecodable;
  MetricCounter* shed_deadline;
  MetricCounter* shed_busy;
  MetricCounter* hip_resident;
  MetricCounter* hip_scan;
  MetricHistogram* batch_entries;
  MetricCounter* tcp_accepted;
};

ServeMetrics& Metrics() {
  static ServeMetrics* m = [] {
    static const char* const kNames[kNumReqKinds] = {
        "info", "point", "point_batch", "sweep", "stats", "other"};
    auto* mm = new ServeMetrics();
    MetricsRegistry& reg = MetricsRegistry::Get();
    for (int i = 0; i < kNumReqKinds; ++i) {
      mm->requests[i] =
          reg.Counter(std::string("serve.requests.") + kNames[i]);
      mm->latency_us[i] =
          reg.Histogram(std::string("serve.latency_us.") + kNames[i]);
    }
    mm->bytes_in = reg.Counter("serve.bytes_in");
    mm->bytes_out = reg.Counter("serve.bytes_out");
    mm->undecodable = reg.Counter("serve.undecodable_frames");
    mm->shed_deadline = reg.Counter("serve.shed.deadline");
    mm->shed_busy = reg.Counter("serve.shed.busy");
    mm->hip_resident = reg.Counter("serve.point.hip_resident");
    mm->hip_scan = reg.Counter("serve.point.hip_scan");
    mm->batch_entries = reg.Histogram("serve.batch.entries");
    mm->tcp_accepted = reg.Counter("serve.tcp.accepted");
    return mm;
  }();
  return *m;
}

}  // namespace

// ---------------------------------------------------------------------------
// ResponseCache
// ---------------------------------------------------------------------------

bool ResponseCache::Get(const std::string& key, std::string* value) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.Add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *value = it->second->second;
  hits_.Add();
  return true;
}

void ResponseCache::Put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;  // capacity_ is const: lock-free fast path
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

// ---------------------------------------------------------------------------
// AdsServerCore
// ---------------------------------------------------------------------------

AdsServerCore::AdsServerCore(const AdsBackend* backend,
                             const ServerOptions& options)
    : backend_(backend),
      options_(options),
      lock_free_(backend->ImmutableReads()),
      point_cache_(options.point_cache_entries, "serve.cache.point"),
      sweep_cache_(options.sweep_cache_entries, "serve.cache.sweep") {}

Deadline::Clock::time_point AdsServerCore::Now() const {
  return options_.clock ? options_.clock() : Deadline::Clock::now();
}

ServerInfoMsg AdsServerCore::Info() const {
  ServerInfoMsg info;
  info.node_begin = options_.node_begin;
  info.node_end = options_.node_begin + backend_->num_nodes();
  info.total_entries = backend_->TotalEntries();
  info.k = backend_->k();
  info.flavor = static_cast<uint32_t>(backend_->flavor());
  info.rank_sup = backend_->ranks().sup();
  return info;
}

std::string AdsServerCore::HandleFrame(std::string_view request,
                                       bool* close_connection) {
  ServeMetrics& metrics = Metrics();
  metrics.bytes_in->Add(request.size());
  *close_connection = false;
  auto frame = DecodeFrame(request);
  if (!frame.ok()) {
    // Undecodable bytes: answer with the reason, then drop the stream —
    // after a framing failure there is no trustworthy record boundary.
    *close_connection = true;
    metrics.undecodable->Add();
    std::string err =
        EncodeFrame(MessageType::kError, EncodeError(frame.status()));
    metrics.bytes_out->Add(err.size());
    return err;
  }
  // Responses are encoded in the request's wire version, so a legacy (v1)
  // client talking to an upgraded server keeps decoding them. A v4 frame's
  // trace id is echoed back and installed for the handling thread, so the
  // instrumented sections below Dispatch record spans against it.
  const uint32_t version = frame.value().version;
  const uint64_t trace_hi = frame.value().trace_hi;
  const uint64_t trace_lo = frame.value().trace_lo;
  ScopedTraceContext trace_context(trace_hi, trace_lo);
  const ServeReqKind kind = ReqKindOf(frame.value().type);
  metrics.requests[kind]->Add();
  Deadline deadline = Deadline::FromWireMs(frame.value().deadline_ms, Now());
  StatusOr<Frame> response = [&] {
    ScopedLatencyTimer timer(metrics.latency_us[kind]);
    ScopedTraceSpan span("server.dispatch");
    return Dispatch(frame.value(), deadline);
  }();
  std::string encoded;
  {
    ScopedTraceSpan span("server.encode");
    encoded = response.ok()
                  ? EncodeFrame(response.value().type,
                                response.value().payload,
                                /*deadline_ms=*/0, version, trace_hi,
                                trace_lo)
                  : EncodeFrame(MessageType::kError,
                                EncodeError(response.status()),
                                /*deadline_ms=*/0, version, trace_hi,
                                trace_lo);
  }
  metrics.bytes_out->Add(encoded.size());
  return encoded;
}

StatusOr<Frame> AdsServerCore::Dispatch(const Frame& request,
                                        const Deadline& deadline) {
  if (deadline.Expired(Now())) {
    // Nobody is waiting for this answer anymore: shed before any compute.
    Metrics().shed_deadline->Add();
    return Status::DeadlineExceeded("request deadline expired; shed");
  }
  switch (request.type) {
    case MessageType::kInfoRequest:
      if (!request.payload.empty()) {
        return Status::Corruption("info request carries a payload");
      }
      return Frame{MessageType::kInfoResponse, EncodeServerInfo(Info())};
    case MessageType::kPointRequest: {
      auto msg = DecodePointRequest(request.payload);
      if (!msg.ok()) return msg.status();
      return HandlePoint(msg.value(), request.payload);
    }
    case MessageType::kPointBatchRequest: {
      auto msg = DecodePointBatchRequest(request.payload);
      if (!msg.ok()) return msg.status();
      return HandlePointBatch(msg.value());
    }
    case MessageType::kSweepRequest: {
      auto msg = DecodeSweepRequest(request.payload);
      if (!msg.ok()) return msg.status();
      return HandleSweep(msg.value(), deadline);
    }
    case MessageType::kStatsRequest: {
      auto msg = DecodeStatsRequest(request.payload);
      if (!msg.ok()) return msg.status();
      return HandleStats(msg.value());
    }
    default:
      return Status::InvalidArgument("frame type is not a request");
  }
}

StatusOr<Frame> AdsServerCore::HandleStats(const StatsRequestMsg& msg) const {
  StatsResponseMsg response;
  StatsSnapshotMsg snap;
  snap.label = "server";
  snap.metrics = MetricsRegistry::Get().Snapshot();
  response.snapshots.push_back(std::move(snap));
  if ((msg.flags & kStatsFlagTraceSpans) != 0) {
    for (TraceSpan& span : TraceBuffer::Get().Snapshot()) {
      TraceSpanMsg out;
      out.label = "server";
      out.name = std::move(span.name);
      out.trace_hi = span.trace_hi;
      out.trace_lo = span.trace_lo;
      out.start_us = span.start_us;
      out.dur_us = span.dur_us;
      response.spans.push_back(std::move(out));
    }
  }
  return Frame{MessageType::kStatsResponse, EncodeStatsResponse(response)};
}

StatusOr<Frame> AdsServerCore::HandlePoint(const PointRequestMsg& msg,
                                           const std::string& payload) {
  // The request payload is a canonical encoding of the question, so it is
  // the cache key; a hit bypasses backend and locks entirely.
  std::string cached;
  if (options_.point_cache_entries > 0 && point_cache_.Get(payload, &cached)) {
    return Frame{MessageType::kPointResponse, std::move(cached)};
  }
  StatusOr<std::string> result = [&]() -> StatusOr<std::string> {
    if (lock_free_) return ComputePoint(msg);
    if (active_sweeps_.value() > 0) {
      // A sweep owns the serialized backend for what may be minutes.
      // Queueing a microsecond lookup behind it inverts every latency
      // goal — shed instead and let the caller's retry budget absorb it.
      Metrics().shed_busy->Add();
      return Status::Unavailable(
          "backend busy with a sweep; point lookup shed, retry");
    }
    MutexLock lock(mu_);
    return ComputePoint(msg);
  }();
  if (!result.ok()) return result.status();
  if (options_.point_cache_entries > 0) {
    point_cache_.Put(payload, result.value());
  }
  return Frame{MessageType::kPointResponse, std::move(result).value()};
}

StatusOr<NodeId> AdsServerCore::LocalIdOf(uint64_t node) const {
  uint64_t begin = options_.node_begin;
  uint64_t end = begin + backend_->num_nodes();
  if (node < begin || node >= end) {
    return Status::NotFound("node " + std::to_string(node) +
                            " is outside the served range");
  }
  return static_cast<NodeId>(node - begin);
}

StatusOr<std::string> AdsServerCore::ComputePoint(
    const PointRequestMsg& msg) const {
  auto local = LocalIdOf(msg.node);
  if (!local.ok()) return local.status();
  auto view = [&] {
    ScopedTraceSpan span("server.backend_fetch");
    return backend_->ViewOf(local.value());
  }();
  if (!view.ok()) return view.status();
  // A HipOf failure is served by the scan fallback instead of erroring:
  // precomputed weights are an optimization, never an answer change.
  auto hip_or = backend_->HipOf(local.value());
  HipView hip = hip_or.ok() ? hip_or.value() : HipView{};
  std::optional<HipEstimator> est;
  return ComputePointWithView(msg, view.value(), hip, &est);
}

StatusOr<std::string> AdsServerCore::ComputePointWithView(
    const PointRequestMsg& msg, const AdsView& view, const HipView& hip,
    std::optional<HipEstimator>* est) const {
  uint64_t begin = options_.node_begin;
  uint64_t end = begin + backend_->num_nodes();
  PointResponseMsg response;
  switch (msg.kind) {
    case PointKind::kNodeStats: {
      if (!est->has_value()) {
        ScopedTraceSpan estimator_span("server.estimator");
        if (hip.present()) {
          // Storage-resident weights: materialization is a pointer wrap.
          Metrics().hip_resident->Add();
          est->emplace(view, hip.tau, hip.weight);
        } else {
          Metrics().hip_scan->Add();
          // Scan fallback into a per-thread arena — allocation-free once
          // warm. The estimator borrows the scratch, which is safe for
          // both request paths: a request's estimator never outlives the
          // dispatch call that created it, and the batch path resets the
          // cached estimator before the scratch is scanned again.
          thread_local HipScratch scratch;
          est->emplace(view, backend_->k(), backend_->flavor(),
                       backend_->ranks(), &scratch);
        }
      }
      if (std::isinf(msg.d)) {
        response.values = {(*est)->ReachableCount(),
                           (*est)->HarmonicCentrality(),
                           (*est)->DistanceSum()};
      } else {
        response.values = {(*est)->NeighborhoodCardinality(msg.d)};
      }
      break;
    }
    case PointKind::kLookup: {
      // Entry target ids are global, so lookups need no translation.
      AdsNodeIndex index(view);
      response.values.reserve(msg.targets.size());
      for (uint64_t target : msg.targets) {
        if (target > std::numeric_limits<NodeId>::max()) {
          response.values.push_back(-1.0);
        } else {
          response.values.push_back(
              index.DistanceOf(static_cast<NodeId>(target)));
        }
      }
      break;
    }
    case PointKind::kJaccard: {
      if (msg.other < begin || msg.other >= end) {
        return Status::NotFound(
            "similarity target " + std::to_string(msg.other) +
            " is outside the served range (route through a fleet router "
            "for cross-server pairs)");
      }
      // Fetching the second view may evict the shard backing the first
      // (bounded residency), so pin a copy of the first sketch.
      std::vector<AdsEntry> pinned(view.entries().begin(),
                                   view.entries().end());
      AdsView u_view{std::span<const AdsEntry>(pinned)};
      auto other_view =
          backend_->ViewOf(static_cast<NodeId>(msg.other - begin));
      if (!other_view.ok()) return other_view.status();
      double sup = backend_->ranks().sup();
      double jaccard = JaccardSimilarity(u_view, other_view.value(), msg.d,
                                         backend_->k(), sup);
      double uni = UnionCardinality(u_view, other_view.value(), msg.d,
                                    backend_->k(), sup);
      response.values = {jaccard, uni};
      break;
    }
    case PointKind::kFetchSketch: {
      response.entries.assign(view.entries().begin(), view.entries().end());
      break;
    }
  }
  return EncodePointResponse(response);
}

namespace {

// Exact request equality — the dedup guard for reusing a computed batch
// entry. `d` compares with operator== (NaN never equals, so a NaN entry is
// simply recomputed; ±0.0 compare equal and yield identical responses since
// the payload never echoes d and every distance comparison treats them
// alike).
bool SamePointRequest(const PointRequestMsg& a, const PointRequestMsg& b) {
  return a.kind == b.kind && a.node == b.node && a.other == b.other &&
         a.d == b.d && a.targets == b.targets;
}

}  // namespace

void AdsServerCore::ComputeBatchEntries(const PointBatchRequestMsg& msg,
                                        const std::vector<size_t>& order,
                                        bool share_scans,
                                        PointBatchResponseMsg* response) const {
  uint64_t current_node = 0;
  bool have_node = false;
  std::optional<AdsView> view;
  HipView hip;
  Status view_status;
  std::optional<HipEstimator> est;
  // Hot working sets repeat whole requests, not just nodes: after the
  // node-order sort, identical entries are adjacent, and responses are
  // deterministic, so the previous entry's result (payload or status) IS
  // this entry's result — one copy instead of a recomputed scan.
  size_t prev_idx = 0;
  bool have_prev = false;
  for (size_t idx : order) {
    const PointRequestMsg& entry = msg.entries[idx];
    PointBatchResponseEntry& out = response->entries[idx];
    if (share_scans && have_prev &&
        SamePointRequest(entry, msg.entries[prev_idx])) {
      out = response->entries[prev_idx];
      continue;
    }
    prev_idx = idx;
    have_prev = true;
    auto local = LocalIdOf(entry.node);
    if (!local.ok()) {
      out.status = local.status();
      continue;
    }
    if (!share_scans || !have_node || entry.node != current_node) {
      est.reset();
      view.reset();
      hip = HipView{};
      auto fetched = backend_->ViewOf(local.value());
      if (fetched.ok()) {
        view = fetched.value();
        view_status = Status::Ok();
        auto hip_or = backend_->HipOf(local.value());
        if (hip_or.ok()) hip = hip_or.value();
      } else {
        view_status = fetched.status();
      }
      current_node = entry.node;
      have_node = true;
    }
    if (!view.has_value()) {
      out.status = view_status;
      continue;
    }
    auto result = ComputePointWithView(entry, *view, hip, &est);
    if (result.ok()) {
      out.payload = std::move(result).value();
    } else {
      out.status = result.status();
    }
  }
}

StatusOr<Frame> AdsServerCore::HandlePointBatch(
    const PointBatchRequestMsg& msg) {
  const size_t n = msg.entries.size();
  Metrics().batch_entries->Record(n);
  PointBatchResponseMsg response;
  response.entries.resize(n);
  // Per-entry cache keys are the canonical single-request bytes: a batch
  // reads and fills exactly the cache lone kPointRequests use, so either
  // shape warms the other. With the cache disabled the keys are never
  // consulted, so skip the per-entry re-encode entirely.
  const bool use_cache = options_.point_cache_entries > 0;
  std::vector<std::string> keys;
  if (use_cache) keys.resize(n);
  std::vector<size_t> misses;
  misses.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (use_cache) {
      keys[i] = EncodePointRequest(msg.entries[i]);
      if (point_cache_.Get(keys[i], &response.entries[i].payload)) {
        continue;  // entry status defaults to Ok
      }
    }
    misses.push_back(i);
  }
  if (!misses.empty()) {
    if (lock_free_) {
      // One pass in node order: consecutive same-node entries share one
      // backend fetch and one estimator materialization. stable_sort keeps
      // equal-node entries in request order; results land by original
      // index either way, so the reorder is invisible on the wire.
      std::stable_sort(misses.begin(), misses.end(),
                       [&msg](size_t a, size_t b) {
                         return msg.entries[a].node < msg.entries[b].node;
                       });
      ComputeBatchEntries(msg, misses, /*share_scans=*/true, &response);
    } else if (active_sweeps_.value() > 0) {
      // Same shedding contract as single lookups, applied per entry.
      Metrics().shed_busy->Add(misses.size());
      for (size_t i : misses) {
        response.entries[i].status = Status::Unavailable(
            "backend busy with a sweep; point lookup shed, retry");
      }
    } else {
      // Serialized engine: ONE lock acquisition for the whole batch, but
      // per-entry fetches — a shared view could be evicted by a kJaccard
      // entry's second fetch under bounded shard residency.
      MutexLock lock(mu_);
      ComputeBatchEntries(msg, misses, /*share_scans=*/false, &response);
    }
    if (use_cache) {
      for (size_t i : misses) {
        if (response.entries[i].status.ok()) {
          point_cache_.Put(keys[i], response.entries[i].payload);
        }
      }
    }
  }
  return Frame{MessageType::kPointBatchResponse,
               EncodePointBatchResponse(response)};
}

StatusOr<Frame> AdsServerCore::HandleSweep(const SweepRequestMsg& msg,
                                           const Deadline& deadline) {
  // Sweep results depend only on the spec (thread counts are bitwise
  // neutral), so the canonical spec encoding keys the response cache.
  const std::string cache_key = SweepSpecCacheKey(msg.collectors);
  std::string cached;
  if (options_.sweep_cache_entries > 0 && sweep_cache_.Get(cache_key, &cached)) {
    return Frame{MessageType::kSweepResponse, std::move(cached)};
  }
  SweepPlan plan;
  auto collectors = BuildPlanFromSpec(msg.collectors, &plan);
  if (!collectors.ok()) return collectors.status();
  // The thread count is wire-controlled: clamp it to this host's hardware
  // so a hostile request cannot drive ThreadPool into spawning billions of
  // workers (results are bitwise thread-count independent, so clamping is
  // invisible to the client).
  uint32_t threads =
      msg.num_threads != 0 ? msg.num_threads : options_.num_threads;
  threads = std::min(threads, HardwareThreads());
  // Between node ranges the sweep polls its request's deadline: once it
  // passes, the remaining compute would produce an answer nobody awaits.
  std::function<Status()> checkpoint;
  if (deadline.has_deadline()) {
    checkpoint = [this, deadline] {
      return deadline.Expired(Now())
                 ? Status::DeadlineExceeded(
                       "sweep aborted: request deadline expired")
                 : Status::Ok();
    };
  }
  Status swept;
  if (lock_free_) {
    swept = RunSweep(*backend_, plan, threads, checkpoint);
  } else {
    active_sweeps_.Add(1);
    {
      MutexLock lock(mu_);
      swept = RunSweep(*backend_, plan, threads, checkpoint);
    }
    active_sweeps_.Add(-1);
  }
  if (!swept.ok()) return swept;

  SweepResponseMsg response;
  response.begin = options_.node_begin;
  response.end = options_.node_begin + backend_->num_nodes();
  response.partials.resize(collectors.value().size());
  for (size_t i = 0; i < collectors.value().size(); ++i) {
    // Collectors here are locally indexed: slice their whole [0, n).
    Status s = collectors.value()[i]->EncodePartial(
        0, static_cast<NodeId>(backend_->num_nodes()),
        &response.partials[i]);
    if (!s.ok()) return s;
  }
  std::string encoded = EncodeSweepResponse(response);
  if (options_.sweep_cache_entries > 0) {
    sweep_cache_.Put(cache_key, encoded);
  }
  return Frame{MessageType::kSweepResponse, std::move(encoded)};
}

// ---------------------------------------------------------------------------
// TcpServer
// ---------------------------------------------------------------------------

TcpServer::TcpServer(FrameHandler* handler, const TcpServerOptions& options)
    : handler_(handler), options_(options) {
  stop_pipe_[0] = stop_pipe_[1] = -1;
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (listen_fd_ >= 0) return Status::InvalidArgument("server already started");
  if (::pipe(stop_pipe_) != 0) {
    return Status::IOError("pipe failed: " + std::string(std::strerror(errno)));
  }
  auto fail = [this](const std::string& what, int fd) {
    Status s = Status::IOError(what + " failed: " +
                               std::string(std::strerror(errno)));
    if (fd >= 0) ::close(fd);
    ::close(stop_pipe_[0]);
    ::close(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    return s;
  };
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket", -1);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind", fd);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname", fd);
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, 128) != 0) {
    return fail("listen", fd);
  }
  // Non-blocking listener: workers are woken by poll, so a connection
  // grabbed by a sibling worker yields EAGAIN instead of blocking forever.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  listen_fd_ = fd;
  uint32_t workers = options_.num_workers == 0 ? 1 : options_.num_workers;
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void TcpServer::Stop() {
  if (listen_fd_ < 0) return;
  // Wake every worker out of poll; they observe the stop pipe and exit.
  char byte = 's';
  [[maybe_unused]] ssize_t ignored = ::write(stop_pipe_[1], &byte, 1);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
}

void TcpServer::WorkerLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        continue;  // a sibling worker won the race
      }
      return;
    }
    Metrics().tcp_accepted->Add();
    // Non-blocking connection fd: reads poll first, and response writes
    // can be bounded by the mid-frame deadline instead of parking in the
    // kernel against a stalled peer.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (options_.nodelay) {
      // Responses are single complete frames; without this, Nagle holds
      // the final short segment hostage to the peer's delayed ACK.
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

bool TcpServer::WaitReadable(int fd, const Deadline& deadline) {
  // Blocks until `fd` has data (or EOF) — or until Stop signals or the
  // deadline passes, so a worker parked on an idle connection never
  // wedges shutdown and a mid-frame stall costs bounded time.
  for (;;) {
    int timeout = -1;
    if (deadline.has_deadline()) {
      uint64_t remaining = deadline.RemainingMs();
      if (remaining == 0) return false;  // stalled mid-frame: drop it
      timeout = remaining > static_cast<uint64_t>(
                                std::numeric_limits<int>::max())
                    ? std::numeric_limits<int>::max()
                    : static_cast<int>(remaining);
    }
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    int rc = ::poll(fds, 2, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) continue;  // timeout: loop re-checks the deadline
    if (fds[1].revents != 0) return false;  // stop requested
    if (fds[0].revents != 0) return true;   // readable (or hup -> read 0)
  }
}

void TcpServer::ServeConnection(int fd) {
  // Frame-by-frame pump. A handler-reported framing loss, any socket
  // error, or a mid-frame stall past idle_timeout_ms ends the connection;
  // the next client simply reconnects.
  //
  // Returns 1 when exactly n bytes were read, 0 on clean EOF at a frame
  // boundary (nothing read yet), -1 on error / stop / deadline. Arms the
  // per-frame deadline when the frame's first byte arrives.
  auto read_exact = [&](char* buf, size_t n, Deadline* frame_deadline,
                        bool at_frame_start) -> int {
    size_t done = 0;
    while (done < n) {
      if (!WaitReadable(fd, *frame_deadline)) return -1;
      ssize_t got = ::read(fd, buf + done, n - done);
      if (got == 0) return (at_frame_start && done == 0) ? 0 : -1;
      if (got < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return -1;
      }
      if (at_frame_start && done == 0 && options_.idle_timeout_ms > 0) {
        *frame_deadline = Deadline::AfterMs(options_.idle_timeout_ms);
      }
      done += static_cast<size_t>(got);
    }
    return 1;
  };

  for (;;) {
    char raw[kMaxFrameHeaderBytes];
    Deadline frame_deadline;  // armed once the frame's first byte arrives
    int rc = read_exact(raw, kFrameHeaderBytes, &frame_deadline,
                        /*at_frame_start=*/true);
    if (rc <= 0) return;  // clean EOF between frames, or failure

    FrameHeader header;
    std::string request;
    size_t header_bytes = kFrameHeaderBytes;
    Status s = DecodeFrameHeaderPrefix(raw, kFrameHeaderBytes, &header);
    if (s.ok() && header.header_bytes > kFrameHeaderBytes) {
      // v2 frame: the prefix promises extension bytes (the deadline).
      size_t ext = header.header_bytes - kFrameHeaderBytes;
      if (read_exact(raw + kFrameHeaderBytes, ext, &frame_deadline,
                     /*at_frame_start=*/false) != 1) {
        return;
      }
      header_bytes = header.header_bytes;
      s = DecodeFrameHeaderExt(raw + kFrameHeaderBytes, ext, &header);
    }
    if (s.ok()) {
      // Header is sane: the payload length can be trusted enough to read.
      std::string payload(header.payload_bytes, '\0');
      if (!payload.empty() &&
          read_exact(payload.data(), payload.size(), &frame_deadline,
                     /*at_frame_start=*/false) != 1) {
        return;
      }
      request.assign(raw, header_bytes);
      request.append(payload);
    } else {
      // Bad header: hand the raw bytes to the handler so the client gets
      // the precise rejection, then close (framing is lost).
      request.assign(raw, header_bytes);
    }
    bool close_connection = false;
    std::string response = handler_->HandleFrame(request, &close_connection);
    Deadline write_deadline = options_.idle_timeout_ms > 0
                                  ? Deadline::AfterMs(options_.idle_timeout_ms)
                                  : Deadline();
    if (!WriteAllBytes(fd, response.data(), response.size(), write_deadline)
             .ok()) {
      return;
    }
    if (close_connection) return;
  }
}

}  // namespace hipads
