#include "serve/fault.h"

#include <chrono>
#include <thread>

namespace hipads {

namespace {

// Sleeps in small slices so a stall honors the call's deadline with
// millisecond granularity instead of overshooting it by the whole stall.
void SleepUntil(const Deadline& until) {
  while (!until.Expired()) {
    uint64_t remaining = until.RemainingMs();
    uint64_t slice = remaining < 5 ? remaining : 5;
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
  }
}

}  // namespace

const FaultRule* MatchFault(const std::vector<FaultRule>& rules,
                            uint64_t index) {
  for (const FaultRule& rule : rules) {
    if (index < rule.first_call) continue;
    uint64_t offset = index - rule.first_call;
    if (rule.count == UINT64_MAX || offset < rule.count) return &rule;
  }
  return nullptr;
}

Status FaultInjectionChannel::Call(std::string_view request_frame,
                                   Frame* response,
                                   const Deadline& deadline) {
  uint64_t index = calls_.fetch_add(1);
  const FaultRule* rule = MatchFault(rules_, index);
  if (rule == nullptr) {
    return inner_->Call(request_frame, response, deadline);
  }
  switch (rule->kind) {
    case FaultKind::kDrop:
      return Status::IOError("injected fault: connection dropped");
    case FaultKind::kDelay:
      SleepUntil(Deadline::AfterMs(rule->param_ms));
      if (deadline.Expired()) {
        return Status::DeadlineExceeded(
            "injected fault: delayed past the deadline");
      }
      return inner_->Call(request_frame, response, deadline);
    case FaultKind::kStall:
      if (deadline.has_deadline()) {
        SleepUntil(deadline);
        return Status::DeadlineExceeded("injected fault: peer stalled");
      }
      SleepUntil(Deadline::AfterMs(rule->param_ms));
      return Status::IOError("injected fault: peer stalled");
    case FaultKind::kCloseMidResponse: {
      // The request reaches the server (side effects happen), but the
      // response is lost on the way back.
      Frame discarded;
      Status s = inner_->Call(request_frame, &discarded, deadline);
      if (!s.ok()) return s;
      return Status::IOError("injected fault: connection closed "
                             "mid-response");
    }
    case FaultKind::kCorrupt: {
      // Re-encode the inner response with one payload byte flipped and
      // run it through the real decoder: the checksum must catch it.
      Frame inner_frame;
      Status s = inner_->Call(request_frame, &inner_frame, deadline);
      if (!s.ok()) return s;
      std::string wire =
          EncodeFrame(inner_frame.type, inner_frame.payload,
                      /*deadline_ms=*/0, inner_frame.version);
      wire[wire.size() / 2] = static_cast<char>(wire[wire.size() / 2] ^ 0x20);
      auto decoded = DecodeFrame(wire);
      if (!decoded.ok()) return decoded.status();
      *response = std::move(decoded).value();
      return Status::Ok();
    }
    case FaultKind::kShed:
      return Status::Unavailable("injected fault: request shed");
  }
  return Status::InvalidArgument("unknown fault kind");
}

std::string FlakyFrameHandler::HandleFrame(std::string_view request,
                                           bool* close_connection) {
  uint64_t index = calls_.fetch_add(1);
  const FaultRule* rule = MatchFault(rules_, index);
  if (rule == nullptr) return inner_->HandleFrame(request, close_connection);
  switch (rule->kind) {
    case FaultKind::kDrop:
      // Pretend the request never arrived: no response bytes, drop the
      // connection under the client.
      *close_connection = true;
      return std::string();
    case FaultKind::kDelay:
    case FaultKind::kStall: {
      // Server-side the handler cannot see the client's clock; it honors
      // the frame's own wire deadline if present, else param_ms.
      auto frame = DecodeFrame(request);
      Deadline stall = Deadline::AfterMs(rule->param_ms);
      if (frame.ok() && frame.value().deadline_ms != 0) {
        stall = Deadline::Min(
            stall, Deadline::FromWireMs(frame.value().deadline_ms));
      }
      SleepUntil(stall);
      if (rule->kind == FaultKind::kDelay) {
        return inner_->HandleFrame(request, close_connection);
      }
      *close_connection = true;  // stalled, then died without answering
      return std::string();
    }
    case FaultKind::kCloseMidResponse: {
      // A prefix of the real response: the client's framing/checksum
      // layer must reject the truncation.
      std::string full = inner_->HandleFrame(request, close_connection);
      *close_connection = true;
      return full.substr(0, full.size() / 2);
    }
    case FaultKind::kCorrupt: {
      std::string full = inner_->HandleFrame(request, close_connection);
      if (!full.empty()) {
        size_t at = full.size() / 2;
        full[at] = static_cast<char>(full[at] ^ 0x20);
      }
      return full;
    }
    case FaultKind::kShed: {
      auto frame = DecodeFrame(request);
      uint32_t version = frame.ok() ? frame.value().version : kWireVersion;
      return EncodeFrame(
          MessageType::kError,
          EncodeError(Status::Unavailable("injected fault: request shed")),
          /*deadline_ms=*/0, version);
    }
  }
  *close_connection = true;
  return std::string();
}

}  // namespace hipads
