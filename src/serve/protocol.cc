#include "serve/protocol.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <type_traits>

#include <errno.h>
#include <poll.h>
#include <sys/uio.h>
#include <unistd.h>

#include "util/hash.h"

namespace hipads {

namespace {

// Frame header prefix layout on the wire (little-endian, like
// hipads-ads-v2). Version 2 frames append an 8-byte deadline extension
// (remaining milliseconds, 0 = none) after this prefix; the checksum
// covers prefix + extension + payload with this field zeroed.
struct RawFrameHeader {
  char magic[8];
  uint32_t version;
  uint32_t type;
  uint64_t payload_bytes;
  uint64_t checksum;  // FNV-1a over the header (this field zeroed) + payload
};
static_assert(sizeof(RawFrameHeader) == kFrameHeaderBytes,
              "wire frame header layout drifted");
static_assert(std::is_trivially_copyable_v<RawFrameHeader>);
static_assert(std::endian::native == std::endian::little,
              "the hipads wire format is little-endian; big-endian hosts "
              "need byte swapping");

// Byte offset of the checksum field inside the header prefix.
constexpr size_t kChecksumOffset = offsetof(RawFrameHeader, checksum);

// Checksum over the whole raw header (any version, checksum field zeroed)
// followed by the payload.
uint64_t FrameChecksum(const char* raw, size_t header_bytes,
                       std::string_view payload) {
  char scratch[kMaxFrameHeaderBytes];
  std::memcpy(scratch, raw, header_bytes);
  std::memset(scratch + kChecksumOffset, 0, sizeof(uint64_t));
  uint64_t sum = Fnv1a(scratch, header_bytes, kFnv1aOffsetBasis);
  return Fnv1a(payload.data(), payload.size(), sum);
}

bool KnownMessageType(uint32_t type) {
  return type <= static_cast<uint32_t>(MessageType::kStatsResponse);
}

bool SupportedWireVersion(uint32_t version) {
  return version == kWireVersion || version == kWireVersionDeadline ||
         version == kWireVersionLegacy || version == kWireVersionTrace;
}

// The batch and stats frame pairs entered the protocol in v3; an older
// frame naming one is structurally impossible output of a real peer,
// i.e. corruption.
bool TypeRequiresV3(uint32_t type) {
  return type >= static_cast<uint32_t>(MessageType::kPointBatchRequest);
}

}  // namespace

size_t FrameHeaderBytesForVersion(uint32_t version) {
  switch (version) {
    case kWireVersionLegacy:
      return kFrameHeaderBytes;
    case kWireVersionTrace:
      return kFrameHeaderBytes + kFrameExtBytes + kFrameTraceExtBytes;
    default:
      return kFrameHeaderBytes + kFrameExtBytes;
  }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

std::string EncodeFrameHeader(MessageType type, std::string_view payload,
                              uint64_t deadline_ms, uint32_t version,
                              uint64_t trace_hi, uint64_t trace_lo) {
  assert(SupportedWireVersion(version));
  assert(!TypeRequiresV3(static_cast<uint32_t>(type)) ||
         version >= kWireVersion);
  if (version == kWireVersionLegacy) deadline_ms = 0;  // v1 cannot carry one
  RawFrameHeader h;
  std::memcpy(h.magic, kWireMagic, sizeof(h.magic));
  h.version = version;
  h.type = static_cast<uint32_t>(type);
  h.payload_bytes = payload.size();
  h.checksum = 0;
  char raw[kMaxFrameHeaderBytes];
  size_t header_bytes = FrameHeaderBytesForVersion(version);
  std::memcpy(raw, &h, sizeof(h));
  if (header_bytes > kFrameHeaderBytes) {
    std::memcpy(raw + kFrameHeaderBytes, &deadline_ms, sizeof(deadline_ms));
  }
  if (version == kWireVersionTrace) {
    std::memcpy(raw + kFrameHeaderBytes + kFrameExtBytes, &trace_hi,
                sizeof(trace_hi));
    std::memcpy(raw + kFrameHeaderBytes + kFrameExtBytes + sizeof(trace_hi),
                &trace_lo, sizeof(trace_lo));
  }
  uint64_t checksum = FrameChecksum(raw, header_bytes, payload);
  std::memcpy(raw + kChecksumOffset, &checksum, sizeof(checksum));
  return std::string(raw, header_bytes);
}

std::string EncodeFrame(MessageType type, std::string_view payload,
                        uint64_t deadline_ms, uint32_t version,
                        uint64_t trace_hi, uint64_t trace_lo) {
  std::string frame = EncodeFrameHeader(type, payload, deadline_ms, version,
                                        trace_hi, trace_lo);
  frame.reserve(frame.size() + payload.size());
  frame.append(payload.data(), payload.size());
  return frame;
}

Status DecodeFrameHeaderPrefix(const char* data, size_t size,
                               FrameHeader* out) {
  if (size < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header");
  }
  RawFrameHeader h;
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kWireMagic, sizeof(h.magic)) != 0) {
    return Status::Corruption("missing hipads wire magic");
  }
  if (!SupportedWireVersion(h.version)) {
    return Status::Corruption("unsupported wire version " +
                              std::to_string(h.version));
  }
  if (!KnownMessageType(h.type)) {
    return Status::Corruption("unknown message type " +
                              std::to_string(h.type));
  }
  if (TypeRequiresV3(h.type) && h.version < kWireVersion) {
    return Status::Corruption("message type " + std::to_string(h.type) +
                              " requires wire version 3");
  }
  if (h.payload_bytes > kMaxFramePayload) {
    return Status::Corruption("frame payload length " +
                              std::to_string(h.payload_bytes) +
                              " exceeds the protocol bound");
  }
  out->type = static_cast<MessageType>(h.type);
  out->payload_bytes = h.payload_bytes;
  out->checksum = h.checksum;
  out->version = h.version;
  out->deadline_ms = 0;
  out->trace_hi = 0;
  out->trace_lo = 0;
  out->header_bytes = FrameHeaderBytesForVersion(h.version);
  std::memcpy(out->raw, data, kFrameHeaderBytes);
  return Status::Ok();
}

Status DecodeFrameHeaderExt(const char* data, size_t size, FrameHeader* out) {
  size_t ext = out->header_bytes - kFrameHeaderBytes;
  if (size != ext) {
    return Status::Corruption("frame header extension size mismatch");
  }
  if (ext == 0) return Status::Ok();
  std::memcpy(&out->deadline_ms, data, sizeof(out->deadline_ms));
  if (ext > kFrameExtBytes) {
    std::memcpy(&out->trace_hi, data + kFrameExtBytes, sizeof(out->trace_hi));
    std::memcpy(&out->trace_lo,
                data + kFrameExtBytes + sizeof(out->trace_hi),
                sizeof(out->trace_lo));
  }
  std::memcpy(out->raw + kFrameHeaderBytes, data, ext);
  return Status::Ok();
}

Status DecodeFrameHeader(const char* data, size_t size, FrameHeader* out) {
  Status s = DecodeFrameHeaderPrefix(data, size, out);
  if (!s.ok()) return s;
  if (size < out->header_bytes) {
    return Status::Corruption("truncated frame header extension");
  }
  return DecodeFrameHeaderExt(data + kFrameHeaderBytes,
                              out->header_bytes - kFrameHeaderBytes, out);
}

Status VerifyFramePayload(const FrameHeader& header,
                          std::string_view payload) {
  if (payload.size() != header.payload_bytes) {
    return Status::Corruption("frame payload size mismatch");
  }
  if (FrameChecksum(header.raw, header.header_bytes, payload) !=
      header.checksum) {
    return Status::Corruption("frame checksum mismatch");
  }
  return Status::Ok();
}

StatusOr<Frame> DecodeFrame(std::string_view data) {
  FrameHeader header;
  Status s = DecodeFrameHeader(data.data(), data.size(), &header);
  if (!s.ok()) return s;
  if (data.size() != header.header_bytes + header.payload_bytes) {
    return Status::Corruption("frame length does not match its header");
  }
  std::string_view payload = data.substr(header.header_bytes);
  s = VerifyFramePayload(header, payload);
  if (!s.ok()) return s;
  Frame frame;
  frame.type = header.type;
  frame.payload.assign(payload.data(), payload.size());
  frame.version = header.version;
  frame.deadline_ms = header.deadline_ms;
  frame.trace_hi = header.trace_hi;
  frame.trace_lo = header.trace_lo;
  return frame;
}

namespace {

// Blocks (via poll) until fd is ready for `events` or the deadline runs
// out. With no deadline this polls forever — matching the blocking-fd
// behavior the deadline-free entry points always had.
Status WaitFd(int fd, short events, const Deadline& deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline.has_deadline()) {
      uint64_t remaining = deadline.RemainingMs();
      if (remaining == 0) {
        return Status::DeadlineExceeded("socket wait deadline exceeded");
      }
      timeout_ms = remaining > static_cast<uint64_t>(
                                   std::numeric_limits<int>::max())
                       ? std::numeric_limits<int>::max()
                       : static_cast<int>(remaining);
    }
    struct pollfd p = {fd, events, 0};
    int n = ::poll(&p, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (!deadline.has_deadline()) continue;
      if (deadline.Expired()) {
        return Status::DeadlineExceeded("socket wait deadline exceeded");
      }
      continue;  // clamped timeout; keep waiting
    }
    return Status::Ok();
  }
}

Status ReadExact(int fd, char* buf, size_t n, const Deadline& deadline) {
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::read(fd, buf + done, n - done);
    if (got == 0) {
      return Status::IOError("connection closed mid-frame");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Status s = WaitFd(fd, POLLIN, deadline);
        if (!s.ok()) return s;
        continue;
      }
      return Status::IOError("read failed: " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(got);
  }
  return Status::Ok();
}

}  // namespace

Status WriteAllBytes(int fd, const char* data, size_t size,
                     const Deadline& deadline) {
  size_t done = 0;
  while (done < size) {
    ssize_t put = ::write(fd, data + done, size - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Status s = WaitFd(fd, POLLOUT, deadline);
        if (!s.ok()) return s;
        continue;
      }
      return Status::IOError("write failed: " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(put);
  }
  return Status::Ok();
}

Status WriteAllBytes(int fd, const char* data, size_t size) {
  return WriteAllBytes(fd, data, size, Deadline());
}

Status WriteFrame(int fd, MessageType type, std::string_view payload) {
  std::string frame = EncodeFrame(type, payload);
  return WriteAllBytes(fd, frame.data(), frame.size());
}

Status WriteFrameVectored(int fd, std::string_view header,
                          std::string_view payload, const Deadline& deadline) {
  size_t done = 0;
  const size_t total = header.size() + payload.size();
  while (done < total) {
    struct iovec iov[2];
    int iovcnt = 0;
    if (done < header.size()) {
      iov[iovcnt].iov_base = const_cast<char*>(header.data() + done);
      iov[iovcnt].iov_len = header.size() - done;
      ++iovcnt;
      if (!payload.empty()) {
        iov[iovcnt].iov_base = const_cast<char*>(payload.data());
        iov[iovcnt].iov_len = payload.size();
        ++iovcnt;
      }
    } else {
      size_t off = done - header.size();
      iov[iovcnt].iov_base = const_cast<char*>(payload.data() + off);
      iov[iovcnt].iov_len = payload.size() - off;
      ++iovcnt;
    }
    ssize_t put = ::writev(fd, iov, iovcnt);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Status s = WaitFd(fd, POLLOUT, deadline);
        if (!s.ok()) return s;
        continue;
      }
      return Status::IOError("writev failed: " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(put);
  }
  return Status::Ok();
}

Status ReadFrameInto(int fd, const Deadline& deadline, Frame* out) {
  char raw[kMaxFrameHeaderBytes];
  Status s = ReadExact(fd, raw, kFrameHeaderBytes, deadline);
  if (!s.ok()) return s;
  FrameHeader header;
  s = DecodeFrameHeaderPrefix(raw, kFrameHeaderBytes, &header);
  if (!s.ok()) return s;
  size_t ext = header.header_bytes - kFrameHeaderBytes;
  if (ext > 0) {
    s = ReadExact(fd, raw + kFrameHeaderBytes, ext, deadline);
    if (!s.ok()) return s;
    s = DecodeFrameHeaderExt(raw + kFrameHeaderBytes, ext, &header);
    if (!s.ok()) return s;
  }
  // resize() keeps the string's capacity: a long-lived Frame amortizes its
  // receive buffer across calls instead of allocating per response.
  out->payload.resize(header.payload_bytes);
  if (!out->payload.empty()) {
    s = ReadExact(fd, out->payload.data(), out->payload.size(), deadline);
    if (!s.ok()) return s;
  }
  s = VerifyFramePayload(header, out->payload);
  if (!s.ok()) return s;
  out->type = header.type;
  out->version = header.version;
  out->deadline_ms = header.deadline_ms;
  out->trace_hi = header.trace_hi;
  out->trace_lo = header.trace_lo;
  return Status::Ok();
}

StatusOr<Frame> ReadFrame(int fd, const Deadline& deadline) {
  Frame frame;
  Status s = ReadFrameInto(fd, deadline, &frame);
  if (!s.ok()) return s;
  return frame;
}

StatusOr<Frame> ReadFrame(int fd) { return ReadFrame(fd, Deadline()); }

// ---------------------------------------------------------------------------
// Payload readers/writers
// ---------------------------------------------------------------------------

void WireWriter::U32(uint32_t v) {
  out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WireWriter::U64(uint64_t v) {
  out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WireWriter::F64(double v) {
  out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WireWriter::Bytes(std::string_view data) {
  U64(data.size());
  if (!data.empty()) out_.append(data.data(), data.size());
}

Status WireReader::Raw(void* out, size_t n) {
  if (data_.size() - pos_ < n) {
    return Status::Corruption("truncated message payload");
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status WireReader::U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
Status WireReader::U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
Status WireReader::F64(double* v) { return Raw(v, sizeof(*v)); }

Status WireReader::Bytes(std::string* out) {
  uint64_t len = 0;
  Status s = U64(&len);
  if (!s.ok()) return s;
  if (len > data_.size() - pos_) {
    return Status::Corruption("byte string length exceeds payload");
  }
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status WireReader::ExpectDone() const {
  return Done() ? Status::Ok()
                : Status::Corruption("trailing bytes after message payload");
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

std::string EncodeServerInfo(const ServerInfoMsg& msg) {
  WireWriter w;
  w.U64(msg.node_begin);
  w.U64(msg.node_end);
  w.U64(msg.total_entries);
  w.U32(msg.k);
  w.U32(msg.flavor);
  w.F64(msg.rank_sup);
  return w.Take();
}

StatusOr<ServerInfoMsg> DecodeServerInfo(std::string_view payload) {
  ServerInfoMsg msg;
  WireReader r(payload);
  Status s;
  if (!(s = r.U64(&msg.node_begin)).ok()) return s;
  if (!(s = r.U64(&msg.node_end)).ok()) return s;
  if (!(s = r.U64(&msg.total_entries)).ok()) return s;
  if (!(s = r.U32(&msg.k)).ok()) return s;
  if (!(s = r.U32(&msg.flavor)).ok()) return s;
  if (!(s = r.F64(&msg.rank_sup)).ok()) return s;
  if (!(s = r.ExpectDone()).ok()) return s;
  if (msg.node_begin > msg.node_end) {
    return Status::Corruption("server info range inverted");
  }
  // Bound the range to the NodeId space: consumers size per-node buffers
  // from node_end (ExecuteRemoteSweep calls Begin with it), so an
  // unchecked 2^63 here would be an allocation bomb, not a fleet.
  if (msg.node_end > std::numeric_limits<NodeId>::max()) {
    return Status::Corruption("server info range exceeds the node space");
  }
  if (msg.flavor > static_cast<uint32_t>(SketchFlavor::kKPartition)) {
    return Status::Corruption("server info names an unknown sketch flavor");
  }
  return msg;
}

std::string EncodePointRequest(const PointRequestMsg& msg) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(msg.kind));
  w.U64(msg.node);
  w.U64(msg.other);
  w.F64(msg.d);
  w.U64(msg.targets.size());
  for (uint64_t t : msg.targets) w.U64(t);
  return w.Take();
}

StatusOr<PointRequestMsg> DecodePointRequest(std::string_view payload) {
  PointRequestMsg msg;
  WireReader r(payload);
  Status s;
  uint32_t kind = 0;
  if (!(s = r.U32(&kind)).ok()) return s;
  if (kind < static_cast<uint32_t>(PointKind::kNodeStats) ||
      kind > static_cast<uint32_t>(PointKind::kFetchSketch)) {
    return Status::Corruption("unknown point request kind");
  }
  msg.kind = static_cast<PointKind>(kind);
  if (!(s = r.U64(&msg.node)).ok()) return s;
  if (!(s = r.U64(&msg.other)).ok()) return s;
  if (!(s = r.F64(&msg.d)).ok()) return s;
  if (std::isnan(msg.d)) {
    return Status::Corruption("point request distance is NaN");
  }
  uint64_t count = 0;
  if (!(s = r.U64(&count)).ok()) return s;
  if (count > payload.size() / sizeof(uint64_t)) {
    return Status::Corruption("point request target count exceeds payload");
  }
  msg.targets.resize(count);
  for (uint64_t& t : msg.targets) {
    if (!(s = r.U64(&t)).ok()) return s;
  }
  if (!(s = r.ExpectDone()).ok()) return s;
  return msg;
}

std::string EncodePointResponse(const PointResponseMsg& msg) {
  WireWriter w;
  w.U64(msg.values.size());
  for (double v : msg.values) w.F64(v);
  w.Bytes(msg.entries.empty()
              ? std::string_view()
              : std::string_view(
                    reinterpret_cast<const char*>(msg.entries.data()),
                    msg.entries.size() * sizeof(AdsEntry)));
  return w.Take();
}

StatusOr<PointResponseMsg> DecodePointResponse(std::string_view payload) {
  PointResponseMsg msg;
  WireReader r(payload);
  Status s;
  uint64_t count = 0;
  if (!(s = r.U64(&count)).ok()) return s;
  if (count > payload.size() / sizeof(double)) {
    return Status::Corruption("point response value count exceeds payload");
  }
  msg.values.resize(count);
  for (double& v : msg.values) {
    if (!(s = r.F64(&v)).ok()) return s;
  }
  std::string entries;
  if (!(s = r.Bytes(&entries)).ok()) return s;
  if (!(s = r.ExpectDone()).ok()) return s;
  if (entries.size() % sizeof(AdsEntry) != 0) {
    return Status::Corruption("sketch bytes are not whole AdsEntry records");
  }
  msg.entries.resize(entries.size() / sizeof(AdsEntry));
  if (!entries.empty()) {
    std::memcpy(msg.entries.data(), entries.data(), entries.size());
  }
  return msg;
}

namespace {

// Rebuilds a Status from a wire (code, message) pair; false when the code
// names no known Status::Code. kOk yields Status::Ok() — callers decide
// whether an Ok is legal in their context (error frames say no, batch
// response entries say yes).
bool StatusFromWire(uint32_t code, std::string message, Status* out) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      *out = Status::Ok();
      return true;
    case Status::Code::kInvalidArgument:
      *out = Status::InvalidArgument(std::move(message));
      return true;
    case Status::Code::kNotFound:
      *out = Status::NotFound(std::move(message));
      return true;
    case Status::Code::kIOError:
      *out = Status::IOError(std::move(message));
      return true;
    case Status::Code::kCorruption:
      *out = Status::Corruption(std::move(message));
      return true;
    case Status::Code::kDeadlineExceeded:
      *out = Status::DeadlineExceeded(std::move(message));
      return true;
    case Status::Code::kUnavailable:
      *out = Status::Unavailable(std::move(message));
      return true;
  }
  return false;
}

}  // namespace

std::string EncodePointBatchRequestRaw(
    const std::vector<std::string>& encoded_entries) {
  WireWriter w;
  w.U64(encoded_entries.size());
  for (const std::string& e : encoded_entries) w.Bytes(e);
  return w.Take();
}

std::string EncodePointBatchRequest(const PointBatchRequestMsg& msg) {
  WireWriter w;
  w.U64(msg.entries.size());
  for (const PointRequestMsg& e : msg.entries) w.Bytes(EncodePointRequest(e));
  return w.Take();
}

StatusOr<PointBatchRequestMsg> DecodePointBatchRequest(
    std::string_view payload) {
  PointBatchRequestMsg msg;
  WireReader r(payload);
  Status s;
  uint64_t count = 0;
  if (!(s = r.U64(&count)).ok()) return s;
  if (count > kMaxPointBatchEntries) {
    return Status::Corruption(
        "point batch entry count exceeds the protocol bound");
  }
  if (count > payload.size() / sizeof(uint64_t)) {
    return Status::Corruption("point batch entry count exceeds payload");
  }
  msg.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string entry;
    if (!(s = r.Bytes(&entry)).ok()) return s;
    StatusOr<PointRequestMsg> decoded = DecodePointRequest(entry);
    if (!decoded.ok()) return decoded.status();
    msg.entries.push_back(std::move(decoded).value());
  }
  if (!(s = r.ExpectDone()).ok()) return s;
  return msg;
}

std::string EncodePointBatchResponse(const PointBatchResponseMsg& msg) {
  WireWriter w;
  w.U64(msg.entries.size());
  for (const PointBatchResponseEntry& e : msg.entries) {
    w.U32(static_cast<uint32_t>(e.status.code()));
    w.Bytes(e.status.message());
    w.Bytes(e.status.ok() ? std::string_view(e.payload) : std::string_view());
  }
  return w.Take();
}

StatusOr<PointBatchResponseMsg> DecodePointBatchResponse(
    std::string_view payload) {
  PointBatchResponseMsg msg;
  WireReader r(payload);
  Status s;
  uint64_t count = 0;
  if (!(s = r.U64(&count)).ok()) return s;
  if (count > kMaxPointBatchEntries) {
    return Status::Corruption(
        "point batch entry count exceeds the protocol bound");
  }
  if (count > payload.size() / 20) {  // 1 u32 + 2 length prefixes per entry
    return Status::Corruption("point batch entry count exceeds payload");
  }
  msg.entries.resize(count);
  for (PointBatchResponseEntry& e : msg.entries) {
    uint32_t code = 0;
    std::string message;
    std::string body;
    if (!(s = r.U32(&code)).ok()) return s;
    if (!(s = r.Bytes(&message)).ok()) return s;
    if (!(s = r.Bytes(&body)).ok()) return s;
    if (code == static_cast<uint32_t>(Status::Code::kOk) && !message.empty()) {
      return Status::Corruption("ok batch entry carries an error message");
    }
    if (code != static_cast<uint32_t>(Status::Code::kOk) && !body.empty()) {
      return Status::Corruption(
          "failed batch entry carries a response payload");
    }
    if (!StatusFromWire(code, std::move(message), &e.status)) {
      return Status::Corruption("batch entry names an unknown status code");
    }
    if (e.status.ok()) {
      // Validate the inner payload now — consumers forward these bytes as
      // single-response payloads and must be able to trust them.
      StatusOr<PointResponseMsg> decoded = DecodePointResponse(body);
      if (!decoded.ok()) return decoded.status();
      e.payload = std::move(body);
    }
  }
  if (!(s = r.ExpectDone()).ok()) return s;
  return msg;
}

std::string EncodeSweepRequest(const SweepRequestMsg& msg) {
  WireWriter w;
  w.U32(msg.num_threads);
  w.U64(msg.collectors.size());
  for (const CollectorSpec& c : msg.collectors) {
    w.U32(static_cast<uint32_t>(c.kind));
    w.U32(c.aux);
    w.U32(c.count);
    w.F64(c.param);
  }
  return w.Take();
}

StatusOr<SweepRequestMsg> DecodeSweepRequest(std::string_view payload) {
  SweepRequestMsg msg;
  WireReader r(payload);
  Status s;
  if (!(s = r.U32(&msg.num_threads)).ok()) return s;
  uint64_t count = 0;
  if (!(s = r.U64(&count)).ok()) return s;
  if (count > payload.size() / 20) {  // 3 u32 + 1 f64 per spec
    return Status::Corruption("collector count exceeds payload");
  }
  msg.collectors.resize(count);
  for (CollectorSpec& c : msg.collectors) {
    uint32_t kind = 0;
    if (!(s = r.U32(&kind)).ok()) return s;
    if (kind < static_cast<uint32_t>(CollectorKind::kDistanceHistogram) ||
        kind > static_cast<uint32_t>(CollectorKind::kQg)) {
      return Status::Corruption("unknown collector kind");
    }
    c.kind = static_cast<CollectorKind>(kind);
    if (!(s = r.U32(&c.aux)).ok()) return s;
    if (!(s = r.U32(&c.count)).ok()) return s;
    if (!(s = r.F64(&c.param)).ok()) return s;
  }
  if (!(s = r.ExpectDone()).ok()) return s;
  return msg;
}

std::string EncodeSweepResponse(const SweepResponseMsg& msg) {
  WireWriter w;
  w.U64(msg.begin);
  w.U64(msg.end);
  w.U64(msg.partials.size());
  for (const std::string& p : msg.partials) w.Bytes(p);
  return w.Take();
}

StatusOr<SweepResponseMsg> DecodeSweepResponse(std::string_view payload) {
  SweepResponseMsg msg;
  WireReader r(payload);
  Status s;
  if (!(s = r.U64(&msg.begin)).ok()) return s;
  if (!(s = r.U64(&msg.end)).ok()) return s;
  if (msg.begin > msg.end) {
    return Status::Corruption("sweep response range inverted");
  }
  uint64_t count = 0;
  if (!(s = r.U64(&count)).ok()) return s;
  if (count > payload.size() / sizeof(uint64_t)) {
    return Status::Corruption("partial count exceeds payload");
  }
  msg.partials.resize(count);
  for (std::string& p : msg.partials) {
    if (!(s = r.Bytes(&p)).ok()) return s;
  }
  if (!(s = r.ExpectDone()).ok()) return s;
  return msg;
}

std::string EncodeError(const Status& status) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(status.code()));
  w.Bytes(status.message());
  return w.Take();
}

Status DecodeError(std::string_view payload) {
  WireReader r(payload);
  uint32_t code = 0;
  std::string message;
  Status s;
  if (!(s = r.U32(&code)).ok()) return s;
  if (!(s = r.Bytes(&message)).ok()) return s;
  if (!(s = r.ExpectDone()).ok()) return s;
  Status decoded;
  if (!StatusFromWire(code, std::move(message), &decoded)) {
    return Status::Corruption("error frame with unknown status code");
  }
  if (decoded.ok()) {
    // An error frame must carry an error; treat Ok as tampering.
    return Status::Corruption("error frame with Ok status");
  }
  return decoded;
}

std::string EncodeStatsRequest(const StatsRequestMsg& msg) {
  WireWriter w;
  w.U32(msg.flags);
  return w.Take();
}

StatusOr<StatsRequestMsg> DecodeStatsRequest(std::string_view payload) {
  StatsRequestMsg msg;
  WireReader r(payload);
  Status s;
  if (!(s = r.U32(&msg.flags)).ok()) return s;
  if (!(s = r.ExpectDone()).ok()) return s;
  if ((msg.flags & ~kStatsFlagTraceSpans) != 0) {
    return Status::Corruption("stats request carries unknown flags");
  }
  return msg;
}

namespace {

void EncodeMetricsSnapshot(const MetricsSnapshot& snap, WireWriter* w) {
  w->U64(snap.counters.size());
  for (const MetricsSnapshot::CounterValue& c : snap.counters) {
    w->Bytes(c.name);
    w->U64(c.value);
  }
  w->U64(snap.gauges.size());
  for (const MetricsSnapshot::GaugeValue& g : snap.gauges) {
    w->Bytes(g.name);
    w->U64(static_cast<uint64_t>(g.value));
  }
  w->U64(snap.histograms.size());
  for (const MetricsSnapshot::HistogramValue& h : snap.histograms) {
    w->Bytes(h.name);
    w->U64(h.count);
    w->U64(h.sum);
    w->U64(h.buckets.size());
    for (uint64_t b : h.buckets) w->U64(b);
  }
}

Status DecodeMetricsSnapshot(std::string_view payload, WireReader* r,
                             MetricsSnapshot* out) {
  Status s;
  uint64_t count = 0;
  if (!(s = r->U64(&count)).ok()) return s;
  if (count > payload.size() / 16) {  // length prefix + value per counter
    return Status::Corruption("stats counter count exceeds payload");
  }
  out->counters.resize(count);
  for (MetricsSnapshot::CounterValue& c : out->counters) {
    if (!(s = r->Bytes(&c.name)).ok()) return s;
    if (!(s = r->U64(&c.value)).ok()) return s;
  }
  if (!(s = r->U64(&count)).ok()) return s;
  if (count > payload.size() / 16) {
    return Status::Corruption("stats gauge count exceeds payload");
  }
  out->gauges.resize(count);
  for (MetricsSnapshot::GaugeValue& g : out->gauges) {
    uint64_t bits = 0;
    if (!(s = r->Bytes(&g.name)).ok()) return s;
    if (!(s = r->U64(&bits)).ok()) return s;
    g.value = static_cast<int64_t>(bits);
  }
  if (!(s = r->U64(&count)).ok()) return s;
  if (count > payload.size() / 32) {  // prefix + count + sum + bucket count
    return Status::Corruption("stats histogram count exceeds payload");
  }
  out->histograms.resize(count);
  for (MetricsSnapshot::HistogramValue& h : out->histograms) {
    if (!(s = r->Bytes(&h.name)).ok()) return s;
    if (!(s = r->U64(&h.count)).ok()) return s;
    if (!(s = r->U64(&h.sum)).ok()) return s;
    uint64_t buckets = 0;
    if (!(s = r->U64(&buckets)).ok()) return s;
    if (buckets > payload.size() / sizeof(uint64_t)) {
      return Status::Corruption("stats bucket count exceeds payload");
    }
    h.buckets.resize(buckets);
    for (uint64_t& b : h.buckets) {
      if (!(s = r->U64(&b)).ok()) return s;
    }
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeStatsResponse(const StatsResponseMsg& msg) {
  WireWriter w;
  w.U64(msg.snapshots.size());
  for (const StatsSnapshotMsg& snap : msg.snapshots) {
    w.Bytes(snap.label);
    EncodeMetricsSnapshot(snap.metrics, &w);
  }
  w.U64(msg.spans.size());
  for (const TraceSpanMsg& span : msg.spans) {
    w.Bytes(span.label);
    w.Bytes(span.name);
    w.U64(span.trace_hi);
    w.U64(span.trace_lo);
    w.U64(span.start_us);
    w.U64(span.dur_us);
  }
  return w.Take();
}

StatusOr<StatsResponseMsg> DecodeStatsResponse(std::string_view payload) {
  StatsResponseMsg msg;
  WireReader r(payload);
  Status s;
  uint64_t count = 0;
  if (!(s = r.U64(&count)).ok()) return s;
  if (count > payload.size() / 32) {  // label + three instrument counts
    return Status::Corruption("stats snapshot count exceeds payload");
  }
  msg.snapshots.resize(count);
  for (StatsSnapshotMsg& snap : msg.snapshots) {
    if (!(s = r.Bytes(&snap.label)).ok()) return s;
    if (!(s = DecodeMetricsSnapshot(payload, &r, &snap.metrics)).ok()) {
      return s;
    }
  }
  if (!(s = r.U64(&count)).ok()) return s;
  if (count > payload.size() / 48) {  // two length prefixes + four u64s
    return Status::Corruption("stats span count exceeds payload");
  }
  msg.spans.resize(count);
  for (TraceSpanMsg& span : msg.spans) {
    if (!(s = r.Bytes(&span.label)).ok()) return s;
    if (!(s = r.Bytes(&span.name)).ok()) return s;
    if (!(s = r.U64(&span.trace_hi)).ok()) return s;
    if (!(s = r.U64(&span.trace_lo)).ok()) return s;
    if (!(s = r.U64(&span.start_us)).ok()) return s;
    if (!(s = r.U64(&span.dur_us)).ok()) return s;
  }
  if (!(s = r.ExpectDone()).ok()) return s;
  return msg;
}

// ---------------------------------------------------------------------------
// Spec materialization
// ---------------------------------------------------------------------------

namespace {

std::function<double(const HipEstimator&)> ScoreFn(ScoreKind kind) {
  switch (kind) {
    case ScoreKind::kHarmonic:
      return [](const HipEstimator& est) { return est.HarmonicCentrality(); };
    case ScoreKind::kDistanceSum:
      return [](const HipEstimator& est) { return est.DistanceSum(); };
    case ScoreKind::kReachable:
      return [](const HipEstimator& est) { return est.ReachableCount(); };
  }
  return nullptr;
}

std::function<double(NodeId, double)> QgFn(QgKind kind, double param) {
  switch (kind) {
    case QgKind::kExpDecay:
      return [param](NodeId, double d) { return std::pow(param, d); };
    case QgKind::kInverseSquare:
      return [](NodeId, double d) { return 1.0 / ((1.0 + d) * (1.0 + d)); };
  }
  return nullptr;
}

}  // namespace

StatusOr<std::vector<SweepCollector*>> BuildPlanFromSpec(
    const std::vector<CollectorSpec>& spec, SweepPlan* plan) {
  std::vector<SweepCollector*> built;
  built.reserve(spec.size());
  for (const CollectorSpec& c : spec) {
    switch (c.kind) {
      case CollectorKind::kDistanceHistogram:
        built.push_back(plan->Emplace<DistanceHistogramCollector>());
        break;
      case CollectorKind::kDistanceSum:
        built.push_back(plan->Emplace<DistanceSumCollector>());
        break;
      case CollectorKind::kHarmonic:
        built.push_back(plan->Emplace<HarmonicCentralityCollector>());
        break;
      case CollectorKind::kNeighborhoodSize:
        if (!(c.param >= 0.0)) {
          return Status::InvalidArgument(
              "neighborhood-size collector needs a distance >= 0");
        }
        built.push_back(plan->Emplace<NeighborhoodSizeCollector>(c.param));
        break;
      case CollectorKind::kReachableCount:
        built.push_back(plan->Emplace<ReachableCountCollector>());
        break;
      case CollectorKind::kTopK: {
        auto fn = ScoreFn(static_cast<ScoreKind>(c.aux));
        if (fn == nullptr) {
          return Status::InvalidArgument("top-k spec names an unknown score");
        }
        built.push_back(plan->Emplace<TopKCollector>(c.count, std::move(fn)));
        break;
      }
      case CollectorKind::kDistanceQuantile:
        if (!(c.param > 0.0 && c.param <= 1.0)) {
          return Status::InvalidArgument(
              "distance-quantile collector needs 0 < q <= 1");
        }
        built.push_back(plan->Emplace<DistanceQuantileCollector>(c.param));
        break;
      case CollectorKind::kQg: {
        if (!std::isfinite(c.param)) {
          return Status::InvalidArgument("Qg parameter must be finite");
        }
        auto g = QgFn(static_cast<QgKind>(c.aux), c.param);
        if (g == nullptr) {
          return Status::InvalidArgument(
              "Qg spec names an unknown g function");
        }
        built.push_back(plan->Emplace<QgCollector>(std::move(g)));
        break;
      }
    }
  }
  return built;
}

std::string SweepSpecCacheKey(const std::vector<CollectorSpec>& spec) {
  WireWriter w;
  w.U64(spec.size());
  for (const CollectorSpec& c : spec) {
    w.U32(static_cast<uint32_t>(c.kind));
    w.U32(c.aux);
    w.U32(c.count);
    w.F64(c.param);
  }
  return w.Take();
}

Status AbsorbSweepResponse(const SweepResponseMsg& response,
                           const std::vector<SweepCollector*>& collectors) {
  if (response.partials.size() != collectors.size()) {
    return Status::Corruption(
        "sweep response partial count does not match the plan");
  }
  if (response.end > std::numeric_limits<NodeId>::max()) {
    return Status::Corruption("sweep response range exceeds the node space");
  }
  for (size_t i = 0; i < collectors.size(); ++i) {
    Status s = collectors[i]->AbsorbPartial(
        static_cast<NodeId>(response.begin),
        static_cast<NodeId>(response.end), response.partials[i]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

bool ParseScoreKind(const std::string& name, ScoreKind* out) {
  if (name == "harmonic") {
    *out = ScoreKind::kHarmonic;
  } else if (name == "distsum") {
    *out = ScoreKind::kDistanceSum;
  } else if (name == "reach") {
    *out = ScoreKind::kReachable;
  } else {
    return false;
  }
  return true;
}

const char* ScoreKindName(ScoreKind kind) {
  switch (kind) {
    case ScoreKind::kHarmonic:
      return "harmonic";
    case ScoreKind::kDistanceSum:
      return "distsum";
    case ScoreKind::kReachable:
      return "reach";
  }
  return "?";
}

bool ParseQgKind(const std::string& name, QgKind* out) {
  if (name == "exp") {
    *out = QgKind::kExpDecay;
  } else if (name == "invsq") {
    *out = QgKind::kInverseSquare;
  } else {
    return false;
  }
  return true;
}

}  // namespace hipads
