#include "serve/client.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/trace.h"
#include "util/metrics.h"

namespace hipads {

namespace {

// Flips the socket to non-blocking mode; every later transfer polls
// against the call's deadline instead of parking in the kernel.
Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK) failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

// Finishes a non-blocking connect: wait for writability under the
// deadline, then read the socket-level result out of SO_ERROR.
Status AwaitConnect(int fd, const Deadline& deadline) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  for (;;) {
    int timeout = -1;
    if (deadline.has_deadline()) {
      uint64_t remaining = deadline.RemainingMs();
      if (remaining == 0) {
        return Status::DeadlineExceeded("connect timed out");
      }
      timeout = remaining > static_cast<uint64_t>(
                                std::numeric_limits<int>::max())
                    ? std::numeric_limits<int>::max()
                    : static_cast<int>(remaining);
    }
    int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll failed: " +
                             std::string(std::strerror(errno)));
    }
    if (rc == 0) return Status::DeadlineExceeded("connect timed out");
    break;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return Status::IOError("getsockopt(SO_ERROR) failed: " +
                           std::string(std::strerror(errno)));
  }
  if (err != 0) {
    return Status::IOError("connect failed: " +
                           std::string(std::strerror(err)));
  }
  return Status::Ok();
}

}  // namespace

Channel::~Channel() = default;

Status LoopbackChannel::Call(std::string_view request_frame, Frame* response,
                             const Deadline& deadline) {
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("deadline expired before dispatch");
  }
  bool close_connection = false;
  std::string response_frame =
      handler_->HandleFrame(request_frame, &close_connection);
  auto decoded = DecodeFrame(response_frame);
  if (!decoded.ok()) return decoded.status();
  *response = std::move(decoded).value();
  return Status::Ok();
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("address '" + address +
                                   "' is not host:port");
  }
  const char* begin = address.c_str() + colon + 1;
  char* end = nullptr;
  unsigned long value = std::strtoul(begin, &end, 10);
  if (end == begin || *end != '\0' || value == 0 || value > 65535) {
    return Status::InvalidArgument("bad port in address '" + address + "'");
  }
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

StatusOr<std::unique_ptr<TcpChannel>> TcpChannel::ConnectAddress(
    const std::string& address, const TcpChannelOptions& options) {
  std::string host;
  uint16_t port = 0;
  Status s = ParseHostPort(address, &host, &port);
  if (!s.ok()) return s;
  return Connect(host, port, options);
}

StatusOr<std::unique_ptr<TcpChannel>> TcpChannel::Connect(
    const std::string& host, uint16_t port, const TcpChannelOptions& options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::IOError("cannot resolve " + host + ": " +
                           gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError("socket failed: " +
                             std::string(std::strerror(errno)));
      continue;
    }
    Status s = SetNonBlocking(fd);
    if (s.ok()) {
      if (options.nodelay) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      Deadline connect_deadline =
          options.connect_timeout_ms > 0
              ? Deadline::AfterMs(options.connect_timeout_ms)
              : Deadline();
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        // Connected instantly (loopback).
      } else if (errno == EINPROGRESS) {
        s = AwaitConnect(fd, connect_deadline);
      } else {
        s = Status::IOError("cannot connect: " +
                            std::string(std::strerror(errno)));
      }
    }
    if (s.ok()) {
      ::freeaddrinfo(result);
      static MetricCounter* connects =
          MetricsRegistry::Get().Counter("client.tcp.connects");
      connects->Add();
      return std::unique_ptr<TcpChannel>(new TcpChannel(fd, options));
    }
    std::string msg =
        "cannot connect to " + host + ":" + port_str + ": " + s.message();
    last = s.code() == Status::Code::kDeadlineExceeded
               ? Status::DeadlineExceeded(std::move(msg))
               : Status::IOError(std::move(msg));
    ::close(fd);
  }
  ::freeaddrinfo(result);
  return last;
}

namespace {

// Header length of a locally-encoded frame: the version field sits at
// byte 8 of every header prefix and decides which extensions follow.
size_t EncodedHeaderBytes(std::string_view frame) {
  if (frame.size() < kFrameHeaderBytes) return frame.size();
  uint32_t version = 0;
  std::memcpy(&version, frame.data() + sizeof(kWireMagic), sizeof(version));
  size_t header = FrameHeaderBytesForVersion(version);
  return header > frame.size() ? frame.size() : header;
}

}  // namespace

Status TcpChannel::Call(std::string_view request_frame, Frame* response,
                        const Deadline& deadline) {
  Deadline effective = deadline;
  if (options_.io_timeout_ms > 0) {
    effective =
        Deadline::Min(effective, Deadline::AfterMs(options_.io_timeout_ms));
  }
  if (effective.Expired()) {
    return Status::DeadlineExceeded("deadline expired before send");
  }
  if (options_.pipeline) {
    return CallPipelined(request_frame, response, effective);
  }
  MutexLock lock(mu_);
  Status s = WriteAllBytes(fd_, request_frame.data(), request_frame.size(),
                           effective);
  if (!s.ok()) return s;
  auto frame = ReadFrame(fd_, effective);
  if (!frame.ok()) return frame.status();
  *response = std::move(frame).value();
  return Status::Ok();
}

Status TcpChannel::CallPipelined(std::string_view request_frame,
                                 Frame* response, const Deadline& deadline) {
  // In-flight depth of the pipeline, scraped as a gauge: incremented once
  // the frame is on the wire, decremented when its turn resolves (response
  // read, error, or abandoned turn — the RAII guard covers every exit).
  static MetricGauge* in_flight =
      MetricsRegistry::Get().Gauge("client.tcp.pipelined_in_flight");
  struct InFlightGuard {
    MetricGauge* gauge = nullptr;
    ~InFlightGuard() {
      if (gauge != nullptr) gauge->Add(-1);
    }
  } guard;
  uint64_t ticket = 0;
  {
    // Claim a ticket and put the frame on the wire; write order is ticket
    // order, which is the order the server will answer in.
    MutexLock lock(write_mu_);
    if (broken_.load(std::memory_order_acquire)) {
      return Status::IOError(
          "pipelined channel broken by an earlier failure; reconnect");
    }
    ticket = next_ticket_++;
    size_t header = EncodedHeaderBytes(request_frame);
    Status s = WriteFrameVectored(fd_, request_frame.substr(0, header),
                                  request_frame.substr(header), deadline);
    if (!s.ok()) {
      // The peer may have seen a partial frame; nothing sent after this
      // point can be paired up reliably.
      broken_.store(true, std::memory_order_release);
      MutexLock waiters(read_mu_);
      read_cv_.NotifyAll();
      return s;
    }
    in_flight->Add(1);
    guard.gauge = in_flight;
  }
  MutexLock lock(read_mu_);
  while (read_turn_ != ticket && !broken_.load(std::memory_order_acquire)) {
    if (!deadline.has_deadline()) {
      read_cv_.Wait(read_mu_);
      continue;
    }
    if (read_cv_.WaitUntil(read_mu_, deadline.at()) ==
            std::cv_status::timeout &&
        read_turn_ != ticket) {
      // The request is already on the wire and its response slot cannot
      // be skipped (every later response would pair with the wrong
      // caller), so an abandoned turn poisons the whole connection.
      broken_.store(true, std::memory_order_release);
      read_cv_.NotifyAll();
      return Status::DeadlineExceeded(
          "deadline expired awaiting the pipelined response turn");
    }
  }
  if (broken_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "pipelined channel broken by an earlier failure; reconnect");
  }
  Status s = ReadFrameInto(fd_, deadline, &read_frame_);
  if (!s.ok()) {
    broken_.store(true, std::memory_order_release);
    read_cv_.NotifyAll();
    return s;
  }
  response->type = read_frame_.type;
  response->version = read_frame_.version;
  response->deadline_ms = read_frame_.deadline_ms;
  response->trace_hi = read_frame_.trace_hi;
  response->trace_lo = read_frame_.trace_lo;
  // Copy (not move) out of the connection-owned buffer, so its capacity
  // keeps amortizing socket reads across calls.
  response->payload = read_frame_.payload;
  ++read_turn_;
  read_cv_.NotifyAll();
  return Status::Ok();
}

StatusOr<Frame> AdsClient::Call(MessageType type, std::string payload,
                                MessageType expected_response) {
  if (deadline_.Expired()) {
    return Status::DeadlineExceeded("client deadline expired before send");
  }
  // A thread handling a traced request propagates its trace id to every
  // downstream hop by lifting the frame to wire v4; untraced calls stay on
  // v3 so their bytes are identical to a build with tracing compiled away.
  const TraceId trace = CurrentTraceId();
  const uint32_t version = trace.active() ? kWireVersionTrace : kWireVersion;
  Frame frame;
  Status s = channel_->Call(EncodeFrame(type, payload, deadline_.ToWireMs(),
                                        version, trace.hi, trace.lo),
                            &frame, deadline_);
  if (!s.ok()) return s;
  if (frame.type == MessageType::kError) {
    return DecodeError(frame.payload);
  }
  if (frame.type != expected_response) {
    return Status::Corruption("unexpected response frame type");
  }
  return frame;
}

StatusOr<ServerInfoMsg> AdsClient::Info() {
  auto frame = Call(MessageType::kInfoRequest, "", MessageType::kInfoResponse);
  if (!frame.ok()) return frame.status();
  return DecodeServerInfo(frame.value().payload);
}

StatusOr<PointResponseMsg> AdsClient::Point(const PointRequestMsg& request) {
  auto frame = Call(MessageType::kPointRequest, EncodePointRequest(request),
                    MessageType::kPointResponse);
  if (!frame.ok()) return frame.status();
  return DecodePointResponse(frame.value().payload);
}

StatusOr<std::vector<PointBatchResponseEntry>> AdsClient::PointBatch(
    const std::vector<PointRequestMsg>& requests) {
  std::vector<PointBatchResponseEntry> entries;
  entries.reserve(requests.size());
  // Frames are bounded at kMaxPointBatchEntries; larger batches split into
  // consecutive frames over the same channel. An empty request list still
  // round-trips one empty frame, so the caller learns the endpoint speaks
  // v3 rather than silently succeeding.
  size_t begin = 0;
  do {
    size_t count = std::min(kMaxPointBatchEntries, requests.size() - begin);
    PointBatchRequestMsg chunk;
    chunk.entries.assign(requests.begin() + begin,
                         requests.begin() + begin + count);
    auto frame = Call(MessageType::kPointBatchRequest,
                      EncodePointBatchRequest(chunk),
                      MessageType::kPointBatchResponse);
    if (!frame.ok()) return frame.status();
    auto decoded = DecodePointBatchResponse(frame.value().payload);
    if (!decoded.ok()) return decoded.status();
    if (decoded.value().entries.size() != count) {
      return Status::Corruption(
          "batch response entry count does not match the request");
    }
    for (PointBatchResponseEntry& e : decoded.value().entries) {
      entries.push_back(std::move(e));
    }
    begin += count;
  } while (begin < requests.size());
  return entries;
}

StatusOr<SweepResponseMsg> AdsClient::Sweep(const SweepRequestMsg& request) {
  auto frame = Call(MessageType::kSweepRequest, EncodeSweepRequest(request),
                    MessageType::kSweepResponse);
  if (!frame.ok()) return frame.status();
  return DecodeSweepResponse(frame.value().payload);
}

StatusOr<StatsResponseMsg> AdsClient::Stats(uint32_t flags) {
  StatsRequestMsg request;
  request.flags = flags;
  auto frame = Call(MessageType::kStatsRequest, EncodeStatsRequest(request),
                    MessageType::kStatsResponse);
  if (!frame.ok()) return frame.status();
  return DecodeStatsResponse(frame.value().payload);
}

Status ExecuteRemoteSweep(Channel& channel, const SweepRequestMsg& request,
                          uint64_t total_nodes,
                          const std::vector<SweepCollector*>& collectors,
                          const Deadline& deadline) {
  AdsClient client(&channel, deadline);
  auto response = client.Sweep(request);
  if (!response.ok()) return response.status();
  if (response.value().begin != 0 || response.value().end != total_nodes) {
    return Status::InvalidArgument(
        "endpoint serves nodes [" + std::to_string(response.value().begin) +
        ", " + std::to_string(response.value().end) +
        "), not the full set — run sweeps through a fleet router");
  }
  for (SweepCollector* c : collectors) c->Begin(total_nodes);
  return AbsorbSweepResponse(response.value(), collectors);
}

}  // namespace hipads
