#include "serve/client.h"

#include <cstdlib>
#include <cstring>
#include <limits>

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hipads {

namespace {

// Flips the socket to non-blocking mode; every later transfer polls
// against the call's deadline instead of parking in the kernel.
Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK) failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

// Finishes a non-blocking connect: wait for writability under the
// deadline, then read the socket-level result out of SO_ERROR.
Status AwaitConnect(int fd, const Deadline& deadline) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  for (;;) {
    int timeout = -1;
    if (deadline.has_deadline()) {
      uint64_t remaining = deadline.RemainingMs();
      if (remaining == 0) {
        return Status::DeadlineExceeded("connect timed out");
      }
      timeout = remaining > static_cast<uint64_t>(
                                std::numeric_limits<int>::max())
                    ? std::numeric_limits<int>::max()
                    : static_cast<int>(remaining);
    }
    int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll failed: " +
                             std::string(std::strerror(errno)));
    }
    if (rc == 0) return Status::DeadlineExceeded("connect timed out");
    break;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return Status::IOError("getsockopt(SO_ERROR) failed: " +
                           std::string(std::strerror(errno)));
  }
  if (err != 0) {
    return Status::IOError("connect failed: " +
                           std::string(std::strerror(err)));
  }
  return Status::Ok();
}

}  // namespace

Channel::~Channel() = default;

Status LoopbackChannel::Call(std::string_view request_frame, Frame* response,
                             const Deadline& deadline) {
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("deadline expired before dispatch");
  }
  bool close_connection = false;
  std::string response_frame =
      handler_->HandleFrame(request_frame, &close_connection);
  auto decoded = DecodeFrame(response_frame);
  if (!decoded.ok()) return decoded.status();
  *response = std::move(decoded).value();
  return Status::Ok();
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("address '" + address +
                                   "' is not host:port");
  }
  const char* begin = address.c_str() + colon + 1;
  char* end = nullptr;
  unsigned long value = std::strtoul(begin, &end, 10);
  if (end == begin || *end != '\0' || value == 0 || value > 65535) {
    return Status::InvalidArgument("bad port in address '" + address + "'");
  }
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

StatusOr<std::unique_ptr<TcpChannel>> TcpChannel::ConnectAddress(
    const std::string& address, const TcpChannelOptions& options) {
  std::string host;
  uint16_t port = 0;
  Status s = ParseHostPort(address, &host, &port);
  if (!s.ok()) return s;
  return Connect(host, port, options);
}

StatusOr<std::unique_ptr<TcpChannel>> TcpChannel::Connect(
    const std::string& host, uint16_t port, const TcpChannelOptions& options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::IOError("cannot resolve " + host + ": " +
                           gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError("socket failed: " +
                             std::string(std::strerror(errno)));
      continue;
    }
    Status s = SetNonBlocking(fd);
    if (s.ok()) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Deadline connect_deadline =
          options.connect_timeout_ms > 0
              ? Deadline::AfterMs(options.connect_timeout_ms)
              : Deadline();
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        // Connected instantly (loopback).
      } else if (errno == EINPROGRESS) {
        s = AwaitConnect(fd, connect_deadline);
      } else {
        s = Status::IOError("cannot connect: " +
                            std::string(std::strerror(errno)));
      }
    }
    if (s.ok()) {
      ::freeaddrinfo(result);
      return std::unique_ptr<TcpChannel>(new TcpChannel(fd, options));
    }
    std::string msg =
        "cannot connect to " + host + ":" + port_str + ": " + s.message();
    last = s.code() == Status::Code::kDeadlineExceeded
               ? Status::DeadlineExceeded(std::move(msg))
               : Status::IOError(std::move(msg));
    ::close(fd);
  }
  ::freeaddrinfo(result);
  return last;
}

Status TcpChannel::Call(std::string_view request_frame, Frame* response,
                        const Deadline& deadline) {
  Deadline effective = deadline;
  if (options_.io_timeout_ms > 0) {
    effective =
        Deadline::Min(effective, Deadline::AfterMs(options_.io_timeout_ms));
  }
  if (effective.Expired()) {
    return Status::DeadlineExceeded("deadline expired before send");
  }
  MutexLock lock(mu_);
  Status s = WriteAllBytes(fd_, request_frame.data(), request_frame.size(),
                           effective);
  if (!s.ok()) return s;
  auto frame = ReadFrame(fd_, effective);
  if (!frame.ok()) return frame.status();
  *response = std::move(frame).value();
  return Status::Ok();
}

StatusOr<Frame> AdsClient::Call(MessageType type, std::string payload,
                                MessageType expected_response) {
  if (deadline_.Expired()) {
    return Status::DeadlineExceeded("client deadline expired before send");
  }
  Frame frame;
  Status s = channel_->Call(
      EncodeFrame(type, payload, deadline_.ToWireMs()), &frame, deadline_);
  if (!s.ok()) return s;
  if (frame.type == MessageType::kError) {
    return DecodeError(frame.payload);
  }
  if (frame.type != expected_response) {
    return Status::Corruption("unexpected response frame type");
  }
  return frame;
}

StatusOr<ServerInfoMsg> AdsClient::Info() {
  auto frame = Call(MessageType::kInfoRequest, "", MessageType::kInfoResponse);
  if (!frame.ok()) return frame.status();
  return DecodeServerInfo(frame.value().payload);
}

StatusOr<PointResponseMsg> AdsClient::Point(const PointRequestMsg& request) {
  auto frame = Call(MessageType::kPointRequest, EncodePointRequest(request),
                    MessageType::kPointResponse);
  if (!frame.ok()) return frame.status();
  return DecodePointResponse(frame.value().payload);
}

StatusOr<SweepResponseMsg> AdsClient::Sweep(const SweepRequestMsg& request) {
  auto frame = Call(MessageType::kSweepRequest, EncodeSweepRequest(request),
                    MessageType::kSweepResponse);
  if (!frame.ok()) return frame.status();
  return DecodeSweepResponse(frame.value().payload);
}

Status ExecuteRemoteSweep(Channel& channel, const SweepRequestMsg& request,
                          uint64_t total_nodes,
                          const std::vector<SweepCollector*>& collectors,
                          const Deadline& deadline) {
  AdsClient client(&channel, deadline);
  auto response = client.Sweep(request);
  if (!response.ok()) return response.status();
  if (response.value().begin != 0 || response.value().end != total_nodes) {
    return Status::InvalidArgument(
        "endpoint serves nodes [" + std::to_string(response.value().begin) +
        ", " + std::to_string(response.value().end) +
        "), not the full set — run sweeps through a fleet router");
  }
  for (SweepCollector* c : collectors) c->Begin(total_nodes);
  return AbsorbSweepResponse(response.value(), collectors);
}

}  // namespace hipads
