#include "serve/client.h"

#include <cstdlib>
#include <cstring>

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hipads {

Channel::~Channel() = default;

Status LoopbackChannel::Call(std::string_view request_frame,
                             Frame* response) {
  bool close_connection = false;
  std::string response_frame =
      handler_->HandleFrame(request_frame, &close_connection);
  auto decoded = DecodeFrame(response_frame);
  if (!decoded.ok()) return decoded.status();
  *response = std::move(decoded).value();
  return Status::Ok();
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("address '" + address +
                                   "' is not host:port");
  }
  const char* begin = address.c_str() + colon + 1;
  char* end = nullptr;
  unsigned long value = std::strtoul(begin, &end, 10);
  if (end == begin || *end != '\0' || value == 0 || value > 65535) {
    return Status::InvalidArgument("bad port in address '" + address + "'");
  }
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

StatusOr<std::unique_ptr<TcpChannel>> TcpChannel::ConnectAddress(
    const std::string& address) {
  std::string host;
  uint16_t port = 0;
  Status s = ParseHostPort(address, &host, &port);
  if (!s.ok()) return s;
  return Connect(host, port);
}

StatusOr<std::unique_ptr<TcpChannel>> TcpChannel::Connect(
    const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::IOError("cannot resolve " + host + ": " +
                           gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError("socket failed: " +
                             std::string(std::strerror(errno)));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(result);
      return std::unique_ptr<TcpChannel>(new TcpChannel(fd));
    }
    last = Status::IOError("cannot connect to " + host + ":" + port_str +
                           ": " + std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(result);
  return last;
}

Status TcpChannel::Call(std::string_view request_frame, Frame* response) {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = WriteAllBytes(fd_, request_frame.data(), request_frame.size());
  if (!s.ok()) return s;
  auto frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  *response = std::move(frame).value();
  return Status::Ok();
}

StatusOr<Frame> AdsClient::Call(MessageType type, std::string payload,
                                MessageType expected_response) {
  Frame frame;
  Status s = channel_->Call(EncodeFrame(type, payload), &frame);
  if (!s.ok()) return s;
  if (frame.type == MessageType::kError) {
    return DecodeError(frame.payload);
  }
  if (frame.type != expected_response) {
    return Status::Corruption("unexpected response frame type");
  }
  return frame;
}

StatusOr<ServerInfoMsg> AdsClient::Info() {
  auto frame = Call(MessageType::kInfoRequest, "", MessageType::kInfoResponse);
  if (!frame.ok()) return frame.status();
  return DecodeServerInfo(frame.value().payload);
}

StatusOr<PointResponseMsg> AdsClient::Point(const PointRequestMsg& request) {
  auto frame = Call(MessageType::kPointRequest, EncodePointRequest(request),
                    MessageType::kPointResponse);
  if (!frame.ok()) return frame.status();
  return DecodePointResponse(frame.value().payload);
}

StatusOr<SweepResponseMsg> AdsClient::Sweep(const SweepRequestMsg& request) {
  auto frame = Call(MessageType::kSweepRequest, EncodeSweepRequest(request),
                    MessageType::kSweepResponse);
  if (!frame.ok()) return frame.status();
  return DecodeSweepResponse(frame.value().payload);
}

Status ExecuteRemoteSweep(Channel& channel, const SweepRequestMsg& request,
                          uint64_t total_nodes,
                          const std::vector<SweepCollector*>& collectors) {
  AdsClient client(&channel);
  auto response = client.Sweep(request);
  if (!response.ok()) return response.status();
  if (response.value().begin != 0 || response.value().end != total_nodes) {
    return Status::InvalidArgument(
        "endpoint serves nodes [" + std::to_string(response.value().begin) +
        ", " + std::to_string(response.value().end) +
        "), not the full set — run sweeps through a fleet router");
  }
  for (SweepCollector* c : collectors) c->Begin(total_nodes);
  return AbsorbSweepResponse(response.value(), collectors);
}

}  // namespace hipads
