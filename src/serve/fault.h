// Fault injection for the serving stack.
//
// Robustness code that is only exercised by real network failures is
// untested code. This harness wraps the two seams every request crosses —
// the client-side Channel and the server-side FrameHandler — with
// deterministic, scriptable failure modes, so tests can assert that every
// degradation path (dropped connections, stalls, truncated or corrupted
// responses, shed requests) ends in a clean error or a correct
// retried/hedged result, never a hang and never silent corruption.
//
// Faults are matched by call index (0-based, counted per wrapper), so a
// script like "fail calls 0 and 1, succeed from 2" is one rule — exactly
// the shape retry tests need. All state is seeded/deterministic: the same
// test run injects the same faults.

#ifndef HIPADS_SERVE_FAULT_H_
#define HIPADS_SERVE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/status.h"

namespace hipads {

/// What an injected fault does to the call it fires on.
enum class FaultKind : uint32_t {
  /// Fail with IOError without delivering the request ("connection died").
  kDrop = 1,
  /// Deliver normally, but only after param_ms of latency.
  kDelay = 2,
  /// Hold the call until its deadline expires, then fail with
  /// DeadlineExceeded — a wedged peer under a working TCP connection.
  /// Calls without a deadline stall for param_ms, then fail with IOError
  /// (the harness never hangs a test forever).
  kStall = 3,
  /// Deliver the request, then lose the response: the caller sees IOError
  /// ("connection closed mid-response"). Side effects DID happen on the
  /// server — the mode that flushes out non-idempotent handling.
  kCloseMidResponse = 4,
  /// Deliver the request, then flip one byte of the response frame. The
  /// checksum must turn this into a clean Corruption error downstream.
  kCorrupt = 5,
  /// Answer with an injected error status (kUnavailable), as a shedding
  /// server would.
  kShed = 6,
};

/// One scripted fault: fires on calls with first_call <= index <
/// first_call + count.
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  /// First call index the rule applies to.
  uint64_t first_call = 0;
  /// How many consecutive calls it applies to (UINT64_MAX = forever).
  uint64_t count = 1;
  /// kDelay / kStall: milliseconds.
  uint64_t param_ms = 0;
};

/// A Channel decorator injecting faults on the client side of the wire.
/// Thread-safe; the call counter is shared across threads (each Call
/// claims the next index atomically).
class FaultInjectionChannel : public Channel {
 public:
  /// Borrows `inner`, which must outlive this wrapper.
  FaultInjectionChannel(Channel* inner, std::vector<FaultRule> rules)
      : inner_(inner), rules_(std::move(rules)) {}

  using Channel::Call;
  Status Call(std::string_view request_frame, Frame* response,
              const Deadline& deadline) override;

  /// Calls attempted so far (fired or passed through).
  uint64_t calls() const { return calls_.load(); }

 private:
  Channel* inner_;
  std::vector<FaultRule> rules_;
  std::atomic<uint64_t> calls_{0};
};

/// A FrameHandler decorator injecting faults on the server side, so TCP
/// and loopback transports alike can be made to misbehave underneath a
/// healthy connection: stalled handlers, corrupted response bytes,
/// truncated responses (kCloseMidResponse returns a prefix of the frame
/// and asks the transport to drop the connection).
class FlakyFrameHandler : public FrameHandler {
 public:
  FlakyFrameHandler(FrameHandler* inner, std::vector<FaultRule> rules)
      : inner_(inner), rules_(std::move(rules)) {}

  std::string HandleFrame(std::string_view request,
                          bool* close_connection) override;

  uint64_t calls() const { return calls_.load(); }

 private:
  FrameHandler* inner_;
  std::vector<FaultRule> rules_;
  std::atomic<uint64_t> calls_{0};
};

/// The rule (if any) firing on call `index`; nullptr when the call should
/// pass through clean. First matching rule wins.
const FaultRule* MatchFault(const std::vector<FaultRule>& rules,
                            uint64_t index);

}  // namespace hipads

#endif  // HIPADS_SERVE_FAULT_H_
