// The serving processes of the distributed subsystem.
//
// A range server owns an AdsBackend — any engine: in-memory arena, zero-
// copy mmap, sharded-with-prefetch — holding the sketches of one
// contiguous global node range, and answers the wire protocol
// (serve/protocol.h) over it:
//
//   AdsServerCore  transport-free request dispatch: one request frame in,
//                  one response frame out. This is the piece the loopback
//                  transport, the fuzz suite and the TCP server all share,
//                  so the full protocol surface is testable deterministically
//                  without a socket in sight.
//   TcpServer      a thread-pooled TCP front end: N worker threads accept
//                  connections and pump frames through a FrameHandler.
//
// The node-id split: a range server launched with node_begin B serves
// global nodes [B, B + backend.num_nodes()). Shard files written by
// WriteShardedAdsSet are complete, independently loadable ADS files whose
// local node i is global node begin + i (entry target ids stay global), so
// a fleet is deployed by pointing each server at a shard file (or sharded
// subdirectory) with the matching --node-begin offset. Sweep responses are
// labeled with the global range; per-node statistics depend only on the
// node's own sketch, so the relabeling is exact.

#ifndef HIPADS_SERVE_SERVER_H_
#define HIPADS_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ads/backend.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace hipads {

/// Transport-free request endpoint: turns one request frame into one
/// response frame. Implementations must never crash on malformed input —
/// frames arrive from the network.
class FrameHandler {
 public:
  virtual ~FrameHandler();

  /// Handles one frame. Always returns a complete response frame (kError
  /// for anything invalid). Sets *close_connection when the byte stream
  /// can no longer be trusted (undecodable frame: once framing is lost,
  /// every subsequent byte is garbage), telling a streaming transport to
  /// drop the connection after sending the response.
  /// Safe to call from multiple threads concurrently.
  virtual std::string HandleFrame(std::string_view request,
                                  bool* close_connection) = 0;
};

/// Serving options for AdsServerCore.
struct ServerOptions {
  /// Global node id of the backend's local node 0.
  NodeId node_begin = 0;
  /// Threads per sweep (0 = hardware count). Bitwise-neutral.
  uint32_t num_threads = 1;
};

/// The request dispatcher of a range server. Borrows the backend, which
/// must outlive the core. Backend access is serialized internally (the
/// AdsBackend contract leaves lazily-loading engines externally
/// serialized); sweep parallelism comes from the sweep executor's own
/// pool, so concurrent connections queue on the backend, not on compute
/// slots inside it.
class AdsServerCore : public FrameHandler {
 public:
  AdsServerCore(const AdsBackend* backend, const ServerOptions& options);

  std::string HandleFrame(std::string_view request,
                          bool* close_connection) override;

  /// The info this server reports (also used by fleet validation).
  ServerInfoMsg Info() const;

 private:
  StatusOr<Frame> Dispatch(const Frame& request);
  StatusOr<Frame> HandlePoint(const PointRequestMsg& msg);
  StatusOr<Frame> HandleSweep(const SweepRequestMsg& msg);

  const AdsBackend* backend_;
  ServerOptions options_;
  mutable std::mutex mu_;  // serializes backend access across connections
};

/// Options for TcpServer.
struct TcpServerOptions {
  /// Port to bind (0 = ephemeral; read the chosen one back via port()).
  uint16_t port = 0;
  /// Concurrent connections served (worker threads accepting on the shared
  /// listening socket); further connections wait in the listen backlog.
  uint32_t num_workers = 4;
};

/// Thread-pooled TCP transport around a FrameHandler. Start() binds and
/// spawns the workers; Stop() (or destruction) shuts the listener down and
/// joins them. Connections are served frame-by-frame until the peer closes
/// or a handler reports loss of framing.
class TcpServer {
 public:
  TcpServer(FrameHandler* handler, const TcpServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  Status Start();
  void Stop();

  /// The bound port (valid after Start; resolves port 0 requests).
  uint16_t port() const { return port_; }

 private:
  void WorkerLoop();
  void ServeConnection(int fd);
  bool WaitReadable(int fd);  // false once Stop is signaled

  FrameHandler* handler_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  // self-pipe waking workers out of poll
  uint16_t port_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace hipads

#endif  // HIPADS_SERVE_SERVER_H_
