// The serving processes of the distributed subsystem.
//
// A range server owns an AdsBackend — any engine: in-memory arena, zero-
// copy mmap, sharded-with-prefetch — holding the sketches of one
// contiguous global node range, and answers the wire protocol
// (serve/protocol.h) over it:
//
//   AdsServerCore  transport-free request dispatch: one request frame in,
//                  one response frame out. This is the piece the loopback
//                  transport, the fuzz suite and the TCP server all share,
//                  so the full protocol surface is testable deterministically
//                  without a socket in sight.
//   TcpServer      a thread-pooled TCP front end: N worker threads accept
//                  connections and pump frames through a FrameHandler.
//
// Concurrency: when the backend reports ImmutableReads() — flat arenas and
// mmap sets — the core runs LOCK-FREE: any number of point lookups and
// whole-range sweeps execute concurrently with no serialization at all
// (results are bitwise deterministic either way, so overlap is invisible).
// Serialized engines (ShardedAdsSet's lazy residency) keep a mutex, and
// point lookups arriving while a sweep holds the backend are SHED with
// Unavailable instead of queueing behind minutes of compute — the caller's
// retry policy (serve/router.h) turns that into bounded extra latency.
// Both modes sit behind small LRU response caches, so repeated cheap
// lookups never touch the backend at all.
//
// The node-id split: a range server launched with node_begin B serves
// global nodes [B, B + backend.num_nodes()). Shard files written by
// WriteShardedAdsSet are complete, independently loadable ADS files whose
// local node i is global node begin + i (entry target ids stay global), so
// a fleet is deployed by pointing each server at a shard file (or sharded
// subdirectory) with the matching --node-begin offset. Sweep responses are
// labeled with the global range; per-node statistics depend only on the
// node's own sketch, so the relabeling is exact.

#ifndef HIPADS_SERVE_SERVER_H_
#define HIPADS_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ads/backend.h"
#include "ads/estimators.h"
#include "serve/protocol.h"
#include "util/annotations.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"

namespace hipads {

/// Transport-free request endpoint: turns one request frame into one
/// response frame. Implementations must never crash on malformed input —
/// frames arrive from the network.
class FrameHandler {
 public:
  virtual ~FrameHandler();

  /// Handles one frame. Always returns a complete response frame (kError
  /// for anything invalid). Sets *close_connection when the byte stream
  /// can no longer be trusted (undecodable frame: once framing is lost,
  /// every subsequent byte is garbage), telling a streaming transport to
  /// drop the connection after sending the response.
  /// Safe to call from multiple threads concurrently.
  virtual std::string HandleFrame(std::string_view request,
                                  bool* close_connection) = 0;
};

/// Bounded, thread-safe LRU mapping request bytes to response bytes.
/// Every answer a serving backend can give is immutable (sketches never
/// change once loaded), so cached responses never go stale; the cache
/// exists so a repeated cheap lookup is served without touching the
/// backend — including while a whole-graph sweep holds a serialized
/// backend busy. Capacity 0 disables it.
class ResponseCache {
 public:
  /// `metric_prefix` names this cache in the metrics registry: hits and
  /// misses surface as `<prefix>.hits` / `<prefix>.misses` in scrapes.
  ResponseCache(size_t capacity, std::string metric_prefix)
      : hits_(metric_prefix + ".hits"),
        misses_(metric_prefix + ".misses"),
        capacity_(capacity) {}

  /// Copies the cached response into *value and refreshes recency.
  bool Get(const std::string& key, std::string* value);
  void Put(const std::string& key, std::string value);

  /// Lifetime hit count — observability for tests asserting that batched
  /// and single-request paths share one cache. Backed by the registry
  /// counter, so a wire scrape and this accessor can never disagree.
  uint64_t hits() const { return hits_.value(); }

 private:
  using Entry = std::pair<std::string, std::string>;  // key, response

  Mutex mu_;
  RegisteredCounter hits_;
  RegisteredCounter misses_;
  // Immutable after construction: Put reads it before taking mu_ for its
  // capacity-0 fast path, which is only race-free because nothing ever
  // writes it again (const makes that a compiler guarantee, not a habit).
  const size_t capacity_;
  std::list<Entry> lru_ HIPADS_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      HIPADS_GUARDED_BY(mu_);
};

/// Serving options for AdsServerCore.
struct ServerOptions {
  /// Global node id of the backend's local node 0.
  NodeId node_begin = 0;
  /// Threads per sweep (0 = hardware count). Bitwise-neutral.
  uint32_t num_threads = 1;
  /// Entries in the point-result LRU, keyed by exact request payload
  /// bytes (0 disables).
  uint32_t point_cache_entries = 1024;
  /// Entries in the sweep-response LRU, keyed by the canonical spec
  /// encoding (SweepSpecCacheKey, thread-count excluded; 0 disables).
  uint32_t sweep_cache_entries = 4;
  /// Time source for deadline evaluation. Null = the real steady clock;
  /// tests inject a fake to exercise expired-deadline shedding
  /// deterministically.
  std::function<Deadline::Clock::time_point()> clock;
};

/// The request dispatcher of a range server. Borrows the backend, which
/// must outlive the core. Immutable-read backends are served lock-free;
/// serialized backends are guarded by an internal mutex with point-
/// lookup shedding (see the file comment). Requests carrying an expired
/// deadline are shed with DeadlineExceeded before touching the backend,
/// and an in-flight sweep aborts between node ranges once its request's
/// deadline passes — a fleet under deadline pressure sheds load instead
/// of computing answers nobody is waiting for.
class AdsServerCore : public FrameHandler {
 public:
  AdsServerCore(const AdsBackend* backend, const ServerOptions& options);

  std::string HandleFrame(std::string_view request,
                          bool* close_connection) override;

  /// The info this server reports (also used by fleet validation).
  ServerInfoMsg Info() const;

  /// Lifetime point-cache hit count (batched and single requests share the
  /// same cache; tests assert cross-shape hits through this).
  uint64_t point_cache_hits() const { return point_cache_.hits(); }

 private:
  StatusOr<Frame> Dispatch(const Frame& request, const Deadline& deadline);
  StatusOr<Frame> HandlePoint(const PointRequestMsg& msg,
                              const std::string& payload);
  StatusOr<Frame> HandlePointBatch(const PointBatchRequestMsg& msg);
  StatusOr<Frame> HandleSweep(const SweepRequestMsg& msg,
                              const Deadline& deadline);
  /// Answers a kStatsRequest with this process's registry snapshot
  /// (labeled "server") and, when asked, the buffered trace spans.
  StatusOr<Frame> HandleStats(const StatsRequestMsg& msg) const;
  /// Maps a global node id into the served range (the NotFound here is THE
  /// out-of-range answer — single and batched paths must fail with
  /// identical bytes).
  StatusOr<NodeId> LocalIdOf(uint64_t node) const;
  /// The actual point computation (lock, if any, held by the caller).
  StatusOr<std::string> ComputePoint(const PointRequestMsg& msg) const;
  /// Point computation against an already-fetched view. `hip` carries the
  /// node's storage-resident HIP weights when the backend has them
  /// (estimator materialization is then a pointer wrap); when absent the
  /// scan fallback runs into a per-thread scratch — both produce byte-
  /// identical responses. `est` caches the node's HipEstimator across
  /// consecutive same-node entries of a sorted batch (one materialization
  /// per distinct node).
  StatusOr<std::string> ComputePointWithView(
      const PointRequestMsg& msg, const AdsView& view, const HipView& hip,
      std::optional<HipEstimator>* est) const;
  /// Computes the `order`-listed entries of a batch (lock, if any, held by
  /// the caller). With share_scans set, `order` must be sorted by node:
  /// consecutive same-node entries then share one backend fetch and one
  /// estimator materialization, and consecutive *identical* entries reuse
  /// the previous result outright (responses are deterministic, so the
  /// copy is bitwise-equal to a recompute) — only safe on immutable-read
  /// backends, where a view survives fetching another node's.
  void ComputeBatchEntries(const PointBatchRequestMsg& msg,
                           const std::vector<size_t>& order, bool share_scans,
                           PointBatchResponseMsg* response) const;
  Deadline::Clock::time_point Now() const;

  const AdsBackend* backend_;
  ServerOptions options_;
  const bool lock_free_;  // backend_->ImmutableReads()
  // Serializes backend access on serialized engines. It guards the
  // *pointee* of backend_ — and only when !lock_free_, a runtime property
  // — so the guarded relation is enforced by the Dispatch call structure
  // (and the tsan lane), not by a GUARDED_BY the analysis could check.
  mutable Mutex mu_;
  // Admission signal for shedding; a registry gauge ("serve.active_sweeps")
  // so a scrape sees in-flight sweeps. NEVER gated on MetricsEnabled —
  // shedding decisions read it, so it is control flow, not telemetry.
  RegisteredGauge active_sweeps_{"serve.active_sweeps"};
  ResponseCache point_cache_;
  ResponseCache sweep_cache_;
};

/// Options for TcpServer.
struct TcpServerOptions {
  /// Port to bind (0 = ephemeral; read the chosen one back via port()).
  uint16_t port = 0;
  /// Concurrent connections served (worker threads accepting on the shared
  /// listening socket); further connections wait in the listen backlog.
  uint32_t num_workers = 4;
  /// Mid-frame stall bound: once the first byte of a frame has arrived,
  /// the rest of it (and the response write) must complete within this
  /// budget or the connection is dropped — a client stalled mid-frame
  /// (or a slow-loris) cannot pin a worker forever. Idle time BETWEEN
  /// frames stays unbounded. 0 = no bound.
  uint64_t idle_timeout_ms = 0;
  /// TCP_NODELAY on accepted connections. Responses are single complete
  /// frames — Nagle only adds a stall before the final short segment — so
  /// this defaults on; the toggle exists for latency tests to pin either
  /// behavior.
  bool nodelay = true;
};

/// Thread-pooled TCP transport around a FrameHandler. Start() binds and
/// spawns the workers; Stop() (or destruction) shuts the listener down and
/// joins them. Connections are served frame-by-frame until the peer closes
/// or a handler reports loss of framing.
class TcpServer {
 public:
  TcpServer(FrameHandler* handler, const TcpServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  Status Start();
  void Stop();

  /// The bound port (valid after Start; resolves port 0 requests).
  uint16_t port() const { return port_; }

 private:
  void WorkerLoop();
  void ServeConnection(int fd);
  /// False once Stop is signaled or the deadline passes.
  bool WaitReadable(int fd, const Deadline& deadline);

  FrameHandler* handler_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  // self-pipe waking workers out of poll
  uint16_t port_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace hipads

#endif  // HIPADS_SERVE_SERVER_H_
