#include "stream/hip_distinct.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

#include "util/hash.h"

namespace hipads {

HllHipCounter::HllHipCounter(uint32_t k, uint64_t seed, uint32_t register_cap)
    : k_(k),
      seed_(seed),
      register_cap_(register_cap),
      registers_(k, 0),
      probability_sum_(static_cast<double>(k)) {
  assert(k >= 1);
  assert(register_cap >= 1 && register_cap <= 63);
}

void HllHipCounter::Add(uint64_t element) {
  uint32_t bucket = BucketHash(seed_, element, k_);
  double r = UnitHash(seed_, element);
  uint32_t h = static_cast<uint32_t>(std::ceil(-std::log2(r)));
  if (h < 1) h = 1;
  if (h > register_cap_) h = register_cap_;
  uint8_t& reg = registers_[bucket];
  if (h <= reg) return;  // no sketch change (duplicates always land here)
  // HIP probability of this update, conditioned on the current registers
  // (Eq. 8): the element must land in a non-saturated bucket and beat its
  // minimum; tau = (1/k) sum over non-saturated i of 2^-M[i].
  double tau = probability_sum_ / static_cast<double>(k_);
  assert(tau > 0.0);
  count_ += 1.0 / tau;
  // Maintain the non-saturated probability mass.
  probability_sum_ -= std::ldexp(1.0, -static_cast<int>(reg));
  if (h < register_cap_) {
    probability_sum_ += std::ldexp(1.0, -static_cast<int>(h));
  }
  reg = static_cast<uint8_t>(h);
}

bool HllHipCounter::Saturated() const {
  for (uint8_t m : registers_) {
    if (m < register_cap_) return false;
  }
  return true;
}

BottomKHipCounter::BottomKHipCounter(uint32_t k, uint64_t seed, double base)
    : k_(k), seed_(seed), base_(base), sketch_(k, 1.0) {
  assert(k >= 1);
}

void BottomKHipCounter::Add(uint64_t element) {
  double r = UnitHash(seed_, element);
  if (base_ > 1.0) r = DiscretizeRank(r, base_);
  double tau = sketch_.Threshold();
  if (r >= tau) return;  // below-threshold ranks never update
  // With base-b ranks distinct elements may share a rank value; the strict
  // inequality rule means only the first of a colliding pair enters, and
  // tau (a power of 1/b) remains the exact update probability. Duplicates
  // of one element are filtered by id.
  if (!sketched_.insert(element).second) return;
  count_ += 1.0 / tau;  // P(update) = P(rank < tau) = tau for U[0,1) ranks
  sketch_.Update(r);
}

KMinsHipCounter::KMinsHipCounter(uint32_t k, uint64_t seed)
    : k_(k), seed_(seed), sketch_(k, 1.0) {
  assert(k >= 2);
}

void KMinsHipCounter::Add(uint64_t element) {
  // An update happens iff the element beats the minimum in at least one
  // permutation; tau = 1 - prod_h (1 - min_h)  (Eq. 7). Duplicates tie with
  // their own earlier rank and never update.
  double tau_miss = 1.0;
  bool updates = false;
  for (uint32_t h = 0; h < k_; ++h) {
    double m = sketch_.Min(h);
    tau_miss *= 1.0 - m;
    if (UnitHash(seed_ ^ (0x517cc1b727220a95ULL * (h + 1)), element) < m) {
      updates = true;
    }
  }
  if (!updates) return;
  double tau = 1.0 - tau_miss;
  assert(tau > 0.0);
  count_ += 1.0 / tau;
  for (uint32_t h = 0; h < k_; ++h) {
    sketch_.Update(
        h, UnitHash(seed_ ^ (0x517cc1b727220a95ULL * (h + 1)), element));
  }
}

PermutationDistinctCounter::PermutationDistinctCounter(
    uint32_t k, std::vector<uint32_t> perm)
    : k_(k),
      n_(perm.size()),
      perm_(std::move(perm)),
      sketch_(k, static_cast<double>(perm_.size()) + 1.0) {
  assert(k >= 1);
}

void PermutationDistinctCounter::Add(uint64_t element) {
  assert(element < n_);
  double rank = static_cast<double>(perm_[element]) + 1.0;
  if (sketch_.Contains(rank)) return;  // duplicate occurrence
  double mu = sketch_.Threshold();
  if (rank >= mu) return;  // rank does not beat the bottom-k threshold
  double w;
  if (sketch_.size() < k_) {
    w = 1.0;
  } else {
    w = (static_cast<double>(n_) - s_hat_ + 1.0) /
        (mu - static_cast<double>(k_) + 1.0);
  }
  s_hat_ += w;
  sketch_.Update(rank);
}

double PermutationDistinctCounter::Estimate() const {
  bool saturated = sketch_.size() == k_ &&
                   sketch_.Threshold() == static_cast<double>(k_);
  if (saturated) {
    return s_hat_ * (static_cast<double>(k_) + 1.0) /
               static_cast<double>(k_) -
           1.0;
  }
  return s_hat_;
}

}  // namespace hipads
