#include "stream/morris.h"

#include <cassert>
#include <cmath>

namespace hipads {

MorrisCounter::MorrisCounter(double base) : base_(base) {
  assert(base > 1.0);
}

void MorrisCounter::Add(double amount, Rng& rng) {
  assert(amount > 0.0);
  // Largest deterministic step: the maximum i such that raising x by i
  // increases the estimate by at most `amount` (Section 7):
  //   b^{x+i} - b^x <= amount  =>  i = floor(log_b(amount / b^x + 1)).
  double bx = std::pow(base_, static_cast<double>(x_));
  double i = std::floor(std::log(amount / bx + 1.0) / std::log(base_));
  if (i > 0.0) {
    x_ += static_cast<uint64_t>(i);
    bx *= std::pow(base_, i);
  }
  // Leftover below one step: probabilistic increment with probability
  // leftover / (estimate increase of one step), an inverse-probability
  // estimate of the leftover.
  double leftover = amount - (bx - std::pow(base_, static_cast<double>(x_) -
                                                       i));
  // bx is now b^x; one more step adds bx*(base-1).
  double step = bx * (base_ - 1.0);
  assert(leftover >= -1e-9 && leftover <= step * (1.0 + 1e-9));
  if (leftover > 0.0 && rng.NextBernoulli(leftover / step)) {
    x_ += 1;
  }
}

void MorrisCounter::Merge(const MorrisCounter& other, Rng& rng) {
  assert(base_ == other.base_);
  double amount = other.Estimate();
  if (amount > 0.0) Add(amount, rng);
}

double MorrisCounter::Estimate() const {
  return std::pow(base_, static_cast<double>(x_)) - 1.0;
}

}  // namespace hipads
