// All-distances sketches over data streams (paper Section 3.1).
//
// A stream of (element, time) entries is sketched with "distance" replaced
// by elapsed time. Two variants:
//   * FirstOccurrenceAds — distance = elapsed time from the start of the
//     stream to the element's FIRST occurrence (earlier elements are
//     emphasized). Equivalent to recording every MinHash-sketch update.
//   * RecentOccurrenceAds — distance = elapsed time from the element's MOST
//     RECENT occurrence to "now" (recent elements are emphasized; the basis
//     of time-decaying statistics).
//
// Both maintain bottom-k ADSs and expose them as the same Ads structure the
// graph estimators consume, so HIP applies unchanged with time in place of
// distance.

#ifndef HIPADS_STREAM_STREAM_ADS_H_
#define HIPADS_STREAM_STREAM_ADS_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "ads/ads.h"
#include "sketch/rank.h"

namespace hipads {

/// ADS over first occurrences, any sketch flavor. Entries must arrive in
/// non-decreasing time order.
class FirstOccurrenceAds {
 public:
  FirstOccurrenceAds(uint32_t k, const RankAssignment& ranks,
                     SketchFlavor flavor = SketchFlavor::kBottomK);

  /// Processes one stream entry; returns true iff the sketch was updated
  /// (the element's first occurrence beat the flavor's threshold in at
  /// least one permutation/bucket).
  bool Process(uint64_t element, double time);

  /// The accumulated ADS (time plays the role of distance). Pass the same
  /// (k, flavor, ranks) to HipEstimator to estimate prefix statistics.
  const Ads& ads() const { return ads_; }

  SketchFlavor flavor() const { return flavor_; }
  uint64_t num_processed() const { return num_processed_; }

 private:
  uint32_t k_;
  RankAssignment ranks_;
  SketchFlavor flavor_;
  BottomKSketch bottomk_;     // kBottomK state
  KMinsSketch kmins_;         // kKMins state
  KPartitionSketch kpart_;    // kKPartition state
  std::unordered_set<uint64_t> sketched_;  // elements already recorded
  Ads ads_;
  uint64_t num_processed_ = 0;
  double last_time_ = 0.0;
};

/// Bottom-k ADS over most-recent occurrences. `horizon` is the paper's T, a
/// time no smaller than any entry's time: ages are T - t. Entries must
/// arrive in non-decreasing time order.
class RecentOccurrenceAds {
 public:
  RecentOccurrenceAds(uint32_t k, const RankAssignment& ranks,
                      double horizon);

  /// Processes one stream entry. The newest entry always has the smallest
  /// age, so it is always inserted; older entries are re-filtered.
  void Process(uint64_t element, double time);

  /// Current ADS: entry distances are ages T - t(last occurrence of u).
  Ads SnapshotAds() const;

  size_t CurrentSize() const { return entries_.size(); }

 private:
  uint32_t k_;
  RankAssignment ranks_;
  double horizon_;
  // Entries sorted by increasing age (newest first); always canonical.
  std::vector<AdsEntry> entries_;
  double last_time_ = 0.0;
};

}  // namespace hipads

#endif  // HIPADS_STREAM_STREAM_ADS_H_
