// HyperLogLog approximate distinct counter (Flajolet, Fusy, Gandouet,
// Meunier 2007) — the paper's Section 6 baseline.
//
// The sketch is a k-partition MinHash sketch with base-2 ranks stored as
// 5-bit exponent registers. The raw estimator and the published small-range
// (linear counting) bias correction are implemented, so the bench can
// reproduce the paper's "HLLraw" and "HLL" series of Figure 3. The 32-bit
// large-range correction is omitted: ranks come from the 64-bit UnitHash,
// for which that correction is simply wrong (see Estimate()).

#ifndef HIPADS_STREAM_HLL_H_
#define HIPADS_STREAM_HLL_H_

#include <cstdint>
#include <vector>

namespace hipads {

class HyperLogLog {
 public:
  /// `k` registers (a power of two for the classic analysis, but any k >= 2
  /// works here); registers saturate at `register_cap` (31 for the 5-bit
  /// registers of the paper's comparison).
  explicit HyperLogLog(uint32_t k, uint64_t seed, uint32_t register_cap = 31);

  /// Reconstructs a sketch from stored register values (e.g. a serialized
  /// sketch, or a synthetic state in tests). `registers` must have size k;
  /// values above `register_cap` are clipped to it.
  static HyperLogLog FromRegisters(uint32_t k, uint64_t seed,
                                   std::vector<uint8_t> registers,
                                   uint32_t register_cap = 31);

  /// Observes an element; returns true iff a register grew.
  bool Add(uint64_t element);

  /// Raw estimator alpha_k k^2 / sum_i 2^{-M[i]}.
  double RawEstimate() const;

  /// Bias-corrected estimate: small-range linear counting when raw <= 2.5k
  /// and empty registers exist, the raw estimator otherwise. The published
  /// 32-bit large-range correction is deliberately omitted: ranks come from
  /// the 64-bit UnitHash, for which the 2^32 collision correction is wrong
  /// (it would go negative/NaN near and past 2^32).
  double Estimate() const;

  /// Merge by register-wise max (the standard HLL union).
  void Merge(const HyperLogLog& other);

  uint32_t k() const { return k_; }
  const std::vector<uint8_t>& registers() const { return registers_; }
  uint32_t NumZeroRegisters() const;

  /// The alpha_k constant of the raw estimator.
  static double Alpha(uint32_t k);

 private:
  uint32_t k_;
  uint64_t seed_;
  uint32_t register_cap_;
  std::vector<uint8_t> registers_;
};

}  // namespace hipads

#endif  // HIPADS_STREAM_HLL_H_
