#include "stream/hll.h"

#include <cassert>
#include <cmath>

#include "util/hash.h"

namespace hipads {

HyperLogLog::HyperLogLog(uint32_t k, uint64_t seed, uint32_t register_cap)
    : k_(k), seed_(seed), register_cap_(register_cap), registers_(k, 0) {
  assert(k >= 2);
  assert(register_cap >= 1 && register_cap <= 63);
}

HyperLogLog HyperLogLog::FromRegisters(uint32_t k, uint64_t seed,
                                       std::vector<uint8_t> registers,
                                       uint32_t register_cap) {
  HyperLogLog hll(k, seed, register_cap);
  assert(registers.size() == k);
  for (uint8_t& m : registers) {
    if (m > register_cap) m = static_cast<uint8_t>(register_cap);
  }
  hll.registers_ = std::move(registers);
  return hll;
}

bool HyperLogLog::Add(uint64_t element) {
  uint32_t bucket = BucketHash(seed_, element, k_);
  double r = UnitHash(seed_, element);
  // Base-2 rank exponent ceil(-log2 r), clipped to the register width
  // (h >= 1 always since r < 1).
  uint32_t h = static_cast<uint32_t>(std::ceil(-std::log2(r)));
  if (h < 1) h = 1;
  if (h > register_cap_) h = register_cap_;
  if (h > registers_[bucket]) {
    registers_[bucket] = static_cast<uint8_t>(h);
    return true;
  }
  return false;
}

double HyperLogLog::RawEstimate() const {
  double sum = 0.0;
  for (uint8_t m : registers_) sum += std::ldexp(1.0, -static_cast<int>(m));
  double kk = static_cast<double>(k_);
  return Alpha(k_) * kk * kk / sum;
}

double HyperLogLog::Estimate() const {
  double raw = RawEstimate();
  double kk = static_cast<double>(k_);
  if (raw <= 2.5 * kk) {
    uint32_t zeros = NumZeroRegisters();
    if (zeros != 0) {
      return kk * std::log(kk / static_cast<double>(zeros));
    }
    return raw;
  }
  // The published large-range correction -2^32 ln(1 - raw/2^32) models
  // collisions of a 32-bit hash. Ranks here come from the 64-bit UnitHash,
  // whose collision regime starts ~2^32 times later — applying the 32-bit
  // correction would inflate estimates past 2^32/30 and return negative or
  // NaN values for raw >= 2^32, so there is no correction to apply at any
  // cardinality this sketch can meaningfully count.
  return raw;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  assert(k_ == other.k_ && seed_ == other.seed_);
  for (uint32_t i = 0; i < k_; ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
}

uint32_t HyperLogLog::NumZeroRegisters() const {
  uint32_t zeros = 0;
  for (uint8_t m : registers_) {
    if (m == 0) ++zeros;
  }
  return zeros;
}

double HyperLogLog::Alpha(uint32_t k) {
  switch (k) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(k));
  }
}

}  // namespace hipads
