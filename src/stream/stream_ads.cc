#include "stream/stream_ads.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace hipads {

FirstOccurrenceAds::FirstOccurrenceAds(uint32_t k,
                                       const RankAssignment& ranks,
                                       SketchFlavor flavor)
    : k_(k),
      ranks_(ranks),
      flavor_(flavor),
      bottomk_(k, ranks.sup()),
      kmins_(k, ranks.sup()),
      kpart_(k, ranks.sup()) {}

bool FirstOccurrenceAds::Process(uint64_t element, double time) {
  assert(time >= last_time_ && "stream times must be non-decreasing");
  last_time_ = time;
  ++num_processed_;
  // If the element was seen before, its first occurrence already updated
  // the sketch (the threshold was even looser then) — re-occurrences can
  // never update, and only first occurrences may create entries.
  switch (flavor_) {
    case SketchFlavor::kBottomK: {
      double r = ranks_.rank(element);
      if (r >= bottomk_.Threshold()) return false;
      if (!sketched_.insert(element).second) return false;
      bottomk_.Update(r);
      ads_.Append(AdsEntry{static_cast<NodeId>(element), 0, r, time});
      return true;
    }
    case SketchFlavor::kKMins: {
      bool updated = false;
      bool first = sketched_.insert(element).second;
      for (uint32_t p = 0; p < k_; ++p) {
        double r = ranks_.rank(element, p);
        if (r < kmins_.Min(p)) {
          assert(first && "re-occurrence beat a minimum it previously set");
          kmins_.Update(p, r);
          ads_.Append(AdsEntry{static_cast<NodeId>(element), p, r, time});
          updated = true;
        }
      }
      (void)first;
      return updated;
    }
    case SketchFlavor::kKPartition: {
      uint32_t bucket = BucketHash(ranks_.seed(), element, k_);
      double r = ranks_.rank(element);
      if (r >= kpart_.Min(bucket)) return false;
      if (!sketched_.insert(element).second) return false;
      kpart_.Update(bucket, r);
      ads_.Append(AdsEntry{static_cast<NodeId>(element), bucket, r, time});
      return true;
    }
  }
  return false;
}

RecentOccurrenceAds::RecentOccurrenceAds(uint32_t k,
                                         const RankAssignment& ranks,
                                         double horizon)
    : k_(k), ranks_(ranks), horizon_(horizon) {}

void RecentOccurrenceAds::Process(uint64_t element, double time) {
  assert(time >= last_time_ && "stream times must be non-decreasing");
  assert(time <= horizon_ && "entry beyond the sketch horizon T");
  last_time_ = time;
  double r = ranks_.rank(element);
  double age = horizon_ - time;
  // Drop any previous occurrence of this element.
  std::erase_if(entries_, [element](const AdsEntry& e) {
    return e.node == static_cast<NodeId>(element);
  });
  // The new entry has the smallest age processed so far, so it always
  // belongs; re-filter the rest with the canonical bottom-k scan
  // (Section 3.1's clean-up).
  entries_.insert(entries_.begin(),
                  AdsEntry{static_cast<NodeId>(element), 0, r, age});
  std::vector<AdsEntry> kept;
  kept.reserve(entries_.size());
  BottomKSketch sketch(k_, ranks_.sup());
  for (const AdsEntry& e : entries_) {
    if (e.rank < sketch.Threshold()) {
      kept.push_back(e);
      sketch.Update(e.rank);
    }
  }
  entries_ = std::move(kept);
}

Ads RecentOccurrenceAds::SnapshotAds() const { return Ads(entries_); }

}  // namespace hipads
