// HIP approximate distinct counters (paper Section 6).
//
// Each counter maintains a MinHash sketch plus one running count c. When an
// element updates the sketch, its HIP probability tau (the probability the
// update happened, conditioned on the current sketch state) is computed and
// c grows by the adjusted weight 1/tau. The count is unbiased at every
// prefix of the stream, for every sketch flavor, and degrades gracefully
// under register saturation.
//
//  * HllHipCounter     — HIP on the exact HyperLogLog sketch (k-partition,
//                        base-2 ranks, 5-bit saturating registers). This is
//                        the paper's Algorithm 3, with the 1/k factor of
//                        Eq. (8) restored (see DESIGN.md).
//  * BottomKHipCounter — HIP on a bottom-k sketch with full-precision or
//                        base-b ranks.
//  * KMinsHipCounter   — HIP on a k-mins sketch.
//  * PermutationDistinctCounter — the Section 5.4 permutation estimator as
//                        a stream counter (requires elements to be exactly
//                        {0..n-1} with a known n).

#ifndef HIPADS_STREAM_HIP_DISTINCT_H_
#define HIPADS_STREAM_HIP_DISTINCT_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sketch/minhash.h"
#include "sketch/rank.h"

namespace hipads {

/// HIP estimator on the HyperLogLog sketch (Algorithm 3).
class HllHipCounter {
 public:
  HllHipCounter(uint32_t k, uint64_t seed, uint32_t register_cap = 31);

  /// Observes an element (duplicates never change the estimate).
  void Add(uint64_t element);

  /// The running HIP estimate of the number of distinct elements.
  double Estimate() const { return count_; }

  /// True once every register is saturated (the estimate then stops
  /// growing and turns biased, as the paper notes).
  bool Saturated() const;

  const std::vector<uint8_t>& registers() const { return registers_; }

 private:
  uint32_t k_;
  uint64_t seed_;
  uint32_t register_cap_;
  std::vector<uint8_t> registers_;
  // sum over non-saturated registers of 2^-M[i], maintained incrementally;
  // tau = probability_sum_ / k.
  double probability_sum_;
  double count_ = 0.0;
};

/// HIP estimator on a bottom-k MinHash sketch with uniform (or base-b
/// discretized) ranks.
class BottomKHipCounter {
 public:
  /// `base` <= 1 means full-precision ranks; otherwise ranks are rounded
  /// down to powers of 1/base (Section 4.4 / 5.6).
  BottomKHipCounter(uint32_t k, uint64_t seed, double base = 0.0);

  void Add(uint64_t element);
  double Estimate() const { return count_; }
  const BottomKSketch& sketch() const { return sketch_; }

 private:
  uint32_t k_;
  uint64_t seed_;
  double base_;
  BottomKSketch sketch_;
  std::unordered_set<uint64_t> sketched_;  // ids that ever entered the sketch
  double count_ = 0.0;
};

/// HIP estimator on a k-mins MinHash sketch (full-precision ranks).
class KMinsHipCounter {
 public:
  KMinsHipCounter(uint32_t k, uint64_t seed);

  void Add(uint64_t element);
  double Estimate() const { return count_; }
  const KMinsSketch& sketch() const { return sketch_; }

 private:
  uint32_t k_;
  uint64_t seed_;
  KMinsSketch sketch_;
  double count_ = 0.0;
};

/// Section 5.4 permutation estimator as a distinct counter over a stream of
/// elements drawn from {0..n-1}, ranked by a given permutation.
class PermutationDistinctCounter {
 public:
  /// `perm[v]` is the permutation position of element v (0-based; rank is
  /// perm[v] + 1 in {1..n}).
  PermutationDistinctCounter(uint32_t k, std::vector<uint32_t> perm);

  void Add(uint64_t element);

  /// Running estimate including the saturation correction.
  double Estimate() const;

 private:
  uint32_t k_;
  uint64_t n_;
  std::vector<uint32_t> perm_;
  BottomKSketch sketch_;
  double s_hat_ = 0.0;
};

}  // namespace hipads

#endif  // HIPADS_STREAM_HIP_DISTINCT_H_
