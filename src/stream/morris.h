// Morris/Flajolet approximate counters, extended per paper Section 7 with
// weighted (arbitrary positive) increments and counter merging via inverse
// probability estimation.
//
// The counter stores only an integer exponent x; the estimate is
// n^ = b^x - 1 for a fixed base b > 1, so counting to n needs
// O(log log n) bits. The base trades accuracy for size: with
// b = 1 + 1/2^j the relative error is ~2^{-j} for the HIP-accumulation use
// case (Section 7).

#ifndef HIPADS_STREAM_MORRIS_H_
#define HIPADS_STREAM_MORRIS_H_

#include <cstdint>

#include "util/random.h"

namespace hipads {

/// An approximate counter over positive real increments.
class MorrisCounter {
 public:
  /// `base` must be > 1.
  explicit MorrisCounter(double base);

  /// Adds `amount` > 0 to the counter (unbiased: E[estimate change] =
  /// amount). Randomness is drawn from `rng`.
  void Add(double amount, Rng& rng);

  /// Convenience unit increment.
  void Increment(Rng& rng) { Add(1.0, rng); }

  /// Merges another counter of the same base into this one (equivalent to
  /// adding its estimate; unbiased).
  void Merge(const MorrisCounter& other, Rng& rng);

  /// Unbiased estimate b^x - 1 of the total amount added.
  double Estimate() const;

  /// The stored exponent (what an actual register would hold).
  uint64_t exponent() const { return x_; }
  double base() const { return base_; }

 private:
  double base_;
  uint64_t x_ = 0;
};

}  // namespace hipads

#endif  // HIPADS_STREAM_MORRIS_H_
