#include "sketch/cardinality.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace hipads {

double KMinsBasicEstimate(const KMinsSketch& sketch) {
  assert(sketch.k() > 1);
  double sum = 0.0;
  for (double x : sketch.mins()) {
    if (x >= 1.0) return 0.0;  // an empty permutation => empty set
    sum += -std::log1p(-x);
  }
  return static_cast<double>(sketch.k() - 1) / sum;
}

double BottomKBasicEstimate(const BottomKSketch& sketch) {
  if (sketch.size() < sketch.k()) return sketch.size();
  // tau_k < sup: with uniform ranks the conditional inclusion probability of
  // each of the k-1 retained elements is exactly tau_k.
  return static_cast<double>(sketch.k() - 1) / sketch.Threshold();
}

double KPartitionBasicEstimate(const KPartitionSketch& sketch) {
  uint32_t nonempty = sketch.NumNonEmpty();
  if (nonempty <= 1) return nonempty;  // estimator degenerates (Section 4.3)
  double sum = 0.0;
  for (double x : sketch.mins()) {
    if (x < sketch.sup()) sum += -std::log1p(-x);
  }
  return static_cast<double>(nonempty) * (nonempty - 1) / sum;
}

double BasicCv(uint32_t k) {
  assert(k > 2);
  return 1.0 / std::sqrt(static_cast<double>(k) - 2.0);
}

double BasicMre(uint32_t k) {
  assert(k > 2);
  return std::sqrt(2.0 / (std::numbers::pi * (static_cast<double>(k) - 2.0)));
}

double HipCv(uint32_t k) {
  assert(k > 1);
  return 1.0 / std::sqrt(2.0 * (static_cast<double>(k) - 1.0));
}

double HipMre(uint32_t k) {
  assert(k > 1);
  return std::sqrt(1.0 / (std::numbers::pi * (static_cast<double>(k) - 1.0)));
}

double BasicCvLowerBound(uint32_t k) {
  return 1.0 / std::sqrt(static_cast<double>(k));
}

double HipCvLowerBound(uint32_t k) {
  return 1.0 / std::sqrt(2.0 * static_cast<double>(k));
}

double HipBaseBCv(uint32_t k, double base) {
  assert(k > 1 && base >= 1.0);
  return std::sqrt((1.0 + base) / (4.0 * (static_cast<double>(k) - 1.0)));
}

double HllNrmse(uint32_t k) {
  return 1.08 / std::sqrt(static_cast<double>(k));
}

}  // namespace hipads
