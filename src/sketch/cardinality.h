// "Basic" MinHash cardinality estimators (paper Section 4) and the analytic
// error constants the paper cites. These are the pre-HIP state of the art
// that Section 5's HIP estimators are compared against.
//
// All estimators here assume full-precision uniform ranks r ~ U[0,1); the
// paper proves (via Lehmann-Scheffe) that the k-mins and bottom-k versions
// are the unique minimum-variance unbiased estimators for their sketches.

#ifndef HIPADS_SKETCH_CARDINALITY_H_
#define HIPADS_SKETCH_CARDINALITY_H_

#include "sketch/minhash.h"

namespace hipads {

/// k-mins estimator (k-1) / sum_i -ln(1 - x_i)  [Section 4.1].
/// Unbiased for k > 1; CV = 1/sqrt(k-2) for k > 2. Empty sets estimate 0.
double KMinsBasicEstimate(const KMinsSketch& sketch);

/// Bottom-k estimator: |sketch| when the sketch is not full (the cardinality
/// is then known exactly), else (k-1)/tau_k with tau_k the kth smallest rank
/// [Section 4.2]. Unbiased; CV <= 1/sqrt(k-2).
double BottomKBasicEstimate(const BottomKSketch& sketch);

/// k-partition estimator k'(k'-1) / sum over nonempty buckets of
/// -ln(1 - x_t), where k' is the number of nonempty buckets [Section 4.3].
/// Biased down for small n (estimates 0 when k' <= 1).
double KPartitionBasicEstimate(const KPartitionSketch& sketch);

// --- Analytic reference values (used as the figures' reference curves) ---

/// CV of the basic k-mins estimator, 1/sqrt(k-2); also an upper bound for
/// the basic bottom-k estimator (Lemma 4.3). Requires k > 2.
double BasicCv(uint32_t k);

/// MRE of the basic k-mins estimator, ~ sqrt(2/(pi (k-2))) [Section 4.1].
double BasicMre(uint32_t k);

/// First-order upper bound on the CV of the bottom-k HIP estimator,
/// 1/sqrt(2(k-1)) (Theorem 5.1). Requires k > 1.
double HipCv(uint32_t k);

/// Reference MRE for HIP, sqrt(1/(pi (k-1))) (Figure 2 caption).
double HipMre(uint32_t k);

/// Asymptotic lower bound on the CV of any unbiased estimator from a k-mins
/// or bottom-k sketch, 1/sqrt(k) (Lemmas 4.1, 4.4).
double BasicCvLowerBound(uint32_t k);

/// Lower bound for any linear ADS estimator, 1/sqrt(2k) (Theorem 5.2).
double HipCvLowerBound(uint32_t k);

/// Back-of-the-envelope CV of HIP with base-b ranks,
/// sqrt((1+b)/(4(k-1)))  [Sections 5.6 and 6].
double HipBaseBCv(uint32_t k, double base);

/// NRMSE of bias-corrected HyperLogLog, ~1.04-1.08/sqrt(k); the paper
/// quotes 1.08/sqrt(k) when comparing against HIP (Section 6).
double HllNrmse(uint32_t k);

}  // namespace hipads

#endif  // HIPADS_SKETCH_CARDINALITY_H_
