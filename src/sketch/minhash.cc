#include "sketch/minhash.h"

#include <algorithm>
#include <cassert>

namespace hipads {

BottomKSketch::BottomKSketch(uint32_t k, double sup) : k_(k), sup_(sup) {
  assert(k >= 1);
  ranks_.reserve(k);
}

bool BottomKSketch::Update(double rank) {
  assert(rank < sup_);
  if (rank >= Threshold()) return false;
  auto it = std::lower_bound(ranks_.begin(), ranks_.end(), rank);
  ranks_.insert(it, rank);
  if (ranks_.size() > k_) ranks_.pop_back();
  return true;
}

double BottomKSketch::Threshold() const {
  return ranks_.size() < k_ ? sup_ : ranks_.back();
}

bool BottomKSketch::Contains(double rank) const {
  return std::binary_search(ranks_.begin(), ranks_.end(), rank);
}

void BottomKSketch::Merge(const BottomKSketch& other) {
  assert(k_ == other.k_);
  for (double r : other.ranks_) Update(r);
}

KMinsSketch::KMinsSketch(uint32_t k, double sup)
    : k_(k), sup_(sup), mins_(k, sup) {
  assert(k >= 1);
}

bool KMinsSketch::Update(uint32_t perm, double rank) {
  assert(perm < k_);
  if (rank >= mins_[perm]) return false;
  mins_[perm] = rank;
  return true;
}

void KMinsSketch::Merge(const KMinsSketch& other) {
  assert(k_ == other.k_);
  for (uint32_t i = 0; i < k_; ++i) {
    mins_[i] = std::min(mins_[i], other.mins_[i]);
  }
}

KPartitionSketch::KPartitionSketch(uint32_t k, double sup)
    : k_(k), sup_(sup), mins_(k, sup) {
  assert(k >= 1);
}

bool KPartitionSketch::Update(uint32_t bucket, double rank) {
  assert(bucket < k_);
  if (rank >= mins_[bucket]) return false;
  mins_[bucket] = rank;
  return true;
}

uint32_t KPartitionSketch::NumNonEmpty() const {
  uint32_t c = 0;
  for (double m : mins_) {
    if (m < sup_) ++c;
  }
  return c;
}

void KPartitionSketch::Merge(const KPartitionSketch& other) {
  assert(k_ == other.k_);
  for (uint32_t i = 0; i < k_; ++i) {
    mins_[i] = std::min(mins_[i], other.mins_[i]);
  }
}

}  // namespace hipads
