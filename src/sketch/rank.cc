#include "sketch/rank.h"

#include <cassert>

namespace hipads {

double DiscretizeRank(double r, double base) {
  assert(base > 1.0);
  return std::pow(base, -static_cast<double>(RankExponent(r, base)));
}

uint32_t RankExponent(double r, double base) {
  assert(base > 1.0);
  if (r <= 0.0) return 64;  // deeper than any hash-derived rank
  double h = std::ceil(-std::log(r) / std::log(base));
  if (h < 1.0) h = 1.0;  // r in (1/b, 1) rounds to exponent 1
  if (h > 64.0) h = 64.0;
  return static_cast<uint32_t>(h);
}

RankAssignment RankAssignment::Uniform(uint64_t seed) {
  RankAssignment a;
  a.kind_ = RankKind::kUniform;
  a.seed_ = seed;
  a.sup_ = 1.0;
  return a;
}

RankAssignment RankAssignment::BaseB(uint64_t seed, double base) {
  assert(base > 1.0);
  RankAssignment a;
  a.kind_ = RankKind::kBaseB;
  a.seed_ = seed;
  a.base_ = base;
  a.sup_ = 1.0;
  return a;
}

RankAssignment RankAssignment::Exponential(
    uint64_t seed, std::function<double(uint64_t)> beta) {
  RankAssignment a;
  a.kind_ = RankKind::kExponential;
  a.seed_ = seed;
  a.beta_ = std::move(beta);
  a.sup_ = std::numeric_limits<double>::infinity();
  return a;
}

RankAssignment RankAssignment::Priority(
    uint64_t seed, std::function<double(uint64_t)> beta) {
  RankAssignment a;
  a.kind_ = RankKind::kPriority;
  a.seed_ = seed;
  a.beta_ = std::move(beta);
  a.sup_ = std::numeric_limits<double>::infinity();
  return a;
}

RankAssignment RankAssignment::Permutation(std::vector<uint32_t> perm) {
  RankAssignment a;
  a.kind_ = RankKind::kPermutation;
  a.perm_ = std::move(perm);
  a.sup_ = static_cast<double>(a.perm_.size()) + 1.0;
  return a;
}

double RankAssignment::rank(uint64_t node, uint32_t perm_index) const {
  switch (kind_) {
    case RankKind::kUniform:
      return UnitHash(seed_ ^ (0x517cc1b727220a95ULL * (perm_index + 1)),
                      node);
    case RankKind::kBaseB:
      return DiscretizeRank(
          UnitHash(seed_ ^ (0x517cc1b727220a95ULL * (perm_index + 1)), node),
          base_);
    case RankKind::kExponential: {
      double u =
          UnitHash(seed_ ^ (0x517cc1b727220a95ULL * (perm_index + 1)), node);
      double b = beta_(node);
      assert(b > 0.0);
      return -std::log1p(-u) / b;
    }
    case RankKind::kPriority: {
      double u =
          UnitHash(seed_ ^ (0x517cc1b727220a95ULL * (perm_index + 1)), node);
      double b = beta_(node);
      assert(b > 0.0);
      return u / b;
    }
    case RankKind::kPermutation:
      assert(node < perm_.size());
      return static_cast<double>(perm_[node]) + 1.0;
  }
  return 0.0;
}

}  // namespace hipads
