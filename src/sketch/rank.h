// Rank assignments: the random "permutations" that define MinHash sketches
// and All-Distances Sketches (paper Section 2).
//
// A rank assignment maps a node/element id to a random rank value. Sketches
// of different sets that share a RankAssignment are *coordinated* — the key
// property that makes ADSs composable and mergeable. Four kinds are
// supported:
//   * full-precision uniform ranks r(v) ~ U[0,1)            (Section 2)
//   * base-b discretized ranks r'(v) = b^{-ceil(-log_b r)}  (Section 4.4)
//   * exponential ranks with per-node weights beta(v)       (Section 9)
//   * explicit permutation ranks sigma(v) in {1..n}         (Section 5.4)

#ifndef HIPADS_SKETCH_RANK_H_
#define HIPADS_SKETCH_RANK_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "util/hash.h"

namespace hipads {

/// Rounds a rank in (0,1) down to the nearest power of 1/b:
/// r -> b^{-h} with h = ceil(-log_b r). Ranks of 0 map to the smallest
/// positive representable value's bucket. (Paper Section 4.4.)
double DiscretizeRank(double r, double base);

/// The integer exponent h = ceil(-log_b r) of a base-b rank; this is what a
/// compact register implementation stores (capped by the register width).
uint32_t RankExponent(double r, double base);

/// How ranks are produced.
enum class RankKind {
  kUniform,      // r(v) ~ U[0,1), sup = 1
  kBaseB,        // discretized uniform, sup = 1
  kExponential,  // r(v) ~ Exp(beta(v)), sup = +inf
  kPriority,     // r(v) = U[0,1)/beta(v) — Sequential Poisson, sup = +inf
  kPermutation,  // r(v) = sigma(v) in {1..n}, sup = n+1
};

/// A family of coordinated rank assignments (one per "permutation" index,
/// for k-mins sketches; bottom-k and k-partition use index 0).
class RankAssignment {
 public:
  /// Full-precision uniform ranks derived from (seed, perm, node) hashing.
  static RankAssignment Uniform(uint64_t seed);

  /// Base-b discretized uniform ranks.
  static RankAssignment BaseB(uint64_t seed, double base);

  /// Exponentially distributed ranks with rate beta(v) > 0 (node-weighted
  /// sketches, Section 9). beta is captured by copy.
  static RankAssignment Exponential(uint64_t seed,
                                    std::function<double(uint64_t)> beta);

  /// Priority (Sequential Poisson) ranks r(v) = U[0,1)/beta(v) — the
  /// Section 9 alternative weighted-sampling scheme [39], [23].
  static RankAssignment Priority(uint64_t seed,
                                 std::function<double(uint64_t)> beta);

  /// Explicit permutation ranks: node v gets rank perm[v] + 1 in {1..n}.
  static RankAssignment Permutation(std::vector<uint32_t> perm);

  /// Rank of `node` under permutation index `perm_index`.
  double rank(uint64_t node, uint32_t perm_index = 0) const;

  /// Supremum of the rank range: the value kth_r(S) takes when |S| < k
  /// (paper Section 2 uses sup = 1 for uniform ranks).
  double sup() const { return sup_; }

  RankKind kind() const { return kind_; }
  double base() const { return base_; }
  uint64_t seed() const { return seed_; }

  /// Weight beta(v) for exponential/priority ranks; 1.0 otherwise.
  double beta(uint64_t node) const {
    return kind_ == RankKind::kExponential || kind_ == RankKind::kPriority
               ? beta_(node)
               : 1.0;
  }

 private:
  RankAssignment() = default;

  RankKind kind_ = RankKind::kUniform;
  uint64_t seed_ = 0;
  double base_ = 0.0;  // only for kBaseB
  double sup_ = 1.0;
  std::function<double(uint64_t)> beta_;  // only for kExponential
  std::vector<uint32_t> perm_;            // only for kPermutation
};

}  // namespace hipads

#endif  // HIPADS_SKETCH_RANK_H_
