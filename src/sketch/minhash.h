// MinHash sketches of subsets, in the paper's three flavors (Section 2):
//
//   * k-mins:      smallest rank in each of k independent permutations
//                  (sampling k times with replacement)
//   * bottom-k:    the k smallest ranks in one permutation
//                  (sampling k times without replacement; aka KMV)
//   * k-partition: smallest rank per bucket of a random k-way partition
//                  (the sketch HyperLogLog uses)
//
// All three support streaming updates (Update returns whether the sketch
// changed — the event HIP estimators hook into) and merging, and all are
// coordinated when built from the same RankAssignment.

#ifndef HIPADS_SKETCH_MINHASH_H_
#define HIPADS_SKETCH_MINHASH_H_

#include <cstdint>
#include <vector>

namespace hipads {

/// Sketch flavor selector used across the library.
enum class SketchFlavor { kBottomK, kKMins, kKPartition };

/// The k smallest rank values seen, kept sorted ascending.
class BottomKSketch {
 public:
  /// `sup` is the value Threshold() reports while fewer than k ranks have
  /// been seen (1.0 for uniform ranks, +inf for exponential ranks).
  explicit BottomKSketch(uint32_t k, double sup = 1.0);

  /// Offers a rank; returns true iff the sketch changed (rank < threshold
  /// and not already present — duplicate ranks of the same element must be
  /// filtered by the caller if elements can repeat).
  bool Update(double rank);

  /// Reinitializes to an empty sketch with new parameters, keeping the
  /// rank buffer's capacity. Lets scan loops (HipScratch) reuse one sketch
  /// across nodes with zero steady-state allocation; the update sequence
  /// after a Reset is bitwise identical to a freshly constructed sketch's.
  void Reset(uint32_t k, double sup) {
    k_ = k;
    sup_ = sup;
    ranks_.clear();
    if (ranks_.capacity() < k) ranks_.reserve(k);
  }

  /// kth smallest rank seen, or sup() while the sketch holds < k ranks.
  /// This is the inclusion threshold: a new rank enters iff rank < it.
  double Threshold() const;

  /// True iff `rank` is currently stored. With unique per-element ranks this
  /// doubles as an element-membership test (used to filter duplicates).
  bool Contains(double rank) const;

  /// Smallest rank (requires size() > 0).
  double Min() const { return ranks_.front(); }

  uint32_t k() const { return k_; }
  double sup() const { return sup_; }
  uint32_t size() const { return static_cast<uint32_t>(ranks_.size()); }
  const std::vector<double>& ranks() const { return ranks_; }

  void Merge(const BottomKSketch& other);

 private:
  uint32_t k_;
  double sup_;
  std::vector<double> ranks_;  // sorted ascending, size <= k
};

/// Smallest rank in each of k independent permutations.
class KMinsSketch {
 public:
  explicit KMinsSketch(uint32_t k, double sup = 1.0);

  /// Offers the element's rank in permutation `perm`; true iff it became the
  /// new minimum.
  bool Update(uint32_t perm, double rank);

  uint32_t k() const { return k_; }
  double sup() const { return sup_; }
  /// Minimum rank of permutation `perm`, sup() if nothing seen.
  double Min(uint32_t perm) const { return mins_[perm]; }
  const std::vector<double>& mins() const { return mins_; }

  void Merge(const KMinsSketch& other);

 private:
  uint32_t k_;
  double sup_;
  std::vector<double> mins_;
};

/// Smallest rank in each bucket of a uniform k-way partition of elements.
class KPartitionSketch {
 public:
  explicit KPartitionSketch(uint32_t k, double sup = 1.0);

  /// Offers an element's (bucket, rank); true iff the bucket minimum fell.
  bool Update(uint32_t bucket, double rank);

  uint32_t k() const { return k_; }
  double sup() const { return sup_; }
  double Min(uint32_t bucket) const { return mins_[bucket]; }
  const std::vector<double>& mins() const { return mins_; }
  /// Number of buckets that have seen at least one element.
  uint32_t NumNonEmpty() const;

  void Merge(const KPartitionSketch& other);

 private:
  uint32_t k_;
  double sup_;
  std::vector<double> mins_;
};

}  // namespace hipads

#endif  // HIPADS_SKETCH_MINHASH_H_
