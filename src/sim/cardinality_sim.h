// Monte-Carlo harness for the estimation-quality experiments.
//
// Section 5.5 observes that the error of an ADS cardinality estimator at
// cardinality c depends only on the random ranks of the first c nodes in
// distance order — not on the graph — so the simulations of Figures 2 and 3
// run on a stream of n distinct elements and measure, at a set of
// checkpoint cardinalities, the NRMSE and MRE of each estimator against the
// true prefix cardinality.

#ifndef HIPADS_SIM_CARDINALITY_SIM_H_
#define HIPADS_SIM_CARDINALITY_SIM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/stats.h"

namespace hipads {

struct CardinalitySimConfig {
  uint32_t k = 10;
  uint64_t max_n = 10000;  // elements per run
  uint32_t runs = 500;
  uint64_t seed = 1;
  int points_per_decade = 8;  // checkpoint density
};

/// Error curves of every estimator across the checkpoint cardinalities.
struct CardinalitySimResult {
  std::vector<uint64_t> checkpoints;
  /// estimator name -> one ErrorStats per checkpoint. Names:
  /// "kmins_basic", "kpart_basic", "botk_basic", "botk_hip", "perm".
  std::map<std::string, std::vector<ErrorStats>> errors;
};

/// Figure 2 experiment: neighborhood-size estimators (three basic flavors,
/// bottom-k HIP, permutation) versus cardinality.
CardinalitySimResult RunCardinalitySim(const CardinalitySimConfig& config);

struct DistinctCountSimConfig {
  uint32_t k = 16;           // registers
  uint32_t register_cap = 31;  // 5-bit registers, as in the paper
  uint64_t max_n = 1000000;
  uint32_t runs = 500;
  uint64_t seed = 1;
  int points_per_decade = 4;
};

/// Figure 3 experiment: HLL raw, HLL bias-corrected, and HIP on the same
/// k-partition base-2 sketch. Names: "hll_raw", "hll", "hip".
CardinalitySimResult RunDistinctCountSim(const DistinctCountSimConfig& config);

}  // namespace hipads

#endif  // HIPADS_SIM_CARDINALITY_SIM_H_
