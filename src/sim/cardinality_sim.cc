#include "sim/cardinality_sim.h"

#include <cmath>

#include "sketch/cardinality.h"
#include "sketch/minhash.h"
#include "stream/hip_distinct.h"
#include "stream/hll.h"
#include "util/hash.h"
#include "util/random.h"

namespace hipads {

CardinalitySimResult RunCardinalitySim(const CardinalitySimConfig& config) {
  const uint32_t k = config.k;
  CardinalitySimResult result;
  result.checkpoints =
      LogSpacedCheckpoints(config.max_n, config.points_per_decade);
  const size_t num_points = result.checkpoints.size();
  for (const char* name :
       {"kmins_basic", "kpart_basic", "botk_basic", "botk_hip", "perm"}) {
    result.errors[name].resize(num_points);
  }

  for (uint32_t run = 0; run < config.runs; ++run) {
    uint64_t run_seed = HashCombine(config.seed, run);
    Rng rng(run_seed);
    // Shared single-permutation uniform ranks for bottom-k basic and HIP (so
    // the two estimators are compared on identical sketches, as the paper
    // does); independent ranks for the other flavors.
    BottomKSketch botk(k, 1.0);
    BottomKHipCounter hip(k, run_seed);
    KMinsSketch kmins(k, 1.0);
    KPartitionSketch kpart(k, 1.0);
    PermutationDistinctCounter perm(
        k, rng.NextPermutation(static_cast<uint32_t>(config.max_n)));

    size_t next_point = 0;
    for (uint64_t i = 0; i < config.max_n; ++i) {
      // Element i arrives (all elements distinct).
      double r = UnitHash(run_seed, i);
      botk.Update(r);
      hip.Add(i);
      for (uint32_t h = 0; h < k; ++h) {
        kmins.Update(h,
                     UnitHash(run_seed ^ (0x9e3779b97f4a7c15ULL * (h + 1)),
                              i));
      }
      kpart.Update(BucketHash(run_seed, i, k),
                   UnitHash(run_seed ^ 0x5bf03635d2d1e9a1ULL, i));
      perm.Add(i);

      uint64_t cardinality = i + 1;
      if (next_point < num_points &&
          cardinality == result.checkpoints[next_point]) {
        double truth = static_cast<double>(cardinality);
        result.errors["kmins_basic"][next_point].Add(
            KMinsBasicEstimate(kmins), truth);
        result.errors["kpart_basic"][next_point].Add(
            KPartitionBasicEstimate(kpart), truth);
        result.errors["botk_basic"][next_point].Add(
            BottomKBasicEstimate(botk), truth);
        result.errors["botk_hip"][next_point].Add(hip.Estimate(), truth);
        result.errors["perm"][next_point].Add(perm.Estimate(), truth);
        ++next_point;
      }
    }
  }
  return result;
}

CardinalitySimResult RunDistinctCountSim(
    const DistinctCountSimConfig& config) {
  CardinalitySimResult result;
  result.checkpoints =
      LogSpacedCheckpoints(config.max_n, config.points_per_decade);
  const size_t num_points = result.checkpoints.size();
  for (const char* name : {"hll_raw", "hll", "hip"}) {
    result.errors[name].resize(num_points);
  }

  for (uint32_t run = 0; run < config.runs; ++run) {
    uint64_t run_seed = HashCombine(config.seed ^ 0xd6e8feb86659fd93ULL, run);
    // HLL and HIP share the identical sketch state: same seed, same
    // registers — exactly the paper's setup ("we apply HIP to the same
    // MinHash sketch ... that the HyperLogLog estimator was designed for").
    HyperLogLog hll(config.k, run_seed, config.register_cap);
    HllHipCounter hip(config.k, run_seed, config.register_cap);

    size_t next_point = 0;
    for (uint64_t i = 0; i < config.max_n; ++i) {
      hll.Add(i);
      hip.Add(i);
      uint64_t cardinality = i + 1;
      if (next_point < num_points &&
          cardinality == result.checkpoints[next_point]) {
        double truth = static_cast<double>(cardinality);
        result.errors["hll_raw"][next_point].Add(hll.RawEstimate(), truth);
        result.errors["hll"][next_point].Add(hll.Estimate(), truth);
        result.errors["hip"][next_point].Add(hip.Estimate(), truth);
        ++next_point;
      }
    }
  }
  return result;
}

}  // namespace hipads
