// Neighborhood-similarity estimation from coordinated sketches.
//
// Because all ADSs are built over one shared rank assignment, the sketches
// of different nodes are coordinated (Section 2): the bottom-k sketch of a
// union N_d(u) ∪ N_d(v) is computable from the two node sketches, which
// yields the classic MinHash estimators for Jaccard similarity of
// neighborhoods — the application family the paper cites ([11], [12]).
//
// J(u, v; d) = |N_d(u) ∩ N_d(v)| / |N_d(u) ∪ N_d(v)| is estimated by the
// fraction of the union's bottom-k sample that lies in both neighborhoods;
// combined with a union-cardinality estimate this also gives intersection
// cardinalities.
//
// All estimators take AdsViews, the query surface every storage backend
// (in-memory, mmap, sharded — ads/backend.h) hands out, so similarity
// serving never copies a sketch; the owning-Ads overloads are kept as
// inline wrappers.

#ifndef HIPADS_ADS_SIMILARITY_H_
#define HIPADS_ADS_SIMILARITY_H_

#include "ads/ads.h"

namespace hipads {

/// MinHash estimate of the Jaccard similarity of N_d(u) and N_d(v) from
/// their bottom-k ADSs (which must share k and the rank assignment).
/// Exact when both neighborhoods have at most k nodes. Returns 0 for two
/// empty neighborhoods.
double JaccardSimilarity(AdsView u, AdsView v, double d, uint32_t k,
                         double sup = 1.0);

inline double JaccardSimilarity(const Ads& u, const Ads& v, double d,
                                uint32_t k, double sup = 1.0) {
  return JaccardSimilarity(u.view(), v.view(), d, k, sup);
}

/// Estimate of the union cardinality |N_d(u) ∪ N_d(v)| via the basic
/// bottom-k estimator on the merged sketch.
double UnionCardinality(AdsView u, AdsView v, double d, uint32_t k,
                        double sup = 1.0);

inline double UnionCardinality(const Ads& u, const Ads& v, double d,
                               uint32_t k, double sup = 1.0) {
  return UnionCardinality(u.view(), v.view(), d, k, sup);
}

/// Estimate of the intersection cardinality |N_d(u) ∩ N_d(v)| =
/// J * |union|.
double IntersectionCardinality(AdsView u, AdsView v, double d, uint32_t k,
                               double sup = 1.0);

inline double IntersectionCardinality(const Ads& u, const Ads& v, double d,
                                      uint32_t k, double sup = 1.0) {
  return IntersectionCardinality(u.view(), v.view(), d, k, sup);
}

/// Closeness similarity: Jaccard of the reachable sets (d = infinity).
double ReachabilityJaccard(AdsView u, AdsView v, uint32_t k,
                           double sup = 1.0);

inline double ReachabilityJaccard(const Ads& u, const Ads& v, uint32_t k,
                                  double sup = 1.0) {
  return ReachabilityJaccard(u.view(), v.view(), k, sup);
}

}  // namespace hipads

#endif  // HIPADS_ADS_SIMILARITY_H_
