// The unified storage layer behind every ADS read path.
//
// Three storage engines can hold the sketches of one graph at serve time:
//
//   * FlatAdsBackend — the in-memory flat CSR arena (FlatAdsSet); what a
//     builder hands over or the copying loader materializes.
//   * MmapAdsSet     — a hipads-ads-v2 file mapped read-only into the
//     address space. The v2 layout (fixed header + raw offsets[] +
//     AdsEntry[] sections) is consumed in place: open is validation only,
//     with zero allocation and zero copying of the payload. Falls back to
//     the copying loader for v1 text files, non-canonical entry order, or
//     platforms without mmap.
//   * ShardedAdsSet  — a directory of v2 shard files (ads/shard.h), loaded
//     lazily with bounded residency and, optionally, a background prefetch
//     thread that loads (or maps) shard s+1 while a sweep consumes shard s.
//
// AdsBackend is the one query surface all of them implement and the only
// interface the whole-graph queries (ads/queries.h) and the CLI serve paths
// consume. Whole-graph sweeps iterate ordered, contiguous node ranges
// (AdsArenaView); point queries resolve a single node's AdsView; Prefetch
// is the residency hint that lets a range-sweeping caller overlap the next
// range's I/O with the current range's compute. Every backend hands the
// estimator kernels the same canonical entry spans in the same node order,
// so query results are bitwise identical across backends.

#ifndef HIPADS_ADS_BACKEND_H_
#define HIPADS_ADS_BACKEND_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "ads/flat_ads.h"
#include "util/status.h"

namespace hipads {

/// Pointers to one node's precomputed HIP weights: tau[i]/weight[i] belong
/// to entry i of the node's AdsView (hip.h's aligned layout, including the
/// k-mins zero-slot convention). present() is false when the backing store
/// carries no HIP section — callers then fall back to the scan. Pointer
/// validity follows the producing backend's residency rules.
struct HipView {
  const double* tau = nullptr;
  const double* weight = nullptr;

  bool present() const { return tau != nullptr; }
};

/// Non-owning CSR view of one contiguous node range's sketches: local node
/// i (global node begin + i) owns entries [offsets[i], offsets[i+1]) of the
/// entries array, in canonical (dist, node, part) order. offsets[0] == 0.
/// Pointer validity follows the producing backend's residency rules.
struct AdsArenaView {
  NodeId begin = 0;
  NodeId end = 0;  // exclusive
  const uint64_t* offsets = nullptr;  // end - begin + 1 values
  const AdsEntry* entries = nullptr;
  // Precomputed HIP weight arrays aligned with `entries` (same indexing),
  // or null when the range's store has no HIP section.
  const double* hip_tau = nullptr;
  const double* hip_weight = nullptr;

  size_t num_nodes() const { return end - begin; }
  uint64_t num_entries() const { return offsets[end - begin]; }
  bool has_hip() const { return hip_tau != nullptr; }

  /// View of the range-local node i's ADS.
  AdsView of_local(size_t i) const {
    return AdsView({entries + offsets[i], entries + offsets[i + 1]});
  }
  /// View of global node v's ADS (begin <= v < end).
  AdsView of_global(NodeId v) const { return of_local(v - begin); }
  /// Precomputed weights of the range-local node i (absent when !has_hip).
  HipView hip_of_local(size_t i) const {
    if (hip_tau == nullptr) return HipView{};
    return HipView{hip_tau + offsets[i], hip_weight + offsets[i]};
  }
};

/// Abstract read surface over the ADSs of a whole graph. Implementations
/// may load lazily, so accessors that can touch storage return StatusOr.
/// Unless a subclass documents otherwise, concurrent calls must be
/// externally serialized (the whole-graph sweeps walk ranges sequentially
/// and parallelize inside each).
class AdsBackend {
 public:
  virtual ~AdsBackend();

  virtual SketchFlavor flavor() const = 0;
  virtual uint32_t k() const = 0;
  virtual const RankAssignment& ranks() const = 0;
  virtual size_t num_nodes() const = 0;
  virtual uint64_t TotalEntries() const = 0;

  /// Number of contiguous node ranges tiling [0, num_nodes()) in order
  /// (1 for the single-arena backends, the shard count for sharded sets).
  virtual uint32_t NumRanges() const = 0;

  /// Arena view of range r (r < NumRanges()). For lazily loading backends
  /// this is the call that performs I/O; it fails if the backing file is
  /// missing, truncated or corrupt. The returned pointers stay valid until
  /// the backend's residency bound evicts the range (single-arena backends
  /// never evict).
  virtual StatusOr<AdsArenaView> Range(uint32_t r) const = 0;

  /// View of ADS(v), loading whatever range owns v on demand.
  virtual StatusOr<AdsView> ViewOf(NodeId v) const = 0;

  /// Precomputed HIP weights of node v, aligned with ViewOf(v)'s entries.
  /// Absent (present() == false) when the backing store carries no HIP
  /// section — the caller scans instead; both paths are bitwise identical.
  /// The default is the conservative "absent". Same residency/validity
  /// rules as ViewOf.
  virtual StatusOr<HipView> HipOf(NodeId /*v*/) const { return HipView{}; }

  /// True when EVERY node of the backend serves precomputed HIP weights
  /// (HipOf never falls back to the scan). Observability for operators
  /// (`stats`/`serve` report hip=resident|scan); never affects results.
  virtual bool HipResident() const { return false; }

  /// Residency hint: a sweep consuming ranges in order will need range r
  /// next. Backends may start loading it in the background; the default is
  /// a no-op. Never required for correctness.
  virtual void Prefetch(uint32_t r) const;

  /// True when every read accessor (Range/ViewOf/Prefetch and the
  /// parameter getters) is safe to call from any number of threads with no
  /// external serialization, because the backend never mutates state after
  /// construction and returned views stay valid for the backend's lifetime.
  /// The single-arena engines (flat, mmap) qualify; lazily loading engines
  /// with residency eviction do not. The default is the conservative false.
  virtual bool ImmutableReads() const { return false; }
};

/// In-memory backend over a FlatAdsSet arena: one range, no failure paths.
class FlatAdsBackend : public AdsBackend {
 public:
  FlatAdsBackend() = default;

  /// Takes ownership of `set`.
  explicit FlatAdsBackend(FlatAdsSet set) : owned_(std::move(set)) {}

  /// Aliases `set`, which must outlive this backend (zero-cost adapter for
  /// callers that already hold the arena).
  explicit FlatAdsBackend(const FlatAdsSet* set) : set_(set) {}

  const FlatAdsSet& set() const { return set_ ? *set_ : owned_; }

  SketchFlavor flavor() const override { return set().flavor; }
  uint32_t k() const override { return set().k; }
  const RankAssignment& ranks() const override { return set().ranks; }
  size_t num_nodes() const override { return set().num_nodes(); }
  uint64_t TotalEntries() const override { return set().TotalEntries(); }
  uint32_t NumRanges() const override { return 1; }
  StatusOr<AdsArenaView> Range(uint32_t r) const override;
  StatusOr<AdsView> ViewOf(NodeId v) const override;
  StatusOr<HipView> HipOf(NodeId v) const override;
  bool HipResident() const override { return set().has_hip(); }
  bool ImmutableReads() const override { return true; }

 private:
  FlatAdsSet owned_;
  const FlatAdsSet* set_ = nullptr;  // aliased set; owned_ when null
};

/// A hipads-ads-v2 file opened zero-copy: the file is mapped read-only and
/// validated in place (header, whole-file checksum, structure); AdsViews
/// point directly into the mapping, so open allocates nothing and copies
/// nothing. When zero-copy open is impossible — v1 text input, entry blocks
/// not in canonical order, or no mmap on the platform — Open degrades
/// gracefully to the copying loader and owns a FlatAdsSet instead
/// (zero_copy() reports which path was taken). Corrupt v2 input always
/// fails; it is never silently re-parsed.
class MmapAdsSet : public AdsBackend {
 public:
  MmapAdsSet();
  MmapAdsSet(MmapAdsSet&& other) noexcept;
  MmapAdsSet& operator=(MmapAdsSet&& other) noexcept;
  MmapAdsSet(const MmapAdsSet&) = delete;
  MmapAdsSet& operator=(const MmapAdsSet&) = delete;
  ~MmapAdsSet() override;

  /// Opens `path` (v2 binary zero-copy; v1 text via the copying loader).
  /// `beta` is required for exponential/priority rank kinds, as in
  /// ParseAdsSet.
  static StatusOr<MmapAdsSet> Open(
      const std::string& path,
      std::function<double(uint64_t)> beta = nullptr);

  /// True if the sketches are served from the file mapping; false if the
  /// copying-loader fallback owns them in heap memory.
  bool zero_copy() const { return map_ != nullptr; }

  SketchFlavor flavor() const override { return flavor_; }
  uint32_t k() const override { return k_; }
  const RankAssignment& ranks() const override { return ranks_; }
  size_t num_nodes() const override { return num_nodes_; }
  uint64_t TotalEntries() const override { return num_entries_; }
  uint32_t NumRanges() const override { return 1; }
  StatusOr<AdsArenaView> Range(uint32_t r) const override;
  StatusOr<AdsView> ViewOf(NodeId v) const override;
  StatusOr<HipView> HipOf(NodeId v) const override;
  bool HipResident() const override { return hip_tau_ != nullptr; }
  bool ImmutableReads() const override { return true; }

 private:
  static StatusOr<MmapAdsSet> OpenFallback(
      const std::string& path, std::function<double(uint64_t)> beta);

  // Points offsets_/entries_ and the parameters at the fallback arena.
  void AdoptFallback();
  void Unmap();

  void* map_ = nullptr;  // non-null iff serving from the file mapping
  size_t map_len_ = 0;
  SketchFlavor flavor_ = SketchFlavor::kBottomK;
  uint32_t k_ = 0;
  RankAssignment ranks_ = RankAssignment::Uniform(0);
  uint64_t num_nodes_ = 0;
  uint64_t num_entries_ = 0;
  const uint64_t* offsets_ = nullptr;
  const AdsEntry* entries_ = nullptr;
  // Precomputed HIP weights when the file carries the optional section
  // (mapped in place, or aliasing the fallback arena's arrays); null when
  // the file has none and point/sweep paths scan instead.
  const double* hip_tau_ = nullptr;
  const double* hip_weight_ = nullptr;
  FlatAdsSet fallback_;  // storage when !zero_copy()
};

/// How OpenAdsBackend materializes single-file sets and shard arenas.
enum class BackendMode {
  kCopy,  // copying loader: heap arena, works everywhere
  kMmap,  // zero-copy mmap of v2 files (with the documented fallbacks)
};

/// Options for OpenAdsBackend.
struct AdsBackendOptions {
  BackendMode mode = BackendMode::kCopy;
  /// Required for exponential/priority rank kinds, as in ParseAdsSet.
  std::function<double(uint64_t)> beta = nullptr;
  /// Sharded sets: max shard arenas resident at once (see ShardedAdsSet).
  uint32_t max_resident = 1;
  /// Sharded sets: overlap the next shards' loads with the current
  /// shard's compute using a background prefetch thread.
  bool prefetch = true;
  /// Sharded sets: prefetch lookahead — how many upcoming shards a sweep's
  /// residency hint enqueues (ShardedOptions::prefetch_depth).
  uint32_t prefetch_depth = 1;
  /// Sharded sets: verify up front that every manifest-referenced shard
  /// file exists with exactly the byte size the manifest implies, so a
  /// missing or truncated shard fails at open instead of mid-sweep.
  bool validate_files = true;
};

/// Opens `path` — a v1/v2 ADS file or a shard directory/manifest — behind
/// the one AdsBackend query surface, dispatching on the path contents:
/// sharded sets get a ShardedAdsSet (honoring mode/max_resident/prefetch),
/// plain files a MmapAdsSet (kMmap) or a loaded FlatAdsBackend (kCopy).
StatusOr<std::unique_ptr<AdsBackend>> OpenAdsBackend(
    const std::string& path, const AdsBackendOptions& options = {});

}  // namespace hipads

#endif  // HIPADS_ADS_BACKEND_H_
