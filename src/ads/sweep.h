// The fused sweep-execution engine: one backend pass for many estimators.
//
// Every workload that motivated ADSs (paper Section 1 — neighbourhood
// functions, closeness/harmonic centralities, distance statistics) is a
// per-node reduction over the same sketch data: visit each node once,
// build its HIP estimator, fold a value into a result. Running K such
// statistics as K separate whole-graph queries costs K backend sweeps
// (for a sharded set: K reads of every shard file) and K HIP scans per
// node. This engine fuses them — the operator-fusion idea of columnar
// query engines applied to sketch serving:
//
//   SweepPlan  — an ordered list of collectors (the statistics to fuse).
//   Collector  — a per-node visitor with a node-order-deterministic
//                reduction (SweepCollector below).
//   Executor   — RunSweep: ONE pass over any storage (AdsSet, FlatAdsSet,
//                or any AdsBackend — in-memory, mmap, sharded with
//                prefetch), constructing each node's HipEstimator ONCE and
//                feeding every collector from it.
//
// So K statistics cost one shard sweep and one HIP scan per node instead
// of K of each. The whole-graph query functions in ads/queries.h are thin
// single-collector plans over this executor; multi-statistic callers (the
// CLI `stats`/`query` paths, examples/sketch_pipeline) build their own
// plans.
//
// Determinism contract: results are bitwise identical to running each
// statistic standalone, on every storage engine, for every thread count.
// The executor guarantees it by construction —
//   * per-node outputs are written indexed by node (never by thread);
//   * order-sensitive reductions (the distance-distribution histogram)
//     happen in the sequential Reduce phase, which the executor calls in
//     node order, block by block, whatever the thread count;
//   * backends are swept one contiguous node range at a time in node
//     order, so the per-node visit order matches the single-arena sweep.
// Between ranges the executor emits Prefetch residency hints, letting a
// prefetching sharded backend overlap the next shard's I/O (lookahead
// configurable, see ShardedOptions::prefetch_depth) with compute.

#ifndef HIPADS_ADS_SWEEP_H_
#define HIPADS_ADS_SWEEP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ads/ads.h"
#include "ads/backend.h"
#include "ads/estimators.h"
#include "ads/flat_ads.h"
#include "util/exact_sum.h"
#include "util/status.h"

namespace hipads {

/// One fused statistic: a per-node visitor plus a node-order reduction.
///
/// The executor drives each block of nodes through two phases:
///   1. Map(v, est) — parallel. Called once per node from pool threads;
///      `est` is node v's HipEstimator (shared by every collector in the
///      plan). Implementations must only write state indexed by v —
///      never shared accumulators — so any thread interleaving produces
///      the same memory image.
///   2. Reduce(first, ests) — sequential, in node order. `ests[i]` is node
///      (first + i)'s estimator, the same object Map saw, kept alive for
///      the whole block. This is where order-sensitive folds (histogram
///      accumulation) happen; the executor's node-ordered calls make the
///      floating-point accumulation order — and hence the result, bitwise
///      — independent of the thread count.
/// Collectors that only produce independent per-node values override Map
/// and leave Reduce empty; purely accumulating collectors do the opposite.
class SweepCollector {
 public:
  virtual ~SweepCollector();

  /// Called once before the sweep visits any node.
  virtual void Begin(size_t num_nodes);

  /// Parallel phase; see the class comment for the threading contract.
  virtual void Map(NodeId v, const HipEstimator& est);

  /// Sequential node-order phase over one block of estimators.
  virtual void Reduce(NodeId first, std::span<const HipEstimator> ests);

  /// Whether this collector's Reduce does anything. When every collector
  /// in a plan returns false, the executor constructs each node's
  /// estimator on the stack and discards it after Map — O(threads) peak
  /// memory — instead of keeping a block of estimators alive for the
  /// Reduce phase. Defaults to true (safe for any subclass that
  /// overrides Reduce); Map-only collectors override it to false.
  virtual bool NeedsReduce() const;

  // --- Partial-state seam for distributed scatter/gather (src/serve/) ---
  //
  // A range server runs a sweep over its contiguous node range and ships
  // EncodePartial's bytes; the gathering router calls AbsorbPartial once
  // per range, in node order, on collectors that have absorbed every
  // earlier range. The contract: absorbing the partials of ranges [0,r1),
  // [r1,r2), ... in order must leave the collector in a state whose
  // results are exactly (bitwise) those of a single-process sweep over
  // [0, rk). Per-node collectors satisfy it trivially (values are
  // independent); accumulating collectors must make their reduction
  // partition-independent — the distance histogram keeps exact
  // (error-free) per-distance sums and rounds once at read time, so any
  // merge order reproduces the single-process result (see
  // DistanceHistogramCollector).

  /// Serializes this collector's state for the node slice [begin, end) of
  /// its own index space — (0, n) on a range server whose collectors are
  /// locally indexed; (B, N) on a gathering router whose collectors are
  /// globally indexed but only cover [B, N). The default fails: collectors
  /// without a partial encoding cannot be distributed.
  virtual Status EncodePartial(NodeId begin, NodeId end,
                               std::string* out) const;

  /// Merges the partial state of global node range [begin, end) into this
  /// collector. Called in node order across ranges; `begin`/`end` are the
  /// gather-side global ids of the range the bytes were produced on.
  /// Malformed bytes must fail cleanly (never crash) — partials arrive
  /// from the network.
  virtual Status AbsorbPartial(NodeId begin, NodeId end,
                               std::string_view data);
};

/// Collector for any statistic of the form result[v] = fn(estimator of v):
/// closeness, distance sum, harmonic centrality, neighborhood size,
/// reachable count, or any custom HIP reduction. Outputs are independent
/// per node, so everything happens in the parallel Map phase.
class PerNodeCollector : public SweepCollector {
 public:
  explicit PerNodeCollector(std::function<double(const HipEstimator&)> fn)
      : fn_(std::move(fn)) {}

  void Begin(size_t num_nodes) override;
  void Map(NodeId v, const HipEstimator& est) override;
  bool NeedsReduce() const override;  // false: everything happens in Map

  /// Partial state: the raw little-endian doubles of values_[begin, end)
  /// in node order. Absorb copies them back into values_[begin, end) —
  /// per-node values are independent, so the distributed gather is bitwise
  /// trivially.
  Status EncodePartial(NodeId begin, NodeId end,
                       std::string* out) const override;
  Status AbsorbPartial(NodeId begin, NodeId end,
                       std::string_view data) override;

  const std::vector<double>& values() const { return values_; }
  std::vector<double> TakeValues() { return std::move(values_); }

 private:
  std::function<double(const HipEstimator&)> fn_;
  std::vector<double> values_;
};

/// HIP estimates of C_{alpha,beta} for every node (Eq. 3).
class ClosenessCollector : public PerNodeCollector {
 public:
  ClosenessCollector(std::function<double(double)> alpha,
                     std::function<double(NodeId)> beta);
};

/// HIP estimates of the sum of distances for every node.
class DistanceSumCollector : public PerNodeCollector {
 public:
  DistanceSumCollector();
};

/// HIP estimates of harmonic centrality for every node.
class HarmonicCentralityCollector : public PerNodeCollector {
 public:
  HarmonicCentralityCollector();
};

/// HIP estimates of the d-neighborhood cardinality for every node.
class NeighborhoodSizeCollector : public PerNodeCollector {
 public:
  explicit NeighborhoodSizeCollector(double d);
};

/// HIP estimates of the reachable-set size for every node.
class ReachableCountCollector : public PerNodeCollector {
 public:
  ReachableCountCollector();
};

/// Per-node q-quantiles of the distance distribution: for each node the
/// smallest sketched distance within which an estimated q-fraction of its
/// reachable nodes lies (HipEstimator::DistanceQuantile; q = 0.5 is the
/// median distance). Requires 0 < q <= 1.
class DistanceQuantileCollector : public PerNodeCollector {
 public:
  explicit DistanceQuantileCollector(double q);
};

/// HIP estimates of an arbitrary Q_g statistic (Eq. 1/5) for every node:
/// values[v] ~ sum_{j reachable from v} g(j, d_vj). The paper's general
/// distance-decaying workload; harmonic centrality, neighborhood sizes and
/// distance sums are all special cases of g.
class QgCollector : public PerNodeCollector {
 public:
  explicit QgCollector(std::function<double(NodeId, double)> g);
};

/// Node ids of the `count` largest values in `scores`, descending; ties
/// broken by smaller node id. The selection utility behind TopKCollector
/// (and usable on any standalone score vector).
std::vector<NodeId> TopKNodes(const std::vector<double>& scores,
                              uint32_t count);

/// Per-node scores plus the ids of the `count` best nodes (descending
/// score, ties by id — the TopKNodes order).
class TopKCollector : public PerNodeCollector {
 public:
  TopKCollector(uint32_t count, std::function<double(const HipEstimator&)> fn)
      : PerNodeCollector(std::move(fn)), count_(count) {}

  /// The top `count` node ids by collected score; call after the sweep.
  std::vector<NodeId> TopNodes() const;

 private:
  uint32_t count_;
};

/// The ANF family in one collector: accumulates the HIP distance
/// distribution (number of ordered pairs at each exact distance), from
/// which the neighbourhood function, effective diameter and mean distance
/// all derive — one backend pass yields all four statistics.
/// Each distance's pair count is an exact (error-free) sum of HIP weights
/// held in a superaccumulator (util/exact_sum.h) and rounded once when
/// read, so the result is independent of fold order, thread count, and —
/// crucially for the distributed gather — of how node ranges were
/// partitioned across servers. The shared acc_ map still makes the fold
/// single-writer, so it stays in the sequential Reduce phase.
class DistanceHistogramCollector : public SweepCollector {
 public:
  void Begin(size_t num_nodes) override;
  void Reduce(NodeId first, std::span<const HipEstimator> ests) override;

  /// Partial state for the distributed gather: O(distinct distances) —
  /// each distance with its exact superaccumulator digits. Absorbing is
  /// one exact merge per distance; because per-distance sums are
  /// error-free until the final rounding, a router merging any partition
  /// of ranges reproduces the single-process sweep bitwise. (The previous
  /// design shipped the O(HIP entries) (dist, weight) replay stream;
  /// exactness makes the summary form lossless.)
  Status EncodePartial(NodeId begin, NodeId end,
                       std::string* out) const override;  // range-free state
  Status AbsorbPartial(NodeId begin, NodeId end,
                       std::string_view data) override;

  /// Estimated number of ordered pairs at each exact distance: the
  /// correctly rounded exact sums.
  std::map<double, double> Distribution() const;

  /// Cumulative form: N(d) = estimated pairs within distance d.
  std::map<double, double> NeighborhoodFunction() const;

  /// Smallest d at which the neighbourhood function reaches `quantile` of
  /// its final value (0 for an empty distribution).
  double EffectiveDiameter(double quantile = 0.9) const;

  /// Estimated mean distance between reachable ordered pairs.
  double MeanDistance() const;

 private:
  void Fold(double dist, double weight);

  std::map<double, ExactSum> acc_;
};

/// An ordered list of collectors to fuse into one sweep. The plan does not
/// run anything itself — hand it to RunSweep. Collectors can be owned by
/// the plan (Emplace) or borrowed (Add); either way the caller reads
/// results off the collector objects after the sweep.
class SweepPlan {
 public:
  /// Adds a borrowed collector; the caller keeps ownership and must keep
  /// it alive through RunSweep.
  SweepPlan& Add(SweepCollector* collector);

  /// Constructs a collector owned by the plan; returns it typed so the
  /// caller can read results after the sweep.
  template <typename C, typename... Args>
  C* Emplace(Args&&... args) {
    auto owned = std::make_unique<C>(std::forward<Args>(args)...);
    C* raw = owned.get();
    owned_.push_back(std::move(owned));
    collectors_.push_back(raw);
    return raw;
  }

  const std::vector<SweepCollector*>& collectors() const {
    return collectors_;
  }
  bool empty() const { return collectors_.empty(); }
  size_t size() const { return collectors_.size(); }

 private:
  std::vector<SweepCollector*> collectors_;
  std::vector<std::unique_ptr<SweepCollector>> owned_;
};

/// Executes `plan` in one pass over the sketches: every node's
/// HipEstimator is constructed exactly once and fed to every collector.
/// `num_threads` = 0 uses the hardware count, 1 runs inline; results are
/// bitwise identical for every thread count. The single-arena overloads
/// cannot fail; the AdsBackend overload sweeps the backend's ranges in
/// node order (one shard file read per shard, whatever plan.size() is),
/// emits Prefetch hints between ranges, and fails if a lazy range load
/// fails — collectors are then left partially filled and must be
/// discarded. `checkpoint`, when set, is polled before each range; a
/// non-ok return aborts the sweep with that status (the serving layer
/// uses it to shed sweeps whose deadline has already passed instead of
/// finishing work nobody is waiting for).
void RunSweep(const AdsSet& set, SweepPlan& plan, uint32_t num_threads = 0);
void RunSweep(const FlatAdsSet& set, SweepPlan& plan,
              uint32_t num_threads = 0);
Status RunSweep(const AdsBackend& set, SweepPlan& plan,
                uint32_t num_threads = 0,
                const std::function<Status()>& checkpoint = {});

}  // namespace hipads

#endif  // HIPADS_ADS_SWEEP_H_
