#include "ads/queries.h"

#include <algorithm>

#include "ads/estimators.h"

namespace hipads {

std::map<double, double> EstimateDistanceDistribution(const AdsSet& set) {
  std::map<double, double> hist;
  for (NodeId v = 0; v < set.ads.size(); ++v) {
    HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
    for (const HipEntry& e : est.entries()) {
      if (e.dist > 0.0) hist[e.dist] += e.weight;
    }
  }
  return hist;
}

std::map<double, double> EstimateNeighborhoodFunction(const AdsSet& set) {
  std::map<double, double> hist = EstimateDistanceDistribution(set);
  double running = 0.0;
  for (auto& [d, value] : hist) {
    running += value;
    value = running;
  }
  return hist;
}

std::vector<double> EstimateClosenessAll(
    const AdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta) {
  std::vector<double> result;
  result.reserve(set.ads.size());
  for (NodeId v = 0; v < set.ads.size(); ++v) {
    HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
    result.push_back(est.Closeness(alpha, beta));
  }
  return result;
}

std::vector<double> EstimateDistanceSumAll(const AdsSet& set) {
  std::vector<double> result;
  result.reserve(set.ads.size());
  for (NodeId v = 0; v < set.ads.size(); ++v) {
    HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
    result.push_back(est.DistanceSum());
  }
  return result;
}

std::vector<double> EstimateHarmonicCentralityAll(const AdsSet& set) {
  std::vector<double> result;
  result.reserve(set.ads.size());
  for (NodeId v = 0; v < set.ads.size(); ++v) {
    HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
    result.push_back(est.HarmonicCentrality());
  }
  return result;
}

std::vector<double> EstimateNeighborhoodSizeAll(const AdsSet& set, double d) {
  std::vector<double> result;
  result.reserve(set.ads.size());
  for (NodeId v = 0; v < set.ads.size(); ++v) {
    HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
    result.push_back(est.NeighborhoodCardinality(d));
  }
  return result;
}

double EstimateEffectiveDiameter(const AdsSet& set, double quantile) {
  auto nf = EstimateNeighborhoodFunction(set);
  if (nf.empty()) return 0.0;
  double total = nf.rbegin()->second;
  for (const auto& [d, pairs] : nf) {
    if (pairs >= quantile * total) return d;
  }
  return nf.rbegin()->first;
}

double EstimateMeanDistance(const AdsSet& set) {
  double weight = 0.0, weighted_dist = 0.0;
  for (const auto& [d, pairs] : EstimateDistanceDistribution(set)) {
    weight += pairs;
    weighted_dist += d * pairs;
  }
  return weight > 0.0 ? weighted_dist / weight : 0.0;
}

std::vector<NodeId> TopKNodes(const std::vector<double>& scores,
                              uint32_t count) {
  std::vector<NodeId> order(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) order[v] = v;
  uint32_t take = std::min<uint32_t>(count, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(take);
  return order;
}

}  // namespace hipads
