#include "ads/queries.h"

#include <algorithm>

#include "ads/estimators.h"
#include "util/parallel.h"

namespace hipads {

namespace {

// Nodes per parallel block for the distribution accumulators: large enough
// to amortize scheduling, small enough to bound the buffered per-node HIP
// entry lists (a block's buffers are reduced and freed before the next
// block starts).
constexpr size_t kDistributionBlock = 4096;

AdsView ViewOf(const AdsSet& set, NodeId v) { return set.of(v).view(); }
AdsView ViewOf(const FlatAdsSet& set, NodeId v) { return set.of(v); }

// Adapter presenting one backend range to the estimator kernels with the
// same member surface as AdsSet/FlatAdsSet (k/flavor/ranks + per-node
// views, node ids local to the range). Sharing the kernels is what makes
// backend results bitwise identical to the single-arena overloads.
struct ArenaSet {
  AdsArenaView arena;
  SketchFlavor flavor;
  uint32_t k;
  const RankAssignment& ranks;
  size_t num_nodes() const { return arena.num_nodes(); }
};
AdsView ViewOf(const ArenaSet& set, NodeId v) { return set.arena.of_local(v); }

// Per-node map: result[v] = fn(HipEstimator of node v). Independent outputs
// indexed by node, so any thread count produces identical results.
template <typename SetT, typename Fn>
std::vector<double> PerNodeEstimate(const SetT& set, uint32_t num_threads,
                                    const Fn& fn) {
  std::vector<double> result(set.num_nodes());
  ThreadPool pool(num_threads);
  pool.ParallelFor(set.num_nodes(), [&](size_t begin, size_t end, uint32_t) {
    for (size_t v = begin; v < end; ++v) {
      HipEstimator est(ViewOf(set, static_cast<NodeId>(v)), set.k,
                       set.flavor, set.ranks);
      result[v] = fn(est);
    }
  });
  return result;
}

// Distance distribution: HIP weighting is computed in parallel per block,
// but blocks and nodes within a block are reduced into the histogram in
// node order, so the floating-point accumulation order (and hence the
// result, bitwise) is independent of the thread count. The accumulator
// appends into a caller-owned histogram so the sharded sweep can chain
// shard arenas while preserving that per-node accumulation order exactly.
template <typename SetT>
void AccumulateDistanceDistribution(const SetT& set, uint32_t num_threads,
                                    std::map<double, double>& hist) {
  ThreadPool pool(num_threads);
  size_t n = set.num_nodes();
  std::vector<std::vector<HipEntry>> block_entries(
      std::min(n, kDistributionBlock));
  for (size_t block = 0; block < n; block += kDistributionBlock) {
    size_t block_end = std::min(n, block + kDistributionBlock);
    pool.ParallelFor(block_end - block,
                     [&](size_t begin, size_t end, uint32_t) {
                       for (size_t i = begin; i < end; ++i) {
                         NodeId v = static_cast<NodeId>(block + i);
                         block_entries[i] = ComputeHipWeights(
                             ViewOf(set, v), set.k, set.flavor, set.ranks);
                       }
                     });
    for (size_t i = 0; i < block_end - block; ++i) {
      for (const HipEntry& e : block_entries[i]) {
        if (e.dist > 0.0) hist[e.dist] += e.weight;
      }
    }
  }
}

template <typename SetT>
std::map<double, double> DistanceDistributionImpl(const SetT& set,
                                                  uint32_t num_threads) {
  std::map<double, double> hist;
  AccumulateDistanceDistribution(set, num_threads, hist);
  return hist;
}

// Turns a distance-distribution histogram into the cumulative
// neighbourhood function, in place.
void CumulativeInPlace(std::map<double, double>& hist) {
  double running = 0.0;
  for (auto& [d, value] : hist) {
    running += value;
    value = running;
  }
}

template <typename SetT>
std::map<double, double> NeighborhoodFunctionImpl(const SetT& set,
                                                  uint32_t num_threads) {
  std::map<double, double> hist = DistanceDistributionImpl(set, num_threads);
  CumulativeInPlace(hist);
  return hist;
}

double EffectiveDiameterOf(const std::map<double, double>& nf,
                           double quantile) {
  if (nf.empty()) return 0.0;
  double total = nf.rbegin()->second;
  for (const auto& [d, pairs] : nf) {
    if (pairs >= quantile * total) return d;
  }
  return nf.rbegin()->first;
}

template <typename SetT>
double EffectiveDiameterImpl(const SetT& set, double quantile) {
  return EffectiveDiameterOf(EstimateNeighborhoodFunction(set), quantile);
}

double MeanDistanceOf(const std::map<double, double>& dd) {
  double weight = 0.0, weighted_dist = 0.0;
  for (const auto& [d, pairs] : dd) {
    weight += pairs;
    weighted_dist += d * pairs;
  }
  return weight > 0.0 ? weighted_dist / weight : 0.0;
}

template <typename SetT>
double MeanDistanceImpl(const SetT& set) {
  return MeanDistanceOf(EstimateDistanceDistribution(set));
}

// Backend per-node sweep: ranges are visited in node order, each swept
// with the same PerNodeEstimate kernel as the single-arena overloads, so
// every per-node value is computed identically (the outputs are
// independent per node). After a range is acquired the sweep hints the
// next one, letting prefetching backends overlap its load with this
// range's compute. Fails if a lazy range load fails.
template <typename Fn>
StatusOr<std::vector<double>> BackendPerNodeEstimate(const AdsBackend& set,
                                                     uint32_t num_threads,
                                                     const Fn& fn) {
  std::vector<double> result(set.num_nodes());
  for (uint32_t r = 0; r < set.NumRanges(); ++r) {
    auto range = set.Range(r);
    if (!range.ok()) return range.status();
    if (r + 1 < set.NumRanges()) set.Prefetch(r + 1);
    ArenaSet arena{range.value(), set.flavor(), set.k(), set.ranks()};
    std::vector<double> part = PerNodeEstimate(arena, num_threads, fn);
    std::copy(part.begin(), part.end(),
              result.begin() + range.value().begin);
  }
  return result;
}

StatusOr<std::map<double, double>> BackendDistanceDistribution(
    const AdsBackend& set, uint32_t num_threads) {
  std::map<double, double> hist;
  for (uint32_t r = 0; r < set.NumRanges(); ++r) {
    auto range = set.Range(r);
    if (!range.ok()) return range.status();
    if (r + 1 < set.NumRanges()) set.Prefetch(r + 1);
    ArenaSet arena{range.value(), set.flavor(), set.k(), set.ranks()};
    AccumulateDistanceDistribution(arena, num_threads, hist);
  }
  return hist;
}

}  // namespace

std::map<double, double> EstimateDistanceDistribution(const AdsSet& set,
                                                      uint32_t num_threads) {
  return DistanceDistributionImpl(set, num_threads);
}

std::map<double, double> EstimateDistanceDistribution(const FlatAdsSet& set,
                                                      uint32_t num_threads) {
  return DistanceDistributionImpl(set, num_threads);
}

std::map<double, double> EstimateNeighborhoodFunction(const AdsSet& set,
                                                      uint32_t num_threads) {
  return NeighborhoodFunctionImpl(set, num_threads);
}

std::map<double, double> EstimateNeighborhoodFunction(const FlatAdsSet& set,
                                                      uint32_t num_threads) {
  return NeighborhoodFunctionImpl(set, num_threads);
}

std::vector<double> EstimateClosenessAll(
    const AdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [&](const HipEstimator& est) {
    return est.Closeness(alpha, beta);
  });
}

std::vector<double> EstimateClosenessAll(
    const FlatAdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [&](const HipEstimator& est) {
    return est.Closeness(alpha, beta);
  });
}

std::vector<double> EstimateDistanceSumAll(const AdsSet& set,
                                           uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.DistanceSum();
  });
}

std::vector<double> EstimateDistanceSumAll(const FlatAdsSet& set,
                                           uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.DistanceSum();
  });
}

std::vector<double> EstimateHarmonicCentralityAll(const AdsSet& set,
                                                  uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.HarmonicCentrality();
  });
}

std::vector<double> EstimateHarmonicCentralityAll(const FlatAdsSet& set,
                                                  uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.HarmonicCentrality();
  });
}

std::vector<double> EstimateNeighborhoodSizeAll(const AdsSet& set, double d,
                                                uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [d](const HipEstimator& est) {
    return est.NeighborhoodCardinality(d);
  });
}

std::vector<double> EstimateNeighborhoodSizeAll(const FlatAdsSet& set,
                                                double d,
                                                uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [d](const HipEstimator& est) {
    return est.NeighborhoodCardinality(d);
  });
}

std::vector<double> EstimateReachableCountAll(const AdsSet& set,
                                              uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.ReachableCount();
  });
}

std::vector<double> EstimateReachableCountAll(const FlatAdsSet& set,
                                              uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.ReachableCount();
  });
}

double EstimateEffectiveDiameter(const AdsSet& set, double quantile) {
  return EffectiveDiameterImpl(set, quantile);
}

double EstimateEffectiveDiameter(const FlatAdsSet& set, double quantile) {
  return EffectiveDiameterImpl(set, quantile);
}

double EstimateMeanDistance(const AdsSet& set) {
  return MeanDistanceImpl(set);
}

double EstimateMeanDistance(const FlatAdsSet& set) {
  return MeanDistanceImpl(set);
}

StatusOr<std::map<double, double>> EstimateDistanceDistribution(
    const AdsBackend& set, uint32_t num_threads) {
  return BackendDistanceDistribution(set, num_threads);
}

StatusOr<std::map<double, double>> EstimateNeighborhoodFunction(
    const AdsBackend& set, uint32_t num_threads) {
  auto hist = BackendDistanceDistribution(set, num_threads);
  if (!hist.ok()) return hist.status();
  CumulativeInPlace(hist.value());
  return hist;
}

StatusOr<std::vector<double>> EstimateClosenessAll(
    const AdsBackend& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads) {
  return BackendPerNodeEstimate(set, num_threads,
                                [&](const HipEstimator& est) {
                                  return est.Closeness(alpha, beta);
                                });
}

StatusOr<std::vector<double>> EstimateDistanceSumAll(const AdsBackend& set,
                                                     uint32_t num_threads) {
  return BackendPerNodeEstimate(set, num_threads,
                                [](const HipEstimator& est) {
                                  return est.DistanceSum();
                                });
}

StatusOr<std::vector<double>> EstimateHarmonicCentralityAll(
    const AdsBackend& set, uint32_t num_threads) {
  return BackendPerNodeEstimate(set, num_threads,
                                [](const HipEstimator& est) {
                                  return est.HarmonicCentrality();
                                });
}

StatusOr<std::vector<double>> EstimateNeighborhoodSizeAll(
    const AdsBackend& set, double d, uint32_t num_threads) {
  return BackendPerNodeEstimate(set, num_threads,
                                [d](const HipEstimator& est) {
                                  return est.NeighborhoodCardinality(d);
                                });
}

StatusOr<std::vector<double>> EstimateReachableCountAll(
    const AdsBackend& set, uint32_t num_threads) {
  return BackendPerNodeEstimate(set, num_threads,
                                [](const HipEstimator& est) {
                                  return est.ReachableCount();
                                });
}

StatusOr<double> EstimateEffectiveDiameter(const AdsBackend& set,
                                           double quantile) {
  auto nf = EstimateNeighborhoodFunction(set);
  if (!nf.ok()) return nf.status();
  return EffectiveDiameterOf(nf.value(), quantile);
}

StatusOr<double> EstimateMeanDistance(const AdsBackend& set) {
  auto dd = EstimateDistanceDistribution(set);
  if (!dd.ok()) return dd.status();
  return MeanDistanceOf(dd.value());
}

std::vector<NodeId> TopKNodes(const std::vector<double>& scores,
                              uint32_t count) {
  std::vector<NodeId> order(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) order[v] = v;
  uint32_t take = std::min<uint32_t>(count, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(take);
  return order;
}

}  // namespace hipads
