#include "ads/queries.h"

namespace hipads {

namespace {

// Every whole-graph query below is a thin single-collector SweepPlan over
// the fused sweep executor (ads/sweep.h) — the executor owns the one
// sweep implementation in the codebase (blocking, threading, range order,
// prefetch hints), and these helpers collapse the former
// AdsSet/FlatAdsSet/AdsBackend overload triplication into one body each.
// Callers wanting several statistics from one pass should build their own
// SweepPlan instead of calling several of these.

template <typename SetT>
std::vector<double> PerNodeQuery(
    const SetT& set, uint32_t num_threads,
    std::function<double(const HipEstimator&)> fn) {
  SweepPlan plan;
  PerNodeCollector* c = plan.Emplace<PerNodeCollector>(std::move(fn));
  RunSweep(set, plan, num_threads);
  return c->TakeValues();
}

StatusOr<std::vector<double>> PerNodeQuery(
    const AdsBackend& set, uint32_t num_threads,
    std::function<double(const HipEstimator&)> fn) {
  SweepPlan plan;
  PerNodeCollector* c = plan.Emplace<PerNodeCollector>(std::move(fn));
  Status status = RunSweep(set, plan, num_threads);
  if (!status.ok()) return status;
  return c->TakeValues();
}

// One histogram sweep; the caller reads whichever derived statistic it
// wants off the collector.
template <typename SetT>
DistanceHistogramCollector HistogramSweep(const SetT& set,
                                          uint32_t num_threads) {
  DistanceHistogramCollector hist;
  SweepPlan plan;
  plan.Add(&hist);
  RunSweep(set, plan, num_threads);
  return hist;
}

StatusOr<DistanceHistogramCollector> HistogramSweep(const AdsBackend& set,
                                                    uint32_t num_threads) {
  DistanceHistogramCollector hist;
  SweepPlan plan;
  plan.Add(&hist);
  Status status = RunSweep(set, plan, num_threads);
  if (!status.ok()) return status;
  return hist;
}

}  // namespace

std::map<double, double> EstimateDistanceDistribution(const AdsSet& set,
                                                      uint32_t num_threads) {
  return HistogramSweep(set, num_threads).Distribution();
}

std::map<double, double> EstimateDistanceDistribution(const FlatAdsSet& set,
                                                      uint32_t num_threads) {
  return HistogramSweep(set, num_threads).Distribution();
}

StatusOr<std::map<double, double>> EstimateDistanceDistribution(
    const AdsBackend& set, uint32_t num_threads) {
  auto hist = HistogramSweep(set, num_threads);
  if (!hist.ok()) return hist.status();
  return hist.value().Distribution();
}

std::map<double, double> EstimateNeighborhoodFunction(const AdsSet& set,
                                                      uint32_t num_threads) {
  return HistogramSweep(set, num_threads).NeighborhoodFunction();
}

std::map<double, double> EstimateNeighborhoodFunction(const FlatAdsSet& set,
                                                      uint32_t num_threads) {
  return HistogramSweep(set, num_threads).NeighborhoodFunction();
}

StatusOr<std::map<double, double>> EstimateNeighborhoodFunction(
    const AdsBackend& set, uint32_t num_threads) {
  auto hist = HistogramSweep(set, num_threads);
  if (!hist.ok()) return hist.status();
  return hist.value().NeighborhoodFunction();
}

std::vector<double> EstimateClosenessAll(
    const AdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [&](const HipEstimator& est) {
    return est.Closeness(alpha, beta);
  });
}

std::vector<double> EstimateClosenessAll(
    const FlatAdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [&](const HipEstimator& est) {
    return est.Closeness(alpha, beta);
  });
}

StatusOr<std::vector<double>> EstimateClosenessAll(
    const AdsBackend& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [&](const HipEstimator& est) {
    return est.Closeness(alpha, beta);
  });
}

std::vector<double> EstimateDistanceSumAll(const AdsSet& set,
                                           uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [](const HipEstimator& est) {
    return est.DistanceSum();
  });
}

std::vector<double> EstimateDistanceSumAll(const FlatAdsSet& set,
                                           uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [](const HipEstimator& est) {
    return est.DistanceSum();
  });
}

StatusOr<std::vector<double>> EstimateDistanceSumAll(const AdsBackend& set,
                                                     uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [](const HipEstimator& est) {
    return est.DistanceSum();
  });
}

std::vector<double> EstimateHarmonicCentralityAll(const AdsSet& set,
                                                  uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [](const HipEstimator& est) {
    return est.HarmonicCentrality();
  });
}

std::vector<double> EstimateHarmonicCentralityAll(const FlatAdsSet& set,
                                                  uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [](const HipEstimator& est) {
    return est.HarmonicCentrality();
  });
}

StatusOr<std::vector<double>> EstimateHarmonicCentralityAll(
    const AdsBackend& set, uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [](const HipEstimator& est) {
    return est.HarmonicCentrality();
  });
}

std::vector<double> EstimateNeighborhoodSizeAll(const AdsSet& set, double d,
                                                uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [d](const HipEstimator& est) {
    return est.NeighborhoodCardinality(d);
  });
}

std::vector<double> EstimateNeighborhoodSizeAll(const FlatAdsSet& set,
                                                double d,
                                                uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [d](const HipEstimator& est) {
    return est.NeighborhoodCardinality(d);
  });
}

StatusOr<std::vector<double>> EstimateNeighborhoodSizeAll(
    const AdsBackend& set, double d, uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [d](const HipEstimator& est) {
    return est.NeighborhoodCardinality(d);
  });
}

std::vector<double> EstimateReachableCountAll(const AdsSet& set,
                                              uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [](const HipEstimator& est) {
    return est.ReachableCount();
  });
}

std::vector<double> EstimateReachableCountAll(const FlatAdsSet& set,
                                              uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [](const HipEstimator& est) {
    return est.ReachableCount();
  });
}

StatusOr<std::vector<double>> EstimateReachableCountAll(
    const AdsBackend& set, uint32_t num_threads) {
  return PerNodeQuery(set, num_threads, [](const HipEstimator& est) {
    return est.ReachableCount();
  });
}

double EstimateEffectiveDiameter(const AdsSet& set, double quantile) {
  return HistogramSweep(set, 0).EffectiveDiameter(quantile);
}

double EstimateEffectiveDiameter(const FlatAdsSet& set, double quantile) {
  return HistogramSweep(set, 0).EffectiveDiameter(quantile);
}

StatusOr<double> EstimateEffectiveDiameter(const AdsBackend& set,
                                           double quantile) {
  auto hist = HistogramSweep(set, 0);
  if (!hist.ok()) return hist.status();
  return hist.value().EffectiveDiameter(quantile);
}

double EstimateMeanDistance(const AdsSet& set) {
  return HistogramSweep(set, 0).MeanDistance();
}

double EstimateMeanDistance(const FlatAdsSet& set) {
  return HistogramSweep(set, 0).MeanDistance();
}

StatusOr<double> EstimateMeanDistance(const AdsBackend& set) {
  auto hist = HistogramSweep(set, 0);
  if (!hist.ok()) return hist.status();
  return hist.value().MeanDistance();
}

}  // namespace hipads
