#include "ads/queries.h"

#include <algorithm>

#include "ads/estimators.h"
#include "util/parallel.h"

namespace hipads {

namespace {

// Nodes per parallel block for the distribution accumulators: large enough
// to amortize scheduling, small enough to bound the buffered per-node HIP
// entry lists (a block's buffers are reduced and freed before the next
// block starts).
constexpr size_t kDistributionBlock = 4096;

AdsView ViewOf(const AdsSet& set, NodeId v) { return set.of(v).view(); }
AdsView ViewOf(const FlatAdsSet& set, NodeId v) { return set.of(v); }

// Per-node map: result[v] = fn(HipEstimator of node v). Independent outputs
// indexed by node, so any thread count produces identical results.
template <typename SetT, typename Fn>
std::vector<double> PerNodeEstimate(const SetT& set, uint32_t num_threads,
                                    const Fn& fn) {
  std::vector<double> result(set.num_nodes());
  ThreadPool pool(num_threads);
  pool.ParallelFor(set.num_nodes(), [&](size_t begin, size_t end, uint32_t) {
    for (size_t v = begin; v < end; ++v) {
      HipEstimator est(ViewOf(set, static_cast<NodeId>(v)), set.k,
                       set.flavor, set.ranks);
      result[v] = fn(est);
    }
  });
  return result;
}

// Distance distribution: HIP weighting is computed in parallel per block,
// but blocks and nodes within a block are reduced into the histogram in
// node order, so the floating-point accumulation order (and hence the
// result, bitwise) is independent of the thread count.
template <typename SetT>
std::map<double, double> DistanceDistributionImpl(const SetT& set,
                                                  uint32_t num_threads) {
  std::map<double, double> hist;
  ThreadPool pool(num_threads);
  size_t n = set.num_nodes();
  std::vector<std::vector<HipEntry>> block_entries(
      std::min(n, kDistributionBlock));
  for (size_t block = 0; block < n; block += kDistributionBlock) {
    size_t block_end = std::min(n, block + kDistributionBlock);
    pool.ParallelFor(block_end - block,
                     [&](size_t begin, size_t end, uint32_t) {
                       for (size_t i = begin; i < end; ++i) {
                         NodeId v = static_cast<NodeId>(block + i);
                         block_entries[i] = ComputeHipWeights(
                             ViewOf(set, v), set.k, set.flavor, set.ranks);
                       }
                     });
    for (size_t i = 0; i < block_end - block; ++i) {
      for (const HipEntry& e : block_entries[i]) {
        if (e.dist > 0.0) hist[e.dist] += e.weight;
      }
    }
  }
  return hist;
}

template <typename SetT>
std::map<double, double> NeighborhoodFunctionImpl(const SetT& set,
                                                  uint32_t num_threads) {
  std::map<double, double> hist = DistanceDistributionImpl(set, num_threads);
  double running = 0.0;
  for (auto& [d, value] : hist) {
    running += value;
    value = running;
  }
  return hist;
}

template <typename SetT>
double EffectiveDiameterImpl(const SetT& set, double quantile) {
  auto nf = EstimateNeighborhoodFunction(set);
  if (nf.empty()) return 0.0;
  double total = nf.rbegin()->second;
  for (const auto& [d, pairs] : nf) {
    if (pairs >= quantile * total) return d;
  }
  return nf.rbegin()->first;
}

template <typename SetT>
double MeanDistanceImpl(const SetT& set) {
  double weight = 0.0, weighted_dist = 0.0;
  for (const auto& [d, pairs] : EstimateDistanceDistribution(set)) {
    weight += pairs;
    weighted_dist += d * pairs;
  }
  return weight > 0.0 ? weighted_dist / weight : 0.0;
}

}  // namespace

std::map<double, double> EstimateDistanceDistribution(const AdsSet& set,
                                                      uint32_t num_threads) {
  return DistanceDistributionImpl(set, num_threads);
}

std::map<double, double> EstimateDistanceDistribution(const FlatAdsSet& set,
                                                      uint32_t num_threads) {
  return DistanceDistributionImpl(set, num_threads);
}

std::map<double, double> EstimateNeighborhoodFunction(const AdsSet& set,
                                                      uint32_t num_threads) {
  return NeighborhoodFunctionImpl(set, num_threads);
}

std::map<double, double> EstimateNeighborhoodFunction(const FlatAdsSet& set,
                                                      uint32_t num_threads) {
  return NeighborhoodFunctionImpl(set, num_threads);
}

std::vector<double> EstimateClosenessAll(
    const AdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [&](const HipEstimator& est) {
    return est.Closeness(alpha, beta);
  });
}

std::vector<double> EstimateClosenessAll(
    const FlatAdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [&](const HipEstimator& est) {
    return est.Closeness(alpha, beta);
  });
}

std::vector<double> EstimateDistanceSumAll(const AdsSet& set,
                                           uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.DistanceSum();
  });
}

std::vector<double> EstimateDistanceSumAll(const FlatAdsSet& set,
                                           uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.DistanceSum();
  });
}

std::vector<double> EstimateHarmonicCentralityAll(const AdsSet& set,
                                                  uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.HarmonicCentrality();
  });
}

std::vector<double> EstimateHarmonicCentralityAll(const FlatAdsSet& set,
                                                  uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.HarmonicCentrality();
  });
}

std::vector<double> EstimateNeighborhoodSizeAll(const AdsSet& set, double d,
                                                uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [d](const HipEstimator& est) {
    return est.NeighborhoodCardinality(d);
  });
}

std::vector<double> EstimateNeighborhoodSizeAll(const FlatAdsSet& set,
                                                double d,
                                                uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [d](const HipEstimator& est) {
    return est.NeighborhoodCardinality(d);
  });
}

std::vector<double> EstimateReachableCountAll(const AdsSet& set,
                                              uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.ReachableCount();
  });
}

std::vector<double> EstimateReachableCountAll(const FlatAdsSet& set,
                                              uint32_t num_threads) {
  return PerNodeEstimate(set, num_threads, [](const HipEstimator& est) {
    return est.ReachableCount();
  });
}

double EstimateEffectiveDiameter(const AdsSet& set, double quantile) {
  return EffectiveDiameterImpl(set, quantile);
}

double EstimateEffectiveDiameter(const FlatAdsSet& set, double quantile) {
  return EffectiveDiameterImpl(set, quantile);
}

double EstimateMeanDistance(const AdsSet& set) {
  return MeanDistanceImpl(set);
}

double EstimateMeanDistance(const FlatAdsSet& set) {
  return MeanDistanceImpl(set);
}

std::vector<NodeId> TopKNodes(const std::vector<double>& scores,
                              uint32_t count) {
  std::vector<NodeId> order(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) order[v] = v;
  uint32_t take = std::min<uint32_t>(count, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(take);
  return order;
}

}  // namespace hipads
