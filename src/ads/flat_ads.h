// Flat CSR storage for the ADSs of a whole graph.
//
// AdsSet keeps one heap-allocated std::vector<AdsEntry> per node — n + 1
// allocations and a pointer chase per node, which is what every whole-graph
// estimator loop (neighborhood function, centrality sweeps, HIP weighting)
// pays on its hot path. FlatAdsSet stores the same sketches as a single
// contiguous arena indexed CSR-style:
//
//   offsets[v] .. offsets[v+1]   the entries of ADS(v), canonical order
//
// so a whole-graph sweep is one linear pass over memory. Per-node access
// returns an AdsView (a span), which is the query surface shared with Ads;
// estimators, HIP weighting, serialization and the CLI all run off either
// storage, but the flat arena is the layout the scaling path uses.

#ifndef HIPADS_ADS_FLAT_ADS_H_
#define HIPADS_ADS_FLAT_ADS_H_

#include <cstdint>
#include <vector>

#include "ads/ads.h"

namespace hipads {

/// ADSs of all nodes of one graph in one contiguous arena, plus the
/// parameters that define them. The members mirror AdsSet so the two are
/// interchangeable behind the query/estimator templates.
struct FlatAdsSet {
  SketchFlavor flavor = SketchFlavor::kBottomK;
  uint32_t k = 0;
  RankAssignment ranks = RankAssignment::Uniform(0);
  std::vector<uint64_t> offsets{0};  // size num_nodes + 1
  std::vector<AdsEntry> entries;     // canonical order per node, contiguous

  size_t num_nodes() const { return offsets.size() - 1; }
  uint64_t TotalEntries() const { return entries.size(); }

  /// View of ADS(v).
  AdsView of(NodeId v) const {
    return AdsView({entries.data() + offsets[v],
                    entries.data() + offsets[v + 1]});
  }

  /// Appends the next node's ADS (builders emit nodes in id order).
  void AppendNode(const std::vector<AdsEntry>& node_entries) {
    entries.insert(entries.end(), node_entries.begin(), node_entries.end());
    offsets.push_back(entries.size());
  }

  /// Flattens a per-node-vector set into one arena. The entries are copied
  /// in node order; the source is left untouched.
  static FlatAdsSet FromAdsSet(const AdsSet& set);

  /// Expands back into the per-node-vector representation (compat shim for
  /// callers that still want owning Ads objects).
  AdsSet ToAdsSet() const;
};

}  // namespace hipads

#endif  // HIPADS_ADS_FLAT_ADS_H_
