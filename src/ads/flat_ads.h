// Flat CSR storage for the ADSs of a whole graph.
//
// AdsSet keeps one heap-allocated std::vector<AdsEntry> per node — n + 1
// allocations and a pointer chase per node, which is what every whole-graph
// estimator loop (neighborhood function, centrality sweeps, HIP weighting)
// pays on its hot path. FlatAdsSet stores the same sketches as a single
// contiguous arena indexed CSR-style:
//
//   offsets[v] .. offsets[v+1]   the entries of ADS(v), canonical order
//
// so a whole-graph sweep is one linear pass over memory. Per-node access
// returns an AdsView (a span), which is the query surface shared with Ads;
// estimators, HIP weighting, serialization and the CLI all run off either
// storage, but the flat arena is the layout the scaling path uses.

#ifndef HIPADS_ADS_FLAT_ADS_H_
#define HIPADS_ADS_FLAT_ADS_H_

#include <cstdint>
#include <vector>

#include "ads/ads.h"

namespace hipads {

/// ADSs of all nodes of one graph in one contiguous arena, plus the
/// parameters that define them. The members mirror AdsSet so the two are
/// interchangeable behind the query/estimator templates.
struct FlatAdsSet {
  SketchFlavor flavor = SketchFlavor::kBottomK;
  uint32_t k = 0;
  RankAssignment ranks = RankAssignment::Uniform(0);
  std::vector<uint64_t> offsets{0};  // size num_nodes + 1
  std::vector<AdsEntry> entries;     // canonical order per node, contiguous
  // Optional precomputed HIP weights, aligned with `entries` (tau[i] /
  // weight[i] belong to entries[i]; k-mins runs store the group weight at
  // the first member, zeros at the rest — see hip.h). Either both empty or
  // both entries.size(); filled by PrecomputeHipWeights or loaded from a
  // file's HIP section, and serialized back out when present.
  std::vector<double> hip_tau;
  std::vector<double> hip_weight;

  size_t num_nodes() const { return offsets.size() - 1; }
  uint64_t TotalEntries() const { return entries.size(); }
  bool has_hip() const { return !hip_tau.empty(); }

  /// View of ADS(v).
  AdsView of(NodeId v) const {
    return AdsView({entries.data() + offsets[v],
                    entries.data() + offsets[v + 1]});
  }

  /// Appends the next node's ADS (builders emit nodes in id order).
  void AppendNode(const std::vector<AdsEntry>& node_entries) {
    entries.insert(entries.end(), node_entries.begin(), node_entries.end());
    offsets.push_back(entries.size());
  }

  /// Flattens a per-node-vector set into one arena. The entries are copied
  /// in node order; the source is left untouched.
  static FlatAdsSet FromAdsSet(const AdsSet& set);

  /// Expands back into the per-node-vector representation (compat shim for
  /// callers that still want owning Ads objects).
  AdsSet ToAdsSet() const;
};

/// Non-owning structure-of-arrays view of one node's ADS: component i of
/// each array describes the i-th entry in canonical (dist, node, part)
/// order — the same logical sequence an AdsView spans, split into one
/// stream per field.
struct SoaAdsView {
  const NodeId* node = nullptr;
  const uint32_t* part = nullptr;
  const double* rank = nullptr;
  const double* dist = nullptr;
  size_t size = 0;
};

/// Structure-of-arrays mirror of a FlatAdsSet arena: the same sketches,
/// CSR-indexed, with each AdsEntry field in its own contiguous array. The
/// HIP scan reads only (rank, dist) of every entry — 16 of AdsEntry's 24
/// bytes — so splitting the fields was the ROADMAP's candidate layout for
/// the estimator sweeps. Measured on the bench_serve sweep benchmarks it
/// does NOT beat the AoS arena (see BENCH_serve.json and README "Query
/// engine"), and conversion costs a full copy that the zero-copy mmap
/// path cannot pay — so this layout is an experiment the benchmarks keep
/// honest, not a serving default. The HIP kernels accept either layout
/// and produce bitwise-identical weights (sweep_test).
struct SoaAdsArena {
  SketchFlavor flavor = SketchFlavor::kBottomK;
  uint32_t k = 0;
  RankAssignment ranks = RankAssignment::Uniform(0);
  std::vector<uint64_t> offsets{0};  // size num_nodes + 1
  std::vector<NodeId> node;
  std::vector<uint32_t> part;
  std::vector<double> rank;
  std::vector<double> dist;

  size_t num_nodes() const { return offsets.size() - 1; }
  uint64_t TotalEntries() const { return dist.size(); }

  /// SoA view of ADS(v).
  SoaAdsView of(NodeId v) const {
    uint64_t begin = offsets[v];
    return SoaAdsView{node.data() + begin, part.data() + begin,
                      rank.data() + begin, dist.data() + begin,
                      static_cast<size_t>(offsets[v + 1] - begin)};
  }

  /// Splits a flat AoS arena into per-field arrays (full copy).
  static SoaAdsArena FromFlat(const FlatAdsSet& set);
};

}  // namespace hipads

#endif  // HIPADS_ADS_FLAT_ADS_H_
