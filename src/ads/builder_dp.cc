// Dynamic-programming (Bellman-Ford style) ADS construction for unweighted
// graphs (paper Section 3; the ANF / hyperANF computation pattern).
//
// Round d relaxes every arc whose sink gained entries in round d-1, so
// candidate entries are generated in increasing distance and, once inserted,
// are final. Within a round, candidates of one target node are applied in
// increasing node-id order, which realizes the same (distance, node id) tie
// breaking as the pruned-Dijkstra builder — the two produce identical ADSs.

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "ads/builders.h"
#include "util/parallel.h"

namespace hipads {

namespace {

struct Candidate {
  NodeId target;
  NodeId node;
  double rank;
};

// One bottom-k DP pass with ranks from assignment index `perm`, entries
// labeled `part`. `is_source` limits which nodes seed their own ADS
// (nullptr = all nodes); used by the k-partition flavor.
void RunDpPass(const Graph& gt, uint32_t k, uint32_t part, uint32_t perm,
               const RankAssignment& ranks,
               const std::vector<bool>* is_source,
               std::vector<std::vector<AdsEntry>>& out,
               AdsBuildStats* stats) {
  NodeId n = gt.num_nodes();
  // Rank threshold state of each target ADS in this pass.
  std::vector<BottomKSketch> threshold(n, BottomKSketch(k, ranks.sup()));
  // Membership of (target, node) pairs inserted in this pass.
  std::unordered_set<uint64_t> member;
  auto key = [](NodeId target, NodeId node) {
    return (static_cast<uint64_t>(target) << 32) | node;
  };

  // Frontier: entries inserted in the previous round, as (owner, node, rank).
  std::vector<Candidate> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (is_source != nullptr && !(*is_source)[v]) continue;
    double rv = ranks.rank(v, perm);
    out[v].push_back(AdsEntry{v, part, rv, 0.0});
    threshold[v].Update(rv);
    member.insert(key(v, v));
    frontier.push_back(Candidate{v, v, rv});
    if (stats != nullptr) ++stats->insertions;
  }

  double d = 0.0;
  std::vector<Candidate> candidates;
  while (!frontier.empty()) {
    d += 1.0;
    if (stats != nullptr) ++stats->rounds;
    candidates.clear();
    // Propagate last round's new entries across (transpose) arcs.
    for (const Candidate& f : frontier) {
      for (const Arc& a : gt.OutArcs(f.target)) {
        if (stats != nullptr) ++stats->relaxations;
        candidates.push_back(Candidate{a.head, f.node, f.rank});
      }
    }
    frontier.clear();
    // Apply candidates per target in increasing node-id order so that ties
    // at distance d resolve by the canonical rank-independent order: a
    // candidate's threshold counts exactly the members that are lex-closer
    // (prior rounds, plus this round's smaller ids, already applied).
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.target != b.target) return a.target < b.target;
                return a.node < b.node;
              });
    for (const Candidate& c : candidates) {
      if (c.rank >= threshold[c.target].Threshold()) continue;
      if (!member.insert(key(c.target, c.node)).second) continue;
      out[c.target].push_back(AdsEntry{c.node, part, c.rank, d});
      threshold[c.target].Update(c.rank);
      frontier.push_back(Candidate{c.target, c.node, c.rank});
      if (stats != nullptr) ++stats->insertions;
    }
  }
}

// Parallel variant of RunDpPass: candidate generation is sharded over the
// frontier, application over contiguous target ranges of the sorted
// candidate array, so every target's state is owned by exactly one thread
// per round. Applying candidates in the same (target, node) order as the
// sequential pass makes the output bit-identical. Rounds run on the shared
// ThreadPool (spawned once per build, not per round).
void RunDpPassParallel(const Graph& gt, uint32_t k, uint32_t part,
                       uint32_t perm, const RankAssignment& ranks,
                       const std::vector<bool>* is_source, ThreadPool& pool,
                       std::vector<std::vector<AdsEntry>>& out,
                       AdsBuildStats* stats) {
  const uint32_t num_threads = pool.num_threads();
  NodeId n = gt.num_nodes();
  std::vector<BottomKSketch> threshold(n, BottomKSketch(k, ranks.sup()));
  // Per-target membership: within a round each target is touched by one
  // thread only, so no synchronization is needed.
  std::vector<std::unordered_set<NodeId>> member(n);

  std::vector<Candidate> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (is_source != nullptr && !(*is_source)[v]) continue;
    double rv = ranks.rank(v, perm);
    out[v].push_back(AdsEntry{v, part, rv, 0.0});
    threshold[v].Update(rv);
    member[v].insert(v);
    frontier.push_back(Candidate{v, v, rv});
    if (stats != nullptr) ++stats->insertions;
  }

  double d = 0.0;
  std::vector<Candidate> candidates;
  while (!frontier.empty()) {
    d += 1.0;
    if (stats != nullptr) ++stats->rounds;

    // Phase A: generate candidates, sharded over the frontier.
    std::vector<std::vector<Candidate>> shard_out(num_threads);
    pool.ParallelFor(frontier.size(),
                     [&](size_t begin, size_t end, uint32_t t) {
                       for (size_t i = begin; i < end; ++i) {
                         const Candidate& f = frontier[i];
                         for (const Arc& a : gt.OutArcs(f.target)) {
                           shard_out[t].push_back(
                               Candidate{a.head, f.node, f.rank});
                         }
                       }
                     });
    candidates.clear();
    for (auto& shard : shard_out) {
      if (stats != nullptr) stats->relaxations += shard.size();
      candidates.insert(candidates.end(), shard.begin(), shard.end());
    }
    frontier.clear();

    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.target != b.target) return a.target < b.target;
                return a.node < b.node;
              });

    // Phase B: apply candidates, sharded over disjoint target ranges.
    std::vector<std::vector<Candidate>> next_frontier(num_threads);
    std::vector<uint64_t> inserted(num_threads, 0);
    {
      size_t chunk = (candidates.size() + num_threads - 1) / num_threads;
      // Align shard boundaries to target changes so no target spans two
      // shards.
      std::vector<size_t> bounds = {0};
      for (uint32_t t = 1; t < num_threads; ++t) {
        size_t b = std::min(candidates.size(), t * chunk);
        while (b < candidates.size() && b > 0 &&
               candidates[b].target == candidates[b - 1].target) {
          ++b;
        }
        bounds.push_back(std::max(b, bounds.back()));
      }
      bounds.push_back(candidates.size());
      pool.ParallelRanges(bounds, [&](size_t begin, size_t end, uint32_t t) {
        for (size_t i = begin; i < end; ++i) {
          const Candidate& c = candidates[i];
          if (c.rank >= threshold[c.target].Threshold()) continue;
          if (!member[c.target].insert(c.node).second) continue;
          out[c.target].push_back(AdsEntry{c.node, part, c.rank, d});
          threshold[c.target].Update(c.rank);
          next_frontier[t].push_back(c);
          ++inserted[t];
        }
      });
    }
    for (uint32_t t = 0; t < num_threads; ++t) {
      if (stats != nullptr) stats->insertions += inserted[t];
      frontier.insert(frontier.end(), next_frontier[t].begin(),
                      next_frontier[t].end());
    }
  }
}

}  // namespace

AdsSet BuildAdsDpParallel(const Graph& g, uint32_t k, SketchFlavor flavor,
                          const RankAssignment& ranks, uint32_t num_threads,
                          AdsBuildStats* stats) {
  assert(k >= 1);
  assert(g.IsUnitWeight() && "the DP builder requires an unweighted graph");
  ThreadPool pool(num_threads);
  Graph gt = g.Transpose();
  NodeId n = g.num_nodes();
  std::vector<std::vector<AdsEntry>> out(n);
  ReserveExpectedAdsSize(out, k, flavor);

  switch (flavor) {
    case SketchFlavor::kBottomK:
      RunDpPassParallel(gt, k, 0, 0, ranks, nullptr, pool, out, stats);
      break;
    case SketchFlavor::kKMins:
      for (uint32_t p = 0; p < k; ++p) {
        RunDpPassParallel(gt, 1, p, p, ranks, nullptr, pool, out, stats);
      }
      break;
    case SketchFlavor::kKPartition:
      for (uint32_t h = 0; h < k; ++h) {
        std::vector<bool> in_bucket(n, false);
        for (NodeId v = 0; v < n; ++v) {
          in_bucket[v] = BucketHash(ranks.seed(), v, k) == h;
        }
        RunDpPassParallel(gt, 1, h, 0, ranks, &in_bucket, pool, out, stats);
      }
      break;
  }

  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.reserve(n);
  for (NodeId v = 0; v < n; ++v) set.ads.emplace_back(std::move(out[v]));
  return set;
}

AdsSet BuildAdsDp(const Graph& g, uint32_t k, SketchFlavor flavor,
                  const RankAssignment& ranks, AdsBuildStats* stats) {
  assert(k >= 1);
  assert(g.IsUnitWeight() && "the DP builder requires an unweighted graph");
  Graph gt = g.Transpose();
  NodeId n = g.num_nodes();
  std::vector<std::vector<AdsEntry>> out(n);
  ReserveExpectedAdsSize(out, k, flavor);

  switch (flavor) {
    case SketchFlavor::kBottomK:
      RunDpPass(gt, k, /*part=*/0, /*perm=*/0, ranks, nullptr, out, stats);
      break;
    case SketchFlavor::kKMins:
      for (uint32_t p = 0; p < k; ++p) {
        RunDpPass(gt, 1, /*part=*/p, /*perm=*/p, ranks, nullptr, out, stats);
      }
      break;
    case SketchFlavor::kKPartition: {
      for (uint32_t h = 0; h < k; ++h) {
        std::vector<bool> in_bucket(n, false);
        for (NodeId v = 0; v < n; ++v) {
          in_bucket[v] = BucketHash(ranks.seed(), v, k) == h;
        }
        RunDpPass(gt, 1, /*part=*/h, /*perm=*/0, ranks, &in_bucket, out,
                  stats);
      }
      break;
    }
  }

  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.reserve(n);
  for (NodeId v = 0; v < n; ++v) set.ads.emplace_back(std::move(out[v]));
  return set;
}

}  // namespace hipads
