// Query-time estimators applied to a single node's ADS.
//
//  * HipEstimator          — the paper's HIP estimates (Section 5) for
//                            neighborhood cardinalities, Q_g statistics
//                            (Eq. 1/5) and decay centralities (Eq. 2/3).
//  * AdsBasicCardinality   — pre-HIP "basic" estimates: extract the MinHash
//                            sketch of N_d(v) from the ADS and apply the
//                            Section 4 estimator of the matching flavor.
//  * SizeEstimator         — cardinality from the ADS size alone (Section 8).
//  * PermutationCardinalityEstimator — the Section 5.4 estimator for ADSs
//                            built over a strict permutation of [n].
//  * NaiveQgEstimate       — the introduction's strawman for Q_g: a uniform
//                            MinHash sample of all reachable nodes, each
//                            inverse-probability weighted. HIP improves on
//                            its variance by up to a factor n/k.

#ifndef HIPADS_ADS_ESTIMATORS_H_
#define HIPADS_ADS_ESTIMATORS_H_

#include <functional>
#include <span>

#include "ads/ads.h"
#include "ads/hip.h"

namespace hipads {

/// HIP estimates over one ADS. Three construction modes share one query
/// surface and produce bitwise-identical estimates:
///
///   * scan (owning)     — runs the increasing-distance scan and owns the
///                         resulting HipEntry vector (the original API).
///   * scan (scratch)    — the same scan into a caller-owned HipScratch;
///                         allocation-free in the steady state. The
///                         estimator borrows the scratch's entries, so it
///                         is valid only until the scratch's next scan.
///   * precomputed       — wraps per-entry tau/weight arrays aligned with
///                         the ADS entries (a file's HIP section or
///                         PrecomputeHipWeights output): no scan, no
///                         allocation, construction is three pointer
///                         assignments. Iteration skips tau == 0 sentinel
///                         slots (non-first members of a k-mins run), which
///                         reproduces the scan's grouped entry sequence
///                         exactly.
///
/// Queries are one ordered pass over the adjusted weights (cardinalities
/// early-exit at the distance bound). Every query folds weights in the
/// same order the scan emits them, so switching modes never changes a
/// single bit of any estimate.
class HipEstimator {
 public:
  /// An empty estimator (every estimate 0) — the state the sweep
  /// executor's reusable block buffers need before assignment.
  HipEstimator() = default;

  /// Works off either storage layout: an AdsView over the per-node vectors
  /// of an AdsSet or over a slice of a FlatAdsSet arena.
  HipEstimator(AdsView ads, uint32_t k, SketchFlavor flavor,
               const RankAssignment& ranks);

  HipEstimator(const Ads& ads, uint32_t k, SketchFlavor flavor,
               const RankAssignment& ranks)
      : HipEstimator(ads.view(), k, flavor, ranks) {}

  /// Structure-of-arrays layout (a SoaAdsArena slice): the same HIP scan
  /// over split per-field streams; every estimate is bitwise identical to
  /// the AdsView overload on the same sketch.
  HipEstimator(const SoaAdsView& ads, uint32_t k, SketchFlavor flavor,
               const RankAssignment& ranks);

  /// Scratch-scan mode: the identical scan, written into `scratch` instead
  /// of a fresh allocation. The estimator (and its copies) borrows
  /// scratch->entries — valid until the scratch is scanned again or
  /// destroyed.
  HipEstimator(AdsView ads, uint32_t k, SketchFlavor flavor,
               const RankAssignment& ranks, HipScratch* scratch);

  /// Precomputed mode: adopts per-entry tau/weight arrays aligned with
  /// `ads`'s entries (hip.h's aligned layout). No scan runs; the arrays
  /// and the view's entries must stay valid for the estimator's lifetime
  /// (they do for mmap'd sections and FlatAdsSet arrays). The arrays must
  /// have been produced by ComputeHipWeightsAligned for the SAME build
  /// parameters — estimates are then bitwise equal to a fresh scan.
  HipEstimator(AdsView ads, const double* tau, const double* weight);

  /// Estimate of the d-neighborhood cardinality n_d = |N_d(v)| — the sum of
  /// adjusted weights of sketched nodes within distance d (Section 5).
  double NeighborhoodCardinality(double d) const;

  /// Estimate of the number of reachable nodes.
  double ReachableCount() const;

  /// Unbiased estimate of Q_g(v) = sum_{j reachable} g(j, d_vj)   (Eq. 5).
  double Qg(const std::function<double(NodeId, double)>& g) const;

  /// Unbiased estimate of C_{alpha,beta}(v) = sum alpha(d_vj) beta(j)
  /// (Eq. 3). alpha must be monotone non-increasing for the Corollary 5.2
  /// variance guarantee; it is never called with infinite distance.
  double Closeness(const std::function<double(double)>& alpha,
                   const std::function<double(NodeId)>& beta) const;

  /// Estimate of the sum of distances from v (inverse classic closeness).
  double DistanceSum() const;

  /// Estimate of harmonic centrality sum_{j != v} 1/d_vj.
  double HarmonicCentrality() const;

  /// Estimate of the d-neighborhood weight sum_{d_vj <= d} beta(j); when the
  /// ADS was built with exponential beta-weighted ranks this has the
  /// Section 9 CV guarantee.
  double NeighborhoodWeight(double d,
                            const std::function<double(NodeId)>& beta) const;

  /// Estimated q-quantile of the distance distribution from this node: the
  /// smallest sketched distance d with n^_d >= q * (estimated reachable
  /// count). q = 0.5 gives the median distance to reachable nodes. Returns
  /// 0 for an empty sketch; requires 0 < q <= 1.
  double DistanceQuantile(double q) const;

  /// Applies fn(const HipEntry&) to every adjusted weight in increasing
  /// distance order — the one iteration surface all modes share (the
  /// precomputed walk synthesizes the grouped entries on the fly, so there
  /// is no stored vector to hand out).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    ForEachUntil([&fn](const HipEntry& e) {
      fn(e);
      return true;
    });
  }

  /// Number of adjusted weights (grouped entries, not raw ADS entries).
  size_t NumEntries() const;

  /// Materializes the grouped entry sequence (test/debug convenience; the
  /// query paths never need it).
  std::vector<HipEntry> CopyEntries() const;

 private:
  /// Ordered walk with early exit: fn returns false to stop. Precomputed
  /// mode skips tau == 0 slots; the other modes iterate the grouped
  /// vector/span directly.
  template <typename Fn>
  void ForEachUntil(Fn&& fn) const {
    if (pre_tau_ != nullptr) {
      for (size_t i = 0; i < pre_size_; ++i) {
        if (pre_tau_[i] == 0.0) continue;
        if (!fn(HipEntry{pre_entries_[i].node, pre_entries_[i].dist,
                         pre_tau_[i], pre_weight_[i]})) {
          return;
        }
      }
      return;
    }
    std::span<const HipEntry> entries =
        borrowed_.data() != nullptr ? borrowed_
                                    : std::span<const HipEntry>(owned_);
    for (const HipEntry& e : entries) {
      if (!fn(e)) return;
    }
  }

  // Scan modes: the grouped entries, owned or borrowed from a HipScratch.
  std::vector<HipEntry> owned_;          // increasing distance
  std::span<const HipEntry> borrowed_;   // non-null data() = scratch mode
  // Precomputed mode: entry arena + aligned weight arrays (borrowed).
  const AdsEntry* pre_entries_ = nullptr;
  const double* pre_tau_ = nullptr;      // non-null = precomputed mode
  const double* pre_weight_ = nullptr;
  size_t pre_size_ = 0;
};

/// Basic (pre-HIP) neighborhood cardinality estimate: the Section 4
/// estimator of the ADS's flavor applied to the extracted MinHash sketch of
/// N_d(v). Requires uniform ranks.
double AdsBasicCardinality(AdsView ads, double d, uint32_t k,
                           SketchFlavor flavor, double sup = 1.0);

inline double AdsBasicCardinality(const Ads& ads, double d, uint32_t k,
                                  SketchFlavor flavor, double sup = 1.0) {
  return AdsBasicCardinality(ads.view(), d, k, flavor, sup);
}

/// The unique unbiased cardinality estimator based only on the number of
/// ADS entries within distance d (Lemma 8.1):
///   E_s = s                     for s <= k
///   E_s = k (1 + 1/k)^(s-k+1) - 1   otherwise.
double SizeEstimatorValue(uint64_t s, uint32_t k);

/// Applies SizeEstimatorValue to |{entries with dist <= d}|.
double AdsSizeCardinality(AdsView ads, double d, uint32_t k);

inline double AdsSizeCardinality(const Ads& ads, double d, uint32_t k) {
  return AdsSizeCardinality(ads.view(), d, k);
}

/// Section 5.4 permutation cardinality estimator. The ADS must have been
/// built with RankAssignment::Permutation over all n nodes (bottom-k
/// flavor). Tighter than HIP when the queried cardinality exceeds ~0.2 n.
class PermutationCardinalityEstimator {
 public:
  PermutationCardinalityEstimator(const Ads& ads, uint32_t k, uint64_t n);

  /// Estimate of n_d(v).
  double NeighborhoodCardinality(double d) const;

 private:
  struct Point {
    double dist;
    double estimate;   // running s^ after this update
    bool saturated;    // sketch holds permutation ranks {1..k}
  };
  uint32_t k_;
  uint64_t n_;
  std::vector<Point> points_;
};

/// The naive subset-weight baseline for Q_g (paper introduction): the k
/// smallest-rank reachable nodes form a uniform sample; each of the k-1
/// retained samples is weighted by 1/tau_k. Unbiased, but its variance is
/// ~ (n/k) sum g^2 instead of HIP's distance-local bound (Cor. 5.3).
double NaiveQgEstimate(const Ads& ads, uint32_t k,
                       const std::function<double(NodeId, double)>& g);

}  // namespace hipads

#endif  // HIPADS_ADS_ESTIMATORS_H_
