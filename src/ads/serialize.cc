#include "ads/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hipads {

namespace {

constexpr char kMagic[] = "hipads-ads-v1";

const char* FlavorName(SketchFlavor flavor) {
  switch (flavor) {
    case SketchFlavor::kBottomK:
      return "bottom-k";
    case SketchFlavor::kKMins:
      return "k-mins";
    case SketchFlavor::kKPartition:
      return "k-partition";
  }
  return "?";
}

bool ParseFlavor(const std::string& name, SketchFlavor* out) {
  if (name == "bottom-k") {
    *out = SketchFlavor::kBottomK;
  } else if (name == "k-mins") {
    *out = SketchFlavor::kKMins;
  } else if (name == "k-partition") {
    *out = SketchFlavor::kKPartition;
  } else {
    return false;
  }
  return true;
}

const char* RankKindName(RankKind kind) {
  switch (kind) {
    case RankKind::kUniform:
      return "uniform";
    case RankKind::kBaseB:
      return "base-b";
    case RankKind::kExponential:
      return "exponential";
    case RankKind::kPriority:
      return "priority";
    case RankKind::kPermutation:
      return "permutation";
  }
  return "?";
}

}  // namespace

std::string SerializeAdsSet(const AdsSet& set) {
  std::ostringstream os;
  char buf[128];
  os << kMagic << '\n';
  os << "flavor " << FlavorName(set.flavor) << '\n';
  os << "k " << set.k << '\n';
  os << "ranks " << RankKindName(set.ranks.kind());
  switch (set.ranks.kind()) {
    case RankKind::kUniform:
    case RankKind::kExponential:
    case RankKind::kPriority:
      os << ' ' << set.ranks.seed();
      break;
    case RankKind::kBaseB:
      std::snprintf(buf, sizeof(buf), " %" PRIu64 " %.17g",
                    set.ranks.seed(), set.ranks.base());
      os << buf;
      break;
    case RankKind::kPermutation:
      // Permutation values are re-derivable from the stored entry ranks
      // only for sketched nodes; store the size so loaders can at least
      // reconstruct sup(). Full permutations should be stored separately.
      os << ' ' << static_cast<uint64_t>(set.ranks.sup() - 1.0);
      break;
  }
  os << '\n';
  os << "nodes " << set.ads.size() << '\n';
  for (NodeId v = 0; v < set.ads.size(); ++v) {
    const Ads& ads = set.of(v);
    os << v << ' ' << ads.size() << '\n';
    for (const AdsEntry& e : ads.entries()) {
      std::snprintf(buf, sizeof(buf), "%u %u %.17g %.17g\n", e.node, e.part,
                    e.rank, e.dist);
      os << buf;
    }
  }
  return os.str();
}

Status WriteAdsSetFile(const AdsSet& set, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << SerializeAdsSet(set);
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

StatusOr<AdsSet> ParseAdsSet(const std::string& text,
                             std::function<double(uint64_t)> beta) {
  std::istringstream in(text);
  std::string line, word;

  if (!std::getline(in, line) || line != kMagic) {
    return Status::Corruption("missing hipads-ads-v1 header");
  }

  AdsSet set;
  std::string flavor_name;
  if (!(in >> word >> flavor_name) || word != "flavor" ||
      !ParseFlavor(flavor_name, &set.flavor)) {
    return Status::Corruption("bad flavor line");
  }
  if (!(in >> word >> set.k) || word != "k" || set.k == 0) {
    return Status::Corruption("bad k line");
  }
  std::string kind_name;
  if (!(in >> word >> kind_name) || word != "ranks") {
    return Status::Corruption("bad ranks line");
  }
  if (kind_name == "uniform") {
    uint64_t seed;
    if (!(in >> seed)) return Status::Corruption("bad uniform seed");
    set.ranks = RankAssignment::Uniform(seed);
  } else if (kind_name == "base-b") {
    uint64_t seed;
    double base;
    if (!(in >> seed >> base) || base <= 1.0) {
      return Status::Corruption("bad base-b parameters");
    }
    set.ranks = RankAssignment::BaseB(seed, base);
  } else if (kind_name == "exponential" || kind_name == "priority") {
    uint64_t seed;
    if (!(in >> seed)) return Status::Corruption("bad weighted-rank seed");
    if (beta == nullptr) {
      return Status::InvalidArgument(
          "weighted-rank (exponential/priority) ADS sets require the beta "
          "function at load time");
    }
    set.ranks = kind_name == "exponential"
                    ? RankAssignment::Exponential(seed, std::move(beta))
                    : RankAssignment::Priority(seed, std::move(beta));
  } else if (kind_name == "permutation") {
    return Status::InvalidArgument(
        "permutation-rank ADS sets are not round-trippable; store the "
        "permutation separately");
  } else {
    return Status::Corruption("unknown rank kind " + kind_name);
  }

  uint64_t num_nodes;
  if (!(in >> word >> num_nodes) || word != "nodes") {
    return Status::Corruption("bad nodes line");
  }
  set.ads.resize(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    uint64_t v, count;
    if (!(in >> v >> count) || v >= num_nodes) {
      return Status::Corruption("bad node header at index " +
                                std::to_string(i));
    }
    std::vector<AdsEntry> entries;
    entries.reserve(count);
    for (uint64_t e = 0; e < count; ++e) {
      AdsEntry entry;
      if (!(in >> entry.node >> entry.part >> entry.rank >> entry.dist)) {
        return Status::Corruption("truncated entries for node " +
                                  std::to_string(v));
      }
      if (entry.part >= set.k || entry.dist < 0.0) {
        return Status::Corruption("invalid entry for node " +
                                  std::to_string(v));
      }
      entries.push_back(entry);
    }
    set.ads[v] = Ads(std::move(entries));
  }
  return set;
}

StatusOr<AdsSet> ReadAdsSetFile(const std::string& path,
                                std::function<double(uint64_t)> beta) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseAdsSet(buf.str(), std::move(beta));
}

}  // namespace hipads
