#include "ads/serialize.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hipads {

namespace {

constexpr char kMagic[] = "hipads-ads-v1";

const char* FlavorName(SketchFlavor flavor) {
  switch (flavor) {
    case SketchFlavor::kBottomK:
      return "bottom-k";
    case SketchFlavor::kKMins:
      return "k-mins";
    case SketchFlavor::kKPartition:
      return "k-partition";
  }
  return "?";
}

bool ParseFlavor(const std::string& name, SketchFlavor* out) {
  if (name == "bottom-k") {
    *out = SketchFlavor::kBottomK;
  } else if (name == "k-mins") {
    *out = SketchFlavor::kKMins;
  } else if (name == "k-partition") {
    *out = SketchFlavor::kKPartition;
  } else {
    return false;
  }
  return true;
}

const char* RankKindName(RankKind kind) {
  switch (kind) {
    case RankKind::kUniform:
      return "uniform";
    case RankKind::kBaseB:
      return "base-b";
    case RankKind::kExponential:
      return "exponential";
    case RankKind::kPriority:
      return "priority";
    case RankKind::kPermutation:
      return "permutation";
  }
  return "?";
}

// Shared serializer body: works for both storage layouts (set.of(v) yields
// an Ads or an AdsView; both expose size() and entries()).
template <typename SetT>
std::string SerializeAnySet(const SetT& set) {
  std::ostringstream os;
  char buf[128];
  os << kMagic << '\n';
  os << "flavor " << FlavorName(set.flavor) << '\n';
  os << "k " << set.k << '\n';
  os << "ranks " << RankKindName(set.ranks.kind());
  switch (set.ranks.kind()) {
    case RankKind::kUniform:
    case RankKind::kExponential:
    case RankKind::kPriority:
      os << ' ' << set.ranks.seed();
      break;
    case RankKind::kBaseB:
      std::snprintf(buf, sizeof(buf), " %" PRIu64 " %.17g",
                    set.ranks.seed(), set.ranks.base());
      os << buf;
      break;
    case RankKind::kPermutation:
      // Permutation values are re-derivable from the stored entry ranks
      // only for sketched nodes; store the size so loaders can at least
      // reconstruct sup(). Full permutations should be stored separately.
      os << ' ' << static_cast<uint64_t>(set.ranks.sup() - 1.0);
      break;
  }
  os << '\n';
  os << "nodes " << set.num_nodes() << '\n';
  for (NodeId v = 0; v < set.num_nodes(); ++v) {
    const auto& ads = set.of(v);
    os << v << ' ' << ads.size() << '\n';
    for (const AdsEntry& e : ads.entries()) {
      std::snprintf(buf, sizeof(buf), "%u %u %.17g %.17g\n", e.node, e.part,
                    e.rank, e.dist);
      os << buf;
    }
  }
  return os.str();
}

// Parses everything up to and including the "nodes" line into the header
// fields shared by both set representations.
struct ParsedHeader {
  SketchFlavor flavor = SketchFlavor::kBottomK;
  uint32_t k = 0;
  RankAssignment ranks = RankAssignment::Uniform(0);
  uint64_t num_nodes = 0;
};

Status ParseHeader(std::istream& in, std::function<double(uint64_t)> beta,
                   ParsedHeader* out) {
  std::string line, word;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::Corruption("missing hipads-ads-v1 header");
  }
  std::string flavor_name;
  if (!(in >> word >> flavor_name) || word != "flavor" ||
      !ParseFlavor(flavor_name, &out->flavor)) {
    return Status::Corruption("bad flavor line");
  }
  if (!(in >> word >> out->k) || word != "k" || out->k == 0) {
    return Status::Corruption("bad k line");
  }
  std::string kind_name;
  if (!(in >> word >> kind_name) || word != "ranks") {
    return Status::Corruption("bad ranks line");
  }
  if (kind_name == "uniform") {
    uint64_t seed;
    if (!(in >> seed)) return Status::Corruption("bad uniform seed");
    out->ranks = RankAssignment::Uniform(seed);
  } else if (kind_name == "base-b") {
    uint64_t seed;
    double base;
    if (!(in >> seed >> base) || base <= 1.0) {
      return Status::Corruption("bad base-b parameters");
    }
    out->ranks = RankAssignment::BaseB(seed, base);
  } else if (kind_name == "exponential" || kind_name == "priority") {
    uint64_t seed;
    if (!(in >> seed)) return Status::Corruption("bad weighted-rank seed");
    if (beta == nullptr) {
      return Status::InvalidArgument(
          "weighted-rank (exponential/priority) ADS sets require the beta "
          "function at load time");
    }
    out->ranks = kind_name == "exponential"
                     ? RankAssignment::Exponential(seed, std::move(beta))
                     : RankAssignment::Priority(seed, std::move(beta));
  } else if (kind_name == "permutation") {
    return Status::InvalidArgument(
        "permutation-rank ADS sets are not round-trippable; store the "
        "permutation separately");
  } else {
    return Status::Corruption("unknown rank kind " + kind_name);
  }
  if (!(in >> word >> out->num_nodes) || word != "nodes") {
    return Status::Corruption("bad nodes line");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeAdsSet(const AdsSet& set) { return SerializeAnySet(set); }

std::string SerializeAdsSet(const FlatAdsSet& set) {
  return SerializeAnySet(set);
}

Status WriteAdsSetFile(const AdsSet& set, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << SerializeAdsSet(set);
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

Status WriteAdsSetFile(const FlatAdsSet& set, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << SerializeAdsSet(set);
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

StatusOr<AdsSet> ParseAdsSet(const std::string& text,
                             std::function<double(uint64_t)> beta) {
  std::istringstream in(text);
  ParsedHeader header;
  Status s = ParseHeader(in, std::move(beta), &header);
  if (!s.ok()) return s;

  AdsSet set;
  set.flavor = header.flavor;
  set.k = header.k;
  set.ranks = header.ranks;
  set.ads.resize(header.num_nodes);
  for (uint64_t i = 0; i < header.num_nodes; ++i) {
    uint64_t v, count;
    if (!(in >> v >> count) || v >= header.num_nodes) {
      return Status::Corruption("bad node header at index " +
                                std::to_string(i));
    }
    std::vector<AdsEntry> entries;
    entries.reserve(count);
    for (uint64_t e = 0; e < count; ++e) {
      AdsEntry entry;
      if (!(in >> entry.node >> entry.part >> entry.rank >> entry.dist)) {
        return Status::Corruption("truncated entries for node " +
                                  std::to_string(v));
      }
      if (entry.part >= set.k || entry.dist < 0.0) {
        return Status::Corruption("invalid entry for node " +
                                  std::to_string(v));
      }
      entries.push_back(entry);
    }
    set.ads[v] = Ads(std::move(entries));
  }
  return set;
}

StatusOr<FlatAdsSet> ParseFlatAdsSet(const std::string& text,
                                     std::function<double(uint64_t)> beta) {
  std::istringstream in(text);
  ParsedHeader header;
  Status s = ParseHeader(in, std::move(beta), &header);
  if (!s.ok()) return s;

  FlatAdsSet set;
  set.flavor = header.flavor;
  set.k = header.k;
  set.ranks = header.ranks;

  // Node blocks may appear in any order in the file; entries land in the
  // arena in file order, with per-node (start, count) recorded so the CSR
  // can be assembled afterwards. The common case (node-id order, which is
  // what SerializeAdsSet writes) needs no rearrangement.
  uint64_t n = header.num_nodes;
  constexpr uint64_t kUnset = ~0ULL;
  std::vector<uint64_t> start_of(n, kUnset), count_of(n, 0);
  std::vector<AdsEntry> arena;
  bool in_order = true;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t v, count;
    if (!(in >> v >> count) || v >= n) {
      return Status::Corruption("bad node header at index " +
                                std::to_string(i));
    }
    if (start_of[v] != kUnset) {
      return Status::Corruption("duplicate node block for node " +
                                std::to_string(v));
    }
    if (v != i) in_order = false;
    start_of[v] = arena.size();
    count_of[v] = count;
    for (uint64_t e = 0; e < count; ++e) {
      AdsEntry entry;
      if (!(in >> entry.node >> entry.part >> entry.rank >> entry.dist)) {
        return Status::Corruption("truncated entries for node " +
                                  std::to_string(v));
      }
      if (entry.part >= set.k || entry.dist < 0.0) {
        return Status::Corruption("invalid entry for node " +
                                  std::to_string(v));
      }
      arena.push_back(entry);
    }
  }

  set.offsets.reserve(n + 1);
  if (in_order) {
    set.entries = std::move(arena);
    for (uint64_t v = 0; v < n; ++v) {
      set.offsets.push_back(set.offsets.back() + count_of[v]);
    }
  } else {
    set.entries.reserve(arena.size());
    for (uint64_t v = 0; v < n; ++v) {
      set.entries.insert(set.entries.end(),
                         arena.begin() + static_cast<int64_t>(start_of[v]),
                         arena.begin() +
                             static_cast<int64_t>(start_of[v] + count_of[v]));
      set.offsets.push_back(set.entries.size());
    }
  }
  // Files are not required to store entries in canonical order; restore it
  // per node (a no-op for writer-produced files).
  for (uint64_t v = 0; v < n; ++v) {
    std::sort(set.entries.begin() + static_cast<int64_t>(set.offsets[v]),
              set.entries.begin() + static_cast<int64_t>(set.offsets[v + 1]),
              AdsEntryCloser);
  }
  return set;
}

StatusOr<AdsSet> ReadAdsSetFile(const std::string& path,
                                std::function<double(uint64_t)> beta) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseAdsSet(buf.str(), std::move(beta));
}

StatusOr<FlatAdsSet> ReadFlatAdsSetFile(const std::string& path,
                                        std::function<double(uint64_t)> beta) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseFlatAdsSet(buf.str(), std::move(beta));
}

}  // namespace hipads
