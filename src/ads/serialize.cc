#include "ads/serialize.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <type_traits>

#include "util/hash.h"

namespace hipads {

namespace {

constexpr char kMagic[] = "hipads-ads-v1";

// Binary v2 layout: V2Header, then the raw offsets[] section, then the raw
// AdsEntry[] arena. Everything is little-endian / host layout; the header
// carries explicit per-section byte lengths and an FNV-1a checksum of the
// payload so loaders can validate structure before touching a byte of it.
constexpr char kMagicV2[8] = {'h', 'i', 'p', 'a', 'd', 's', 'v', '2'};
constexpr uint32_t kVersionV2 = 2;

struct V2Header {
  char magic[8];
  uint32_t version;
  uint32_t flavor;
  uint32_t rank_kind;
  uint32_t k;
  uint64_t seed;
  double base;  // base-b ranks only, 0 otherwise
  double sup;   // rank supremum (permutation sets store n + 1 here)
  uint64_t num_nodes;
  uint64_t num_entries;
  uint64_t offsets_bytes;  // == (num_nodes + 1) * sizeof(uint64_t)
  uint64_t entries_bytes;  // == num_entries * sizeof(AdsEntry)
  uint64_t checksum;       // FNV-1a over the header (this field zeroed)
                           // followed by the offsets + entries sections
};
static_assert(sizeof(V2Header) == kAdsBinaryHeaderBytes,
              "v2 header layout drifted");
static_assert(std::is_trivially_copyable_v<AdsEntry> &&
                  sizeof(AdsEntry) == 24,
              "AdsEntry must stay a packed 24-byte POD for the v2 format");
static_assert(std::endian::native == std::endian::little,
              "the hipads-ads-v2 format is little-endian; big-endian hosts "
              "need byte swapping");

// Checksum of a v2 file image: the header with its checksum field zeroed,
// then the payload sections (util/hash.h Fnv1a, shared with the wire
// protocol's frame checksum). Covering the header means any single
// corrupted parameter byte (flavor, k, seed, ...) is caught even when it
// would still parse as a structurally valid file. The optional HIP section
// is NOT covered — it carries its own checksum — so the base image of a
// file is bit-identical whether or not the section follows it.
uint64_t V2Checksum(V2Header h, const char* payload, size_t payload_size) {
  h.checksum = 0;
  uint64_t sum = Fnv1a(reinterpret_cast<const char*>(&h), sizeof(V2Header),
                       kFnv1aOffsetBasis);
  return Fnv1a(payload, payload_size, sum);
}

// Optional HIP section, appended after the entry arena: this header, then
// tau[num_entries] + weight[num_entries] doubles (hip.h's aligned layout).
// Every preceding section is a multiple of 8 bytes, so the double arrays
// stay 8-byte aligned in any mapping of the file.
constexpr char kMagicHip[8] = {'h', 'i', 'p', 'a', 'd', 's', 'h', 'w'};
constexpr uint32_t kHipSectionVersion = 1;

struct HipSectionHeader {
  char magic[8];
  uint32_t version;
  uint32_t reserved;     // must be zero
  uint64_t num_entries;  // must equal the main header's num_entries
  uint64_t checksum;     // FNV-1a over this header (field zeroed) + arrays
};
static_assert(sizeof(HipSectionHeader) == kAdsHipSectionHeaderBytes,
              "HIP section header layout drifted");

uint64_t HipSectionChecksum(HipSectionHeader h, const char* payload,
                            size_t payload_size) {
  h.checksum = 0;
  uint64_t sum = Fnv1a(reinterpret_cast<const char*>(&h),
                       sizeof(HipSectionHeader), kFnv1aOffsetBasis);
  return Fnv1a(payload, payload_size, sum);
}

const char* FlavorName(SketchFlavor flavor) {
  switch (flavor) {
    case SketchFlavor::kBottomK:
      return "bottom-k";
    case SketchFlavor::kKMins:
      return "k-mins";
    case SketchFlavor::kKPartition:
      return "k-partition";
  }
  return "?";
}

bool ParseFlavor(const std::string& name, SketchFlavor* out) {
  if (name == "bottom-k") {
    *out = SketchFlavor::kBottomK;
  } else if (name == "k-mins") {
    *out = SketchFlavor::kKMins;
  } else if (name == "k-partition") {
    *out = SketchFlavor::kKPartition;
  } else {
    return false;
  }
  return true;
}

const char* RankKindName(RankKind kind) {
  switch (kind) {
    case RankKind::kUniform:
      return "uniform";
    case RankKind::kBaseB:
      return "base-b";
    case RankKind::kExponential:
      return "exponential";
    case RankKind::kPriority:
      return "priority";
    case RankKind::kPermutation:
      return "permutation";
  }
  return "?";
}

}  // namespace

Status RanksFromStoredParams(RankKind kind, uint64_t seed, double base,
                             std::function<double(uint64_t)> beta,
                             RankAssignment* out) {
  switch (kind) {
    case RankKind::kUniform:
      *out = RankAssignment::Uniform(seed);
      return Status::Ok();
    case RankKind::kBaseB:
      if (base <= 1.0) return Status::Corruption("bad base-b parameters");
      *out = RankAssignment::BaseB(seed, base);
      return Status::Ok();
    case RankKind::kExponential:
    case RankKind::kPriority:
      if (beta == nullptr) {
        return Status::InvalidArgument(
            "weighted-rank (exponential/priority) ADS sets require the beta "
            "function at load time");
      }
      *out = kind == RankKind::kExponential
                 ? RankAssignment::Exponential(seed, std::move(beta))
                 : RankAssignment::Priority(seed, std::move(beta));
      return Status::Ok();
    case RankKind::kPermutation:
      return Status::InvalidArgument(
          "permutation-rank ADS sets are not round-trippable; store the "
          "permutation separately");
  }
  return Status::Corruption("unknown rank kind");
}

namespace {

// Shared v1 serializer body: works for both storage layouts (set.of(v)
// yields an Ads or an AdsView; both expose size() and entries()).
template <typename SetT>
std::string SerializeAnySet(const SetT& set) {
  std::ostringstream os;
  char buf[128];
  os << kMagic << '\n';
  os << SerializeAdsParams(set.flavor, set.k, set.ranks, set.num_nodes());
  for (NodeId v = 0; v < set.num_nodes(); ++v) {
    const auto& ads = set.of(v);
    os << v << ' ' << ads.size() << '\n';
    for (const AdsEntry& e : ads.entries()) {
      std::snprintf(buf, sizeof(buf), "%u %u %.17g %.17g\n", e.node, e.part,
                    e.rank, e.dist);
      os << buf;
    }
  }
  return os.str();
}

// Parses everything up to and including the "nodes" line into the header
// fields shared by both set representations.
struct ParsedHeader {
  SketchFlavor flavor = SketchFlavor::kBottomK;
  uint32_t k = 0;
  RankAssignment ranks = RankAssignment::Uniform(0);
  uint64_t num_nodes = 0;
};

Status ParseHeader(std::istream& in, std::function<double(uint64_t)> beta,
                   ParsedHeader* out) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::Corruption("missing hipads-ads-v1 header");
  }
  return ParseAdsParams(in, std::move(beta), &out->flavor, &out->k,
                        &out->ranks, &out->num_nodes);
}

// Rejects any non-whitespace content after the last node block: both v1
// parsers accept exactly the files the writer produces, nothing more.
Status RejectTrailingGarbage(std::istream& in) {
  std::string extra;
  if (in >> extra) {
    return Status::Corruption("trailing garbage after last node block");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeAdsParams(SketchFlavor flavor, uint32_t k,
                               const RankAssignment& ranks,
                               uint64_t num_nodes) {
  std::ostringstream os;
  char buf[128];
  os << "flavor " << FlavorName(flavor) << '\n';
  os << "k " << k << '\n';
  os << "ranks " << RankKindName(ranks.kind());
  switch (ranks.kind()) {
    case RankKind::kUniform:
    case RankKind::kExponential:
    case RankKind::kPriority:
      os << ' ' << ranks.seed();
      break;
    case RankKind::kBaseB:
      std::snprintf(buf, sizeof(buf), " %" PRIu64 " %.17g", ranks.seed(),
                    ranks.base());
      os << buf;
      break;
    case RankKind::kPermutation:
      // Permutation values are re-derivable from the stored entry ranks
      // only for sketched nodes; store the size so loaders can at least
      // reconstruct sup(). Full permutations should be stored separately.
      os << ' ' << static_cast<uint64_t>(ranks.sup() - 1.0);
      break;
  }
  os << '\n';
  os << "nodes " << num_nodes << '\n';
  return os.str();
}

Status ParseAdsParams(std::istream& in, std::function<double(uint64_t)> beta,
                      SketchFlavor* flavor, uint32_t* k,
                      RankAssignment* ranks, uint64_t* num_nodes) {
  std::string word;
  std::string flavor_name;
  if (!(in >> word >> flavor_name) || word != "flavor" ||
      !ParseFlavor(flavor_name, flavor)) {
    return Status::Corruption("bad flavor line");
  }
  if (!(in >> word >> *k) || word != "k" || *k == 0) {
    return Status::Corruption("bad k line");
  }
  std::string kind_name;
  if (!(in >> word >> kind_name) || word != "ranks") {
    return Status::Corruption("bad ranks line");
  }
  if (kind_name == "uniform") {
    uint64_t seed;
    if (!(in >> seed)) return Status::Corruption("bad uniform seed");
    *ranks = RankAssignment::Uniform(seed);
  } else if (kind_name == "base-b") {
    uint64_t seed;
    double base;
    if (!(in >> seed >> base) || base <= 1.0) {
      return Status::Corruption("bad base-b parameters");
    }
    *ranks = RankAssignment::BaseB(seed, base);
  } else if (kind_name == "exponential" || kind_name == "priority") {
    uint64_t seed;
    if (!(in >> seed)) return Status::Corruption("bad weighted-rank seed");
    Status made = RanksFromStoredParams(kind_name == "exponential"
                                            ? RankKind::kExponential
                                            : RankKind::kPriority,
                                        seed, 0.0, std::move(beta), ranks);
    if (!made.ok()) return made;
  } else if (kind_name == "permutation") {
    return Status::InvalidArgument(
        "permutation-rank ADS sets are not round-trippable; store the "
        "permutation separately");
  } else {
    return Status::Corruption("unknown rank kind " + kind_name);
  }
  if (!(in >> word >> *num_nodes) || word != "nodes") {
    return Status::Corruption("bad nodes line");
  }
  return Status::Ok();
}

std::string SerializeAdsSet(const AdsSet& set) { return SerializeAnySet(set); }

std::string SerializeAdsSet(const FlatAdsSet& set) {
  return SerializeAnySet(set);
}

std::string SerializeAdsSetBinary(const FlatAdsSet& set) {
  V2Header h{};
  std::memcpy(h.magic, kMagicV2, sizeof(h.magic));
  h.version = kVersionV2;
  h.flavor = static_cast<uint32_t>(set.flavor);
  h.rank_kind = static_cast<uint32_t>(set.ranks.kind());
  h.k = set.k;
  h.seed = set.ranks.seed();
  h.base = set.ranks.kind() == RankKind::kBaseB ? set.ranks.base() : 0.0;
  h.sup = set.ranks.sup();
  h.num_nodes = set.num_nodes();
  h.num_entries = set.entries.size();
  h.offsets_bytes = set.offsets.size() * sizeof(uint64_t);
  h.entries_bytes = set.entries.size() * sizeof(AdsEntry);

  std::string out;
  const size_t base_size = sizeof(V2Header) + h.offsets_bytes +
                           h.entries_bytes;
  out.resize(base_size);
  char* p = out.data() + sizeof(V2Header);
  std::memcpy(p, set.offsets.data(), h.offsets_bytes);
  std::memcpy(p + h.offsets_bytes, set.entries.data(), h.entries_bytes);
  h.checksum = V2Checksum(h, p, h.offsets_bytes + h.entries_bytes);
  std::memcpy(out.data(), &h, sizeof(V2Header));

  if (set.has_hip()) {
    assert(set.hip_tau.size() == set.entries.size() &&
           set.hip_weight.size() == set.entries.size());
    HipSectionHeader sh{};
    std::memcpy(sh.magic, kMagicHip, sizeof(sh.magic));
    sh.version = kHipSectionVersion;
    sh.num_entries = set.entries.size();
    const uint64_t array_bytes = sh.num_entries * sizeof(double);
    out.resize(base_size + sizeof(HipSectionHeader) + 2 * array_bytes);
    char* s = out.data() + base_size + sizeof(HipSectionHeader);
    std::memcpy(s, set.hip_tau.data(), array_bytes);
    std::memcpy(s + array_bytes, set.hip_weight.data(), array_bytes);
    sh.checksum = HipSectionChecksum(sh, s, 2 * array_bytes);
    std::memcpy(out.data() + base_size, &sh, sizeof(HipSectionHeader));
  }
  return out;
}

std::string SerializeAdsSetBinary(const AdsSet& set) {
  return SerializeAdsSetBinary(FlatAdsSet::FromAdsSet(set));
}

bool IsBinaryAdsData(const std::string& data) {
  return data.size() >= sizeof(kMagicV2) &&
         std::memcmp(data.data(), kMagicV2, sizeof(kMagicV2)) == 0;
}

uint64_t AdsBinaryFileSize(uint64_t num_nodes, uint64_t num_entries) {
  return sizeof(V2Header) + (num_nodes + 1) * sizeof(uint64_t) +
         num_entries * sizeof(AdsEntry);
}

uint64_t AdsHipSectionBytes(uint64_t num_entries) {
  return sizeof(HipSectionHeader) + 2 * num_entries * sizeof(double);
}

StatusOr<AdsBinaryView> ValidateAdsSetBinary(const char* data, size_t size) {
  if (size < sizeof(V2Header)) {
    return Status::Corruption("truncated hipads-ads-v2 header");
  }
  V2Header h;
  std::memcpy(&h, data, sizeof(V2Header));
  if (std::memcmp(h.magic, kMagicV2, sizeof(h.magic)) != 0) {
    return Status::Corruption("missing hipads-ads-v2 magic");
  }
  if (h.version != kVersionV2) {
    return Status::Corruption("unsupported hipads-ads-v2 version " +
                              std::to_string(h.version));
  }
  if (h.flavor > static_cast<uint32_t>(SketchFlavor::kKPartition)) {
    return Status::Corruption("bad flavor field");
  }
  if (h.rank_kind > static_cast<uint32_t>(RankKind::kPermutation)) {
    return Status::Corruption("bad rank-kind field");
  }
  if (h.k == 0) return Status::Corruption("bad k field");
  // Structural validation before any pointer arithmetic from header fields:
  // node count must fit NodeId, section lengths must match the counts, and
  // header + sections must cover the buffer exactly (no trailing bytes).
  if (h.num_nodes > std::numeric_limits<NodeId>::max()) {
    return Status::Corruption("node count exceeds NodeId range");
  }
  if (h.num_entries > size / sizeof(AdsEntry) + 1) {
    return Status::Corruption("entry count exceeds file size");
  }
  if (h.offsets_bytes != (h.num_nodes + 1) * sizeof(uint64_t)) {
    return Status::Corruption("offsets section length mismatch");
  }
  if (h.entries_bytes != h.num_entries * sizeof(AdsEntry)) {
    return Status::Corruption("entries section length mismatch");
  }
  // Exactly two lengths are valid: the base sections alone, or base plus
  // the optional HIP section. Anything else — including truncation at any
  // byte of the section — is corruption.
  const uint64_t base_size =
      sizeof(V2Header) + h.offsets_bytes + h.entries_bytes;
  bool has_hip = false;
  if (size != base_size) {
    if (size != base_size + AdsHipSectionBytes(h.num_entries)) {
      return Status::Corruption("file length does not match header sections");
    }
    has_hip = true;
  }
  const char* payload = data + sizeof(V2Header);
  if (V2Checksum(h, payload, h.offsets_bytes + h.entries_bytes) !=
      h.checksum) {
    return Status::Corruption("checksum mismatch");
  }

  AdsBinaryView view;
  view.flavor = static_cast<SketchFlavor>(h.flavor);
  view.rank_kind = static_cast<RankKind>(h.rank_kind);
  view.k = h.k;
  view.seed = h.seed;
  view.base = h.base;
  view.num_nodes = h.num_nodes;
  view.num_entries = h.num_entries;
  view.offsets = reinterpret_cast<const uint64_t*>(payload);
  view.entries =
      reinterpret_cast<const AdsEntry*>(payload + h.offsets_bytes);
  if (view.offsets[0] != 0 || view.offsets[h.num_nodes] != h.num_entries) {
    return Status::Corruption("offsets do not span the entry arena");
  }
  for (uint64_t v = 0; v < h.num_nodes; ++v) {
    if (view.offsets[v] > view.offsets[v + 1]) {
      return Status::Corruption("offsets not monotone at node " +
                                std::to_string(v));
    }
  }
  for (uint64_t i = 0; i < h.num_entries; ++i) {
    const AdsEntry& e = view.entries[i];
    if (e.part >= view.k || e.dist < 0.0) {
      return Status::Corruption("invalid entry at index " +
                                std::to_string(i));
    }
  }
  view.canonical_order = true;
  for (uint64_t v = 0; v < h.num_nodes && view.canonical_order; ++v) {
    view.canonical_order = std::is_sorted(view.entries + view.offsets[v],
                                          view.entries + view.offsets[v + 1],
                                          AdsEntryCloser);
  }
  if (has_hip) {
    const char* sec = data + base_size;
    HipSectionHeader sh;
    std::memcpy(&sh, sec, sizeof(HipSectionHeader));
    if (std::memcmp(sh.magic, kMagicHip, sizeof(sh.magic)) != 0) {
      return Status::Corruption("missing HIP section magic");
    }
    if (sh.version != kHipSectionVersion) {
      return Status::Corruption("unsupported HIP section version " +
                                std::to_string(sh.version));
    }
    if (sh.reserved != 0) {
      return Status::Corruption("bad HIP section reserved field");
    }
    if (sh.num_entries != h.num_entries) {
      return Status::Corruption("HIP section entry count mismatch");
    }
    const char* sec_payload = sec + sizeof(HipSectionHeader);
    const uint64_t array_bytes = h.num_entries * sizeof(double);
    if (HipSectionChecksum(sh, sec_payload, 2 * array_bytes) != sh.checksum) {
      return Status::Corruption("HIP section checksum mismatch");
    }
    const double* tau = reinterpret_cast<const double*>(sec_payload);
    const double* weight =
        reinterpret_cast<const double*>(sec_payload + array_bytes);
    // Per-entry integrity: a slot is either a k-mins run filler (both
    // zero) or a probability in (0, 1] with weight exactly its inverse.
    // NaNs fail every comparison, so they are rejected too.
    for (uint64_t i = 0; i < h.num_entries; ++i) {
      const bool filler = tau[i] == 0.0 && weight[i] == 0.0;
      const bool valid =
          tau[i] > 0.0 && tau[i] <= 1.0 && weight[i] == 1.0 / tau[i];
      if (!filler && !valid) {
        return Status::Corruption("invalid HIP weight at index " +
                                  std::to_string(i));
      }
    }
    view.hip_tau = tau;
    view.hip_weight = weight;
  }
  return view;
}

StatusOr<FlatAdsSet> ParseFlatAdsSetBinary(
    const std::string& data, std::function<double(uint64_t)> beta) {
  auto validated = ValidateAdsSetBinary(data.data(), data.size());
  if (!validated.ok()) return validated.status();
  const AdsBinaryView& v = validated.value();

  FlatAdsSet set;
  set.flavor = v.flavor;
  set.k = v.k;
  Status ranks_status = RanksFromStoredParams(v.rank_kind, v.seed, v.base,
                                              std::move(beta), &set.ranks);
  if (!ranks_status.ok()) return ranks_status;
  set.offsets.assign(v.offsets, v.offsets + v.num_nodes + 1);
  set.entries.assign(v.entries, v.entries + v.num_entries);
  // The writer emits canonical per-node order; re-sort any node whose block
  // is not (a no-op for writer-produced files). The copying loader can do
  // what the zero-copy view cannot — this is also the fallback path the
  // mmap backend takes for non-canonical files.
  if (!v.canonical_order) {
    for (uint64_t node = 0; node < v.num_nodes; ++node) {
      std::sort(set.entries.begin() + static_cast<int64_t>(set.offsets[node]),
                set.entries.begin() +
                    static_cast<int64_t>(set.offsets[node + 1]),
                AdsEntryCloser);
    }
  }
  // Adopt the HIP section only when the entries kept their stored order:
  // the arrays are positionally aligned with the arena, so a re-sort above
  // would desynchronize them. Dropping them is safe — they are pure
  // derived data the scan fallback recomputes.
  if (v.has_hip() && v.canonical_order) {
    set.hip_tau.assign(v.hip_tau, v.hip_tau + v.num_entries);
    set.hip_weight.assign(v.hip_weight, v.hip_weight + v.num_entries);
  }
  return set;
}

StatusOr<FlatAdsSet> ParseFlatAdsSetAny(const std::string& data,
                                        std::function<double(uint64_t)> beta) {
  return IsBinaryAdsData(data) ? ParseFlatAdsSetBinary(data, std::move(beta))
                               : ParseFlatAdsSet(data, std::move(beta));
}

Status WriteAdsSetFile(const AdsSet& set, const std::string& path,
                       AdsFileFormat format) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << (format == AdsFileFormat::kBinaryV2 ? SerializeAdsSetBinary(set)
                                           : SerializeAdsSet(set));
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

Status WriteAdsSetFile(const FlatAdsSet& set, const std::string& path,
                       AdsFileFormat format) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << (format == AdsFileFormat::kBinaryV2 ? SerializeAdsSetBinary(set)
                                           : SerializeAdsSet(set));
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::Ok();
}

StatusOr<AdsSet> ParseAdsSet(const std::string& text,
                             std::function<double(uint64_t)> beta) {
  std::istringstream in(text);
  ParsedHeader header;
  Status s = ParseHeader(in, std::move(beta), &header);
  if (!s.ok()) return s;

  AdsSet set;
  set.flavor = header.flavor;
  set.k = header.k;
  set.ranks = header.ranks;
  set.ads.resize(header.num_nodes);
  for (uint64_t i = 0; i < header.num_nodes; ++i) {
    uint64_t v, count;
    if (!(in >> v >> count) || v >= header.num_nodes) {
      return Status::Corruption("bad node header at index " +
                                std::to_string(i));
    }
    if (v != i) {
      return Status::Corruption(
          "duplicate or out-of-order node block for node " +
          std::to_string(v));
    }
    std::vector<AdsEntry> entries;
    entries.reserve(count);
    for (uint64_t e = 0; e < count; ++e) {
      AdsEntry entry;
      if (!(in >> entry.node >> entry.part >> entry.rank >> entry.dist)) {
        return Status::Corruption("truncated entries for node " +
                                  std::to_string(v));
      }
      if (entry.part >= set.k || entry.dist < 0.0) {
        return Status::Corruption("invalid entry for node " +
                                  std::to_string(v));
      }
      entries.push_back(entry);
    }
    set.ads[v] = Ads(std::move(entries));
  }
  s = RejectTrailingGarbage(in);
  if (!s.ok()) return s;
  return set;
}

StatusOr<FlatAdsSet> ParseFlatAdsSet(const std::string& text,
                                     std::function<double(uint64_t)> beta) {
  std::istringstream in(text);
  ParsedHeader header;
  Status s = ParseHeader(in, std::move(beta), &header);
  if (!s.ok()) return s;

  FlatAdsSet set;
  set.flavor = header.flavor;
  set.k = header.k;
  set.ranks = header.ranks;

  // Node blocks must appear in node-id order (which is what SerializeAdsSet
  // writes), so entries land in the arena already CSR-ordered; duplicated
  // or shuffled blocks are corruption, exactly as in ParseAdsSet.
  uint64_t n = header.num_nodes;
  set.offsets.reserve(n + 1);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t v, count;
    if (!(in >> v >> count) || v >= n) {
      return Status::Corruption("bad node header at index " +
                                std::to_string(i));
    }
    if (v != i) {
      return Status::Corruption(
          "duplicate or out-of-order node block for node " +
          std::to_string(v));
    }
    for (uint64_t e = 0; e < count; ++e) {
      AdsEntry entry;
      if (!(in >> entry.node >> entry.part >> entry.rank >> entry.dist)) {
        return Status::Corruption("truncated entries for node " +
                                  std::to_string(v));
      }
      if (entry.part >= set.k || entry.dist < 0.0) {
        return Status::Corruption("invalid entry for node " +
                                  std::to_string(v));
      }
      set.entries.push_back(entry);
    }
    set.offsets.push_back(set.entries.size());
  }
  s = RejectTrailingGarbage(in);
  if (!s.ok()) return s;
  // Files are not required to store entries in canonical order; restore it
  // per node (a no-op for writer-produced files).
  for (uint64_t v = 0; v < n; ++v) {
    auto begin = set.entries.begin() + static_cast<int64_t>(set.offsets[v]);
    auto end = set.entries.begin() + static_cast<int64_t>(set.offsets[v + 1]);
    if (!std::is_sorted(begin, end, AdsEntryCloser)) {
      std::sort(begin, end, AdsEntryCloser);
    }
  }
  return set;
}

StatusOr<AdsSet> ReadAdsSetFile(const std::string& path,
                                std::function<double(uint64_t)> beta) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  std::string data = buf.str();
  if (IsBinaryAdsData(data)) {
    auto flat = ParseFlatAdsSetBinary(data, std::move(beta));
    if (!flat.ok()) return flat.status();
    return flat.value().ToAdsSet();
  }
  return ParseAdsSet(data, std::move(beta));
}

StatusOr<FlatAdsSet> ReadFlatAdsSetFile(const std::string& path,
                                        std::function<double(uint64_t)> beta) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseFlatAdsSetAny(buf.str(), std::move(beta));
}

}  // namespace hipads
