// ADS construction algorithms (paper Section 3, Appendix B).
//
// Three builders, all producing the same canonical sketches on the same
// (graph, ranks, k, flavor) inputs:
//
//   * PrunedDijkstra (Algorithm 1): processes nodes by increasing rank, runs
//     a pruned Dijkstra from each on the transpose graph. Works on weighted
//     and unweighted graphs; every inserted entry is final.
//   * DP (Palmer et al. / Boldi et al. style): synchronized Bellman-Ford
//     rounds; unweighted graphs only; entries inserted by increasing
//     distance are final.
//   * LocalUpdates (Algorithm 2): node-centric message passing for weighted
//     graphs (MapReduce/Pregel model). Entries may be inserted and later
//     deleted; supports (1+epsilon)-approximate mode that bounds the
//     overhead (Section 3).
//
// All builders produce *forward* ADSs (entries are nodes reachable FROM the
// owner); pass Graph::Transpose() to obtain backward ADSs of a directed
// graph.

#ifndef HIPADS_ADS_BUILDERS_H_
#define HIPADS_ADS_BUILDERS_H_

#include "ads/ads.h"
#include "graph/graph.h"
#include "sketch/rank.h"

namespace hipads {

/// Work counters used to validate the paper's cost claims (CLAIM-BUILD):
/// expected relaxations O(k m log n), insertions O(k n log n); LocalUpdates
/// deletions measure its extra churn; rounds <= hop diameter for the
/// synchronous algorithms.
struct AdsBuildStats {
  uint64_t relaxations = 0;
  uint64_t insertions = 0;
  uint64_t deletions = 0;
  uint64_t rounds = 0;
};

/// Algorithm 1. Weighted or unweighted graphs, all three flavors.
AdsSet BuildAdsPrunedDijkstra(const Graph& g, uint32_t k, SketchFlavor flavor,
                              const RankAssignment& ranks,
                              AdsBuildStats* stats = nullptr);

/// BuildAdsPrunedDijkstra with rank-window batching: sources are processed
/// in windows of increasing rank; within a window, independent pruned
/// Dijkstras run on per-thread scratch against the (frozen) sketch state of
/// all previous windows, then the candidate entries are merged per target
/// by replaying the canonical bottom-k inclusion rule in rank order. The
/// frozen-state pruning is weaker than the sequential builder's (a bounded
/// amount of extra exploration, the price of parallelism), but the merge
/// replays the exact sequential decisions, so the output is bit-identical
/// to BuildAdsPrunedDijkstra for all flavors and rank kinds. `num_threads`
/// = 0 uses the hardware count; 1 falls back to the sequential builder.
/// `stats->relaxations` counts the parallel run's actual (larger)
/// exploration; insertions match the sequential builder; `rounds` counts
/// windows.
AdsSet BuildAdsPrunedDijkstraParallel(const Graph& g, uint32_t k,
                                      SketchFlavor flavor,
                                      const RankAssignment& ranks,
                                      uint32_t num_threads = 0,
                                      AdsBuildStats* stats = nullptr);

/// Dynamic-programming builder; requires unit arc weights.
AdsSet BuildAdsDp(const Graph& g, uint32_t k, SketchFlavor flavor,
                  const RankAssignment& ranks, AdsBuildStats* stats = nullptr);

/// BuildAdsDp with round-level parallelism (candidate generation sharded
/// over the frontier, candidate application sharded over disjoint target
/// ranges — the node-centric decomposition of Section 3). Produces output
/// identical to BuildAdsDp. `num_threads` = 0 uses the hardware count.
AdsSet BuildAdsDpParallel(const Graph& g, uint32_t k, SketchFlavor flavor,
                          const RankAssignment& ranks,
                          uint32_t num_threads = 0,
                          AdsBuildStats* stats = nullptr);

/// Algorithm 2 (synchronous simulation). `epsilon` > 0 switches to
/// (1+epsilon)-approximate ADSs that trade exactness for fewer updates.
AdsSet BuildAdsLocalUpdates(const Graph& g, uint32_t k, SketchFlavor flavor,
                            const RankAssignment& ranks, double epsilon = 0.0,
                            AdsBuildStats* stats = nullptr);

/// BuildAdsLocalUpdates with round-level parallelism on the shared
/// ThreadPool. Each synchronous round's (canonically sorted) message batch
/// is partitioned into contiguous chunks aligned to target-node boundaries
/// — the node-centric decomposition the algorithm's Pregel framing
/// prescribes: processing target t's messages touches only ADS(t), so
/// disjoint target chunks are independent, and preserving the in-chunk
/// message order preserves the sequential tie-break decisions. Outboxes
/// are concatenated in chunk order and re-sorted canonically next round.
/// Output AND work counters are identical to the sequential builder for
/// every thread count and epsilon. `num_threads` = 0 uses the hardware
/// count.
AdsSet BuildAdsLocalUpdatesParallel(const Graph& g, uint32_t k,
                                    SketchFlavor flavor,
                                    const RankAssignment& ranks,
                                    double epsilon = 0.0,
                                    uint32_t num_threads = 0,
                                    AdsBuildStats* stats = nullptr);

/// Brute-force reference: full shortest-path computation from every node,
/// then the canonical inclusion rule. O(n m log n) — tests only.
AdsSet BuildAdsReference(const Graph& g, uint32_t k, SketchFlavor flavor,
                         const RankAssignment& ranks);

}  // namespace hipads

#endif  // HIPADS_ADS_BUILDERS_H_
