// Historic Inverse Probability (HIP) estimators — the paper's main
// contribution (Section 5).
//
// For each node j in ADS(i) we compute its HIP probability tau_ij: the
// probability that j entered ADS(i), conditioned on the ranks of all nodes
// closer to i. The adjusted weight a_ij = 1/tau_ij is then an unbiased,
// nonnegative estimate of j's presence (E[a_ij] = 1 for every reachable j),
// computable entirely from the sketch. Sums of adjusted weights estimate
// neighborhood cardinalities, and weighting them by g(j, d_ij) estimates
// any distance-based statistic Q_g (Eq. 1) or decay centrality C_{alpha,
// beta} (Eq. 2-3).
//
// HIP probabilities per flavor (all computed by one increasing-distance
// scan over the ADS):
//   bottom-k   : tau = kth smallest rank among closer sketched nodes
//                (Lemma 5.1); with uniform or base-b ranks the inclusion
//                probability is tau itself, with exponential (node-weighted)
//                ranks it is 1 - exp(-beta(j) * tau).
//   k-mins     : tau = 1 - prod_h (1 - min_h), Eq. (7).
//   k-partition: tau = (1/k) sum_h min_h, Eq. (8).

#ifndef HIPADS_ADS_HIP_H_
#define HIPADS_ADS_HIP_H_

#include <vector>

#include "ads/ads.h"
#include "ads/flat_ads.h"

namespace hipads {

/// One sketched node with its HIP adjusted weight. For k-mins ADSs, a node
/// appearing under several permutations yields a single HipEntry.
struct HipEntry {
  NodeId node;
  double dist;
  double tau;     ///< HIP (conditioned inclusion) probability, in (0, 1].
  double weight;  ///< adjusted weight a = 1/tau (presence estimate).
};

/// Computes HIP adjusted weights for every node of an ADS (given as a view
/// over its canonical-order entries — either storage layout), in increasing
/// distance order. `k`, `flavor` and `ranks` must match the parameters the
/// ADS was built with. Works for uniform, base-b and exponential ranks
/// (permutation ranks use the dedicated permutation estimator instead).
std::vector<HipEntry> ComputeHipWeights(AdsView ads, uint32_t k,
                                        SketchFlavor flavor,
                                        const RankAssignment& ranks);

inline std::vector<HipEntry> ComputeHipWeights(const Ads& ads, uint32_t k,
                                               SketchFlavor flavor,
                                               const RankAssignment& ranks) {
  return ComputeHipWeights(ads.view(), k, flavor, ranks);
}

/// Structure-of-arrays overload: the same scan over a SoaAdsArena slice.
/// The kernels are shared templates over the entry layout, so the output
/// is bitwise identical to the AdsView overload on the same sketch.
std::vector<HipEntry> ComputeHipWeights(const SoaAdsView& ads, uint32_t k,
                                        SketchFlavor flavor,
                                        const RankAssignment& ranks);

/// HIP adjusted weights for an Appendix-A modified bottom-k ADS (built by
/// Ads::ModifiedBottomK, uniform ranks). A member is "sampled" iff its
/// rank is strictly below the kth smallest rank of its distance ball; its
/// adjusted weight is the inverse of that threshold, and a member holding
/// exactly the kth smallest rank carries weight 0 (Appendix A). Unbiased
/// with CV at most 1/sqrt(k-2).
std::vector<HipEntry> ComputeModifiedHipWeights(AdsView ads, uint32_t k,
                                                double sup = 1.0);

inline std::vector<HipEntry> ComputeModifiedHipWeights(const Ads& ads,
                                                       uint32_t k,
                                                       double sup = 1.0) {
  return ComputeModifiedHipWeights(ads.view(), k, sup);
}

}  // namespace hipads

#endif  // HIPADS_ADS_HIP_H_
