// Historic Inverse Probability (HIP) estimators — the paper's main
// contribution (Section 5).
//
// For each node j in ADS(i) we compute its HIP probability tau_ij: the
// probability that j entered ADS(i), conditioned on the ranks of all nodes
// closer to i. The adjusted weight a_ij = 1/tau_ij is then an unbiased,
// nonnegative estimate of j's presence (E[a_ij] = 1 for every reachable j),
// computable entirely from the sketch. Sums of adjusted weights estimate
// neighborhood cardinalities, and weighting them by g(j, d_ij) estimates
// any distance-based statistic Q_g (Eq. 1) or decay centrality C_{alpha,
// beta} (Eq. 2-3).
//
// HIP probabilities per flavor (all computed by one increasing-distance
// scan over the ADS):
//   bottom-k   : tau = kth smallest rank among closer sketched nodes
//                (Lemma 5.1); with uniform or base-b ranks the inclusion
//                probability is tau itself, with exponential (node-weighted)
//                ranks it is 1 - exp(-beta(j) * tau).
//   k-mins     : tau = 1 - prod_h (1 - min_h), Eq. (7).
//   k-partition: tau = (1/k) sum_h min_h, Eq. (8).
//
// Because the weights are a pure function of the sketch and its build
// parameters, they can be computed ONCE and stored: ComputeHipWeightsAligned
// emits them as per-entry tau/weight arrays aligned with the canonical entry
// sequence (the hipads-ads-v2 optional HIP section's layout), and
// PrecomputeHipWeights fills a whole FlatAdsSet's arrays in parallel. For
// callers that still scan, ComputeHipWeightsInto reuses a caller-owned
// HipScratch arena so the steady state allocates nothing. All paths run the
// same kernels in the same order, so every variant is bitwise identical.

#ifndef HIPADS_ADS_HIP_H_
#define HIPADS_ADS_HIP_H_

#include <span>
#include <vector>

#include "ads/ads.h"
#include "ads/flat_ads.h"
#include "sketch/minhash.h"

namespace hipads {

/// One sketched node with its HIP adjusted weight. For k-mins ADSs, a node
/// appearing under several permutations yields a single HipEntry.
struct HipEntry {
  NodeId node;
  double dist;
  double tau;     ///< HIP (conditioned inclusion) probability, in (0, 1].
  double weight;  ///< adjusted weight a = 1/tau (presence estimate).
};

/// Reusable buffers for the HIP scan. One scratch serves any number of
/// consecutive scans (one per node of a sweep, say); after warm-up no scan
/// allocates. Not thread-safe — use one per thread.
struct HipScratch {
  std::vector<HipEntry> entries;  ///< output of ComputeHipWeightsInto
  BottomKSketch closer{1};        ///< bottom-k running threshold
  std::vector<double> mins;       ///< k-mins / k-partition bucket minima
};

/// Computes HIP adjusted weights for every node of an ADS (given as a view
/// over its canonical-order entries — either storage layout), in increasing
/// distance order. `k`, `flavor` and `ranks` must match the parameters the
/// ADS was built with. Works for uniform, base-b and exponential ranks
/// (permutation ranks use the dedicated permutation estimator instead).
std::vector<HipEntry> ComputeHipWeights(AdsView ads, uint32_t k,
                                        SketchFlavor flavor,
                                        const RankAssignment& ranks);

inline std::vector<HipEntry> ComputeHipWeights(const Ads& ads, uint32_t k,
                                               SketchFlavor flavor,
                                               const RankAssignment& ranks) {
  return ComputeHipWeights(ads.view(), k, flavor, ranks);
}

/// Structure-of-arrays overload: the same scan over a SoaAdsArena slice.
/// The kernels are shared templates over the entry layout, so the output
/// is bitwise identical to the AdsView overload on the same sketch.
std::vector<HipEntry> ComputeHipWeights(const SoaAdsView& ads, uint32_t k,
                                        SketchFlavor flavor,
                                        const RankAssignment& ranks);

/// Allocation-free variant of ComputeHipWeights: runs the identical scan
/// into `scratch` and returns a view of scratch->entries, valid until the
/// scratch is next used. Bitwise identical to the allocating API.
std::span<const HipEntry> ComputeHipWeightsInto(AdsView ads, uint32_t k,
                                                SketchFlavor flavor,
                                                const RankAssignment& ranks,
                                                HipScratch* scratch);
std::span<const HipEntry> ComputeHipWeightsInto(const SoaAdsView& ads,
                                                uint32_t k,
                                                SketchFlavor flavor,
                                                const RankAssignment& ranks,
                                                HipScratch* scratch);

/// Emits the scan's results as per-entry arrays aligned with the canonical
/// entry sequence: tau[i]/weight[i] belong to entry i. For k-mins, where one
/// adjusted weight covers a whole same-(dist, node) run of entries, the
/// group's values are stored at the run's FIRST entry and the remaining
/// members get explicit zeros — iterating the arrays and skipping tau == 0
/// reproduces the grouped HipEntry sequence exactly. This is the layout of
/// the binary format's optional HIP section. `tau` and `weight` must each
/// have room for ads.size() doubles.
void ComputeHipWeightsAligned(AdsView ads, uint32_t k, SketchFlavor flavor,
                              const RankAssignment& ranks, HipScratch* scratch,
                              double* tau, double* weight);

/// Fills `set`'s hip_tau/hip_weight arrays (one double per entry, aligned
/// layout above) by scanning every node, parallelized over nodes with
/// `num_threads` (0 = hardware count). Deterministic: each node's slice is
/// written independently, so the result is identical for any thread count
/// and bitwise equal to per-node fresh scans.
void PrecomputeHipWeights(FlatAdsSet* set, uint32_t num_threads = 0);

/// HIP adjusted weights for an Appendix-A modified bottom-k ADS (built by
/// Ads::ModifiedBottomK, uniform ranks). A member is "sampled" iff its
/// rank is strictly below the kth smallest rank of its distance ball; its
/// adjusted weight is the inverse of that threshold, and a member holding
/// exactly the kth smallest rank carries weight 0 (Appendix A). Unbiased
/// with CV at most 1/sqrt(k-2).
std::vector<HipEntry> ComputeModifiedHipWeights(AdsView ads, uint32_t k,
                                                double sup = 1.0);

inline std::vector<HipEntry> ComputeModifiedHipWeights(const Ads& ads,
                                                       uint32_t k,
                                                       double sup = 1.0) {
  return ComputeModifiedHipWeights(ads.view(), k, sup);
}

}  // namespace hipads

#endif  // HIPADS_ADS_HIP_H_
