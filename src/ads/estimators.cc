#include "ads/estimators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sketch/cardinality.h"

namespace hipads {

HipEstimator::HipEstimator(AdsView ads, uint32_t k, SketchFlavor flavor,
                           const RankAssignment& ranks)
    : owned_(ComputeHipWeights(ads, k, flavor, ranks)) {}

HipEstimator::HipEstimator(const SoaAdsView& ads, uint32_t k,
                           SketchFlavor flavor, const RankAssignment& ranks)
    : owned_(ComputeHipWeights(ads, k, flavor, ranks)) {}

HipEstimator::HipEstimator(AdsView ads, uint32_t k, SketchFlavor flavor,
                           const RankAssignment& ranks, HipScratch* scratch)
    : borrowed_(ComputeHipWeightsInto(ads, k, flavor, ranks, scratch)) {}

HipEstimator::HipEstimator(AdsView ads, const double* tau,
                           const double* weight)
    : pre_entries_(ads.entries().data()),
      pre_tau_(tau),
      pre_weight_(weight),
      pre_size_(ads.entries().size()) {}

size_t HipEstimator::NumEntries() const {
  size_t n = 0;
  ForEachUntil([&n](const HipEntry&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<HipEntry> HipEstimator::CopyEntries() const {
  std::vector<HipEntry> out;
  ForEachUntil([&out](const HipEntry& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

double HipEstimator::NeighborhoodCardinality(double d) const {
  // Ordered fold over entries with dist <= d: the additions happen in the
  // exact sequence the scan emits weights, so the partial sum equals the
  // old prefix-sum lookup bit for bit.
  double sum = 0.0;
  ForEachUntil([&sum, d](const HipEntry& e) {
    if (e.dist > d) return false;
    sum += e.weight;
    return true;
  });
  return sum;
}

double HipEstimator::ReachableCount() const {
  double sum = 0.0;
  ForEachUntil([&sum](const HipEntry& e) {
    sum += e.weight;
    return true;
  });
  return sum;
}

double HipEstimator::Qg(
    const std::function<double(NodeId, double)>& g) const {
  double sum = 0.0;
  ForEachUntil([&sum, &g](const HipEntry& e) {
    sum += e.weight * g(e.node, e.dist);
    return true;
  });
  return sum;
}

double HipEstimator::Closeness(
    const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta) const {
  return Qg([&alpha, &beta](NodeId node, double d) {
    return alpha(d) * beta(node);
  });
}

double HipEstimator::DistanceSum() const {
  return Qg([](NodeId, double d) { return d; });
}

double HipEstimator::HarmonicCentrality() const {
  return Qg([](NodeId, double d) { return d > 0.0 ? 1.0 / d : 0.0; });
}

double HipEstimator::NeighborhoodWeight(
    double d, const std::function<double(NodeId)>& beta) const {
  double sum = 0.0;
  ForEachUntil([&sum, &beta, d](const HipEntry& e) {
    if (e.dist > d) return false;
    sum += e.weight * beta(e.node);
    return true;
  });
  return sum;
}

double HipEstimator::DistanceQuantile(double q) const {
  assert(q > 0.0 && q <= 1.0);
  // First pass: total adjusted weight (the old cumulative_.back()). Second
  // pass: the first entry whose running sum clears the target — and when
  // none does (the old end-clamp), the last entry visited IS the answer,
  // so one tracked distance covers both cases. 0 for an empty sketch.
  double target = q * ReachableCount();
  double dist = 0.0;
  double running = 0.0;
  ForEachUntil([&](const HipEntry& e) {
    dist = e.dist;
    running += e.weight;
    return running < target - 1e-12;
  });
  return dist;
}

double AdsBasicCardinality(AdsView ads, double d, uint32_t k,
                           SketchFlavor flavor, double sup) {
  switch (flavor) {
    case SketchFlavor::kBottomK:
      return BottomKBasicEstimate(ads.BottomKAt(d, k, sup));
    case SketchFlavor::kKMins:
      return KMinsBasicEstimate(ads.KMinsAt(d, k, sup));
    case SketchFlavor::kKPartition:
      return KPartitionBasicEstimate(ads.KPartitionAt(d, k, sup));
  }
  return 0.0;
}

double SizeEstimatorValue(uint64_t s, uint32_t k) {
  if (s <= k) return static_cast<double>(s);
  double kk = static_cast<double>(k);
  return kk * std::pow(1.0 + 1.0 / kk,
                       static_cast<double>(s - k + 1)) -
         1.0;
}

double AdsSizeCardinality(AdsView ads, double d, uint32_t k) {
  return SizeEstimatorValue(ads.CountWithin(d), k);
}

PermutationCardinalityEstimator::PermutationCardinalityEstimator(
    const Ads& ads, uint32_t k, uint64_t n)
    : k_(k), n_(n) {
  // Replay the ADS entries as the stream of sketch updates they are
  // (Section 5.4): the first k updates have weight 1; afterwards each update
  // adds the expected gap (n - s^ + 1) / (mu - k + 1), where mu is the kth
  // smallest permutation rank before this update.
  BottomKSketch sketch(k, static_cast<double>(n) + 1.0);
  double s_hat = 0.0;
  points_.reserve(ads.size());
  for (const AdsEntry& e : ads.entries()) {
    double w;
    if (sketch.size() < k) {
      w = 1.0;
    } else {
      double mu = sketch.Threshold();
      assert(mu > static_cast<double>(k));
      w = (static_cast<double>(n) - s_hat + 1.0) /
          (mu - static_cast<double>(k) + 1.0);
    }
    s_hat += w;
    bool updated = sketch.Update(e.rank);
    assert(updated && "every ADS entry is a sketch update");
    (void)updated;
    bool saturated =
        sketch.size() == k && sketch.Threshold() == static_cast<double>(k);
    points_.push_back(Point{e.dist, s_hat, saturated});
  }
}

double PermutationCardinalityEstimator::NeighborhoodCardinality(
    double d) const {
  // Latest update with dist <= d.
  size_t idx = 0;
  bool any = false;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].dist > d) break;
    idx = i;
    any = true;
  }
  if (!any) return 0.0;
  double estimate = points_[idx].estimate;
  if (points_[idx].saturated) {
    // The sketch holds permutation ranks {1..k}: no further updates can
    // occur, correct for the unseen tail (Section 5.4).
    estimate = estimate * (static_cast<double>(k_) + 1.0) /
                   static_cast<double>(k_) -
               1.0;
  }
  return estimate;
}

double NaiveQgEstimate(const Ads& ads, uint32_t k,
                       const std::function<double(NodeId, double)>& g) {
  // The k smallest-rank entries of the ADS (over all distances) are the
  // bottom-k MinHash sample of the reachable set.
  std::vector<const AdsEntry*> by_rank;
  by_rank.reserve(ads.size());
  for (const AdsEntry& e : ads.entries()) by_rank.push_back(&e);
  std::sort(by_rank.begin(), by_rank.end(),
            [](const AdsEntry* a, const AdsEntry* b) {
              return a->rank < b->rank;
            });
  if (by_rank.size() < k) {
    // Fewer than k reachable nodes: the "sample" is the whole set.
    double sum = 0.0;
    for (const AdsEntry* e : by_rank) sum += g(e->node, e->dist);
    return sum;
  }
  double tau = by_rank[k - 1]->rank;  // kth smallest rank
  double sum = 0.0;
  for (uint32_t i = 0; i + 1 < k; ++i) {
    sum += g(by_rank[i]->node, by_rank[i]->dist) / tau;
  }
  return sum;
}

}  // namespace hipads
