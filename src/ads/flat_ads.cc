#include "ads/flat_ads.h"

namespace hipads {

FlatAdsSet FlatAdsSet::FromAdsSet(const AdsSet& set) {
  FlatAdsSet flat;
  flat.flavor = set.flavor;
  flat.k = set.k;
  flat.ranks = set.ranks;
  flat.offsets.reserve(set.ads.size() + 1);
  flat.entries.reserve(set.TotalEntries());
  for (const Ads& ads : set.ads) {
    flat.entries.insert(flat.entries.end(), ads.entries().begin(),
                        ads.entries().end());
    flat.offsets.push_back(flat.entries.size());
  }
  return flat;
}

SoaAdsArena SoaAdsArena::FromFlat(const FlatAdsSet& set) {
  SoaAdsArena soa;
  soa.flavor = set.flavor;
  soa.k = set.k;
  soa.ranks = set.ranks;
  soa.offsets = set.offsets;
  size_t n = set.entries.size();
  soa.node.reserve(n);
  soa.part.reserve(n);
  soa.rank.reserve(n);
  soa.dist.reserve(n);
  for (const AdsEntry& e : set.entries) {
    soa.node.push_back(e.node);
    soa.part.push_back(e.part);
    soa.rank.push_back(e.rank);
    soa.dist.push_back(e.dist);
  }
  return soa;
}

AdsSet FlatAdsSet::ToAdsSet() const {
  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.reserve(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    auto span = of(v).entries();
    set.ads.emplace_back(
        std::vector<AdsEntry>(span.begin(), span.end()));
  }
  return set;
}

}  // namespace hipads
