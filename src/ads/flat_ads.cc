#include "ads/flat_ads.h"

namespace hipads {

FlatAdsSet FlatAdsSet::FromAdsSet(const AdsSet& set) {
  FlatAdsSet flat;
  flat.flavor = set.flavor;
  flat.k = set.k;
  flat.ranks = set.ranks;
  flat.offsets.reserve(set.ads.size() + 1);
  flat.entries.reserve(set.TotalEntries());
  for (const Ads& ads : set.ads) {
    flat.entries.insert(flat.entries.end(), ads.entries().begin(),
                        ads.entries().end());
    flat.offsets.push_back(flat.entries.size());
  }
  return flat;
}

AdsSet FlatAdsSet::ToAdsSet() const {
  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.reserve(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    auto span = of(v).entries();
    set.ads.emplace_back(
        std::vector<AdsEntry>(span.begin(), span.end()));
  }
  return set;
}

}  // namespace hipads
